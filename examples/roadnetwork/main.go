// Roadnetwork: single-source shortest paths on a mutating road grid —
// closures (deletions) and new roads (additions) stream in. It runs the
// same workload through GraphBolt's non-decomposable min re-evaluation
// and the KickStarter-style dependence-tree engine, demonstrating the
// §5.4(B) comparison: both stay correct, KickStarter does less work
// because it gives up BSP semantics that SSSP does not need.
package main

import (
	"fmt"
	"log"
	"math"

	graphbolt "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

const (
	rows, cols = 40, 40
	depot      = graphbolt.VertexID(0)
)

func main() {
	// A city grid with a few diagonal highways, travel times 1–10.
	edges := gen.Grid(rows, cols, gen.WeightSmallInt)
	r := gen.NewRNG(5)
	for i := 0; i < 60; i++ {
		a := graphbolt.VertexID(r.Intn(rows * cols))
		b := graphbolt.VertexID(r.Intn(rows * cols))
		edges = append(edges, graphbolt.Edge{From: a, To: b, Weight: float64(r.Intn(4) + 1)})
	}
	g, err := graphbolt.BuildGraph(rows*cols, edges)
	if err != nil {
		log.Fatal(err)
	}

	gb, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewSSSP(depot), graphbolt.Options{
		MaxIterations: 4 * rows * cols,
		Horizon:       64,
	})
	if err != nil {
		log.Fatal(err)
	}
	gb.Run()
	ks := graphbolt.NewKickStarterSSSP(g, depot)
	fmt.Printf("road grid %dx%d, %d segments; reachable from depot: %d\n",
		rows, cols, g.NumEdges(), reachable(gb.Values()))

	for round := 1; round <= 5; round++ {
		batch := makeTraffic(gb.Graph(), r)
		gbStats, err := gb.ApplyBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		ksBefore := ks.EdgeComputations
		ks.ApplyBatch(batch)

		fmt.Printf("\nround %d: %d closures, %d new roads\n", round, len(batch.Del), len(batch.Add))
		fmt.Printf("  GraphBolt:   %8d edge computations (BSP-faithful min re-evaluation)\n",
			gbStats.EdgeComputations)
		fmt.Printf("  KickStarter: %8d edge computations (trimmed dependence tree)\n",
			ks.EdgeComputations-ksBefore)

		if diff := compare(gb.Values(), ks.Distances()); diff {
			log.Fatal("engines disagree on distances")
		}
		fmt.Printf("  both engines agree; reachable intersections: %d\n", reachable(gb.Values()))
	}
}

// makeTraffic closes existing segments and opens new ones.
func makeTraffic(g *graphbolt.Graph, r *gen.RNG) graphbolt.Batch {
	var b graphbolt.Batch
	all := g.Edges(nil)
	for i := 0; i < 25 && len(all) > 0; i++ {
		e := all[r.Intn(len(all))]
		b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
	}
	for i := 0; i < 15; i++ {
		b.Add = append(b.Add, graphbolt.Edge{
			From:   graphbolt.VertexID(r.Intn(rows * cols)),
			To:     graphbolt.VertexID(r.Intn(rows * cols)),
			Weight: float64(r.Intn(9) + 1),
		})
	}
	return b
}

func reachable(dists []float64) int {
	n := 0
	for _, d := range dists {
		if !math.IsInf(d, 1) {
			n++
		}
	}
	return n
}

func compare(a, b []float64) (differs bool) {
	for v := range a {
		if a[v] != b[v] && !(math.IsInf(a[v], 1) && math.IsInf(b[v], 1)) {
			fmt.Printf("  MISMATCH at %d: GraphBolt %v vs KickStarter %v\n", v, a[v], b[v])
			return true
		}
	}
	return false
}
