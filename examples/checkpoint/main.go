// Checkpoint: a streaming service pattern — compute, checkpoint the
// engine (graph + values + dependency store) to disk, simulate a process
// restart by restoring into a fresh engine, and keep streaming. The
// restored engine refines incrementally exactly as the original would
// have: no recomputation on restart.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	graphbolt "repro"
)

func main() {
	s, err := graphbolt.NewRMATStream(21, 5000, 50000, graphbolt.StreamConfig{
		BatchSize:  1000,
		NumBatches: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := graphbolt.Options{MaxIterations: 10}

	eng, err := graphbolt.NewEngine[float64, float64](s.Base, graphbolt.NewPageRank(), opts)
	if err != nil {
		log.Fatal(err)
	}
	eng.Run()
	for _, b := range s.Batches[:3] {
		eng.ApplyBatch(b)
	}
	fmt.Printf("streamed 3 batches; graph now has %d edges\n", eng.Graph().NumEdges())

	// Checkpoint to disk.
	path := filepath.Join(os.TempDir(), "graphbolt.ckpt")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.WriteSnapshot(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("checkpointed engine state to %s (%d bytes)\n", path, info.Size())

	// "Restart": a brand-new engine restores the checkpoint.
	empty, _ := graphbolt.BuildGraph(1, nil)
	restored, err := graphbolt.NewEngine[float64, float64](empty, graphbolt.NewPageRank(), opts)
	if err != nil {
		log.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.ReadSnapshot(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("restored engine: %d vertices at level %d\n",
		restored.Graph().NumVertices(), restored.Level())

	// Both engines stream the remaining batches; they must stay in
	// lockstep.
	for _, b := range s.Batches[3:] {
		eng.ApplyBatch(b)
		restored.ApplyBatch(b)
	}
	worst := 0.0
	for v := range eng.Values() {
		if d := math.Abs(eng.Values()[v] - restored.Values()[v]); d > worst {
			worst = d
		}
	}
	fmt.Printf("after 3 more batches on both: max divergence = %.3e\n", worst)
	if worst > 1e-12 {
		log.Fatal("restored engine diverged")
	}
	fmt.Println("restored engine streams in lockstep with the original ✓")
	os.Remove(path)
}
