// Checkpoint: crash-safe streaming — wrap the engine in the durable
// layer so every batch is journaled to a write-ahead log before it
// mutates memory and the engine state is checkpointed periodically.
// The example streams a few batches, "crashes" (abandons the in-memory
// engine), reopens from disk, and finishes the stream: the recovered
// run must land on the same values as a run that never crashed.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	graphbolt "repro"
)

func main() {
	s, err := graphbolt.NewRMATStream(21, 5000, 50000, graphbolt.StreamConfig{
		BatchSize:  1000,
		NumBatches: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := graphbolt.Options{MaxIterations: 10}
	newEngine := func() *graphbolt.PageRankEngine {
		e, err := graphbolt.NewEngine[float64, float64](s.Base, graphbolt.NewPageRank(), opts)
		if err != nil {
			log.Fatal(err)
		}
		return e
	}

	// Reference: an in-memory run that never crashes.
	ref := newEngine()
	ref.Run()
	for _, b := range s.Batches {
		if _, err := ref.ApplyBatch(b); err != nil {
			log.Fatal(err)
		}
	}

	dir, err := os.MkdirTemp("", "graphbolt-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dopts := graphbolt.DurableOptions{CheckpointEvery: 2}

	// Durable run: OpenDurable performs the initial computation, then
	// each batch is journaled before it is applied.
	d, err := graphbolt.OpenDurable(newEngine(), dir, dopts)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range s.Batches[:3] {
		if _, err := d.ApplyBatch(b); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("streamed 3 batches; graph now has %d edges\n", d.Graph().NumEdges())
	// "Crash": walk away mid-stream. The last checkpoint covers batch 2;
	// batch 3 exists only as a journal record.
	d.Close()
	fmt.Printf("simulated crash after batch 3 (state lives in %s)\n", dir)

	// Restart: recovery loads the checkpoint and replays the journal
	// suffix, then the stream continues where it left off.
	recovered, err := graphbolt.OpenDurable(newEngine(), dir, dopts)
	if err != nil {
		log.Fatal(err)
	}
	info := recovered.Recovery()
	fmt.Printf("recovered: checkpoint at batch %d + %d journal records replayed (seq %d)\n",
		info.SnapshotSeq, info.Replayed, recovered.Seq())
	for _, b := range s.Batches[recovered.Seq():] {
		if _, err := recovered.ApplyBatch(b); err != nil {
			log.Fatal(err)
		}
	}
	recovered.Close()

	worst := 0.0
	for v := range ref.Values() {
		if d := math.Abs(ref.Values()[v] - recovered.Values()[v]); d > worst {
			worst = d
		}
	}
	fmt.Printf("after finishing the stream on both: max divergence = %.3e\n", worst)
	if worst > 1e-9 {
		log.Fatal("recovered engine diverged")
	}
	fmt.Println("recovered engine matches the run that never crashed ✓")
}
