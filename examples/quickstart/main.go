// Quickstart: build a small graph, compute PageRank, stream in a
// mutation batch, and observe that the incrementally refined ranks match
// a from-scratch run on the mutated graph — the library's core
// guarantee.
package main

import (
	"fmt"
	"log"
	"math"

	graphbolt "repro"
)

func main() {
	// A toy web graph: page 0 links to 1 and 2, everything links back
	// to 0, page 3 is isolated for now.
	g, err := graphbolt.BuildGraph(4, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 0, To: 2, Weight: 1},
		{From: 1, To: 0, Weight: 1},
		{From: 2, To: 0, Weight: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{
		MaxIterations: 10, // the paper's evaluation budget
	})
	if err != nil {
		log.Fatal(err)
	}

	st := eng.Run()
	fmt.Printf("initial run: %d iterations, %d edge computations\n", st.Iterations, st.EdgeComputations)
	printRanks("before mutation", eng.Values())

	// Page 3 appears: two new links arrive as one atomic batch.
	st, err = eng.ApplyBatch(graphbolt.Batch{Add: []graphbolt.Edge{
		{From: 0, To: 3, Weight: 1},
		{From: 3, To: 0, Weight: 1},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutation batch: %d edge computations (refinement, not recompute)\n", st.EdgeComputations)
	printRanks("after mutation", eng.Values())

	// The guarantee: refined results equal a from-scratch run on the
	// mutated snapshot (Theorem 4.1 — BSP semantics preserved).
	fresh, err := graphbolt.NewEngine[float64, float64](eng.Graph(), graphbolt.NewPageRank(), graphbolt.Options{
		Mode:          graphbolt.ModeReset,
		MaxIterations: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fresh.Run()
	worst := 0.0
	for v := range eng.Values() {
		if d := math.Abs(eng.Values()[v] - fresh.Values()[v]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max |refined - scratch| = %.2e\n", worst)
	if worst > 1e-9 {
		log.Fatal("refinement diverged from scratch run")
	}
	fmt.Println("refined results match a from-scratch computation ✓")
}

func printRanks(label string, ranks []float64) {
	fmt.Printf("%s:", label)
	for v, r := range ranks {
		fmt.Printf("  v%d=%.4f", v, r)
	}
	fmt.Println()
}
