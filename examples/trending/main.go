// Trending: Label Propagation over a streaming social graph — the
// fast-changing analytics workload the paper's introduction motivates.
// A few accounts are hand-labeled as topic seeds; as follows/unfollows
// stream in, every account's topic distribution is kept current via
// dependency-driven refinement, and the example reports how topic
// affiliation shifts batch by batch.
package main

import (
	"fmt"
	"log"

	graphbolt "repro"
)

const (
	topics      = 3
	accounts    = 4000
	interactons = 40000
)

var topicNames = [topics]string{"sports", "music", "politics"}

func main() {
	// A skewed follower graph: a handful of celebrity accounts dominate,
	// like real social networks. Half the interactions form the initial
	// graph; the rest stream in with unfollows mixed in.
	s, err := graphbolt.NewRMATStream(7, accounts, interactons, graphbolt.StreamConfig{
		BatchSize:      2000,
		NumBatches:     8,
		DeleteFraction: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Seed the highest-profile accounts with known topics.
	seeds := map[graphbolt.VertexID]int{}
	for i := 0; i < 9; i++ {
		seeds[pickInfluencer(s.Base, i)] = i % topics
	}

	lp := graphbolt.NewLabelProp(topics, seeds)
	eng, err := graphbolt.NewEngine[[]float64, []float64](s.Base, lp, graphbolt.Options{
		MaxIterations: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	st := eng.Run()
	fmt.Printf("initial pass over %d accounts / %d follows: %d edge computations\n",
		s.Base.NumVertices(), s.Base.NumEdges(), st.EdgeComputations)
	report(eng.Values())

	for i, b := range s.Batches {
		st, err := eng.ApplyBatch(b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nbatch %d (+%d follows, -%d unfollows): %d edge computations, %v\n",
			i+1, len(b.Add), len(b.Del), st.EdgeComputations, st.Duration.Round(1000))
		report(eng.Values())
	}
}

// pickInfluencer returns the (i+1)-th highest out-degree account.
func pickInfluencer(g *graphbolt.Graph, i int) graphbolt.VertexID {
	type vd struct {
		v graphbolt.VertexID
		d int
	}
	best := make([]vd, 0, 16)
	for v := 0; v < g.NumVertices(); v++ {
		best = append(best, vd{graphbolt.VertexID(v), g.OutDegree(graphbolt.VertexID(v))})
	}
	for a := 0; a <= i; a++ { // partial selection sort, tiny i
		for b := a + 1; b < len(best); b++ {
			if best[b].d > best[a].d {
				best[a], best[b] = best[b], best[a]
			}
		}
	}
	return best[i].v
}

// report prints how many accounts currently lean toward each topic.
func report(dists [][]float64) {
	var counts [topics]int
	classified := 0
	for _, d := range dists {
		arg, max := -1, 0.40 // require a clear lean
		for t, p := range d {
			if p > max {
				arg, max = t, p
			}
		}
		if arg >= 0 {
			counts[arg]++
			classified++
		}
	}
	fmt.Printf("  topic affiliation:")
	for t, c := range counts {
		fmt.Printf("  %s=%d", topicNames[t], c)
	}
	fmt.Printf("  (undecided=%d)\n", len(dists)-classified)
}
