// Recommend: streaming collaborative filtering over a user–item rating
// graph — the paper's showcase for incrementalizing a *complex*
// aggregation (ALS's ⟨Σ u·uᵀ, Σ u·rating⟩ pair, §3.3). As ratings arrive
// and get retracted, latent factors stay current and the example prints
// the top predicted items for a user after every batch.
package main

import (
	"fmt"
	"log"
	"sort"

	graphbolt "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

const (
	users = 600
	items = 300
	rank  = 4
)

func main() {
	// Bipartite ratings with skewed user activity; both directions are
	// present (ALS updates users from items and items from users).
	edges := gen.Bipartite(11, users, items, 6000, gen.WeightSmallInt)
	split := len(edges) / 2
	if split%2 == 1 {
		split++ // keep forward/backward pairs together
	}
	base, err := graphbolt.BuildGraph(users+items, edges[:split])
	if err != nil {
		log.Fatal(err)
	}

	cf := graphbolt.NewCollabFilter(rank)
	eng, err := graphbolt.NewEngine[[]float64, graphbolt.CFAgg](base, cf, graphbolt.Options{
		MaxIterations: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Run()
	fmt.Printf("initial factorization of %d ratings: %d edge computations\n",
		base.NumEdges()/2, st.EdgeComputations)

	const watched = graphbolt.VertexID(3) // the user we recommend for
	printTopItems(eng, watched)

	// Stream rating batches: the second half arrives 600 edges (300
	// ratings) at a time, with some earlier ratings withdrawn.
	r := gen.NewRNG(99)
	loaded := append([]graphbolt.Edge(nil), edges[:split]...)
	rest := edges[split:]
	for batchNo := 1; len(rest) > 0; batchNo++ {
		n := 600
		if n > len(rest) {
			n = len(rest)
		}
		batch := graphbolt.Batch{Add: rest[:n]}
		rest = rest[n:]
		// Withdraw ~40 existing ratings (both directions).
		for i := 0; i < 40 && len(loaded) >= 2; i++ {
			k := r.Intn(len(loaded) / 2)
			fwd, back := loaded[2*k], loaded[2*k+1]
			batch.Del = append(batch.Del,
				graph.Edge{From: fwd.From, To: fwd.To},
				graph.Edge{From: back.From, To: back.To})
			loaded = append(loaded[:2*k], loaded[2*k+2:]...)
		}
		loaded = append(loaded, batch.Add...)

		st, err := eng.ApplyBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nbatch %d (+%d -%d rating edges): %d edge computations in %v\n",
			batchNo, len(batch.Add), len(batch.Del), st.EdgeComputations, st.Duration.Round(1000))
		printTopItems(eng, watched)
	}
}

// printTopItems scores every item against the user's latent factors.
func printTopItems(eng *graphbolt.Engine[[]float64, graphbolt.CFAgg], user graphbolt.VertexID) {
	vals := eng.Values()
	uf := vals[user]
	type scored struct {
		item  graphbolt.VertexID
		score float64
	}
	var all []scored
	for it := users; it < users+items; it++ {
		if eng.Graph().HasEdge(user, graphbolt.VertexID(it)) {
			continue // already rated
		}
		s := 0.0
		for k := 0; k < rank; k++ {
			s += uf[k] * vals[it][k]
		}
		all = append(all, scored{graphbolt.VertexID(it), s})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	fmt.Printf("  top items for user %d:", user)
	for i := 0; i < 5 && i < len(all); i++ {
		fmt.Printf("  item%d(%.2f)", all[i].item-users, all[i].score)
	}
	fmt.Println()
}
