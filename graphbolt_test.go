package graphbolt_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	graphbolt "repro"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := graphbolt.BuildGraph(4, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 2, To: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Run()
	if st.Iterations == 0 || st.EdgeComputations == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	eng.ApplyBatch(graphbolt.Batch{Add: []graphbolt.Edge{{From: 2, To: 3, Weight: 1}}})
	if len(eng.Values()) != 4 {
		t.Fatalf("values = %v", eng.Values())
	}

	fresh, _ := graphbolt.NewEngine[float64, float64](eng.Graph(), graphbolt.NewPageRank(),
		graphbolt.Options{Mode: graphbolt.ModeReset, MaxIterations: 30})
	fresh.Run()
	for v := range eng.Values() {
		if math.Abs(eng.Values()[v]-fresh.Values()[v]) > 1e-9 {
			t.Fatalf("vertex %d: %v vs %v", v, eng.Values()[v], fresh.Values()[v])
		}
	}
}

func TestGraphSerializationRoundTrip(t *testing.T) {
	g, _ := graphbolt.BuildGraph(3, []graphbolt.Edge{{From: 0, To: 1, Weight: 2.5}})
	var buf bytes.Buffer
	if err := graphbolt.SaveGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graphbolt.LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 1 || g2.NumVertices() != 3 {
		t.Fatalf("round trip: V=%d E=%d", g2.NumVertices(), g2.NumEdges())
	}
	if w, ok := g2.EdgeWeight(0, 1); !ok || w != 2.5 {
		t.Fatal("weight lost")
	}
}

func TestRMATStreamFacade(t *testing.T) {
	s, err := graphbolt.NewRMATStream(3, 128, 1000, graphbolt.StreamConfig{BatchSize: 50, NumBatches: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Base.NumVertices() != 128 || len(s.Batches) != 3 {
		t.Fatalf("stream: V=%d batches=%d", s.Base.NumVertices(), len(s.Batches))
	}
	eng, _ := graphbolt.NewEngine[float64, float64](s.Base, graphbolt.NewPageRank(), graphbolt.Options{})
	eng.Run()
	for _, b := range s.Batches {
		eng.ApplyBatch(b)
	}
	if eng.Graph().NumEdges() <= s.Base.NumEdges() {
		t.Fatal("stream did not grow the graph")
	}
}

func TestTriangleCounterFacade(t *testing.T) {
	g, _ := graphbolt.BuildGraph(3, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1},
	})
	tc := graphbolt.NewTriangleCounter(g)
	if tc.Triangles() != 1 {
		t.Fatalf("triangles = %d", tc.Triangles())
	}
}

func TestKickStarterFacade(t *testing.T) {
	g, _ := graphbolt.BuildGraph(3, []graphbolt.Edge{{From: 0, To: 1, Weight: 2}, {From: 1, To: 2, Weight: 2}})
	ks := graphbolt.NewKickStarterSSSP(g, 0)
	if ks.Distances()[2] != 4 {
		t.Fatalf("dist = %v", ks.Distances())
	}
}

func TestLoadGraphFile(t *testing.T) {
	g, _ := graphbolt.BuildGraph(3, []graphbolt.Edge{{From: 0, To: 2, Weight: 4}})
	path := filepath.Join(t.TempDir(), "g.el")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphbolt.SaveGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2, err := graphbolt.LoadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g2.EdgeWeight(0, 2); !ok || w != 4 {
		t.Fatalf("loaded weight %v,%v", w, ok)
	}
	if _, err := graphbolt.LoadGraphFile(filepath.Join(t.TempDir(), "missing.el")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRMATEdgesDeterministic(t *testing.T) {
	a := graphbolt.RMATEdges(5, 64, 200)
	b := graphbolt.RMATEdges(5, 64, 200)
	if len(a) != 200 {
		t.Fatalf("edges = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RMATEdges not deterministic")
		}
	}
}

func TestKatzAndPPRFacade(t *testing.T) {
	g, _ := graphbolt.BuildGraph(3, []graphbolt.Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}})
	katz, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewKatz(), graphbolt.Options{MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	katz.Run()
	if katz.Values()[2] <= katz.Values()[0] {
		t.Fatal("katz ordering wrong")
	}
	ppr, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPersonalizedPageRank([]graphbolt.VertexID{0}),
		graphbolt.Options{MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	ppr.Run()
	if ppr.Values()[0] <= ppr.Values()[2] {
		t.Fatal("ppr not biased toward source")
	}
}

func TestSnapshotFacade(t *testing.T) {
	g, _ := graphbolt.BuildGraph(10, graphbolt.RMATEdges(6, 10, 40))
	eng, _ := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{MaxIterations: 5})
	eng.Run()
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	empty, _ := graphbolt.BuildGraph(1, nil)
	restored, _ := graphbolt.NewEngine[float64, float64](empty, graphbolt.NewPageRank(), graphbolt.Options{MaxIterations: 5})
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for v := range eng.Values() {
		if restored.Values()[v] != eng.Values()[v] {
			t.Fatal("restored values differ")
		}
	}
}
