// Command graphgen writes deterministic synthetic graphs and mutation
// streams to disk in the library's edge-list format.
//
// Usage:
//
//	graphgen -kind rmat -vertices 100000 -edges 1000000 -out graph.el
//	graphgen -kind rmat -vertices 100000 -edges 1000000 -stream stream.el -batch 1000
//
// The stream file holds one mutation per line: "a src dst weight" for an
// addition, "d src dst" for a deletion, with "#batch" lines separating
// batches. cmd/graphbolt consumes it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

func main() {
	var (
		kind     = flag.String("kind", "rmat", "generator: rmat | uniform | grid | chain")
		vertices = flag.Int("vertices", 10000, "number of vertices (rows for grid)")
		edges    = flag.Int("edges", 100000, "number of edges (cols for grid)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		weights  = flag.String("weights", "uniform", "edge weights: unit | uniform | smallint")
		out      = flag.String("out", "", "write the full graph to this file")
		streamTo = flag.String("stream", "", "write a base graph + mutation stream instead")
		batch    = flag.Int("batch", 1000, "mutations per stream batch")
		delFrac  = flag.Float64("delfrac", 0.25, "deletion fraction per batch")
	)
	flag.Parse()

	var w gen.Weighting
	switch *weights {
	case "unit":
		w = gen.WeightUnit
	case "uniform":
		w = gen.WeightUniform
	case "smallint":
		w = gen.WeightSmallInt
	default:
		fatal("unknown weights %q", *weights)
	}

	var es []graph.Edge
	n := *vertices
	switch *kind {
	case "rmat":
		es = gen.RMAT(*seed, n, *edges, w)
	case "uniform":
		es = gen.Uniform(*seed, n, *edges, w)
	case "grid":
		es = gen.Grid(*vertices, *edges, w)
		n = *vertices * *edges
	case "chain":
		es = gen.Chain(n, w)
	default:
		fatal("unknown kind %q", *kind)
	}

	if *streamTo != "" {
		s, err := stream.FromEdges(n, es, stream.Config{
			BatchSize:      *batch,
			DeleteFraction: *delFrac,
			Seed:           *seed,
		})
		if err != nil {
			fatal("stream: %v", err)
		}
		if *out != "" {
			writeGraph(*out, s.Base)
		}
		writeStream(*streamTo, s)
		fmt.Printf("base: V=%d E=%d; stream: %d batches of ~%d to %s\n",
			s.Base.NumVertices(), s.Base.NumEdges(), len(s.Batches), *batch, *streamTo)
		return
	}

	g, err := graph.Build(n, es)
	if err != nil {
		fatal("build: %v", err)
	}
	if *out == "" {
		fatal("need -out or -stream")
	}
	writeGraph(*out, g)
	fmt.Printf("wrote V=%d E=%d to %s\n", g.NumVertices(), g.NumEdges(), *out)
}

func writeGraph(path string, g *graph.Graph) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		fatal("write: %v", err)
	}
}

func writeStream(path string, s *stream.Stream) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	if err := stream.WriteBatches(f, s.Batches); err != nil {
		fatal("write stream: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
