// Command graphbolt runs a streaming graph computation: it loads a base
// graph, computes the initial result, then applies mutation batches from
// a stream file (graphgen's format), reporting per-batch latency and
// work.
//
// Usage:
//
//	graphbolt -graph base.el -stream stream.el -algo pagerank
//	graphbolt -graph base.el -algo sssp -source 0 -top 10
//	graphbolt -graph base.el -stream stream.el -wal-dir state/ -checkpoint-every 10
//	graphbolt -graph base.el -stream stream.el -metrics-addr localhost:9090
//
// With -wal-dir, every batch is journaled to a write-ahead log before it
// is applied and the engine is checkpointed every -checkpoint-every
// batches; restarting the command with the same -wal-dir recovers the
// pre-crash state and continues the stream from there.
//
// With -metrics-addr, an HTTP server exposes /metrics (Prometheus text),
// /metrics.json, /healthz (JSON health: 200 while healthy or degraded,
// 503 once failed), /debug/vars (expvar) and /debug/pprof/* while the
// stream runs, and every layer (engine, journal, checkpoints, parallel
// loops) reports into the process-wide registry. In -serve mode,
// -apply-deadline arms a watchdog that flags applies exceeding it.
//
// With -serve, the stream is ingested through the concurrent serving
// facade instead of the synchronous loop: batches flow through a
// bounded, coalescing single-writer queue while -readers goroutines
// concurrently sample published result snapshots, reporting read
// throughput and staleness alongside ingest progress:
//
//	graphbolt -graph base.el -stream stream.el -serve -readers 8
//
// With -retain N, the last N published generations stay addressable for
// point-in-time reads (Server.SnapshotAt, Server.Diff); -query-cache B
// gives -serve mode a B-byte per-generation cache memoizing derived
// reads, with hit/miss/bytes visible under graphbolt_qcache_* in
// /metrics:
//
//	graphbolt -graph base.el -stream stream.el -serve -retain 16 -query-cache 1048576
//
// With -admission, -serve mode enables deadline-aware admission control
// and the adaptive coalescing governor: submissions the backlog cannot
// absorb within -slo are shed with a retry hint (the CLI's submit loop
// honors it, backing off and resubmitting), the coalesced batch cap
// floats between -batch-floor and -batch-ceil with observed load, and
// overload episodes surface as "overloaded" on /healthz and in
// graphbolt_admission_* metrics:
//
//	graphbolt -graph base.el -stream stream.el -serve -admission -slo 200ms
//
// With -flight, every batch gets a trace ID at submission and the
// flight recorder keeps the last -flight-depth lifecycle events
// (admission, queueing, coalescing, journaling with fsync latency,
// apply, publication) in a lock-free ring. The ring is dumped to the
// log on any transition to degraded/failed and whenever a batch's
// end-to-end latency exceeds the admission SLO, and is served as JSON
// at /debug/flight (filter with ?trace=ID, ?kind=NAME, ?dump=last):
//
//	graphbolt -graph base.el -stream stream.el -serve -admission -flight
//
// With -api-addr, -serve mode exposes the HTTP/JSON query API —
// /v1/snapshot, /v1/snapshot/{gen}, /v1/topk, /v1/value/{vertex},
// /v1/diff — plus /healthz and the /metrics family on that address.
// When -wal-dir is also set, the same listener serves the replication
// stream at GET /v1/wal: every journaled record, CRC-framed exactly as
// on disk, streamed to followers and resumable by sequence number:
//
//	graphbolt -graph base.el -stream stream.el -serve -wal-dir state/ -api-addr :8080
//
// With -follow, the process runs as a read replica instead: it tails
// the leader's /v1/wal stream, replays every record through the same
// engine (re-journaling locally when -wal-dir is set, so a restart
// resumes seq-exact from disk), refuses writes, and serves the same
// query API on -api-addr. If the leader has compacted past the
// follower's position, the follower re-seeds itself from the leader's
// GET /v1/checkpoint and resumes the stream from there; -stall-timeout
// bounds how long a silent connection (no records, no heartbeats) is
// tolerated before re-dialing. Run it with the leader's -graph, -algo
// and -retain so the generations line up:
//
//	graphbolt -graph base.el -algo pagerank -follow http://leader:8080 -api-addr :8081
//
// Progress is logged with log/slog, one line per event (load, recovery,
// initial run, each applied batch); -log-format selects text or JSON.
// Result output (-top, -validate) stays on stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	graphbolt "repro"
	"repro/internal/admission"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/flight"
	"repro/internal/graph"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/qcache"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/wal"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "base graph edge-list file (required)")
		streamPath  = flag.String("stream", "", "mutation stream file (optional)")
		algo        = flag.String("algo", "pagerank", "pagerank | labelprop | coem | bp | cf | sssp | bfs | cc | triangles")
		mode        = flag.String("mode", "graphbolt", "graphbolt | graphbolt-rp | reset | ligra | naive")
		iterations  = flag.Int("iterations", 10, "BSP iterations")
		horizon     = flag.Int("horizon", 0, "horizontal pruning cut-off (0 = iterations)")
		source      = flag.Uint("source", 0, "source vertex for sssp/bfs")
		top         = flag.Int("top", 5, "print the top-k vertices by value")
		validate    = flag.Bool("validate", false, "after the stream, cross-check against a from-scratch run")
		walDir      = flag.String("wal-dir", "", "directory for the write-ahead log and checkpoints (enables durability + crash recovery)")
		ckptEvery   = flag.Int("checkpoint-every", 10, "batches between automatic checkpoints (with -wal-dir; 0 = only journal)")
		syncMode    = flag.String("sync", "every", "journal sync policy: every | interval | none (with -wal-dir)")
		metricsAt   = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:9090)")
		logFormat   = flag.String("log-format", "text", "progress log format: text | json")
		trace       = flag.Bool("trace", false, "log a line per engine phase (run, refine, hybrid, checkpoint, ...)")
		serveMode   = flag.Bool("serve", false, "ingest the stream through the concurrent serving facade while -readers goroutines query snapshots")
		readers     = flag.Int("readers", 4, "concurrent snapshot readers in -serve mode")
		shards      = flag.Int("shards", 1, "partition serving into N shards, each with its own engine and apply loop behind a cross-shard barrier (with -serve; incompatible with -wal-dir)")
		queueDepth  = flag.Int("queue-depth", 0, "ingest queue bound in -serve mode (0 = default, per shard)")
		retain      = flag.Int("retain", 1, "published generations kept addressable for point-in-time reads (SnapshotAt)")
		queryCache  = flag.Int64("query-cache", 0, "per-generation query cache budget in bytes for -serve mode (0 = off)")
		applyDl     = flag.Duration("apply-deadline", 0, "watchdog deadline per apply call in -serve mode (0 = off); exceeding it logs and raises graphbolt_serve_stuck_applies")
		admitMode   = flag.Bool("admission", false, "enable deadline-aware admission control and the adaptive coalescing governor in -serve mode")
		slo         = flag.Duration("slo", 0, "admission SLO: bound on a submission's estimated queue wait (0 = default 500ms; with -admission)")
		batchFloor  = flag.Int("batch-floor", 0, "adaptive coalescing cap floor in edges (0 = default 256; with -admission)")
		batchCeil   = flag.Int("batch-ceil", 0, "adaptive coalescing cap ceiling in edges (0 = default 65536; with -admission)")
		flightOn    = flag.Bool("flight", false, "enable the batch-lifecycle flight recorder: trace IDs on every batch, /debug/flight, dumps on degrade and slow batches")
		flightDepth = flag.Int("flight-depth", 0, "flight recorder ring capacity in events (0 = default 4096; with -flight)")
		apiAddr     = flag.String("api-addr", "", "serve the HTTP/JSON query API (/v1/snapshot, /v1/topk, /v1/value, /v1/diff) on this address; with -serve -wal-dir also the replication stream at /v1/wal")
		follow      = flag.String("follow", "", "run as a read replica tailing this leader URL's /v1/wal stream (e.g. http://leader:8080); refuses writes, serves the query API on -api-addr")
		stallTO     = flag.Duration("stall-timeout", 0, "follower stream-stall watchdog: drop and re-dial a connection that carries neither records nor heartbeats for this long (0 = default 15s; negative disables; with -follow)")
	)
	flag.Parse()
	logger, err := newLogger(*logFormat)
	if err != nil {
		fatal("%v", err)
	}
	if *graphPath == "" {
		fatal("need -graph")
	}
	if *follow != "" {
		if *serveMode || *streamPath != "" || *shards > 1 {
			fatal("-follow is a read replica: it takes no -stream, -serve or -shards")
		}
	} else if *apiAddr != "" && !*serveMode {
		fatal("-api-addr requires -serve (or -follow)")
	}
	if *shards > 1 {
		if !*serveMode {
			fatal("-shards requires -serve")
		}
		if *walDir != "" {
			// The CLI's crash-resume protocol equates journal sequence
			// numbers with stream positions; sharded journals count
			// per-shard sub-batches instead. Sharded durability is
			// available programmatically via OpenShardedDurable.
			fatal("-shards is incompatible with -wal-dir")
		}
	}

	// The metrics mux starts before the serving facade exists, so
	// /healthz reads the tracker through an atomic proxy that -serve
	// mode fills in once the server is constructed. Until then (and in
	// non-serve mode) the nil tracker reports healthy.
	var healthProxy atomic.Pointer[health.Tracker]
	var reg *obs.Registry
	if *metricsAt != "" {
		reg = obs.Default()
		core.SetDefaultMetrics(reg)
		core.RegisterMetrics(reg)
		wal.RegisterMetrics(reg)
		durable.RegisterMetrics(reg)
		serve.SetDefaultMetrics(reg)
		serve.RegisterMetrics(reg)
		qcache.RegisterMetrics(reg)
		health.RegisterMetrics(reg)
		admission.RegisterMetrics(reg)
		flight.RegisterMetrics(reg)
		partition.RegisterMetrics(reg)
		graphbolt.RegisterReplicaMetrics(reg)
		parallel.SetMetrics(reg)
	}
	// The recorder is built before the metrics mux so /debug/flight can
	// serve it from the start; with -flight off the nil recorder is inert
	// and its route answers 404.
	var rec *flight.Recorder
	if *flightOn {
		rec = flight.New(flight.Options{Depth: *flightDepth, Logger: logger, Metrics: reg})
		logger.Info("flight recorder enabled", "depth", rec.Depth())
	}
	if *metricsAt != "" {
		ln, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			fatal("metrics listener: %v", err)
		}
		logger.Info("metrics", "addr", ln.Addr().String(),
			"endpoints", "/metrics /metrics.json /healthz /debug/flight /debug/vars /debug/pprof/")
		mux := obs.HandlerWith(reg, map[string]http.Handler{
			"/healthz": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				health.Handler(healthProxy.Load()).ServeHTTP(w, r)
			}),
			"/debug/flight": rec.Handler(),
		})
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				logger.Error("metrics server", "err", err)
			}
		}()
	}
	var sinks []obs.Sink
	if reg != nil {
		sinks = append(sinks, obs.RegistrySink{R: reg, Prefix: "graphbolt_phase_"})
	}
	if *trace {
		sinks = append(sinks, obs.SlogSink{Logger: logger})
	}
	if rec != nil {
		// Engine phase spans land in the flight ring too, stamped with
		// whatever trace is on the apply path.
		sinks = append(sinks, rec)
	}
	tracer := obs.NewTracer(sinks...)

	// The replication log is fed by the durable layer's OnRecord hook
	// (wired below) and served at GET /v1/wal on the -api-addr listener.
	// It exists only on a durable leader: without a journal there are no
	// sequence numbers to ship.
	var rlog *graphbolt.ReplicationLog
	if *apiAddr != "" && *follow == "" && *walDir != "" {
		// The checkpoint hint reads the directory, not the engine, so the
		// log can advertise re-seedability before the engine is open.
		rlog = graphbolt.NewReplicationLog(graphbolt.ReplicationLogOptions{
			Logger:        logger,
			CheckpointSeq: graphbolt.CheckpointDir(*walDir).CheckpointSeq,
		})
		defer rlog.Close()
	}

	var dcfg *durableConfig
	if *walDir != "" {
		policy, err := parseSync(*syncMode)
		if err != nil {
			fatal("%v", err)
		}
		dcfg = &durableConfig{dir: *walDir, every: *ckptEvery, sync: policy, metrics: reg, tracer: tracer, flight: rec, log: logger, rlog: rlog}
	}

	// The -api-addr listener starts before the serving facade exists:
	// /v1/* queries answer 503 until -serve constructs the server and
	// fills the proxy in, while /v1/wal (durable leaders) streams
	// immediately — a follower may connect before ingest starts.
	var queryProxy atomic.Pointer[http.Handler]
	if *apiAddr != "" && *follow == "" {
		ln, err := net.Listen("tcp", *apiAddr)
		if err != nil {
			fatal("api listener: %v", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
			if h := queryProxy.Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"server not started yet"}`)
		})
		if rlog != nil {
			mux.Handle("GET /v1/wal", rlog.Handler())
			// Followers whose resume position was compacted away re-seed
			// from here (404 until the first checkpoint lands on disk).
			mux.Handle("GET /v1/checkpoint", graphbolt.CheckpointHandler(graphbolt.CheckpointDir(*walDir)))
		}
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			health.Handler(healthProxy.Load()).ServeHTTP(w, r)
		})
		logger.Info("query api", "addr", ln.Addr().String(), "replication", rlog != nil)
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				logger.Error("api server", "err", err)
			}
		}()
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal("%v", err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fatal("load: %v", err)
	}
	logger.Info("loaded graph", "path", *graphPath, "vertices", g.NumVertices(), "edges", g.NumEdges())

	var batches []graph.Batch
	if *streamPath != "" {
		sf, err := os.Open(*streamPath)
		if err != nil {
			fatal("%v", err)
		}
		batches, err = stream.ReadBatches(sf)
		sf.Close()
		if err != nil {
			fatal("stream: %v", err)
		}
		logger.Info("loaded stream", "path", *streamPath, "batches", len(batches))
	}

	m, err := core.ParseMode(*mode)
	if err != nil {
		fatal("%v", err)
	}
	opts := core.Options{Mode: m, MaxIterations: *iterations, Horizon: *horizon, Retain: *retain, Metrics: reg, Tracer: tracer}

	if *follow != "" {
		runFollower(*algo, g, opts, followConfig{
			leaderURL:    *follow,
			apiAddr:      *apiAddr,
			source:       graph.VertexID(*source),
			top:          *top,
			cacheBytes:   *queryCache,
			durable:      dcfg,
			metrics:      reg,
			logger:       logger,
			stallTimeout: *stallTO,
			flight:       rec,
			setHealth:    healthProxy.Store,
		})
		return
	}

	if *algo == "triangles" {
		if dcfg != nil {
			fatal("-wal-dir is not supported with -algo triangles")
		}
		if *serveMode {
			fatal("-serve is not supported with -algo triangles")
		}
		runTriangles(g, batches, *top, logger)
		return
	}

	run, err := buildRunner(*algo, g, opts, graph.VertexID(*source), *top, dcfg)
	if err != nil {
		fatal("%v", err)
	}
	start := time.Now()
	st, skip := run.run()
	logger.Info("initial run",
		"mode", m.String(),
		"iterations", st.Iterations,
		"edge_computations", st.EdgeComputations,
		"duration", time.Since(start).Round(time.Microsecond))
	seqBase := skip
	if skip > 0 {
		logger.Info("recovered state covers stream prefix", "batches_skipped", skip)
		if skip > uint64(len(batches)) {
			skip = uint64(len(batches))
		}
		batches = batches[skip:]
	}
	if *serveMode {
		// The server owns the single-writer apply loop and (for -wal-dir)
		// the journal: Close drains the queue and closes the journal, so
		// run.close is not called on this path.
		sc := serveConfig{
			readers:       *readers,
			shards:        *shards,
			queueDepth:    *queueDepth,
			cacheBytes:    *queryCache,
			applyDeadline: *applyDl,
			metrics:       reg,
			logger:        logger,
			health:        &healthProxy,
			flight:        rec,
			replicating:   rlog != nil,
		}
		if *apiAddr != "" {
			sc.api = &queryProxy
		}
		if *admitMode {
			sc.admission = &graphbolt.AdmissionOptions{
				SLO:        *slo,
				FloorEdges: *batchFloor,
				CeilEdges:  *batchCeil,
			}
		}
		if err := run.serve(sc, batches); err != nil {
			fatal("serve: %v", err)
		}
	} else {
		for i, b := range batches {
			start = time.Now()
			st, err = run.apply(b)
			if err != nil {
				fatal("batch %d: %v", i+1, err)
			}
			logger.Info("batch applied",
				"seq", seqBase+uint64(i)+1,
				"add", len(b.Add),
				"del", len(b.Del),
				"iterations", st.Iterations,
				"refine_iterations", st.RefineIterations,
				"hybrid_iterations", st.HybridIterations,
				"edge_computations", st.EdgeComputations,
				"duration", time.Since(start).Round(time.Microsecond),
				"mode", m.String())
		}
		if err := run.close(); err != nil {
			fatal("%v", err)
		}
	}
	if *serveMode && *shards > 1 {
		// Sharded serving mutates per-shard engines, not the base
		// engine the runner reports from.
		logger.Info("sharded serve: skipping -top report and -validate (state lives in the shard engines)")
		return
	}
	run.report()
	if *validate {
		worst := run.validate()
		fmt.Printf("validation: max |streamed - scratch| = %.3e\n", worst)
		if worst > 1e-6 {
			fmt.Println("WARNING: divergence above 1e-6 (expected only with a large -tolerance)")
		}
	}
}

// maxAbsDiffScalar compares value arrays.
func maxAbsDiffScalar(a, b []float64) float64 {
	worst := 0.0
	for v := range a {
		d := a[v] - b[v]
		if d < 0 {
			d = -d
		}
		// Both unreachable (+Inf) counts as equal.
		if d != d || (a[v] == b[v]) {
			continue
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func maxAbsDiffVector(a, b [][]float64) float64 {
	worst := 0.0
	for v := range a {
		for f := range a[v] {
			d := a[v][f] - b[v][f]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// runner adapts the differently-typed engines. run performs the initial
// computation (or recovery) and reports how many stream batches the
// recovered state already covers. serve ingests the batches through the
// concurrent serving facade instead of apply (and then owns shutdown,
// including the journal).
type runner struct {
	run      func() (core.Stats, uint64)
	apply    func(graph.Batch) (core.Stats, error)
	close    func() error
	serve    func(serveConfig, []graph.Batch) error
	report   func()
	validate func() (worst float64)
}

// serveConfig carries the -serve flag family. health, when non-nil, is
// the /healthz proxy the server's tracker is published through; api,
// when non-nil, receives the query API handler once the server exists.
type serveConfig struct {
	readers       int
	shards        int
	queueDepth    int
	cacheBytes    int64
	applyDeadline time.Duration
	admission     *graphbolt.AdmissionOptions // nil unless -admission
	metrics       *obs.Registry
	logger        *slog.Logger
	health        *atomic.Pointer[health.Tracker]
	flight        *flight.Recorder              // nil unless -flight
	api           *atomic.Pointer[http.Handler] // nil unless -api-addr
	replicating   bool                          // a replication log is attached to the journal
}

// durableConfig carries the -wal-dir flag family plus the process-wide
// instrumentation hooks. rlog, when non-nil, receives every journaled
// record (OnRecord) and the checkpoint floor after recovery.
type durableConfig struct {
	dir     string
	every   int
	sync    wal.SyncPolicy
	metrics *obs.Registry
	tracer  *obs.Tracer
	flight  *flight.Recorder
	log     *slog.Logger
	rlog    *graphbolt.ReplicationLog
}

// wire connects an engine to the runner entry points, inserting the
// durable journaling layer when -wal-dir is set. The returned serve
// closure ingests batches through the concurrent facade; it must only be
// invoked after run (which, for the durable path, opens the journal).
func wire[V, A any](eng *core.Engine[V, A], cfg *durableConfig) (func() (core.Stats, uint64), func(graph.Batch) (core.Stats, error), func() error, func(serveConfig, []graph.Batch) error) {
	var d *durable.Engine[V, A]
	sv := func(sc serveConfig, batches []graph.Batch) error {
		return serveBatches(eng, d, sc, batches)
	}
	if cfg == nil {
		run := func() (core.Stats, uint64) { return eng.Run(), 0 }
		return run, eng.ApplyBatch, func() error { return nil }, sv
	}
	run := func() (core.Stats, uint64) {
		var onRecord func(wal.Record)
		if cfg.rlog != nil {
			onRecord = cfg.rlog.Append
		}
		var err error
		d, err = durable.Open(eng, cfg.dir, durable.Options{
			CheckpointEvery: cfg.every,
			WAL:             wal.Options{Sync: cfg.sync},
			Metrics:         cfg.metrics,
			Tracer:          cfg.tracer,
			Flight:          cfg.flight,
			OnRecord:        onRecord,
		})
		if err != nil {
			fatal("durable: %v", err)
		}
		if cfg.rlog != nil {
			// Records replayed from the WAL suffix arrived through
			// OnRecord above; the checkpoint-covered prefix is the floor.
			cfg.rlog.SetFloor(d.Recovery().SnapshotSeq)
		}
		if info := d.Recovery(); info.FromSnapshot || info.Replayed > 0 {
			cfg.log.Info("recovered",
				"dir", cfg.dir,
				"from_snapshot", info.FromSnapshot,
				"snapshot_seq", info.SnapshotSeq,
				"replayed", info.Replayed,
				"skipped", info.Skipped,
				"torn_tail", info.WAL.Truncated,
				"dropped_bytes", info.WAL.DroppedBytes)
		}
		return eng.TotalStats(), d.Seq()
	}
	apply := func(b graph.Batch) (core.Stats, error) { return d.ApplyBatch(b) }
	cl := func() error { return d.Close() }
	return run, apply, cl, sv
}

// serveBatches streams the batches through a graphbolt.Server while
// sc.readers goroutines concurrently sample published snapshots,
// then drains and closes the server (journal included, when durable).
func serveBatches[V, A any](eng *core.Engine[V, A], d *durable.Engine[V, A], sc serveConfig, batches []graph.Batch) error {
	logger := sc.logger
	var applyCalls, appliedBatches atomic.Int64
	opts := graphbolt.ServerOptions{
		Shards:          sc.shards,
		QueueDepth:      sc.queueDepth,
		QueryCacheBytes: sc.cacheBytes,
		ApplyDeadline:   sc.applyDeadline,
		Admission:       sc.admission,
		Logger:          logger,
		Flight:          sc.flight,
		// Resuming an interrupted stream relies on journal seq == stream
		// position (skip = d.Seq() above), so the durable path must
		// journal exactly one record per stream batch.
		DisableCoalescing: d != nil,
		Metrics:           sc.metrics,
		OnApply: func(ap graphbolt.Applied) {
			applyCalls.Add(1)
			appliedBatches.Add(int64(ap.Batches))
			logger.Info("batches applied",
				"seq", ap.Seq,
				"trace", ap.Trace.ID,
				"coalesced", ap.Batches,
				"iterations", ap.Stats.Iterations,
				"refine_iterations", ap.Stats.RefineIterations,
				"edge_computations", ap.Stats.EdgeComputations)
		},
	}
	var srv *graphbolt.Server[V, A]
	if d != nil {
		srv = graphbolt.NewDurableServer(d, opts)
	} else {
		srv = graphbolt.NewServer(eng, opts)
	}
	srv.Health().OnTransition(func(from, to health.State, cause error) {
		logger.Warn("health transition", "from", from.String(), "to", to.String(), "cause", cause)
	})
	if sc.health != nil {
		sc.health.Store(srv.Health())
	}
	if sc.api != nil {
		if h := queryHandlerFor(srv); h != nil {
			sc.api.Store(&h)
		} else {
			logger.Warn("query api: no handler for this algorithm's value type (scalar-valued algorithms only)")
		}
	}

	var (
		queries       atomic.Int64
		maxStaleNanos atomic.Int64
		done          = make(chan struct{})
		wg            sync.WaitGroup
	)
	for r := 0; r < sc.readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := srv.Snapshot()
				queries.Add(1)
				// Exercise the per-generation query cache with a point
				// lookup on a rotating vertex: the first reader of each
				// (generation, vertex) pair fills the entry, later ones
				// hit (visible as graphbolt_qcache_* in /metrics).
				if n := s.Graph.NumVertices(); n > 0 {
					qcache.Value(srv.Cache(), s, graph.VertexID(int(queries.Load())%n))
				}
				stale := time.Since(s.PublishedAt).Nanoseconds()
				for {
					cur := maxStaleNanos.Load()
					if stale <= cur || maxStaleNanos.CompareAndSwap(cur, stale) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	ctx := context.Background()
	start := time.Now()
	var sheds int64
	for i := range batches {
		// A retryable refusal (admission shed, full queue under Reject) is
		// the server asking this producer to slow down: honor the hint and
		// resubmit the same batch — order is preserved because this loop is
		// the only producer.
		for {
			_, err := srv.Submit(ctx, batches[i])
			if err == nil {
				break
			}
			if after, ok := graphbolt.RetryAfter(err); ok {
				sheds++
				logger.Info("submission shed, backing off",
					"batch", i+1, "retry_after", after, "err", err)
				time.Sleep(after)
				continue
			}
			close(done)
			wg.Wait()
			return fmt.Errorf("submit batch %d: %w", i+1, err)
		}
	}
	if _, err := srv.Sync(ctx); err != nil {
		close(done)
		wg.Wait()
		return fmt.Errorf("sync: %w", err)
	}
	ingest := time.Since(start)
	close(done)
	wg.Wait()
	if err := srv.Close(ctx); err != nil {
		return err
	}
	oldest, newest := srv.RetainedGenerations()
	logger.Info("serve complete",
		"batches", appliedBatches.Load(),
		"apply_calls", applyCalls.Load(),
		"generation", srv.Generation(),
		"ingest_duration", ingest.Round(time.Microsecond),
		"queries", queries.Load(),
		"max_staleness", time.Duration(maxStaleNanos.Load()).Round(time.Microsecond),
		"retained_oldest", oldest,
		"retained_newest", newest,
		"cache_entries", srv.Cache().Len(),
		"cache_bytes", srv.Cache().Bytes())
	if ctl := srv.Admission(); ctl != nil {
		logger.Info("admission summary",
			"decisions", ctl.Decisions(),
			"shed", ctl.Shed(),
			"producer_backoffs", sheds,
			"final_batch_cap", ctl.Cap(),
			"throughput_edges_per_sec", int64(ctl.Rate()))
	}
	if srv.Shards() > 1 {
		for _, si := range srv.ShardInfos() {
			logger.Info("shard summary",
				"shard", si.Shard,
				"apply_calls", si.Applied,
				"quarantined", si.Quarantined,
				"state", si.State.String())
		}
	}
	if fr := srv.Flight(); fr != nil {
		logger.Info("flight summary",
			"events", fr.Events(),
			"dropped", fr.Dropped(),
			"dumps", fr.Dumps(),
			"slow_batches", fr.SlowBatches())
	}
	return nil
}

// queryHandlerFor builds the /v1/* query handler for the server when
// its value type supports ordering (QueryHandler requires cmp.Ordered
// for /v1/topk); vector-valued servers get nil.
func queryHandlerFor[V, A any](srv *graphbolt.Server[V, A]) http.Handler {
	switch s := any(srv).(type) {
	case *graphbolt.Server[float64, float64]:
		return graphbolt.QueryHandler(s)
	case *graphbolt.Server[float64, algorithms.CoEMAgg]:
		return graphbolt.QueryHandler(s)
	}
	return nil
}

// followConfig carries the -follow flag family.
type followConfig struct {
	leaderURL    string
	apiAddr      string
	source       graph.VertexID // -source, for sssp/bfs
	top          int
	cacheBytes   int64
	durable      *durableConfig // nil unless -wal-dir (a restartable follower)
	metrics      *obs.Registry
	logger       *slog.Logger
	stallTimeout time.Duration         // -stall-timeout
	flight       *flight.Recorder      // nil unless -flight
	setHealth    func(*health.Tracker) // publishes the tracker to /healthz
}

// runFollower dispatches -follow mode to the concretely-typed follow
// loop. Only scalar-valued algorithms are supported: the query API's
// top-k endpoint needs an ordered value type.
func runFollower(algo string, g *graph.Graph, opts core.Options, fc followConfig) {
	switch algo {
	case "pagerank":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), opts)
		if err != nil {
			fatal("%v", err)
		}
		follow(eng, fc, "rank")
	case "coem":
		n := g.NumVertices()
		eng, err := core.NewEngine[float64, algorithms.CoEMAgg](g,
			algorithms.NewCoEM([]graph.VertexID{0}, []graph.VertexID{graph.VertexID(n - 1)}), opts)
		if err != nil {
			fatal("%v", err)
		}
		follow(eng, fc, "score")
	case "sssp":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewSSSP(fc.source), opts)
		if err != nil {
			fatal("%v", err)
		}
		follow(eng, fc, "distance")
	case "bfs":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewBFS(fc.source), opts)
		if err != nil {
			fatal("%v", err)
		}
		follow(eng, fc, "hops")
	case "cc":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewConnectedComponents(), opts)
		if err != nil {
			fatal("%v", err)
		}
		follow(eng, fc, "component")
	default:
		fatal("-follow supports scalar-valued algorithms (pagerank, coem, sssp, bfs, cc), not %q", algo)
	}
}

// follow runs the replica loop in the foreground: build the follower
// (durable when -wal-dir is set), serve the query API, tail the leader
// until SIGINT/SIGTERM or a terminal stream fault.
func follow[A any](eng *core.Engine[float64, A], fc followConfig, valueName string) {
	logger := fc.logger
	tracker := health.NewTracker(fc.metrics)
	if fc.setHealth != nil {
		fc.setHealth(tracker)
	}
	fopts := graphbolt.FollowerOptions{
		Metrics:         fc.metrics,
		QueryCacheBytes: fc.cacheBytes,
		Logger:          logger,
		StallTimeout:    fc.stallTimeout,
		Health:          tracker,
		Flight:          fc.flight,
	}
	var f *graphbolt.Follower[float64, A]
	var err error
	if fc.durable != nil {
		d, derr := durable.Open(eng, fc.durable.dir, durable.Options{
			CheckpointEvery: fc.durable.every,
			WAL:             wal.Options{Sync: fc.durable.sync},
			Metrics:         fc.durable.metrics,
			Tracer:          fc.durable.tracer,
			Flight:          fc.durable.flight,
		})
		if derr != nil {
			fatal("durable: %v", derr)
		}
		defer d.Close()
		if info := d.Recovery(); info.FromSnapshot || info.Replayed > 0 {
			logger.Info("follower recovered", "dir", fc.durable.dir, "resume_from", d.Seq())
		} else {
			logger.Info("follower bootstrap", "mode", "durable", "dir", fc.durable.dir, "resume_from", d.Seq())
		}
		f, err = graphbolt.NewDurableFollower(d, fc.leaderURL, fopts)
	} else {
		// No -wal-dir: the resume position lives only in memory, so every
		// process start is a bootstrap from sequence 0 — served by the
		// leader's log when it still covers it, or by a shipped checkpoint
		// once the log has been compacted.
		logger.Info("follower bootstrap", "mode", "in-memory", "resume_from", 0,
			"note", "no -wal-dir: restart re-streams from 0 or re-seeds from the leader's checkpoint")
		f, err = graphbolt.NewFollower(eng, nil, fc.leaderURL, fopts)
	}
	if err != nil {
		fatal("follow: %v", err)
	}
	if fc.apiAddr != "" {
		ln, lerr := net.Listen("tcp", fc.apiAddr)
		if lerr != nil {
			fatal("api listener: %v", lerr)
		}
		api := graphbolt.FollowerQueryHandler(f)
		var h http.Handler = api
		if fc.metrics != nil {
			h = obs.HandlerWith(fc.metrics, map[string]http.Handler{"/v1/": api})
		}
		logger.Info("follower query api", "addr", ln.Addr().String())
		go func() {
			if serr := http.Serve(ln, h); serr != nil {
				logger.Error("api server", "err", serr)
			}
		}()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("following", "leader", fc.leaderURL, "durable", fc.durable != nil)
	err = f.Run(ctx)
	if ctx.Err() == nil && err != nil {
		fatal("follow: %v", err)
	}
	logger.Info("follower stopped",
		"applied", f.AppliedSeq(),
		"leader_seq", f.LeaderSeq(),
		"lag", f.Lag(),
		"records", f.Records(),
		"resumes", f.Resumes(),
		"reseeds", f.Reseeds(),
		"stalls", f.Stalls())
	printTop(valueName, eng.Values(), fc.top)
}

func parseSync(s string) (wal.SyncPolicy, error) {
	switch s {
	case "every":
		return wal.SyncEveryBatch, nil
	case "interval":
		return wal.SyncInterval, nil
	case "none":
		return wal.SyncNone, nil
	default:
		return 0, fmt.Errorf("unknown sync policy %q", s)
	}
}

func buildRunner(algo string, g *graph.Graph, opts core.Options, source graph.VertexID, top int, cfg *durableConfig) (*runner, error) {
	scalarReport := func(name string, eng *core.Engine[float64, float64]) func() {
		return func() { printTop(name, eng.Values(), top) }
	}
	scalarValidate := func(eng *core.Engine[float64, float64], p core.Program[float64, float64]) func() float64 {
		return func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[float64, float64](eng.Graph(), p, o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffScalar(eng.Values(), fresh.Values())
		}
	}
	vectorValidate := func(eng *core.Engine[[]float64, []float64], p core.Program[[]float64, []float64]) func() float64 {
		return func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[[]float64, []float64](eng.Graph(), p, o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffVector(eng.Values(), fresh.Values())
		}
	}
	switch algo {
	case "pagerank":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl, sv := wire(eng, cfg)
		return &runner{run, apply, cl, sv, scalarReport("rank", eng), scalarValidate(eng, algorithms.NewPageRank())}, nil
	case "coem":
		n := g.NumVertices()
		eng, err := core.NewEngine[float64, algorithms.CoEMAgg](g,
			algorithms.NewCoEM([]graph.VertexID{0}, []graph.VertexID{graph.VertexID(n - 1)}), opts)
		if err != nil {
			return nil, err
		}
		coemValidate := func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[float64, algorithms.CoEMAgg](eng.Graph(),
				algorithms.NewCoEM([]graph.VertexID{0}, []graph.VertexID{graph.VertexID(n - 1)}), o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffScalar(eng.Values(), fresh.Values())
		}
		run, apply, cl, sv := wire(eng, cfg)
		return &runner{run, apply, cl, sv, func() { printTop("score", eng.Values(), top) }, coemValidate}, nil
	case "labelprop":
		eng, err := core.NewEngine[[]float64, []float64](g,
			algorithms.NewLabelProp(3, map[graph.VertexID]int{0: 0, 1: 1, 2: 2}), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl, sv := wire(eng, cfg)
		return &runner{run, apply, cl, sv, func() { printVector("label", eng.Values(), top) },
			vectorValidate(eng, algorithms.NewLabelProp(3, map[graph.VertexID]int{0: 0, 1: 1, 2: 2}))}, nil
	case "bp":
		eng, err := core.NewEngine[[]float64, []float64](g, algorithms.NewBeliefProp(3), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl, sv := wire(eng, cfg)
		return &runner{run, apply, cl, sv, func() { printVector("belief", eng.Values(), top) },
			vectorValidate(eng, algorithms.NewBeliefProp(3))}, nil
	case "cf":
		eng, err := core.NewEngine[[]float64, algorithms.CFAgg](g, algorithms.NewCollabFilter(4), opts)
		if err != nil {
			return nil, err
		}
		cfValidate := func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[[]float64, algorithms.CFAgg](eng.Graph(), algorithms.NewCollabFilter(4), o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffVector(eng.Values(), fresh.Values())
		}
		run, apply, cl, sv := wire(eng, cfg)
		return &runner{run, apply, cl, sv, func() { printVector("factors", eng.Values(), top) }, cfValidate}, nil
	case "sssp":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewSSSP(source), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl, sv := wire(eng, cfg)
		return &runner{run, apply, cl, sv, scalarReport("distance", eng), scalarValidate(eng, algorithms.NewSSSP(source))}, nil
	case "bfs":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewBFS(source), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl, sv := wire(eng, cfg)
		return &runner{run, apply, cl, sv, scalarReport("hops", eng), scalarValidate(eng, algorithms.NewBFS(source))}, nil
	case "cc":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewConnectedComponents(), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl, sv := wire(eng, cfg)
		return &runner{run, apply, cl, sv, scalarReport("component", eng), scalarValidate(eng, algorithms.NewConnectedComponents())}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func runTriangles(g *graph.Graph, batches []graph.Batch, top int, logger *slog.Logger) {
	start := time.Now()
	tc := algorithms.NewTriangleCounter(g)
	logger.Info("initial count", "cycles", tc.Triangles(), "duration", time.Since(start).Round(time.Microsecond))
	for i, b := range batches {
		start = time.Now()
		tc.Apply(b)
		logger.Info("batch applied",
			"seq", i+1, "add", len(b.Add), "del", len(b.Del),
			"cycles", tc.Triangles(), "duration", time.Since(start).Round(time.Microsecond))
	}
	for _, vt := range tc.TopTriangleVertices(top) {
		fmt.Printf("  vertex %d closes %d cycles\n", vt.Vertex, vt.Closures)
	}
}

func printTop(name string, vals []float64, k int) {
	type pair struct {
		v graph.VertexID
		x float64
	}
	ps := make([]pair, len(vals))
	for i, x := range vals {
		ps[i] = pair{graph.VertexID(i), x}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x > ps[j].x })
	if k > len(ps) {
		k = len(ps)
	}
	fmt.Printf("top %d by %s:\n", k, name)
	for _, p := range ps[:k] {
		fmt.Printf("  vertex %-8d %g\n", p.v, p.x)
	}
}

func printVector(name string, vals [][]float64, k int) {
	if k > len(vals) {
		k = len(vals)
	}
	fmt.Printf("first %d %s vectors:\n", k, name)
	for v := 0; v < k; v++ {
		fmt.Printf("  vertex %-8d %v\n", v, vals[v])
	}
}

// newLogger builds the progress logger on stderr, keeping stdout for
// result output (-top, -validate).
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
