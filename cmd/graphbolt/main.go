// Command graphbolt runs a streaming graph computation: it loads a base
// graph, computes the initial result, then applies mutation batches from
// a stream file (graphgen's format), reporting per-batch latency and
// work.
//
// Usage:
//
//	graphbolt -graph base.el -stream stream.el -algo pagerank
//	graphbolt -graph base.el -algo sssp -source 0 -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "base graph edge-list file (required)")
		streamPath = flag.String("stream", "", "mutation stream file (optional)")
		algo       = flag.String("algo", "pagerank", "pagerank | labelprop | coem | bp | cf | sssp | bfs | cc | triangles")
		mode       = flag.String("mode", "graphbolt", "graphbolt | graphbolt-rp | reset | ligra | naive")
		iterations = flag.Int("iterations", 10, "BSP iterations")
		horizon    = flag.Int("horizon", 0, "horizontal pruning cut-off (0 = iterations)")
		source     = flag.Uint("source", 0, "source vertex for sssp/bfs")
		top        = flag.Int("top", 5, "print the top-k vertices by value")
		validate   = flag.Bool("validate", false, "after the stream, cross-check against a from-scratch run")
	)
	flag.Parse()
	if *graphPath == "" {
		fatal("need -graph")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal("%v", err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fatal("load: %v", err)
	}
	fmt.Printf("loaded %s: V=%d E=%d\n", *graphPath, g.NumVertices(), g.NumEdges())

	var batches []graph.Batch
	if *streamPath != "" {
		sf, err := os.Open(*streamPath)
		if err != nil {
			fatal("%v", err)
		}
		batches, err = stream.ReadBatches(sf)
		sf.Close()
		if err != nil {
			fatal("stream: %v", err)
		}
		fmt.Printf("stream: %d batches\n", len(batches))
	}

	m, err := parseMode(*mode)
	if err != nil {
		fatal("%v", err)
	}
	opts := core.Options{Mode: m, MaxIterations: *iterations, Horizon: *horizon}

	if *algo == "triangles" {
		runTriangles(g, batches, *top)
		return
	}

	run, err := buildRunner(*algo, g, opts, graph.VertexID(*source), *top)
	if err != nil {
		fatal("%v", err)
	}
	start := time.Now()
	st := run.run()
	fmt.Printf("initial run: %v (%d iterations, %d edge computations)\n",
		time.Since(start).Round(time.Microsecond), st.Iterations, st.EdgeComputations)
	for i, b := range batches {
		start = time.Now()
		st = run.apply(b)
		fmt.Printf("batch %d (%d+ %d-): %v (%d edge computations)\n",
			i+1, len(b.Add), len(b.Del), time.Since(start).Round(time.Microsecond), st.EdgeComputations)
	}
	run.report()
	if *validate {
		worst := run.validate()
		fmt.Printf("validation: max |streamed - scratch| = %.3e\n", worst)
		if worst > 1e-6 {
			fmt.Println("WARNING: divergence above 1e-6 (expected only with a large -tolerance)")
		}
	}
}

// maxAbsDiffScalar compares value arrays.
func maxAbsDiffScalar(a, b []float64) float64 {
	worst := 0.0
	for v := range a {
		d := a[v] - b[v]
		if d < 0 {
			d = -d
		}
		// Both unreachable (+Inf) counts as equal.
		if d != d || (a[v] == b[v]) {
			continue
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func maxAbsDiffVector(a, b [][]float64) float64 {
	worst := 0.0
	for v := range a {
		for f := range a[v] {
			d := a[v][f] - b[v][f]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// runner adapts the differently-typed engines.
type runner struct {
	run      func() core.Stats
	apply    func(graph.Batch) core.Stats
	report   func()
	validate func() (worst float64)
}

func buildRunner(algo string, g *graph.Graph, opts core.Options, source graph.VertexID, top int) (*runner, error) {
	scalarReport := func(name string, eng *core.Engine[float64, float64]) func() {
		return func() { printTop(name, eng.Values(), top) }
	}
	scalarValidate := func(eng *core.Engine[float64, float64], p core.Program[float64, float64]) func() float64 {
		return func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[float64, float64](eng.Graph(), p, o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffScalar(eng.Values(), fresh.Values())
		}
	}
	vectorValidate := func(eng *core.Engine[[]float64, []float64], p core.Program[[]float64, []float64]) func() float64 {
		return func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[[]float64, []float64](eng.Graph(), p, o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffVector(eng.Values(), fresh.Values())
		}
	}
	switch algo {
	case "pagerank":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), opts)
		if err != nil {
			return nil, err
		}
		return &runner{eng.Run, eng.ApplyBatch, scalarReport("rank", eng), scalarValidate(eng, algorithms.NewPageRank())}, nil
	case "coem":
		n := g.NumVertices()
		eng, err := core.NewEngine[float64, algorithms.CoEMAgg](g,
			algorithms.NewCoEM([]graph.VertexID{0}, []graph.VertexID{graph.VertexID(n - 1)}), opts)
		if err != nil {
			return nil, err
		}
		coemValidate := func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[float64, algorithms.CoEMAgg](eng.Graph(),
				algorithms.NewCoEM([]graph.VertexID{0}, []graph.VertexID{graph.VertexID(n - 1)}), o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffScalar(eng.Values(), fresh.Values())
		}
		return &runner{eng.Run, eng.ApplyBatch, func() { printTop("score", eng.Values(), top) }, coemValidate}, nil
	case "labelprop":
		eng, err := core.NewEngine[[]float64, []float64](g,
			algorithms.NewLabelProp(3, map[graph.VertexID]int{0: 0, 1: 1, 2: 2}), opts)
		if err != nil {
			return nil, err
		}
		return &runner{eng.Run, eng.ApplyBatch, func() { printVector("label", eng.Values(), top) },
			vectorValidate(eng, algorithms.NewLabelProp(3, map[graph.VertexID]int{0: 0, 1: 1, 2: 2}))}, nil
	case "bp":
		eng, err := core.NewEngine[[]float64, []float64](g, algorithms.NewBeliefProp(3), opts)
		if err != nil {
			return nil, err
		}
		return &runner{eng.Run, eng.ApplyBatch, func() { printVector("belief", eng.Values(), top) },
			vectorValidate(eng, algorithms.NewBeliefProp(3))}, nil
	case "cf":
		eng, err := core.NewEngine[[]float64, algorithms.CFAgg](g, algorithms.NewCollabFilter(4), opts)
		if err != nil {
			return nil, err
		}
		cfValidate := func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[[]float64, algorithms.CFAgg](eng.Graph(), algorithms.NewCollabFilter(4), o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffVector(eng.Values(), fresh.Values())
		}
		return &runner{eng.Run, eng.ApplyBatch, func() { printVector("factors", eng.Values(), top) }, cfValidate}, nil
	case "sssp":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewSSSP(source), opts)
		if err != nil {
			return nil, err
		}
		return &runner{eng.Run, eng.ApplyBatch, scalarReport("distance", eng), scalarValidate(eng, algorithms.NewSSSP(source))}, nil
	case "bfs":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewBFS(source), opts)
		if err != nil {
			return nil, err
		}
		return &runner{eng.Run, eng.ApplyBatch, scalarReport("hops", eng), scalarValidate(eng, algorithms.NewBFS(source))}, nil
	case "cc":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewConnectedComponents(), opts)
		if err != nil {
			return nil, err
		}
		return &runner{eng.Run, eng.ApplyBatch, scalarReport("component", eng), scalarValidate(eng, algorithms.NewConnectedComponents())}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func runTriangles(g *graph.Graph, batches []graph.Batch, top int) {
	start := time.Now()
	tc := algorithms.NewTriangleCounter(g)
	fmt.Printf("initial count: %d directed 3-cycles in %v\n",
		tc.Triangles(), time.Since(start).Round(time.Microsecond))
	for i, b := range batches {
		start = time.Now()
		tc.Apply(b)
		fmt.Printf("batch %d: %d cycles, %v\n", i+1, tc.Triangles(), time.Since(start).Round(time.Microsecond))
	}
	for _, vt := range tc.TopTriangleVertices(top) {
		fmt.Printf("  vertex %d closes %d cycles\n", vt.Vertex, vt.Closures)
	}
}

func printTop(name string, vals []float64, k int) {
	type pair struct {
		v graph.VertexID
		x float64
	}
	ps := make([]pair, len(vals))
	for i, x := range vals {
		ps[i] = pair{graph.VertexID(i), x}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x > ps[j].x })
	if k > len(ps) {
		k = len(ps)
	}
	fmt.Printf("top %d by %s:\n", k, name)
	for _, p := range ps[:k] {
		fmt.Printf("  vertex %-8d %g\n", p.v, p.x)
	}
}

func printVector(name string, vals [][]float64, k int) {
	if k > len(vals) {
		k = len(vals)
	}
	fmt.Printf("first %d %s vectors:\n", k, name)
	for v := 0; v < k; v++ {
		fmt.Printf("  vertex %-8d %v\n", v, vals[v])
	}
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "graphbolt":
		return core.ModeGraphBolt, nil
	case "graphbolt-rp":
		return core.ModeGraphBoltRP, nil
	case "reset":
		return core.ModeReset, nil
	case "ligra":
		return core.ModeLigra, nil
	case "naive":
		return core.ModeNaive, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
