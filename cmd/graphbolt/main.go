// Command graphbolt runs a streaming graph computation: it loads a base
// graph, computes the initial result, then applies mutation batches from
// a stream file (graphgen's format), reporting per-batch latency and
// work.
//
// Usage:
//
//	graphbolt -graph base.el -stream stream.el -algo pagerank
//	graphbolt -graph base.el -algo sssp -source 0 -top 10
//	graphbolt -graph base.el -stream stream.el -wal-dir state/ -checkpoint-every 10
//
// With -wal-dir, every batch is journaled to a write-ahead log before it
// is applied and the engine is checkpointed every -checkpoint-every
// batches; restarting the command with the same -wal-dir recovers the
// pre-crash state and continues the stream from there.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/wal"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "base graph edge-list file (required)")
		streamPath = flag.String("stream", "", "mutation stream file (optional)")
		algo       = flag.String("algo", "pagerank", "pagerank | labelprop | coem | bp | cf | sssp | bfs | cc | triangles")
		mode       = flag.String("mode", "graphbolt", "graphbolt | graphbolt-rp | reset | ligra | naive")
		iterations = flag.Int("iterations", 10, "BSP iterations")
		horizon    = flag.Int("horizon", 0, "horizontal pruning cut-off (0 = iterations)")
		source     = flag.Uint("source", 0, "source vertex for sssp/bfs")
		top        = flag.Int("top", 5, "print the top-k vertices by value")
		validate   = flag.Bool("validate", false, "after the stream, cross-check against a from-scratch run")
		walDir     = flag.String("wal-dir", "", "directory for the write-ahead log and checkpoints (enables durability + crash recovery)")
		ckptEvery  = flag.Int("checkpoint-every", 10, "batches between automatic checkpoints (with -wal-dir; 0 = only journal)")
		syncMode   = flag.String("sync", "every", "journal sync policy: every | interval | none (with -wal-dir)")
	)
	flag.Parse()
	if *graphPath == "" {
		fatal("need -graph")
	}
	var dcfg *durableConfig
	if *walDir != "" {
		policy, err := parseSync(*syncMode)
		if err != nil {
			fatal("%v", err)
		}
		dcfg = &durableConfig{dir: *walDir, every: *ckptEvery, sync: policy}
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal("%v", err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fatal("load: %v", err)
	}
	fmt.Printf("loaded %s: V=%d E=%d\n", *graphPath, g.NumVertices(), g.NumEdges())

	var batches []graph.Batch
	if *streamPath != "" {
		sf, err := os.Open(*streamPath)
		if err != nil {
			fatal("%v", err)
		}
		batches, err = stream.ReadBatches(sf)
		sf.Close()
		if err != nil {
			fatal("stream: %v", err)
		}
		fmt.Printf("stream: %d batches\n", len(batches))
	}

	m, err := parseMode(*mode)
	if err != nil {
		fatal("%v", err)
	}
	opts := core.Options{Mode: m, MaxIterations: *iterations, Horizon: *horizon}

	if *algo == "triangles" {
		if dcfg != nil {
			fatal("-wal-dir is not supported with -algo triangles")
		}
		runTriangles(g, batches, *top)
		return
	}

	run, err := buildRunner(*algo, g, opts, graph.VertexID(*source), *top, dcfg)
	if err != nil {
		fatal("%v", err)
	}
	start := time.Now()
	st, skip := run.run()
	fmt.Printf("initial run: %v (%d iterations, %d edge computations)\n",
		time.Since(start).Round(time.Microsecond), st.Iterations, st.EdgeComputations)
	if skip > 0 {
		fmt.Printf("recovered state covers the first %d stream batches; skipping them\n", skip)
		if skip > uint64(len(batches)) {
			skip = uint64(len(batches))
		}
		batches = batches[skip:]
	}
	for i, b := range batches {
		start = time.Now()
		st, err = run.apply(b)
		if err != nil {
			fatal("batch %d: %v", i+1, err)
		}
		fmt.Printf("batch %d (%d+ %d-): %v (%d edge computations)\n",
			i+1, len(b.Add), len(b.Del), time.Since(start).Round(time.Microsecond), st.EdgeComputations)
	}
	if err := run.close(); err != nil {
		fatal("%v", err)
	}
	run.report()
	if *validate {
		worst := run.validate()
		fmt.Printf("validation: max |streamed - scratch| = %.3e\n", worst)
		if worst > 1e-6 {
			fmt.Println("WARNING: divergence above 1e-6 (expected only with a large -tolerance)")
		}
	}
}

// maxAbsDiffScalar compares value arrays.
func maxAbsDiffScalar(a, b []float64) float64 {
	worst := 0.0
	for v := range a {
		d := a[v] - b[v]
		if d < 0 {
			d = -d
		}
		// Both unreachable (+Inf) counts as equal.
		if d != d || (a[v] == b[v]) {
			continue
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func maxAbsDiffVector(a, b [][]float64) float64 {
	worst := 0.0
	for v := range a {
		for f := range a[v] {
			d := a[v][f] - b[v][f]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// runner adapts the differently-typed engines. run performs the initial
// computation (or recovery) and reports how many stream batches the
// recovered state already covers.
type runner struct {
	run      func() (core.Stats, uint64)
	apply    func(graph.Batch) (core.Stats, error)
	close    func() error
	report   func()
	validate func() (worst float64)
}

// durableConfig carries the -wal-dir flag family.
type durableConfig struct {
	dir   string
	every int
	sync  wal.SyncPolicy
}

// wire connects an engine to the runner entry points, inserting the
// durable journaling layer when -wal-dir is set.
func wire[V, A any](eng *core.Engine[V, A], cfg *durableConfig) (func() (core.Stats, uint64), func(graph.Batch) (core.Stats, error), func() error) {
	if cfg == nil {
		run := func() (core.Stats, uint64) { return eng.Run(), 0 }
		return run, eng.ApplyBatch, func() error { return nil }
	}
	var d *durable.Engine[V, A]
	run := func() (core.Stats, uint64) {
		var err error
		d, err = durable.Open(eng, cfg.dir, durable.Options{
			CheckpointEvery: cfg.every,
			WAL:             wal.Options{Sync: cfg.sync},
		})
		if err != nil {
			fatal("durable: %v", err)
		}
		if info := d.Recovery(); info.FromSnapshot || info.Replayed > 0 {
			if info.FromSnapshot {
				fmt.Printf("recovered from %s: checkpoint seq %d, %d journal records replayed",
					cfg.dir, info.SnapshotSeq, info.Replayed)
			} else {
				fmt.Printf("recovered from %s: no checkpoint, %d journal records replayed",
					cfg.dir, info.Replayed)
			}
			if info.WAL.Truncated {
				fmt.Printf(" (torn journal tail: %d bytes dropped)", info.WAL.DroppedBytes)
			}
			fmt.Println()
		}
		return eng.TotalStats(), d.Seq()
	}
	apply := func(b graph.Batch) (core.Stats, error) { return d.ApplyBatch(b) }
	cl := func() error { return d.Close() }
	return run, apply, cl
}

func parseSync(s string) (wal.SyncPolicy, error) {
	switch s {
	case "every":
		return wal.SyncEveryBatch, nil
	case "interval":
		return wal.SyncInterval, nil
	case "none":
		return wal.SyncNone, nil
	default:
		return 0, fmt.Errorf("unknown sync policy %q", s)
	}
}

func buildRunner(algo string, g *graph.Graph, opts core.Options, source graph.VertexID, top int, cfg *durableConfig) (*runner, error) {
	scalarReport := func(name string, eng *core.Engine[float64, float64]) func() {
		return func() { printTop(name, eng.Values(), top) }
	}
	scalarValidate := func(eng *core.Engine[float64, float64], p core.Program[float64, float64]) func() float64 {
		return func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[float64, float64](eng.Graph(), p, o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffScalar(eng.Values(), fresh.Values())
		}
	}
	vectorValidate := func(eng *core.Engine[[]float64, []float64], p core.Program[[]float64, []float64]) func() float64 {
		return func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[[]float64, []float64](eng.Graph(), p, o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffVector(eng.Values(), fresh.Values())
		}
	}
	switch algo {
	case "pagerank":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl := wire(eng, cfg)
		return &runner{run, apply, cl, scalarReport("rank", eng), scalarValidate(eng, algorithms.NewPageRank())}, nil
	case "coem":
		n := g.NumVertices()
		eng, err := core.NewEngine[float64, algorithms.CoEMAgg](g,
			algorithms.NewCoEM([]graph.VertexID{0}, []graph.VertexID{graph.VertexID(n - 1)}), opts)
		if err != nil {
			return nil, err
		}
		coemValidate := func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[float64, algorithms.CoEMAgg](eng.Graph(),
				algorithms.NewCoEM([]graph.VertexID{0}, []graph.VertexID{graph.VertexID(n - 1)}), o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffScalar(eng.Values(), fresh.Values())
		}
		run, apply, cl := wire(eng, cfg)
		return &runner{run, apply, cl, func() { printTop("score", eng.Values(), top) }, coemValidate}, nil
	case "labelprop":
		eng, err := core.NewEngine[[]float64, []float64](g,
			algorithms.NewLabelProp(3, map[graph.VertexID]int{0: 0, 1: 1, 2: 2}), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl := wire(eng, cfg)
		return &runner{run, apply, cl, func() { printVector("label", eng.Values(), top) },
			vectorValidate(eng, algorithms.NewLabelProp(3, map[graph.VertexID]int{0: 0, 1: 1, 2: 2}))}, nil
	case "bp":
		eng, err := core.NewEngine[[]float64, []float64](g, algorithms.NewBeliefProp(3), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl := wire(eng, cfg)
		return &runner{run, apply, cl, func() { printVector("belief", eng.Values(), top) },
			vectorValidate(eng, algorithms.NewBeliefProp(3))}, nil
	case "cf":
		eng, err := core.NewEngine[[]float64, algorithms.CFAgg](g, algorithms.NewCollabFilter(4), opts)
		if err != nil {
			return nil, err
		}
		cfValidate := func() float64 {
			o := opts
			o.Mode = core.ModeReset
			fresh, err := core.NewEngine[[]float64, algorithms.CFAgg](eng.Graph(), algorithms.NewCollabFilter(4), o)
			if err != nil {
				fatal("%v", err)
			}
			fresh.Run()
			return maxAbsDiffVector(eng.Values(), fresh.Values())
		}
		run, apply, cl := wire(eng, cfg)
		return &runner{run, apply, cl, func() { printVector("factors", eng.Values(), top) }, cfValidate}, nil
	case "sssp":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewSSSP(source), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl := wire(eng, cfg)
		return &runner{run, apply, cl, scalarReport("distance", eng), scalarValidate(eng, algorithms.NewSSSP(source))}, nil
	case "bfs":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewBFS(source), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl := wire(eng, cfg)
		return &runner{run, apply, cl, scalarReport("hops", eng), scalarValidate(eng, algorithms.NewBFS(source))}, nil
	case "cc":
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewConnectedComponents(), opts)
		if err != nil {
			return nil, err
		}
		run, apply, cl := wire(eng, cfg)
		return &runner{run, apply, cl, scalarReport("component", eng), scalarValidate(eng, algorithms.NewConnectedComponents())}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func runTriangles(g *graph.Graph, batches []graph.Batch, top int) {
	start := time.Now()
	tc := algorithms.NewTriangleCounter(g)
	fmt.Printf("initial count: %d directed 3-cycles in %v\n",
		tc.Triangles(), time.Since(start).Round(time.Microsecond))
	for i, b := range batches {
		start = time.Now()
		tc.Apply(b)
		fmt.Printf("batch %d: %d cycles, %v\n", i+1, tc.Triangles(), time.Since(start).Round(time.Microsecond))
	}
	for _, vt := range tc.TopTriangleVertices(top) {
		fmt.Printf("  vertex %d closes %d cycles\n", vt.Vertex, vt.Closures)
	}
}

func printTop(name string, vals []float64, k int) {
	type pair struct {
		v graph.VertexID
		x float64
	}
	ps := make([]pair, len(vals))
	for i, x := range vals {
		ps[i] = pair{graph.VertexID(i), x}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x > ps[j].x })
	if k > len(ps) {
		k = len(ps)
	}
	fmt.Printf("top %d by %s:\n", k, name)
	for _, p := range ps[:k] {
		fmt.Printf("  vertex %-8d %g\n", p.v, p.x)
	}
}

func printVector(name string, vals [][]float64, k int) {
	if k > len(vals) {
		k = len(vals)
	}
	fmt.Printf("first %d %s vectors:\n", k, name)
	for v := 0; v < k; v++ {
		fmt.Printf("  vertex %-8d %v\n", v, vals[v])
	}
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "graphbolt":
		return core.ModeGraphBolt, nil
	case "graphbolt-rp":
		return core.ModeGraphBoltRP, nil
	case "reset":
		return core.ModeReset, nil
	case "ligra":
		return core.ModeLigra, nil
	case "naive":
		return core.ModeNaive, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
