// Command graphbolt-bench regenerates the paper's evaluation tables and
// figures (§5) on scaled synthetic workloads. Run with -list to see the
// available experiments, -exp all for the full suite.
//
// Usage:
//
//	graphbolt-bench -exp table5 -scale 1.0
//	graphbolt-bench -exp all -scale 0.25 -iterations 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/exps"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func main() {
	var (
		expName    = flag.String("exp", "all", "experiment name (see -list) or 'all'")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		iterations = flag.Int("iterations", 10, "BSP iterations per run (the paper uses 10)")
		seed       = flag.Uint64("seed", 42, "generator seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		metricsOut = flag.String("metrics-out", "", "write the final metrics snapshot as JSON to this file ('-' = stdout)")
	)
	flag.Parse()

	if *list {
		for _, e := range exps.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Desc)
		}
		return
	}

	// With -metrics-out, every engine the experiments construct reports
	// into the process-wide registry; the snapshot is dumped at the end.
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.Default()
		core.SetDefaultMetrics(reg)
		core.RegisterMetrics(reg)
		parallel.SetMetrics(reg)
	}

	cfg := exps.Config{
		Scale:      *scale,
		Iterations: *iterations,
		Seed:       *seed,
		Out:        os.Stdout,
	}

	run := func(e exps.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Desc)
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *expName == "all" {
		for _, e := range exps.All() {
			run(e)
		}
	} else if e, ok := exps.ByName(*expName); ok {
		run(e)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", *expName, exps.Names())
		os.Exit(2)
	}

	if reg != nil {
		if err := dumpMetrics(reg, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpMetrics writes the registry snapshot as indented JSON to path
// ("-" means stdout).
func dumpMetrics(reg *obs.Registry, path string) error {
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
