package graphbolt_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"math"
	"testing"
	"time"

	graphbolt "repro"
	"repro/internal/faultio"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/wal"
)

// TestChaosSoak drives a long randomized mutation stream through a
// durable server while storage faults fire underneath it — periodic
// fsync failures, torn writes, transient write outages — and scripted
// poison batches are interleaved with the valid ones. It asserts the
// self-healing contract end to end:
//
//   - the server survives every fault and ends Healthy;
//   - exactly the poison batches are quarantined (the valid ones all
//     apply, in order, despite the degraded episodes in between);
//   - the final values equal a from-scratch ModeReset run over the
//     surviving stream — the BSP equivalence guarantee holds across
//     quarantines and recoveries;
//   - a process restart (reopen from the same directory, no faults)
//     recovers the same state the live server ended with.
//
// Run it under the race detector via `make chaos`; -short shrinks the
// stream for CI.
func TestChaosSoak(t *testing.T) {
	nBatches := 220
	if testing.Short() {
		nBatches = 40
	}
	const nVerts = 256
	edges := gen.RMAT(42, nVerts, 6000, gen.WeightUniform)
	strm, err := stream.FromEdges(nVerts, edges, stream.Config{
		BatchSize:      12,
		DeleteFraction: 0.25,
		NumBatches:     nBatches,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(strm.Batches) < nBatches {
		t.Fatalf("stream yielded %d batches, want %d", len(strm.Batches), nBatches)
	}

	eng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var inj *faultio.Writer
	fsync := faultio.NewFsync()
	d, err := graphbolt.OpenDurable(eng, dir, graphbolt.DurableOptions{
		CheckpointEvery: 25,
		WAL: graphbolt.WALOptions{
			Sync: graphbolt.SyncEveryBatch,
			Hooks: wal.Hooks{
				WrapWriter: func(w io.Writer) io.Writer {
					inj = faultio.NewWriter(w)
					return inj
				},
				BeforeSync: fsync.Check,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := graphbolt.NewDurableServer(d, graphbolt.ServerOptions{
		DisableCoalescing: true, // one journal record per stream batch
		QuarantineDepth:   64,   // hold every scripted poison record
		Backoff:           graphbolt.BackoffPolicy{Base: 500 * time.Microsecond, Max: 5 * time.Millisecond},
		Logger:            slog.New(slog.DiscardHandler),
	})
	gen0 := srv.Generation()

	// The whole run happens under a flaky disk: every 7th fsync fails.
	// The fault is periodic, not latched, so each degraded episode's
	// repair-and-retry loop converges on its own.
	fsync.FailEveryKth(7, nil)

	ctx := context.Background()
	submit := func(b graphbolt.Batch) *graphbolt.SubmitTicket {
		t.Helper()
		for {
			tk, err := srv.Submit(ctx, b)
			if err == nil {
				return tk
			}
			if !errors.Is(err, graphbolt.ErrDegraded) {
				t.Fatalf("Submit failed non-degraded: %v", err)
			}
			time.Sleep(200 * time.Microsecond) // degraded: recovery in flight
		}
	}
	mkPoison := func(k int) graphbolt.Batch {
		if k%2 == 0 {
			return graphbolt.Batch{Add: []graphbolt.Edge{
				{From: 1, To: 2, Weight: 1},
				{From: 3, To: graph.MaxVertexID + 1, Weight: 1}, // out of range
			}}
		}
		return graphbolt.Batch{Add: []graphbolt.Edge{
			{From: 4, To: 5, Weight: math.NaN()},
		}}
	}

	var (
		validTickets  []*graphbolt.SubmitTicket
		poisonTickets []*graphbolt.SubmitTicket
		poisonSeqs    []uint64 // accepted-submission ordinals of the poisons
		submitted     uint64
	)
	for i, b := range strm.Batches[:nBatches] {
		// Scripted faults, armed from the producer goroutine while the
		// apply loop races underneath (the injectors are mutex-guarded).
		if i%23 == 13 {
			inj.ShortNext(5, nil) // torn append: frame cut mid-record
		}
		if i%37 == 19 {
			inj.FailNWrites(2, nil) // transient outage: next two writes refused
		}
		if i%29 == 7 {
			k := len(poisonSeqs)
			poisonTickets = append(poisonTickets, submit(mkPoison(k)))
			submitted++
			poisonSeqs = append(poisonSeqs, submitted)
		}
		validTickets = append(validTickets, submit(b))
		submitted++
	}

	// Disarm the disk before draining: every held batch must now land.
	fsync.FailEveryKth(0, nil)
	if _, err := srv.Sync(ctx); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	for i, tk := range validTickets {
		if _, err := tk.Wait(ctx); err != nil {
			t.Fatalf("valid batch %d resolved with %v", i+1, err)
		}
	}
	for i, tk := range poisonTickets {
		_, err := tk.Wait(ctx)
		if !errors.Is(err, graphbolt.ErrInvalidBatch) {
			t.Fatalf("poison batch %d resolved with %v, want ErrInvalidBatch", i+1, err)
		}
	}

	// The server must end Healthy. An out-of-band checkpoint ailment can
	// still be healing for a moment after the last ticket resolves.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Health().State() != graphbolt.HealthHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("server did not return to Healthy: %+v", srv.Health().Info())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("loop reported terminal failure: %v", err)
	}

	// Exactly the scripted poisons were quarantined, keyed by their
	// submission ordinals, each wrapping the validation sentinel.
	if got := srv.QuarantinedTotal(); got != uint64(len(poisonSeqs)) {
		t.Fatalf("QuarantinedTotal() = %d, want %d", got, len(poisonSeqs))
	}
	q := srv.Quarantined()
	if len(q) != len(poisonSeqs) {
		t.Fatalf("Quarantined() holds %d records, want %d", len(q), len(poisonSeqs))
	}
	for i, pb := range q {
		if pb.Seq != poisonSeqs[i] {
			t.Fatalf("quarantine record %d has Seq %d, want %d", i, pb.Seq, poisonSeqs[i])
		}
		if !errors.Is(pb.Err, graphbolt.ErrInvalidBatch) {
			t.Fatalf("quarantine record %d error %v does not wrap ErrInvalidBatch", i, pb.Err)
		}
	}
	nValid := uint64(len(validTickets))
	if got := srv.Generation(); got != gen0+nValid {
		t.Fatalf("Generation() = %d, want %d (one per surviving batch)", got, gen0+nValid)
	}

	finalSnap := srv.Snapshot()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// BSP equivalence on the surviving stream: a from-scratch ModeReset
	// engine that never saw the poisons or the faults must agree.
	fresh, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(),
		graphbolt.Options{Mode: graphbolt.ModeReset, MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run()
	for i, b := range strm.Batches[:nBatches] {
		if _, err := fresh.ApplyBatch(b); err != nil {
			t.Fatalf("baseline batch %d: %v", i+1, err)
		}
	}
	valuesClose(t, finalSnap.Values, fresh.Values(), 1e-6, "streamed vs from-scratch")

	// Restart: recovering from the directory the faulted run left behind
	// (checkpoint + journal tail) reproduces the final state.
	eng2, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := graphbolt.OpenDurable(eng2, dir, graphbolt.DurableOptions{CheckpointEvery: 25})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if got := d2.Seq(); got != nValid {
		t.Fatalf("recovered journal Seq = %d, want %d (quarantined batches never journaled)", got, nValid)
	}
	valuesClose(t, eng2.Values(), finalSnap.Values, 1e-9, "recovered vs live")
}

// valuesClose compares two value slices within eps; tolerances cover
// parallel reduction reordering (1e-9) or accumulated float drift
// across execution modes (1e-6) — a leaked poison batch or lost journal
// record shifts values by far more.
func valuesClose(t *testing.T, got, want []float64, eps float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values vs %d", label, len(got), len(want))
	}
	for v := range got {
		if d := math.Abs(got[v] - want[v]); d > eps || d != d {
			t.Fatalf("%s: vertex %d: %v vs %v (|Δ|=%g > %g)", label, v, got[v], want[v], d, eps)
		}
	}
}
