package graphbolt_test

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	graphbolt "repro"
	"repro/internal/backoff"
	"repro/internal/health"
	"repro/internal/obs"
)

// chaosProxy fronts the leader's mux with scripted faults, keyed by
// per-endpoint connection count so every run exercises the same
// schedule:
//
//   - /v1/wal: every 4th connection (n%4==2) accepts, writes a
//     plausible hello, then goes silent until the client hangs up — the
//     half-dead connection only the stall watchdog can detect; every
//     4th (n%4==3) is refused with 503 (a transient partition).
//   - /v1/checkpoint: every 3rd fetch (m%3==2) is refused with 503, so
//     re-seeds must survive transient checkpoint outages too.
//
// Everything else passes through untouched.
type chaosProxy struct {
	inner     http.Handler
	leaderSeq func() uint64 // for the fake hello on stalled connections
	mu        sync.Mutex
	walConns  int
	ckptConns int
}

func (cp *chaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/wal":
		cp.mu.Lock()
		cp.walConns++
		n := cp.walConns
		cp.mu.Unlock()
		switch n % 4 {
		case 3:
			http.Error(w, "leader partitioned", http.StatusServiceUnavailable)
			return
		case 2:
			// Silent stall: a valid hello, then nothing — no records, no
			// heartbeats. Without the watchdog the follower would sit on
			// this socket until the kernel's TCP timeout.
			hello := append([]byte("GBREP001"), make([]byte, 8)...)
			binary.LittleEndian.PutUint64(hello[8:], cp.leaderSeq())
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			w.Write(hello)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			<-r.Context().Done()
			return
		}
	case "/v1/checkpoint":
		cp.mu.Lock()
		cp.ckptConns++
		m := cp.ckptConns
		cp.mu.Unlock()
		if m%3 == 2 {
			http.Error(w, "checkpoint briefly unavailable", http.StatusServiceUnavailable)
			return
		}
	}
	cp.inner.ServeHTTP(w, r)
}

// compareAckedGenerations checks every generation the follower can
// still resolve against the leader's. A re-seeded follower's retained
// window may have a gap between its pre-seed history and the
// checkpoint's generation; those resolve as ErrGenerationNotRetained
// and are skipped — what matters is that everything it DOES serve is
// bit-for-bit the leader's, newest generation included.
func compareAckedGenerations[A any](t *testing.T, leader *graphbolt.Engine[float64, A], f *graphbolt.Follower[float64, A]) {
	t.Helper()
	oldest, newest := f.RetainedGenerations()
	if newest == 0 {
		t.Fatal("follower has no retained generations")
	}
	compared, newestCompared := 0, false
	for g := oldest; g <= newest; g++ {
		fs, err := f.SnapshotAt(g)
		if errors.Is(err, graphbolt.ErrGenerationNotRetained) {
			continue // evicted across a re-seed: a gap, not a divergence
		}
		if err != nil {
			t.Fatalf("follower SnapshotAt(%d): %v", g, err)
		}
		ls, err := leader.SnapshotAt(g)
		if err != nil {
			t.Fatalf("leader SnapshotAt(%d): %v", g, err)
		}
		if ls.Graph.NumVertices() != fs.Graph.NumVertices() || ls.Graph.NumEdges() != fs.Graph.NumEdges() {
			t.Fatalf("gen %d: structure diverged: leader %d/%d, follower %d/%d", g,
				ls.Graph.NumVertices(), ls.Graph.NumEdges(), fs.Graph.NumVertices(), fs.Graph.NumEdges())
		}
		if len(ls.Values) != len(fs.Values) {
			t.Fatalf("gen %d: %d leader values, %d follower values", g, len(ls.Values), len(fs.Values))
		}
		for v := range ls.Values {
			if math.Abs(ls.Values[v]-fs.Values[v]) > 1e-7 {
				t.Fatalf("gen %d vertex %d: leader %v, follower %v", g, v, ls.Values[v], fs.Values[v])
			}
		}
		if g == newest {
			newestCompared = true
		}
		compared++
	}
	if compared == 0 || !newestCompared {
		t.Fatalf("compared %d generations (newest included: %v); the newest must be resolvable on both sides",
			compared, newestCompared)
	}
}

// TestFailoverCompactionChaos is the ISSUE's compaction-chaos scenario:
// a leader checkpointing aggressively (CheckpointEvery 3) over a
// replication log with tight retention (5 records), so any follower
// that blinks finds its resume position compacted away — while a chaos
// proxy partitions the stream, stalls connections silently, and refuses
// checkpoint fetches. The durable follower is killed and restarted
// across compaction windows three times. It must re-seed itself from
// shipped checkpoints (reseeds > 0), the stall watchdog must reclaim
// the silent connections (stalls > 0), and at the end the follower must
// be fully caught up (lag 0, seq == leader seq), Healthy, and
// generation-exact with the leader on every snapshot it serves.
func TestFailoverCompactionChaos(t *testing.T) {
	nBatches := 120
	if testing.Short() {
		nBatches = 40
	}
	strm := replicaStream(t, nBatches)
	engOpts := graphbolt.Options{MaxIterations: 4, Retain: nBatches + 1}

	// Leader: durable engine with automatic checkpoints every 3 batches
	// and a 5-record replication log. The invariant under test: the
	// newest checkpoint (within CheckpointEvery-1 of the head) always
	// sits above the log floor (head - Retain), so a compacted follower
	// can always bridge the gap — checkpoint, then stream.
	leaderEng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(), engOpts)
	if err != nil {
		t.Fatal(err)
	}
	var d *graphbolt.DurableEngine[float64, float64]
	rlog := graphbolt.NewReplicationLog(graphbolt.ReplicationLogOptions{
		Retain:    5,
		Heartbeat: 2 * time.Millisecond,
		Logger:    quietLogger(),
		CheckpointSeq: func() (uint64, bool) {
			if d == nil {
				return 0, false
			}
			return d.CheckpointSeq()
		},
	})
	defer rlog.Close()
	d, err = graphbolt.OpenDurable(leaderEng, t.TempDir(), graphbolt.DurableOptions{
		OnRecord:        rlog.Append,
		CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rlog.SetFloor(d.Recovery().SnapshotSeq)

	mux := http.NewServeMux()
	mux.Handle("GET /v1/wal", rlog.Handler())
	mux.Handle("GET /v1/checkpoint", graphbolt.CheckpointHandler(d))
	chaos := &chaosProxy{inner: mux, leaderSeq: rlog.Last}
	ts := httptest.NewServer(chaos)
	defer ts.Close()

	// One registry and one health tracker span every follower
	// incarnation, the way a supervised process would wire them: the
	// counters accumulate across restarts.
	reg := obs.NewRegistry()
	tracker := health.NewTracker(reg)
	followerDir := t.TempDir()
	ctx := context.Background()

	start := func() (*graphbolt.Follower[float64, float64], *graphbolt.DurableEngine[float64, float64]) {
		t.Helper()
		feng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(), engOpts)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := graphbolt.OpenDurable(feng, followerDir, graphbolt.DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := graphbolt.NewDurableFollower(fd, ts.URL, graphbolt.FollowerOptions{
			Client:       ts.Client(),
			Metrics:      reg,
			Logger:       quietLogger(),
			Health:       tracker,
			StallTimeout: 150 * time.Millisecond,
			Backoff:      backoff.Policy{Base: time.Millisecond, Max: 20 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		f.Start(ctx)
		return f, fd
	}

	apply := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if _, err := d.ApplyBatch(strm.Batches[i]); err != nil {
				t.Fatalf("leader batch %d: %v", i+1, err)
			}
		}
	}

	// Three kill/restart cycles. Each segment applied while the follower
	// is down moves the log floor well past its journaled position
	// (segment length >> Retain), so every restart must re-seed from a
	// shipped checkpoint — including the very first connection, which
	// starts from seq 0 against a log whose floor is already above it
	// (checkpoint-bootstrap of a fresh follower).
	seg := nBatches / 4
	var totalReseeds, totalStalls uint64
	f, fd := start()
	for cycle := 0; cycle < 3; cycle++ {
		apply(cycle*seg, (cycle+1)*seg)
		waitApplied(t, f, uint64((cycle+1)*seg))
		if err := f.Close(ctx); err != nil {
			t.Fatal(err)
		}
		totalReseeds += f.Reseeds()
		totalStalls += f.Stalls()
		if err := fd.Close(); err != nil {
			t.Fatal(err)
		}
		f, fd = start()
	}
	apply(3*seg, nBatches)
	waitApplied(t, f, uint64(nBatches))
	defer fd.Close()
	defer f.Close(ctx)

	if got, want := f.AppliedSeq(), d.Seq(); got != want {
		t.Fatalf("follower at seq %d, leader at %d", got, want)
	}
	if f.Lag() != 0 {
		t.Fatalf("Lag() = %d after drain, want 0", f.Lag())
	}
	// A re-seed can land exactly on the final sequence, in which case the
	// follower is caught up but still between connections (Degraded until
	// the next successful connect). Healthy must follow shortly — and
	// once it does, the caught-up follower sits on a live heartbeating
	// connection, so the fault counters are quiescent below.
	deadline := time.Now().Add(10 * time.Second)
	for tracker.State() != health.Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("final health %v, want Healthy (follower err: %v)", tracker.State(), f.Err())
		}
		time.Sleep(time.Millisecond)
	}
	totalReseeds += f.Reseeds()
	totalStalls += f.Stalls()

	if totalReseeds == 0 {
		t.Fatal("no checkpoint re-seeds happened; compaction chaos is not wired")
	}
	if totalStalls == 0 {
		t.Fatal("the stall watchdog never fired; the silent-connection script is not wired")
	}

	snap := reg.Snapshot()
	if got := snap.Counters["graphbolt_replica_reseeds_total"]; got != int64(totalReseeds) {
		t.Fatalf("graphbolt_replica_reseeds_total = %v, want %d", got, totalReseeds)
	}
	if got := snap.Counters["graphbolt_replica_stalls_total"]; got != int64(totalStalls) {
		t.Fatalf("graphbolt_replica_stalls_total = %v, want %d", got, totalStalls)
	}
	if lag := snap.Gauges["graphbolt_replica_lag_generations"]; lag != 0 {
		t.Fatalf("graphbolt_replica_lag_generations = %v after drain, want 0", lag)
	}
	if fetches, ok := snap.Histograms["graphbolt_replica_checkpoint_fetch_seconds"]; !ok || fetches.Count == 0 {
		t.Fatal("graphbolt_replica_checkpoint_fetch_seconds recorded nothing across re-seeds")
	}

	// Every snapshot the survivor serves is the leader's, generation for
	// generation.
	compareAckedGenerations(t, leaderEng, f)
}
