GO ?= go

.PHONY: build test check check-race race vet fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/...

# check-race runs the whole module under the race detector, including
# the root-package serving stress test (concurrent readers vs the
# single-writer ingest loop).
check-race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# check is the pre-merge gate: formatting, static analysis, a full
# build, and the internal packages under the race detector (the engine
# is internally parallel; races there are correctness bugs, not style).
check: fmt vet build race
	@echo "check: OK"

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
