GO ?= go

.PHONY: build test check race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/...

# check is the pre-merge gate: static analysis, a full build, and the
# internal packages under the race detector (the engine is internally
# parallel; races there are correctness bugs, not style).
check: vet build race
	@echo "check: OK"

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
