GO ?= go
FUZZTIME ?= 30s

# Per-package statement-coverage floors enforced by `make cover`.
COVER_FLOOR_core  = 70
COVER_FLOOR_serve = 70

.PHONY: build test check check-race race vet fmt bench bench-shards fuzz cover chaos overload flight shard replica failover

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on ./internal/...

# check-race runs the whole module under the race detector, including
# the root-package serving stress test (concurrent readers vs the
# single-writer ingest loop).
check-race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# check is the pre-merge gate: formatting, static analysis, a full
# build, and the internal packages under the race detector (the engine
# is internally parallel; races there are correctness bugs, not style).
check: fmt vet build race
	@echo "check: OK"

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-shards sweeps serving throughput at 1/2/4/8 shards over a
# single-shard-routable stream and rewrites BENCH_shard_scaling.json
# (median of three trials per width). Fails if 4 shards do not reach
# 2x single-loop throughput.
bench-shards:
	BENCH_SHARDS=1 $(GO) test -run TestShardScaling -count=1 -v .

# chaos runs the self-healing soak under the race detector: hundreds of
# randomized batches through a durable server while fsync failures, torn
# writes and scripted poison batches fire underneath, asserting the
# server ends Healthy, quarantines exactly the poisons, and matches a
# from-scratch run on the surviving stream. CHAOS_FLAGS=-short shrinks
# the stream for CI.
chaos:
	$(GO) test -race -run TestChaosSoak -v $(CHAOS_FLAGS) .

# shard runs the sharded-serving suite under the race detector: the
# differential equivalence harness (2- and 4-shard servers over 100+
# randomized partition-closed batches, PageRank and SSSP, checked
# against from-scratch runs at every Sync), the sharded durable soak
# (per-shard fsync failures confined to the faulted shard while the
# others keep applying, then recovery and restart equivalence), poison
# confinement, and the per-shard failure/Err precedence contracts.
# SHARD_FLAGS=-short shrinks the soak for CI.
shard:
	$(GO) test -race -run 'TestShardEquivalence|TestShardSoak|TestShardServer' -v $(SHARD_FLAGS) .
	$(GO) test -race ./internal/partition/

# overload runs the admission-control soak under the race detector: an
# open-loop producer bursts far past the apply loop's throughput and the
# test asserts bounded p99 queue wait, retryable sheds with RetryAfter
# hints, the coalescing governor widening then narrowing the batch cap,
# a Healthy -> Overloaded -> Healthy round-trip, and BSP equivalence
# over the admitted batches. OVERLOAD_FLAGS=-short shrinks it for CI.
overload:
	$(GO) test -race -run TestOverloadSoak -v $(OVERLOAD_FLAGS) .

# flight runs the flight-recorder smoke under the race detector: the
# end-to-end acceptance test (deterministic coalescing, a scripted fsync
# failure forcing a Degraded dump, /debug/flight filtered by trace), the
# trace-merge property test (every accepted submission's trace ID lands
# in exactly one applied trace set, under governor-cap changes, sheds and
# quarantine), the lock-free ring torture tests, and the <5% recorder
# apply-latency overhead check. FLIGHT_FLAGS=-short shrinks it for CI.
flight:
	$(GO) test -race -run TestFlightRecorder -v $(FLIGHT_FLAGS) .
	$(GO) test -race -run 'TestTrace|TestRing|TestSnapshotConsistent' ./internal/flight/ ./internal/serve/

# replica runs the replication suite under the race detector: the
# leader/follower equivalence harness (~100 randomized batches streamed
# over a real HTTP stack, every acked generation's snapshot compared to
# the leader's), the kill/restart + seq-exact-resume e2e, the torn-
# frame/leader-outage chaos stream, and the replica package's unit,
# contract and frame-codec tests. REPLICA_FLAGS=-short shrinks the
# streams for CI.
replica:
	$(GO) test -race -run 'TestReplica' -v $(REPLICA_FLAGS) .
	$(GO) test -race $(REPLICA_FLAGS) ./internal/replica/... ./internal/wal/

# failover runs the compaction-chaos e2e under the race detector: a
# leader checkpointing every 3 batches over a 5-record replication log,
# behind a proxy that partitions the stream, stalls connections
# silently, and refuses checkpoint fetches, while the durable follower
# is killed and restarted across compaction windows. Asserts the
# follower re-seeds itself from shipped checkpoints, the stall watchdog
# reclaims dead connections, and it ends Healthy, caught up, and
# generation-exact with the leader. FAILOVER_FLAGS=-short shrinks the
# stream for CI.
failover:
	$(GO) test -race -run TestFailoverCompactionChaos -v $(FAILOVER_FLAGS) .

# fuzz runs every fuzz target for FUZZTIME each (Go only allows one
# -fuzz pattern per invocation). The seed corpora alone run in `make
# test`; this target actually mutates.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzScan -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeBatch -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -run=^$$ -fuzz=FuzzReadSnapshot -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzWireDecode -fuzztime=$(FUZZTIME) ./internal/replica/
	$(GO) test -run=^$$ -fuzz=FuzzCheckpointDecode -fuzztime=$(FUZZTIME) ./internal/replica/

# cover runs the full test suite with statement coverage and fails if
# any package with a COVER_FLOOR_<name> above dips under its floor. The
# summary (and GITHUB_STEP_SUMMARY, when set) gets the per-package table.
cover:
	@$(GO) test -cover ./... > cover.out 2>&1 || { cat cover.out; rm -f cover.out; exit 1; }
	@awk ' \
		/^ok/ { \
			pkg = $$2; cov = ""; \
			for (i = 1; i <= NF; i++) if ($$i == "coverage:") { cov = $$(i+1); sub(/%/, "", cov) } \
			if (cov == "") next; \
			printf "%-40s %6.1f%%\n", pkg, cov; \
			floor = 0; \
			if (pkg == "repro/internal/core")  floor = $(COVER_FLOOR_core); \
			if (pkg == "repro/internal/serve") floor = $(COVER_FLOOR_serve); \
			if (floor > 0 && cov + 0 < floor) { \
				printf "FAIL: %s coverage %.1f%% is under the %d%% floor\n", pkg, cov, floor; \
				bad = 1; \
			} \
		} \
		END { exit bad }' cover.out > cover.summary; \
	status=$$?; \
	cat cover.summary; \
	if [ -n "$$GITHUB_STEP_SUMMARY" ]; then \
		{ echo '### Coverage'; echo '```'; cat cover.summary; echo '```'; } >> "$$GITHUB_STEP_SUMMARY"; \
	fi; \
	rm -f cover.out cover.summary; \
	exit $$status
