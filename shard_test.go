package graphbolt_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	graphbolt "repro"
	"repro/internal/algorithms"
	"repro/internal/core"
)

// roundRobinAssign pins every vertex in [0, n) to shard v % shards so
// the tests control ownership exactly (no dependence on the hash).
func roundRobinAssign(n, shards int) (map[graphbolt.VertexID]int, [][]graphbolt.VertexID) {
	assign := make(map[graphbolt.VertexID]int, n)
	pools := make([][]graphbolt.VertexID, shards)
	for v := 0; v < n; v++ {
		s := v % shards
		assign[graphbolt.VertexID(v)] = s
		pools[s] = append(pools[s], graphbolt.VertexID(v))
	}
	return assign, pools
}

// shardMirror tracks the edge multiset the streamed batches should have
// produced, independently of every engine — the same mirror semantics
// difftest uses: deletions match pre-batch edges keyed by (From, To)
// with the request weight ignored, consuming parallel instances in
// ascending canonical order.
type shardMirror struct {
	n     int
	edges []graphbolt.Edge
}

func sortEdgeKeys(es []graphbolt.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		if es[i].To != es[j].To {
			return es[i].To < es[j].To
		}
		return es[i].Weight < es[j].Weight
	})
}

func (m shardMirror) apply(b graphbolt.Batch) shardMirror {
	n := m.n
	for _, e := range b.Add {
		if int(e.From)+1 > n {
			n = int(e.From) + 1
		}
		if int(e.To)+1 > n {
			n = int(e.To) + 1
		}
	}
	old := append([]graphbolt.Edge(nil), m.edges...)
	sortEdgeKeys(old)
	want := make(map[[2]graphbolt.VertexID]int)
	for _, d := range b.Del {
		want[[2]graphbolt.VertexID{d.From, d.To}]++
	}
	out := make([]graphbolt.Edge, 0, len(old)+len(b.Add))
	for _, e := range old {
		k := [2]graphbolt.VertexID{e.From, e.To}
		if want[k] > 0 {
			want[k]--
			continue
		}
		out = append(out, e)
	}
	out = append(out, b.Add...)
	return shardMirror{n: n, edges: out}
}

// closedEdges draws count edges whose endpoints share an owner: exact
// sharded/single-loop equivalence holds for partition-closed streams
// (a cross-owner edge would make one shard's out-degrees and another's
// in-neighbor values diverge from the union graph's).
func closedEdges(rng *rand.Rand, pools [][]graphbolt.VertexID, count int) []graphbolt.Edge {
	edges := make([]graphbolt.Edge, count)
	for i := range edges {
		p := pools[rng.Intn(len(pools))]
		edges[i] = graphbolt.Edge{
			From:   p[rng.Intn(len(p))],
			To:     p[rng.Intn(len(p))],
			Weight: float64(rng.Intn(6) + 1),
		}
	}
	return edges
}

// randomClosedBatch derives the next batch from the mirror alone.
// Roughly a quarter of batches confine themselves to one shard's pool
// (exercising the barrier-skip fast path); the rest mix pools so most
// batches span shards and cross the generation barrier.
func randomClosedBatch(rng *rand.Rand, m shardMirror, pools [][]graphbolt.VertexID) graphbolt.Batch {
	var b graphbolt.Batch
	single := rng.Intn(4) == 0
	fixed := rng.Intn(len(pools))
	for i := 0; i < 1+rng.Intn(8); i++ {
		p := pools[fixed]
		if !single {
			p = pools[rng.Intn(len(pools))]
		}
		b.Add = append(b.Add, graphbolt.Edge{
			From:   p[rng.Intn(len(p))],
			To:     p[rng.Intn(len(p))],
			Weight: float64(rng.Intn(6) + 1),
		})
	}
	for i := 0; i < rng.Intn(6) && len(m.edges) > 0; i++ {
		e := m.edges[rng.Intn(len(m.edges))]
		b.Del = append(b.Del, graphbolt.Edge{From: e.From, To: e.To})
	}
	return b
}

// runShardEquivalence is the differential harness behind the sharded
// acceptance tests: it streams `batches` randomized partition-closed
// batches through an N-shard server and, at every Sync checkpoint,
// verifies the merged snapshot against the independent mirror — graph
// structure edge-for-edge, and values against a from-scratch ModeReset
// engine on the reconstructed graph (the paper's §2.2 equivalence,
// extended across the cross-shard barrier). Run under -race.
func runShardEquivalence(t *testing.T, shards int, seed int64,
	newProg func() graphbolt.Program[float64, float64], maxIter int, tol float64) {
	t.Helper()
	const (
		n       = 60
		batches = 110
	)
	rng := rand.New(rand.NewSource(seed))
	assign, pools := roundRobinAssign(n, shards)
	mirror := shardMirror{n: n, edges: closedEdges(rng, pools, 3*n)}

	g, err := graphbolt.BuildGraph(n, append([]graphbolt.Edge(nil), mirror.edges...))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, newProg(),
		graphbolt.Options{MaxIterations: maxIter})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{
		Shards:      shards,
		ShardAssign: assign,
	})
	ctx := context.Background()
	defer srv.Close(ctx)

	if got := srv.Shards(); got != shards {
		t.Fatalf("Shards() = %d, want %d", got, shards)
	}

	verify := func(after int) {
		t.Helper()
		snap, err := srv.Sync(ctx)
		if err != nil {
			t.Fatalf("Sync after batch %d: %v", after, err)
		}
		if snap.Graph.NumVertices() != mirror.n {
			t.Fatalf("batch %d: merged graph has %d vertices, mirror %d",
				after, snap.Graph.NumVertices(), mirror.n)
		}
		got := snap.Graph.Edges(nil)
		exp := append([]graphbolt.Edge(nil), mirror.edges...)
		sortEdgeKeys(got)
		sortEdgeKeys(exp)
		if len(got) != len(exp) {
			t.Fatalf("batch %d: merged graph has %d edges, mirror %d", after, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("batch %d: merged edge[%d] = %+v, mirror has %+v", after, i, got[i], exp[i])
			}
		}
		refG, err := graphbolt.BuildGraph(mirror.n, append([]graphbolt.Edge(nil), mirror.edges...))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := graphbolt.NewEngine[float64, float64](refG, newProg(),
			graphbolt.Options{Mode: graphbolt.ModeReset, MaxIterations: maxIter})
		if err != nil {
			t.Fatal(err)
		}
		fresh.Run()
		ref := fresh.Values()
		if len(snap.Values) != len(ref) {
			t.Fatalf("batch %d: %d merged values vs %d from-scratch", after, len(snap.Values), len(ref))
		}
		for v := range snap.Values {
			// Exact match covers the ±Inf distances SSSP leaves on
			// unreachable vertices; the tolerance covers float drift.
			if g, w := snap.Values[v], ref[v]; g != w && !(math.Abs(g-w) <= tol) {
				t.Fatalf("batch %d: merged vs from-scratch: vertex %d: %v vs %v", after, v, g, w)
			}
		}
	}
	verify(0)

	for i := 0; i < batches; i++ {
		b := randomClosedBatch(rng, mirror, pools)
		mirror = mirror.apply(b)
		if _, err := srv.Submit(ctx, b); err != nil {
			t.Fatalf("Submit batch %d: %v", i+1, err)
		}
		if (i+1)%10 == 0 || i == batches-1 {
			verify(i + 1)
		}
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("Err() after clean stream: %v", err)
	}
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestShardEquivalencePageRank proves the headline refactor claim for a
// decomposable (push) program: an N-shard server over a randomized
// partition-closed stream produces, at every checkpoint, exactly the
// values a from-scratch single-engine run produces.
func TestShardEquivalencePageRank(t *testing.T) {
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(map[int]string{2: "N2", 4: "N4"}[shards], func(t *testing.T) {
			t.Parallel()
			runShardEquivalence(t, shards, int64(1000+shards),
				func() graphbolt.Program[float64, float64] { return graphbolt.NewPageRank() }, 6, 1e-6)
		})
	}
}

// TestShardEquivalenceSSSP proves the same for a non-decomposable
// (pull, min-aggregation) program, whose refinement path re-evaluates
// whole in-neighborhoods instead of retracting contributions.
func TestShardEquivalenceSSSP(t *testing.T) {
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(map[int]string{2: "N2", 4: "N4"}[shards], func(t *testing.T) {
			t.Parallel()
			runShardEquivalence(t, shards, int64(2000+shards),
				func() graphbolt.Program[float64, float64] { return graphbolt.NewSSSP(0) }, 8, 1e-9)
		})
	}
}

// TestShardServerPoisonConfinement pins the sharded failure-domain
// contract for invalid batches: the whole batch is quarantined on the
// shard owning the first invalid edge, the other shards' quarantines
// stay empty, and every shard keeps applying afterwards.
func TestShardServerPoisonConfinement(t *testing.T) {
	const n, shards = 30, 3
	assign, pools := roundRobinAssign(n, shards)
	rng := rand.New(rand.NewSource(9))
	g, err := graphbolt.BuildGraph(n, closedEdges(rng, pools, 60))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{Shards: shards, ShardAssign: assign})
	ctx := context.Background()
	defer srv.Close(ctx)

	// First invalid edge's To is vertex 7 → shard 1 owns the poison.
	poison := graphbolt.Batch{Add: []graphbolt.Edge{
		{From: 0, To: 3, Weight: 1},
		{From: 4, To: 7, Weight: math.NaN()},
	}}
	if _, err := srv.SubmitWait(ctx, poison); !errors.Is(err, graphbolt.ErrInvalidBatch) {
		t.Fatalf("poison SubmitWait = %v, want ErrInvalidBatch", err)
	}
	if got := srv.QuarantinedTotal(); got != 1 {
		t.Fatalf("QuarantinedTotal() = %d, want 1", got)
	}
	for _, si := range srv.ShardInfos() {
		want := uint64(0)
		if si.Shard == 1 {
			want = 1
		}
		if si.Quarantined != want {
			t.Fatalf("shard %d quarantined %d batches, want %d", si.Shard, si.Quarantined, want)
		}
	}
	q := srv.Quarantined()
	if len(q) != 1 || !errors.Is(q[0].Err, graphbolt.ErrInvalidBatch) {
		t.Fatalf("Quarantined() = %+v, want one ErrInvalidBatch record", q)
	}

	// Every shard — including the one that just quarantined — still
	// applies valid work.
	for s := 0; s < shards; s++ {
		p := pools[s]
		if _, err := srv.SubmitWait(ctx, graphbolt.Batch{Add: []graphbolt.Edge{
			{From: p[0], To: p[1], Weight: 1},
		}}); err != nil {
			t.Fatalf("post-poison SubmitWait on shard %d: %v", s, err)
		}
	}
	if st := srv.Health().State(); st != graphbolt.HealthHealthy {
		t.Fatalf("health = %v after confined poison, want Healthy", st)
	}
}

// trippableRank is PageRank with a remotely armed landmine: once
// tripped, computing the victim vertex panics. The engine's parallel
// runtime converts the panic into a *parallel.PanicError, which the
// owning shard's apply loop treats as terminal — giving the test a
// public-API way to kill exactly one shard.
type trippableRank struct {
	*algorithms.PageRank
	victim  core.VertexID
	tripped atomic.Bool
}

func (p *trippableRank) Compute(v core.VertexID, agg float64) float64 {
	if v == p.victim && p.tripped.Load() {
		panic("shard_test: tripped victim vertex")
	}
	return p.PageRank.Compute(v, agg)
}

// TestShardServerFailureIsolation pins satellite contract #6 at the
// Server level: a terminal apply failure on one shard (a) fails that
// batch's ticket, (b) latches into Server.Err() naming the shard,
// (c) leaves the surviving shards applying, and (d) keeps precedence
// over ErrServerClosed across Close.
func TestShardServerFailureIsolation(t *testing.T) {
	const n, shards = 20, 2
	assign, pools := roundRobinAssign(n, shards)
	prog := &trippableRank{PageRank: graphbolt.NewPageRank(), victim: 5} // 5 % 2 → shard 1
	g, err := graphbolt.BuildGraph(n, []graphbolt.Edge{
		{From: 0, To: 2, Weight: 1}, {From: 1, To: 3, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, prog, graphbolt.Options{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{Shards: shards, ShardAssign: assign})
	ctx := context.Background()

	// Healthy first: both shards apply.
	if _, err := srv.SubmitWait(ctx, graphbolt.Batch{Add: []graphbolt.Edge{
		{From: 0, To: 4, Weight: 1}, {From: 1, To: 5, Weight: 1},
	}}); err != nil {
		t.Fatalf("pre-trip SubmitWait: %v", err)
	}

	// Arm the landmine and recompute the victim: shard 1 dies mid-apply.
	prog.tripped.Store(true)
	tk, err := srv.Submit(ctx, graphbolt.Batch{Add: []graphbolt.Edge{{From: 3, To: 5, Weight: 1}}})
	if err != nil {
		t.Fatalf("Submit trigger batch: %v", err)
	}
	if _, err := tk.Wait(ctx); err == nil {
		t.Fatal("trigger batch applied cleanly, want terminal failure")
	}

	// The failure latches into Err(), deterministically naming shard 1.
	deadline := time.Now().Add(10 * time.Second)
	var terminal error
	for terminal = srv.Err(); terminal == nil; terminal = srv.Err() {
		if time.Now().After(deadline) {
			t.Fatal("Err() never latched the shard failure")
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(terminal.Error(), "shard 1") {
		t.Fatalf("Err() = %v, want the failing shard named", terminal)
	}
	for time.Now().Before(deadline) && srv.Health().State() != graphbolt.HealthFailed {
		time.Sleep(time.Millisecond)
	}
	if st := srv.Health().State(); st != graphbolt.HealthFailed {
		t.Fatalf("health = %v with a failed shard, want Failed", st)
	}

	// A terminal failure poisons the whole server — exactly the
	// single-loop contract — so new Submits fail fast with the latched
	// error even when they target the surviving shard. The survivor's
	// own loop stays healthy (loop-level isolation) and reads keep
	// serving the last merged snapshot.
	p0 := pools[0]
	_, err = srv.Submit(ctx, graphbolt.Batch{Add: []graphbolt.Edge{{From: p0[0], To: p0[1], Weight: 1}}})
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("post-failure Submit = %v, want fail-fast with the latched shard 1 failure", err)
	}
	if snap := srv.Snapshot(); snap == nil || len(snap.Values) == 0 {
		t.Fatal("reads stopped serving after a single-shard failure")
	}
	infos := srv.ShardInfos()
	if infos[0].State == graphbolt.HealthFailed {
		t.Fatalf("shard 0 reported Failed, want isolation: %+v", infos[0])
	}
	if infos[1].State != graphbolt.HealthFailed {
		t.Fatalf("shard 1 state = %v, want Failed", infos[1].State)
	}

	// Failure-over-ErrClosed precedence: Close surfaces the latched
	// failure, Err() is stable across Close, and post-Close Submits
	// report the failure, not ErrServerClosed.
	closeErr := srv.Close(ctx)
	if closeErr == nil || !strings.Contains(closeErr.Error(), "shard 1") {
		t.Fatalf("Close() = %v, want the latched shard 1 failure", closeErr)
	}
	if got := srv.Err(); got == nil || got.Error() != terminal.Error() {
		t.Fatalf("Err() changed across Close: %v vs %v", got, terminal)
	}
	_, err = srv.Submit(ctx, graphbolt.Batch{Add: []graphbolt.Edge{{From: p0[0], To: p0[2], Weight: 1}}})
	if err == nil || errors.Is(err, graphbolt.ErrServerClosed) {
		t.Fatalf("post-Close Submit = %v, want the terminal failure to outrank ErrServerClosed", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("post-Close Submit error %v does not name the failed shard", err)
	}
}
