package graphbolt

import (
	"cmp"
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/health"
	"repro/internal/partition"
	"repro/internal/qcache"
	"repro/internal/replica"
	"repro/internal/serve"
)

// ResultSnapshot is the immutable, atomically published read view of a
// completed computation: graph generation, vertex values, BSP level and
// cumulative stats. Engine.Snapshot, Server.Snapshot and Server.Query
// hand these out; readers may hold one indefinitely while mutations
// stream.
type ResultSnapshot[V any] = core.ResultSnapshot[V]

// SubmitPolicy selects what Server.Submit does when the ingest queue is
// full.
type SubmitPolicy = serve.Policy

const (
	// SubmitBlock makes Submit wait for queue space (the default):
	// backpressure propagates to producers.
	SubmitBlock = serve.Block
	// SubmitReject makes Submit fail fast with ErrQueueFull.
	SubmitReject = serve.Reject
)

// Ingest failure sentinels, for errors.Is.
var (
	// ErrQueueFull reports a Submit rejected under SubmitReject. The
	// returned error wraps this sentinel in a *RetryableError carrying a
	// backoff hint; extract it with RetryAfter.
	ErrQueueFull = serve.ErrQueueFull
	// ErrServerClosed reports a Submit or Wait after Close.
	ErrServerClosed = serve.ErrClosed
	// ErrDegraded reports a Submit refused (or a held batch failed)
	// because the server is in degraded read-only mode: the journal
	// faulted and recovery is being retried in the background. Reads
	// keep working; resubmit after the server returns to HealthHealthy.
	ErrDegraded = serve.ErrDegraded
	// ErrOverloaded reports a Submit shed by admission control
	// (ServerOptions.Admission): the estimated time-to-apply for the
	// current backlog cannot meet the SLO or the caller's deadline. Like
	// ErrQueueFull it arrives wrapped in a *RetryableError whose
	// RetryAfter says when to resubmit.
	ErrOverloaded = serve.ErrOverloaded
)

// RetryableError is the shared shape of load-induced Submit refusals
// (ErrQueueFull, ErrOverloaded): a sentinel for errors.Is plus a
// suggested client backoff. See RetryAfter.
type RetryableError = serve.RetryableError

// RetryAfter extracts the backoff hint from a Submit error, reporting
// whether the error is a retryable (load-induced, transient) refusal:
//
//	if after, ok := graphbolt.RetryAfter(err); ok {
//	    time.Sleep(after)
//	    // resubmit
//	}
func RetryAfter(err error) (time.Duration, bool) { return serve.RetryAfter(err) }

// AdmissionOptions configures deadline-aware admission control and the
// adaptive coalescing governor; set it on ServerOptions.Admission. The
// zero value of every field takes the documented default.
type AdmissionOptions = admission.Config

// AdmissionController exposes the live admission state — throughput
// estimate, backlog, adaptive batch cap, shed counts; obtain a
// server's via Server.Admission.
type AdmissionController = admission.Controller

// HealthState is the server's coarse operating state.
type HealthState = health.State

const (
	// HealthHealthy: writes and reads both serving.
	HealthHealthy = health.Healthy
	// HealthDegraded: reads serving, writes failing fast with
	// ErrDegraded while recovery retries in the background.
	HealthDegraded = health.Degraded
	// HealthFailed: the apply loop died; engine state is undefined.
	HealthFailed = health.Failed
	// HealthOverloaded: reads and admitted writes both still serving,
	// but admission control is shedding excess load with ErrOverloaded.
	// Clears on its own once the backlog drains.
	HealthOverloaded = health.Overloaded
)

// HealthInfo is a point-in-time health report: state, cause (nil when
// healthy) and when the state was entered.
type HealthInfo = health.Info

// HealthTracker publishes health state transitions; obtain a server's
// via Server.Health.
type HealthTracker = health.Tracker

// PoisonBatch records one quarantined batch: its submission sequence,
// the offending batch, the validation error and when it was rejected.
type PoisonBatch = serve.PoisonBatch

// BackoffPolicy paces degraded-mode recovery retries: capped
// exponential with jitter. The zero value uses sane defaults
// (20ms base, 5s cap, factor 2, 20% jitter).
type BackoffPolicy = backoff.Policy

// Applied reports one completed apply call of the ingest loop. Its
// Trace field carries the batch's completed lifecycle record.
type Applied = serve.Applied

// SubmitTicket tracks one submitted batch through the ingest loop; its
// Trace method returns the flight trace ID assigned at Submit.
type SubmitTicket = serve.Ticket

// FlightRecorder is the engine's black box: a lock-free, fixed-capacity
// ring of batch-lifecycle events (admitted/shed, enqueued, coalesced,
// validated, journaled with fsync latency, applied, published,
// quarantined, health transitions, repair attempts), each stamped with
// a trace ID born at Submit. Build one with NewFlightRecorder, set it
// on ServerOptions.Flight (and DurableOptions.Flight for journal and
// fsync events), and mount its Handler at /debug/flight. The ring is
// dumped to the log on transitions to Degraded/Failed and on slow
// batches. A nil *FlightRecorder is valid and inert.
type FlightRecorder = flight.Recorder

// FlightOptions configures a FlightRecorder (ring depth, retained trace
// count, dump throttling, logger, metrics registry).
type FlightOptions = flight.Options

// NewFlightRecorder builds a flight recorder. Zero options take the
// documented defaults (4096-event ring, 256 retained traces, 1s dump
// throttle).
func NewFlightRecorder(opts FlightOptions) *FlightRecorder { return flight.New(opts) }

// BatchTrace is the completed lifecycle record of one apply call: the
// head batch's trace ID, every coalesced sibling's ID, and the
// per-phase latency breakdown (queue wait, coalesce, validate, journal,
// apply, publish). Look one up with Server.Trace.
type BatchTrace = flight.BatchTrace

// TracePhases is the per-phase latency breakdown on a BatchTrace.
type TracePhases = flight.Phases

// FlightEvent is one recorded lifecycle event in the flight ring.
type FlightEvent = flight.Event

// FlightDump is one captured ring snapshot (reason, focus trace,
// events oldest-first).
type FlightDump = flight.Dump

// ServerOptions configures a Server's ingest pipeline.
type ServerOptions struct {
	// QueueDepth bounds the number of queued (unapplied) batches.
	// Default serve.DefaultQueueDepth (64).
	QueueDepth int
	// MaxBatchEdges caps the edge count of a coalesced batch. Default
	// serve.DefaultMaxBatchEdges (4096). With Admission set this only
	// seeds the adaptive cap, which then floats with observed load.
	MaxBatchEdges int
	// Admission, when non-nil, enables deadline-aware admission control:
	// Submit sheds with ErrOverloaded (wrapped in a *RetryableError)
	// when the estimated time-to-apply for the backlog cannot meet the
	// configured SLO or the submission's context deadline, the
	// coalescing cap adapts to load, and overload episodes surface as
	// HealthOverloaded. &AdmissionOptions{} enables it with defaults
	// (500ms SLO).
	Admission *AdmissionOptions
	// DisableCoalescing applies every submitted batch individually.
	DisableCoalescing bool
	// Policy selects SubmitBlock (default) or SubmitReject.
	Policy SubmitPolicy
	// Metrics, when non-nil, receives ingest and read-path
	// instrumentation (queue depth, coalesced batches, read staleness).
	// Nil falls back to the process-wide registry installed by
	// EnableMetrics; both nil means instrumentation is off.
	Metrics *MetricsRegistry
	// OnApply, when non-nil, is called from the apply goroutine after
	// every apply call. Keep it fast; it runs on the write path.
	OnApply func(Applied)
	// QueryCacheBytes bounds the per-generation query cache memoizing
	// derived reads (top-k, per-vertex lookups, histograms) against
	// retained snapshots. 0 disables caching; queries still work, every
	// read computes. Cached entries need no invalidation — snapshots are
	// immutable — and are evicted by LRU within the budget and when
	// their generation falls out of the engine's history ring.
	QueryCacheBytes int64
	// QuarantineDepth bounds the ring of retained poison-batch records
	// (Quarantined); the running total keeps counting past it. 0 means
	// serve.DefaultQuarantineDepth (32).
	QuarantineDepth int
	// Backoff paces recovery retries while the server is degraded. The
	// zero value uses the defaults documented on BackoffPolicy.
	Backoff BackoffPolicy
	// ApplyDeadline, when positive, arms a watchdog on every apply
	// call: exceeding it raises graphbolt_serve_stuck_applies, logs a
	// warning and invokes OnStuck. The apply is not interrupted.
	ApplyDeadline time.Duration
	// OnStuck, when non-nil, is called (from a timer goroutine) when an
	// apply exceeds ApplyDeadline.
	OnStuck func(seq uint64, elapsed time.Duration)
	// Logger receives degraded-mode and watchdog warnings; nil uses
	// slog.Default().
	Logger *slog.Logger
	// Flight, when non-nil, records every batch's lifecycle into the
	// flight ring and completes per-phase BatchTraces retrievable via
	// Server.Trace. Pass the same recorder to DurableOptions.Flight so
	// journal and fsync events land in the same ring. Trace IDs are
	// assigned whether or not a recorder is set.
	Flight *FlightRecorder
	// SlowBatch is the end-to-end latency (enqueue to publication) above
	// which a batch is captured as slow: a throttled flight dump focused
	// on its trace plus a warning naming the trace ID. Zero defaults to
	// the admission SLO when Admission is set, otherwise off; negative
	// disables explicitly. Ignored without Flight.
	SlowBatch time.Duration
	// Shards, when > 1, partitions serving: the graph is split by
	// destination-vertex ownership into Shards subgraphs, each served by
	// its own engine and single-writer apply loop, behind a router that
	// splits every submitted batch, applies sub-batches concurrently,
	// holds multi-shard batches at a cross-shard generation barrier, and
	// publishes merged snapshots. Snapshot/SnapshotAt/Diff/Wait keep
	// their exact semantics over the merged view. Queue depth, admission
	// and coalescing options apply per shard; failure domains (poison
	// quarantine, degraded mode, terminal failures) are per shard too.
	// 0 and 1 mean the classic single-loop server.
	Shards int
	// ShardAssign optionally pins specific vertices to shards,
	// overriding the hash partitioner (see partition.New). Entries must
	// be in [0, Shards). Ignored unless Shards > 1.
	ShardAssign map[VertexID]int
}

// Server is the concurrent serving facade over an engine: a
// single-writer ingest loop (Submit) feeding mutations through a
// bounded, coalescing queue, and a lock-free read path (Snapshot,
// Query, Wait) over atomically published result snapshots. Any number
// of goroutines may read while batches stream; the BSP guarantee makes
// every observed snapshot equal to a from-scratch run at its
// generation.
//
// Construct with NewServer (in-memory engine) or NewDurableServer
// (journaled engine — the journal-before-mutate ordering is preserved
// because journaling happens inside the single-writer apply loop).
type Server[V, A any] struct {
	eng    *core.Engine[V, A] // nil when sharded
	loop   *serve.Loop        // nil when sharded
	router *partition.Router[V, A]
	view   *core.MultiView[V, A] // merged read view, sharded only
	read   serve.ReadMetrics
	cache  *qcache.Cache // nil when QueryCacheBytes == 0
	gen0   uint64        // snapshot generation when the loop started
	health *health.Tracker

	closeEng func() error // durable close, nil for in-memory

	mu     sync.Mutex
	watch  chan struct{} // closed and replaced after every apply
	closed bool
}

// NewServer wraps an in-memory engine. If the engine has not run yet,
// NewServer performs the initial computation. From this point on, all
// mutations must go through Submit — calling Run or ApplyBatch on the
// engine directly breaks the single-writer invariant.
func NewServer[V, A any](eng *Engine[V, A], opts ServerOptions) *Server[V, A] {
	if opts.Shards > 1 {
		// Sharded: eng supplies the graph, program and options; serving
		// state lives in per-shard engines spawned over the split graph.
		pt, err := partition.New(opts.Shards, opts.ShardAssign)
		if err != nil {
			panic(fmt.Sprintf("graphbolt: sharded server: %v", err))
		}
		parts, err := pt.SplitGraph(eng.Graph())
		if err != nil {
			panic(fmt.Sprintf("graphbolt: sharded server: %v", err))
		}
		engines := make([]*core.Engine[V, A], opts.Shards)
		for s, g := range parts {
			engines[s], err = eng.SpawnForGraph(g)
			if err != nil {
				panic(fmt.Sprintf("graphbolt: sharded server: shard %d: %v", s, err))
			}
		}
		return newShardedServer(engines, nil, pt, eng.Graph(), nil, opts)
	}
	if eng.Snapshot() == nil {
		eng.Run()
	}
	return newServer(eng, eng, nil, opts)
}

// NewDurableServer wraps a durable engine opened with OpenDurable:
// every batch is journaled before it mutates memory, inside the
// single-writer apply loop. Close also closes the journal.
func NewDurableServer[V, A any](d *DurableEngine[V, A], opts ServerOptions) *Server[V, A] {
	if opts.Shards > 1 {
		panic("graphbolt: sharded durable serving needs per-shard journals; use OpenShardedDurable + NewShardedDurableServer")
	}
	return newServer(d.Core(), d, d.Close, opts)
}

func newServer[V, A any](eng *core.Engine[V, A], a serve.Applier, closeEng func() error, opts ServerOptions) *Server[V, A] {
	s := &Server[V, A]{
		eng:      eng,
		gen0:     eng.Snapshot().Generation,
		closeEng: closeEng,
		watch:    make(chan struct{}),
	}
	reg := opts.Metrics
	if reg == nil {
		reg = serve.DefaultMetrics()
	}
	s.read = serve.NewReadMetrics(reg)
	s.cache = qcache.New(opts.QueryCacheBytes, reg)
	s.health = health.NewTracker(reg)
	userCb := opts.OnApply
	s.loop = serve.NewLoop(a, serve.Options{
		QueueDepth:        opts.QueueDepth,
		MaxBatchEdges:     opts.MaxBatchEdges,
		Admission:         opts.Admission,
		DisableCoalescing: opts.DisableCoalescing,
		Policy:            opts.Policy,
		Metrics:           reg,
		QuarantineDepth:   opts.QuarantineDepth,
		Backoff:           opts.Backoff,
		ApplyDeadline:     opts.ApplyDeadline,
		OnStuck:           opts.OnStuck,
		Health:            s.health,
		Logger:            opts.Logger,
		Flight:            opts.Flight,
		SlowBatch:         opts.SlowBatch,
		OnApply: func(ap Applied) {
			// Cache eviction follows ring retention: entries for
			// generations SnapshotAt can no longer serve are dead weight.
			if oldest, _ := eng.RetainedGenerations(); oldest > 0 {
				s.cache.DropBelow(oldest)
			}
			s.mu.Lock()
			close(s.watch)
			s.watch = make(chan struct{})
			s.mu.Unlock()
			if userCb != nil {
				userCb(ap)
			}
		},
	})
	return s
}

// newShardedServer wires a router over per-shard engines (and optional
// per-shard durable appliers) into the Server facade. union is the
// merged graph covering every shard's edges.
func newShardedServer[V, A any](engines []*core.Engine[V, A], appliers []serve.Applier, pt *partition.Partitioner, union *Graph, closeEng func() error, opts ServerOptions) *Server[V, A] {
	s := &Server[V, A]{
		closeEng: closeEng,
		watch:    make(chan struct{}),
	}
	reg := opts.Metrics
	if reg == nil {
		reg = serve.DefaultMetrics()
	}
	s.read = serve.NewReadMetrics(reg)
	s.cache = qcache.New(opts.QueryCacheBytes, reg)
	s.health = health.NewTracker(reg)
	userCb := opts.OnApply
	router, err := partition.NewRouter(engines, appliers, pt, union, partition.Options{
		Loop: serve.Options{
			QueueDepth:        opts.QueueDepth,
			MaxBatchEdges:     opts.MaxBatchEdges,
			Admission:         opts.Admission,
			DisableCoalescing: opts.DisableCoalescing,
			Policy:            opts.Policy,
			Metrics:           reg,
			QuarantineDepth:   opts.QuarantineDepth,
			Backoff:           opts.Backoff,
			ApplyDeadline:     opts.ApplyDeadline,
			OnStuck:           opts.OnStuck,
			Logger:            opts.Logger,
			Flight:            opts.Flight,
			SlowBatch:         opts.SlowBatch,
		},
		Retain:  engines[0].RetainDepth(),
		Health:  s.health,
		Metrics: reg,
		OnPublish: func(uint64) {
			if oldest, _ := s.view.RetainedGenerations(); oldest > 0 {
				s.cache.DropBelow(oldest)
			}
			s.mu.Lock()
			close(s.watch)
			s.watch = make(chan struct{})
			s.mu.Unlock()
		},
		OnApplied: func(ap Applied) {
			if userCb != nil {
				userCb(ap)
			}
		},
		Logger: opts.Logger,
	})
	if err != nil {
		panic(fmt.Sprintf("graphbolt: sharded server: %v", err))
	}
	s.router = router
	s.view = router.View()
	s.gen0 = router.Gen0()
	return s
}

// snapshot returns the current read view: the merged multi-shard
// snapshot when sharded, the engine's otherwise.
func (s *Server[V, A]) snapshot() *ResultSnapshot[V] {
	if s.router != nil {
		return s.view.Snapshot()
	}
	return s.eng.Snapshot()
}

// Submit enqueues a mutation batch for the single-writer apply loop.
// Under SubmitBlock it waits for queue space (bounded by ctx, which may
// be nil); under SubmitReject it fails fast with ErrQueueFull; while
// the server is degraded it fails fast with ErrDegraded. The returned
// ticket resolves once the batch's apply call completes; fire-and-forget
// callers may discard it. Malformed batches are not applied: their
// ticket fails wrapping ErrInvalidBatch and the batch is quarantined
// (Quarantined) while the loop keeps serving.
func (s *Server[V, A]) Submit(ctx context.Context, b Batch) (*SubmitTicket, error) {
	if s.router != nil {
		return s.router.Submit(ctx, b)
	}
	return s.loop.Submit(ctx, b)
}

// SubmitWait submits a batch and blocks until a snapshot covering it is
// published, returning that snapshot. Due to coalescing the snapshot
// may also cover neighboring batches.
func (s *Server[V, A]) SubmitWait(ctx context.Context, b Batch) (*ResultSnapshot[V], error) {
	tk, err := s.Submit(ctx, b)
	if err != nil {
		return nil, err
	}
	ap, err := tk.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return s.Wait(ctx, s.gen0+ap.Seq)
}

// Snapshot returns the most recently published result snapshot. It is
// lock-free and safe from any goroutine, concurrently with streaming
// mutations; the snapshot is immutable and may be held indefinitely.
func (s *Server[V, A]) Snapshot() *ResultSnapshot[V] {
	snap := s.snapshot()
	s.read.Observe(snap.PublishedAt)
	return snap
}

// Query runs fn against the current result snapshot. The snapshot is
// internally consistent — graph, values and level belong to the same
// generation — and immutable, so fn needs no synchronization with the
// writer. fn must not mutate the snapshot's values; use
// ResultSnapshot.CopyValues for an owned slice.
func (s *Server[V, A]) Query(fn func(*ResultSnapshot[V])) {
	fn(s.Snapshot())
}

// Generation returns the generation of the current snapshot.
func (s *Server[V, A]) Generation() uint64 {
	return s.snapshot().Generation
}

// SnapshotAt returns the retained snapshot for exactly generation gen —
// a point-in-time read. Like Snapshot it is lock-free and the result is
// immutable; unlike Snapshot it fails (wrapping ErrGenerationNotRetained)
// when gen has been evicted from the history ring, was never published,
// or retention is off (EngineOptions.Retain <= 1 keeps only the newest
// generation addressable). Retained(), via RetainedGenerations, reports
// the currently addressable window.
func (s *Server[V, A]) SnapshotAt(gen uint64) (*ResultSnapshot[V], error) {
	if s.router != nil {
		return s.view.SnapshotAt(gen)
	}
	return s.eng.SnapshotAt(gen)
}

// RetainedGenerations returns the inclusive [oldest, newest] generation
// window currently addressable via SnapshotAt, or (0, 0) before the
// first publication.
func (s *Server[V, A]) RetainedGenerations() (oldest, newest uint64) {
	if s.router != nil {
		return s.view.RetainedGenerations()
	}
	return s.eng.RetainedGenerations()
}

// Diff compares two retained generations and reports the vertices whose
// values changed between them, with before/after values and the vertex
// and edge count deltas. Both generations must still be retained.
func (s *Server[V, A]) Diff(from, to uint64) (*SnapshotDiff[V], error) {
	if s.router != nil {
		return s.view.DiffSnapshots(from, to)
	}
	return s.eng.DiffSnapshots(from, to)
}

// Cache returns the server's per-generation query cache for use with
// the qcache helpers (TopK, Value, histograms). It is nil when
// ServerOptions.QueryCacheBytes is 0 — a valid argument to every
// helper; queries then compute uncached.
func (s *Server[V, A]) Cache() *QueryCache { return s.cache }

// QuerySource is the read surface the HTTP query API serves — both
// *Server[V, A] and *Follower[V, A] (see replication.go) satisfy it,
// which is what lets a load balancer spread reads across a leader and
// its followers without telling them apart.
type QuerySource[V any] = replica.Source[V]

// QueryHandler returns the HTTP/JSON query API over a server:
// /v1/snapshot, /v1/snapshot/{gen}, /v1/topk?k=N, /v1/value/{vertex}
// and /v1/diff?from=&to=, with qcache-memoized reads and JSON errors
// (400 malformed, 404 unknown vertex, 405 non-GET, 410 evicted
// generation, 503 before first publish). Mount it alongside the
// observability mux:
//
//	mux := obs.HandlerWith(reg, map[string]http.Handler{
//	    "/healthz": srv.HealthHandler(),
//	    "/v1/":     graphbolt.QueryHandler(srv),
//	})
//
// A free function rather than a method because /v1/topk needs V to be
// ordered, a constraint methods cannot add.
func QueryHandler[V cmp.Ordered, A any](srv *Server[V, A]) http.Handler {
	return replica.API[V](srv)
}

// FollowerQueryHandler is QueryHandler for a follower — the identical
// API surface served from replicated state.
func FollowerQueryHandler[V cmp.Ordered, A any](f *Follower[V, A]) http.Handler {
	return replica.API[V](f)
}

// Wait blocks until a snapshot with Generation >= gen is published,
// then returns it — the FIRST such snapshot the reader observes, not
// necessarily generation gen exactly: if the writer has already moved
// past gen (or coalescing folded several submissions into one apply),
// the returned snapshot's Generation may exceed gen. Callers that need
// a specific historical generation should use SnapshotAt with retention
// enabled. A nil ctx means no deadline. It fails with the loop's
// terminal error if ingest failed, or ErrServerClosed if the server
// closed before reaching gen.
func (s *Server[V, A]) Wait(ctx context.Context, gen uint64) (*ResultSnapshot[V], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if snap := s.snapshot(); snap != nil && snap.Generation >= gen {
			return snap, nil
		}
		if err := s.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		w := s.watch
		closed := s.closed
		s.mu.Unlock()
		if closed {
			// No further applies will happen; re-check once to close the
			// race with the final apply, then fail.
			if snap := s.snapshot(); snap != nil && snap.Generation >= gen {
				return snap, nil
			}
			return nil, fmt.Errorf("%w: generation %d never published", ErrServerClosed, gen)
		}
		select {
		case <-w:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Sync blocks until every batch submitted before the call has been
// applied (on a sharded server: applied on every owning shard and
// folded into a published merged snapshot), then returns the current
// snapshot. A nil ctx means no deadline.
func (s *Server[V, A]) Sync(ctx context.Context) (*ResultSnapshot[V], error) {
	if s.router != nil {
		if err := s.router.Sync(ctx); err != nil {
			return nil, err
		}
		return s.view.Snapshot(), nil
	}
	if err := s.loop.Sync(ctx); err != nil {
		return nil, err
	}
	return s.eng.Snapshot(), nil
}

// QueueDepth returns the number of batches currently queued for the
// apply loop — summed across shards (sub-batches) when sharded.
func (s *Server[V, A]) QueueDepth() int {
	if s.router != nil {
		return s.router.Depth()
	}
	return s.loop.Depth()
}

// Admission returns the server's admission controller, nil unless
// ServerOptions.Admission was set. The nil controller is inert and
// safe to call. A sharded server runs one controller per shard with
// the shared config; this returns shard 0's — use Admissions for all.
func (s *Server[V, A]) Admission() *AdmissionController {
	if s.router != nil {
		return s.router.Admission(0)
	}
	return s.loop.Admission()
}

// Admissions returns every shard's admission controller, indexed by
// shard (a single-element slice when not sharded; all nil when
// admission is off).
func (s *Server[V, A]) Admissions() []*AdmissionController {
	if s.router != nil {
		return s.router.Admissions()
	}
	return []*AdmissionController{s.loop.Admission()}
}

// MaxBatchEdges returns the current effective coalescing cap: the
// admission governor's floating cap when admission is on, the
// configured static cap otherwise. Sharded servers report the largest
// per-shard cap.
func (s *Server[V, A]) MaxBatchEdges() int {
	if s.router != nil {
		return s.router.MaxBatchEdges()
	}
	return s.loop.MaxBatchEdges()
}

// SetMaxBatchEdges adjusts the coalescing cap at runtime (clamped into
// the admission floor/ceiling band when admission is on; non-positive
// values are ignored). Sharded servers adjust every shard.
func (s *Server[V, A]) SetMaxBatchEdges(n int) {
	if s.router != nil {
		s.router.SetMaxBatchEdges(n)
		return
	}
	s.loop.SetMaxBatchEdges(n)
}

// Flight returns the server's flight recorder, nil unless
// ServerOptions.Flight was set. The nil recorder is inert and safe to
// call.
func (s *Server[V, A]) Flight() *FlightRecorder {
	if s.router != nil {
		return s.router.Flight()
	}
	return s.loop.Flight()
}

// Trace returns the completed lifecycle record covering trace ID id —
// assigned at Submit, returned by SubmitTicket.Trace and on
// Applied.Trace — whether id was the head of its apply or coalesced
// into a sibling's. It reports false when no flight recorder is
// configured or the trace has aged out of the recorder's bounded
// history (FlightOptions.TraceDepth).
func (s *Server[V, A]) Trace(id uint64) (BatchTrace, bool) {
	return s.Flight().Trace(id)
}

// FlightHandler returns an http.Handler serving the flight ring as JSON
// (filterable with ?trace=ID, ?kind=NAME, ?dump=last), for mounting at
// /debug/flight:
//
//	mux := obs.HandlerWith(reg, map[string]http.Handler{
//	    "/debug/flight": srv.FlightHandler(),
//	})
//
// Without a configured recorder the handler answers 404.
func (s *Server[V, A]) FlightHandler() http.Handler { return s.Flight().Handler() }

// Err returns the ingest loop's terminal failure, or nil. After a
// terminal failure the wrapped engine must be discarded; a durable
// engine can be reopened from its checkpoint and journal. Degraded
// mode is not terminal and does not show up here — see Health. On a
// sharded server this is the first shard failure observed, latched:
// its value never changes once non-nil, names the failing shard, and
// keeps precedence over ErrServerClosed after Close.
func (s *Server[V, A]) Err() error {
	if s.router != nil {
		return s.router.Err()
	}
	return s.loop.Err()
}

// Health returns the server's health tracker. Its State method reports
// HealthHealthy, HealthDegraded (reads serving, writes failing fast
// while recovery retries), HealthOverloaded (admission shedding excess
// load) or HealthFailed (terminal); OnTransition registers hooks for
// state changes.
func (s *Server[V, A]) Health() *HealthTracker { return s.health }

// HealthHandler returns an http.Handler serving the server's health as
// JSON ({"state","cause","since"}); it answers 200 while Healthy,
// Degraded or Overloaded and 503 once Failed, so it suits both
// liveness and, via the
// body, readiness checks. Mount it alongside the metrics mux:
//
//	mux := obs.HandlerWith(reg, map[string]http.Handler{
//	    "/healthz": srv.HealthHandler(),
//	})
func (s *Server[V, A]) HealthHandler() http.Handler { return health.Handler(s.health) }

// Quarantined returns the retained poison-batch records, oldest first
// (a bounded ring: the most recent ServerOptions.QuarantineDepth).
// Each record carries the offending batch, its submission sequence,
// the validation error and the rejection time. A sharded server merges
// every shard's ring, ordered by quarantine time.
func (s *Server[V, A]) Quarantined() []PoisonBatch {
	if s.router != nil {
		return s.router.Quarantined()
	}
	return s.loop.Quarantined()
}

// QuarantinedTotal returns the running count of quarantined batches,
// including records the ring has since evicted — summed across shards
// when sharded.
func (s *Server[V, A]) QuarantinedTotal() uint64 {
	if s.router != nil {
		return s.router.QuarantinedTotal()
	}
	return s.loop.QuarantinedTotal()
}

// Shards returns the number of partition shards serving writes: 1 for
// the classic single-loop server.
func (s *Server[V, A]) Shards() int {
	if s.router != nil {
		return s.router.Shards()
	}
	return 1
}

// ShardInfo is a point-in-time report of one partition shard.
type ShardInfo struct {
	Shard       int         // shard index
	QueueDepth  int         // sub-batches queued on the shard loop
	Applied     uint64      // apply calls the shard completed
	Quarantined uint64      // poison batches the shard ever quarantined
	State       HealthState // the shard's own health state
}

// ShardInfos reports every shard's queue depth, apply count,
// quarantine total and health state; a single-element slice for the
// classic single-loop server.
func (s *Server[V, A]) ShardInfos() []ShardInfo {
	if s.router == nil {
		return []ShardInfo{{
			QueueDepth:  s.loop.Depth(),
			Applied:     s.loop.Seq(),
			Quarantined: s.loop.QuarantinedTotal(),
			State:       s.health.State(),
		}}
	}
	out := make([]ShardInfo, s.router.Shards())
	for i := range out {
		l := s.router.Loop(i)
		out[i] = ShardInfo{
			Shard:       i,
			QueueDepth:  l.Depth(),
			Applied:     l.Seq(),
			Quarantined: l.QuarantinedTotal(),
			State:       s.router.ShardHealth(i).State(),
		}
	}
	return out
}

// Close stops accepting submissions, drains the queue, waits for the
// apply goroutine to exit (bounded by ctx; nil waits indefinitely),
// and — for durable servers — closes the journal. Reads remain valid
// after Close: the last published snapshot stays available.
func (s *Server[V, A]) Close(ctx context.Context) error {
	var err error
	var done <-chan struct{}
	if s.router != nil {
		err = s.router.Close(ctx)
		done = s.router.Done()
	} else {
		err = s.loop.Close(ctx)
		done = s.loop.Done()
	}
	select {
	case <-done:
	default:
		// ctx expired while the queue was still draining: the loop is
		// still writing, so leave the journal open and the server
		// accepting Wait calls; a later Close can finish the job.
		return err
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.watch)
		s.watch = make(chan struct{})
	}
	s.mu.Unlock()
	if s.closeEng != nil {
		if cerr := s.closeEng(); err == nil {
			err = cerr
		}
		s.closeEng = nil
	}
	return err
}
