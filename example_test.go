package graphbolt_test

import (
	"fmt"

	graphbolt "repro"
)

// Example demonstrates the streaming lifecycle: run once, then keep
// results current through mutation batches.
func Example() {
	g, _ := graphbolt.BuildGraph(3, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 2, To: 0, Weight: 1},
	})
	eng, _ := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 50})
	eng.Run()
	fmt.Printf("symmetric cycle: rank(1) = %.4f\n", eng.Values()[1])

	// Break the symmetry: 0 now also points at 2.
	eng.ApplyBatch(graphbolt.Batch{Add: []graphbolt.Edge{{From: 0, To: 2, Weight: 1}}})
	fmt.Printf("after mutation:  rank(1) = %.4f, rank(2) = %.4f\n",
		eng.Values()[1], eng.Values()[2])
	// Output:
	// symmetric cycle: rank(1) = 1.0000
	// after mutation:  rank(1) = 0.6444, rank(2) = 1.1922
}

// Example_shortestPaths shows the non-decomposable min aggregation:
// deletions that lengthen paths are handled by re-evaluation.
func Example_shortestPaths() {
	g, _ := graphbolt.BuildGraph(4, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 3, Weight: 1},
		{From: 0, To: 3, Weight: 5},
	})
	eng, _ := graphbolt.NewEngine[float64, float64](g, graphbolt.NewSSSP(0),
		graphbolt.Options{MaxIterations: 100})
	eng.Run()
	fmt.Printf("dist(3) = %v\n", eng.Values()[3])

	// Deleting the short path forces the long one.
	eng.ApplyBatch(graphbolt.Batch{Del: []graphbolt.Edge{{From: 1, To: 3}}})
	fmt.Printf("dist(3) = %v after closure\n", eng.Values()[3])
	// Output:
	// dist(3) = 2
	// dist(3) = 5 after closure
}

// Example_triangles shows the locally incremental triangle counter.
func Example_triangles() {
	g, _ := graphbolt.BuildGraph(4, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
	})
	tc := graphbolt.NewTriangleCounter(g)
	fmt.Println("cycles:", tc.Triangles())

	tc.Apply(graphbolt.Batch{Add: []graphbolt.Edge{{From: 2, To: 0, Weight: 1}}})
	fmt.Println("cycles after closing the loop:", tc.Triangles())
	// Output:
	// cycles: 0
	// cycles after closing the loop: 1
}
