package graphbolt_test

import (
	"context"
	"testing"
	"time"

	graphbolt "repro"
)

// These tests pin the documented read-path contracts so doc drift
// becomes a test failure, not a surprise for integrators.

// TestSnapshotNilBeforeRun: Engine.Snapshot (and Values) return nil
// until the first Run/ApplyBatch/ReadSnapshot publishes — readers must
// handle a nil snapshot during startup.
func TestSnapshotNilBeforeRun(t *testing.T) {
	g, err := graphbolt.BuildGraph(3, []graphbolt.Edge{{From: 0, To: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap := eng.Snapshot(); snap != nil {
		t.Fatalf("Snapshot before Run = %+v, want nil", snap)
	}
	if vals := eng.Values(); vals != nil {
		t.Fatalf("Values before Run = %v, want nil", vals)
	}
	var nilSnap *graphbolt.ResultSnapshot[float64]
	if got := nilSnap.CopyValues(); got != nil {
		t.Fatalf("nil snapshot CopyValues = %v, want nil", got)
	}
	eng.Run()
	if snap := eng.Snapshot(); snap == nil || snap.Generation != 1 {
		t.Fatalf("Snapshot after Run = %+v, want generation 1", snap)
	}
}

// TestWaitReturnsFirstAtLeast: Server.Wait(ctx, gen) resolves with the
// first snapshot whose Generation is >= gen — NOT an exact match. A
// reader that calls Wait(2) after the writer reached generation 5 gets
// generation 5, and a reader waiting on a future generation gets
// whatever generation first satisfies the bound.
func TestWaitReturnsFirstAtLeast(t *testing.T) {
	g, err := graphbolt.BuildGraph(4, []graphbolt.Edge{{From: 0, To: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{DisableCoalescing: true})
	defer srv.Close(context.Background())
	ctx := context.Background()

	// Drive the server to generation 5 (initial run + 4 batches).
	for i := 0; i < 4; i++ {
		b := graphbolt.Batch{Add: []graphbolt.Edge{
			{From: graphbolt.VertexID(i % 4), To: graphbolt.VertexID((i + 1) % 4), Weight: 1},
		}}
		if _, err := srv.SubmitWait(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	if gen := srv.Generation(); gen != 5 {
		t.Fatalf("generation = %d, want 5", gen)
	}

	// Waiting on an already-passed generation returns the CURRENT
	// snapshot (generation 5), not a historical generation-2 one.
	snap, err := srv.Wait(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 5 {
		t.Fatalf("Wait(2) returned generation %d, want 5 (first >= 2 observed)", snap.Generation)
	}

	// Waiting on a future generation blocks until some snapshot with
	// Generation >= gen publishes, then returns it.
	done := make(chan *graphbolt.ResultSnapshot[float64], 1)
	go func() {
		s, err := srv.Wait(ctx, 6)
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- s
	}()
	select {
	case <-done:
		t.Fatal("Wait(6) resolved before generation 6 was published")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := srv.SubmitWait(ctx, graphbolt.Batch{Add: []graphbolt.Edge{{From: 1, To: 3, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-done:
		if s == nil || s.Generation < 6 {
			t.Fatalf("Wait(6) returned %+v, want generation >= 6", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait(6) did not resolve after generation 6 published")
	}

	// A deadline while waiting on an unreachable generation surfaces
	// the context error, not a fabricated snapshot.
	short, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := srv.Wait(short, 99); err == nil {
		t.Fatal("Wait on unreachable generation returned without error")
	}
}
