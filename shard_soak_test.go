package graphbolt_test

import (
	"context"
	"errors"
	"log/slog"
	"math"
	"math/rand"
	"testing"
	"time"

	graphbolt "repro"
	"repro/internal/faultio"
	"repro/internal/wal"
)

// TestShardSoak is the sharded self-healing soak (run under -race via
// `make shard`): a 3-shard durable server serves a randomized
// partition-closed stream while shard 1's journal — and only shard
// 1's — sits on a flaky disk. It asserts the sharded failure-domain
// contract end to end:
//
//   - with shard 1's fsync hard-failing, shard 1 goes Degraded while
//     shards 0 and 2 keep accepting and applying within a bounded wait
//     (ingestion holds the degraded shard's batches, it does not stop
//     the others);
//   - scripted poison batches quarantine on their owning shard only,
//     despite the concurrent fault episodes;
//   - once the disk heals, every held batch lands, the server returns
//     to Healthy with no terminal error, and the merged values equal a
//     from-scratch ModeReset run over the surviving stream;
//   - a restart (OpenShardedDurable over the same directory tree, no
//     faults) recovers every shard and reproduces the live state.
func TestShardSoak(t *testing.T) {
	nBatches := 150
	if testing.Short() {
		nBatches = 40
	}
	const (
		n      = 48
		shards = 3
	)
	assign, pools := roundRobinAssign(n, shards)
	rng := rand.New(rand.NewSource(11))
	mirror := shardMirror{n: n, edges: closedEdges(rng, pools, 3*n)}

	g, err := graphbolt.BuildGraph(n, append([]graphbolt.Edge(nil), mirror.edges...))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fsync := faultio.NewFsync()
	sd, err := graphbolt.OpenShardedDurable(eng, dir, shards, assign,
		func(shard int) graphbolt.DurableOptions {
			o := graphbolt.DurableOptions{
				CheckpointEvery: 20,
				WAL:             graphbolt.WALOptions{Sync: graphbolt.SyncEveryBatch},
			}
			if shard == 1 {
				o.WAL.Hooks = wal.Hooks{BeforeSync: fsync.Check}
			}
			return o
		})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := graphbolt.NewShardedDurableServer(sd, graphbolt.ServerOptions{
		DisableCoalescing: true, // one journal record per sub-batch
		QuarantineDepth:   8,
		Backoff:           graphbolt.BackoffPolicy{Base: 500 * time.Microsecond, Max: 5 * time.Millisecond},
		Logger:            slog.New(slog.DiscardHandler),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Phase 1 — hard outage on shard 1's disk: every fsync fails, so
	// its first journaled apply wedges the shard in Degraded while
	// recovery retries under backoff.
	fsync.FailEveryKth(1, nil)
	p1 := pools[1]
	held, err := srv.Submit(ctx, graphbolt.Batch{Add: []graphbolt.Edge{
		{From: p1[0], To: p1[1], Weight: 1},
	}})
	if err != nil {
		t.Fatalf("Submit to faulted shard: %v", err)
	}
	mirror = mirror.apply(graphbolt.Batch{Add: []graphbolt.Edge{{From: p1[0], To: p1[1], Weight: 1}}})

	deadline := time.Now().Add(10 * time.Second)
	for srv.ShardInfos()[1].State != graphbolt.HealthDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never degraded: %+v", srv.ShardInfos())
		}
		time.Sleep(time.Millisecond)
	}
	if st := srv.Health().State(); st != graphbolt.HealthDegraded {
		t.Fatalf("server health = %v with shard 1 degraded, want Degraded", st)
	}

	// Shards 0 and 2 must keep applying, bounded, while shard 1 is down.
	for _, s := range []int{0, 2} {
		p := pools[s]
		wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		if _, err := srv.SubmitWait(wctx, graphbolt.Batch{Add: []graphbolt.Edge{
			{From: p[0], To: p[2], Weight: 1},
		}}); err != nil {
			t.Fatalf("shard %d SubmitWait while shard 1 degraded: %v", s, err)
		}
		cancel()
		mirror = mirror.apply(graphbolt.Batch{Add: []graphbolt.Edge{{From: p[0], To: p[2], Weight: 1}}})
		if si := srv.ShardInfos()[s]; si.State != graphbolt.HealthHealthy {
			t.Fatalf("shard %d state = %v during shard 1's outage, want Healthy", s, si.State)
		}
	}

	// Heal the disk: the held batch lands and shard 1 recovers.
	fsync.FailEveryKth(0, nil)
	if _, err := held.Wait(ctx); err != nil {
		t.Fatalf("held shard-1 batch resolved with %v after heal", err)
	}

	// Phase 2 — soak under a periodically flaky disk: every 5th fsync
	// on shard 1 fails while the randomized stream (most batches
	// cross-shard) flows, with scripted poisons owned by shard 2.
	fsync.FailEveryKth(5, nil)
	var poisons []*graphbolt.SubmitTicket
	p2 := pools[2]
	for i := 0; i < nBatches; i++ {
		if i == nBatches/3 || i == 2*nBatches/3 {
			tk, err := srv.Submit(ctx, graphbolt.Batch{Add: []graphbolt.Edge{
				{From: p2[0], To: p2[1], Weight: math.NaN()},
			}})
			if err != nil {
				t.Fatalf("poison Submit: %v", err)
			}
			poisons = append(poisons, tk)
		}
		b := randomClosedBatch(rng, mirror, pools)
		mirror = mirror.apply(b)
		if _, err := srv.Submit(ctx, b); err != nil {
			t.Fatalf("Submit batch %d: %v", i+1, err)
		}
	}

	// Drain under a healthy disk; every poison ticket must have been
	// refused with the validation sentinel.
	fsync.FailEveryKth(0, nil)
	if _, err := srv.Sync(ctx); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	for i, tk := range poisons {
		if _, err := tk.Wait(ctx); !errors.Is(err, graphbolt.ErrInvalidBatch) {
			t.Fatalf("poison %d resolved with %v, want ErrInvalidBatch", i, err)
		}
	}
	if fsync.Failures() == 0 {
		t.Fatal("fault injector never fired; the soak exercised nothing")
	}

	// Quarantine stays confined to the owning shard across the faults.
	if got := srv.QuarantinedTotal(); got != uint64(len(poisons)) {
		t.Fatalf("QuarantinedTotal() = %d, want %d", got, len(poisons))
	}
	for _, si := range srv.ShardInfos() {
		want := uint64(0)
		if si.Shard == 2 {
			want = uint64(len(poisons))
		}
		if si.Quarantined != want {
			t.Fatalf("shard %d quarantined %d, want %d", si.Shard, si.Quarantined, want)
		}
	}

	// The server ends Healthy with no terminal error.
	deadline = time.Now().Add(10 * time.Second)
	for srv.Health().State() != graphbolt.HealthHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("server never returned to Healthy: %+v", srv.Health().Info())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("terminal failure after soak: %v", err)
	}

	// BSP equivalence across the degraded episodes: merged values equal
	// a from-scratch run that never saw the faults or poisons.
	finalSnap := srv.Snapshot()
	refG, err := graphbolt.BuildGraph(mirror.n, append([]graphbolt.Edge(nil), mirror.edges...))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := graphbolt.NewEngine[float64, float64](refG, graphbolt.NewPageRank(),
		graphbolt.Options{Mode: graphbolt.ModeReset, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run()
	valuesClose(t, finalSnap.Values, fresh.Values(), 1e-6, "soaked merged vs from-scratch")

	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: recovering every shard from the directory tree the
	// faulted run left behind reproduces the live state.
	g2, err := graphbolt.BuildGraph(n, g.Edges(nil))
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := graphbolt.NewEngine[float64, float64](g2, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	sd2, err := graphbolt.OpenShardedDurable(eng2, dir, shards, assign,
		func(int) graphbolt.DurableOptions {
			return graphbolt.DurableOptions{CheckpointEvery: 20}
		})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := len(sd2.Recovery()); got != shards {
		t.Fatalf("reopen recovered %d shards, want %d", got, shards)
	}
	srv2, err := graphbolt.NewShardedDurableServer(sd2, graphbolt.ServerOptions{
		Logger: slog.New(slog.DiscardHandler),
	})
	if err != nil {
		t.Fatalf("reopen server: %v", err)
	}
	valuesClose(t, srv2.Snapshot().Values, finalSnap.Values, 1e-9, "recovered vs live")
	if err := srv2.Close(ctx); err != nil {
		t.Fatalf("reopen Close: %v", err)
	}
}
