package graphbolt

import (
	"net/http"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/flight"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/qcache"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/wal"
)

// MetricsRegistry re-exports the metrics registry: atomic counters,
// gauges and fixed-bucket histograms with Prometheus text exposition.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of every metric, JSON-ready.
type MetricsSnapshot = obs.Snapshot

// Tracer delivers engine phase spans ("run", "refine", "hybrid",
// "checkpoint", ...) to pluggable sinks; set it on Options.Tracer or
// DurableOptions.Tracer.
type Tracer = obs.Tracer

// TraceSink receives completed phase spans.
type TraceSink = obs.Sink

// NewTracer builds a tracer fanning out to the given sinks. A nil
// tracer (the Options default) is inert.
var NewTracer = obs.NewTracer

// NewMetricsRegistry builds an empty standalone registry, for callers
// that want instrumentation scoped to one engine or server instead of
// the process-wide registry EnableMetrics manages.
var NewMetricsRegistry = obs.NewRegistry

// EnableMetrics turns on process-wide instrumentation: every engine,
// journal and parallel loop constructed afterwards reports into the
// returned registry (engines built with an explicit Options.Metrics
// keep their own). All series are pre-registered so exposition shows
// them at zero. Idempotent.
func EnableMetrics() *MetricsRegistry {
	reg := obs.Default()
	core.SetDefaultMetrics(reg)
	core.RegisterMetrics(reg)
	wal.RegisterMetrics(reg)
	durable.RegisterMetrics(reg)
	serve.SetDefaultMetrics(reg)
	serve.RegisterMetrics(reg)
	qcache.RegisterMetrics(reg)
	health.RegisterMetrics(reg)
	admission.RegisterMetrics(reg)
	flight.RegisterMetrics(reg)
	partition.RegisterMetrics(reg)
	replica.RegisterMetrics(reg)
	parallel.SetMetrics(reg)
	return reg
}

// DisableMetrics turns process-wide instrumentation back off. Engines
// constructed while it was on keep reporting into the registry they
// resolved at construction time.
func DisableMetrics() {
	core.SetDefaultMetrics(nil)
	serve.SetDefaultMetrics(nil)
	parallel.SetMetrics(nil)
}

// Metrics returns a point-in-time snapshot of the process-wide
// registry (every series at zero unless EnableMetrics was called and
// work has run).
func Metrics() MetricsSnapshot {
	return obs.Default().Snapshot()
}

// MetricsHandler returns the introspection HTTP handler for the
// process-wide registry: /metrics (Prometheus text), /metrics.json,
// /debug/vars (expvar) and /debug/pprof/*. Mount it on any server, or
// serve it directly:
//
//	graphbolt.EnableMetrics()
//	go http.ListenAndServe("localhost:9090", graphbolt.MetricsHandler())
func MetricsHandler() http.Handler {
	return obs.Handler(obs.Default())
}
