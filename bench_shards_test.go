package graphbolt_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	graphbolt "repro"
)

// shardScalingResult is one row of BENCH_shard_scaling.json.
type shardScalingResult struct {
	Shards        int     `json:"shards"`
	Seconds       float64 `json:"seconds"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	EdgesPerSec   float64 `json:"edges_per_sec"`
	SpeedupOver1  float64 `json:"speedup_over_1_shard"`
}

type shardScalingReport struct {
	Benchmark     string               `json:"benchmark"`
	GeneratedAt   string               `json:"generated_at"`
	GOMAXPROCS    int                  `json:"gomaxprocs"`
	Vertices      int                  `json:"vertices"`
	BaseEdges     int                  `json:"base_edges"`
	Batches       int                  `json:"batches"`
	EdgesPerBatch int                  `json:"edges_per_batch"`
	Note          string               `json:"note"`
	Results       []shardScalingResult `json:"results"`
}

// TestShardScaling measures serving throughput at 1/2/4/8 shards over a
// single-shard-routable stream (every batch's edges stay inside one
// shard's vertex pool) and writes BENCH_shard_scaling.json. Gated on
// BENCH_SHARDS=1 — run it via `make bench-shards`.
//
// The scaling mechanism is work locality, not just loop concurrency:
// graph.Apply rewrites the full CSR/CSC of the mutated graph (§4.1), so
// a single loop pays O(total edges) structural work per coalesced
// apply, while each shard rewrites only its own subgraph — and the
// merged-view publisher coalesces the union maintenance across every
// batch a pass drains. The asserted floor (4 shards ≥ 2× 1 shard) is
// the ISSUE's acceptance bar.
func TestShardScaling(t *testing.T) {
	if os.Getenv("BENCH_SHARDS") == "" {
		t.Skip("set BENCH_SHARDS=1 (or run `make bench-shards`) to run the scaling benchmark")
	}
	const (
		n             = 512
		baseEdges     = 300000
		batches       = 240
		edgesPerBatch = 48
		maxShards     = 8
		maxIter       = 3
	)
	// Round-robin assignment nests across shard counts: a pool that is
	// single-shard at 8 shards (v ≡ k mod 8) is also single-shard at 4,
	// 2 and 1 — so the identical stream is single-shard-routable at
	// every measured width.
	assign8, pools8 := roundRobinAssign(n, maxShards)

	rng := rand.New(rand.NewSource(99))
	base := closedEdges(rng, pools8, baseEdges)
	stream := make([]graphbolt.Batch, batches)
	for i := range stream {
		p := pools8[i%maxShards]
		b := graphbolt.Batch{Add: make([]graphbolt.Edge, edgesPerBatch)}
		for j := range b.Add {
			b.Add[j] = graphbolt.Edge{
				From:   p[rng.Intn(len(p))],
				To:     p[rng.Intn(len(p))],
				Weight: float64(rng.Intn(6) + 1),
			}
		}
		stream[i] = b
	}

	run := func(shards int) (time.Duration, []float64) {
		g, err := graphbolt.BuildGraph(n, append([]graphbolt.Edge(nil), base...))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(),
			graphbolt.Options{MaxIterations: maxIter})
		if err != nil {
			t.Fatal(err)
		}
		opts := graphbolt.ServerOptions{QueueDepth: 64}
		if shards > 1 {
			opts.Shards = shards
			opts.ShardAssign = make(map[graphbolt.VertexID]int, n)
			for v, s := range assign8 {
				opts.ShardAssign[v] = s % shards
			}
		}
		srv := graphbolt.NewServer(eng, opts)
		ctx := context.Background()
		start := time.Now()
		for i, b := range stream {
			if _, err := srv.Submit(ctx, b); err != nil {
				t.Fatalf("shards=%d: Submit batch %d: %v", shards, i+1, err)
			}
		}
		snap, err := srv.Sync(ctx)
		if err != nil {
			t.Fatalf("shards=%d: Sync: %v", shards, err)
		}
		elapsed := time.Since(start)
		vals := append([]float64(nil), snap.Values...)
		if err := srv.Close(ctx); err != nil {
			t.Fatalf("shards=%d: Close: %v", shards, err)
		}
		return elapsed, vals
	}

	report := shardScalingReport{
		Benchmark:     "shard_scaling",
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Vertices:      n,
		BaseEdges:     baseEdges,
		Batches:       batches,
		EdgesPerBatch: edgesPerBatch,
		Note:          "single-shard-routable stream; per-shard CSR/CSC rewrites touch only the owning subgraph",
	}
	// Median of three trials per width: the whole sweep runs in around a
	// second, where a single stray GC or scheduler hiccup would swamp
	// one sample.
	var refVals []float64
	var t1 time.Duration
	for _, shards := range []int{1, 2, 4, 8} {
		var trials []time.Duration
		var vals []float64
		for trial := 0; trial < 3; trial++ {
			elapsed, v := run(shards)
			trials = append(trials, elapsed)
			vals = v
		}
		sort.Slice(trials, func(i, j int) bool { return trials[i] < trials[j] })
		elapsed := trials[1]
		if shards == 1 {
			t1 = elapsed
			refVals = vals
		} else {
			valuesClose(t, vals, refVals, 1e-6, fmt.Sprintf("%d-shard vs 1-shard values", shards))
		}
		r := shardScalingResult{
			Shards:        shards,
			Seconds:       elapsed.Seconds(),
			BatchesPerSec: float64(batches) / elapsed.Seconds(),
			EdgesPerSec:   float64(batches*edgesPerBatch) / elapsed.Seconds(),
			SpeedupOver1:  t1.Seconds() / elapsed.Seconds(),
		}
		report.Results = append(report.Results, r)
		t.Logf("shards=%d: %v (%.1f batches/s, %.2fx)", shards, elapsed, r.BatchesPerSec, r.SpeedupOver1)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_shard_scaling.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	var four shardScalingResult
	for _, r := range report.Results {
		if r.Shards == 4 {
			four = r
		}
	}
	if four.SpeedupOver1 < 2.0 {
		t.Fatalf("4-shard speedup %.2fx over 1 shard, want >= 2.0x", four.SpeedupOver1)
	}
}
