package graphbolt_test

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	graphbolt "repro"
	"repro/internal/faultio"
	"repro/internal/flight"
	"repro/internal/gen"
	"repro/internal/stream"
	"repro/internal/wal"
)

// TestFlightRecorderE2E drives a durable server through the full batch
// lifecycle — submit, coalesce, journal (with fsync), apply, publish —
// plus one scripted fsync-failure episode, and asserts the flight
// recorder's acceptance contract:
//
//   - Server.Trace returns a complete per-phase timeline whose phase
//     durations sum within tolerance of the observed end-to-end latency;
//   - the Degraded transition forces a flight dump focused on (and
//     containing) the failing batch's trace;
//   - /debug/flight serves the same events, filterable by trace ID.
func TestFlightRecorderE2E(t *testing.T) {
	const nVerts = 64
	edges := gen.RMAT(11, nVerts, 1500, gen.WeightUniform)
	strm, err := stream.FromEdges(nVerts, edges, stream.Config{
		BatchSize:  8,
		NumBatches: 8,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}

	rec := graphbolt.NewFlightRecorder(graphbolt.FlightOptions{
		Depth: 1 << 12, TraceDepth: 256,
		Logger: slog.New(slog.DiscardHandler),
	})

	// The gate, when armed, blocks the next WAL fsync so batches pile up
	// behind an in-flight apply and coalesce deterministically.
	fsync := faultio.NewFsync()
	var gateArmed atomic.Bool
	gateEntered := make(chan struct{}, 1)
	gate := make(chan struct{})
	d, err := graphbolt.OpenDurable(eng, t.TempDir(), graphbolt.DurableOptions{
		Flight: rec,
		WAL: graphbolt.WALOptions{
			Sync: graphbolt.SyncEveryBatch,
			Hooks: wal.Hooks{
				BeforeSync: func() error {
					if gateArmed.CompareAndSwap(true, false) {
						select {
						case gateEntered <- struct{}{}:
						default:
						}
						<-gate
					}
					return fsync.Check()
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewDurableServer(d, graphbolt.ServerOptions{
		Flight:  rec,
		Backoff: graphbolt.BackoffPolicy{Base: 500 * time.Microsecond, Max: 5 * time.Millisecond},
		Logger:  slog.New(slog.DiscardHandler),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Phase 1 — coalescing: the head batch blocks inside its journal
	// fsync while four more queue behind it, then everything drains.
	gateArmed.Store(true)
	tk0, err := srv.Submit(ctx, strm.Batches[0])
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gateEntered:
	case <-ctx.Done():
		t.Fatal("head batch never reached its journal fsync")
	}
	var sibs []*graphbolt.SubmitTicket
	for _, b := range strm.Batches[1:5] {
		tk, err := srv.Submit(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		sibs = append(sibs, tk)
	}
	close(gate)

	if _, err := tk0.Wait(ctx); err != nil {
		t.Fatalf("head batch failed: %v", err)
	}
	var merged graphbolt.Applied
	for i, tk := range sibs {
		a, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("queued batch %d failed: %v", i+1, err)
		}
		if i == 0 {
			merged = a
		} else if a.Trace.ID != merged.Trace.ID {
			t.Fatalf("queued batches resolved under different applies: trace %d vs %d",
				a.Trace.ID, merged.Trace.ID)
		}
	}
	if merged.Batches != len(sibs) || len(merged.Trace.Traces) != len(sibs) {
		t.Fatalf("coalesced apply covers %d batches / traces %v, want all %d queued batches",
			merged.Batches, merged.Trace.Traces, len(sibs))
	}
	for _, tk := range sibs {
		if !merged.Trace.Covers(tk.Trace()) {
			t.Fatalf("merged trace set %v misses ticket %d", merged.Trace.Traces, tk.Trace())
		}
	}

	// The per-phase timeline: complete, internally disjoint, and summing
	// to the observed end-to-end latency within scheduling tolerance.
	for _, tk := range sibs {
		bt, ok := srv.Trace(tk.Trace())
		if !ok {
			t.Fatalf("Server.Trace(%d) lost the lifecycle", tk.Trace())
		}
		if bt.ID != merged.Trace.ID || bt.Seq != merged.Seq {
			t.Fatalf("Trace(%d) = %+v, want the merged apply %d/seq %d",
				tk.Trace(), bt, merged.Trace.ID, merged.Seq)
		}
	}
	bt := merged.Trace
	if bt.Phases.QueueWait <= 0 || bt.Phases.Journal <= 0 || bt.Phases.Apply <= 0 {
		t.Fatalf("phases incomplete: %+v (queue wait, journal and apply must all be measured)", bt.Phases)
	}
	e2e, total := bt.E2E(), bt.Phases.Total()
	if total <= 0 || e2e <= 0 {
		t.Fatalf("degenerate timeline: e2e=%v phases=%v", e2e, total)
	}
	if diff := e2e - total; diff < -50*time.Millisecond || diff > 500*time.Millisecond {
		t.Fatalf("phase sum %v vs end-to-end %v: off by %v, outside tolerance", total, e2e, diff)
	}

	// The head batch's ring timeline holds the full lifecycle, and each
	// sibling's coalesce event names the absorbing head.
	headID := bt.ID
	kindsFor := func(id uint64) map[string]bool {
		ks := map[string]bool{}
		for _, e := range rec.Snapshot() {
			if e.Trace == id {
				ks[e.Kind.String()] = true
			}
		}
		return ks
	}
	for _, k := range []string{"admitted", "enqueued", "validated", "journaled", "applied", "published"} {
		if !kindsFor(headID)[k] {
			t.Fatalf("head trace %d missing %q event; has %v", headID, k, kindsFor(headID))
		}
	}
	for _, tk := range sibs[1:] {
		if !kindsFor(tk.Trace())["coalesced"] {
			t.Fatalf("sibling trace %d has no coalesce event", tk.Trace())
		}
	}

	// Phase 2 — scripted fsync failure: the next batch's journal append
	// fails, the server goes Degraded, and the transition forces a dump
	// focused on the failing batch's trace.
	dumpsBefore := rec.Dumps()
	fsync.FailEveryKth(1, nil)
	tkBad, err := srv.Submit(ctx, strm.Batches[5])
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Health().State() != graphbolt.HealthDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("server never went Degraded; health=%+v", srv.Health().Info())
		}
		time.Sleep(100 * time.Microsecond)
	}
	fsync.FailEveryKth(0, nil)
	if _, err := tkBad.Wait(ctx); err != nil {
		t.Fatalf("held batch failed after repair: %v", err)
	}

	if rec.Dumps() <= dumpsBefore {
		t.Fatal("Degraded transition produced no flight dump")
	}
	dump := rec.LastDump()
	if dump == nil || dump.Focus != tkBad.Trace() {
		t.Fatalf("dump focus = %+v, want the failing batch's trace %d", dump, tkBad.Trace())
	}
	var sawFailure bool
	for _, e := range dump.Events {
		if e.Trace == tkBad.Trace() &&
			(e.Kind == flight.KindJournalFailed || e.Kind == flight.KindFsyncFailed) {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatalf("dump holds no journal/fsync failure event for trace %d", tkBad.Trace())
	}

	if _, err := srv.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 3 — /debug/flight serves the same events filtered by trace.
	req := httptest.NewRequest("GET", "/debug/flight?trace="+strconv.FormatUint(tkBad.Trace(), 10), nil)
	rw := httptest.NewRecorder()
	srv.FlightHandler().ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("/debug/flight status %d: %s", rw.Code, rw.Body.String())
	}
	var resp struct {
		Events []struct {
			Seq   uint64 `json:"seq"`
			Trace uint64 `json:"trace"`
			Kind  string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /debug/flight JSON: %v", err)
	}
	want := map[uint64]string{}
	for _, e := range rec.Snapshot() {
		if e.Trace == tkBad.Trace() {
			want[e.Seq] = e.Kind.String()
		}
	}
	if len(resp.Events) != len(want) {
		t.Fatalf("/debug/flight?trace= returned %d events, ring holds %d for that trace",
			len(resp.Events), len(want))
	}
	kinds := map[string]bool{}
	for _, e := range resp.Events {
		if e.Trace != tkBad.Trace() {
			t.Fatalf("trace filter leaked trace %d", e.Trace)
		}
		if want[e.Seq] != e.Kind {
			t.Fatalf("event %d: HTTP kind %q vs ring %q", e.Seq, e.Kind, want[e.Seq])
		}
		kinds[e.Kind] = true
	}
	if !kinds["journal_failed"] && !kinds["fsync_failed"] {
		t.Fatal("/debug/flight view of the failing trace has no failure event")
	}
	if !kinds["published"] {
		t.Fatal("/debug/flight view of the failing trace has no publication event")
	}

	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestFlightRecorderOverhead interleaves identical apply workloads with
// and without a flight recorder and asserts the recorder costs under 5%
// of median apply latency (plus fixed slack for scheduler noise) — the
// O(1), zero-alloc hot-path claim, measured end to end.
func TestFlightRecorderOverhead(t *testing.T) {
	const nVerts = 128
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	edges := gen.RMAT(5, nVerts, 3000, gen.WeightUniform)
	strm, err := stream.FromEdges(nVerts, edges, stream.Config{
		BatchSize:  10,
		NumBatches: rounds,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	mkServer := func(rec *graphbolt.FlightRecorder) *graphbolt.Server[float64, float64] {
		eng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(),
			graphbolt.Options{MaxIterations: 4})
		if err != nil {
			t.Fatal(err)
		}
		return graphbolt.NewServer(eng, graphbolt.ServerOptions{
			Flight: rec,
			Logger: slog.New(slog.DiscardHandler),
		})
	}
	rec := graphbolt.NewFlightRecorder(graphbolt.FlightOptions{Logger: slog.New(slog.DiscardHandler)})
	base := mkServer(nil)
	flighted := mkServer(rec)
	defer base.Close(nil)
	defer flighted.Close(nil)

	ctx := context.Background()
	var baseDur, flightDur []time.Duration
	for _, b := range strm.Batches[:rounds] {
		t0 := time.Now()
		if _, err := base.SubmitWait(ctx, b); err != nil {
			t.Fatal(err)
		}
		baseDur = append(baseDur, time.Since(t0))
		t1 := time.Now()
		if _, err := flighted.SubmitWait(ctx, b); err != nil {
			t.Fatal(err)
		}
		flightDur = append(flightDur, time.Since(t1))
	}
	if rec.Events() == 0 {
		t.Fatal("flighted server recorded nothing; the comparison is vacuous")
	}
	baseMed, flightMed := median(baseDur), median(flightDur)
	budget := baseMed + baseMed/20 + 2*time.Millisecond
	if flightMed > budget {
		t.Fatalf("median apply latency with flight = %v, without = %v: exceeds 5%%+2ms budget %v",
			flightMed, baseMed, budget)
	}
	t.Logf("apply latency median: base=%v flight=%v (%d events recorded)",
		baseMed, flightMed, rec.Events())
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
