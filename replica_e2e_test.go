package graphbolt_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	graphbolt "repro"
	"repro/internal/backoff"
	"repro/internal/faultio"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/stream"
)

// replicaStream builds a deterministic base graph + mutation stream
// shared by leader and follower engines.
func replicaStream(t *testing.T, nBatches int) *stream.Stream {
	t.Helper()
	const nVerts = 128
	edges := gen.RMAT(11, nVerts, 3000, gen.WeightUniform)
	strm, err := stream.FromEdges(nVerts, edges, stream.Config{
		BatchSize:      10,
		DeleteFraction: 0.2,
		NumBatches:     nBatches,
		Seed:           13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(strm.Batches) < nBatches {
		t.Fatalf("stream yielded %d batches, want %d", len(strm.Batches), nBatches)
	}
	return strm
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// waitApplied blocks until the follower acks seq or the deadline hits.
func waitApplied[V, A any](t *testing.T, f *graphbolt.Follower[V, A], seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for f.AppliedSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d waiting for %d (err: %v)", f.AppliedSeq(), seq, f.Err())
		}
		time.Sleep(time.Millisecond)
	}
}

// compareGenerations asserts follower snapshots match the leader's for
// every generation in the follower's retained window.
func compareGenerations[A any](t *testing.T, leader *graphbolt.Engine[float64, A], f *graphbolt.Follower[float64, A]) {
	t.Helper()
	oldest, newest := f.RetainedGenerations()
	if newest == 0 {
		t.Fatal("follower has no retained generations")
	}
	for g := oldest; g <= newest; g++ {
		ls, err := leader.SnapshotAt(g)
		if err != nil {
			t.Fatalf("leader SnapshotAt(%d): %v", g, err)
		}
		fs, err := f.SnapshotAt(g)
		if err != nil {
			t.Fatalf("follower SnapshotAt(%d): %v", g, err)
		}
		if ls.Graph.NumVertices() != fs.Graph.NumVertices() || ls.Graph.NumEdges() != fs.Graph.NumEdges() {
			t.Fatalf("gen %d: structure diverged: leader %d/%d, follower %d/%d", g,
				ls.Graph.NumVertices(), ls.Graph.NumEdges(), fs.Graph.NumVertices(), fs.Graph.NumEdges())
		}
		if len(ls.Values) != len(fs.Values) {
			t.Fatalf("gen %d: %d leader values, %d follower values", g, len(ls.Values), len(fs.Values))
		}
		for v := range ls.Values {
			if math.Abs(ls.Values[v]-fs.Values[v]) > 1e-7 {
				t.Fatalf("gen %d vertex %d: leader %v, follower %v", g, v, ls.Values[v], fs.Values[v])
			}
		}
	}
}

// TestReplicaEndToEnd is the ISSUE's acceptance scenario: a durable
// leader server and a durable follower in one process, connected by the
// real HTTP replication stream. The follower is killed mid-stream and
// reopened from its own directory; the restarted follower must resume
// at exactly the sequence it last journaled (never skipping, never
// double-applying), every acked generation must match the leader's, and
// the graphbolt_replica_lag_generations gauge must return to 0 once the
// stream drains.
func TestReplicaEndToEnd(t *testing.T) {
	nBatches := 60
	if testing.Short() {
		nBatches = 24
	}
	strm := replicaStream(t, nBatches)
	engOpts := graphbolt.Options{MaxIterations: 6, Retain: nBatches + 1}

	// Leader: durable server (coalescing off: one journal record per
	// batch is what gives followers generation parity) feeding a
	// replication log, with the query API mounted beside the stream.
	leaderEng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(), engOpts)
	if err != nil {
		t.Fatal(err)
	}
	rlog := graphbolt.NewReplicationLog(graphbolt.ReplicationLogOptions{
		Heartbeat: 5 * time.Millisecond,
		Logger:    quietLogger(),
	})
	defer rlog.Close()
	d, err := graphbolt.OpenDurable(leaderEng, t.TempDir(), graphbolt.DurableOptions{OnRecord: rlog.Append})
	if err != nil {
		t.Fatal(err)
	}
	rlog.SetFloor(d.Recovery().SnapshotSeq)
	srv := graphbolt.NewDurableServer(d, graphbolt.ServerOptions{
		DisableCoalescing: true,
		Logger:            quietLogger(),
	})
	mux := http.NewServeMux()
	mux.Handle("GET /v1/wal", rlog.Handler())
	mux.Handle("/v1/", graphbolt.QueryHandler(srv))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx := context.Background()
	submit := func(batches []graphbolt.Batch) {
		t.Helper()
		for i, b := range batches {
			if _, err := srv.Submit(ctx, b); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
		if _, err := srv.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	half := nBatches / 2
	submit(strm.Batches[:half])

	// Follower #1: durable, so its resume position survives the kill.
	followerDir := t.TempDir()
	feng1, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(), engOpts)
	if err != nil {
		t.Fatal(err)
	}
	fd1, err := graphbolt.OpenDurable(feng1, followerDir, graphbolt.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg1 := obs.NewRegistry()
	f1, err := graphbolt.NewDurableFollower(fd1, ts.URL, graphbolt.FollowerOptions{
		Client:  ts.Client(),
		Metrics: reg1,
		Logger:  quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f1.Start(ctx)
	waitApplied(t, f1, uint64(half))

	// Kill the follower mid-stream: stop the replay loop and close its
	// journal while the leader keeps going.
	if err := f1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	stoppedAt := f1.AppliedSeq()
	if err := fd1.Close(); err != nil {
		t.Fatal(err)
	}
	submit(strm.Batches[half:])

	// Restart from the same directory: recovery must land exactly on the
	// sequence the dead follower last journaled — the seq-exact resume
	// the ISSUE demands.
	feng2, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(), engOpts)
	if err != nil {
		t.Fatal(err)
	}
	fd2, err := graphbolt.OpenDurable(feng2, followerDir, graphbolt.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd2.Close()
	if got := fd2.Seq(); got != stoppedAt {
		t.Fatalf("restarted follower recovered to seq %d, stopped at %d", got, stoppedAt)
	}
	reg2 := obs.NewRegistry()
	f2, err := graphbolt.NewDurableFollower(fd2, ts.URL, graphbolt.FollowerOptions{
		Client:  ts.Client(),
		Metrics: reg2,
		Logger:  quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f2.Start(ctx)
	defer f2.Close(ctx)
	waitApplied(t, f2, uint64(nBatches))

	// Never skip, never double: the restarted follower applied exactly
	// the records the first one had not.
	if got, want := f2.Records(), uint64(nBatches)-stoppedAt; got != want {
		t.Fatalf("restarted follower applied %d records, want %d (resume overlap must be dropped)", got, want)
	}
	if got, want := f1.Records(), stoppedAt; got != want {
		t.Fatalf("first follower applied %d records, want %d", got, want)
	}

	// Every acked generation identical to the leader's.
	compareGenerations(t, leaderEng, f2)

	// The lag gauge returns to 0 after the drain.
	if lag := reg2.Snapshot().Gauges["graphbolt_replica_lag_generations"]; lag != 0 {
		t.Fatalf("graphbolt_replica_lag_generations = %v after drain, want 0", lag)
	}
	if f2.Lag() != 0 {
		t.Fatalf("Lag() = %d after drain, want 0", f2.Lag())
	}

	// The leader's query API answers over the same mux the stream uses.
	resp, err := ts.Client().Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/snapshot: status %d", resp.StatusCode)
	}
	var meta struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if want := uint64(nBatches) + 1; meta.Generation != want {
		t.Fatalf("/v1/snapshot generation %d, want %d", meta.Generation, want)
	}
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// errTorn is the fault injected into flaky stream connections.
var errTorn = errors.New("connection torn mid-frame")

// tornWriter cuts a streaming response after a byte budget, mid-frame,
// via a faultio.Writer. It preserves http.Flusher — a wrapper that
// swallowed Flush would serialize the whole stream into one buffered
// response and hide the tear.
type tornWriter struct {
	http.ResponseWriter
	fw *faultio.Writer
}

func (t *tornWriter) Write(p []byte) (int, error) { return t.fw.Write(p) }
func (t *tornWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// flakyHandler wraps the replication stream with scripted faults: every
// 4th connection is refused outright (transient leader outage), every
// other connection is torn mid-frame after a byte budget that grows
// with the connection count — so the tear lands on a different frame
// each time, yet total throughput grows without bound and the follower
// is guaranteed to converge.
type flakyHandler struct {
	inner http.Handler
	mu    sync.Mutex
	conns int
}

func (fh *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fh.mu.Lock()
	fh.conns++
	n := fh.conns
	fh.mu.Unlock()
	if n%4 == 2 {
		http.Error(w, "leader briefly down", http.StatusServiceUnavailable)
		return
	}
	fw := faultio.NewWriter(w).FailAfter(int64(64+128*n), errTorn)
	fh.inner.ServeHTTP(&tornWriter{ResponseWriter: w, fw: fw}, r)
}

// TestReplicaChaosStream replays the whole stream through a leader
// whose replication endpoint tears connections mid-frame and refuses
// every 4th connect. The follower must converge anyway — resuming by
// sequence number across every fault, applying each record exactly once
// — and end bit-for-bit caught up with the leader.
func TestReplicaChaosStream(t *testing.T) {
	nBatches := 40
	if testing.Short() {
		nBatches = 16
	}
	strm := replicaStream(t, nBatches)
	engOpts := graphbolt.Options{MaxIterations: 4, Retain: 8}

	leaderEng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(), engOpts)
	if err != nil {
		t.Fatal(err)
	}
	rlog := graphbolt.NewReplicationLog(graphbolt.ReplicationLogOptions{
		Heartbeat: 2 * time.Millisecond,
		Logger:    quietLogger(),
	})
	defer rlog.Close()
	d, err := graphbolt.OpenDurable(leaderEng, t.TempDir(), graphbolt.DurableOptions{OnRecord: rlog.Append})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	fh := &flakyHandler{inner: rlog.Handler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	feng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(), engOpts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	f, err := graphbolt.NewFollower(feng, nil, ts.URL, graphbolt.FollowerOptions{
		Client:  ts.Client(),
		Metrics: reg,
		Logger:  quietLogger(),
		Backoff: backoff.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.Start(ctx)
	defer f.Close(ctx)

	// Feed the leader while the follower fights the flaky stream.
	for i, b := range strm.Batches {
		if _, err := d.ApplyBatch(b); err != nil {
			t.Fatalf("leader batch %d: %v", i+1, err)
		}
	}
	waitApplied(t, f, uint64(nBatches))

	if f.Resumes() == 0 {
		t.Fatal("stream was never interrupted; the chaos handler is not wired")
	}
	if got := f.Records(); got != uint64(nBatches) {
		t.Fatalf("follower applied %d records, want %d (each exactly once, across %d resumes)",
			got, nBatches, f.Resumes())
	}
	if got, want := f.AppliedSeq(), d.Seq(); got != want {
		t.Fatalf("follower at seq %d, leader at %d", got, want)
	}
	compareGenerations(t, leaderEng, f)
	snap := reg.Snapshot()
	if lag := snap.Gauges["graphbolt_replica_lag_generations"]; lag != 0 {
		t.Fatalf("graphbolt_replica_lag_generations = %v after drain, want 0", lag)
	}
	if resumes := snap.Counters["graphbolt_replica_resumes_total"]; resumes == 0 {
		t.Fatal("graphbolt_replica_resumes_total = 0, want > 0")
	}
}
