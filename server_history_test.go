package graphbolt_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	graphbolt "repro"
)

// historyServer builds a PageRank server retaining `retain` generations
// with a query cache, streams `batches` one-edge batches, and returns
// it with its metrics registry.
func historyServer(t *testing.T, retain, batches int, cacheBytes int64) (*graphbolt.Server[float64, float64], *graphbolt.MetricsRegistry) {
	t.Helper()
	reg := graphbolt.NewMetricsRegistry()
	g, err := graphbolt.BuildGraph(5, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(),
		graphbolt.Options{Retain: retain, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{
		// One generation per submitted batch, so the test can address
		// them deterministically.
		DisableCoalescing: true,
		QueryCacheBytes:   cacheBytes,
		Metrics:           reg,
	})
	ctx := context.Background()
	for i := 0; i < batches; i++ {
		b := graphbolt.Batch{Add: []graphbolt.Edge{
			{From: graphbolt.VertexID(i % 5), To: graphbolt.VertexID((i + 2) % 5), Weight: 1},
		}}
		if _, err := srv.SubmitWait(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { srv.Close(context.Background()) })
	return srv, reg
}

func TestServerSnapshotAtAndDiff(t *testing.T) {
	srv, _ := historyServer(t, 4, 6, 0) // generations 1..7, retaining 4..7
	oldest, newest := srv.RetainedGenerations()
	if oldest != 4 || newest != 7 {
		t.Fatalf("retained window [%d, %d], want [4, 7]", oldest, newest)
	}
	for gen := oldest; gen <= newest; gen++ {
		s, err := srv.SnapshotAt(gen)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", gen, err)
		}
		if s.Generation != gen {
			t.Fatalf("SnapshotAt(%d).Generation = %d", gen, s.Generation)
		}
	}
	if _, err := srv.SnapshotAt(2); !errors.Is(err, graphbolt.ErrGenerationNotRetained) {
		t.Fatalf("SnapshotAt(evicted) = %v, want ErrGenerationNotRetained", err)
	}
	d, err := srv.Diff(oldest, newest)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := srv.SnapshotAt(oldest)
	b, _ := srv.SnapshotAt(newest)
	if want := b.Graph.NumEdges() - a.Graph.NumEdges(); d.EdgeDelta != want {
		t.Fatalf("EdgeDelta = %d, want %d", d.EdgeDelta, want)
	}
	if len(d.Changed) == 0 {
		t.Fatal("three added edges changed no PageRank values")
	}
	if _, err := srv.Diff(1, newest); !errors.Is(err, graphbolt.ErrGenerationNotRetained) {
		t.Fatalf("Diff(evicted, newest) = %v, want ErrGenerationNotRetained", err)
	}
}

func TestServerQueryCache(t *testing.T) {
	srv, reg := historyServer(t, 8, 3, 1<<20)
	c := srv.Cache()
	if c == nil {
		t.Fatal("Cache() = nil with QueryCacheBytes set")
	}
	snap := srv.Snapshot()
	first := graphbolt.TopK(c, snap, 3)
	second := graphbolt.TopK(c, snap, 3) // hit
	uncached := graphbolt.TopK(nil, snap, 3)
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("TopK sizes %d, %d, want 3", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] || first[i] != uncached[i] {
			t.Fatalf("TopK[%d]: fill %v, hit %v, uncached %v", i, first[i], second[i], uncached[i])
		}
	}
	if v, ok := graphbolt.VertexValueAt(c, snap, 1); !ok || v != snap.Values[1] {
		t.Fatalf("VertexValueAt = %v, %v; want %v, true", v, ok, snap.Values[1])
	}
	if h := graphbolt.DegreeHistogram(c, snap); h == nil || h.Counts == nil {
		t.Fatal("DegreeHistogram returned nothing")
	}
	if h := graphbolt.ValueHistogram(c, snap, 4); h == nil || len(h.Counts) != 4 {
		t.Fatal("ValueHistogram returned wrong shape")
	}
	m := reg.Snapshot()
	if m.Counters["graphbolt_qcache_hits_total"] < 1 {
		t.Fatalf("hits = %d, want >= 1", m.Counters["graphbolt_qcache_hits_total"])
	}
	if m.Counters["graphbolt_qcache_misses_total"] < 4 {
		t.Fatalf("misses = %d, want >= 4", m.Counters["graphbolt_qcache_misses_total"])
	}
	// The hit/miss series must be visible on the exposition endpoint.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"graphbolt_qcache_hits_total", "graphbolt_qcache_misses_total", "graphbolt_qcache_bytes"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}

// TestServerCacheFollowsRetention proves cache eviction tracks the
// history ring: entries for generations SnapshotAt can no longer serve
// are dropped by the apply loop's DropBelow hook.
func TestServerCacheFollowsRetention(t *testing.T) {
	srv, _ := historyServer(t, 2, 0, 1<<20)
	c := srv.Cache()
	gen := srv.Generation()
	graphbolt.TopK(c, srv.Snapshot(), 2)
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	ctx := context.Background()
	// Two more generations push gen 1 out of the depth-2 ring; its
	// cached entry must go with it.
	for i := 0; i < 2; i++ {
		b := graphbolt.Batch{Add: []graphbolt.Edge{{From: 3, To: 4, Weight: 1}}}
		if _, err := srv.SubmitWait(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.SnapshotAt(gen); !errors.Is(err, graphbolt.ErrGenerationNotRetained) {
		t.Fatalf("generation %d should be evicted, got %v", gen, err)
	}
	if c.Len() != 0 {
		t.Fatalf("cache still holds %d entries for evicted generations", c.Len())
	}
}

func TestServerNoCacheByDefault(t *testing.T) {
	srv, _ := historyServer(t, 1, 0, 0)
	if srv.Cache() != nil {
		t.Fatal("Cache() != nil with QueryCacheBytes 0")
	}
	// The nil cache is a valid argument everywhere.
	if got := graphbolt.TopK(srv.Cache(), srv.Snapshot(), 2); len(got) != 2 {
		t.Fatalf("TopK over nil cache returned %d results", len(got))
	}
}
