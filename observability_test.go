package graphbolt_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	graphbolt "repro"
)

// TestFacadeMetrics drives the observability facade the way an
// importing application would: enable process-wide metrics, run an
// engine, snapshot, and scrape the HTTP handler.
func TestFacadeMetrics(t *testing.T) {
	reg := graphbolt.EnableMetrics()
	defer graphbolt.DisableMetrics()
	if reg == nil {
		t.Fatal("EnableMetrics returned nil")
	}

	g, err := graphbolt.BuildGraph(3, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, err := eng.ApplyBatch(graphbolt.Batch{Add: []graphbolt.Edge{{From: 0, To: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}

	snap := graphbolt.Metrics()
	if snap.Counters["graphbolt_engine_runs_total"] < 1 {
		t.Errorf("runs_total = %d, want >= 1", snap.Counters["graphbolt_engine_runs_total"])
	}
	if snap.Counters["graphbolt_engine_batches_total"] < 1 {
		t.Errorf("batches_total = %d, want >= 1", snap.Counters["graphbolt_engine_batches_total"])
	}
	// Pre-registered series must exist even though no WAL was opened.
	if _, ok := snap.Histograms["graphbolt_wal_fsync_seconds"]; !ok {
		t.Error("wal fsync histogram not pre-registered by EnableMetrics")
	}
	if _, ok := snap.Histograms["graphbolt_checkpoint_seconds"]; !ok {
		t.Error("checkpoint histogram not pre-registered by EnableMetrics")
	}

	srv := httptest.NewServer(graphbolt.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"graphbolt_engine_runs_total",
		"graphbolt_engine_refine_edge_computations_total",
		"graphbolt_engine_hybrid_edge_computations_total",
		"graphbolt_engine_tracked_snapshots",
		"graphbolt_engine_tracked_snapshot_bytes",
		"graphbolt_wal_fsync_seconds_bucket",
		"graphbolt_checkpoint_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
