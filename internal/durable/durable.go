// Package durable makes a core.Engine crash-safe. Every mutation batch
// is journaled to a write-ahead log before it touches in-memory state,
// and the engine state is periodically checkpointed; after a crash,
// Open restores the latest checkpoint and replays the WAL suffix, so
// the recovered engine is batch-for-batch identical to one that never
// crashed.
//
// Recovery protocol:
//
//  1. Open the WAL (wal.Open truncates any torn or corrupt tail and
//     yields the longest valid record prefix).
//  2. If a checkpoint exists, load it: a small CRC-protected header
//     carries the sequence number S of the last batch the checkpoint
//     covers, followed by the core engine snapshot (itself magic-,
//     version- and CRC-framed).
//  3. If no checkpoint exists, run the initial computation from the
//     base graph, exactly as the original process did before its first
//     batch.
//  4. Replay WAL records with sequence number > S in order. Records
//     with seq ≤ S are skipped — they are leftovers from a crash that
//     hit between writing a checkpoint and truncating the log, and
//     their effects are already inside the checkpoint.
//
// Checkpoints are written atomically (temp file, fsync, rename, fsync
// of the directory) and only then is the WAL truncated, so at every
// instant the disk holds either the old checkpoint plus a complete log
// suffix or the new checkpoint plus a (possibly redundant) log — never
// a state that loses an acknowledged batch.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/wal"
)

const (
	walFile  = "graph.wal"
	snapFile = "checkpoint.snap"
)

// The checkpoint file is framed by the wal package's checkpoint header
// (magic, covered sequence number, CRC32C — see wal.CheckpointMagic);
// the core snapshot that follows carries its own framing. Sharing the
// codec with wal is what lets the replication layer ship the file to
// followers verbatim and verify it with the same reader.

// Options configures a durable engine.
type Options struct {
	// CheckpointEvery is the number of applied batches between automatic
	// checkpoints. 0 disables automatic checkpoints (the WAL then grows
	// until Checkpoint is called explicitly).
	CheckpointEvery int
	// WAL configures the journal's sync policy.
	WAL wal.Options
	// Metrics, when non-nil, receives checkpoint/recovery instrumentation
	// and is propagated to the journal unless WAL.Metrics is already set.
	// Nil means instrumentation is off.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives "recovery" and "checkpoint" phase
	// spans.
	Tracer *obs.Tracer
	// Flight, when non-nil, receives journaled/journal-failed lifecycle
	// events (with append latency, stamped with the trace the serve loop
	// marked active) and is propagated to the WAL unless WAL.Flight is
	// already set, so fsync events land in the same ring.
	Flight *flight.Recorder
	// OnRecord, when non-nil, observes every record that is both
	// journaled and applied: once per record replayed from the local WAL
	// during Open, then once per ApplyBatch/ApplyRecord. Records that
	// were rolled back (Unappend after a failed apply) or skipped at
	// recovery because the checkpoint already covers them are never
	// reported — the sequence a subscriber sees is exactly the batches
	// inside the engine's published state beyond the checkpoint. The
	// replication log (internal/replica) subscribes here to ship the
	// journal to followers. Called synchronously on the write path; keep
	// it fast.
	OnRecord func(rec wal.Record)
}

// ErrOutOfOrder reports an ApplyRecord whose sequence number is not
// exactly one past the last applied batch — a gap would silently lose a
// batch and a smaller seq would double-apply one, so both are refused.
var ErrOutOfOrder = errors.New("durable: record out of order")

// RecoveryInfo describes how Open reconstructed the engine state.
type RecoveryInfo struct {
	// FromSnapshot reports that a checkpoint was loaded (vs. an initial
	// run from the base graph).
	FromSnapshot bool
	// SnapshotSeq is the sequence number the loaded checkpoint covers.
	SnapshotSeq uint64
	// Replayed is the number of WAL records applied on top.
	Replayed int
	// Skipped is the number of WAL records ignored because the
	// checkpoint already covered them (crash between checkpoint and log
	// truncation).
	Skipped int
	// WAL reports what the log scan found (torn-tail truncation etc.).
	WAL wal.RecoveryInfo
}

// Engine wraps a core.Engine with journaling and checkpointing. Like
// the core engine it is single-writer, multi-reader: ApplyBatch,
// Checkpoint, Seq and Close must be serialized (the serve layer's apply
// loop does this), while Values, Snapshot and Graph read the atomically
// published result snapshot and are safe from any goroutine.
type Engine[V, A any] struct {
	eng  *core.Engine[V, A]
	w    *wal.WAL
	dir  string
	opts Options

	seq     uint64 // sequence number of the last applied batch
	snapSeq uint64 // sequence number covered by the on-disk checkpoint
	since   int    // batches applied since that checkpoint
	info    RecoveryInfo
	met     durableMetrics

	// ckptSeq mirrors snapSeq for concurrent readers (CheckpointSeq);
	// nil until a checkpoint exists. Only the single writer stores.
	ckptSeq atomic.Pointer[uint64]

	// ailment is the storage fault keeping the engine from accepting
	// writes (journal damage, failed checkpoint). While set, ApplyBatch
	// fails fast; Recover repairs and clears it. In-memory state stays
	// valid throughout — reads keep working.
	ailment error
	closed  bool
}

// Open wraps eng with durability backed by dir, recovering any state a
// previous process left there. eng must be freshly constructed — same
// program, options and base graph as the original run — and must not
// have Run or ApplyBatch called on it yet; Open itself performs the
// initial computation (or restores it from a checkpoint) and replays
// the journal.
//
// A corrupt or version-incompatible checkpoint is a hard error
// (errors.Is core.ErrSnapshotCorrupt / core.ErrSnapshotVersion): the
// WAL was truncated when that checkpoint was written, so the lost
// prefix cannot be reconstructed from dir alone.
func Open[V, A any](eng *core.Engine[V, A], dir string, opts Options) (*Engine[V, A], error) {
	if eng == nil {
		return nil, fmt.Errorf("durable: nil engine")
	}
	if eng.Values() != nil {
		return nil, fmt.Errorf("durable: engine has already run; Open needs a fresh engine")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if opts.WAL.Metrics == nil {
		opts.WAL.Metrics = opts.Metrics
	}
	if opts.WAL.Flight == nil {
		opts.WAL.Flight = opts.Flight
	}
	w, err := wal.Open(filepath.Join(dir, walFile), opts.WAL)
	if err != nil {
		return nil, err
	}
	d := &Engine[V, A]{eng: eng, w: w, dir: dir, opts: opts, met: newDurableMetrics(opts.Metrics)}
	sp := opts.Tracer.StartPhase("recovery")
	if err := d.recover(); err != nil {
		w.Close()
		return nil, err
	}
	sp.End()
	d.met.recoveries.Inc()
	d.met.replayedRecords.Add(int64(d.info.Replayed))
	d.met.skippedRecords.Add(int64(d.info.Skipped))
	return d, nil
}

func (d *Engine[V, A]) recover() error {
	d.info.WAL = d.w.Recovery()
	snapSeq, found, err := d.loadSnapshot()
	if err != nil {
		return err
	}
	if found {
		d.info.FromSnapshot = true
		d.info.SnapshotSeq = snapSeq
		d.seq, d.snapSeq = snapSeq, snapSeq
		d.noteCheckpoint(snapSeq)
	} else {
		// No checkpoint: mirror the original process, which ran the
		// initial computation before streaming its first batch.
		d.eng.Run()
	}
	for _, rec := range d.w.Recovered() {
		if rec.Seq <= d.snapSeq {
			d.info.Skipped++
			continue
		}
		if _, err := d.eng.ApplyBatch(rec.Batch); err != nil {
			return fmt.Errorf("durable: replay seq %d: %w", rec.Seq, err)
		}
		d.seq = rec.Seq
		d.since++
		d.info.Replayed++
		if d.opts.OnRecord != nil {
			d.opts.OnRecord(rec)
		}
	}
	return nil
}

// loadSnapshot restores the checkpoint into the engine if one exists.
func (d *Engine[V, A]) loadSnapshot() (seq uint64, found bool, err error) {
	f, err := os.Open(filepath.Join(d.dir, snapFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()
	snapSeq, err := wal.ReadCheckpointHeader(f)
	if err != nil {
		return 0, false, fmt.Errorf("durable: checkpoint header: %w: %v", core.ErrSnapshotCorrupt, err)
	}
	if err := d.eng.ReadSnapshot(f); err != nil {
		return 0, false, err
	}
	return snapSeq, true, nil
}

// Recovery reports how Open reconstructed the state.
func (d *Engine[V, A]) Recovery() RecoveryInfo { return d.info }

// Seq returns the sequence number of the last applied batch (0 before
// any batch).
func (d *Engine[V, A]) Seq() uint64 { return d.seq }

// Core exposes the wrapped engine for reads (Values, Graph, Level,
// TotalStats). Mutating it directly bypasses the journal.
func (d *Engine[V, A]) Core() *core.Engine[V, A] { return d.eng }

// Values returns the vertex values of the engine's published result
// snapshot (immutable; shared by every reader of that generation).
func (d *Engine[V, A]) Values() []V { return d.eng.Values() }

// Snapshot returns the engine's most recently published result
// snapshot — the lock-free read path; safe from any goroutine while
// batches are applied.
func (d *Engine[V, A]) Snapshot() *core.ResultSnapshot[V] { return d.eng.Snapshot() }

// Graph returns the current graph snapshot.
func (d *Engine[V, A]) Graph() *graph.Graph { return d.eng.Graph() }

// ApplyBatch journals b, applies it to the wrapped engine, and
// checkpoints if the configured interval has elapsed. The batch is
// durable (per the WAL sync policy) before any in-memory state changes.
// If the in-memory apply fails — malformed batch, panicking program —
// the journal entry is rolled back so recovery never replays a batch
// the engine could not process, and the engine itself must be discarded
// and reopened (Open rebuilds it from the checkpoint and journal).
// While an ailment is set (see Ailment), ApplyBatch fails fast without
// touching the journal or the engine; one special case is a checkpoint
// that fails after its batch applied cleanly — the batch is journaled
// and applied, so ApplyBatch reports success and the checkpoint fault
// surfaces through Ailment instead (a retry would otherwise apply the
// batch twice).
func (d *Engine[V, A]) ApplyBatch(b graph.Batch) (core.Stats, error) {
	return d.applySeq(d.seq+1, b)
}

// ApplyRecord replays a record produced elsewhere — the follower half
// of WAL shipping (internal/replica): the leader's journal record is
// journaled locally and applied under the leader's sequence number, so
// the follower's log is byte-compatible with the leader's and its own
// recovery resumes at exactly the right position. The record's sequence
// number must be exactly Seq()+1: a gap means records were lost in
// transit (refuse, reconnect, and re-fetch), a stale seq means the
// record is already applied (refuse so the caller's dedup logic stays
// honest). Both refusals wrap ErrOutOfOrder and leave the engine
// untouched.
func (d *Engine[V, A]) ApplyRecord(rec wal.Record) error {
	if rec.Seq != d.seq+1 {
		return fmt.Errorf("%w: record seq %d, next expected %d", ErrOutOfOrder, rec.Seq, d.seq+1)
	}
	_, err := d.applySeq(rec.Seq, rec.Batch)
	return err
}

// applySeq is the shared journal-before-mutate path behind ApplyBatch
// (seq assigned locally) and ApplyRecord (seq assigned by a leader).
func (d *Engine[V, A]) applySeq(seq uint64, b graph.Batch) (core.Stats, error) {
	if d.ailment != nil {
		return core.Stats{}, fmt.Errorf("durable: journal degraded: %w", d.ailment)
	}
	if err := b.Validate(); err != nil {
		return core.Stats{}, fmt.Errorf("durable: %w", err)
	}
	jStart := time.Now()
	if err := d.w.Append(seq, b); err != nil {
		d.opts.Flight.Journal(seq, time.Since(jStart), true)
		d.ailment = err
		return core.Stats{}, err
	}
	d.opts.Flight.Journal(seq, time.Since(jStart), false)
	st, err := d.eng.ApplyBatch(b)
	if err != nil {
		if uerr := d.w.Unappend(); uerr != nil {
			// Journal now holds a record the engine rejected; writes stay
			// off until Recover truncates it.
			d.ailment = uerr
			return core.Stats{}, errors.Join(err, uerr)
		}
		return core.Stats{}, err
	}
	d.seq = seq
	d.since++
	if d.opts.OnRecord != nil {
		d.opts.OnRecord(wal.Record{Seq: seq, Batch: b})
	}
	if d.opts.CheckpointEvery > 0 && d.since >= d.opts.CheckpointEvery {
		// A checkpoint failure here surfaces through Ailment, not the
		// return value: the batch is journaled and applied, and an error
		// would make the caller retry — applying it twice.
		_ = d.Checkpoint()
	}
	return st, nil
}

// Ailment returns the storage fault currently blocking writes, nil when
// the engine is fully operational. Reads (Values, Snapshot, Graph) are
// unaffected by an ailment.
func (d *Engine[V, A]) Ailment() error { return d.ailment }

// Recover attempts to clear the current ailment: it repairs the journal
// (truncating any inconsistent tail back to the last acknowledged
// record) and retries an overdue checkpoint. On success the ailment is
// cleared and ApplyBatch accepts writes again; on failure the ailment
// reflects the latest error and Recover can be retried. Must be
// serialized with ApplyBatch like every other write-side call.
func (d *Engine[V, A]) Recover() error {
	if d.ailment == nil {
		return nil
	}
	if err := d.w.Repair(); err != nil {
		d.ailment = err
		return err
	}
	d.ailment = nil
	if d.opts.CheckpointEvery > 0 && d.since >= d.opts.CheckpointEvery {
		if err := d.Checkpoint(); err != nil {
			return err // Checkpoint re-set the ailment
		}
	}
	return nil
}

// Checkpoint writes the engine state to disk atomically and truncates
// the journal. On return, recovery no longer needs any WAL record ≤ the
// current sequence number.
func (d *Engine[V, A]) Checkpoint() error {
	sp := d.opts.Tracer.StartPhase("checkpoint")
	var start time.Time
	if d.met.checkpointDuration != nil {
		start = time.Now()
	}
	if err := d.writeCheckpoint(); err != nil {
		d.ailment = err
		return err
	}
	// The checkpoint is durable; the log records it covers are now
	// redundant. A crash before this Reset is safe: replay skips
	// records with seq ≤ the checkpoint's sequence number.
	d.snapSeq = d.seq
	d.since = 0
	d.noteCheckpoint(d.snapSeq)
	if err := d.w.Reset(); err != nil {
		d.ailment = err
		return err
	}
	d.ailment = nil
	if d.met.checkpointDuration != nil {
		d.met.checkpointDuration.Observe(time.Since(start).Seconds())
	}
	d.met.checkpoints.Inc()
	sp.End()
	return nil
}

// writeCheckpoint performs the atomic snapshot write (temp file, fsync,
// rename, directory fsync) without touching the WAL — split out so
// tests can exercise a crash between the two halves of Checkpoint.
func (d *Engine[V, A]) writeCheckpoint() error {
	tmpPath := filepath.Join(d.dir, snapFile+".tmp")
	f, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("durable: checkpoint: %w", err)
	}
	hdr := wal.EncodeCheckpointHeader(d.seq)
	err = func() error {
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		if err := d.eng.WriteSnapshot(f); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(d.dir, snapFile)); err != nil {
		return fmt.Errorf("durable: checkpoint rename: %w", err)
	}
	return syncDir(d.dir)
}

// syncDir flushes directory metadata so a rename survives power loss.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	defer df.Close()
	if err := df.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	return nil
}

// Close syncs and closes the journal. It does not checkpoint; call
// Checkpoint first to make the next Open cheap. Close is idempotent:
// a second call is a no-op returning nil, so shutdown paths can close
// defensively without tracking who closed first.
func (d *Engine[V, A]) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	return d.w.Close()
}
