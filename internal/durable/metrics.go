package durable

import "repro/internal/obs"

// durableMetrics holds the checkpoint/recovery metric handles; the zero
// value (nil handles) is the instrumentation-off state.
type durableMetrics struct {
	checkpoints        *obs.Counter
	checkpointDuration *obs.Histogram
	replayedRecords    *obs.Counter
	skippedRecords     *obs.Counter
	recoveries         *obs.Counter
}

func newDurableMetrics(r *obs.Registry) durableMetrics {
	if r == nil {
		return durableMetrics{}
	}
	return durableMetrics{
		checkpoints: r.Counter("graphbolt_checkpoints_total",
			"Engine checkpoints written (snapshot + journal truncation)."),
		checkpointDuration: r.Histogram("graphbolt_checkpoint_seconds",
			"Checkpoint duration: atomic snapshot write plus journal reset.",
			obs.DefTimeBuckets),
		replayedRecords: r.Counter("graphbolt_recovery_replayed_records_total",
			"Journal records re-applied on top of the checkpoint at open."),
		skippedRecords: r.Counter("graphbolt_recovery_skipped_records_total",
			"Journal records ignored at open because the checkpoint already covered them."),
		recoveries: r.Counter("graphbolt_recoveries_total",
			"Durable engines opened (each performs the recovery protocol)."),
	}
}

// RegisterMetrics pre-creates the durable-engine metric set in r so the
// exposition endpoint shows every series (at zero) before an engine is
// opened. Idempotent.
func RegisterMetrics(r *obs.Registry) {
	newDurableMetrics(r)
}
