package durable

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/wal"
)

func valuesMatch(t *testing.T, got, want []float64, eps float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for v := range got {
		// a == b first: covers the +Inf distances of unreachable SSSP vertices.
		if got[v] != want[v] && math.Abs(got[v]-want[v]) > eps {
			t.Fatalf("%s: vertex %d: got %v want %v", label, v, got[v], want[v])
		}
	}
}

// checkRecoveryEquivalence is the property test at the heart of the
// durability design: for EVERY prefix length k, a run that is killed
// after batch k, recovered from disk, and then fed the rest of the
// stream must end with the same values as a run that never crashed.
func checkRecoveryEquivalence(t *testing.T, batches []graph.Batch, newEngine func() *core.Engine[float64, float64], eps float64) {
	t.Helper()
	want := newEngine()
	want.Run()
	for _, b := range batches {
		if _, err := want.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{CheckpointEvery: 3} // some kill points land between checkpoints, some right after
	for k := range batches {
		dir := t.TempDir()
		d, err := Open(newEngine(), dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:k+1] {
			if _, err := d.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		// "Crash": abandon the engine. SyncEveryBatch (the default) has
		// already pushed every acknowledged batch to disk.
		d.Close()

		recovered, err := Open(newEngine(), dir, opts)
		if err != nil {
			t.Fatalf("kill after batch %d: reopen: %v", k, err)
		}
		if got := recovered.Seq(); got != uint64(k+1) {
			t.Fatalf("kill after batch %d: recovered to seq %d", k, got)
		}
		for _, b := range batches[k+1:] {
			if _, err := recovered.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		valuesMatch(t, recovered.Values(), want.Values(), eps, "recovery equivalence")
		recovered.Close()
	}
}

func TestRecoveryEquivalencePageRank(t *testing.T) {
	edges := gen.RMAT(31, 120, 900, gen.WeightUniform)
	s, err := stream.FromEdges(120, edges, stream.Config{BatchSize: 60, DeleteFraction: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *core.Engine[float64, float64] {
		e, err := core.NewEngine[float64, float64](s.Base, algorithms.NewPageRank(), core.Options{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	checkRecoveryEquivalence(t, s.Batches, newEngine, 1e-7)
}

func TestRecoveryEquivalenceSSSP(t *testing.T) {
	edges := gen.RMAT(33, 120, 900, gen.WeightSmallInt)
	s, err := stream.FromEdges(120, edges, stream.Config{BatchSize: 60, DeleteFraction: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *core.Engine[float64, float64] {
		e, err := core.NewEngine[float64, float64](s.Base, algorithms.NewSSSP(0), core.Options{MaxIterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	checkRecoveryEquivalence(t, s.Batches, newEngine, 1e-9)
}

func testStream(t *testing.T) (*graph.Graph, []graph.Batch) {
	t.Helper()
	edges := gen.RMAT(35, 100, 700, gen.WeightUniform)
	s, err := stream.FromEdges(100, edges, stream.Config{BatchSize: 50, DeleteFraction: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Batches) < 5 {
		t.Fatalf("stream too short: %d batches", len(s.Batches))
	}
	return s.Base, s.Batches
}

func prEngine(t *testing.T, base *graph.Graph) *core.Engine[float64, float64] {
	t.Helper()
	e, err := core.NewEngine[float64, float64](base, algorithms.NewPageRank(), core.Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCrashBetweenCheckpointAndTruncate exercises the one crash window
// the sequence numbers exist for: the checkpoint has been renamed into
// place but the WAL has not been truncated yet, so every journal record
// is a duplicate of state already inside the checkpoint.
func TestCrashBetweenCheckpointAndTruncate(t *testing.T) {
	base, batches := testStream(t)
	dir := t.TempDir()
	d, err := Open(prEngine(t, base), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:4] {
		if _, err := d.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	before := append([]float64(nil), d.Values()...)
	// First half of Checkpoint only: snapshot is durable, WAL untouched.
	if err := d.writeCheckpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	recovered, err := Open(prEngine(t, base), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	info := recovered.Recovery()
	if !info.FromSnapshot || info.SnapshotSeq != 4 {
		t.Fatalf("recovery info %+v, want snapshot at seq 4", info)
	}
	if info.Skipped != 4 || info.Replayed != 0 {
		t.Fatalf("recovery info %+v, want all 4 journal records skipped as pre-checkpoint", info)
	}
	valuesMatch(t, recovered.Values(), before, 0, "post-checkpoint recovery")
	// The recovered engine keeps streaming normally.
	if _, err := recovered.ApplyBatch(batches[4]); err != nil {
		t.Fatal(err)
	}
	if recovered.Seq() != 5 {
		t.Fatalf("seq %d after continuing, want 5", recovered.Seq())
	}
}

func TestCorruptCheckpointTypedError(t *testing.T) {
	base, batches := testStream(t)
	dir := t.TempDir()
	d, err := Open(prEngine(t, base), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:2] {
		if _, err := d.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	path := filepath.Join(dir, snapFile)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(t *testing.T, off int) {
		t.Helper()
		data := append([]byte(nil), pristine...)
		data[off] ^= 0x04
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(prEngine(t, base), dir, Options{})
		if !errors.Is(err, core.ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want errors.Is(..., core.ErrSnapshotCorrupt)", err)
		}
	}
	t.Run("bit flip in engine state", func(t *testing.T) { corrupt(t, wal.CheckpointHeaderSize+24) })
	t.Run("bit flip in seq header", func(t *testing.T) { corrupt(t, 10) })
}

// TestFailedApplyNotReplayed: a batch that journals fine but blows up
// the in-memory apply (buggy vertex function) must be rolled out of the
// WAL — otherwise every recovery would re-apply it and die the same way.
func TestFailedApplyNotReplayed(t *testing.T) {
	g := graph.MustBuild(50, gen.RMAT(5, 50, 300, gen.WeightUniform))
	newEngine := func() *core.Engine[float64, float64] {
		p := &panicProgram{inner: algorithms.NewPageRank(), bad: 50}
		e, err := core.NewEngine[float64, float64](g, p, core.Options{MaxIterations: 6})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	dir := t.TempDir()
	d, err := Open(newEngine(), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 0, To: 1, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Vertex 50 only exists once this batch lands, so Validate passes and
	// the journal write succeeds; the panic fires during the apply.
	poison := graph.Batch{Add: []graph.Edge{{From: 0, To: 50, Weight: 1}}}
	if _, err := d.ApplyBatch(poison); err == nil {
		t.Fatal("poison batch applied cleanly")
	}
	d.Close()

	// If the poison batch were still journaled, this Open would replay it
	// into the same panicking program and fail.
	recovered, err := Open(newEngine(), dir, Options{})
	if err != nil {
		t.Fatalf("reopen after failed apply: %v", err)
	}
	defer recovered.Close()
	if recovered.Seq() != 1 {
		t.Fatalf("recovered seq %d, want 1 (poison batch rolled back)", recovered.Seq())
	}
}

// panicProgram wraps PageRank with a Compute that panics on one vertex.
type panicProgram struct {
	inner core.Program[float64, float64]
	bad   core.VertexID
}

func (p *panicProgram) InitValue(v core.VertexID) float64 { return p.inner.InitValue(v) }
func (p *panicProgram) IdentityAgg() float64              { return p.inner.IdentityAgg() }
func (p *panicProgram) Propagate(agg *float64, src float64, u, v core.VertexID, w float64, d int) {
	p.inner.Propagate(agg, src, u, v, w, d)
}
func (p *panicProgram) Retract(agg *float64, src float64, u, v core.VertexID, w float64, d int) {
	p.inner.Retract(agg, src, u, v, w, d)
}
func (p *panicProgram) Compute(v core.VertexID, agg float64) float64 {
	if v == p.bad {
		panic("vertex function bug")
	}
	return p.inner.Compute(v, agg)
}
func (p *panicProgram) Changed(oldV, newV float64) bool { return p.inner.Changed(oldV, newV) }
func (p *panicProgram) CloneAgg(a float64) float64      { return a }
func (p *panicProgram) AggBytes(a float64) int          { return p.inner.AggBytes(a) }

func TestMalformedBatchNotJournaled(t *testing.T) {
	base, _ := testStream(t)
	d, err := Open(prEngine(t, base), t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	size := d.w.Size()
	_, err = d.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 0, To: 1, Weight: math.NaN()}}})
	if !errors.Is(err, graph.ErrInvalidEdge) {
		t.Fatalf("err = %v, want errors.Is(..., graph.ErrInvalidEdge)", err)
	}
	if d.w.Size() != size {
		t.Fatal("malformed batch reached the journal")
	}
	if d.Seq() != 0 {
		t.Fatalf("seq advanced to %d on a rejected batch", d.Seq())
	}
}

func TestAutoCheckpointTruncatesWAL(t *testing.T) {
	base, batches := testStream(t)
	d, err := Open(prEngine(t, base), t.TempDir(), Options{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, b := range batches[:3] {
		if _, err := d.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if d.snapSeq != 2 || d.since != 1 {
		t.Fatalf("snapSeq=%d since=%d after 3 batches with CheckpointEvery=2", d.snapSeq, d.since)
	}
	// Only batch 3 should still be journaled.
	walPath := filepath.Join(d.dir, walFile)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if d.w.Size() != fi.Size() {
		t.Fatalf("tracked WAL size %d vs on-disk %d", d.w.Size(), fi.Size())
	}
}

func TestOpenRejectsRanEngine(t *testing.T) {
	base, _ := testStream(t)
	e := prEngine(t, base)
	e.Run()
	if _, err := Open(e, t.TempDir(), Options{}); err == nil {
		t.Fatal("Open accepted an engine that already ran")
	}
}

// TestAilmentRecoverEquivalence drives the degraded-write protocol: a
// persistent fsync fault sets an ailment, writes fail fast while it
// lasts, Recover clears it once the fault lifts, and the final state —
// in memory and after a reopen from disk — matches a run that never saw
// the fault.
func TestAilmentRecoverEquivalence(t *testing.T) {
	base, batches := testStream(t)
	fsync := faultio.NewFsync()
	dir := t.TempDir()
	d, err := Open(prEngine(t, base), dir, Options{
		WAL: wal.Options{Hooks: wal.Hooks{BeforeSync: fsync.Check}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(batches[0]); err != nil {
		t.Fatal(err)
	}

	fsync.FailEveryKth(1, nil) // every fsync fails until disarmed
	if _, err := d.ApplyBatch(batches[1]); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("apply under fsync fault: %v", err)
	}
	if d.Ailment() == nil {
		t.Fatal("fsync fault left no ailment")
	}
	// Ailing engine fails fast without touching the journal.
	size := d.w.Size()
	if _, err := d.ApplyBatch(batches[1]); err == nil {
		t.Fatal("apply on ailing engine succeeded")
	}
	if d.w.Size() != size {
		t.Fatal("fail-fast apply reached the journal")
	}
	if d.Seq() != 1 {
		t.Fatalf("seq = %d after rejected batch, want 1", d.Seq())
	}
	// Reads keep working while writes are off.
	if d.Values() == nil || d.Snapshot() == nil {
		t.Fatal("reads unavailable while degraded")
	}
	// Recover under the persistent fault fails and keeps the ailment.
	if err := d.Recover(); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("Recover under persistent fault: %v", err)
	}
	if d.Ailment() == nil {
		t.Fatal("failed Recover cleared the ailment")
	}

	fsync.FailEveryKth(0, nil)
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if d.Ailment() != nil {
		t.Fatalf("ailment after successful Recover: %v", d.Ailment())
	}
	for _, b := range batches[1:] {
		if _, err := d.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if d.Seq() != uint64(len(batches)) {
		t.Fatalf("seq = %d, want %d", d.Seq(), len(batches))
	}

	want := prEngine(t, base)
	want.Run()
	for _, b := range batches {
		if _, err := want.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	valuesMatch(t, d.Values(), want.Values(), 1e-9, "degraded-episode equivalence")

	// The journal must also be clean: a reopen replays to the same state.
	d.Close()
	re, err := Open(prEngine(t, base), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Seq() != uint64(len(batches)) {
		t.Fatalf("reopened seq = %d, want %d", re.Seq(), len(batches))
	}
	valuesMatch(t, re.Values(), want.Values(), 1e-9, "reopen equivalence")
}

// TestCheckpointFailureReportedOutOfBand pins the no-double-apply rule:
// when the batch applies cleanly but the checkpoint that follows fails,
// ApplyBatch reports success (retrying would apply the batch twice) and
// the fault surfaces through Ailment.
func TestCheckpointFailureReportedOutOfBand(t *testing.T) {
	base, batches := testStream(t)
	fsync := faultio.NewFsync()
	d, err := Open(prEngine(t, base), t.TempDir(), Options{
		CheckpointEvery: 1,
		WAL:             wal.Options{Hooks: wal.Hooks{BeforeSync: fsync.Check}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Per batch: sync #1 is the append, sync #2 the post-checkpoint log
	// reset. Failing every 2nd sync hits exactly the checkpoint's reset.
	fsync.FailEveryKth(2, nil)
	if _, err := d.ApplyBatch(batches[0]); err != nil {
		t.Fatalf("apply with failing checkpoint returned %v, want nil (out-of-band)", err)
	}
	if d.Seq() != 1 {
		t.Fatalf("seq = %d, want 1 (batch applied)", d.Seq())
	}
	if d.Ailment() == nil {
		t.Fatal("checkpoint failure left no ailment")
	}
	if _, err := d.ApplyBatch(batches[1]); err == nil {
		t.Fatal("apply on ailing engine succeeded")
	}

	fsync.FailEveryKth(0, nil)
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(batches[1]); err != nil {
		t.Fatal(err)
	}
	if d.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", d.Seq())
	}
}

func TestCloseIdempotent(t *testing.T) {
	base, _ := testStream(t)
	d, err := Open(prEngine(t, base), t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}
