// Checkpoint export and import: the leader side opens its latest
// on-disk checkpoint for shipping to followers, and the follower side
// installs a shipped checkpoint as its new base state (re-seeding after
// the leader compacted the replication log past the follower's
// position). Both halves reuse the exact artifact Checkpoint writes —
// header framing from the wal package, core snapshot framing from the
// core package — so a checkpoint that re-seeds a follower is the same
// bytes that would recover the leader.

package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

// ErrNoCheckpoint reports that no checkpoint exists on disk yet — the
// engine has never completed a Checkpoint. The replication layer maps
// it to 404 on the checkpoint endpoint.
var ErrNoCheckpoint = errors.New("durable: no checkpoint on disk")

// ErrCheckpointStale reports an InstallCheckpoint whose covered
// sequence number does not advance past the engine's current position.
// Installing it would move the follower backwards (re-applying batches
// it already acknowledged), so it is refused; the caller should resume
// streaming from its current sequence instead.
var ErrCheckpointStale = errors.New("durable: checkpoint does not advance past the current sequence")

// CheckpointFile is an open, header-verified checkpoint ready to
// stream. Read yields the complete framed file from offset zero —
// header included — so the bytes a follower receives are exactly the
// bytes InstallCheckpoint expects. The file handle pins the inode: even
// if a newer checkpoint is renamed over the path while streaming, the
// reader keeps seeing one consistent checkpoint.
type CheckpointFile struct {
	f    *os.File
	seq  uint64
	size int64
}

// Seq returns the sequence number of the last batch the checkpoint
// covers.
func (c *CheckpointFile) Seq() uint64 { return c.seq }

// Size returns the total framed size in bytes (header plus snapshot).
func (c *CheckpointFile) Size() int64 { return c.size }

// Read streams the framed checkpoint from the start.
func (c *CheckpointFile) Read(p []byte) (int, error) { return c.f.Read(p) }

// Close releases the underlying file.
func (c *CheckpointFile) Close() error { return c.f.Close() }

// openCheckpointFile opens and header-verifies dir's checkpoint,
// rewound to offset zero. Because checkpoints are written with an
// atomic rename, the opened handle is always one complete checkpoint,
// never a torn mix of two.
func openCheckpointFile(dir string) (*CheckpointFile, error) {
	f, err := os.Open(filepath.Join(dir, snapFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("durable: open checkpoint: %w", err)
	}
	seq, err := wal.ReadCheckpointHeader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: open checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: open checkpoint: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: open checkpoint: %w", err)
	}
	return &CheckpointFile{f: f, seq: seq, size: st.Size()}, nil
}

// OpenCheckpoint opens the engine's latest on-disk checkpoint for
// reading (ErrNoCheckpoint if none has been written yet). Safe from any
// goroutine, concurrently with the writer checkpointing: the handle
// pins whichever complete checkpoint the atomic rename had published at
// open time.
func (d *Engine[V, A]) OpenCheckpoint() (*CheckpointFile, error) {
	return openCheckpointFile(d.dir)
}

// CheckpointSeq returns the sequence number covered by the latest
// on-disk checkpoint and whether one exists. Safe from any goroutine —
// the replication log's compaction responses call it from HTTP handlers
// to hint followers where to re-seed from.
func (d *Engine[V, A]) CheckpointSeq() (uint64, bool) {
	p := d.ckptSeq.Load()
	if p == nil {
		return 0, false
	}
	return *p, true
}

// noteCheckpoint records (race-safely) that a checkpoint covering seq
// is now on disk. Called by the single writer after recover, Checkpoint
// and InstallCheckpoint.
func (d *Engine[V, A]) noteCheckpoint(seq uint64) {
	s := seq
	d.ckptSeq.Store(&s)
}

// CheckpointDir exposes the checkpoint of a durable directory without
// holding the engine that owns it — the serving process mounts its
// checkpoint endpoint before (or without) keeping a handle to the
// typed engine, since the directory path is known first. Each
// OpenCheckpoint call re-opens the file, so it always serves the
// newest complete checkpoint.
type CheckpointDir string

// OpenCheckpoint opens the directory's latest checkpoint
// (ErrNoCheckpoint if none exists).
func (dir CheckpointDir) OpenCheckpoint() (*CheckpointFile, error) {
	return openCheckpointFile(string(dir))
}

// CheckpointSeq reports the sequence covered by the directory's latest
// checkpoint, false if none exists or it is unreadable.
func (dir CheckpointDir) CheckpointSeq() (uint64, bool) {
	cf, err := openCheckpointFile(string(dir))
	if err != nil {
		return 0, false
	}
	defer cf.Close()
	return cf.Seq(), true
}

// InstallCheckpoint re-seeds the engine from a checkpoint streamed from
// elsewhere — the follower half of checkpoint shipping. The stream must
// be a complete framed checkpoint as served by OpenCheckpoint. On
// success the engine's state is exactly the leader's at the returned
// sequence number, the checkpoint is durably on disk, and the local
// journal is truncated (its records are ≤ the new base and would be
// skipped at recovery anyway).
//
// Validation is strictly before commitment: the body is spooled to a
// temp file and fully CRC-verified (header and snapshot) before either
// the in-memory engine or the on-disk checkpoint is touched, so a torn
// or corrupt transfer leaves both exactly as they were — including the
// previous checkpoint, which stays valid for crash recovery. A
// checkpoint whose sequence does not exceed Seq() is refused with
// ErrCheckpointStale.
//
// Crash safety mirrors Checkpoint: a crash after the rename but before
// the journal truncation recovers from the new checkpoint and skips the
// now-covered journal records; a crash before the rename recovers from
// the old state and the re-seed simply runs again. Must be serialized
// with ApplyBatch like every write-side call.
func (d *Engine[V, A]) InstallCheckpoint(r io.Reader) (uint64, error) {
	if d.ailment != nil {
		return 0, fmt.Errorf("durable: journal degraded: %w", d.ailment)
	}
	tmpPath := filepath.Join(d.dir, snapFile+".reseed")
	seq, err := d.spoolCheckpoint(tmpPath, r)
	if err != nil {
		os.Remove(tmpPath)
		return 0, err
	}
	if err := os.Rename(tmpPath, filepath.Join(d.dir, snapFile)); err != nil {
		os.Remove(tmpPath)
		d.ailment = fmt.Errorf("durable: install checkpoint rename: %w", err)
		return 0, d.ailment
	}
	if err := syncDir(d.dir); err != nil {
		d.ailment = err
		return 0, err
	}
	d.seq, d.snapSeq = seq, seq
	d.since = 0
	d.noteCheckpoint(seq)
	if err := d.w.Reset(); err != nil {
		d.ailment = err
		return seq, err
	}
	return seq, nil
}

// spoolCheckpoint copies the stream to tmpPath, fsyncs it, and fully
// validates it — header seq strictly beyond the current position, core
// snapshot CRC-clean — loading the state into the engine as a side
// effect of the final validation step (core.ReadSnapshot verifies the
// whole frame before mutating anything).
func (d *Engine[V, A]) spoolCheckpoint(tmpPath string, r io.Reader) (uint64, error) {
	f, err := os.Create(tmpPath)
	if err != nil {
		return 0, fmt.Errorf("durable: install checkpoint: %w", err)
	}
	_, err = io.Copy(f, r)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("durable: install checkpoint: %w", err)
	}
	g, err := os.Open(tmpPath)
	if err != nil {
		return 0, fmt.Errorf("durable: install checkpoint: %w", err)
	}
	defer g.Close()
	seq, err := wal.ReadCheckpointHeader(g)
	if err != nil {
		return 0, fmt.Errorf("durable: install checkpoint: %w", err)
	}
	if seq <= d.seq {
		return 0, fmt.Errorf("%w: checkpoint seq %d, engine at %d", ErrCheckpointStale, seq, d.seq)
	}
	if err := d.eng.ReadSnapshot(g); err != nil {
		return 0, fmt.Errorf("durable: install checkpoint: %w", err)
	}
	return seq, nil
}
