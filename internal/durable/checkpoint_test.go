package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// TestOpenCheckpointShipsRecoverableState is the checkpoint-shipping
// round trip: the bytes OpenCheckpoint streams from a leader, fed to
// InstallCheckpoint on a fresh follower, must leave the follower at the
// leader's exact sequence, values and snapshot generation — and the
// installed checkpoint must survive the follower's own crash recovery.
func TestOpenCheckpointShipsRecoverableState(t *testing.T) {
	base, batches := testStream(t)

	leaderDir := t.TempDir()
	leader, err := Open(prEngine(t, base), leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if _, err := leader.OpenCheckpoint(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("OpenCheckpoint before any checkpoint: %v, want ErrNoCheckpoint", err)
	}
	if _, ok := leader.CheckpointSeq(); ok {
		t.Fatal("CheckpointSeq reports a checkpoint before any was written")
	}
	for _, b := range batches[:3] {
		if _, err := leader.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	cf, err := leader.OpenCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if cf.Seq() != 3 {
		t.Fatalf("checkpoint covers seq %d, want 3", cf.Seq())
	}
	if seq, ok := leader.CheckpointSeq(); !ok || seq != 3 {
		t.Fatalf("CheckpointSeq = %d, %v; want 3, true", seq, ok)
	}
	if seq, ok := CheckpointDir(leaderDir).CheckpointSeq(); !ok || seq != 3 {
		t.Fatalf("CheckpointDir.CheckpointSeq = %d, %v; want 3, true", seq, ok)
	}
	shipped, err := io.ReadAll(cf)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(leaderDir, "checkpoint.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shipped, onDisk) {
		t.Fatal("shipped checkpoint differs from the on-disk file")
	}
	if cf.Size() != int64(len(onDisk)) {
		t.Fatalf("Size() = %d, file is %d bytes", cf.Size(), len(onDisk))
	}

	followerDir := t.TempDir()
	follower, err := Open(prEngine(t, base), followerDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := follower.InstallCheckpoint(bytes.NewReader(shipped))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || follower.Seq() != 3 {
		t.Fatalf("installed seq %d, follower at %d; want 3", seq, follower.Seq())
	}
	valuesMatch(t, follower.Values(), leader.Values(), 1e-12, "install")
	if lg, fg := leader.Snapshot().Generation, follower.Snapshot().Generation; fg != lg {
		t.Fatalf("follower generation %d, leader %d — re-seed must resume the counter", fg, lg)
	}

	// The install must also be durable: stream more records, crash, and
	// recover from the installed checkpoint plus the local journal.
	for _, b := range batches[3:5] {
		if err := follower.ApplyRecord(wal.Record{Seq: follower.Seq() + 1, Batch: b}); err != nil {
			t.Fatal(err)
		}
		if _, err := leader.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	follower.Close()
	recovered, err := Open(prEngine(t, base), followerDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if !recovered.Recovery().FromSnapshot || recovered.Recovery().SnapshotSeq != 3 {
		t.Fatalf("recovery = %+v, want FromSnapshot at seq 3", recovered.Recovery())
	}
	if recovered.Seq() != leader.Seq() {
		t.Fatalf("recovered seq %d, leader at %d", recovered.Seq(), leader.Seq())
	}
	valuesMatch(t, recovered.Values(), leader.Values(), 1e-12, "recover after install")
}

// TestInstallCheckpointRefusesStale: a checkpoint that does not advance
// past the engine's position must be refused without touching state —
// installing it would silently re-apply acknowledged batches.
func TestInstallCheckpointRefusesStale(t *testing.T) {
	base, batches := testStream(t)
	dir := t.TempDir()
	d, err := Open(prEngine(t, base), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, b := range batches[:3] {
		if _, err := d.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cf, err := d.OpenCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := io.ReadAll(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}

	before := d.Snapshot()
	if _, err := d.InstallCheckpoint(bytes.NewReader(shipped)); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("installing own checkpoint = %v, want ErrCheckpointStale", err)
	}
	if d.Snapshot() != before {
		t.Fatal("refused install still republished a snapshot")
	}
	if d.Seq() != 3 {
		t.Fatalf("seq moved to %d on refused install", d.Seq())
	}
	if d.Ailment() != nil {
		t.Fatalf("stale install set an ailment: %v", d.Ailment())
	}
	if _, err := d.ApplyBatch(batches[3]); err != nil {
		t.Fatalf("ApplyBatch after refused install: %v", err)
	}
}

// TestInstallCheckpointRejectsCorruption: a torn or bit-flipped
// transfer must leave the engine, its journal, and the previous on-disk
// checkpoint untouched — validation strictly precedes commitment.
func TestInstallCheckpointRejectsCorruption(t *testing.T) {
	base, batches := testStream(t)
	leaderDir := t.TempDir()
	leader, err := Open(prEngine(t, base), leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for _, b := range batches[:4] {
		if _, err := leader.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cf, err := leader.OpenCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := io.ReadAll(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated body":     shipped[:len(shipped)-7],
		"header only":        shipped[:wal.CheckpointHeaderSize],
		"empty":              nil,
		"header bit flip":    flip(shipped, 9),
		"snapshot bit flip":  flip(shipped, wal.CheckpointHeaderSize+30),
		"trailer truncation": shipped[:len(shipped)-1],
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := Open(prEngine(t, base), dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if _, err := d.ApplyBatch(batches[0]); err != nil {
				t.Fatal(err)
			}
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			before := d.Snapshot()
			if _, err := d.InstallCheckpoint(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt install succeeded")
			}
			if d.Snapshot() != before {
				t.Fatal("failed install republished a snapshot")
			}
			if d.Seq() != 1 {
				t.Fatalf("seq moved to %d on failed install", d.Seq())
			}
			if _, err := os.Stat(filepath.Join(dir, "checkpoint.snap.reseed")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("reseed temp file left behind: %v", err)
			}
			// The previous checkpoint must still recover the engine.
			d.Close()
			r, err := Open(prEngine(t, base), dir, Options{})
			if err != nil {
				t.Fatalf("reopen after failed install: %v", err)
			}
			if r.Seq() != 1 {
				t.Fatalf("recovered to seq %d after failed install", r.Seq())
			}
			r.Close()
		})
	}
}

func flip(data []byte, off int) []byte {
	out := append([]byte(nil), data...)
	out[off] ^= 0x20
	return out
}

// TestInstallCheckpointCrashBeforeTruncate pins the crash window
// between the rename and the journal truncation: the new checkpoint is
// on disk, the journal still holds records it covers. Recovery must
// load the checkpoint and skip the stale records — the same skip rule
// that protects Checkpoint's own crash window.
func TestInstallCheckpointCrashBeforeTruncate(t *testing.T) {
	base, batches := testStream(t)
	leaderDir := t.TempDir()
	leader, err := Open(prEngine(t, base), leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for _, b := range batches[:4] {
		if _, err := leader.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Follower applied records 1..2 (journal holds them), then "crashed"
	// after the shipped checkpoint's rename landed but before its WAL
	// truncation: simulate by copying the leader checkpoint over the
	// follower's while its journal still holds seq 1..2.
	followerDir := t.TempDir()
	f, err := Open(prEngine(t, base), followerDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches[:2] {
		if err := f.ApplyRecord(wal.Record{Seq: uint64(i + 1), Batch: b}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	ckpt, err := os.ReadFile(filepath.Join(leaderDir, "checkpoint.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(followerDir, "checkpoint.snap"), ckpt, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(prEngine(t, base), followerDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Seq() != 4 {
		t.Fatalf("recovered to seq %d, want the checkpoint's 4", r.Seq())
	}
	if sk := r.Recovery().Skipped; sk != 2 {
		t.Fatalf("recovery skipped %d journal records, want 2", sk)
	}
	valuesMatch(t, r.Values(), leader.Values(), 1e-12, "crash before truncate")
}
