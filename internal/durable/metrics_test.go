package durable

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// TestDurableMetrics drives a durable engine through appends, a
// checkpoint and a recovery with a live registry and checks the
// journal/checkpoint series move: WAL fsync and checkpoint latency
// histograms, append counters, replay counters.
func TestDurableMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	base := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1},
	})
	batches := []graph.Batch{
		{Add: []graph.Edge{{From: 2, To: 3, Weight: 1}}},
		{Add: []graph.Edge{{From: 3, To: 0, Weight: 1}}},
		{Del: []graph.Edge{{From: 2, To: 3, Weight: 1}}},
	}
	dir := t.TempDir()
	opts := Options{CheckpointEvery: 2, Metrics: reg}

	d, err := Open(prEngine(t, base), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := d.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	snap := reg.Snapshot()
	if v := snap.Counters["graphbolt_wal_appends_total"]; v != int64(len(batches)) {
		t.Errorf("wal_appends_total = %d, want %d", v, len(batches))
	}
	if v := snap.Counters["graphbolt_wal_append_bytes_total"]; v <= 0 {
		t.Errorf("wal_append_bytes_total = %d, want > 0", v)
	}
	if h := snap.Histograms["graphbolt_wal_fsync_seconds"]; h.Count == 0 {
		t.Error("wal_fsync_seconds histogram empty; SyncEveryBatch should fsync per append")
	}
	if v := snap.Counters["graphbolt_checkpoints_total"]; v != 1 {
		t.Errorf("checkpoints_total = %d, want 1 (CheckpointEvery=2, 3 batches)", v)
	}
	if h := snap.Histograms["graphbolt_checkpoint_seconds"]; h.Count != 1 {
		t.Errorf("checkpoint_seconds histogram count = %d, want 1", h.Count)
	}
	// One batch after the checkpoint stayed in the WAL; size gauge covers
	// the file header plus that record.
	if v := snap.Gauges["graphbolt_wal_size_bytes"]; v <= 8 {
		t.Errorf("wal_size_bytes = %v, want > header", v)
	}

	// Reopen: the single post-checkpoint record replays.
	d2, err := Open(prEngine(t, base), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap = reg.Snapshot()
	if v := snap.Counters["graphbolt_recoveries_total"]; v != 2 {
		t.Errorf("recoveries_total = %d, want 2", v)
	}
	if v := snap.Counters["graphbolt_recovery_replayed_records_total"]; v != 1 {
		t.Errorf("recovery_replayed_records_total = %d, want 1", v)
	}
	if v := snap.Counters["graphbolt_wal_recovered_records_total"]; v != 1 {
		t.Errorf("wal_recovered_records_total = %d, want 1", v)
	}
}

// TestRegisterMetricsPreCreatesSeries checks the exposition endpoint
// contract: every durable/WAL series exists (at zero) after
// RegisterMetrics, before any engine is opened.
func TestRegisterMetricsPreCreatesSeries(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	snap := reg.Snapshot()
	for _, name := range []string{
		"graphbolt_checkpoints_total",
		"graphbolt_recovery_replayed_records_total",
		"graphbolt_recovery_skipped_records_total",
		"graphbolt_recoveries_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s not pre-registered", name)
		}
	}
	if _, ok := snap.Histograms["graphbolt_checkpoint_seconds"]; !ok {
		t.Error("histogram graphbolt_checkpoint_seconds not pre-registered")
	}
}
