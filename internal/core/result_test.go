package core_test

import (
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func newTestPR(t *testing.T, g *graph.Graph, opts core.Options) *core.Engine[float64, float64] {
	t.Helper()
	e, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSnapshotPublication pins the read/write separation contract: no
// snapshot before Run, generation 1 after it, +1 per batch, and an old
// snapshot held across later batches stays frozen — its values, level
// and graph are the ones published at its generation, untouched by
// subsequent refinement.
func TestSnapshotPublication(t *testing.T) {
	g := graph.MustBuild(60, gen.RMAT(11, 60, 360, gen.WeightUniform))
	e := newTestPR(t, g, core.Options{MaxIterations: 8})

	if e.Snapshot() != nil {
		t.Fatal("snapshot published before Run")
	}
	if e.Values() != nil {
		t.Fatal("Values non-nil before Run")
	}
	if e.CopyValues() != nil {
		t.Fatal("CopyValues non-nil before Run")
	}

	e.Run()
	s1 := e.Snapshot()
	if s1 == nil || s1.Generation != 1 {
		t.Fatalf("snapshot after Run = %+v, want generation 1", s1)
	}
	if s1.Graph.NumVertices() != 60 {
		t.Fatalf("snapshot graph has %d vertices", s1.Graph.NumVertices())
	}
	if s1.Level != e.Level() || s1.Level == 0 {
		t.Fatalf("snapshot level %d vs engine %d", s1.Level, e.Level())
	}
	frozen := append([]float64(nil), s1.Values...)

	b := graph.Batch{Add: []graph.Edge{{From: 0, To: 59, Weight: 1}, {From: 59, To: 7, Weight: 1}}}
	if _, err := e.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	s2 := e.Snapshot()
	if s2.Generation != 2 {
		t.Fatalf("generation after batch = %d, want 2", s2.Generation)
	}
	if &s1.Values[0] == &s2.Values[0] {
		t.Fatal("consecutive snapshots share a values slice")
	}
	for v := range frozen {
		if s1.Values[v] != frozen[v] {
			t.Fatalf("held snapshot mutated at vertex %d: %v -> %v", v, frozen[v], s1.Values[v])
		}
	}
	if s1.Graph.NumEdges() == s2.Graph.NumEdges() {
		t.Fatal("batch did not change the published graph")
	}

	// The published view and the writer's accessors agree.
	if got := e.Values(); &got[0] != &s2.Values[0] {
		t.Fatal("Values() does not alias the published snapshot")
	}
	owned := e.CopyValues()
	if &owned[0] == &s2.Values[0] {
		t.Fatal("CopyValues aliases the published snapshot")
	}
	owned[0] = -1
	if s2.Values[0] == -1 {
		t.Fatal("mutating CopyValues result leaked into the snapshot")
	}
}

// TestSnapshotRejectedBatchKeepsGeneration: a batch that fails
// validation must not publish a new generation.
func TestSnapshotRejectedBatchKeepsGeneration(t *testing.T) {
	g := graph.MustBuild(10, gen.RMAT(13, 10, 40, gen.WeightUniform))
	e := newTestPR(t, g, core.Options{MaxIterations: 5})
	e.Run()
	before := e.Snapshot()
	bad := graph.Batch{Add: []graph.Edge{{From: 0, To: graph.MaxVertexID + 1, Weight: 1}}}
	if _, err := e.ApplyBatch(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if after := e.Snapshot(); after != before {
		t.Fatalf("rejected batch published generation %d", after.Generation)
	}
}
