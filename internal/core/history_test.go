package core_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// historyEngine builds a small PageRank engine with the given retention
// and applies `batches` single-edge batches after the initial run.
func historyEngine(t *testing.T, retain, batches int, reg *obs.Registry) *core.Engine[float64, float64] {
	t.Helper()
	g := graph.MustBuild(4, []graph.Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}})
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(),
		core.Options{Retain: retain, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < batches; i++ {
		if _, err := eng.ApplyBatch(graph.Batch{Add: []graph.Edge{
			{From: graph.VertexID(i % 4), To: graph.VertexID((i + 2) % 4), Weight: 1},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func TestSnapshotAtBeforeRun(t *testing.T) {
	g := graph.MustBuild(2, nil)
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{Retain: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SnapshotAt(1); !errors.Is(err, core.ErrGenerationNotRetained) {
		t.Fatalf("SnapshotAt before Run = %v, want ErrGenerationNotRetained", err)
	}
	if oldest, newest := eng.RetainedGenerations(); oldest != 0 || newest != 0 {
		t.Fatalf("RetainedGenerations before Run = [%d, %d], want [0, 0]", oldest, newest)
	}
}

func TestSnapshotAtWindow(t *testing.T) {
	// Retain 3 of 6 published generations: 4..6 addressable, 1..3 evicted.
	eng := historyEngine(t, 3, 5, nil)
	oldest, newest := eng.RetainedGenerations()
	if oldest != 4 || newest != 6 {
		t.Fatalf("retained window [%d, %d], want [4, 6]", oldest, newest)
	}
	for gen := oldest; gen <= newest; gen++ {
		s, err := eng.SnapshotAt(gen)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", gen, err)
		}
		if s.Generation != gen {
			t.Fatalf("SnapshotAt(%d).Generation = %d", gen, s.Generation)
		}
	}
	for _, gen := range []uint64{0, 1, 2, 3, 7} {
		if _, err := eng.SnapshotAt(gen); !errors.Is(err, core.ErrGenerationNotRetained) {
			t.Fatalf("SnapshotAt(%d) = %v, want ErrGenerationNotRetained", gen, err)
		}
	}
	// The newest snapshot served by SnapshotAt is the same object
	// Snapshot returns — history is pointers, not copies.
	s, err := eng.SnapshotAt(newest)
	if err != nil {
		t.Fatal(err)
	}
	if s != eng.Snapshot() {
		t.Fatal("SnapshotAt(newest) is not the current snapshot")
	}
}

func TestSnapshotAtRetentionOff(t *testing.T) {
	// Retain <= 1 keeps only the newest generation addressable.
	for _, retain := range []int{0, 1} {
		eng := historyEngine(t, retain, 2, nil)
		if _, err := eng.SnapshotAt(3); err != nil {
			t.Fatalf("retain=%d: newest generation: %v", retain, err)
		}
		if _, err := eng.SnapshotAt(2); !errors.Is(err, core.ErrGenerationNotRetained) {
			t.Fatalf("retain=%d: SnapshotAt(2) = %v, want ErrGenerationNotRetained", retain, err)
		}
		if oldest, newest := eng.RetainedGenerations(); oldest != 3 || newest != 3 {
			t.Fatalf("retain=%d: window [%d, %d], want [3, 3]", retain, oldest, newest)
		}
	}
}

func TestRetainedGenerationsGauge(t *testing.T) {
	reg := obs.NewRegistry()
	historyEngine(t, 3, 1, reg) // 2 published, both within the depth-3 ring
	if got := reg.Snapshot().Gauges["graphbolt_engine_retained_generations"]; got != 2 {
		t.Fatalf("retained gauge = %v, want 2", got)
	}
	reg2 := obs.NewRegistry()
	historyEngine(t, 3, 5, reg2) // 6 published, ring holds the last 3
	if got := reg2.Snapshot().Gauges["graphbolt_engine_retained_generations"]; got != 3 {
		t.Fatalf("retained gauge = %v, want 3", got)
	}
}

func TestDiffSnapshots(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{Retain: 8})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Gen 2 adds an edge into a brand-new vertex 3: the diff must report
	// the structural growth and compare vertex 3 against its initial
	// value at gen 1.
	if _, err := eng.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 1, To: 3, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	d, err := eng.DiffSnapshots(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.From != 1 || d.To != 2 {
		t.Fatalf("diff labeled [%d, %d]", d.From, d.To)
	}
	if d.VertexDelta != 1 || d.EdgeDelta != 1 {
		t.Fatalf("VertexDelta=%d EdgeDelta=%d, want 1, 1", d.VertexDelta, d.EdgeDelta)
	}
	s1, _ := eng.SnapshotAt(1)
	s2, _ := eng.SnapshotAt(2)
	if len(d.Changed) == 0 {
		t.Fatal("no changed vertices across a structural mutation")
	}
	p := algorithms.NewPageRank()
	for i, v := range d.Changed {
		want1 := p.InitValue(v)
		if int(v) < len(s1.Values) {
			want1 = s1.Values[v]
		}
		if d.Before[i] != want1 {
			t.Fatalf("vertex %d Before = %v, snapshot 1 has %v", v, d.Before[i], want1)
		}
		if d.After[i] != s2.Values[v] {
			t.Fatalf("vertex %d After = %v, snapshot 2 has %v", v, d.After[i], s2.Values[v])
		}
	}
	// Identity diff: nothing changed, zero deltas.
	id, err := eng.DiffSnapshots(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(id.Changed) != 0 || id.VertexDelta != 0 || id.EdgeDelta != 0 {
		t.Fatalf("identity diff not empty: %+v", id)
	}
	// Diffing an unretained generation fails with the sentinel.
	if _, err := eng.DiffSnapshots(1, 99); !errors.Is(err, core.ErrGenerationNotRetained) {
		t.Fatalf("diff to unpublished generation = %v, want ErrGenerationNotRetained", err)
	}
}

// TestHistoryRingEviction covers the ring directly: a slot reused by a
// newer generation makes the older one unaddressable, and At never
// returns a snapshot with the wrong generation.
func TestHistoryRingEviction(t *testing.T) {
	r := core.NewHistoryRing[int](3)
	if r.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", r.Cap())
	}
	for gen := uint64(1); gen <= 7; gen++ {
		r.Push(&core.ResultSnapshot[int]{Generation: gen})
	}
	for gen := uint64(1); gen <= 9; gen++ {
		s := r.At(gen)
		if want := gen >= 5 && gen <= 7; (s != nil) != want {
			t.Fatalf("At(%d) = %v, want present=%v", gen, s, want)
		}
		if s != nil && s.Generation != gen {
			t.Fatalf("At(%d).Generation = %d", gen, s.Generation)
		}
	}
	if got := core.NewHistoryRing[int](0).Cap(); got != 1 {
		t.Fatalf("NewHistoryRing(0).Cap = %d, want 1", got)
	}
}

// TestSnapshotAtConcurrentWithWriter reads the history ring from many
// goroutines while the writer streams batches — under -race this pins
// down the lock-free contract: every successful read returns the exact
// generation asked for, and failures are only the sentinel.
func TestSnapshotAtConcurrentWithWriter(t *testing.T) {
	g := graph.MustBuild(6, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{Retain: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	const batches = 200
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, newest := eng.RetainedGenerations()
				gen := uint64(1) + uint64(w+i)%newest
				s, err := eng.SnapshotAt(gen)
				switch {
				case err != nil && !errors.Is(err, core.ErrGenerationNotRetained):
					select {
					case fail <- err.Error():
					default:
					}
					return
				case err == nil && s.Generation != gen:
					select {
					case fail <- "wrong generation returned":
					default:
					}
					return
				}
			}
		}(w)
	}
	for i := 0; i < batches; i++ {
		if _, err := eng.ApplyBatch(graph.Batch{Add: []graph.Edge{
			{From: graph.VertexID(i % 6), To: graph.VertexID((i + 1) % 6), Weight: 1},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
