package difftest_test

import (
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/core/difftest"
	"repro/internal/graph"
)

// The three runs below stream 105 randomized batches total, retaining
// and verifying every generation — the acceptance bar for the history
// subsystem: SnapshotAt(g) must equal a from-scratch run on the
// independently reconstructed generation-g graph, for a decomposable
// sum (PageRank), a non-decomposable pull min (SSSP) and a vector
// aggregation (Label Propagation).

func TestDifferentialPageRank(t *testing.T) {
	difftest.Run(t,
		func() core.Program[float64, float64] { return algorithms.NewPageRank() },
		difftest.ScalarEqual(1e-7),
		difftest.Config{Seed: 1, Batches: 40})
}

func TestDifferentialSSSP(t *testing.T) {
	// Min aggregation is float-noise free: exact equality, +Inf == +Inf
	// for unreachable vertices. MaxIterations must exceed the longest
	// shortest path in any generation; graphs stay under ~100 vertices.
	difftest.Run(t,
		func() core.Program[float64, float64] { return algorithms.NewSSSP(0) },
		difftest.ScalarEqual(0),
		difftest.Config{Seed: 2, Batches: 35, MaxIterations: 512, Horizon: 8})
}

func TestDifferentialLabelProp(t *testing.T) {
	seeds := map[graph.VertexID]int{0: 0, 1: 1, 2: 2}
	difftest.Run(t,
		func() core.Program[[]float64, []float64] { return algorithms.NewLabelProp(3, seeds) },
		difftest.VectorEqual(1e-7),
		difftest.Config{Seed: 3, Batches: 30})
}

// TestDifferentialSecondSeeds reruns PageRank on fresh seeds so the
// harness's coverage is not hostage to one random trajectory. Short
// mode keeps the single-seed runs above only.
func TestDifferentialSecondSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("second seeds skipped in -short")
	}
	for _, seed := range []uint64{11, 12} {
		difftest.Run(t,
			func() core.Program[float64, float64] { return algorithms.NewPageRank() },
			difftest.ScalarEqual(1e-7),
			difftest.Config{Seed: seed, Batches: 15})
	}
}
