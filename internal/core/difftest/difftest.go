// Package difftest is a differential test harness for the engine's
// generation-addressable snapshot history: it streams randomized
// mutation batches through an engine configured to retain every
// generation, mirrors the graph's evolution in an independent
// edge-multiset model, and then cross-checks each SnapshotAt(g) — both
// structure and values — against a from-scratch engine run on the
// independently reconstructed generation-g graph.
//
// This is the retention-era restatement of the paper's Theorem 4.1: not
// only must the *latest* refined result equal a from-scratch run, every
// *retained* historical result must equal a from-scratch run on the
// graph as it stood at that generation. The mirror applies the
// documented Batch semantics itself (deletions match pre-batch edges by
// (From, To), consuming instances in ascending (target, weight) order;
// additions append and may grow the vertex set), so a structural bug in
// graph.Apply cannot hide by corrupting both sides identically.
//
// Consecutive generations are additionally cross-checked through
// DiffSnapshots: reported before/after values must match the two
// snapshots vertex-for-vertex, the changed set must be exactly the
// program's Changed predicate over the union vertex range, and the
// structural deltas must match the mirror's.
package difftest

import (
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Config shapes one differential run.
type Config struct {
	// Seed drives every random choice (graph, batches); runs are
	// deterministic per seed.
	Seed uint64
	// Batches is the number of mutation batches streamed (generations
	// verified = Batches + 1, counting the initial run). Default 20.
	Batches int
	// MaxIterations bounds both the streaming engine and every
	// from-scratch reference run. Default 10.
	MaxIterations int
	// Horizon is the streaming engine's pruning cut-off (0 =
	// MaxIterations). Reference runs never prune.
	Horizon int
}

func (c Config) withDefaults() Config {
	if c.Batches <= 0 {
		c.Batches = 20
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 10
	}
	return c
}

// ScalarEqual returns a float64 comparator with absolute tolerance tol;
// two +Inf (unreachable SSSP vertices) compare equal, and tol <= 0
// means exact.
func ScalarEqual(tol float64) func(got, want float64) bool {
	return func(got, want float64) bool {
		if got == want || (math.IsInf(got, 1) && math.IsInf(want, 1)) {
			return true
		}
		return math.Abs(got-want) <= tol
	}
}

// VectorEqual returns a []float64 comparator applying ScalarEqual
// element-wise (lengths must match).
func VectorEqual(tol float64) func(got, want []float64) bool {
	eq := ScalarEqual(tol)
	return func(got, want []float64) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !eq(got[i], want[i]) {
				return false
			}
		}
		return true
	}
}

// state is the independent mirror of the graph's evolution: a plain
// edge multiset plus vertex bound, never sharing code with
// graph.Apply's offset/shift passes.
type state struct {
	n     int
	edges []graph.Edge
}

// apply returns the post-batch state per the documented Batch contract.
func (s state) apply(b graph.Batch) state {
	n := s.n
	for _, e := range b.Add {
		if int(e.From)+1 > n {
			n = int(e.From) + 1
		}
		if int(e.To)+1 > n {
			n = int(e.To) + 1
		}
	}
	// Deletions match only pre-batch edges, keyed by (From, To) with the
	// request weight ignored, and consume parallel instances in
	// ascending weight order — so sort canonically and skip the first
	// `want` matches per key.
	old := append([]graph.Edge(nil), s.edges...)
	sortEdges(old)
	want := make(map[[2]graph.VertexID]int)
	for _, d := range b.Del {
		want[[2]graph.VertexID{d.From, d.To}]++
	}
	out := make([]graph.Edge, 0, len(old)+len(b.Add))
	for _, e := range old {
		k := [2]graph.VertexID{e.From, e.To}
		if want[k] > 0 {
			want[k]--
			continue
		}
		out = append(out, e)
	}
	out = append(out, b.Add...)
	return state{n: n, edges: out}
}

func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		if es[i].To != es[j].To {
			return es[i].To < es[j].To
		}
		return es[i].Weight < es[j].Weight
	})
}

// randomState seeds the mirror with a random multigraph (self loops and
// parallel edges included).
func randomState(r *gen.RNG) state {
	n := 5 + r.Intn(40)
	edges := make([]graph.Edge, r.Intn(5*n))
	for i := range edges {
		edges[i] = graph.Edge{
			From:   graph.VertexID(r.Intn(n)),
			To:     graph.VertexID(r.Intn(n)),
			Weight: float64(r.Intn(6) + 1),
		}
	}
	return state{n: n, edges: edges}
}

// randomBatch derives a batch from the mirror alone — the engine's view
// never influences what gets streamed.
func randomBatch(r *gen.RNG, s state) graph.Batch {
	var b graph.Batch
	for i := 0; i < r.Intn(10); i++ {
		b.Add = append(b.Add, graph.Edge{
			From:   graph.VertexID(r.Intn(s.n + 2)),
			To:     graph.VertexID(r.Intn(s.n + 2)),
			Weight: float64(r.Intn(6) + 1),
		})
	}
	for i := 0; i < r.Intn(10) && len(s.edges) > 0; i++ {
		e := s.edges[r.Intn(len(s.edges))]
		b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
	}
	return b
}

// build constructs a fresh graph snapshot from the mirror.
func (s state) build(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.Build(s.n, append([]graph.Edge(nil), s.edges...))
	if err != nil {
		t.Fatalf("difftest: mirror graph build: %v", err)
	}
	return g
}

// Run streams cfg.Batches randomized batches through an engine that
// retains every generation, then verifies each retained SnapshotAt(g)
// against the independent mirror: graph structure edge-for-edge, and
// values (per equal) against a from-scratch ModeReset run on the
// reconstructed generation-g graph. Consecutive generations are also
// cross-checked through DiffSnapshots.
func Run[V, A any](t testing.TB, newProg func() core.Program[V, A], equal func(got, want V) bool, cfg Config) {
	t.Helper()
	cfg = cfg.withDefaults()
	r := gen.NewRNG(cfg.Seed)
	st := randomState(r)

	eng, err := core.NewEngine[V, A](st.build(t), newProg(), core.Options{
		MaxIterations: cfg.MaxIterations,
		Horizon:       cfg.Horizon,
		Retain:        cfg.Batches + 1,
	})
	if err != nil {
		t.Fatalf("difftest: engine: %v", err)
	}
	eng.Run()

	// Concurrent point-in-time readers stress the lock-free ring while
	// the writer streams; under -race this proves SnapshotAt never
	// observes torn state. Results are checked for self-consistency
	// only — full verification happens after the stream.
	stop := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		rr := gen.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, newest := eng.RetainedGenerations()
			if newest == 0 {
				continue
			}
			g := 1 + rr.Uint64()%newest
			snap, err := eng.SnapshotAt(g)
			if err != nil {
				readErr <- err
				return
			}
			if snap.Generation != g {
				readErr <- errors.New("SnapshotAt returned wrong generation")
				return
			}
		}
	}()

	hist := map[uint64]state{1: st}
	for i := 0; i < cfg.Batches; i++ {
		b := randomBatch(r, st)
		st = st.apply(b)
		if _, err := eng.ApplyBatch(b); err != nil {
			t.Fatalf("difftest: batch %d: %v", i+1, err)
		}
		hist[eng.Snapshot().Generation] = st
	}
	close(stop)
	if err := <-readErr; err != nil {
		t.Fatalf("difftest: concurrent reader: %v", err)
	}

	oldest, newest := eng.RetainedGenerations()
	if oldest != 1 || newest != uint64(cfg.Batches)+1 {
		t.Fatalf("difftest: retained window [%d, %d], want [1, %d]", oldest, newest, cfg.Batches+1)
	}

	for g := oldest; g <= newest; g++ {
		snap, err := eng.SnapshotAt(g)
		if err != nil {
			t.Fatalf("difftest: SnapshotAt(%d): %v", g, err)
		}
		if snap.Generation != g {
			t.Fatalf("difftest: SnapshotAt(%d) returned generation %d", g, snap.Generation)
		}
		verifyStructure(t, snap.Graph, hist[g], g)
		verifyValues(t, snap, hist[g], newProg, equal, cfg, g)
	}
	for g := oldest + 1; g <= newest; g++ {
		verifyDiff(t, eng, newProg(), g-1, g)
	}

	// The window's edges must fail cleanly, not return a wrong snapshot.
	for _, g := range []uint64{0, newest + 1} {
		if _, err := eng.SnapshotAt(g); !errors.Is(err, core.ErrGenerationNotRetained) {
			t.Fatalf("difftest: SnapshotAt(%d) = %v, want ErrGenerationNotRetained", g, err)
		}
	}
}

// verifyStructure compares the retained snapshot's graph with the
// mirror, edge-for-edge as sorted multisets.
func verifyStructure(t testing.TB, g *graph.Graph, want state, gen uint64) {
	t.Helper()
	if g.NumVertices() != want.n {
		t.Fatalf("difftest: gen %d: %d vertices, mirror has %d", gen, g.NumVertices(), want.n)
	}
	got := g.Edges(nil)
	exp := append([]graph.Edge(nil), want.edges...)
	sortEdges(got)
	sortEdges(exp)
	if len(got) != len(exp) {
		t.Fatalf("difftest: gen %d: %d edges, mirror has %d", gen, len(got), len(exp))
	}
	for i := range got {
		if got[i] != exp[i] {
			t.Fatalf("difftest: gen %d: edge[%d] = %+v, mirror has %+v", gen, i, got[i], exp[i])
		}
	}
}

// verifyValues runs a fresh from-scratch engine on the mirror's
// generation-g graph and compares every vertex value.
func verifyValues[V, A any](t testing.TB, snap *core.ResultSnapshot[V], want state,
	newProg func() core.Program[V, A], equal func(got, want V) bool, cfg Config, gen uint64) {
	t.Helper()
	if len(snap.Values) != want.n {
		t.Fatalf("difftest: gen %d: %d values, mirror has %d vertices", gen, len(snap.Values), want.n)
	}
	fresh, err := core.NewEngine[V, A](want.build(t), newProg(), core.Options{
		Mode:          core.ModeReset,
		MaxIterations: cfg.MaxIterations,
	})
	if err != nil {
		t.Fatalf("difftest: gen %d: reference engine: %v", gen, err)
	}
	fresh.Run()
	ref := fresh.Values()
	for v := range snap.Values {
		if !equal(snap.Values[v], ref[v]) {
			t.Fatalf("difftest: gen %d: vertex %d: retained %v, from-scratch %v",
				gen, v, snap.Values[v], ref[v])
		}
	}
}

// verifyDiff cross-checks DiffSnapshots(from, to) against the two
// snapshots it claims to compare.
func verifyDiff[V, A any](t testing.TB, eng *core.Engine[V, A], p core.Program[V, A], from, to uint64) {
	t.Helper()
	d, err := eng.DiffSnapshots(from, to)
	if err != nil {
		t.Fatalf("difftest: DiffSnapshots(%d, %d): %v", from, to, err)
	}
	a, err := eng.SnapshotAt(from)
	if err != nil {
		t.Fatalf("difftest: SnapshotAt(%d): %v", from, err)
	}
	b, err := eng.SnapshotAt(to)
	if err != nil {
		t.Fatalf("difftest: SnapshotAt(%d): %v", to, err)
	}
	if d.From != from || d.To != to {
		t.Fatalf("difftest: diff labeled [%d, %d], want [%d, %d]", d.From, d.To, from, to)
	}
	if got, want := d.VertexDelta, b.Graph.NumVertices()-a.Graph.NumVertices(); got != want {
		t.Fatalf("difftest: diff %d→%d: VertexDelta %d, want %d", from, to, got, want)
	}
	if got, want := d.EdgeDelta, b.Graph.NumEdges()-a.Graph.NumEdges(); got != want {
		t.Fatalf("difftest: diff %d→%d: EdgeDelta %d, want %d", from, to, got, want)
	}
	if len(d.Before) != len(d.Changed) || len(d.After) != len(d.Changed) {
		t.Fatalf("difftest: diff %d→%d: %d changed but %d/%d before/after values",
			from, to, len(d.Changed), len(d.Before), len(d.After))
	}
	// value-at reads vertex v in a snapshot, falling back to the
	// program's initial value outside the snapshot's range — the same
	// convention DiffSnapshots documents.
	at := func(s *core.ResultSnapshot[V], v graph.VertexID) V {
		if int(v) < len(s.Values) {
			return s.Values[v]
		}
		return p.InitValue(v)
	}
	inDiff := make(map[graph.VertexID]int, len(d.Changed))
	for i, v := range d.Changed {
		if i > 0 && d.Changed[i-1] >= v {
			t.Fatalf("difftest: diff %d→%d: Changed not strictly ascending at %d", from, to, i)
		}
		inDiff[v] = i
		if !reflect.DeepEqual(d.Before[i], at(a, v)) {
			t.Fatalf("difftest: diff %d→%d: vertex %d Before = %v, snapshot has %v",
				from, to, v, d.Before[i], at(a, v))
		}
		if !reflect.DeepEqual(d.After[i], at(b, v)) {
			t.Fatalf("difftest: diff %d→%d: vertex %d After = %v, snapshot has %v",
				from, to, v, d.After[i], at(b, v))
		}
	}
	// Completeness and soundness against the program's own predicate:
	// the changed set is exactly {v : Changed(before, after)}.
	n := len(a.Values)
	if len(b.Values) > n {
		n = len(b.Values)
	}
	for v := 0; v < n; v++ {
		vid := graph.VertexID(v)
		changed := p.Changed(at(a, vid), at(b, vid))
		if _, ok := inDiff[vid]; ok != changed {
			t.Fatalf("difftest: diff %d→%d: vertex %d in diff = %v, Changed predicate = %v",
				from, to, v, ok, changed)
		}
	}
}
