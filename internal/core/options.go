package core

import "time"

// Mode selects the execution strategy, mirroring the systems compared in
// the paper's evaluation (§5.1).
type Mode int

const (
	// ModeGraphBolt is dependency-driven incremental processing: the
	// initial run tracks aggregation values, mutations trigger value
	// refinement (§3.3) followed by hybrid execution past the pruning
	// horizon (§4.2).
	ModeGraphBolt Mode = iota

	// ModeGraphBoltRP is ModeGraphBolt with transitive updates issued as
	// an explicit retract + propagate pair even when the program offers
	// a single-pass delta — the GraphBolt-RP configuration of Fig. 8.
	ModeGraphBoltRP

	// ModeReset is the GB-Reset baseline: delta-based selective
	// scheduling during processing, but computation restarts from
	// initial values on every mutation. No dependency tracking.
	ModeReset

	// ModeLigra is the Ligra baseline: full synchronous recomputation —
	// every iteration re-aggregates every vertex over all in-edges, and
	// mutations restart the computation.
	ModeLigra

	// ModeNaive directly reuses converged values across mutations
	// without refinement, converging to the incorrect S*(G^T, R_G) of
	// §2.2 — the error baseline of Table 1 and Fig. 2.
	ModeNaive
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case ModeGraphBolt:
		return "GraphBolt"
	case ModeGraphBoltRP:
		return "GraphBolt-RP"
	case ModeReset:
		return "GB-Reset"
	case ModeLigra:
		return "Ligra"
	case ModeNaive:
		return "Naive"
	default:
		return "Unknown"
	}
}

// Options configures an Engine.
type Options struct {
	// Mode selects the execution strategy. Default ModeGraphBolt.
	Mode Mode

	// MaxIterations bounds every run (initial, post-mutation). The
	// paper's evaluation uses 10. Default 10.
	MaxIterations int

	// Horizon is the horizontal-pruning cut-off: aggregation values are
	// tracked for iterations 1..Horizon only; beyond it the engine
	// switches to hybrid execution. 0 means MaxIterations (no
	// horizontal pruning).
	Horizon int

	// DisableVerticalPruning stores an aggregate snapshot for every
	// vertex at every tracked iteration instead of only while the
	// aggregate keeps changing. Costs memory, changes no results.
	DisableVerticalPruning bool
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10
	}
	if o.Horizon <= 0 || o.Horizon > o.MaxIterations {
		o.Horizon = o.MaxIterations
	}
	return o
}

// Stats reports the work one engine call performed. Edge computations
// are the unit Figure 6 and Table 7 report: one Propagate, Retract,
// delta or pull visit per edge counts 1 (a retract+propagate pair
// counts 2, as in GraphBolt-RP).
type Stats struct {
	Iterations         int
	EdgeComputations   int64
	VertexComputations int64
	RefineIterations   int
	Duration           time.Duration
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Iterations += other.Iterations
	s.EdgeComputations += other.EdgeComputations
	s.VertexComputations += other.VertexComputations
	s.RefineIterations += other.RefineIterations
	s.Duration += other.Duration
}
