package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// Mode selects the execution strategy, mirroring the systems compared in
// the paper's evaluation (§5.1).
type Mode int

const (
	// ModeGraphBolt is dependency-driven incremental processing: the
	// initial run tracks aggregation values, mutations trigger value
	// refinement (§3.3) followed by hybrid execution past the pruning
	// horizon (§4.2).
	ModeGraphBolt Mode = iota

	// ModeGraphBoltRP is ModeGraphBolt with transitive updates issued as
	// an explicit retract + propagate pair even when the program offers
	// a single-pass delta — the GraphBolt-RP configuration of Fig. 8.
	ModeGraphBoltRP

	// ModeReset is the GB-Reset baseline: delta-based selective
	// scheduling during processing, but computation restarts from
	// initial values on every mutation. No dependency tracking.
	ModeReset

	// ModeLigra is the Ligra baseline: full synchronous recomputation —
	// every iteration re-aggregates every vertex over all in-edges, and
	// mutations restart the computation.
	ModeLigra

	// ModeNaive directly reuses converged values across mutations
	// without refinement, converging to the incorrect S*(G^T, R_G) of
	// §2.2 — the error baseline of Table 1 and Fig. 2.
	ModeNaive
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case ModeGraphBolt:
		return "GraphBolt"
	case ModeGraphBoltRP:
		return "GraphBolt-RP"
	case ModeReset:
		return "GB-Reset"
	case ModeLigra:
		return "Ligra"
	case ModeNaive:
		return "Naive"
	default:
		return "Unknown"
	}
}

// ParseMode is the inverse of Mode.String: it accepts the paper's names
// (case-insensitively) plus the CLI short forms ("reset", "rp").
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "graphbolt":
		return ModeGraphBolt, nil
	case "graphbolt-rp", "rp":
		return ModeGraphBoltRP, nil
	case "gb-reset", "reset":
		return ModeReset, nil
	case "ligra":
		return ModeLigra, nil
	case "naive":
		return ModeNaive, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %q", s)
	}
}

// Options configures an Engine.
type Options struct {
	// Mode selects the execution strategy. Default ModeGraphBolt.
	Mode Mode

	// MaxIterations bounds every run (initial, post-mutation). The
	// paper's evaluation uses 10. Default 10.
	MaxIterations int

	// Horizon is the horizontal-pruning cut-off: aggregation values are
	// tracked for iterations 1..Horizon only; beyond it the engine
	// switches to hybrid execution. 0 means MaxIterations (no
	// horizontal pruning).
	Horizon int

	// DisableVerticalPruning stores an aggregate snapshot for every
	// vertex at every tracked iteration instead of only while the
	// aggregate keeps changing. Costs memory, changes no results.
	DisableVerticalPruning bool

	// Retain keeps the last Retain published generations addressable via
	// SnapshotAt for time-travel reads and cross-generation diffing.
	// Snapshots are immutable, so retention costs only the held value
	// copies (one O(V) slice per generation) and never synchronization.
	// 0 or 1 means only the newest generation is reachable (no history
	// ring). Not part of checkpointed state: retention is a serving
	// concern, not an execution-semantics one.
	Retain int

	// Metrics, when non-nil, receives engine instrumentation (run/batch
	// counters, refine-vs-hybrid edge computations, tracked-snapshot
	// gauges, duration histograms). Nil falls back to the registry
	// installed with SetDefaultMetrics; both nil means instrumentation
	// is off and costs only nil checks. Not part of checkpointed state.
	Metrics *obs.Registry

	// Tracer, when non-nil, receives phase spans ("run", "refine",
	// "hybrid", ...). Not part of checkpointed state.
	Tracer *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10
	}
	if o.Horizon <= 0 || o.Horizon > o.MaxIterations {
		o.Horizon = o.MaxIterations
	}
	return o
}

// Stats reports the work one engine call performed. Edge computations
// are the unit Figure 6 and Table 7 report: one Propagate, Retract,
// delta or pull visit per edge counts 1 (a retract+propagate pair
// counts 2, as in GraphBolt-RP).
type Stats struct {
	Iterations         int
	EdgeComputations   int64
	VertexComputations int64
	RefineIterations   int

	// HybridIterations counts the delta-BSP iterations executed past the
	// pruning horizon during refinement (the §4.2 hybrid continuation);
	// always ≤ Iterations, and 0 outside the GraphBolt modes.
	HybridIterations int

	// TrackedSnapshotBytes is the dependency store's heap footprint when
	// the call finished — a point-in-time gauge (§3.2's pruning target),
	// not a per-call sum.
	TrackedSnapshotBytes int64

	Duration time.Duration
}

// Add accumulates other into s. Work fields sum; TrackedSnapshotBytes
// is a gauge, so the most recent non-zero observation wins.
//
// TestStatsAddCoversEveryField fails if a field is added here without a
// matching line below.
func (s *Stats) Add(other Stats) {
	s.Iterations += other.Iterations
	s.EdgeComputations += other.EdgeComputations
	s.VertexComputations += other.VertexComputations
	s.RefineIterations += other.RefineIterations
	s.HybridIterations += other.HybridIterations
	if other.TrackedSnapshotBytes != 0 {
		s.TrackedSnapshotBytes = other.TrackedSnapshotBytes
	}
	s.Duration += other.Duration
}
