package core_test

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestNewEngineValidation(t *testing.T) {
	g := graph.MustBuild(2, nil)
	if _, err := core.NewEngine[float64, float64](nil, algorithms.NewPageRank(), core.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := core.NewEngine[float64, float64](g, nil, core.Options{}); err == nil {
		t.Fatal("nil program accepted")
	}
}

func TestOptionsDefaultsBehavior(t *testing.T) {
	// Zero options: 10 iterations, horizon = iterations.
	g := graph.MustBuild(3, []graph.Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}})
	e, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run()
	if st.Iterations > 10 || st.Iterations != e.Level() {
		t.Fatalf("default run executed %d levels (engine level %d)", st.Iterations, e.Level())
	}
	// Defaulted options behave like an explicit 10-iteration budget.
	scalarsMatch(t, e.Values(), mustRun(t, g, core.ModeReset, 10), 1e-12, "default MaxIterations")
	// Horizon beyond MaxIterations clamps (no effect on results).
	e2, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 5, Horizon: 99})
	e2.Run()
	scalarsMatch(t, e2.Values(), mustRun(t, g, core.ModeReset, 5), 1e-12, "clamped horizon")
}

func mustRun(t *testing.T, g *graph.Graph, mode core.Mode, iters int) []float64 {
	t.Helper()
	e, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{Mode: mode, MaxIterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	return e.Values()
}

func TestLigraModeApplyBatch(t *testing.T) {
	g := graph.MustBuild(64, gen.RMAT(61, 64, 400, gen.WeightUnit))
	e, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{Mode: core.ModeLigra, MaxIterations: 6})
	e.Run()
	batch := makeBatch(g, 81, 10, 5)
	e.ApplyBatch(batch)
	fresh, _ := core.NewEngine[float64, float64](e.Graph(), algorithms.NewPageRank(),
		core.Options{Mode: core.ModeReset, MaxIterations: 6})
	fresh.Run()
	scalarsMatch(t, e.Values(), fresh.Values(), 1e-9, "Ligra ApplyBatch restart")
}

func TestNaiveModePullProgram(t *testing.T) {
	// The naive baseline's pull path: SSSP continues from current
	// distances; with additions only it still converges correctly
	// (monotone), the regime where naive reuse happens to work.
	g := graph.MustBuild(5, []graph.Edge{{From: 0, To: 1, Weight: 2}, {From: 1, To: 2, Weight: 2}})
	e, _ := core.NewEngine[float64, float64](g, algorithms.NewSSSP(0), core.Options{Mode: core.ModeNaive, MaxIterations: 50})
	e.Run()
	e.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 2, To: 3, Weight: 1}, {From: 0, To: 4, Weight: 9}}})
	want := []float64{0, 2, 4, 5, 9}
	for v, d := range e.Values() {
		if d != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, d, want[v])
		}
	}
}

func TestValueAtLevelTrajectory(t *testing.T) {
	// 0→1: rank(1) trajectory is exactly reconstructible per level.
	g := graph.MustBuild(2, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	e, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 4})
	e.Run()
	if got := e.ValueAtLevel(1, 0); got != 1 {
		t.Fatalf("level0 = %v, want initial 1", got)
	}
	if got := e.ValueAtLevel(1, 1); math.Abs(got-1.0) > 1e-12 { // 0.15+0.85·1
		t.Fatalf("level1 = %v, want 1.0", got)
	}
	if got := e.ValueAtLevel(1, 2); math.Abs(got-0.2775) > 1e-12 { // 0.15+0.85·0.15
		t.Fatalf("level2 = %v, want 0.2775", got)
	}
}

func TestRepeatedRunRestarts(t *testing.T) {
	g := graph.MustBuild(32, gen.RMAT(62, 32, 200, gen.WeightUnit))
	e, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 6})
	e.Run()
	first := append([]float64(nil), e.Values()...)
	e.ApplyBatch(makeBatch(g, 83, 5, 3))
	e2, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 6})
	e2.Run()
	// A second engine over the ORIGINAL graph reproduces the first run.
	scalarsMatch(t, e2.Values(), first, 0, "determinism across engines")
}

func TestToleranceApproximateRegime(t *testing.T) {
	// With a selective-scheduling tolerance, refined results stay within
	// a modest multiple of it from scratch results.
	edges := gen.RMAT(63, 200, 1500, gen.WeightUniform)
	g := graph.MustBuild(200, edges)
	pr := &algorithms.PageRank{Damping: 0.85, Tolerance: 1e-4}
	inc, _ := core.NewEngine[float64, float64](g, pr, core.Options{MaxIterations: 10})
	inc.Run()
	for b := 0; b < 3; b++ {
		inc.ApplyBatch(makeBatch(inc.Graph(), uint64(90+b), 20, 10))
	}
	fresh, _ := core.NewEngine[float64, float64](inc.Graph(), &algorithms.PageRank{Damping: 0.85},
		core.Options{Mode: core.ModeReset, MaxIterations: 10})
	fresh.Run()
	worst := 0.0
	for v := range inc.Values() {
		if d := math.Abs(inc.Values()[v] - fresh.Values()[v]); d > worst {
			worst = d
		}
	}
	// Tolerance-gated deltas can accumulate across in-degrees and
	// batches; bound it loosely but meaningfully.
	if worst > 0.05 {
		t.Fatalf("tolerance-mode divergence %v too large", worst)
	}
}
