package core_test

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// almostEqual compares float values with a relative-or-absolute epsilon
// that absorbs float non-associativity between parallel runs.
func almostEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	return d <= eps*math.Max(math.Abs(a), math.Abs(b))
}

func scalarsMatch(t *testing.T, got, want []float64, eps float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for v := range got {
		if !almostEqual(got[v], want[v], eps) {
			t.Fatalf("%s: vertex %d: got %v want %v", label, v, got[v], want[v])
		}
	}
}

func vectorsMatch(t *testing.T, got, want [][]float64, eps float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for v := range got {
		for f := range got[v] {
			if !almostEqual(got[v][f], want[v][f], eps) {
				t.Fatalf("%s: vertex %d[%d]: got %v want %v", label, v, f, got[v][f], want[v][f])
			}
		}
	}
}

func TestPageRankTinyGraphAgainstHandRolled(t *testing.T) {
	// 0→1, 1→2, 2→0: symmetric cycle; ranks converge to 1.
	g := graph.MustBuild(3, []graph.Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1}})
	e, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	for v, r := range e.Values() {
		if !almostEqual(r, 1.0, 1e-9) {
			t.Fatalf("vertex %d rank %v, want 1", v, r)
		}
	}
}

func TestPageRankDanglingVertex(t *testing.T) {
	// 0→1; 1 is a sink. Exact two-iteration BSP values.
	g := graph.MustBuild(2, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	e, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 2})
	e.Run()
	// c1(0) = 0.15; c1(1) = 0.15 + 0.85*1 = 1.0
	// c2(1) = 0.15 + 0.85*c1(0) = 0.2775
	if !almostEqual(e.Values()[0], 0.15, 1e-12) {
		t.Fatalf("c2(0) = %v", e.Values()[0])
	}
	if !almostEqual(e.Values()[1], 0.15+0.85*0.15, 1e-12) {
		t.Fatalf("c2(1) = %v", e.Values()[1])
	}
}

func TestLigraAndDeltaModesAgree(t *testing.T) {
	edges := gen.RMAT(11, 128, 1024, gen.WeightUniform)
	g := graph.MustBuild(128, edges)
	runWith := func(mode core.Mode) []float64 {
		e, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{Mode: mode, MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		e.Run()
		return append([]float64(nil), e.Values()...)
	}
	ligra := runWith(core.ModeLigra)
	reset := runWith(core.ModeReset)
	gb := runWith(core.ModeGraphBolt)
	rp := runWith(core.ModeGraphBoltRP)
	scalarsMatch(t, reset, ligra, 1e-9, "GB-Reset vs Ligra")
	scalarsMatch(t, gb, ligra, 1e-9, "GraphBolt vs Ligra")
	scalarsMatch(t, rp, ligra, 1e-9, "GraphBolt-RP vs Ligra")
}

// makeBatch builds a deterministic mixed batch over the graph.
func makeBatch(g *graph.Graph, seed uint64, nAdd, nDel int) graph.Batch {
	r := gen.NewRNG(seed)
	n := g.NumVertices()
	var b graph.Batch
	for i := 0; i < nAdd; i++ {
		b.Add = append(b.Add, graph.Edge{
			From:   graph.VertexID(r.Intn(n)),
			To:     graph.VertexID(r.Intn(n)),
			Weight: float64(r.Intn(8) + 1),
		})
	}
	all := g.Edges(nil)
	for i := 0; i < nDel && len(all) > 0; i++ {
		e := all[r.Intn(len(all))]
		b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
	}
	return b
}

// refinementOracle runs GraphBolt through a sequence of batches and
// checks the values after each batch against a fresh run on the mutated
// snapshot — the Theorem 4.1 guarantee.
func refinementOracle[V any](
	t *testing.T,
	label string,
	build func(g *graph.Graph, mode core.Mode, opts core.Options) interface {
		Run() core.Stats
		ApplyBatch(graph.Batch) (core.Stats, error)
		Values() []V
		Graph() *graph.Graph
	},
	match func(t *testing.T, got, want []V, label string),
	g *graph.Graph,
	batches []graph.Batch,
	opts core.Options,
) {
	t.Helper()
	inc := build(g, core.ModeGraphBolt, opts)
	inc.Run()
	for bi, b := range batches {
		inc.ApplyBatch(b)
		fresh := build(inc.Graph(), core.ModeReset, opts)
		fresh.Run()
		match(t, inc.Values(), fresh.Values(), label)
		_ = bi
	}
}

type scalarEngine interface {
	Run() core.Stats
	ApplyBatch(graph.Batch) (core.Stats, error)
	Values() []float64
	Graph() *graph.Graph
}

func buildScalar[A any](p core.Program[float64, A]) func(*graph.Graph, core.Mode, core.Options) scalarEngine {
	return func(g *graph.Graph, mode core.Mode, opts core.Options) scalarEngine {
		opts.Mode = mode
		e, err := core.NewEngine[float64, A](g, p, opts)
		if err != nil {
			panic(err)
		}
		return e
	}
}

func TestRefinementMatchesScratchPageRank(t *testing.T) {
	for _, horizon := range []int{0, 3, 7, 10} {
		edges := gen.RMAT(21, 200, 1600, gen.WeightUnit)
		g := graph.MustBuild(200, edges)
		opts := core.Options{MaxIterations: 10, Horizon: horizon}
		build := buildScalar[float64](algorithms.NewPageRank())

		inc := build(g, core.ModeGraphBolt, opts)
		inc.Run()
		for bi := 0; bi < 4; bi++ {
			batch := makeBatch(inc.Graph(), uint64(100+bi), 20, 10)
			inc.ApplyBatch(batch)
			fresh := build(inc.Graph(), core.ModeReset, opts)
			fresh.Run()
			scalarsMatch(t, inc.Values(), fresh.Values(), 1e-8, "PR refinement (horizon=)")
		}
	}
}

func TestRefinementMatchesScratchCoEM(t *testing.T) {
	edges := gen.RMAT(22, 150, 1200, gen.WeightUniform)
	g := graph.MustBuild(150, edges)
	pos := []core.VertexID{1, 5, 9}
	neg := []core.VertexID{2, 7}
	opts := core.Options{MaxIterations: 10, Horizon: 5}
	build := buildScalar[algorithms.CoEMAgg](algorithms.NewCoEM(pos, neg))

	inc := build(g, core.ModeGraphBolt, opts)
	inc.Run()
	for bi := 0; bi < 3; bi++ {
		batch := makeBatch(inc.Graph(), uint64(200+bi), 15, 15)
		inc.ApplyBatch(batch)
		fresh := build(inc.Graph(), core.ModeReset, opts)
		fresh.Run()
		scalarsMatch(t, inc.Values(), fresh.Values(), 1e-8, "CoEM refinement")
	}
}

func TestRefinementMatchesScratchLabelProp(t *testing.T) {
	edges := gen.RMAT(23, 150, 1100, gen.WeightUniform)
	g := graph.MustBuild(150, edges)
	seeds := map[core.VertexID]int{0: 0, 3: 1, 11: 2, 40: 1}
	lp := algorithms.NewLabelProp(3, seeds)
	opts := core.Options{MaxIterations: 8, Horizon: 4}

	buildLP := func(g *graph.Graph, mode core.Mode) *core.Engine[[]float64, []float64] {
		o := opts
		o.Mode = mode
		e, err := core.NewEngine[[]float64, []float64](g, lp, o)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	inc := buildLP(g, core.ModeGraphBolt)
	inc.Run()
	for bi := 0; bi < 3; bi++ {
		batch := makeBatch(inc.Graph(), uint64(300+bi), 12, 12)
		inc.ApplyBatch(batch)
		fresh := buildLP(inc.Graph(), core.ModeReset)
		fresh.Run()
		vectorsMatch(t, inc.Values(), fresh.Values(), 1e-8, "LP refinement")
	}
}

func TestRefinementMatchesScratchBeliefProp(t *testing.T) {
	edges := gen.RMAT(24, 100, 500, gen.WeightUnit)
	g := graph.MustBuild(100, edges)
	bp := algorithms.NewBeliefProp(3)
	opts := core.Options{MaxIterations: 6, Horizon: 3}

	buildBP := func(g *graph.Graph, mode core.Mode) *core.Engine[[]float64, []float64] {
		o := opts
		o.Mode = mode
		e, err := core.NewEngine[[]float64, []float64](g, bp, o)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	inc := buildBP(g, core.ModeGraphBolt)
	inc.Run()
	for bi := 0; bi < 3; bi++ {
		batch := makeBatch(inc.Graph(), uint64(400+bi), 10, 8)
		inc.ApplyBatch(batch)
		fresh := buildBP(inc.Graph(), core.ModeReset)
		fresh.Run()
		// BP retracts by division; allow more float drift.
		vectorsMatch(t, inc.Values(), fresh.Values(), 1e-6, "BP refinement")
	}
}

func TestRefinementMatchesScratchCollabFilter(t *testing.T) {
	edges := gen.Bipartite(25, 60, 30, 400, gen.WeightSmallInt)
	g := graph.MustBuild(90, edges)
	cf := algorithms.NewCollabFilter(4)
	opts := core.Options{MaxIterations: 6, Horizon: 3}

	buildCF := func(g *graph.Graph, mode core.Mode) *core.Engine[[]float64, algorithms.CFAgg] {
		o := opts
		o.Mode = mode
		e, err := core.NewEngine[[]float64, algorithms.CFAgg](g, cf, o)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	inc := buildCF(g, core.ModeGraphBolt)
	inc.Run()
	for bi := 0; bi < 3; bi++ {
		batch := makeBatch(inc.Graph(), uint64(500+bi), 10, 8)
		inc.ApplyBatch(batch)
		fresh := buildCF(inc.Graph(), core.ModeReset)
		fresh.Run()
		vectorsMatch(t, inc.Values(), fresh.Values(), 1e-5, "CF refinement")
	}
}

func TestRefinementMatchesScratchSSSP(t *testing.T) {
	edges := gen.RMAT(26, 200, 1500, gen.WeightSmallInt)
	g := graph.MustBuild(200, edges)
	opts := core.Options{MaxIterations: 250, Horizon: 250}
	build := buildScalar[float64](algorithms.NewSSSP(0))

	inc := build(g, core.ModeGraphBolt, opts)
	inc.Run()
	for bi := 0; bi < 4; bi++ {
		batch := makeBatch(inc.Graph(), uint64(600+bi), 15, 15)
		inc.ApplyBatch(batch)
		fresh := build(inc.Graph(), core.ModeReset, opts)
		fresh.Run()
		scalarsMatch(t, inc.Values(), fresh.Values(), 0, "SSSP refinement")
	}
}

func TestRefinementMatchesScratchBFSAndCC(t *testing.T) {
	edges := gen.RMAT(27, 150, 900, gen.WeightUnit)
	// Symmetrize for CC.
	var sym []graph.Edge
	for _, e := range edges {
		sym = append(sym, e, graph.Edge{From: e.To, To: e.From, Weight: e.Weight})
	}
	g := graph.MustBuild(150, sym)
	opts := core.Options{MaxIterations: 200, Horizon: 200}

	for name, p := range map[string]core.Program[float64, float64]{
		"BFS": algorithms.NewBFS(3),
		"CC":  algorithms.NewConnectedComponents(),
	} {
		build := buildScalar[float64](p)
		inc := build(g, core.ModeGraphBolt, opts)
		inc.Run()
		for bi := 0; bi < 3; bi++ {
			batch := makeBatch(inc.Graph(), uint64(700+bi), 10, 10)
			// Symmetrize mutations so CC stays well-defined.
			var symBatch graph.Batch
			for _, e := range batch.Add {
				symBatch.Add = append(symBatch.Add, e, graph.Edge{From: e.To, To: e.From, Weight: e.Weight})
			}
			for _, e := range batch.Del {
				symBatch.Del = append(symBatch.Del, e, graph.Edge{From: e.To, To: e.From})
			}
			inc.ApplyBatch(symBatch)
			fresh := build(inc.Graph(), core.ModeReset, opts)
			fresh.Run()
			scalarsMatch(t, inc.Values(), fresh.Values(), 0, name+" refinement")
		}
	}
}

func TestRefinementWithVertexGrowth(t *testing.T) {
	g := graph.MustBuild(10, []graph.Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}})
	build := buildScalar[float64](algorithms.NewPageRank())
	opts := core.Options{MaxIterations: 10}
	inc := build(g, core.ModeGraphBolt, opts)
	inc.Run()
	inc.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 15, To: 1, Weight: 1}, {From: 2, To: 14, Weight: 1}}})
	if inc.Graph().NumVertices() != 16 {
		t.Fatalf("vertices = %d, want 16", inc.Graph().NumVertices())
	}
	fresh := build(inc.Graph(), core.ModeReset, opts)
	fresh.Run()
	scalarsMatch(t, inc.Values(), fresh.Values(), 1e-9, "vertex growth refinement")
}

func TestRefinementEmptyBatch(t *testing.T) {
	g := graph.MustBuild(20, gen.RMAT(31, 20, 60, gen.WeightUnit))
	build := buildScalar[float64](algorithms.NewPageRank())
	opts := core.Options{MaxIterations: 6}
	inc := build(g, core.ModeGraphBolt, opts)
	inc.Run()
	before := append([]float64(nil), inc.Values()...)
	inc.ApplyBatch(graph.Batch{})
	scalarsMatch(t, inc.Values(), before, 0, "empty batch must not perturb values")
}

func TestApplyBatchBeforeRun(t *testing.T) {
	g := graph.MustBuild(5, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	build := buildScalar[float64](algorithms.NewPageRank())
	opts := core.Options{MaxIterations: 5}
	inc := build(g, core.ModeGraphBolt, opts)
	inc.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 1, To: 2, Weight: 1}}})
	fresh := build(inc.Graph(), core.ModeReset, opts)
	fresh.Run()
	scalarsMatch(t, inc.Values(), fresh.Values(), 1e-12, "ApplyBatch before Run")
}

func TestNaiveModeProducesDifferentValues(t *testing.T) {
	// The premise of Table 1: naive reuse converges to S*(G^T, R_G),
	// which differs from S*(G^T, I) for Label Propagation.
	edges := gen.RMAT(28, 120, 900, gen.WeightUniform)
	g := graph.MustBuild(120, edges)
	seeds := map[core.VertexID]int{0: 0, 7: 1}
	lp := algorithms.NewLabelProp(2, seeds)
	opts := core.Options{MaxIterations: 10, Mode: core.ModeNaive}
	naive, err := core.NewEngine[[]float64, []float64](g, lp, opts)
	if err != nil {
		t.Fatal(err)
	}
	naive.Run()
	batch := makeBatch(g, 900, 60, 40)
	naive.ApplyBatch(batch)

	fresh, _ := core.NewEngine[[]float64, []float64](naive.Graph(), lp, core.Options{MaxIterations: 10, Mode: core.ModeReset})
	fresh.Run()

	diff := 0
	for v := range naive.Values() {
		for f := range naive.Values()[v] {
			if math.Abs(naive.Values()[v][f]-fresh.Values()[v][f]) > 1e-6 {
				diff++
				break
			}
		}
	}
	if diff == 0 {
		t.Fatal("naive incremental reuse unexpectedly produced exact BSP results")
	}
}

func TestGraphBoltDoesLessEdgeWorkThanReset(t *testing.T) {
	edges := gen.RMAT(29, 1024, 16384, gen.WeightUnit)
	g := graph.MustBuild(1024, edges)
	opts := core.Options{MaxIterations: 10}
	build := buildScalar[float64](algorithms.NewPageRank())

	gb := build(g, core.ModeGraphBolt, opts)
	gb.Run()
	batch := makeBatch(g, 777, 10, 5)
	gbStats, _ := gb.ApplyBatch(batch)

	reset := build(g, core.ModeReset, opts)
	reset.Run()
	resetStats, _ := reset.ApplyBatch(batch)

	if gbStats.EdgeComputations >= resetStats.EdgeComputations {
		t.Fatalf("GraphBolt edge work %d not below GB-Reset %d",
			gbStats.EdgeComputations, resetStats.EdgeComputations)
	}
	// And the results still agree.
	scalarsMatch(t, gb.Values(), reset.Values(), 1e-8, "work comparison values")
}

func TestHistoryBytesGrowWithTracking(t *testing.T) {
	g := graph.MustBuild(64, gen.RMAT(30, 64, 512, gen.WeightUnit))
	build := buildScalar[float64](algorithms.NewPageRank())
	gb := build(g, core.ModeGraphBolt, core.Options{MaxIterations: 5})
	gb.Run()
	if gb.(*core.Engine[float64, float64]).HistoryBytes() == 0 {
		t.Fatal("tracking engine reports zero history bytes")
	}
	rs := build(g, core.ModeReset, core.Options{MaxIterations: 5})
	rs.Run()
	if rs.(*core.Engine[float64, float64]).HistoryBytes() != 0 {
		t.Fatal("reset engine reports history bytes")
	}
}

func TestDisableVerticalPruningSameResults(t *testing.T) {
	edges := gen.RMAT(32, 100, 800, gen.WeightUnit)
	g := graph.MustBuild(100, edges)
	build := buildScalar[float64](algorithms.NewPageRank())

	a := build(g, core.ModeGraphBolt, core.Options{MaxIterations: 8, Horizon: 4})
	b := build(g, core.ModeGraphBolt, core.Options{MaxIterations: 8, Horizon: 4, DisableVerticalPruning: true})
	a.Run()
	b.Run()
	batch := makeBatch(g, 55, 20, 10)
	a.ApplyBatch(batch)
	b.ApplyBatch(batch)
	scalarsMatch(t, a.Values(), b.Values(), 1e-9, "vertical pruning on/off")

	ab := a.(*core.Engine[float64, float64]).HistoryBytes()
	bb := b.(*core.Engine[float64, float64]).HistoryBytes()
	if bb < ab {
		t.Fatalf("disabled vertical pruning used less memory (%d < %d)", bb, ab)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[core.Mode]string{
		core.ModeGraphBolt:   "GraphBolt",
		core.ModeGraphBoltRP: "GraphBolt-RP",
		core.ModeReset:       "GB-Reset",
		core.ModeLigra:       "Ligra",
		core.ModeNaive:       "Naive",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}
