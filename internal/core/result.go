package core

import (
	"time"

	"repro/internal/graph"
)

// ResultSnapshot is an immutable, internally consistent view of a
// completed computation: the graph generation it was computed on, the
// vertex values, the BSP level that produced them, and the engine's
// cumulative statistics at publication time.
//
// Snapshots are published atomically at the end of every successful
// Run, ApplyBatch and ReadSnapshot, exploiting the BSP guarantee
// (paper §2.2): between those calls the engine's results are exactly
// the converged values of a from-scratch run on the current graph, so
// the (graph, values, level) triple can be handed to readers as one
// consistent unit. A snapshot is never mutated after publication —
// concurrent readers may hold it indefinitely without synchronization
// while the single writer streams further batches.
//
// Values is owned by the snapshot: the engine copies the value slice at
// publication and never writes to it again. For value types containing
// references (e.g. V = []float64), the copy is shallow; this is safe
// because the engine replaces vertex values wholesale (Program.Compute
// returns a fresh value) and never mutates a value in place.
type ResultSnapshot[V any] struct {
	// Generation counts publications: 1 after the initial Run (or a
	// checkpoint restore), +1 per successfully applied batch. It orders
	// snapshots and keys Server.Wait.
	Generation uint64

	// Graph is the immutable structure snapshot the values were computed
	// on.
	Graph *graph.Graph

	// Values holds the converged vertex values; index by VertexID. Do
	// not write to it — it is shared by every reader of this generation.
	// Use CopyValues for an owned slice.
	Values []V

	// Level is the number of completed BSP iterations backing Values.
	Level int

	// Stats is the engine's cumulative work statistics when this
	// snapshot was published.
	Stats Stats

	// PublishedAt is when the snapshot became visible; read staleness is
	// measured against it.
	PublishedAt time.Time
}

// CopyValues returns a freshly allocated copy of the snapshot's value
// slice, for callers that want to retain or mutate results without
// holding the shared snapshot slice. The element copy is shallow.
func (s *ResultSnapshot[V]) CopyValues() []V {
	if s == nil {
		return nil
	}
	return append([]V(nil), s.Values...)
}

// Snapshot returns the most recently published result snapshot, or nil
// if the engine has not completed a Run, ApplyBatch or ReadSnapshot
// yet. The returned snapshot is immutable and safe to read from any
// goroutine, concurrently with the single writer applying batches —
// this is the engine's lock-free read path.
func (e *Engine[V, A]) Snapshot() *ResultSnapshot[V] {
	return e.snap.Load()
}

// publish copies the live result state into a fresh ResultSnapshot and
// swaps it in atomically. Called by the single writer at the end of
// every successful Run/ApplyBatch/ReadSnapshot; the O(V) value copy is
// what buys readers lock-free access to a stable generation.
func (e *Engine[V, A]) publish() {
	gen := uint64(1)
	if prev := e.snap.Load(); prev != nil {
		gen = prev.Generation + 1
	}
	e.publishGen(gen)
}

// publishGen publishes the live result state under an explicit
// generation number. ReadSnapshot uses it to resume the counter a
// checkpoint recorded — a checkpoint-restored engine (recovery, or a
// follower re-seeded after log compaction) continues the leader's
// generation sequence instead of restarting at 1, which is what keeps
// SnapshotAt(g) addressable by the same g on both sides of a
// replication stream. Generations skipped by a jump simply resolve as
// not retained.
func (e *Engine[V, A]) publishGen(gen uint64) {
	s := &ResultSnapshot[V]{
		Generation:  gen,
		Graph:       e.g,
		Values:      append([]V(nil), e.vals...),
		Level:       e.level,
		Stats:       e.stats,
		PublishedAt: time.Now(),
	}
	e.snap.Store(s)
	if e.ring != nil {
		e.ring.Push(s)
	}
	e.met.observeGeneration(gen)
	e.met.observeRetained(e.retainedCount(gen))
}

// retainedCount returns how many generations SnapshotAt can serve once
// gen is the newest one.
func (e *Engine[V, A]) retainedCount(gen uint64) int64 {
	k := uint64(e.retain())
	if gen < k {
		return int64(gen)
	}
	return int64(k)
}
