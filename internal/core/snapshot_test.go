package core_test

import (
	"bytes"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSnapshotRoundTripPageRank(t *testing.T) {
	g := graph.MustBuild(100, gen.RMAT(51, 100, 800, gen.WeightUniform))
	opts := core.Options{MaxIterations: 8, Horizon: 5}
	orig, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), opts)
	if err != nil {
		t.Fatal(err)
	}
	orig.Run()
	orig.ApplyBatch(makeBatch(orig.Graph(), 71, 10, 5))

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh engine (dummy initial graph — replaced).
	restored, err := core.NewEngine[float64, float64](graph.MustBuild(1, nil), algorithms.NewPageRank(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	scalarsMatch(t, restored.Values(), orig.Values(), 0, "restored values")
	if restored.Level() != orig.Level() {
		t.Fatalf("level %d vs %d", restored.Level(), orig.Level())
	}

	// Crucially: streaming must continue correctly from the restored
	// state — the history must be intact for refinement.
	batch := makeBatch(orig.Graph(), 72, 12, 6)
	orig.ApplyBatch(batch)
	restored.ApplyBatch(batch)
	scalarsMatch(t, restored.Values(), orig.Values(), 1e-12, "post-restore refinement")
}

func TestSnapshotRoundTripVectorProgram(t *testing.T) {
	g := graph.MustBuild(60, gen.RMAT(52, 60, 400, gen.WeightUniform))
	lp := algorithms.NewLabelProp(3, map[core.VertexID]int{1: 0, 7: 2})
	opts := core.Options{MaxIterations: 6}
	orig, _ := core.NewEngine[[]float64, []float64](g, lp, opts)
	orig.Run()

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _ := core.NewEngine[[]float64, []float64](graph.MustBuild(1, nil), lp, opts)
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	batch := makeBatch(orig.Graph(), 73, 8, 8)
	orig.ApplyBatch(batch)
	restored.ApplyBatch(batch)
	vectorsMatch(t, restored.Values(), orig.Values(), 1e-12, "LP post-restore")
}

func TestSnapshotOptionMismatchRejected(t *testing.T) {
	g := graph.MustBuild(10, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	a, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 5})
	a.Run()
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 9})
	if err := b.ReadSnapshot(&buf); err == nil {
		t.Fatal("mismatched options accepted")
	}
}

func TestSnapshotGarbageRejected(t *testing.T) {
	g := graph.MustBuild(2, nil)
	e, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{})
	if err := e.ReadSnapshot(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}
