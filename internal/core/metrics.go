package core

import (
	"sync/atomic"

	"repro/internal/obs"
)

// defaultMetrics is the process-wide registry used by engines whose
// Options.Metrics is nil. Off (nil) by default.
var defaultMetrics atomic.Pointer[obs.Registry]

// SetDefaultMetrics installs a registry that every subsequently
// constructed engine instruments into when its own Options.Metrics is
// nil. Pass nil to turn default instrumentation back off. Engines
// resolve the registry once, at construction.
func SetDefaultMetrics(r *obs.Registry) {
	defaultMetrics.Store(r)
}

// engineMetrics holds the engine's metric handles. The zero value (all
// nil handles) is the instrumentation-off state: every method of every
// handle no-ops on nil, so call sites stay unconditional.
type engineMetrics struct {
	runs    *obs.Counter
	batches *obs.Counter

	iterations       *obs.Counter
	refineIterations *obs.Counter
	hybridIterations *obs.Counter

	initialEdges     *obs.Counter
	refineEdges      *obs.Counter
	hybridEdges      *obs.Counter
	edgeComputations *obs.Counter
	vertexComps      *obs.Counter

	hybridSwitches *obs.Counter

	trackedSnapshots *obs.Gauge
	trackedBytes     *obs.Gauge
	generation       *obs.Gauge
	retained         *obs.Gauge

	runDuration   *obs.Histogram
	batchDuration *obs.Histogram
}

// newEngineMetrics registers (or re-resolves) the engine metric set in
// r; a nil registry yields inert zero-value metrics.
func newEngineMetrics(r *obs.Registry) engineMetrics {
	if r == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		runs: r.Counter("graphbolt_engine_runs_total",
			"Initial (or restart) computations executed."),
		batches: r.Counter("graphbolt_engine_batches_total",
			"Mutation batches applied successfully."),
		iterations: r.Counter("graphbolt_engine_iterations_total",
			"BSP iterations executed across all calls."),
		refineIterations: r.Counter("graphbolt_engine_refine_iterations_total",
			"Dependency-driven refinement iterations (paper section 3.3)."),
		hybridIterations: r.Counter("graphbolt_engine_hybrid_iterations_total",
			"Delta-BSP iterations past the pruning horizon (paper section 4.2)."),
		initialEdges: r.Counter("graphbolt_engine_initial_edge_computations_total",
			"Edge computations performed by initial runs."),
		refineEdges: r.Counter("graphbolt_engine_refine_edge_computations_total",
			"Edge computations performed by value refinement (paper section 3.3)."),
		hybridEdges: r.Counter("graphbolt_engine_hybrid_edge_computations_total",
			"Edge computations performed by hybrid execution past the horizon (paper section 4.2)."),
		edgeComputations: r.Counter("graphbolt_engine_edge_computations_total",
			"Edge computations across all phases and modes (Figure 6's unit)."),
		vertexComps: r.Counter("graphbolt_engine_vertex_computations_total",
			"Vertex Compute invocations across all calls."),
		hybridSwitches: r.Counter("graphbolt_engine_hybrid_switches_total",
			"Batches that crossed the horizon into hybrid execution."),
		trackedSnapshots: r.Gauge("graphbolt_engine_tracked_snapshots",
			"Aggregation values currently held by the dependency store (pruning effectiveness, paper section 3.2)."),
		trackedBytes: r.Gauge("graphbolt_engine_tracked_snapshot_bytes",
			"Heap bytes held by the dependency store (Table 9's metric)."),
		generation: r.Gauge("graphbolt_engine_snapshot_generation",
			"Generation of the most recently published result snapshot."),
		retained: r.Gauge("graphbolt_engine_retained_generations",
			"Published generations currently addressable via SnapshotAt."),
		runDuration: r.Histogram("graphbolt_engine_run_duration_seconds",
			"Initial-computation latency.", obs.DefTimeBuckets),
		batchDuration: r.Histogram("graphbolt_engine_batch_duration_seconds",
			"ApplyBatch latency.", obs.DefTimeBuckets),
	}
}

// RegisterMetrics pre-creates the full engine metric set in r so the
// exposition endpoint shows every series (at zero) before the first
// engine is constructed. Idempotent.
func RegisterMetrics(r *obs.Registry) {
	newEngineMetrics(r)
}

// observeRun records an initial (or restart) computation.
func (m *engineMetrics) observeRun(st Stats) {
	m.runs.Inc()
	m.iterations.Add(int64(st.Iterations))
	m.initialEdges.Add(st.EdgeComputations)
	m.edgeComputations.Add(st.EdgeComputations)
	m.vertexComps.Add(st.VertexComputations)
	m.runDuration.Observe(st.Duration.Seconds())
}

// observeBatch records a successfully applied mutation batch.
func (m *engineMetrics) observeBatch(st Stats) {
	m.batches.Inc()
	m.iterations.Add(int64(st.Iterations))
	m.refineIterations.Add(int64(st.RefineIterations))
	m.hybridIterations.Add(int64(st.HybridIterations))
	m.edgeComputations.Add(st.EdgeComputations)
	m.vertexComps.Add(st.VertexComputations)
	m.batchDuration.Observe(st.Duration.Seconds())
	if st.HybridIterations > 0 {
		m.hybridSwitches.Inc()
	}
}

// observeGeneration publishes the latest result-snapshot generation.
func (m *engineMetrics) observeGeneration(gen uint64) {
	m.generation.Set(float64(gen))
}

// observeRetained publishes how many generations the history ring holds.
func (m *engineMetrics) observeRetained(n int64) {
	m.retained.Set(float64(n))
}

// observeTracking refreshes the dependency-store gauges.
func (m *engineMetrics) observeTracking(snapshots, bytes int64) {
	m.trackedSnapshots.Set(float64(snapshots))
	m.trackedBytes.Set(float64(bytes))
}
