package core_test

import (
	"bytes"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// FuzzReadSnapshot feeds arbitrary bytes to the checkpoint parser.
// ReadSnapshot must never panic, and on any error the engine must be
// left exactly as it was — same published snapshot, same values — so a
// corrupt checkpoint on disk can never poison a live engine.
func FuzzReadSnapshot(f *testing.F) {
	mkEngine := func() *core.Engine[float64, float64] {
		g := graph.MustBuild(4, []graph.Edge{
			{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 3, Weight: 2},
		})
		eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(),
			core.Options{MaxIterations: 4})
		if err != nil {
			f.Fatal(err)
		}
		eng.Run()
		return eng
	}

	// Seed with a genuine checkpoint plus targeted corruptions of its
	// header fields, so the fuzzer starts at the interesting boundaries
	// (magic, version, CRC trailer, gob payload).
	var buf bytes.Buffer
	if err := mkEngine().WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                     // truncated trailer
	f.Add(valid[:8])                                // header only
	f.Add(append([]byte("XXSNAP01"), valid[8:]...)) // wrong magic
	verFlip := append([]byte{}, valid...)
	verFlip[9] ^= 0xff // version field
	f.Add(verFlip)
	bodyFlip := append([]byte{}, valid...)
	bodyFlip[20] ^= 0x01 // gob payload bit: CRC must catch it
	f.Add(bodyFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := mkEngine()
		before := eng.Snapshot()
		err := eng.ReadSnapshot(bytes.NewReader(data))
		after := eng.Snapshot()
		if err != nil {
			if after != before {
				t.Fatalf("failed ReadSnapshot still mutated the engine: snapshot %p -> %p", before, after)
			}
			return
		}
		// Accepted input must produce a coherent, newly published state.
		// The generation is whatever the checkpoint recorded (resumed so
		// replication parity survives a re-seed), or the local counter +1
		// for pre-Generation checkpoints — never zero.
		if after == before {
			t.Fatal("successful ReadSnapshot did not publish a new snapshot")
		}
		if after.Generation == 0 {
			t.Fatal("generation 0 after restore")
		}
		if len(after.Values) != after.Graph.NumVertices() {
			t.Fatalf("%d values for %d vertices after restore", len(after.Values), after.Graph.NumVertices())
		}
	})
}
