package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/deps"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Engine executes a Program over a streaming graph. Construct with
// NewEngine, call Run once for the initial computation, then ApplyBatch
// for every mutation batch; Values returns the current results.
//
// Concurrency: the engine is single-writer, multi-reader. Run,
// ApplyBatch and ReadSnapshot must be serialized (each call is
// internally parallel), but Snapshot, Values, CopyValues and Level are
// lock-free and safe from any goroutine at any time — they read the
// immutable ResultSnapshot the writer published last. The serve layer
// (internal/serve, graphbolt.Server) builds on exactly this split.
type Engine[V, A any] struct {
	p     Program[V, A]
	delta DeltaProgram[V, A] // nil when unsupported or in RP mode
	pull  bool
	deg   bool // contribution depends on source out-degree
	opts  Options

	g    *graph.Graph
	vals []V // c_level
	old  []V // value before the last change (delta push base), per vertex
	agg  []A // running aggregates д_level
	hist *deps.Store[A]

	locks *parallel.StripedLocks
	level int // completed BSP levels
	ran   bool

	// snap is the atomically published read view: an immutable
	// (graph, values, level) triple readers access lock-free while the
	// writer refines the live state above.
	snap atomic.Pointer[ResultSnapshot[V]]

	// ring retains the last Options.Retain published snapshots for
	// point-in-time reads (nil when retention is off).
	ring *HistoryRing[V]

	stats Stats         // cumulative
	met   engineMetrics // zero value when instrumentation is off
}

// NewEngine creates an engine over g. The graph may be nil only if a
// graph is installed before Run via ApplyBatch on an empty base.
func NewEngine[V, A any](g *graph.Graph, p Program[V, A], opts Options) (*Engine[V, A], error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if p == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	opts = opts.withDefaults()
	e := &Engine[V, A]{
		p:     p,
		pull:  isPull(p),
		deg:   usesOutDegree(p),
		opts:  opts,
		g:     g,
		locks: parallel.NewStripedLocks(),
	}
	if d, ok := any(p).(DeltaProgram[V, A]); ok && opts.Mode != ModeGraphBoltRP {
		e.delta = d
	}
	if opts.Retain > 1 {
		e.ring = NewHistoryRing[V](opts.Retain)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = defaultMetrics.Load()
	}
	e.met = newEngineMetrics(reg)
	return e, nil
}

// SpawnForGraph creates a fresh engine over g with this engine's
// program and options — the same algorithm, mode, iteration budget and
// retention depth, but independent state. The partition layer uses it
// to turn one configured engine into N per-shard engines, each over its
// shard's edge subset. The new engine has not run yet.
func (e *Engine[V, A]) SpawnForGraph(g *graph.Graph) (*Engine[V, A], error) {
	return NewEngine(g, e.p, e.opts)
}

// RetainDepth returns the number of published generations the engine
// keeps addressable via SnapshotAt (1 when retention is off).
func (e *Engine[V, A]) RetainDepth() int { return e.retain() }

// Program returns the program the engine executes.
func (e *Engine[V, A]) Program() Program[V, A] { return e.p }

// Graph returns the graph of the published snapshot (the live graph
// from the writer's perspective; for lock-free reads concurrent with
// ApplyBatch, prefer Snapshot, which pairs the graph with its values).
func (e *Engine[V, A]) Graph() *graph.Graph {
	if s := e.snap.Load(); s != nil {
		return s.Graph
	}
	return e.g
}

// Values returns the vertex values of the most recently published
// result snapshot (nil before the first Run). The slice is owned by
// that snapshot and never mutated afterwards, so it is safe to read
// from any goroutine — but it is shared by every reader of the same
// generation: treat it as read-only, or use CopyValues for an owned
// slice.
func (e *Engine[V, A]) Values() []V {
	if s := e.snap.Load(); s != nil {
		return s.Values
	}
	return nil
}

// CopyValues returns a freshly allocated copy of the published
// snapshot's values (nil before the first Run), for callers that want
// to retain or mutate results independently of the engine.
func (e *Engine[V, A]) CopyValues() []V { return e.snap.Load().CopyValues() }

// Level returns the number of completed BSP iterations backing Values.
func (e *Engine[V, A]) Level() int {
	if s := e.snap.Load(); s != nil {
		return s.Level
	}
	return 0
}

// TotalStats returns cumulative work statistics across all calls.
func (e *Engine[V, A]) TotalStats() Stats { return e.stats }

// HistoryBytes reports the dependency store's heap footprint (0 for
// modes that do not track dependencies).
func (e *Engine[V, A]) HistoryBytes() int64 {
	if e.hist == nil {
		return 0
	}
	return e.hist.HeapBytes()
}

func (e *Engine[V, A]) tracking() bool {
	return e.opts.Mode == ModeGraphBolt || e.opts.Mode == ModeGraphBoltRP
}

// Run executes the initial computation from scratch (also used by the
// restart modes after a mutation). Subsequent calls restart.
func (e *Engine[V, A]) Run() Stats {
	sp := e.opts.Tracer.StartPhase("run")
	start := time.Now()
	var st Stats
	e.resetState()
	if e.opts.Mode == ModeLigra {
		st = e.runLigra()
	} else {
		st = e.runDelta(1, nil, e.opts.MaxIterations)
	}
	e.ran = true
	st.Duration = time.Since(start)
	st.TrackedSnapshotBytes = e.HistoryBytes()
	e.stats.Add(st)
	e.met.observeRun(st)
	e.refreshTrackingMetrics()
	e.publish()
	sp.End()
	return st
}

// refreshTrackingMetrics publishes the dependency store's current size
// to the tracked-snapshot gauges.
func (e *Engine[V, A]) refreshTrackingMetrics() {
	if e.met.trackedSnapshots == nil {
		return
	}
	if e.hist == nil {
		e.met.observeTracking(0, 0)
		return
	}
	e.met.observeTracking(e.hist.Entries(), e.hist.HeapBytes())
}

// resetState reinitializes values, aggregates and history for the
// current graph.
func (e *Engine[V, A]) resetState() {
	n := e.g.NumVertices()
	e.vals = make([]V, n)
	e.old = make([]V, n)
	for v := 0; v < n; v++ {
		e.vals[v] = e.p.InitValue(VertexID(v))
	}
	e.agg = make([]A, n)
	for v := range e.agg {
		e.agg[v] = e.p.IdentityAgg()
	}
	if e.tracking() {
		e.resetHistory()
	} else {
		e.hist = nil
	}
	e.level = 0
}

// resetHistory installs an empty dependency store sized for the current
// graph.
func (e *Engine[V, A]) resetHistory() {
	e.hist = deps.New[A](e.g.NumVertices(), e.opts.Horizon,
		e.p.CloneAgg,
		e.p.AggBytes,
		e.p.IdentityAgg,
	)
}

// grow extends engine state to n vertices (mutations can add vertices).
func (e *Engine[V, A]) grow(n int) {
	for v := len(e.vals); v < n; v++ {
		e.vals = append(e.vals, e.p.InitValue(VertexID(v)))
		e.old = append(e.old, e.p.InitValue(VertexID(v)))
		e.agg = append(e.agg, e.p.IdentityAgg())
	}
	if e.hist != nil {
		e.hist.Grow(n)
	}
}

// valueAt reconstructs the value of v at the given level from the
// dependency store: level 0 is the initial value; otherwise ∮ of the
// stored aggregate (identity when the vertex has no history). Only valid
// in tracking modes.
func (e *Engine[V, A]) valueAt(v VertexID, level int) V {
	if level <= 0 {
		return e.p.InitValue(v)
	}
	a, ok := e.hist.Lookup(v, level)
	if !ok {
		a = e.p.IdentityAgg()
	}
	return e.p.Compute(v, a)
}

// runDelta executes delta-based BSP levels starting at fromLevel until
// the frontier empties or MaxIterations is reached. For fromLevel == 1,
// seed must be nil: every vertex contributes fully and every vertex
// computes. For fromLevel > 1 (hybrid continuation), seed holds the
// vertices whose value changed between levels fromLevel-2 and
// fromLevel-1, with e.old holding the earlier value.
func (e *Engine[V, A]) runDelta(fromLevel int, seed *frontier.Frontier, maxLevel int) Stats {
	var st Stats
	n := e.g.NumVertices()
	edgeWork := parallel.NewCounter()
	vertWork := parallel.NewCounter()

	front := seed
	for level := fromLevel; level <= maxLevel; level++ {
		first := level == 1
		if !first && (front == nil || front.IsEmpty()) {
			break
		}
		touched := bitset.New(n)

		if e.pull {
			e.pullLevel(first, front, touched, edgeWork)
		} else if first {
			// Level 1: full contributions from every vertex.
			parallel.ForWorker(n, 64, func(worker, startV, endV int) {
				var cnt int64
				for u := startV; u < endV; u++ {
					uid := VertexID(u)
					ts, ws := e.g.OutNeighbors(uid)
					deg := len(ts)
					src := e.vals[u]
					for i, t := range ts {
						e.locks.Lock(t)
						e.p.Propagate(&e.agg[t], src, uid, t, ws[i], deg)
						e.locks.Unlock(t)
						touched.Set(t)
					}
					cnt += int64(deg)
				}
				edgeWork.Add(worker, cnt)
			})
		} else {
			verts := front.Vertices()
			parallel.ForWorker(len(verts), 16, func(worker, startV, endV int) {
				var cnt int64
				for k := startV; k < endV; k++ {
					uid := verts[k]
					ts, ws := e.g.OutNeighbors(uid)
					deg := len(ts)
					oldSrc, newSrc := e.old[uid], e.vals[uid]
					for i, t := range ts {
						e.locks.Lock(t)
						if e.delta != nil {
							e.delta.PropagateDelta(&e.agg[t], oldSrc, newSrc, uid, t, ws[i], deg, deg)
							cnt++
						} else {
							e.p.Retract(&e.agg[t], oldSrc, uid, t, ws[i], deg)
							e.p.Propagate(&e.agg[t], newSrc, uid, t, ws[i], deg)
							cnt += 2
						}
						e.locks.Unlock(t)
						touched.Set(t)
					}
				}
				edgeWork.Add(worker, cnt)
			})
		}

		// Compute phase: level 1 computes every vertex (c_1 = ∮(д_1)
		// differs from c_0 in general); later levels only touched ones.
		next := frontier.New(n)
		computeOne := func(v VertexID, wasTouched bool) {
			nv := e.p.Compute(v, e.agg[v])
			if wasTouched && e.tracking() {
				e.hist.Append(v, level, e.agg[v])
			}
			if e.p.Changed(e.vals[v], nv) {
				e.old[v] = e.vals[v]
				e.vals[v] = nv
				next.AddAtomic(v)
			}
		}
		if first {
			parallel.ForWorker(n, 256, func(worker, startV, endV int) {
				for v := startV; v < endV; v++ {
					computeOne(VertexID(v), touched.Get(VertexID(v)))
				}
				vertWork.Add(worker, int64(endV-startV))
			})
			if e.tracking() && e.opts.DisableVerticalPruning {
				e.snapshotAll(level)
			}
		} else {
			members := touched.Members(nil)
			parallel.ForWorker(len(members), 64, func(worker, startV, endV int) {
				for k := startV; k < endV; k++ {
					computeOne(members[k], true)
				}
				vertWork.Add(worker, int64(endV-startV))
			})
			if e.tracking() && e.opts.DisableVerticalPruning {
				e.snapshotAll(level)
			}
		}
		front = next
		e.level = level
		st.Iterations++
	}

	st.EdgeComputations = edgeWork.Sum()
	st.VertexComputations = vertWork.Sum()
	return st
}

// snapshotAll stores every vertex's aggregate at the level (vertical
// pruning disabled: per-iteration allocations across all vertices, §4.1).
func (e *Engine[V, A]) snapshotAll(level int) {
	if level > e.hist.Horizon() {
		return
	}
	for v := range e.agg {
		e.hist.Append(VertexID(v), level, e.agg[v])
	}
}

// pullLevel re-aggregates affected vertices by pulling their full
// in-neighborhood — the re-evaluation strategy for non-decomposable
// aggregations (§3.3). On the first level every vertex pulls; afterwards
// only out-neighbors of the frontier.
func (e *Engine[V, A]) pullLevel(first bool, front *frontier.Frontier, touched *bitset.Bitset, edgeWork *parallel.Counter) {
	n := e.g.NumVertices()
	var affected []VertexID
	if first {
		affected = make([]VertexID, n)
		for v := range affected {
			affected[v] = VertexID(v)
		}
	} else {
		seen := bitset.New(n)
		for _, u := range front.Vertices() {
			ts, _ := e.g.OutNeighbors(u)
			for _, t := range ts {
				seen.Set(t)
			}
		}
		affected = seen.Members(nil)
	}
	parallel.ForWorker(len(affected), 64, func(worker, startV, endV int) {
		var cnt int64
		for k := startV; k < endV; k++ {
			v := affected[k]
			na := e.p.IdentityAgg()
			us, ws := e.g.InNeighbors(v)
			for i, u := range us {
				e.p.Propagate(&na, e.vals[u], u, v, ws[i], e.g.OutDegree(u))
			}
			cnt += int64(len(us))
			e.agg[v] = na
			if len(us) > 0 {
				touched.Set(v)
			}
		}
		edgeWork.Add(worker, cnt)
	})
}

// runLigra performs full synchronous recomputation: every level
// re-aggregates every vertex over all in-edges (no selective
// scheduling), stopping at MaxIterations or when no value changes.
func (e *Engine[V, A]) runLigra() Stats {
	var st Stats
	n := e.g.NumVertices()
	edgeWork := parallel.NewCounter()
	prev := make([]V, n)
	for level := 1; level <= e.opts.MaxIterations; level++ {
		copy(prev, e.vals)
		anyChanged := parallel.NewCounter()
		parallel.ForWorker(n, 64, func(worker, startV, endV int) {
			var cnt int64
			for v := startV; v < endV; v++ {
				vid := VertexID(v)
				na := e.p.IdentityAgg()
				us, ws := e.g.InNeighbors(vid)
				for i, u := range us {
					e.p.Propagate(&na, prev[u], u, vid, ws[i], e.g.OutDegree(u))
				}
				cnt += int64(len(us))
				e.agg[v] = na
				nv := e.p.Compute(vid, na)
				if e.p.Changed(prev[v], nv) {
					anyChanged.Add(worker, 1)
				}
				e.vals[v] = nv
			}
			edgeWork.Add(worker, cnt)
		})
		st.Iterations++
		st.VertexComputations += int64(n)
		e.level = level
		if anyChanged.Sum() == 0 {
			break
		}
	}
	st.EdgeComputations = edgeWork.Sum()
	return st
}

// ValueAtLevel reconstructs the value a vertex held at the end of the
// given BSP iteration from the dependency store (tracking modes only;
// level 0 returns the initial value). Useful for inspecting the tracked
// trajectory and for tests.
func (e *Engine[V, A]) ValueAtLevel(v VertexID, level int) V {
	return e.valueAt(v, level)
}
