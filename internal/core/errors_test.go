package core_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func pagerankEngine(t *testing.T, n, m int) *core.Engine[float64, float64] {
	t.Helper()
	g := graph.MustBuild(n, gen.RMAT(7, n, m, gen.WeightUniform))
	e, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestApplyBatchRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		b    graph.Batch
	}{
		{"nan weight", graph.Batch{Add: []graph.Edge{{From: 0, To: 1, Weight: math.NaN()}}}},
		{"inf weight", graph.Batch{Add: []graph.Edge{{From: 0, To: 1, Weight: math.Inf(-1)}}}},
		{"id above cap", graph.Batch{Add: []graph.Edge{{From: graph.MaxVertexID + 1, To: 0, Weight: 1}}}},
		{"bad delete id", graph.Batch{Del: []graph.Edge{{From: 0, To: graph.MaxVertexID + 9}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := pagerankEngine(t, 50, 300)
			e.Run()
			before := append([]float64(nil), e.Values()...)
			level := e.Level()
			_, err := e.ApplyBatch(tc.b)
			if err == nil {
				t.Fatal("malformed batch accepted")
			}
			if !errors.Is(err, graph.ErrInvalidEdge) {
				t.Fatalf("err = %v, want errors.Is(..., graph.ErrInvalidEdge)", err)
			}
			// Rejection must happen before any state changes.
			if e.Level() != level {
				t.Fatalf("level moved from %d to %d on a rejected batch", level, e.Level())
			}
			scalarsMatch(t, e.Values(), before, 0, "values after rejected batch")
		})
	}
}

// panicProgram wraps PageRank with a Compute that panics on one vertex,
// standing in for a buggy user-supplied vertex function in a serving
// process.
type panicProgram struct {
	inner core.Program[float64, float64]
	bad   core.VertexID
}

func (p *panicProgram) InitValue(v core.VertexID) float64 { return p.inner.InitValue(v) }
func (p *panicProgram) IdentityAgg() float64              { return p.inner.IdentityAgg() }
func (p *panicProgram) Propagate(agg *float64, src float64, u, v core.VertexID, w float64, d int) {
	p.inner.Propagate(agg, src, u, v, w, d)
}
func (p *panicProgram) Retract(agg *float64, src float64, u, v core.VertexID, w float64, d int) {
	p.inner.Retract(agg, src, u, v, w, d)
}
func (p *panicProgram) Compute(v core.VertexID, agg float64) float64 {
	if v == p.bad {
		panic("vertex function bug")
	}
	return p.inner.Compute(v, agg)
}
func (p *panicProgram) Changed(oldV, newV float64) bool { return p.inner.Changed(oldV, newV) }
func (p *panicProgram) CloneAgg(a float64) float64      { return a }
func (p *panicProgram) AggBytes(a float64) int          { return p.inner.AggBytes(a) }

func TestApplyBatchRecoversProgramPanic(t *testing.T) {
	g := graph.MustBuild(200, gen.RMAT(9, 200, 1200, gen.WeightUniform))
	// The bad vertex only exists after the batch grows the graph, so the
	// initial run succeeds and the panic fires during ApplyBatch.
	p := &panicProgram{inner: algorithms.NewPageRank(), bad: 200}
	e, err := core.NewEngine[float64, float64](g, p, core.Options{MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	_, err = e.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 0, To: 200, Weight: 1}}})
	if err == nil {
		t.Fatal("panicking program did not surface an error")
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T (%v) does not wrap *parallel.PanicError", err, err)
	}
}

func validSnapshot(t *testing.T) []byte {
	t.Helper()
	e := pagerankEngine(t, 80, 500)
	e.Run()
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readInto(t *testing.T, data []byte) error {
	t.Helper()
	e, err := core.NewEngine[float64, float64](graph.MustBuild(1, nil), algorithms.NewPageRank(), core.Options{MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	return e.ReadSnapshot(bytes.NewReader(data))
}

// fixCRC recomputes the trailing CRC32C so tests can tamper with the
// body while keeping the frame "intact" (to reach version checks).
func fixCRC(data []byte) {
	sum := crc32.Checksum(data[:len(data)-4], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
}

func TestReadSnapshotCorruptionDetected(t *testing.T) {
	snap := validSnapshot(t)

	t.Run("zero length", func(t *testing.T) {
		if err := readInto(t, nil); !errors.Is(err, core.ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := readInto(t, snap[:len(snap)/2]); !errors.Is(err, core.ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[0] ^= 0xFF
		if err := readInto(t, bad); !errors.Is(err, core.ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("bit flip in payload", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[len(bad)/2] ^= 0x10
		if err := readInto(t, bad); !errors.Is(err, core.ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		binary.LittleEndian.PutUint32(bad[8:12], 9999)
		fixCRC(bad)
		err := readInto(t, bad)
		if !errors.Is(err, core.ErrSnapshotVersion) {
			t.Fatalf("err = %v, want ErrSnapshotVersion", err)
		}
		if errors.Is(err, core.ErrSnapshotCorrupt) {
			t.Fatalf("version mismatch also reported as corruption: %v", err)
		}
	})
}
