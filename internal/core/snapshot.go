package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/graph"
)

// Snapshot wire format: an 8-byte magic, a little-endian uint32 format
// version, the gob-encoded engine state, and a trailing little-endian
// CRC32C covering everything before it. The trailer turns silent disk
// corruption and torn checkpoint writes into typed errors instead of
// undefined gob-decode behavior.
const snapshotVersion = 2

var snapshotMagic = [8]byte{'G', 'B', 'S', 'N', 'A', 'P', '0', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrSnapshotCorrupt reports a checkpoint that cannot be trusted: too
// short, bad magic, CRC mismatch, undecodable payload, or internally
// inconsistent state. Callers should fall back to recomputing from the
// base graph rather than loading it.
var ErrSnapshotCorrupt = errors.New("core: snapshot corrupt")

// ErrSnapshotVersion reports a structurally sound checkpoint written by
// an incompatible format version.
var ErrSnapshotVersion = errors.New("core: snapshot version mismatch")

// snapshotOptions are the Options fields that define execution
// semantics — what checkpoints store and compare. Instrumentation hooks
// (Metrics, Tracer) are runtime wiring: gob cannot encode them and a
// restored engine keeps its own. Field names match Options so old
// checkpoints decode unchanged.
type snapshotOptions struct {
	Mode                   Mode
	MaxIterations          int
	Horizon                int
	DisableVerticalPruning bool
}

func toSnapshotOptions(o Options) snapshotOptions {
	return snapshotOptions{
		Mode:                   o.Mode,
		MaxIterations:          o.MaxIterations,
		Horizon:                o.Horizon,
		DisableVerticalPruning: o.DisableVerticalPruning,
	}
}

// engineState is the gob-serialized checkpoint. Value and aggregate
// types must be gob-encodable (true for all shipped algorithms: floats,
// float slices, exported structs).
type engineState[V, A any] struct {
	Options snapshotOptions

	Vertices int
	Edges    []graph.Edge

	Vals  []V
	Old   []V
	Agg   []A
	Hist  [][]A
	Level int
	Ran   bool
	Stats Stats

	// Generation is the published snapshot generation at checkpoint
	// time, so a restore resumes the generation counter instead of
	// restarting at 1 — replication parity (follower SnapshotAt(g) ==
	// leader SnapshotAt(g)) depends on generations surviving a
	// checkpoint-shipped re-seed. Zero in checkpoints written before
	// this field existed (gob leaves absent fields zero); ReadSnapshot
	// then falls back to the local counter.
	Generation uint64
}

// WriteSnapshot checkpoints the engine — graph structure, current
// values, running aggregates and the full dependency store — so a
// process restart can resume streaming without recomputing the initial
// run. The program itself is code, not state: the restoring side builds
// an engine with the same program and calls ReadSnapshot.
//
// The stream is framed with a magic/version header and a CRC32C
// trailer; ReadSnapshot verifies both.
func (e *Engine[V, A]) WriteSnapshot(w io.Writer) error {
	st := engineState[V, A]{
		Options:  toSnapshotOptions(e.opts),
		Vertices: e.g.NumVertices(),
		Edges:    e.g.Edges(nil),
		Vals:     e.vals,
		Old:      e.old,
		Agg:      e.agg,
		Level:    e.level,
		Ran:      e.ran,
		Stats:    e.stats,
	}
	if s := e.snap.Load(); s != nil {
		st.Generation = s.Generation
	}
	if e.hist != nil {
		st.Hist = e.hist.Export()
	}
	h := crc32.New(crcTable)
	mw := io.MultiWriter(w, h)
	if _, err := mw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], snapshotVersion)
	if _, err := mw.Write(ver[:]); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	if err := gob.NewEncoder(mw).Encode(&st); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("core: write snapshot trailer: %w", err)
	}
	return nil
}

// ReadSnapshot restores a checkpoint written by WriteSnapshot into this
// engine, replacing its graph and state. The engine must have been
// constructed with the same program and compatible options (mode,
// iteration budget and pruning settings are checked; a mismatch would
// silently corrupt refinement semantics otherwise).
//
// It consumes r to EOF. Truncated, corrupted or zero-length input fails
// with an error wrapping ErrSnapshotCorrupt; a well-formed snapshot
// from a different format version fails with ErrSnapshotVersion. In
// both cases the engine is left unmodified.
func (e *Engine[V, A]) ReadSnapshot(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: read: %v", ErrSnapshotCorrupt, err)
	}
	const header = len(snapshotMagic) + 4
	if len(data) < header+4 {
		return fmt.Errorf("%w: %d bytes is shorter than the minimal frame", ErrSnapshotCorrupt, len(data))
	}
	if !bytes.Equal(data[:len(snapshotMagic)], snapshotMagic[:]) {
		return fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, data[:len(snapshotMagic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(trailer); got != want {
		return fmt.Errorf("%w: CRC32C %08x, trailer says %08x", ErrSnapshotCorrupt, got, want)
	}
	if v := binary.LittleEndian.Uint32(data[len(snapshotMagic):header]); v != snapshotVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrSnapshotVersion, v, snapshotVersion)
	}
	var st engineState[V, A]
	if err := gob.NewDecoder(bytes.NewReader(body[header:])).Decode(&st); err != nil {
		return fmt.Errorf("%w: decode: %v", ErrSnapshotCorrupt, err)
	}
	if st.Options != toSnapshotOptions(e.opts) {
		return fmt.Errorf("core: snapshot options %+v do not match engine options %+v", st.Options, toSnapshotOptions(e.opts))
	}
	g, err := graph.Build(st.Vertices, st.Edges)
	if err != nil {
		return fmt.Errorf("%w: rebuild snapshot graph: %v", ErrSnapshotCorrupt, err)
	}
	if len(st.Vals) != st.Vertices || len(st.Agg) != st.Vertices || len(st.Old) != st.Vertices {
		return fmt.Errorf("%w: arrays sized %d/%d/%d for %d vertices",
			ErrSnapshotCorrupt, len(st.Vals), len(st.Agg), len(st.Old), st.Vertices)
	}
	e.g = g
	e.vals = st.Vals
	e.old = st.Old
	e.agg = st.Agg
	e.level = st.Level
	e.ran = st.Ran
	e.stats = st.Stats
	if e.tracking() {
		e.resetHistory()
		if st.Hist != nil {
			e.hist.Import(st.Hist)
			e.hist.Grow(st.Vertices)
		}
	}
	if st.Generation > 0 {
		e.publishGen(st.Generation)
	} else {
		e.publish()
	}
	return nil
}
