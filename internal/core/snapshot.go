package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/graph"
)

// snapshotVersion guards the checkpoint wire format.
const snapshotVersion = 1

// engineState is the gob-serialized checkpoint. Value and aggregate
// types must be gob-encodable (true for all shipped algorithms: floats,
// float slices, exported structs).
type engineState[V, A any] struct {
	Version int
	Options Options

	Vertices int
	Edges    []graph.Edge

	Vals  []V
	Old   []V
	Agg   []A
	Hist  [][]A
	Level int
	Ran   bool
	Stats Stats
}

// WriteSnapshot checkpoints the engine — graph structure, current
// values, running aggregates and the full dependency store — so a
// process restart can resume streaming without recomputing the initial
// run. The program itself is code, not state: the restoring side builds
// an engine with the same program and calls ReadSnapshot.
func (e *Engine[V, A]) WriteSnapshot(w io.Writer) error {
	st := engineState[V, A]{
		Version:  snapshotVersion,
		Options:  e.opts,
		Vertices: e.g.NumVertices(),
		Edges:    e.g.Edges(nil),
		Vals:     e.vals,
		Old:      e.old,
		Agg:      e.agg,
		Level:    e.level,
		Ran:      e.ran,
		Stats:    e.stats,
	}
	if e.hist != nil {
		st.Hist = e.hist.Export()
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot restores a checkpoint written by WriteSnapshot into this
// engine, replacing its graph and state. The engine must have been
// constructed with the same program and compatible options (mode,
// iteration budget and pruning settings are checked; a mismatch would
// silently corrupt refinement semantics otherwise).
func (e *Engine[V, A]) ReadSnapshot(r io.Reader) error {
	var st engineState[V, A]
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	if st.Version != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", st.Version, snapshotVersion)
	}
	if st.Options != e.opts {
		return fmt.Errorf("core: snapshot options %+v do not match engine options %+v", st.Options, e.opts)
	}
	g, err := graph.Build(st.Vertices, st.Edges)
	if err != nil {
		return fmt.Errorf("core: rebuild snapshot graph: %w", err)
	}
	if len(st.Vals) != st.Vertices || len(st.Agg) != st.Vertices || len(st.Old) != st.Vertices {
		return fmt.Errorf("core: snapshot arrays sized %d/%d/%d for %d vertices",
			len(st.Vals), len(st.Agg), len(st.Old), st.Vertices)
	}
	e.g = g
	e.vals = st.Vals
	e.old = st.Old
	e.agg = st.Agg
	e.level = st.Level
	e.ran = st.Ran
	e.stats = st.Stats
	if e.tracking() {
		e.resetHistory()
		if st.Hist != nil {
			e.hist.Import(st.Hist)
			e.hist.Grow(st.Vertices)
		}
	}
	return nil
}
