package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// MultiView merges the published snapshots of N per-shard engines into
// one composite read view with the exact semantics of a single engine's
// snapshot stream: Snapshot, SnapshotAt, RetainedGenerations, Wait (via
// Generation ordering) and DiffSnapshots all behave as if one engine
// had applied the merged mutation stream.
//
// The partition router owns publication: after a barrier-consistent set
// of per-shard applies (no multi-shard batch partially applied), it
// calls PublishMerged with the union graph and the per-shard snapshot
// vector. Each merged snapshot copies every vertex's value from its
// owning shard, so readers see one flat value slice — the same shape a
// single engine publishes — and may hold it indefinitely.
//
// Concurrency mirrors the engine: PublishMerged is single-writer (the
// router's publisher goroutine); every read accessor is lock-free.
type MultiView[V, A any] struct {
	engines []*Engine[V, A]
	owner   func(graph.VertexID) int
	retain  int

	snap atomic.Pointer[ResultSnapshot[V]]
	ring *HistoryRing[V] // nil when retain <= 1
}

// NewMultiView builds a merged view over the per-shard engines. owner
// maps a vertex to the index of the engine that computes its value;
// retain is the history depth for SnapshotAt (values <= 1 keep only the
// newest generation addressable, matching Options.Retain semantics).
func NewMultiView[V, A any](engines []*Engine[V, A], owner func(graph.VertexID) int, retain int) (*MultiView[V, A], error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("core: multiview needs at least one engine")
	}
	if owner == nil {
		return nil, fmt.Errorf("core: multiview needs an owner function")
	}
	if retain < 1 {
		retain = 1
	}
	m := &MultiView[V, A]{engines: engines, owner: owner, retain: retain}
	if retain > 1 {
		m.ring = NewHistoryRing[V](retain)
	}
	return m, nil
}

// PublishMerged assembles and publishes the next composite snapshot:
// union is the merged graph covering every shard's edges, parts the
// per-shard snapshots forming a barrier-consistent generation vector
// (parts[s] from engines[s]; every multi-shard batch either fully
// reflected or fully absent). Vertex v's value comes from its owning
// shard; a vertex the owner's engine has not grown to yet (under a
// partition-closed stream such a vertex has no edges anywhere) takes
// Compute(v, IdentityAgg()) — the fixed point a from-scratch run
// assigns to an in-edge-less vertex after its first iteration, which
// InitValue alone does not always equal (PageRank: 1 vs 0.15). Level
// is the deepest shard level, Stats the sum of shard stats. Single
// writer only.
func (m *MultiView[V, A]) PublishMerged(union *graph.Graph, parts []*ResultSnapshot[V]) *ResultSnapshot[V] {
	gen := uint64(1)
	if prev := m.snap.Load(); prev != nil {
		gen = prev.Generation + 1
	}
	n := union.NumVertices()
	p := m.engines[0].p
	vals := make([]V, n)
	level := 0
	var stats Stats
	for v := 0; v < n; v++ {
		part := parts[m.owner(graph.VertexID(v))]
		if part != nil && v < len(part.Values) {
			vals[v] = part.Values[v]
		} else {
			vals[v] = p.Compute(graph.VertexID(v), p.IdentityAgg())
		}
	}
	for _, part := range parts {
		if part == nil {
			continue
		}
		if part.Level > level {
			level = part.Level
		}
		stats.Add(part.Stats)
	}
	s := &ResultSnapshot[V]{
		Generation:  gen,
		Graph:       union,
		Values:      vals,
		Level:       level,
		Stats:       stats,
		PublishedAt: time.Now(),
	}
	m.snap.Store(s)
	if m.ring != nil {
		m.ring.Push(s)
	}
	return s
}

// Snapshot returns the most recently published merged snapshot, nil
// before the first PublishMerged. Lock-free.
func (m *MultiView[V, A]) Snapshot() *ResultSnapshot[V] { return m.snap.Load() }

// SnapshotAt returns the retained merged snapshot for exactly
// generation gen, with the same semantics and error cases as
// Engine.SnapshotAt.
func (m *MultiView[V, A]) SnapshotAt(gen uint64) (*ResultSnapshot[V], error) {
	return snapshotAtIn(m.snap.Load(), m.ring, m.retain, gen)
}

// RetainedGenerations returns the inclusive generation window
// SnapshotAt can currently serve; (0, 0) before the first publication.
func (m *MultiView[V, A]) RetainedGenerations() (oldest, newest uint64) {
	cur := m.snap.Load()
	if cur == nil {
		return 0, 0
	}
	newest = cur.Generation
	oldest = 1
	if k := uint64(m.retain); newest > k {
		oldest = newest - k + 1
	}
	return oldest, newest
}

// DiffSnapshots compares two retained merged generations under the
// program's Changed predicate, exactly like Engine.DiffSnapshots.
func (m *MultiView[V, A]) DiffSnapshots(from, to uint64) (*SnapshotDiff[V], error) {
	fs, err := m.SnapshotAt(from)
	if err != nil {
		return nil, err
	}
	ts, err := m.SnapshotAt(to)
	if err != nil {
		return nil, err
	}
	return diffSnapshots(m.engines[0].p, fs, ts, from, to), nil
}
