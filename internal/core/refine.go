package core

import (
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// ApplyBatch applies a structural mutation batch and brings the computed
// values up to date for the new snapshot according to the engine mode:
// dependency-driven refinement (GraphBolt), restart (Ligra/GB-Reset), or
// direct value reuse (Naive). It returns the work performed by this call.
//
// The batch is validated first (graph.Batch.Validate): malformed input —
// NaN/Inf weights, vertex ids beyond graph.MaxVertexID — is rejected
// with an error before any state changes. A panic escaping the program's
// vertex functions is recovered and returned as an error (wrapping
// *parallel.PanicError with the offending vertex range); the engine's
// in-memory state is undefined afterwards and the engine must be
// discarded — a durable wrapper can reopen from its last checkpoint.
func (e *Engine[V, A]) ApplyBatch(b graph.Batch) (Stats, error) {
	if err := b.Validate(); err != nil {
		return Stats{}, fmt.Errorf("core: apply batch: %w", err)
	}
	var st Stats
	err := parallel.Catch(func() {
		sp := e.opts.Tracer.StartPhase("apply_batch")
		start := time.Now()
		oldG := e.g
		newG, res := oldG.Apply(b)

		switch {
		case !e.ran:
			// No prior run: install the new snapshot and compute fresh.
			e.g = newG
			st = e.Run()
			// Run already recorded its own duration/stats/metrics.
			sp.End()
			return
		case e.opts.Mode == ModeLigra || e.opts.Mode == ModeReset:
			e.g = newG
			e.resetState()
			if e.opts.Mode == ModeLigra {
				st = e.runLigra()
			} else {
				st = e.runDelta(1, nil, e.opts.MaxIterations)
			}
		case e.opts.Mode == ModeNaive:
			st = e.naiveContinue(oldG, newG, res)
		default: // ModeGraphBolt, ModeGraphBoltRP
			st = e.refine(oldG, newG, res)
		}
		st.Duration = time.Since(start)
		st.TrackedSnapshotBytes = e.HistoryBytes()
		e.stats.Add(st)
		e.met.observeBatch(st)
		e.refreshTrackingMetrics()
		e.publish()
		sp.End()
	})
	if err != nil {
		return Stats{}, fmt.Errorf("core: apply batch: %w", err)
	}
	return st, nil
}

// tailFix records a vertex whose history was extended by refinement: if a
// later level leaves it untouched, the stored tail must be restored so
// that past-last lookups keep returning the true stabilized aggregate.
type tailFix[A any] struct {
	v    VertexID
	tail A
}

// refine performs dependency-driven value refinement (§3.3): iterate the
// tracked levels 1..H, at each level applying the direct impact of added
// edges (⊎ with old source values), deleted edges (⋃- with old values and
// weights), and the transitive impact of changed sources (⋃△), then
// recomputing the affected vertex values. Past the horizon it switches to
// hybrid execution (§4.2): plain delta-based BSP seeded with the changed
// sets at the horizon.
func (e *Engine[V, A]) refine(oldG, newG *graph.Graph, res graph.ApplyResult) Stats {
	spRefine := e.opts.Tracer.StartPhase("refine")
	var st Stats
	e.g = newG
	n := newG.NumVertices()
	oldN := oldG.NumVertices()
	e.grow(n)

	L := e.level
	H := e.opts.Horizon
	if H > L {
		H = L
	}

	edgeWork := parallel.NewCounter()
	vertWork := parallel.NewCounter()

	oldOutDeg := func(u VertexID) int {
		if int(u) < oldN {
			return oldG.OutDegree(u)
		}
		return 0
	}

	// Vertices whose out-degree changed: for degree-normalized programs
	// their contribution over every out-edge changes at every level.
	var degChanged []VertexID
	if e.deg {
		seen := map[VertexID]struct{}{}
		for _, ed := range res.Added {
			seen[ed.From] = struct{}{}
		}
		for _, ed := range res.Deleted {
			seen[ed.From] = struct{}{}
		}
		for u := range seen {
			if oldOutDeg(u) != newG.OutDegree(u) {
				degChanged = append(degChanged, u)
			}
		}
	}

	// Rolling stash of OLD values at the previous level for vertices
	// whose history entry there was overwritten. New values never need
	// stashing: post-refinement history IS the new run.
	oldStash := make([]V, n)
	stashValid := bitset.New(n)
	nextOldStash := make([]V, n)
	nextStashValid := bitset.New(n)

	// pending maps extended vertices to their original stabilized tail
	// aggregate; it is read-only during parallel phases and mutated only
	// between levels.
	pending := make(map[VertexID]A)

	aggWork := make([]A, n)
	aggInit := bitset.New(n)

	var changedPrev []VertexID    // old-vs-new value changed at level i-1
	workers := parallel.Workers() // for per-worker extension collectors

	touched := bitset.New(n)    // targets updated at the current level
	touchedAny := bitset.New(n) // union across levels, for the hand-off

	for i := 1; i <= H; i++ {
		j := i - 1
		oldValAt := func(u VertexID) V {
			if stashValid.Get(u) {
				return oldStash[u]
			}
			return e.valueAt(u, j)
		}
		// New values at level j are simply post-refinement history.
		newValAt := func(u VertexID) V { return e.valueAt(u, j) }

		// oldAggAt returns the pre-refinement aggregate at level i.
		oldAggAt := func(t VertexID) A {
			if tail, ok := pending[t]; ok {
				return tail
			}
			a, ok := e.hist.Lookup(t, i)
			if !ok {
				a = e.p.IdentityAgg()
			}
			return a
		}

		touched.ClearAll()

		if e.pull {
			e.refinePullLevel(newG, res, changedPrev, degChanged, newValAt, touched, aggWork, edgeWork)
		} else {
			// The work aggregate for a touched target starts from the old
			// aggregate at this level; first touch initializes it under
			// the target's stripe lock.
			ensure := func(t VertexID) {
				if !aggInit.Get(t) {
					aggWork[t] = e.p.CloneAgg(oldAggAt(t))
					aggInit.Set(t)
				}
			}

			// (a) Direct impact: added edges re-propagate old source
			// values (⊎); deleted edges retract them (⋃-), both with old
			// degrees and the deleted edges' original weights.
			parallel.ForWorker(len(res.Added), 64, func(worker, s, t2 int) {
				for k := s; k < t2; k++ {
					ed := res.Added[k]
					ov := oldValAt(ed.From)
					e.locks.Lock(ed.To)
					ensure(ed.To)
					e.p.Propagate(&aggWork[ed.To], ov, ed.From, ed.To, ed.Weight, oldOutDeg(ed.From))
					e.locks.Unlock(ed.To)
					touched.Set(ed.To)
				}
				edgeWork.Add(worker, int64(t2-s))
			})
			parallel.ForWorker(len(res.Deleted), 64, func(worker, s, t2 int) {
				for k := s; k < t2; k++ {
					ed := res.Deleted[k]
					ov := oldValAt(ed.From)
					e.locks.Lock(ed.To)
					ensure(ed.To)
					e.p.Retract(&aggWork[ed.To], ov, ed.From, ed.To, ed.Weight, oldOutDeg(ed.From))
					e.locks.Unlock(ed.To)
					touched.Set(ed.To)
				}
				edgeWork.Add(worker, int64(t2-s))
			})

			// (b) Transitive impact (⋃△): sources whose value (or
			// out-degree) changed update their contribution over every
			// out-edge of the new graph.
			sources := mergeSources(n, changedPrev, degChanged)
			parallel.ForWorker(len(sources), 16, func(worker, s, t2 int) {
				var cnt int64
				for k := s; k < t2; k++ {
					u := sources[k]
					ov, nv := oldValAt(u), newValAt(u)
					odeg, ndeg := oldOutDeg(u), newG.OutDegree(u)
					ts, ws := newG.OutNeighbors(u)
					for x, tv := range ts {
						e.locks.Lock(tv)
						ensure(tv)
						if e.delta != nil {
							e.delta.PropagateDelta(&aggWork[tv], ov, nv, u, tv, ws[x], odeg, ndeg)
							cnt++
						} else {
							e.p.Retract(&aggWork[tv], ov, u, tv, ws[x], odeg)
							e.p.Propagate(&aggWork[tv], nv, u, tv, ws[x], ndeg)
							cnt += 2
						}
						e.locks.Unlock(tv)
						touched.Set(tv)
					}
				}
				edgeWork.Add(worker, cnt)
			})
		}

		// Compute phase: derive old and new values at this level, store
		// the refined aggregate, and build the next changed set.
		members := touched.Members(nil)
		nextStashValid.ClearAll()
		changedF := frontier.New(n)
		extensions := make([][]tailFix[A], workers)
		parallel.ForWorker(len(members), 64, func(worker, s, t2 int) {
			for k := s; k < t2; k++ {
				v := members[k]
				oldAgg := oldAggAt(v)
				// Refining at or past the final stored entry destroys the
				// stabilized tail that lookups beyond it rely on: remember
				// it so oldAggAt keeps answering correctly and so it can
				// be restored once the vertex goes untouched again.
				touchesTail := e.hist.Last(v) <= i
				_, hadPending := pending[v]
				oldVal := e.p.Compute(v, oldAgg)
				newVal := e.p.Compute(v, aggWork[v])
				e.hist.Append(v, i, aggWork[v])
				nextOldStash[v] = oldVal
				nextStashValid.Set(v)
				if touchesTail && !hadPending {
					extensions[worker] = append(extensions[worker], tailFix[A]{v, e.p.CloneAgg(oldAgg)})
				}
				if e.p.Changed(oldVal, newVal) {
					changedF.AddAtomic(v)
				}
			}
			vertWork.Add(worker, int64(t2-s))
		})

		// Tail restores: extended vertices left untouched at this level
		// revert to their stabilized aggregate from here on; write that
		// tail at this level and retire them.
		for v, tail := range pending {
			if !touched.Get(v) {
				e.hist.Append(v, i, tail)
				delete(pending, v)
			}
		}
		for _, list := range extensions {
			for _, fix := range list {
				pending[fix.v] = fix.tail
			}
		}

		changedPrev = changedF.Vertices()
		touchedAny.Or(touched)
		oldStash, nextOldStash = nextOldStash, oldStash
		stashValid, nextStashValid = nextStashValid, stashValid
		aggInit.ClearAll()
		st.RefineIterations++
	}

	// Hybrid execution (§4.2): materialize the refined state at level H
	// and continue plain delta-based BSP from H+1. The post-refinement
	// history *is* the new run for levels ≤ H, so the exact seed — every
	// vertex whose value changed between levels H-1 and H — falls out of
	// value reconstructions. (This subsumes the original run's
	// changed-at-horizon bit-vector and the refinement's changed sets.)
	//
	// When the horizon reaches the previous run's depth (H == L, the
	// common no-horizontal-pruning case), untouched vertices already hold
	// c_L == c^T_H in vals and д_L == д^T_H in agg, so only refined and
	// newly added vertices need refreshing — this keeps per-batch work
	// proportional to the refinement's reach instead of |V|.
	canContinue := H < e.opts.MaxIterations
	seed := frontier.New(n)
	refresh := func(v int) {
		vid := VertexID(v)
		e.vals[v] = e.valueAt(vid, H)
		a, ok := e.hist.Lookup(vid, H)
		if !ok {
			a = e.p.IdentityAgg()
		}
		e.agg[v] = e.p.CloneAgg(a)
		if canContinue {
			prev := e.valueAt(vid, H-1)
			if e.p.Changed(prev, e.vals[v]) {
				e.old[v] = prev
				seed.AddAtomic(vid)
			}
		}
	}
	if H == L {
		members := touchedAny.Members(nil)
		parallel.For(len(members), func(k int) { refresh(int(members[k])) })
		for v := oldN; v < n; v++ { // vertices added by this batch
			if !touchedAny.Get(VertexID(v)) {
				refresh(v)
			}
		}
		if canContinue {
			// Untouched vertices changed between H-1 and H in the new run
			// iff they did in the old run; the history frontier tells us
			// without recomputing values.
			parallel.For(oldN, func(v int) {
				vid := VertexID(v)
				if !touchedAny.Get(vid) && e.hist.Last(vid) == H {
					prev := e.valueAt(vid, H-1)
					if e.p.Changed(prev, e.vals[v]) {
						e.old[v] = prev
						seed.AddAtomic(vid)
					}
				}
			})
		}
	} else {
		// Horizontal pruning rewound the state to level H < L: every
		// vertex's value/aggregate must be re-materialized.
		parallel.For(n, func(v int) { refresh(v) })
	}
	e.level = H
	refineEdges := edgeWork.Sum()
	spRefine.End()
	spHybrid := e.opts.Tracer.StartPhase("hybrid")
	st2 := e.runDelta(H+1, seed, e.opts.MaxIterations)
	spHybrid.End()

	st.EdgeComputations = refineEdges + st2.EdgeComputations
	st.VertexComputations = vertWork.Sum() + st2.VertexComputations
	st.Iterations = st2.Iterations
	st.HybridIterations = st2.Iterations
	e.met.refineEdges.Add(refineEdges)
	e.met.hybridEdges.Add(st2.EdgeComputations)
	return st
}

// refinePullLevel is the non-decomposable path: affected vertices
// re-aggregate their entire in-neighborhood of the new graph using new
// source values (§3.3's re-evaluation strategy).
func (e *Engine[V, A]) refinePullLevel(
	newG *graph.Graph,
	res graph.ApplyResult,
	changedPrev, degChanged []VertexID,
	newValAt func(VertexID) V,
	touched *bitset.Bitset,
	aggWork []A,
	edgeWork *parallel.Counter,
) {
	for _, ed := range res.Added {
		touched.Set(ed.To)
	}
	for _, ed := range res.Deleted {
		touched.Set(ed.To)
	}
	mark := func(us []VertexID) {
		for _, u := range us {
			ts, _ := newG.OutNeighbors(u)
			for _, t := range ts {
				touched.Set(t)
			}
		}
	}
	mark(changedPrev)
	mark(degChanged)

	affected := touched.Members(nil)
	parallel.ForWorker(len(affected), 64, func(worker, s, t2 int) {
		var cnt int64
		for k := s; k < t2; k++ {
			v := affected[k]
			na := e.p.IdentityAgg()
			us, ws := newG.InNeighbors(v)
			for i, u := range us {
				e.p.Propagate(&na, newValAt(u), u, v, ws[i], newG.OutDegree(u))
			}
			cnt += int64(len(us))
			aggWork[v] = na
		}
		edgeWork.Add(worker, cnt)
	})
}

// mergeSources deduplicates the union of two vertex lists.
func mergeSources(n int, a, b []VertexID) []VertexID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	seen := bitset.New(n)
	out := make([]VertexID, 0, len(a)+len(b))
	for _, v := range a {
		if seen.Set(v) {
			out = append(out, v)
		}
	}
	for _, v := range b {
		if seen.Set(v) {
			out = append(out, v)
		}
	}
	return out
}

// naiveContinue is the incorrect-by-design baseline of §2.2: reuse the
// converged values directly, folding the structural change into the
// running aggregates with *current* values, then keep iterating. It
// converges to S*(G^T, R_G) rather than S*(G^T, I).
func (e *Engine[V, A]) naiveContinue(oldG, newG *graph.Graph, res graph.ApplyResult) Stats {
	e.g = newG
	n := newG.NumVertices()
	oldN := oldG.NumVertices()
	e.grow(n)

	edgeWork := parallel.NewCounter()
	touched := bitset.New(n)
	oldOutDeg := func(u VertexID) int {
		if int(u) < oldN {
			return oldG.OutDegree(u)
		}
		return 0
	}

	if e.pull {
		for _, ed := range res.Added {
			touched.Set(ed.To)
		}
		for _, ed := range res.Deleted {
			touched.Set(ed.To)
		}
		affected := touched.Members(nil)
		parallel.ForWorker(len(affected), 64, func(worker, s, t2 int) {
			var cnt int64
			for k := s; k < t2; k++ {
				v := affected[k]
				na := e.p.IdentityAgg()
				us, ws := newG.InNeighbors(v)
				for i, u := range us {
					e.p.Propagate(&na, e.vals[u], u, v, ws[i], newG.OutDegree(u))
				}
				cnt += int64(len(us))
				e.agg[v] = na
			}
			edgeWork.Add(worker, cnt)
		})
	} else {
		for _, ed := range res.Added {
			e.locks.Lock(ed.To)
			e.p.Propagate(&e.agg[ed.To], e.vals[ed.From], ed.From, ed.To, ed.Weight, newG.OutDegree(ed.From))
			e.locks.Unlock(ed.To)
			touched.Set(ed.To)
			edgeWork.Add(0, 1)
		}
		for _, ed := range res.Deleted {
			e.locks.Lock(ed.To)
			e.p.Retract(&e.agg[ed.To], e.vals[ed.From], ed.From, ed.To, ed.Weight, oldOutDeg(ed.From))
			e.locks.Unlock(ed.To)
			touched.Set(ed.To)
			edgeWork.Add(0, 1)
		}
		if e.deg {
			seen := map[VertexID]struct{}{}
			for _, ed := range res.Added {
				seen[ed.From] = struct{}{}
			}
			for _, ed := range res.Deleted {
				seen[ed.From] = struct{}{}
			}
			for u := range seen {
				odeg, ndeg := oldOutDeg(u), newG.OutDegree(u)
				if odeg == ndeg {
					continue
				}
				ts, ws := newG.OutNeighbors(u)
				for x, t := range ts {
					e.locks.Lock(t)
					if e.delta != nil {
						e.delta.PropagateDelta(&e.agg[t], e.vals[u], e.vals[u], u, t, ws[x], odeg, ndeg)
					} else {
						e.p.Retract(&e.agg[t], e.vals[u], u, t, ws[x], odeg)
						e.p.Propagate(&e.agg[t], e.vals[u], u, t, ws[x], ndeg)
					}
					e.locks.Unlock(t)
					touched.Set(t)
					edgeWork.Add(0, 1)
				}
			}
		}
	}

	seed := frontier.New(n)
	members := touched.Members(nil)
	for _, v := range members {
		nv := e.p.Compute(v, e.agg[v])
		if e.p.Changed(e.vals[v], nv) {
			e.old[v] = e.vals[v]
			e.vals[v] = nv
			seed.AddAtomic(v)
		}
	}
	st := e.runDelta(e.level+1, seed, e.level+e.opts.MaxIterations)
	st.EdgeComputations += edgeWork.Sum()
	st.VertexComputations += int64(len(members))
	return st
}
