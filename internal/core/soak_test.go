package core_test

import (
	"runtime"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

// TestSoakLongStreamPageRank drives one engine through a long mutation
// stream (the paper's §5.1 methodology: load half, stream the rest with
// deletions mixed in) and cross-checks against scratch every few
// batches. This exercises repeated refinement over the same history —
// overwrites of overwrites, tail restores of restored tails — which
// single-batch tests cannot reach.
func TestSoakLongStreamPageRank(t *testing.T) {
	edges := gen.RMAT(91, 300, 4000, gen.WeightUniform)
	s, err := stream.FromEdges(300, edges, stream.Config{
		BatchSize: 80, DeleteFraction: 0.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Batches) < 15 {
		t.Fatalf("stream too short: %d batches", len(s.Batches))
	}
	opts := core.Options{MaxIterations: 10, Horizon: 6}
	eng, err := core.NewEngine[float64, float64](s.Base, algorithms.NewPageRank(), opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for bi, b := range s.Batches {
		eng.ApplyBatch(b)
		if bi%4 != 3 {
			continue
		}
		fresh, _ := core.NewEngine[float64, float64](eng.Graph(), algorithms.NewPageRank(),
			core.Options{Mode: core.ModeReset, MaxIterations: 10})
		fresh.Run()
		scalarsMatch(t, eng.Values(), fresh.Values(), 1e-7, "soak PR")
	}
}

// TestSoakLongStreamLabelProp is the vector-aggregate analogue, with
// tolerance-gated selective scheduling layered on (approximate regime):
// results must stay within a small factor of the tolerance.
func TestSoakLongStreamLabelProp(t *testing.T) {
	edges := gen.RMAT(92, 300, 3500, gen.WeightUniform)
	s, err := stream.FromEdges(300, edges, stream.Config{
		BatchSize: 60, DeleteFraction: 0.25, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	lp := algorithms.NewLabelProp(3, map[core.VertexID]int{2: 0, 9: 1, 77: 2})
	opts := core.Options{MaxIterations: 8}
	eng, err := core.NewEngine[[]float64, []float64](s.Base, lp, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	limit := len(s.Batches)
	if limit > 12 {
		limit = 12
	}
	for bi := 0; bi < limit; bi++ {
		eng.ApplyBatch(s.Batches[bi])
		fresh, _ := core.NewEngine[[]float64, []float64](eng.Graph(), lp,
			core.Options{Mode: core.ModeReset, MaxIterations: 8})
		fresh.Run()
		vectorsMatch(t, eng.Values(), fresh.Values(), 1e-7, "soak LP")
	}
}

// TestSoakSSSPChurn alternates heavy deletion and insertion batches on a
// chain-augmented graph where path lengths swing dramatically.
func TestSoakSSSPChurn(t *testing.T) {
	var edges []graph.Edge
	edges = append(edges, gen.Chain(60, gen.WeightSmallInt)...)
	edges = append(edges, gen.RMAT(93, 60, 200, gen.WeightSmallInt)...)
	g := graph.MustBuild(60, edges)
	opts := core.Options{MaxIterations: 300, Horizon: 40}
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewSSSP(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	r := gen.NewRNG(17)
	for round := 0; round < 10; round++ {
		var b graph.Batch
		if round%2 == 0 {
			all := eng.Graph().Edges(nil)
			for i := 0; i < 20 && len(all) > 0; i++ {
				e := all[r.Intn(len(all))]
				b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
			}
		} else {
			for i := 0; i < 20; i++ {
				b.Add = append(b.Add, graph.Edge{
					From:   graph.VertexID(r.Intn(60)),
					To:     graph.VertexID(r.Intn(60)),
					Weight: float64(r.Intn(9) + 1),
				})
			}
		}
		eng.ApplyBatch(b)
		fresh, _ := core.NewEngine[float64, float64](eng.Graph(), algorithms.NewSSSP(0),
			core.Options{Mode: core.ModeReset, MaxIterations: 300})
		fresh.Run()
		scalarsMatch(t, eng.Values(), fresh.Values(), 0, "soak SSSP churn")
	}
}

// TestStatsAccumulate checks the cumulative statistics plumbing.
func TestStatsAccumulate(t *testing.T) {
	g := graph.MustBuild(50, gen.RMAT(94, 50, 300, gen.WeightUnit))
	eng, _ := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 5})
	st1 := eng.Run()
	st2, _ := eng.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 1, To: 2, Weight: 1}}})
	total := eng.TotalStats()
	if total.EdgeComputations != st1.EdgeComputations+st2.EdgeComputations {
		t.Fatalf("cumulative edges %d != %d + %d",
			total.EdgeComputations, st1.EdgeComputations, st2.EdgeComputations)
	}
	if total.Duration < st1.Duration {
		t.Fatal("cumulative duration went backwards")
	}
	var s core.Stats
	s.Add(st1)
	s.Add(st2)
	if s.EdgeComputations != total.EdgeComputations {
		t.Fatal("Stats.Add mismatch")
	}
}

// TestRefinementUnderConcurrency re-runs the PR oracle with GOMAXPROCS
// inflated so the engine's worker-spawning and striped-locking paths
// execute even on single-CPU machines.
func TestRefinementUnderConcurrency(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	edges := gen.RMAT(95, 500, 6000, gen.WeightUniform)
	g := graph.MustBuild(500, edges)
	opts := core.Options{MaxIterations: 10, Horizon: 6}
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	r := gen.NewRNG(33)
	for round := 0; round < 5; round++ {
		var b graph.Batch
		for i := 0; i < 50; i++ {
			b.Add = append(b.Add, graph.Edge{
				From:   graph.VertexID(r.Intn(500)),
				To:     graph.VertexID(r.Intn(500)),
				Weight: 1,
			})
		}
		all := eng.Graph().Edges(nil)
		for i := 0; i < 25; i++ {
			e := all[r.Intn(len(all))]
			b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
		}
		eng.ApplyBatch(b)
		fresh, _ := core.NewEngine[float64, float64](eng.Graph(), algorithms.NewPageRank(),
			core.Options{Mode: core.ModeReset, MaxIterations: 10})
		fresh.Run()
		scalarsMatch(t, eng.Values(), fresh.Values(), 1e-8, "concurrent refinement")
	}
}
