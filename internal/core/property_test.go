package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// randomGraph builds a graph with n ∈ [5, 60] vertices and a random edge
// multiset, possibly with self loops and parallel edges.
func randomGraph(r *gen.RNG) *graph.Graph {
	n := 5 + r.Intn(56)
	m := r.Intn(6 * n)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			From:   graph.VertexID(r.Intn(n)),
			To:     graph.VertexID(r.Intn(n)),
			Weight: float64(r.Intn(6) + 1),
		}
	}
	return graph.MustBuild(n, edges)
}

func randomBatch(r *gen.RNG, g *graph.Graph) graph.Batch {
	var b graph.Batch
	n := g.NumVertices()
	for i := 0; i < r.Intn(12); i++ {
		b.Add = append(b.Add, graph.Edge{
			From:   graph.VertexID(r.Intn(n + 2)),
			To:     graph.VertexID(r.Intn(n + 2)),
			Weight: float64(r.Intn(6) + 1),
		})
	}
	all := g.Edges(nil)
	for i := 0; i < r.Intn(12) && len(all) > 0; i++ {
		e := all[r.Intn(len(all))]
		b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
	}
	return b
}

// TestQuickPageRankRefinementInvariant is the Theorem 4.1 property under
// randomized graphs, batches, horizons, pruning settings and both
// GraphBolt variants: after any batch sequence, refined values must match
// a scratch run on the final snapshot.
func TestQuickPageRankRefinementInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		g := randomGraph(r)
		maxIter := 3 + r.Intn(8)
		horizon := 1 + r.Intn(maxIter)
		mode := core.ModeGraphBolt
		if r.Intn(2) == 0 {
			mode = core.ModeGraphBoltRP
		}
		opts := core.Options{
			Mode:                   mode,
			MaxIterations:          maxIter,
			Horizon:                horizon,
			DisableVerticalPruning: r.Intn(4) == 0,
		}
		inc, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), opts)
		if err != nil {
			t.Fatal(err)
		}
		inc.Run()
		nBatches := 1 + r.Intn(4)
		for b := 0; b < nBatches; b++ {
			inc.ApplyBatch(randomBatch(r, inc.Graph()))
		}
		fresh, _ := core.NewEngine[float64, float64](inc.Graph(), algorithms.NewPageRank(),
			core.Options{Mode: core.ModeReset, MaxIterations: maxIter})
		fresh.Run()
		for v := range inc.Values() {
			if !almostEqual(inc.Values()[v], fresh.Values()[v], 1e-7) {
				t.Logf("seed %d: vertex %d: %v vs %v (mode=%v maxIter=%d horizon=%d)",
					seed, v, inc.Values()[v], fresh.Values()[v], mode, maxIter, horizon)
				return false
			}
		}
		return true
	}
	f := func(seed uint64) bool { return check(seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLabelPropRefinementInvariant does the same for a vector-valued
// weighted aggregation with clamped seeds.
func TestQuickLabelPropRefinementInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		g := randomGraph(r)
		n := g.NumVertices()
		seeds := map[core.VertexID]int{}
		for i := 0; i < 1+r.Intn(4); i++ {
			seeds[graph.VertexID(r.Intn(n))] = r.Intn(3)
		}
		lp := algorithms.NewLabelProp(3, seeds)
		maxIter := 3 + r.Intn(6)
		opts := core.Options{
			MaxIterations: maxIter,
			Horizon:       1 + r.Intn(maxIter),
		}
		inc, err := core.NewEngine[[]float64, []float64](g, lp, opts)
		if err != nil {
			t.Fatal(err)
		}
		inc.Run()
		for b := 0; b < 1+r.Intn(3); b++ {
			inc.ApplyBatch(randomBatch(r, inc.Graph()))
		}
		fresh, _ := core.NewEngine[[]float64, []float64](inc.Graph(), lp,
			core.Options{Mode: core.ModeReset, MaxIterations: maxIter})
		fresh.Run()
		for v := range inc.Values() {
			for f := range inc.Values()[v] {
				if !almostEqual(inc.Values()[v][f], fresh.Values()[v][f], 1e-7) {
					t.Logf("seed %d: vertex %d[%d]: %v vs %v", seed, v, f,
						inc.Values()[v][f], fresh.Values()[v][f])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSSSPRefinementInvariant covers the non-decomposable pull path
// (exact equality: min aggregation has no float noise).
func TestQuickSSSPRefinementInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		g := randomGraph(r)
		opts := core.Options{MaxIterations: 4 * g.NumVertices(), Horizon: 2 + r.Intn(12)}
		src := graph.VertexID(r.Intn(g.NumVertices()))
		inc, err := core.NewEngine[float64, float64](g, algorithms.NewSSSP(src), opts)
		if err != nil {
			t.Fatal(err)
		}
		inc.Run()
		for b := 0; b < 1+r.Intn(3); b++ {
			inc.ApplyBatch(randomBatch(r, inc.Graph()))
		}
		fresh, _ := core.NewEngine[float64, float64](inc.Graph(), algorithms.NewSSSP(src),
			core.Options{Mode: core.ModeReset, MaxIterations: opts.MaxIterations})
		fresh.Run()
		for v := range inc.Values() {
			a, b := inc.Values()[v], fresh.Values()[v]
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Logf("seed %d: vertex %d: %v vs %v", seed, v, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoEMRefinementInvariant covers the pair-aggregate program
// whose normalizer changes structurally (⊎/⋃- touch both components).
func TestQuickCoEMRefinementInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		g := randomGraph(r)
		n := g.NumVertices()
		coem := algorithms.NewCoEM(
			[]core.VertexID{graph.VertexID(r.Intn(n))},
			[]core.VertexID{graph.VertexID(r.Intn(n))},
		)
		maxIter := 3 + r.Intn(6)
		opts := core.Options{MaxIterations: maxIter, Horizon: 1 + r.Intn(maxIter)}
		inc, err := core.NewEngine[float64, algorithms.CoEMAgg](g, coem, opts)
		if err != nil {
			t.Fatal(err)
		}
		inc.Run()
		for b := 0; b < 1+r.Intn(3); b++ {
			inc.ApplyBatch(randomBatch(r, inc.Graph()))
		}
		fresh, _ := core.NewEngine[float64, algorithms.CoEMAgg](inc.Graph(), coem,
			core.Options{Mode: core.ModeReset, MaxIterations: maxIter})
		fresh.Run()
		for v := range inc.Values() {
			if !almostEqual(inc.Values()[v], fresh.Values()[v], 1e-7) {
				t.Logf("seed %d: vertex %d: %v vs %v", seed, v, inc.Values()[v], fresh.Values()[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKatzRefinementInvariant covers a degree-insensitive plain sum.
func TestQuickKatzRefinementInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		g := randomGraph(r)
		maxIter := 3 + r.Intn(6)
		opts := core.Options{MaxIterations: maxIter, Horizon: 1 + r.Intn(maxIter)}
		inc, err := core.NewEngine[float64, float64](g, algorithms.NewKatz(), opts)
		if err != nil {
			t.Fatal(err)
		}
		inc.Run()
		for b := 0; b < 1+r.Intn(3); b++ {
			inc.ApplyBatch(randomBatch(r, inc.Graph()))
		}
		fresh, _ := core.NewEngine[float64, float64](inc.Graph(), algorithms.NewKatz(),
			core.Options{Mode: core.ModeReset, MaxIterations: maxIter})
		fresh.Run()
		for v := range inc.Values() {
			if !almostEqual(inc.Values()[v], fresh.Values()[v], 1e-8) {
				t.Logf("seed %d: vertex %d: %v vs %v", seed, v, inc.Values()[v], fresh.Values()[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCollabFilterRefinementInvariant covers the complex
// matrix-pair aggregation (higher float drift tolerance: retraction of
// outer products).
func TestQuickCollabFilterRefinementInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		g := randomGraph(r)
		cf := algorithms.NewCollabFilter(3)
		maxIter := 3 + r.Intn(4)
		opts := core.Options{MaxIterations: maxIter, Horizon: 1 + r.Intn(maxIter)}
		inc, err := core.NewEngine[[]float64, algorithms.CFAgg](g, cf, opts)
		if err != nil {
			t.Fatal(err)
		}
		inc.Run()
		for b := 0; b < 1+r.Intn(2); b++ {
			inc.ApplyBatch(randomBatch(r, inc.Graph()))
		}
		fresh, _ := core.NewEngine[[]float64, algorithms.CFAgg](inc.Graph(), cf,
			core.Options{Mode: core.ModeReset, MaxIterations: maxIter})
		fresh.Run()
		for v := range inc.Values() {
			for f := range inc.Values()[v] {
				if !almostEqual(inc.Values()[v][f], fresh.Values()[v][f], 1e-5) {
					t.Logf("seed %d: vertex %d[%d]: %v vs %v", seed, v, f,
						inc.Values()[v][f], fresh.Values()[v][f])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBeliefPropRefinementInvariant covers the product aggregation
// whose retraction is a division.
func TestQuickBeliefPropRefinementInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		g := randomGraph(r)
		bp := algorithms.NewBeliefProp(2 + r.Intn(2))
		maxIter := 3 + r.Intn(4)
		opts := core.Options{MaxIterations: maxIter, Horizon: 1 + r.Intn(maxIter)}
		inc, err := core.NewEngine[[]float64, []float64](g, bp, opts)
		if err != nil {
			t.Fatal(err)
		}
		inc.Run()
		for b := 0; b < 1+r.Intn(2); b++ {
			inc.ApplyBatch(randomBatch(r, inc.Graph()))
		}
		fresh, _ := core.NewEngine[[]float64, []float64](inc.Graph(), bp,
			core.Options{Mode: core.ModeReset, MaxIterations: maxIter})
		fresh.Run()
		for v := range inc.Values() {
			for f := range inc.Values()[v] {
				if !almostEqual(inc.Values()[v][f], fresh.Values()[v][f], 1e-5) {
					t.Logf("seed %d: vertex %d[%d]: %v vs %v", seed, v, f,
						inc.Values()[v][f], fresh.Values()[v][f])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
