package core_test

import (
	"reflect"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// TestStatsAddCoversEveryField sets every field of a Stats to a nonzero
// value, adds it into a zero Stats, and requires every field of the
// result to be nonzero. Adding a field to Stats without teaching
// Stats.Add about it fails here, not silently in aggregated totals.
func TestStatsAddCoversEveryField(t *testing.T) {
	var other core.Stats
	ov := reflect.ValueOf(&other).Elem()
	for i := 0; i < ov.NumField(); i++ {
		f := ov.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(i + 1))
		default:
			t.Fatalf("Stats field %s has kind %s; extend this test to set it",
				ov.Type().Field(i).Name, f.Kind())
		}
	}

	var sum core.Stats
	sum.Add(other)
	sv := reflect.ValueOf(sum)
	for i := 0; i < sv.NumField(); i++ {
		if sv.Field(i).IsZero() {
			t.Errorf("Stats.Add dropped field %s: still zero after adding a nonzero value",
				sv.Type().Field(i).Name)
		}
	}
}

// TestStatsAddTable pins the accumulation rule per field with explicit
// cases: work counters and Duration sum; TrackedSnapshotBytes is a
// gauge where the most recent non-zero observation wins.
func TestStatsAddTable(t *testing.T) {
	tests := []struct {
		name string
		acc  core.Stats
		add  []core.Stats
		want core.Stats
	}{
		{
			name: "work fields and duration sum",
			acc: core.Stats{
				Iterations: 1, EdgeComputations: 10, VertexComputations: 100,
				RefineIterations: 2, HybridIterations: 1, Duration: 1e9,
			},
			add: []core.Stats{{
				Iterations: 2, EdgeComputations: 20, VertexComputations: 200,
				RefineIterations: 3, HybridIterations: 2, Duration: 2e9,
			}},
			want: core.Stats{
				Iterations: 3, EdgeComputations: 30, VertexComputations: 300,
				RefineIterations: 5, HybridIterations: 3, Duration: 3e9,
			},
		},
		{
			name: "tracked bytes gauge takes the latest non-zero reading",
			acc:  core.Stats{TrackedSnapshotBytes: 512},
			add:  []core.Stats{{TrackedSnapshotBytes: 2048}, {TrackedSnapshotBytes: 1024}},
			want: core.Stats{TrackedSnapshotBytes: 1024},
		},
		{
			name: "zero gauge observation keeps the previous reading",
			acc:  core.Stats{TrackedSnapshotBytes: 512},
			add:  []core.Stats{{Iterations: 1}},
			want: core.Stats{Iterations: 1, TrackedSnapshotBytes: 512},
		},
		{
			name: "adding the zero value is a no-op",
			acc:  core.Stats{Iterations: 4, EdgeComputations: 9, TrackedSnapshotBytes: 33, Duration: 7},
			add:  []core.Stats{{}},
			want: core.Stats{Iterations: 4, EdgeComputations: 9, TrackedSnapshotBytes: 33, Duration: 7},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.acc
			for _, s := range tc.add {
				got.Add(s)
			}
			if got != tc.want {
				t.Errorf("accumulated %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestStatsAddGaugeSemantics(t *testing.T) {
	var sum core.Stats
	sum.Add(core.Stats{TrackedSnapshotBytes: 100})
	sum.Add(core.Stats{TrackedSnapshotBytes: 40})
	if sum.TrackedSnapshotBytes != 40 {
		t.Fatalf("TrackedSnapshotBytes = %d, want the latest observation 40", sum.TrackedSnapshotBytes)
	}
	sum.Add(core.Stats{}) // a call that did not sample the gauge
	if sum.TrackedSnapshotBytes != 40 {
		t.Fatalf("TrackedSnapshotBytes = %d after zero observation, want 40 retained", sum.TrackedSnapshotBytes)
	}
}

func TestParseModeRoundTrips(t *testing.T) {
	modes := []core.Mode{core.ModeGraphBolt, core.ModeGraphBoltRP, core.ModeReset, core.ModeLigra, core.ModeNaive}
	for _, m := range modes {
		got, err := core.ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	for in, want := range map[string]core.Mode{
		"graphbolt": core.ModeGraphBolt,
		"GRAPHBOLT": core.ModeGraphBolt,
		"rp":        core.ModeGraphBoltRP,
		"reset":     core.ModeReset,
	} {
		got, err := core.ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := core.ParseMode("definitely-not-a-mode"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
	if (core.Mode(99)).String() != "Unknown" {
		t.Fatalf("Mode(99).String() = %q", core.Mode(99).String())
	}
}

// TestEngineMetrics runs an instrumented engine through an initial run
// and a mutation batch and checks the registry reflects the work:
// refine-vs-hybrid split, tracked-snapshot gauges, duration histograms.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
		{From: 2, To: 3, Weight: 1}, {From: 3, To: 0, Weight: 1},
	})
	// Horizon < MaxIterations forces the hybrid continuation (§4.2) so
	// the hybrid counters must move.
	e, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(),
		core.Options{MaxIterations: 8, Horizon: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := e.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 0, To: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	wantPositive := []string{
		"graphbolt_engine_runs_total",
		"graphbolt_engine_batches_total",
		"graphbolt_engine_iterations_total",
		"graphbolt_engine_refine_iterations_total",
		"graphbolt_engine_hybrid_iterations_total",
		"graphbolt_engine_initial_edge_computations_total",
		"graphbolt_engine_refine_edge_computations_total",
		"graphbolt_engine_hybrid_edge_computations_total",
		"graphbolt_engine_edge_computations_total",
		"graphbolt_engine_vertex_computations_total",
		"graphbolt_engine_hybrid_switches_total",
	}
	for _, name := range wantPositive {
		if v, ok := snap.Counters[name]; !ok || v <= 0 {
			t.Errorf("counter %s = %d (present %v), want > 0", name, v, ok)
		}
	}
	if v := snap.Gauges["graphbolt_engine_tracked_snapshots"]; v <= 0 {
		t.Errorf("tracked_snapshots gauge = %v, want > 0", v)
	}
	if v := snap.Gauges["graphbolt_engine_tracked_snapshot_bytes"]; v <= 0 {
		t.Errorf("tracked_snapshot_bytes gauge = %v, want > 0", v)
	}
	if h, ok := snap.Histograms["graphbolt_engine_run_duration_seconds"]; !ok || h.Count != 1 {
		t.Errorf("run_duration histogram count = %d (present %v), want 1", h.Count, ok)
	}
	if h, ok := snap.Histograms["graphbolt_engine_batch_duration_seconds"]; !ok || h.Count != 1 {
		t.Errorf("batch_duration histogram count = %d (present %v), want 1", h.Count, ok)
	}

	// The engine's own Stats must agree with the hybrid split.
	st := e.TotalStats()
	if st.HybridIterations <= 0 {
		t.Errorf("TotalStats.HybridIterations = %d, want > 0 with Horizon < MaxIterations", st.HybridIterations)
	}
	if st.TrackedSnapshotBytes <= 0 {
		t.Errorf("TotalStats.TrackedSnapshotBytes = %d, want > 0", st.TrackedSnapshotBytes)
	}
}

// TestDefaultMetricsRegistry checks the SetDefaultMetrics fallback:
// engines built without Options.Metrics report into the process-wide
// registry, and clearing it turns instrumentation back off.
func TestDefaultMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	core.SetDefaultMetrics(reg)
	defer core.SetDefaultMetrics(nil)

	g := graph.MustBuild(2, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	e, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if v := reg.Snapshot().Counters["graphbolt_engine_runs_total"]; v != 1 {
		t.Fatalf("runs_total in default registry = %d, want 1", v)
	}

	core.SetDefaultMetrics(nil)
	e2, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	e2.Run()
	if v := reg.Snapshot().Counters["graphbolt_engine_runs_total"]; v != 1 {
		t.Fatalf("runs_total moved to %d after SetDefaultMetrics(nil), want 1", v)
	}
}
