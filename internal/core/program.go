// Package core implements the GraphBolt processing engine: synchronous
// (BSP) iterative graph computation with selective scheduling,
// dependency tracking as aggregation values, dependency-driven value
// refinement on graph mutation, pruning, and computation-aware hybrid
// execution — the system of §3–§4 of the paper. It also provides the
// Ligra and GB-Reset baseline execution modes used throughout the
// evaluation.
package core

import "repro/internal/graph"

// VertexID aliases the graph package's vertex identifier.
type VertexID = graph.VertexID

// Program defines a synchronous iterative graph algorithm over vertex
// values of type V combined through aggregates of type A. It expresses
// the paper's generalized incremental programming model (§3.3):
//
//	д_i(v) = ⊕_{(u,v)∈E} contribution(c_{i-1}(u))   (Propagate = ⊎)
//	c_i(v) = ∮(д_i(v))                               (Compute)
//
// with Retract (⋃-) undoing a contribution, enabling incremental edge
// deletion and the retract/propagate form of ⋃△. Aggregation must be
// commutative and associative. Complex aggregations (Belief Propagation,
// Collaborative Filtering) implement Retract by re-deriving the old
// discrete contribution from the old source value — the paper's
// "on-the-fly evaluation of discrete contributions".
type Program[V, A any] interface {
	// InitValue returns c_0(v). It must be deterministic.
	InitValue(v VertexID) V

	// IdentityAgg returns the aggregate of a vertex that has received no
	// contributions (0 for sums, all-ones for products, +inf for min).
	IdentityAgg() A

	// Propagate folds the contribution of source value src over edge
	// (u,v) with weight w into *agg (the ⊎ operator). srcOutDeg is the
	// out-degree of u in the graph snapshot the contribution belongs to
	// (old snapshot for re-propagation of old values, new snapshot for
	// new values), as required by degree-normalized algorithms.
	Propagate(agg *A, src V, u, v VertexID, w float64, srcOutDeg int)

	// Retract removes a previously propagated contribution (⋃-).
	// Non-decomposable programs (see Pull) may implement it as a panic;
	// the engine never calls Retract for them.
	Retract(agg *A, src V, u, v VertexID, w float64, srcOutDeg int)

	// Compute applies ∮ to produce the vertex value from its aggregate.
	// It must be a pure function of (v, agg).
	Compute(v VertexID, agg A) V

	// Changed reports whether the value change is significant enough to
	// propagate (selective scheduling). Exact inequality gives exact BSP
	// semantics; a tolerance trades accuracy for work.
	Changed(oldV, newV V) bool

	// CloneAgg deep-copies an aggregate (identity for value types).
	CloneAgg(a A) A

	// AggBytes approximates the heap footprint of one aggregate, for the
	// dependency store's memory accounting (Table 9).
	AggBytes(a A) int
}

// DeltaProgram is implemented by programs whose aggregation admits a
// single-pass change-in-contribution update (simple decomposable
// aggregations like sums): PropagateDelta(agg, old, new, …) must be
// equivalent to Retract(old) followed by Propagate(new). The engine uses
// it to halve edge work; without it (or in the GraphBolt-RP mode of
// Fig. 8) the engine issues the retract/propagate pair.
type DeltaProgram[V, A any] interface {
	PropagateDelta(agg *A, oldSrc, newSrc V, u, v VertexID, w float64, oldSrcOutDeg, newSrcOutDeg int)
}

// PullProgram marks a program's aggregation as non-decomposable (§3.3
// "Aggregation Properties & Extensions"): min/max-style aggregates whose
// value cannot be incrementally adjusted when a contribution is removed.
// The engine then re-evaluates affected aggregates by pulling the entire
// updated input set over CSC in-edges instead of applying deltas.
type PullProgram interface {
	NonDecomposable()
}

// DegreeSensitive is implemented by programs whose edge contribution
// depends on the source's out-degree (PageRank). The engine then treats
// every vertex whose out-degree changed as a changed source in every
// refined iteration, so degree renormalization propagates.
type DegreeSensitive interface {
	UsesOutDegree() bool
}

func usesOutDegree[V, A any](p Program[V, A]) bool {
	if ds, ok := any(p).(DegreeSensitive); ok {
		return ds.UsesOutDegree()
	}
	return false
}

func isPull[V, A any](p Program[V, A]) bool {
	_, ok := any(p).(PullProgram)
	return ok
}
