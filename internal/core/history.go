package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/parallel"
)

// ErrGenerationNotRetained reports a SnapshotAt/DiffSnapshots request
// for a generation the engine cannot serve: either it was evicted from
// the history ring (older than the retention depth), or it has not been
// published yet.
var ErrGenerationNotRetained = errors.New("core: generation not retained")

// HistoryRing retains the last K published result snapshots, addressable
// by generation. It exploits the same immutability that makes the
// current snapshot lock-free: a published ResultSnapshot never changes,
// so retention is just holding K pointers and point-in-time reads need
// no synchronization with the writer beyond one atomic load.
//
// Concurrency: Push is single-writer (the engine's publish path); At and
// Oldest are lock-free and safe from any goroutine. A reader racing a
// Push either sees the generation it asked for or observes it as already
// evicted — never a torn or mutated snapshot.
type HistoryRing[V any] struct {
	slots []atomic.Pointer[ResultSnapshot[V]]
}

// NewHistoryRing creates a ring retaining the last k generations (k >= 1).
func NewHistoryRing[V any](k int) *HistoryRing[V] {
	if k < 1 {
		k = 1
	}
	return &HistoryRing[V]{slots: make([]atomic.Pointer[ResultSnapshot[V]], k)}
}

// Cap returns the retention depth K.
func (r *HistoryRing[V]) Cap() int { return len(r.slots) }

// Push retains s, evicting the snapshot K generations older. Single
// writer only.
func (r *HistoryRing[V]) Push(s *ResultSnapshot[V]) {
	r.slots[s.Generation%uint64(len(r.slots))].Store(s)
}

// At returns the retained snapshot for the exact generation, or nil if
// it was evicted or never pushed. Lock-free.
func (r *HistoryRing[V]) At(gen uint64) *ResultSnapshot[V] {
	s := r.slots[gen%uint64(len(r.slots))].Load()
	if s == nil || s.Generation != gen {
		return nil
	}
	return s
}

// SnapshotAt returns the published snapshot for the exact generation.
// The newest generation is always addressable; older ones require
// Options.Retain > 1 and must still be within the retention window.
// The returned snapshot is immutable and safe to hold indefinitely.
// It fails with an error wrapping ErrGenerationNotRetained when gen has
// been evicted, is zero, or has not been published yet.
func (e *Engine[V, A]) SnapshotAt(gen uint64) (*ResultSnapshot[V], error) {
	return snapshotAtIn(e.snap.Load(), e.ring, e.retain(), gen)
}

// snapshotAtIn is the shared exact-generation lookup behind
// Engine.SnapshotAt and MultiView.SnapshotAt: resolve gen against the
// current snapshot and the history ring, with the detailed error cases.
func snapshotAtIn[V any](cur *ResultSnapshot[V], ring *HistoryRing[V], retain int, gen uint64) (*ResultSnapshot[V], error) {
	if cur == nil {
		return nil, fmt.Errorf("%w: nothing published yet (want generation %d)", ErrGenerationNotRetained, gen)
	}
	switch {
	case gen == cur.Generation:
		return cur, nil
	case gen > cur.Generation:
		return nil, fmt.Errorf("%w: generation %d not yet published (newest is %d)", ErrGenerationNotRetained, gen, cur.Generation)
	case gen == 0:
		return nil, fmt.Errorf("%w: generation 0 never exists (generations start at 1)", ErrGenerationNotRetained)
	}
	if ring != nil {
		if s := ring.At(gen); s != nil {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: generation %d evicted (retaining the last %d of %d)",
		ErrGenerationNotRetained, gen, retain, cur.Generation)
}

// retain returns the effective retention depth (1 when no ring).
func (e *Engine[V, A]) retain() int {
	if e.ring == nil {
		return 1
	}
	return e.ring.Cap()
}

// RetainedGenerations returns the inclusive generation range SnapshotAt
// can currently serve. Before the first publication both bounds are 0.
func (e *Engine[V, A]) RetainedGenerations() (oldest, newest uint64) {
	cur := e.snap.Load()
	if cur == nil {
		return 0, 0
	}
	newest = cur.Generation
	oldest = 1
	if k := uint64(e.retain()); newest > k {
		oldest = newest - k + 1
	}
	return oldest, newest
}

// SnapshotDiff reports how vertex values changed between two retained
// generations: the changed-vertex set (per the program's Changed
// predicate) with each vertex's before/after values, plus the structural
// delta between the two graph snapshots.
type SnapshotDiff[V any] struct {
	// From and To are the generations compared (as passed to
	// DiffSnapshots; To need not be the newer one).
	From, To uint64

	// Changed lists the vertices whose value differs between the two
	// generations, ascending. A vertex that exists only in one snapshot
	// is compared against its initial value in the other.
	Changed []VertexID

	// Before and After hold the value each changed vertex had at From
	// and at To, parallel to Changed.
	Before, After []V

	// VertexDelta and EdgeDelta are the size changes of the graph
	// (To minus From; vertices are never removed, edges can be).
	VertexDelta int
	EdgeDelta   int64
}

// DiffSnapshots compares the values of two retained generations,
// returning the changed-vertex set and per-vertex value deltas. Both
// generations must be addressable via SnapshotAt. The comparison uses
// the program's Changed predicate, so "changed" means exactly what
// selective scheduling means; vertices present in only one generation
// are compared against their initial value.
func (e *Engine[V, A]) DiffSnapshots(from, to uint64) (*SnapshotDiff[V], error) {
	fs, err := e.SnapshotAt(from)
	if err != nil {
		return nil, err
	}
	ts, err := e.SnapshotAt(to)
	if err != nil {
		return nil, err
	}
	return diffSnapshots(e.p, fs, ts, from, to), nil
}

// diffSnapshots computes the changed-vertex diff between two resolved
// snapshots under p's Changed predicate — the shared core behind
// Engine.DiffSnapshots and MultiView.DiffSnapshots.
func diffSnapshots[V, A any](p Program[V, A], fs, ts *ResultSnapshot[V], from, to uint64) *SnapshotDiff[V] {
	d := &SnapshotDiff[V]{
		From:        from,
		To:          to,
		VertexDelta: ts.Graph.NumVertices() - fs.Graph.NumVertices(),
		EdgeDelta:   ts.Graph.NumEdges() - fs.Graph.NumEdges(),
	}
	n := len(fs.Values)
	if len(ts.Values) > n {
		n = len(ts.Values)
	}
	valueAt := func(vals []V, v int) V {
		if v < len(vals) {
			return vals[v]
		}
		return p.InitValue(VertexID(v))
	}
	changed := bitset.New(n)
	parallel.For(n, func(v int) {
		if p.Changed(valueAt(fs.Values, v), valueAt(ts.Values, v)) {
			changed.Set(VertexID(v))
		}
	})
	d.Changed = changed.Members(nil)
	d.Before = make([]V, len(d.Changed))
	d.After = make([]V, len(d.Changed))
	for i, v := range d.Changed {
		d.Before[i] = valueAt(fs.Values, int(v))
		d.After[i] = valueAt(ts.Values, int(v))
	}
	return d
}
