package obs_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestHandlerEndpoints(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("test_requests_total", "Requests.").Add(3)
	r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1}).Observe(0.05)
	srv := httptest.NewServer(obs.Handler(r))
	defer srv.Close()

	get := func(path string) (status int, contentType, body string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
	}

	status, ct, body := get("/metrics")
	if status != 200 {
		t.Fatalf("/metrics status %d", status)
	}
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want Prometheus text v0.0.4", ct)
	}
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="+Inf"} 1`,
		"test_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	status, _, body = get("/metrics.json")
	if status != 200 {
		t.Fatalf("/metrics.json status %d", status)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if snap.Counters["test_requests_total"] != 3 {
		t.Errorf("/metrics.json counter = %d, want 3", snap.Counters["test_requests_total"])
	}

	if status, _, _ = get("/debug/vars"); status != 200 {
		t.Errorf("/debug/vars status %d", status)
	}
	if status, _, _ = get("/debug/pprof/cmdline"); status != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", status)
	}
	if status, _, _ = get("/nope"); status != 404 {
		t.Errorf("unknown path status %d, want 404", status)
	}
}
