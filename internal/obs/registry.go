// Package obs is the engine's observability layer: an allocation-light
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// with Prometheus text exposition, expvar publication and JSON
// snapshots) plus a phase-tracing API with pluggable sinks. It depends
// only on the standard library.
//
// Everything is nil-safe by construction: methods on a nil *Registry
// return nil metric handles, and methods on nil handles are no-ops.
// Instrumented code therefore holds unconditional handles and pays a
// single predictable nil check when observability is off — no
// interfaces, no allocation, no locks on the hot path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// std is the process-wide default registry, used by the cmd wiring and
// the root facade. It always exists; it only costs anything once code
// registers metrics in it.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Registry holds named metrics. Registration is idempotent: asking for
// an existing name returns the existing metric (the kind must match).
// The zero value is not usable; construct with NewRegistry. A nil
// *Registry is valid and inert.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_' || r == ':':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// checkName panics on an invalid metric name or a name already
// registered as a different kind. Registration happens at wiring time,
// so both are programmer errors worth failing loudly on.
func (r *Registry) checkName(name, kind string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	exists := func(k string, ok bool) {
		if ok && k != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested %s", name, k, kind))
		}
	}
	_, ok := r.counters[name]
	exists("counter", ok)
	_, ok = r.gauges[name]
	exists("gauge", ok)
	_, ok = r.histograms[name]
	exists("histogram", ok)
}

// Counter returns the monotonically increasing counter registered under
// name, creating it if needed. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it with the given strictly increasing upper bounds (an
// implicit +Inf bucket is always appended). Asking for an existing
// histogram returns it unchanged, ignoring bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(name, bounds)
		r.histograms[name] = h
		r.help[name] = help
	}
	return h
}

// Counter is a monotonically increasing int64. A nil *Counter is valid
// and inert.
type Counter struct{ v atomic.Int64 }

// Add increases the counter; negative deltas are ignored (counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. A nil *Gauge is valid and
// inert.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d (CAS loop; safe under concurrency).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefTimeBuckets are the default upper bounds (seconds) for latency
// histograms, spanning microsecond fsyncs to multi-second checkpoints.
var DefTimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is ≥ the value (Prometheus "le"
// semantics), with an implicit +Inf overflow bucket. All operations are
// lock-free; a nil *Histogram is valid and inert.
type Histogram struct {
	name   string
	bounds []float64       // strictly increasing upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

func newHistogram(name string, bounds []float64) *Histogram {
	cp := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if math.IsInf(b, +1) {
			continue // the +Inf bucket is implicit
		}
		cp = append(cp, b)
	}
	for i := 1; i < len(cp); i++ {
		if cp[i] <= cp[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing: %v", name, bounds))
		}
	}
	return &Histogram{name: name, bounds: cp, counts: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound ≥ v; past the end means the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot copies the histogram's state (non-cumulative bucket counts).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry's metrics, JSON- and
// expvar-friendly.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's state. Counts are per-bucket
// (not cumulative); Counts[len(Bounds)] is the +Inf overflow bucket.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot copies every metric's current value. Safe to call
// concurrently with updates; a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot handles under the lock; format outside it.
	type entry struct {
		name, help string
		c          *Counter
		g          *Gauge
		h          *Histogram
	}
	entries := make([]entry, 0, len(names))
	for _, n := range names {
		e := entry{name: n, help: r.help[n]}
		e.c = r.counters[n]
		e.g = r.gauges[n]
		e.h = r.histograms[n]
		entries = append(entries, e)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		switch {
		case e.c != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case e.g != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", e.name, e.name, formatFloat(e.g.Value()))
		case e.h != nil:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", e.name)
			s := e.h.snapshot()
			var cum uint64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", e.name, formatFloat(bound), cum)
			}
			cum += s.Counts[len(s.Bounds)]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", e.name, formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", e.name, s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
