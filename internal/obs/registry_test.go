package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters are monotonic: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{1, 2, 5})

	// Prometheus le semantics: a bucket with upper bound U counts v ≤ U.
	for _, v := range []float64{0.5, 1.0} { // both land in le="1"
		h.Observe(v)
	}
	h.Observe(1.0000001) // le="2"
	h.Observe(2)         // le="2" (boundary is inclusive)
	h.Observe(5)         // le="5"
	h.Observe(100)       // +Inf overflow

	s := h.snapshot()
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-109.5000001) > 1e-6 {
		t.Fatalf("sum = %g", s.Sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "", []float64{0.5})
	c := r.Counter("test_conc_total", "")
	g := r.Gauge("test_conc_gauge", "")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 2)) // half ≤ 0.5, half overflow
				c.Inc()
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != workers*per/2 {
		t.Fatalf("histogram sum = %g, want %d", got, workers*per/2)
	}
	s := h.snapshot()
	if s.Counts[0] != workers*per/2 || s.Counts[1] != workers*per/2 {
		t.Fatalf("bucket split = %v", s.Counts)
	}
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %g, want %d", got, workers*per)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.").Add(3)
	r.Gauge("app_queue_depth", "Queue depth.").Set(7)
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE app_requests_total counter",
		"app_requests_total 3",
		"# TYPE app_queue_depth gauge",
		"app_queue_depth 7",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 3.55",
		"app_latency_seconds_count 3",
		"# HELP app_requests_total Requests served.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Metrics are sorted by name.
	if strings.Index(out, "app_latency_seconds") > strings.Index(out, "app_queue_depth") {
		t.Fatal("exposition not sorted by metric name")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.Gauge("g", "").Set(1.5)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 2 || back.Gauges["g"] != 1.5 {
		t.Fatalf("round trip lost values: %+v", back)
	}
	hs := back.Histograms["h_seconds"]
	if hs.Count != 1 || hs.Counts[0] != 1 {
		t.Fatalf("histogram round trip: %+v", hs)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	// None of these may panic.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationErrors(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "")
	mustPanic(t, "kind collision", func() { r.Gauge("dual_total", "") })
	mustPanic(t, "invalid name", func() { r.Counter("9starts_with_digit", "") })
	mustPanic(t, "invalid name", func() { r.Counter("has space", "") })
	mustPanic(t, "empty name", func() { r.Counter("", "") })
	mustPanic(t, "unsorted bounds", func() { r.Histogram("bad_seconds", "", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}
