package obs

import (
	"context"
	"log/slog"
	"time"
)

// Sink receives completed phase spans. Implementations must be safe for
// concurrent use; the engine may end spans from multiple goroutines.
type Sink interface {
	Phase(name string, start time.Time, duration time.Duration)
}

// Tracer hands out phase spans and fans completed spans out to its
// sinks. A nil *Tracer (and a tracer with no sinks) is valid and inert:
// StartPhase returns an inert span and costs one nil check.
type Tracer struct {
	sinks []Sink
}

// NewTracer builds a tracer over the given sinks.
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// StartPhase opens a span for a named engine phase ("run", "refine",
// "hybrid", "checkpoint", ...). End the returned span when the phase
// completes.
func (t *Tracer) StartPhase(name string) Span {
	if t == nil || len(t.sinks) == 0 {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// EndPhase ends a span obtained from StartPhase; equivalent to s.End().
func (t *Tracer) EndPhase(s Span) { s.End() }

// Span is one in-flight phase. The zero Span is inert.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// End completes the span and delivers it to every sink.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	for _, sink := range s.t.sinks {
		sink.Phase(s.name, s.start, d)
	}
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(name string, start time.Time, duration time.Duration)

// Phase implements Sink.
func (f FuncSink) Phase(name string, start time.Time, duration time.Duration) {
	f(name, start, duration)
}

// SlogSink logs each completed span through a structured logger.
type SlogSink struct {
	Logger *slog.Logger
	Level  slog.Level
}

// Phase implements Sink. The span's start time is logged as a
// structured attr so phase spans can be time-correlated with other
// event streams (e.g. flight-recorder dumps) in one log.
func (s SlogSink) Phase(name string, start time.Time, duration time.Duration) {
	s.Logger.Log(context.Background(), s.Level, "phase",
		"name", name, "start", start, "duration", duration)
}

// RegistrySink aggregates span durations into per-phase latency
// histograms named <Prefix><phase>_seconds in a Registry, so phase
// timings show up in /metrics without a separate trace store.
type RegistrySink struct {
	R      *Registry
	Prefix string
}

// Phase implements Sink.
func (s RegistrySink) Phase(name string, start time.Time, duration time.Duration) {
	s.R.Histogram(s.Prefix+sanitizeMetricName(name)+"_seconds",
		"Duration of the "+name+" phase.", DefTimeBuckets).Observe(duration.Seconds())
}

// sanitizeMetricName maps an arbitrary phase name onto the Prometheus
// metric name grammar.
func sanitizeMetricName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "phase"
	}
	return string(out)
}
