package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerDeliversSpans(t *testing.T) {
	type span struct {
		name string
		d    time.Duration
	}
	var mu sync.Mutex
	var got []span
	tr := NewTracer(FuncSink(func(name string, _ time.Time, d time.Duration) {
		mu.Lock()
		got = append(got, span{name, d})
		mu.Unlock()
	}))

	s := tr.StartPhase("refine")
	s.End()
	tr.EndPhase(tr.StartPhase("hybrid"))

	if len(got) != 2 || got[0].name != "refine" || got[1].name != "hybrid" {
		t.Fatalf("spans = %+v", got)
	}
	for _, s := range got {
		if s.d < 0 {
			t.Fatalf("negative duration %v", s.d)
		}
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	s := tr.StartPhase("anything")
	s.End() // must not panic
	tr.EndPhase(s)
	NewTracer().StartPhase("no sinks").End()
	(Span{}).End()
}

func TestRegistrySink(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(RegistrySink{R: r, Prefix: "graphbolt_phase_"})
	tr.StartPhase("apply batch").End()
	tr.StartPhase("apply batch").End()

	h := r.Histogram("graphbolt_phase_apply_batch_seconds", "", DefTimeBuckets)
	if got := h.Count(); got != 2 {
		t.Fatalf("phase histogram count = %d, want 2", got)
	}
}

func TestSlogSink(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(SlogSink{Logger: logger, Level: slog.LevelInfo})
	tr.StartPhase("checkpoint").End()
	out := buf.String()
	if !strings.Contains(out, "name=checkpoint") || !strings.Contains(out, "duration=") {
		t.Fatalf("slog sink output: %q", out)
	}
	// The span start must be a structured attr so phase spans can be
	// time-correlated with flight dumps in one log stream.
	if !strings.Contains(out, "start=") {
		t.Fatalf("slog sink output missing start attr: %q", out)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"refine":      "refine",
		"apply batch": "apply_batch",
		"wal-append":  "wal_append",
		"9lives":      "_9lives",
		"":            "phase",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
