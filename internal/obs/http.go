package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-global expvar key: expvar.Publish
// panics on duplicate names, and the "graphbolt" variable tracks the
// first registry handed to Handler (in practice the default registry).
var expvarOnce sync.Once

// Handler returns the live introspection endpoint for a registry:
//
//	/metrics        Prometheus text exposition (version 0.0.4)
//	/metrics.json   the same snapshot as JSON (what Registry.Snapshot returns)
//	/debug/vars     expvar (includes cmdline, memstats and the registry
//	                snapshot under the "graphbolt" key)
//	/debug/pprof/*  the standard pprof profiles
//
// Serve it with net/http:
//
//	go http.ListenAndServe(addr, obs.Handler(obs.Default()))
func Handler(r *Registry) http.Handler {
	return HandlerWith(r, nil)
}

// HandlerWith is Handler plus extra routes: each pattern in extra is
// mounted on the same mux (e.g. "/healthz" → the health endpoint).
// Extra routes must not collide with the built-in ones.
func HandlerWith(r *Registry, extra map[string]http.Handler) http.Handler {
	expvarOnce.Do(func() {
		expvar.Publish("graphbolt", expvar.Func(func() any { return r.Snapshot() }))
	})
	mux := http.NewServeMux()
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.Handle("/metrics.json", snapshotJSON(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func snapshotJSON(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// expvar.Func's formatting is JSON; reuse it for consistency.
		v := expvar.Func(func() any { return r.Snapshot() })
		w.Write([]byte(v.String()))
	}
}
