// Package health tracks a serving process's operational state as a
// tiny state machine — Healthy, Degraded, Failed, Overloaded — with
// the cause and time of the last transition. The serve layer drives it
// (journal faults degrade, terminal faults fail, successful recovery
// heals, admission shedding marks overload); operators read it through
// the graphbolt_health_state gauge and the /healthz endpoint.
//
// A nil *Tracker is valid and inert, mirroring the obs conventions:
// components hold an unconditional handle and pay one nil check when
// health tracking is off.
package health

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// State is the coarse operational state of the engine.
type State int32

const (
	// Healthy: reads and writes both served.
	Healthy State = iota
	// Degraded: reads served, writes fail fast while a supervisor
	// retries the underlying fault (journal repair, checkpoint retry).
	Degraded
	// Failed: the engine's in-memory state is no longer trustworthy;
	// the serve loop has latched and the process should be replaced.
	Failed
	// Overloaded: reads and writes both still serve, but admission
	// control is shedding excess load before the queue; shed submits
	// fail fast with a retry hint. Distinct from Degraded — writes are
	// throttled, not disabled — and it clears on its own once the
	// backlog drains.
	Overloaded
)

// String returns the lowercase state name used in logs, metrics help
// text and the /healthz payload.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	case Overloaded:
		return "overloaded"
	}
	return "unknown"
}

// Metric names exported by this package.
const (
	MetricState       = "graphbolt_health_state"
	MetricTransitions = "graphbolt_health_transitions_total"
)

// RegisterMetrics registers the health metrics in r (idempotent,
// nil-safe) and returns the state gauge so a tracker can publish into
// it. The gauge holds the numeric State (0 healthy, 1 degraded,
// 2 failed, 3 overloaded).
func RegisterMetrics(r *obs.Registry) (*obs.Gauge, *obs.Counter) {
	g := r.Gauge(MetricState, "current health state: 0 healthy, 1 degraded, 2 failed, 3 overloaded")
	c := r.Counter(MetricTransitions, "total health state transitions")
	return g, c
}

// Tracker is an atomic health state machine. Construct with NewTracker;
// the zero value works but publishes no metrics. All methods are safe
// for concurrent use and nil-safe.
type Tracker struct {
	state atomic.Int32

	mu    sync.Mutex
	cause error
	since time.Time
	hooks []func(from, to State, cause error)

	gauge       *obs.Gauge
	transitions *obs.Counter
}

// NewTracker returns a Healthy tracker publishing into r's metrics
// (r may be nil for a metrics-less tracker).
func NewTracker(r *obs.Registry) *Tracker {
	t := &Tracker{since: time.Now()}
	t.gauge, t.transitions = RegisterMetrics(r)
	t.gauge.Set(float64(Healthy))
	return t
}

// State returns the current state (Healthy on nil).
func (t *Tracker) State() State {
	if t == nil {
		return Healthy
	}
	return State(t.state.Load())
}

// Info is a point-in-time copy of the tracker's state.
type Info struct {
	State State
	// Cause is the error behind the current state; nil when Healthy.
	Cause error
	// Since is when the current state was entered.
	Since time.Time
}

// Info returns the current state with its cause and entry time.
func (t *Tracker) Info() Info {
	if t == nil {
		return Info{State: Healthy}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Info{State: State(t.state.Load()), Cause: t.cause, Since: t.since}
}

// OnTransition registers fn to run on every state change (not on
// same-state cause updates). Hooks run synchronously on the goroutine
// that called Set, outside the tracker's lock, in registration order.
func (t *Tracker) OnTransition(fn func(from, to State, cause error)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hooks = append(t.hooks, fn)
}

// Set moves the tracker to state s with the given cause. The cause is
// recorded even when the state is unchanged (a degraded engine's retry
// failures refresh it); hooks, the transitions counter and Since only
// fire on an actual state change.
func (t *Tracker) Set(s State, cause error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	from := State(t.state.Load())
	t.cause = cause
	if s == Healthy {
		t.cause = nil
	}
	var hooks []func(from, to State, cause error)
	if from != s {
		t.state.Store(int32(s))
		t.since = time.Now()
		t.gauge.Set(float64(s))
		t.transitions.Inc()
		hooks = append(hooks, t.hooks...)
	}
	t.mu.Unlock()
	for _, fn := range hooks {
		fn(from, s, cause)
	}
}

// Transition moves the tracker from exactly `from` to `to` with the
// given cause, reporting whether the move happened. It is the guarded
// variant of Set for subsystems that own only a slice of the state
// machine: the admission controller flips Healthy↔Overloaded through
// it without ever stomping a Degraded or Failed state latched by the
// recovery supervisor. Hooks, the transitions counter, Since and the
// gauge fire exactly as for a Set that changes state.
func (t *Tracker) Transition(from, to State, cause error) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	if State(t.state.Load()) != from || from == to {
		t.mu.Unlock()
		return false
	}
	t.cause = cause
	if to == Healthy {
		t.cause = nil
	}
	t.state.Store(int32(to))
	t.since = time.Now()
	t.gauge.Set(float64(to))
	t.transitions.Inc()
	hooks := append([]func(from, to State, cause error){}, t.hooks...)
	t.mu.Unlock()
	for _, fn := range hooks {
		fn(from, to, cause)
	}
	return true
}

// Handler returns an HTTP handler for /healthz. It answers 200 with a
// JSON body while the engine serves reads (Healthy, Degraded or
// Overloaded — an overloaded replica still serves both reads and
// admitted writes) and 503 once Failed, so load balancers keep a
// throttled or degraded replica in rotation for queries but evict a
// failed one.
func Handler(t *Tracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		info := t.Info()
		code := http.StatusOK
		if info.State == Failed {
			code = http.StatusServiceUnavailable
		}
		body := struct {
			State string `json:"state"`
			Cause string `json:"cause,omitempty"`
			Since string `json:"since,omitempty"`
		}{State: info.State.String()}
		if info.Cause != nil {
			body.Cause = info.Cause.Error()
		}
		if !info.Since.IsZero() {
			body.Since = info.Since.UTC().Format(time.RFC3339Nano)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(body)
	})
}
