package health

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestStateString(t *testing.T) {
	cases := map[State]string{Healthy: "healthy", Degraded: "degraded", Failed: "failed", State(42): "unknown"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestTrackerTransitions(t *testing.T) {
	r := obs.NewRegistry()
	tr := NewTracker(r)
	if tr.State() != Healthy {
		t.Fatalf("new tracker state = %v, want Healthy", tr.State())
	}

	type hop struct{ from, to State }
	var mu sync.Mutex
	var hops []hop
	tr.OnTransition(func(from, to State, cause error) {
		mu.Lock()
		hops = append(hops, hop{from, to})
		mu.Unlock()
	})

	cause := errors.New("fsync refused")
	tr.Set(Degraded, cause)
	info := tr.Info()
	if info.State != Degraded || !errors.Is(info.Cause, cause) || info.Since.IsZero() {
		t.Fatalf("after degrade: %+v", info)
	}

	// Same-state Set refreshes the cause without counting a transition.
	cause2 := errors.New("still refusing")
	tr.Set(Degraded, cause2)
	if got := tr.Info().Cause; !errors.Is(got, cause2) {
		t.Fatalf("cause not refreshed: %v", got)
	}

	tr.Set(Healthy, nil)
	if info := tr.Info(); info.State != Healthy || info.Cause != nil {
		t.Fatalf("after heal: %+v", info)
	}

	tr.Set(Failed, errors.New("panic in apply"))
	if tr.State() != Failed {
		t.Fatalf("state = %v, want Failed", tr.State())
	}

	mu.Lock()
	defer mu.Unlock()
	want := []hop{{Healthy, Degraded}, {Degraded, Healthy}, {Healthy, Failed}}
	if len(hops) != len(want) {
		t.Fatalf("hooks fired %d times (%v), want %d", len(hops), hops, len(want))
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hop %d = %v, want %v", i, hops[i], want[i])
		}
	}

	snap := r.Snapshot()
	if g := snap.Gauges[MetricState]; g != float64(Failed) {
		t.Fatalf("%s = %v, want %v", MetricState, g, float64(Failed))
	}
	if c := snap.Counters[MetricTransitions]; c != 3 {
		t.Fatalf("%s = %d, want 3", MetricTransitions, c)
	}
}

func TestNilTrackerIsInert(t *testing.T) {
	var tr *Tracker
	tr.Set(Failed, errors.New("x"))
	tr.OnTransition(func(State, State, error) {})
	if tr.State() != Healthy {
		t.Fatalf("nil tracker state = %v, want Healthy", tr.State())
	}
	if info := tr.Info(); info.State != Healthy || info.Cause != nil {
		t.Fatalf("nil tracker Info = %+v", info)
	}
}

func TestHandlerStatusCodes(t *testing.T) {
	tr := NewTracker(nil)
	h := Handler(tr)

	get := func() (int, map[string]string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON %q: %v", rec.Body.String(), err)
		}
		return rec.Code, body
	}

	if code, body := get(); code != 200 || body["state"] != "healthy" {
		t.Fatalf("healthy: code=%d body=%v", code, body)
	}
	tr.Set(Degraded, errors.New("journal damaged"))
	if code, body := get(); code != 200 || body["state"] != "degraded" || body["cause"] == "" {
		t.Fatalf("degraded: code=%d body=%v", code, body)
	}
	tr.Set(Failed, errors.New("apply panicked"))
	if code, body := get(); code != 503 || body["state"] != "failed" {
		t.Fatalf("failed: code=%d body=%v", code, body)
	}
}

func TestHandlerNilTracker(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil tracker /healthz = %d, want 200", rec.Code)
	}
}
