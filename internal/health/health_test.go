package health

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestStateString(t *testing.T) {
	cases := map[State]string{Healthy: "healthy", Degraded: "degraded", Failed: "failed", Overloaded: "overloaded", State(42): "unknown"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestTrackerTransitions(t *testing.T) {
	r := obs.NewRegistry()
	tr := NewTracker(r)
	if tr.State() != Healthy {
		t.Fatalf("new tracker state = %v, want Healthy", tr.State())
	}

	type hop struct{ from, to State }
	var mu sync.Mutex
	var hops []hop
	tr.OnTransition(func(from, to State, cause error) {
		mu.Lock()
		hops = append(hops, hop{from, to})
		mu.Unlock()
	})

	cause := errors.New("fsync refused")
	tr.Set(Degraded, cause)
	info := tr.Info()
	if info.State != Degraded || !errors.Is(info.Cause, cause) || info.Since.IsZero() {
		t.Fatalf("after degrade: %+v", info)
	}

	// Same-state Set refreshes the cause without counting a transition.
	cause2 := errors.New("still refusing")
	tr.Set(Degraded, cause2)
	if got := tr.Info().Cause; !errors.Is(got, cause2) {
		t.Fatalf("cause not refreshed: %v", got)
	}

	tr.Set(Healthy, nil)
	if info := tr.Info(); info.State != Healthy || info.Cause != nil {
		t.Fatalf("after heal: %+v", info)
	}

	tr.Set(Failed, errors.New("panic in apply"))
	if tr.State() != Failed {
		t.Fatalf("state = %v, want Failed", tr.State())
	}

	mu.Lock()
	defer mu.Unlock()
	want := []hop{{Healthy, Degraded}, {Degraded, Healthy}, {Healthy, Failed}}
	if len(hops) != len(want) {
		t.Fatalf("hooks fired %d times (%v), want %d", len(hops), hops, len(want))
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hop %d = %v, want %v", i, hops[i], want[i])
		}
	}

	snap := r.Snapshot()
	if g := snap.Gauges[MetricState]; g != float64(Failed) {
		t.Fatalf("%s = %v, want %v", MetricState, g, float64(Failed))
	}
	if c := snap.Counters[MetricTransitions]; c != 3 {
		t.Fatalf("%s = %d, want 3", MetricTransitions, c)
	}
}

func TestNilTrackerIsInert(t *testing.T) {
	var tr *Tracker
	tr.Set(Failed, errors.New("x"))
	tr.OnTransition(func(State, State, error) {})
	if tr.State() != Healthy {
		t.Fatalf("nil tracker state = %v, want Healthy", tr.State())
	}
	if info := tr.Info(); info.State != Healthy || info.Cause != nil {
		t.Fatalf("nil tracker Info = %+v", info)
	}
}

func TestHandlerStatusCodes(t *testing.T) {
	tr := NewTracker(nil)
	h := Handler(tr)

	get := func() (int, map[string]string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON %q: %v", rec.Body.String(), err)
		}
		return rec.Code, body
	}

	if code, body := get(); code != 200 || body["state"] != "healthy" {
		t.Fatalf("healthy: code=%d body=%v", code, body)
	}
	tr.Set(Degraded, errors.New("journal damaged"))
	if code, body := get(); code != 200 || body["state"] != "degraded" || body["cause"] == "" {
		t.Fatalf("degraded: code=%d body=%v", code, body)
	}
	tr.Set(Overloaded, errors.New("admission shedding"))
	if code, body := get(); code != 200 || body["state"] != "overloaded" || body["cause"] == "" {
		t.Fatalf("overloaded: code=%d body=%v", code, body)
	}
	tr.Set(Failed, errors.New("apply panicked"))
	if code, body := get(); code != 503 || body["state"] != "failed" {
		t.Fatalf("failed: code=%d body=%v", code, body)
	}
}

// TestTransitionGuarded: Transition only moves the machine when the
// current state matches `from`, so the admission controller's
// Healthy↔Overloaded flips can never stomp Degraded or Failed.
func TestTransitionGuarded(t *testing.T) {
	r := obs.NewRegistry()
	tr := NewTracker(r)
	var mu sync.Mutex
	var tos []State
	tr.OnTransition(func(from, to State, cause error) {
		mu.Lock()
		tos = append(tos, to)
		mu.Unlock()
	})

	cause := errors.New("queue backlog beyond SLO")
	if !tr.Transition(Healthy, Overloaded, cause) {
		t.Fatal("Healthy→Overloaded refused")
	}
	if info := tr.Info(); info.State != Overloaded || !errors.Is(info.Cause, cause) {
		t.Fatalf("after overload: %+v", info)
	}
	// Wrong `from`: no move, no hook.
	if tr.Transition(Healthy, Overloaded, cause) {
		t.Fatal("Transition moved from a mismatched state")
	}
	// Self-transition: refused even when `from` matches.
	if tr.Transition(Overloaded, Overloaded, cause) {
		t.Fatal("self-transition accepted")
	}
	if !tr.Transition(Overloaded, Healthy, nil) {
		t.Fatal("Overloaded→Healthy refused")
	}
	if info := tr.Info(); info.State != Healthy || info.Cause != nil {
		t.Fatalf("after exit: %+v", info)
	}

	// A degraded episode owns the state: the controller's exit attempt
	// must not touch it.
	tr.Set(Degraded, errors.New("journal fault"))
	if tr.Transition(Overloaded, Healthy, nil) {
		t.Fatal("Transition stomped Degraded")
	}
	if tr.State() != Degraded {
		t.Fatalf("state = %v, want Degraded", tr.State())
	}

	mu.Lock()
	defer mu.Unlock()
	want := []State{Overloaded, Healthy, Degraded}
	if len(tos) != len(want) {
		t.Fatalf("hooks fired for %v, want %v", tos, want)
	}
	for i := range want {
		if tos[i] != want[i] {
			t.Fatalf("hook %d fired for %v, want %v", i, tos[i], want[i])
		}
	}
	if c := r.Snapshot().Counters[MetricTransitions]; c != 3 {
		t.Fatalf("%s = %d, want 3", MetricTransitions, c)
	}
}

// TestNilTrackerTransition: guarded moves are nil-safe no-ops.
func TestNilTrackerTransition(t *testing.T) {
	var tr *Tracker
	if tr.Transition(Healthy, Overloaded, nil) {
		t.Fatal("nil tracker reported a transition")
	}
}

func TestHandlerNilTracker(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil tracker /healthz = %d, want 200", rec.Code)
	}
}
