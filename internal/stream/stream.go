// Package stream builds mutation streams following the paper's
// evaluation methodology (§5.1): load an initial fraction of the edges to
// obtain a fixed point, then stream the remaining edges as additions
// mixed with deletion requests drawn from the loaded graph. It also
// provides the Hi/Lo degree-targeted workloads of §5.3(B).
package stream

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Stream is a prepared sequence of mutation batches over a base graph.
type Stream struct {
	// Base is the initially loaded graph (the paper's "50% of edges").
	Base *graph.Graph
	// Batches are applied in order.
	Batches []graph.Batch
}

// Config controls stream construction.
type Config struct {
	// LoadFraction of the edge list forms the base graph (paper: 0.5).
	LoadFraction float64
	// BatchSize is the number of mutations per batch.
	BatchSize int
	// NumBatches caps how many batches to emit (0 = as many as the
	// remaining additions allow).
	NumBatches int
	// DeleteFraction of each batch are deletions of loaded edges
	// (paper mixes deletions into the addition stream; we default to
	// 0.25 when unset and deletions are enabled).
	DeleteFraction float64
	// Seed drives deletion sampling and shuffling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.LoadFraction <= 0 || c.LoadFraction > 1 {
		c.LoadFraction = 0.5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.DeleteFraction < 0 || c.DeleteFraction >= 1 {
		c.DeleteFraction = 0.25
	}
	return c
}

// FromEdges builds a stream from a full edge list: the first
// LoadFraction forms Base; the rest are streamed as additions, mixed
// with deletions sampled (without replacement) from the loaded edges.
func FromEdges(n int, edges []graph.Edge, cfg Config) (*Stream, error) {
	cfg = cfg.withDefaults()
	split := int(float64(len(edges)) * cfg.LoadFraction)
	if split < 0 || split > len(edges) {
		return nil, fmt.Errorf("stream: bad load split %d of %d", split, len(edges))
	}
	base, err := graph.Build(n, edges[:split])
	if err != nil {
		return nil, err
	}
	adds := edges[split:]

	r := gen.NewRNG(cfg.Seed)
	// Deletion candidates: loaded edges, shuffled; consumed in order so
	// no edge is deleted twice.
	loaded := append([]graph.Edge(nil), edges[:split]...)
	for i := len(loaded) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		loaded[i], loaded[j] = loaded[j], loaded[i]
	}

	delPerBatch := int(float64(cfg.BatchSize) * cfg.DeleteFraction)
	addPerBatch := cfg.BatchSize - delPerBatch

	s := &Stream{Base: base}
	ai, di := 0, 0
	for {
		if cfg.NumBatches > 0 && len(s.Batches) >= cfg.NumBatches {
			break
		}
		if ai >= len(adds) && (delPerBatch == 0 || di >= len(loaded)) {
			break
		}
		var b graph.Batch
		for k := 0; k < addPerBatch && ai < len(adds); k++ {
			b.Add = append(b.Add, adds[ai])
			ai++
		}
		for k := 0; k < delPerBatch && di < len(loaded); k++ {
			e := loaded[di]
			di++
			b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
		}
		if len(b.Add)+len(b.Del) == 0 {
			break
		}
		s.Batches = append(s.Batches, b)
	}
	return s, nil
}

// RMAT builds the standard evaluation stream: an RMAT graph of n vertices
// and m edges, half loaded, the rest streamed per cfg.
func RMAT(seed uint64, n, m int, w gen.Weighting, cfg Config) (*Stream, error) {
	edges := gen.RMAT(seed, n, m, w)
	return FromEdges(n, edges, cfg)
}

// Workload selects where mutations land for HiLoBatch (§5.3B).
type Workload int

const (
	// WorkloadHi targets vertices with high out-degree so changes affect
	// many vertices.
	WorkloadHi Workload = iota
	// WorkloadLo targets vertices with low (but non-zero) out-degree to
	// limit impact.
	WorkloadLo
)

// HiLoBatch builds one batch of size mutations whose endpoints are chosen
// from the top (Hi) or bottom (Lo) decile of out-degrees in g. Additions
// attach a new edge from a chosen vertex to a random vertex; a
// deleteFraction of the batch deletes an existing out-edge of a chosen
// vertex.
func HiLoBatch(g *graph.Graph, wl Workload, size int, deleteFraction float64, seed uint64) graph.Batch {
	r := gen.NewRNG(seed)
	n := g.NumVertices()
	type dv struct {
		v   graph.VertexID
		deg int
	}
	var candidates []dv
	for v := 0; v < n; v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > 0 {
			candidates = append(candidates, dv{graph.VertexID(v), d})
		}
	}
	if len(candidates) == 0 {
		return graph.Batch{}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].deg < candidates[j].deg })
	decile := len(candidates) / 10
	if decile == 0 {
		decile = len(candidates)
	}
	var pool []dv
	if wl == WorkloadHi {
		pool = candidates[len(candidates)-decile:]
	} else {
		pool = candidates[:decile]
	}

	nDel := int(float64(size) * deleteFraction)
	var b graph.Batch
	for i := 0; i < size-nDel; i++ {
		u := pool[r.Intn(len(pool))].v
		b.Add = append(b.Add, graph.Edge{From: u, To: graph.VertexID(r.Intn(n)), Weight: 1})
	}
	for i := 0; i < nDel; i++ {
		u := pool[r.Intn(len(pool))].v
		ts, _ := g.OutNeighbors(u)
		if len(ts) == 0 {
			continue
		}
		b.Del = append(b.Del, graph.Edge{From: u, To: ts[r.Intn(len(ts))]})
	}
	return b
}

// Windowed converts a batch sequence into a sliding-window stream: every
// mutation expires after `window` batches, so batch i additionally
// deletes the edges batch i-window added. This is the classic
// streaming-analytics workload ("results over the last N minutes") and a
// deletion-heavy stress for incremental engines. Deletions present in
// the source batches are preserved; expiring edges that were already
// deleted simply surface as missing deletes when applied.
func Windowed(batches []graph.Batch, window int) []graph.Batch {
	if window <= 0 {
		window = 1
	}
	out := make([]graph.Batch, len(batches))
	for i, b := range batches {
		nb := graph.Batch{
			Add: append([]graph.Edge(nil), b.Add...),
			Del: append([]graph.Edge(nil), b.Del...),
		}
		if i >= window {
			for _, e := range batches[i-window].Add {
				nb.Del = append(nb.Del, graph.Edge{From: e.From, To: e.To})
			}
		}
		out[i] = nb
	}
	return out
}
