package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteBatches writes mutation batches in the stream text format: one
// mutation per line — "a src dst weight" for an addition, "d src dst"
// for a deletion — with "#batch" lines separating batches.
func WriteBatches(w io.Writer, batches []graph.Batch) error {
	bw := bufio.NewWriter(w)
	for _, b := range batches {
		if _, err := fmt.Fprintln(bw, "#batch"); err != nil {
			return err
		}
		for _, e := range b.Add {
			if _, err := fmt.Fprintf(bw, "a %d %d %g\n", e.From, e.To, e.Weight); err != nil {
				return err
			}
		}
		for _, e := range b.Del {
			if _, err := fmt.Fprintf(bw, "d %d %d\n", e.From, e.To); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBatches parses the format written by WriteBatches. Missing weights
// default to 1; blank lines and other "#" comments are ignored.
func ReadBatches(r io.Reader) ([]graph.Batch, error) {
	var batches []graph.Batch
	var cur graph.Batch
	flush := func() {
		if len(cur.Add)+len(cur.Del) > 0 {
			batches = append(batches, cur)
			cur = graph.Batch{}
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == "#batch" {
				flush()
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("stream: line %d: want 'a src dst [w]' or 'd src dst', got %q", lineNo, line)
		}
		from, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad source: %v", lineNo, err)
		}
		to, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad target: %v", lineNo, err)
		}
		switch fields[0] {
		case "a":
			w := 1.0
			if len(fields) >= 4 {
				w, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("stream: line %d: bad weight: %v", lineNo, err)
				}
			}
			cur.Add = append(cur.Add, graph.Edge{From: graph.VertexID(from), To: graph.VertexID(to), Weight: w})
		case "d":
			cur.Del = append(cur.Del, graph.Edge{From: graph.VertexID(from), To: graph.VertexID(to)})
		default:
			return nil, fmt.Errorf("stream: line %d: unknown op %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return batches, nil
}

// DeleteVertex expands a vertex deletion into the batch operations the
// engine understands: deleting every incident edge of v in g. The vertex
// id itself remains allocated (ids are dense), isolated and inert —
// matching the paper's treatment of vertex deletions as edge deletions.
func DeleteVertex(g *graph.Graph, v graph.VertexID, b *graph.Batch) {
	ts, _ := g.OutNeighbors(v)
	for _, t := range ts {
		b.Del = append(b.Del, graph.Edge{From: v, To: t})
	}
	us, _ := g.InNeighbors(v)
	for _, u := range us {
		if u == v {
			continue // self loop already covered by the out direction
		}
		b.Del = append(b.Del, graph.Edge{From: u, To: v})
	}
}

// UpdateWeight expands an edge-weight change into delete + insert, the
// canonical streaming-graph encoding. Reports false if the edge does not
// exist.
func UpdateWeight(g *graph.Graph, from, to graph.VertexID, newWeight float64, b *graph.Batch) bool {
	if _, ok := g.EdgeWeight(from, to); !ok {
		return false
	}
	b.Del = append(b.Del, graph.Edge{From: from, To: to})
	b.Add = append(b.Add, graph.Edge{From: from, To: to, Weight: newWeight})
	return true
}
