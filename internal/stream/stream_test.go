package stream

import (
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestFromEdgesSplitsAndBatches(t *testing.T) {
	edges := gen.RMAT(1, 256, 2000, gen.WeightUnit)
	s, err := FromEdges(256, edges, Config{LoadFraction: 0.5, BatchSize: 100, DeleteFraction: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Base.NumEdges() != 1000 {
		t.Fatalf("base edges = %d, want 1000", s.Base.NumEdges())
	}
	if len(s.Batches) == 0 {
		t.Fatal("no batches")
	}
	// Full batches carry 75 adds / 25 dels; trailing batches may be
	// short once either pool drains.
	if b := s.Batches[0]; len(b.Add) != 75 || len(b.Del) != 25 {
		t.Fatalf("batch 0: add=%d del=%d, want 75/25", len(b.Add), len(b.Del))
	}
	totalAdds := 0
	for _, b := range s.Batches {
		totalAdds += len(b.Add)
	}
	if totalAdds != 1000 {
		t.Fatalf("streamed %d additions, want 1000", totalAdds)
	}
}

func TestFromEdgesNoDuplicateDeletes(t *testing.T) {
	edges := gen.RMAT(2, 128, 1000, gen.WeightUnit)
	s, err := FromEdges(128, edges, Config{BatchSize: 50, DeleteFraction: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]graph.VertexID]int{}
	dupBudget := map[[2]graph.VertexID]int{}
	for _, e := range edges[:500] {
		dupBudget[[2]graph.VertexID{e.From, e.To}]++
	}
	for _, b := range s.Batches {
		for _, d := range b.Del {
			k := [2]graph.VertexID{d.From, d.To}
			seen[k]++
			if seen[k] > dupBudget[k] {
				t.Fatalf("deletion of %v exceeds multiplicity in loaded graph", k)
			}
		}
	}
}

func TestStreamAppliesCleanly(t *testing.T) {
	edges := gen.RMAT(3, 128, 1200, gen.WeightUnit)
	s, err := FromEdges(128, edges, Config{BatchSize: 60, DeleteFraction: 0.2, Seed: 9, NumBatches: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Batches) != 5 {
		t.Fatalf("batches = %d, want 5", len(s.Batches))
	}
	g := s.Base
	for i, b := range s.Batches {
		var res graph.ApplyResult
		g, res = g.Apply(b)
		if res.MissingDeletes != 0 {
			t.Fatalf("batch %d: %d deletions missed", i, res.MissingDeletes)
		}
	}
}

func TestNumBatchesZeroDrainsAdds(t *testing.T) {
	edges := gen.Uniform(4, 64, 400, gen.WeightUnit)
	s, err := FromEdges(64, edges, Config{BatchSize: 30, DeleteFraction: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range s.Batches {
		total += len(b.Add)
		if len(b.Del) != 0 {
			t.Fatal("unexpected deletions with DeleteFraction=0")
		}
	}
	if total != 200 {
		t.Fatalf("streamed %d additions, want 200", total)
	}
}

func TestRMATStreamHelper(t *testing.T) {
	s, err := RMAT(7, 128, 1000, gen.WeightUniform, Config{BatchSize: 100, NumBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Base.NumVertices() != 128 || len(s.Batches) != 2 {
		t.Fatalf("V=%d batches=%d", s.Base.NumVertices(), len(s.Batches))
	}
}

func TestHiLoBatchTargetsDegrees(t *testing.T) {
	// Star + chain: vertex 0 has high out-degree, chain vertices low.
	var edges []graph.Edge
	for v := 1; v <= 50; v++ {
		edges = append(edges, graph.Edge{From: 0, To: graph.VertexID(v), Weight: 1})
	}
	for v := 50; v < 99; v++ {
		edges = append(edges, graph.Edge{From: graph.VertexID(v), To: graph.VertexID(v + 1), Weight: 1})
	}
	g := graph.MustBuild(100, edges)

	avgSrcDeg := func(b graph.Batch) float64 {
		total, count := 0, 0
		for _, e := range b.Add {
			total += g.OutDegree(e.From)
			count++
		}
		if count == 0 {
			return 0
		}
		return float64(total) / float64(count)
	}
	hi := HiLoBatch(g, WorkloadHi, 20, 0.5, 11)
	lo := HiLoBatch(g, WorkloadLo, 20, 0.5, 11)
	if avgSrcDeg(hi) <= avgSrcDeg(lo) {
		t.Fatalf("Hi avg source degree %v not above Lo %v", avgSrcDeg(hi), avgSrcDeg(lo))
	}
	for _, e := range lo.Add {
		if e.From == 0 {
			t.Fatal("Lo workload picked the hub")
		}
	}
	// Deletions must reference existing edges.
	for _, d := range append(hi.Del, lo.Del...) {
		if !g.HasEdge(d.From, d.To) {
			t.Fatalf("deletion of nonexistent edge (%d,%d)", d.From, d.To)
		}
	}
}

func TestHiLoBatchEmptyGraph(t *testing.T) {
	g := graph.MustBuild(10, nil)
	b := HiLoBatch(g, WorkloadHi, 5, 0.5, 1)
	if len(b.Add) != 0 || len(b.Del) != 0 {
		t.Fatal("HiLoBatch on edgeless graph should be empty")
	}
}

func TestWindowedExpiresOldAdditions(t *testing.T) {
	batches := []graph.Batch{
		{Add: []graph.Edge{{From: 0, To: 1, Weight: 1}}},
		{Add: []graph.Edge{{From: 1, To: 2, Weight: 1}}},
		{Add: []graph.Edge{{From: 2, To: 3, Weight: 1}}},
	}
	win := Windowed(batches, 2)
	if len(win[0].Del) != 0 || len(win[1].Del) != 0 {
		t.Fatal("early batches should not expire anything")
	}
	if len(win[2].Del) != 1 || win[2].Del[0].From != 0 || win[2].Del[0].To != 1 {
		t.Fatalf("batch 2 should expire (0,1): %v", win[2].Del)
	}
	// Source batches untouched.
	if len(batches[2].Del) != 0 {
		t.Fatal("Windowed mutated its input")
	}
}

func TestWindowedStreamMaintainsWindowSize(t *testing.T) {
	g := graph.MustBuild(50, nil)
	r := gen.NewRNG(8)
	var batches []graph.Batch
	for i := 0; i < 10; i++ {
		var b graph.Batch
		for j := 0; j < 20; j++ {
			b.Add = append(b.Add, graph.Edge{
				From:   graph.VertexID(r.Intn(50)),
				To:     graph.VertexID(r.Intn(50)),
				Weight: 1,
			})
		}
		batches = append(batches, b)
	}
	const window = 3
	for i, b := range Windowed(batches, window) {
		g, _ = g.Apply(b)
		want := int64(20 * window)
		if i < window {
			want = int64(20 * (i + 1))
		}
		if g.NumEdges() != want {
			t.Fatalf("after batch %d: %d edges, want %d", i, g.NumEdges(), want)
		}
	}
}

func TestWindowedRefinementMatchesScratch(t *testing.T) {
	// A windowed PR stream exercises the deletion-heavy regime.
	r := gen.NewRNG(9)
	var batches []graph.Batch
	for i := 0; i < 8; i++ {
		var b graph.Batch
		for j := 0; j < 30; j++ {
			b.Add = append(b.Add, graph.Edge{
				From:   graph.VertexID(r.Intn(80)),
				To:     graph.VertexID(r.Intn(80)),
				Weight: 1,
			})
		}
		batches = append(batches, b)
	}
	g := graph.MustBuild(80, nil)
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for _, b := range Windowed(batches, 2) {
		eng.ApplyBatch(b)
	}
	fresh, _ := core.NewEngine[float64, float64](eng.Graph(), algorithms.NewPageRank(),
		core.Options{Mode: core.ModeReset, MaxIterations: 8})
	fresh.Run()
	for v := range eng.Values() {
		d := eng.Values()[v] - fresh.Values()[v]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("vertex %d: %v vs %v", v, eng.Values()[v], fresh.Values()[v])
		}
	}
}
