package stream

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBatchesRoundTrip(t *testing.T) {
	in := []graph.Batch{
		{
			Add: []graph.Edge{{From: 0, To: 1, Weight: 2.5}, {From: 3, To: 4, Weight: 1}},
			Del: []graph.Edge{{From: 1, To: 0}},
		},
		{
			Del: []graph.Edge{{From: 3, To: 4}},
		},
	}
	var buf bytes.Buffer
	if err := WriteBatches(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBatches(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%v\nout=%v", in, out)
	}
}

func TestReadBatchesDefaultsAndErrors(t *testing.T) {
	out, err := ReadBatches(bytes.NewBufferString("#batch\na 0 1\n# a comment\n\nd 1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Add[0].Weight != 1 || len(out[0].Del) != 1 {
		t.Fatalf("parsed %v", out)
	}
	for _, bad := range []string{"a 0\n", "x 0 1\n", "a q 1\n", "a 0 q\n", "a 0 1 q\n"} {
		if _, err := ReadBatches(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestReadBatchesEmptyBatchesSkipped(t *testing.T) {
	out, err := ReadBatches(bytes.NewBufferString("#batch\n#batch\na 0 1 1\n#batch\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("batches = %d, want 1", len(out))
	}
}

func TestWriteBatchesElidesEmpty(t *testing.T) {
	// An empty batch serializes as a lone "#batch" separator, which the
	// reader folds into the next batch: empty batches do not survive a
	// round trip. The durable layer journals them binary precisely so
	// no-op ticks keep their sequence numbers; the text format is for
	// streams where only effects matter.
	in := []graph.Batch{
		{Add: []graph.Edge{{From: 0, To: 1, Weight: 1}}},
		{}, // elided
		{Del: []graph.Edge{{From: 0, To: 1}}},
	}
	var buf bytes.Buffer
	if err := WriteBatches(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBatches(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Batch{in[0], in[2]}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("round trip:\nout =%v\nwant=%v", out, want)
	}
}

func TestDeletionOnlyBatchRoundTrip(t *testing.T) {
	// Deletions serialize endpoints only: a weight on a delete request is
	// documented as ignored (matching is by (From,To)), and the round
	// trip normalizes it away.
	in := []graph.Batch{{Del: []graph.Edge{{From: 5, To: 9, Weight: 7}, {From: 2, To: 2}}}}
	var buf bytes.Buffer
	if err := WriteBatches(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBatches(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Batch{{Del: []graph.Edge{{From: 5, To: 9}, {From: 2, To: 2}}}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("round trip:\nout =%v\nwant=%v", out, want)
	}
}

func TestRoundTripWeightFidelity(t *testing.T) {
	// %g prints the shortest representation that parses back exactly, so
	// weights must survive the text round trip bit-for-bit.
	weights := []float64{0.1, 1.0 / 3.0, 1e-17, 6.02214076e23, -2.5}
	in := []graph.Batch{{}}
	for i, w := range weights {
		in[0].Add = append(in[0].Add, graph.Edge{From: 0, To: graph.VertexID(i), Weight: w})
	}
	var buf bytes.Buffer
	if err := WriteBatches(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBatches(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range weights {
		if got := out[0].Add[i].Weight; got != w {
			t.Errorf("weight %d: wrote %v, read %v", i, w, got)
		}
	}
}

func TestReadBatchesMalformedIDs(t *testing.T) {
	for _, bad := range []string{
		"a -1 2 1\n",         // negative source
		"a 1 -2 1\n",         // negative target
		"a 4294967296 0 1\n", // source overflows uint32
		"d 0 4294967296\n",   // target overflows uint32
		"a 0 1 1 extra junk that is fine\n#batch\na\n", // short line after valid one
	} {
		if _, err := ReadBatches(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestDeleteVertexRemovesAllIncidentEdges(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
		{From: 2, To: 1, Weight: 1}, {From: 1, To: 1, Weight: 1}, // self loop
		{From: 3, To: 0, Weight: 1},
	})
	var b graph.Batch
	DeleteVertex(g, 1, &b)
	ng, res := g.Apply(b)
	if res.MissingDeletes != 0 {
		t.Fatalf("missing deletes: %d", res.MissingDeletes)
	}
	if ng.OutDegree(1) != 0 || ng.InDegree(1) != 0 {
		t.Fatalf("vertex 1 still has edges: out=%d in=%d", ng.OutDegree(1), ng.InDegree(1))
	}
	if !ng.HasEdge(3, 0) {
		t.Fatal("unrelated edge removed")
	}
}

func TestDeleteVertexThenRefineMatchesScratch(t *testing.T) {
	edges := gen.RMAT(77, 100, 800, gen.WeightUniform)
	g := graph.MustBuild(100, edges)
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var b graph.Batch
	DeleteVertex(g, 5, &b)
	DeleteVertex(g, 42, &b)
	eng.ApplyBatch(b)

	fresh, _ := core.NewEngine[float64, float64](eng.Graph(), algorithms.NewPageRank(),
		core.Options{Mode: core.ModeReset, MaxIterations: 8})
	fresh.Run()
	for v := range eng.Values() {
		d := eng.Values()[v] - fresh.Values()[v]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("vertex %d: %v vs %v", v, eng.Values()[v], fresh.Values()[v])
		}
	}
}

func TestUpdateWeight(t *testing.T) {
	g := graph.MustBuild(2, []graph.Edge{{From: 0, To: 1, Weight: 3}})
	var b graph.Batch
	if !UpdateWeight(g, 0, 1, 7, &b) {
		t.Fatal("existing edge reported missing")
	}
	ng, _ := g.Apply(b)
	if w, _ := ng.EdgeWeight(0, 1); w != 7 {
		t.Fatalf("weight = %v, want 7", w)
	}
	if UpdateWeight(g, 1, 0, 9, &b) {
		t.Fatal("missing edge reported present")
	}
}
