package algorithms

import (
	"math"

	"repro/internal/core"
)

// BeliefProp implements (loopy) Belief Propagation inference over a
// pairwise Markov random field laid on the graph, the paper's BP
// benchmark (Table 4, Algorithm 2):
//
//	д_i(v)[s] = Π_{(u,v)∈E} ( Σ_{s'} φ(u,s')·ψ(u,v,s',s)·c_{i-1}(u)[s'] )
//	c_i(v)    = normalize(д_i(v))
//
// The aggregation is complex (a product of per-edge message vectors that
// transform the source value), so it is incrementalized by on-the-fly
// evaluation of discrete contributions: Retract divides out the old
// contribution recomputed from the old source value, Propagate multiplies
// in the new one — the repropagate/retract/propagate trio of Algorithm 2.
// No single-pass delta exists, so the engine issues the pair.
type BeliefProp struct {
	// States is |S|, the number of latent states.
	States int
	// Phi is the node potential φ(v, s); must be strictly positive.
	Phi func(v core.VertexID, s int) float64
	// Psi is the edge potential ψ(u, v, s', s); must be strictly positive.
	Psi func(u, v core.VertexID, s1, s2 int) float64
	// Tolerance gates selective scheduling on L∞ distance.
	Tolerance float64
}

// NewBeliefProp builds a BP instance with deterministic pseudo-random
// potentials in [0.5, 1.5), seeded per vertex/state — the synthetic MRF
// standing in for the paper's inference workloads.
func NewBeliefProp(states int) *BeliefProp {
	return &BeliefProp{
		States: states,
		Phi: func(v core.VertexID, s int) float64 {
			return 0.5 + hashUnit(uint64(v)*31+uint64(s))
		},
		Psi: func(u, v core.VertexID, s1, s2 int) float64 {
			return 0.5 + hashUnit(uint64(u)*1315423911+uint64(v)*2654435761+uint64(s1)*97+uint64(s2))
		},
	}
}

// hashUnit maps a key to [0, 1) deterministically.
func hashUnit(x uint64) float64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// InitValue starts from the uniform belief.
func (p *BeliefProp) InitValue(core.VertexID) []float64 {
	d := make([]float64, p.States)
	for i := range d {
		d[i] = 1 / float64(p.States)
	}
	return d
}

// IdentityAgg is the all-ones product identity.
func (p *BeliefProp) IdentityAgg() []float64 {
	d := make([]float64, p.States)
	for i := range d {
		d[i] = 1
	}
	return d
}

// contribution computes the per-edge message vector from the source's
// normalized product (getContribution of Algorithm 2).
func (p *BeliefProp) contribution(src []float64, u, v core.VertexID) []float64 {
	contrib := make([]float64, p.States)
	for s := 0; s < p.States; s++ {
		var sum float64
		for s1 := 0; s1 < p.States; s1++ {
			sum += p.Phi(u, s1) * p.Psi(u, v, s1, s) * src[s1]
		}
		contrib[s] = sum
	}
	return contrib
}

// Propagate multiplies the contribution in (repropagate/propagate).
func (p *BeliefProp) Propagate(agg *[]float64, src []float64, u, v core.VertexID, _ float64, _ int) {
	contrib := p.contribution(src, u, v)
	a := *agg
	for s := range a {
		a[s] *= contrib[s]
	}
}

// Retract divides the old contribution out (retract of Algorithm 2).
func (p *BeliefProp) Retract(agg *[]float64, src []float64, u, v core.VertexID, _ float64, _ int) {
	contrib := p.contribution(src, u, v)
	a := *agg
	for s := range a {
		a[s] /= contrib[s]
	}
}

// Compute normalizes the product into a belief.
func (p *BeliefProp) Compute(_ core.VertexID, agg []float64) []float64 {
	out := make([]float64, p.States)
	var total float64
	for _, x := range agg {
		total += x
	}
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		for i := range out {
			out[i] = 1 / float64(p.States)
		}
		return out
	}
	for s := range out {
		out[s] = agg[s] / total
	}
	return out
}

// Changed implements selective scheduling on L∞ distance.
func (p *BeliefProp) Changed(oldV, newV []float64) bool {
	for s := range oldV {
		d := math.Abs(oldV[s] - newV[s])
		if p.Tolerance <= 0 {
			if d != 0 {
				return true
			}
		} else if d > p.Tolerance {
			return true
		}
	}
	return false
}

// CloneAgg implements core.Program.
func (p *BeliefProp) CloneAgg(a []float64) []float64 { return append([]float64(nil), a...) }

// AggBytes implements core.Program.
func (p *BeliefProp) AggBytes(a []float64) int { return 24 + 8*len(a) }

var _ core.Program[[]float64, []float64] = (*BeliefProp)(nil)
