// Package algorithms implements the six synchronous graph algorithms of
// the paper's evaluation (Table 4) — PageRank, Belief Propagation, Label
// Propagation, CoEM, Collaborative Filtering, Triangle Counting — plus
// SSSP and BFS (the non-decomposable min-aggregation comparison of §5.4)
// and Connected Components, all expressed against the core engine's
// incremental programming model.
package algorithms

import (
	"math"

	"repro/internal/core"
)

// PageRank computes relative page importance with the classic damped
// sum aggregation (Table 4):
//
//	д_i(v) = Σ_{(u,v)∈E} c_{i-1}(u) / out_degree(u)
//	c_i(v) = (1-d) + d · д_i(v)
//
// It is a simple decomposable aggregation: the change in contribution is
// captured directly by propagateDelta (Algorithm 3 of the paper).
type PageRank struct {
	// Damping is d above; the paper uses 0.85.
	Damping float64
	// Tolerance gates selective scheduling: value changes with absolute
	// difference ≤ Tolerance are not propagated. 0 gives exact BSP.
	Tolerance float64
}

// NewPageRank returns PageRank with the paper's constants.
func NewPageRank() *PageRank { return &PageRank{Damping: 0.85} }

// InitValue implements core.Program: every rank starts at 1 (Algorithm 1).
func (p *PageRank) InitValue(core.VertexID) float64 { return 1 }

// IdentityAgg implements core.Program.
func (p *PageRank) IdentityAgg() float64 { return 0 }

func contributionPR(src float64, deg int) float64 {
	if deg <= 0 {
		// A source with no out-edges in the relevant snapshot contributes
		// nothing; the degree-change delta re-adds the proper share.
		return 0
	}
	return src / float64(deg)
}

// Propagate implements ⊎.
func (p *PageRank) Propagate(agg *float64, src float64, _, _ core.VertexID, _ float64, srcOutDeg int) {
	*agg += contributionPR(src, srcOutDeg)
}

// Retract implements ⋃-.
func (p *PageRank) Retract(agg *float64, src float64, _, _ core.VertexID, _ float64, srcOutDeg int) {
	*agg -= contributionPR(src, srcOutDeg)
}

// PropagateDelta implements ⋃△ in a single pass (propagateDelta of
// Algorithm 3): new/new_degree − old/old_degree.
func (p *PageRank) PropagateDelta(agg *float64, oldSrc, newSrc float64, _, _ core.VertexID, _ float64, oldDeg, newDeg int) {
	*agg += contributionPR(newSrc, newDeg) - contributionPR(oldSrc, oldDeg)
}

// Compute implements ∮.
func (p *PageRank) Compute(_ core.VertexID, agg float64) float64 {
	return (1 - p.Damping) + p.Damping*agg
}

// Changed implements selective scheduling.
func (p *PageRank) Changed(oldV, newV float64) bool {
	if p.Tolerance <= 0 {
		return oldV != newV
	}
	return math.Abs(oldV-newV) > p.Tolerance
}

// CloneAgg implements core.Program.
func (p *PageRank) CloneAgg(a float64) float64 { return a }

// AggBytes implements core.Program.
func (p *PageRank) AggBytes(float64) int { return 8 }

// UsesOutDegree reports that contributions are degree-normalized.
func (p *PageRank) UsesOutDegree() bool { return true }

var (
	_ core.Program[float64, float64]      = (*PageRank)(nil)
	_ core.DeltaProgram[float64, float64] = (*PageRank)(nil)
	_ core.DegreeSensitive                = (*PageRank)(nil)
)

// PersonalizedPageRank biases the teleport mass toward a source set:
// restart probability flows only to the given vertices, ranking the
// graph relative to them. Same simple-sum aggregation as PageRank, so
// the same single-pass incremental delta applies.
type PersonalizedPageRank struct {
	PageRank
	// Sources receive the teleport mass, equally divided.
	Sources map[core.VertexID]struct{}
}

// NewPersonalizedPageRank returns a PPR instance over the source set.
func NewPersonalizedPageRank(sources []core.VertexID) *PersonalizedPageRank {
	p := &PersonalizedPageRank{PageRank: PageRank{Damping: 0.85}}
	p.Sources = make(map[core.VertexID]struct{}, len(sources))
	for _, s := range sources {
		p.Sources[s] = struct{}{}
	}
	return p
}

// InitValue starts source vertices at 1, the rest at 0.
func (p *PersonalizedPageRank) InitValue(v core.VertexID) float64 {
	if _, ok := p.Sources[v]; ok {
		return 1
	}
	return 0
}

// Compute gives teleport mass only to sources.
func (p *PersonalizedPageRank) Compute(v core.VertexID, agg float64) float64 {
	teleport := 0.0
	if _, ok := p.Sources[v]; ok {
		teleport = 1 - p.Damping
	}
	return teleport + p.Damping*agg
}

var (
	_ core.Program[float64, float64]      = (*PersonalizedPageRank)(nil)
	_ core.DeltaProgram[float64, float64] = (*PersonalizedPageRank)(nil)
	_ core.DegreeSensitive                = (*PersonalizedPageRank)(nil)
)
