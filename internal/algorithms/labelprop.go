package algorithms

import (
	"math"

	"repro/internal/core"
)

// LabelProp implements semi-supervised Label Propagation (Zhu &
// Ghahramani), the paper's LP benchmark: each vertex carries a
// distribution over F labels; unlabeled vertices adopt the normalized
// weighted average of their in-neighbors, seeds stay clamped.
//
//	д_i(v)[f] = Σ_{(u,v)∈E} c_{i-1}(u)[f] · weight(u,v)   (Table 4)
//	c_i(v)    = normalize(д_i(v))   (seeds: fixed one-hot)
//
// The aggregation is a vector of simple sums, so the single-pass delta
// applies componentwise.
type LabelProp struct {
	// Labels is F, the number of classes.
	Labels int
	// Seeds maps vertex → clamped label.
	Seeds map[core.VertexID]int
	// Tolerance gates selective scheduling on the L∞ distance.
	Tolerance float64
}

// NewLabelProp builds an LP instance with F labels and the given seeds.
func NewLabelProp(labels int, seeds map[core.VertexID]int) *LabelProp {
	return &LabelProp{Labels: labels, Seeds: seeds}
}

// InitValue returns a one-hot distribution for seeds, uniform otherwise.
func (p *LabelProp) InitValue(v core.VertexID) []float64 {
	d := make([]float64, p.Labels)
	if f, ok := p.Seeds[v]; ok {
		d[f] = 1
		return d
	}
	for i := range d {
		d[i] = 1 / float64(p.Labels)
	}
	return d
}

// IdentityAgg implements core.Program.
func (p *LabelProp) IdentityAgg() []float64 { return make([]float64, p.Labels) }

// Propagate implements ⊎.
func (p *LabelProp) Propagate(agg *[]float64, src []float64, _, _ core.VertexID, w float64, _ int) {
	a := *agg
	for f := range a {
		a[f] += src[f] * w
	}
}

// Retract implements ⋃-.
func (p *LabelProp) Retract(agg *[]float64, src []float64, _, _ core.VertexID, w float64, _ int) {
	a := *agg
	for f := range a {
		a[f] -= src[f] * w
	}
}

// PropagateDelta implements ⋃△ componentwise.
func (p *LabelProp) PropagateDelta(agg *[]float64, oldSrc, newSrc []float64, _, _ core.VertexID, w float64, _, _ int) {
	a := *agg
	for f := range a {
		a[f] += (newSrc[f] - oldSrc[f]) * w
	}
}

// massEpsilon is the threshold below which aggregate mass is treated as
// zero. Incremental retraction (⋃-) cancels contributions in floating
// point, leaving ~1e-17 dust where the true aggregate is empty;
// normalizing that dust would amplify it into an arbitrary distribution,
// so near-zero totals fall back to the prior exactly like truly empty
// aggregates do.
const massEpsilon = 1e-9

// Compute normalizes the aggregate; seeds remain clamped; vertices with
// no (meaningful) mass keep the uniform prior.
func (p *LabelProp) Compute(v core.VertexID, agg []float64) []float64 {
	out := make([]float64, p.Labels)
	if f, ok := p.Seeds[v]; ok {
		out[f] = 1
		return out
	}
	var total float64
	for _, x := range agg {
		total += x
	}
	if total <= massEpsilon {
		for i := range out {
			out[i] = 1 / float64(p.Labels)
		}
		return out
	}
	for f := range out {
		out[f] = agg[f] / total
	}
	return out
}

// Changed implements selective scheduling on L∞ distance.
func (p *LabelProp) Changed(oldV, newV []float64) bool {
	for f := range oldV {
		d := math.Abs(oldV[f] - newV[f])
		if p.Tolerance <= 0 {
			if d != 0 {
				return true
			}
		} else if d > p.Tolerance {
			return true
		}
	}
	return false
}

// CloneAgg implements core.Program.
func (p *LabelProp) CloneAgg(a []float64) []float64 { return append([]float64(nil), a...) }

// AggBytes implements core.Program.
func (p *LabelProp) AggBytes(a []float64) int { return 24 + 8*len(a) }

var (
	_ core.Program[[]float64, []float64]      = (*LabelProp)(nil)
	_ core.DeltaProgram[[]float64, []float64] = (*LabelProp)(nil)
)
