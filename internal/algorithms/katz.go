package algorithms

import (
	"math"

	"repro/internal/core"
)

// Katz computes Katz centrality under BSP semantics:
//
//	д_i(v) = Σ_{(u,v)∈E} c_{i-1}(u)
//	c_i(v) = β + α · д_i(v)
//
// a plain-sum decomposable aggregation (no degree normalization), so the
// single-pass incremental delta applies directly. α must satisfy
// α < 1/λ_max for convergence; the conservative defaults below converge
// on any graph with max in-degree ≤ 1/α.
type Katz struct {
	// Alpha is the attenuation factor α. Default 0.01.
	Alpha float64
	// Beta is the base centrality β. Default 1.
	Beta float64
	// Tolerance gates selective scheduling.
	Tolerance float64
}

// NewKatz returns Katz centrality with conservative defaults.
func NewKatz() *Katz { return &Katz{Alpha: 0.01, Beta: 1} }

// InitValue implements core.Program.
func (p *Katz) InitValue(core.VertexID) float64 { return 1 }

// IdentityAgg implements core.Program.
func (p *Katz) IdentityAgg() float64 { return 0 }

// Propagate implements ⊎.
func (p *Katz) Propagate(agg *float64, src float64, _, _ core.VertexID, _ float64, _ int) {
	*agg += src
}

// Retract implements ⋃-.
func (p *Katz) Retract(agg *float64, src float64, _, _ core.VertexID, _ float64, _ int) {
	*agg -= src
}

// PropagateDelta implements ⋃△.
func (p *Katz) PropagateDelta(agg *float64, oldSrc, newSrc float64, _, _ core.VertexID, _ float64, _, _ int) {
	*agg += newSrc - oldSrc
}

// Compute implements ∮.
func (p *Katz) Compute(_ core.VertexID, agg float64) float64 {
	return p.Beta + p.Alpha*agg
}

// Changed implements selective scheduling.
func (p *Katz) Changed(oldV, newV float64) bool {
	if p.Tolerance <= 0 {
		return oldV != newV
	}
	return math.Abs(oldV-newV) > p.Tolerance
}

// CloneAgg implements core.Program.
func (p *Katz) CloneAgg(a float64) float64 { return a }

// AggBytes implements core.Program.
func (p *Katz) AggBytes(float64) int { return 8 }

var (
	_ core.Program[float64, float64]      = (*Katz)(nil)
	_ core.DeltaProgram[float64, float64] = (*Katz)(nil)
)
