package algorithms

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestPageRankContributionGuardsZeroDegree(t *testing.T) {
	p := NewPageRank()
	var agg float64
	p.Propagate(&agg, 1.0, 0, 1, 1, 0)
	if agg != 0 {
		t.Fatalf("zero-degree contribution = %v, want 0", agg)
	}
	p.PropagateDelta(&agg, 1.0, 2.0, 0, 1, 1, 0, 4)
	if agg != 0.5 {
		t.Fatalf("delta with degree change = %v, want 0.5", agg)
	}
}

func TestPageRankDeltaMatchesRetractPropagate(t *testing.T) {
	p := NewPageRank()
	a1, a2 := 3.0, 3.0
	p.PropagateDelta(&a1, 0.4, 0.9, 0, 1, 1, 5, 5)
	p.Retract(&a2, 0.4, 0, 1, 1, 5)
	p.Propagate(&a2, 0.9, 0, 1, 1, 5)
	if math.Abs(a1-a2) > 1e-15 {
		t.Fatalf("delta %v != retract+propagate %v", a1, a2)
	}
}

func TestPageRankChangedTolerance(t *testing.T) {
	p := &PageRank{Damping: 0.85, Tolerance: 0.01}
	if p.Changed(1.0, 1.005) {
		t.Fatal("sub-tolerance change reported")
	}
	if !p.Changed(1.0, 1.02) {
		t.Fatal("super-tolerance change missed")
	}
	p.Tolerance = 0
	if !p.Changed(1.0, math.Nextafter(1.0, 2)) {
		t.Fatal("exact mode missed ULP change")
	}
}

func TestLabelPropSeedsClamped(t *testing.T) {
	p := NewLabelProp(3, map[core.VertexID]int{5: 2})
	v := p.InitValue(5)
	if v[2] != 1 || v[0] != 0 {
		t.Fatalf("seed init = %v", v)
	}
	// Compute must ignore aggregate for seeds.
	out := p.Compute(5, []float64{9, 9, 9})
	if out[2] != 1 || out[0] != 0 {
		t.Fatalf("seed compute = %v", out)
	}
	// Unlabeled normalizes.
	out = p.Compute(1, []float64{1, 1, 2})
	if math.Abs(out[2]-0.5) > 1e-15 {
		t.Fatalf("normalize = %v", out)
	}
	// Zero mass: uniform.
	out = p.Compute(1, []float64{0, 0, 0})
	if math.Abs(out[0]-1.0/3) > 1e-15 {
		t.Fatalf("zero-mass = %v", out)
	}
}

func TestLabelPropDeltaConsistency(t *testing.T) {
	p := NewLabelProp(2, nil)
	a1 := []float64{1, 2}
	a2 := []float64{1, 2}
	oldV, newV := []float64{0.2, 0.8}, []float64{0.6, 0.4}
	p.PropagateDelta(&a1, oldV, newV, 0, 1, 2.5, 0, 0)
	p.Retract(&a2, oldV, 0, 1, 2.5, 0)
	p.Propagate(&a2, newV, 0, 1, 2.5, 0)
	for f := range a1 {
		if math.Abs(a1[f]-a2[f]) > 1e-12 {
			t.Fatalf("delta %v != r+p %v", a1, a2)
		}
	}
}

func TestCoEMSeedsAndNormalization(t *testing.T) {
	p := NewCoEM([]core.VertexID{1}, []core.VertexID{2})
	if p.InitValue(1) != 1 || p.InitValue(2) != 0 || p.InitValue(3) != 0.5 {
		t.Fatal("seed init wrong")
	}
	if p.Compute(1, CoEMAgg{Sum: 0, W: 4}) != 1 {
		t.Fatal("positive seed not clamped")
	}
	if got := p.Compute(3, CoEMAgg{Sum: 2, W: 4}); got != 0.5 {
		t.Fatalf("normalized = %v", got)
	}
	if got := p.Compute(3, CoEMAgg{}); got != 0.5 {
		t.Fatalf("empty aggregate = %v, want neutral 0.5", got)
	}
}

func TestCoEMStructuralRetract(t *testing.T) {
	p := NewCoEM(nil, nil)
	var a CoEMAgg
	p.Propagate(&a, 0.8, 0, 1, 2.0, 0)
	p.Propagate(&a, 0.4, 2, 1, 1.0, 0)
	p.Retract(&a, 0.8, 0, 1, 2.0, 0)
	if math.Abs(a.Sum-0.4) > 1e-15 || math.Abs(a.W-1.0) > 1e-15 {
		t.Fatalf("after retract: %+v", a)
	}
}

func TestBeliefPropContributionRoundTrip(t *testing.T) {
	p := NewBeliefProp(4)
	agg := p.IdentityAgg()
	src := []float64{0.1, 0.2, 0.3, 0.4}
	p.Propagate(&agg, src, 3, 7, 1, 0)
	p.Retract(&agg, src, 3, 7, 1, 0)
	for s, x := range agg {
		if math.Abs(x-1) > 1e-12 {
			t.Fatalf("propagate+retract not identity at state %d: %v", s, x)
		}
	}
}

func TestBeliefPropComputeNormalizes(t *testing.T) {
	p := NewBeliefProp(3)
	out := p.Compute(0, []float64{2, 2, 4})
	if math.Abs(out[0]-0.25) > 1e-15 || math.Abs(out[2]-0.5) > 1e-15 {
		t.Fatalf("normalize = %v", out)
	}
	var total float64
	for _, x := range out {
		total += x
	}
	if math.Abs(total-1) > 1e-15 {
		t.Fatalf("belief sums to %v", total)
	}
	// Degenerate aggregates fall back to uniform.
	out = p.Compute(0, []float64{0, 0, 0})
	if math.Abs(out[0]-1.0/3) > 1e-15 {
		t.Fatalf("degenerate = %v", out)
	}
}

func TestBeliefPropPotentialsPositive(t *testing.T) {
	p := NewBeliefProp(2)
	for v := core.VertexID(0); v < 50; v++ {
		for s := 0; s < 2; s++ {
			if p.Phi(v, s) <= 0 {
				t.Fatal("non-positive phi")
			}
			if p.Psi(v, v+1, s, 1-s) <= 0 {
				t.Fatal("non-positive psi")
			}
		}
	}
}

func TestCollabFilterSolveIdentity(t *testing.T) {
	p := NewCollabFilter(3)
	// M = I, B = [1 2 3] → (I + λI)x = B → x = B/(1+λ).
	agg := p.IdentityAgg()
	for i := 0; i < 3; i++ {
		agg.M[i*3+i] = 1
		agg.B[i] = float64(i + 1)
	}
	x := p.Compute(0, agg)
	for i := range x {
		want := float64(i+1) / 1.1
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestCollabFilterEmptyKeepsInit(t *testing.T) {
	p := NewCollabFilter(4)
	x := p.Compute(9, p.IdentityAgg())
	init := p.InitValue(9)
	for i := range x {
		if x[i] != init[i] {
			t.Fatal("empty aggregate did not keep initial factors")
		}
	}
}

func TestCollabFilterDeltaMatchesRetractPropagate(t *testing.T) {
	p := NewCollabFilter(3)
	oldV := []float64{0.3, 0.5, 0.7}
	newV := []float64{0.4, 0.1, 0.9}
	a1, a2 := p.IdentityAgg(), p.IdentityAgg()
	p.Propagate(&a1, oldV, 0, 1, 2, 0)
	p.Propagate(&a2, oldV, 0, 1, 2, 0)
	p.PropagateDelta(&a1, oldV, newV, 0, 1, 2, 0, 0)
	p.Retract(&a2, oldV, 0, 1, 2, 0)
	p.Propagate(&a2, newV, 0, 1, 2, 0)
	for i := range a1.M {
		if math.Abs(a1.M[i]-a2.M[i]) > 1e-12 {
			t.Fatalf("M mismatch at %d", i)
		}
	}
	for i := range a1.B {
		if math.Abs(a1.B[i]-a2.B[i]) > 1e-12 {
			t.Fatalf("B mismatch at %d", i)
		}
	}
}

func TestSolveDenseSingular(t *testing.T) {
	// Two identical rows: singular.
	a := []float64{1, 2, 5, 1, 2, 5}
	if _, ok := solveDense(a, 2); ok {
		t.Fatal("solveDense accepted singular system")
	}
}

func TestSSSPOnKnownGraph(t *testing.T) {
	//      1 --2--> 2
	//  0 --1--> 1, 0 --5--> 2, 2 --1--> 3
	g := graph.MustBuild(5, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 2}, {From: 0, To: 2, Weight: 5}, {From: 2, To: 3, Weight: 1},
	})
	e, err := core.NewEngine[float64, float64](g, NewSSSP(0), core.Options{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	want := []float64{0, 1, 3, 4, math.Inf(1)}
	for v, d := range e.Values() {
		if d != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, d, want[v])
		}
	}
}

func TestSSSPDeletionLengthensPaths(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 0, To: 2, Weight: 10}, {From: 2, To: 3, Weight: 1},
	})
	e, _ := core.NewEngine[float64, float64](g, NewSSSP(0), core.Options{MaxIterations: 50})
	e.Run()
	if e.Values()[2] != 2 {
		t.Fatalf("pre-delete dist[2] = %v", e.Values()[2])
	}
	e.ApplyBatch(graph.Batch{Del: []graph.Edge{{From: 1, To: 2}}})
	if e.Values()[2] != 10 || e.Values()[3] != 11 {
		t.Fatalf("post-delete dists = %v", e.Values())
	}
	// Deleting the remaining path disconnects.
	e.ApplyBatch(graph.Batch{Del: []graph.Edge{{From: 0, To: 2}}})
	if !math.IsInf(e.Values()[2], 1) || !math.IsInf(e.Values()[3], 1) {
		t.Fatalf("post-disconnect dists = %v", e.Values())
	}
}

func TestBFSHopCountsIgnoreWeights(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{From: 0, To: 1, Weight: 100}, {From: 1, To: 2, Weight: 100}})
	e, _ := core.NewEngine[float64, float64](g, NewBFS(0), core.Options{MaxIterations: 10})
	e.Run()
	if e.Values()[1] != 1 || e.Values()[2] != 2 {
		t.Fatalf("hops = %v", e.Values())
	}
}

func TestConnectedComponentsLabels(t *testing.T) {
	// Two components (symmetric edges): {0,1,2} and {3,4}.
	g := graph.MustBuild(5, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 0, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 1, Weight: 1}, {From: 3, To: 4, Weight: 1}, {From: 4, To: 3, Weight: 1},
	})
	e, _ := core.NewEngine[float64, float64](g, NewConnectedComponents(), core.Options{MaxIterations: 20})
	e.Run()
	want := []float64{0, 0, 0, 3, 3}
	for v, l := range e.Values() {
		if l != want[v] {
			t.Fatalf("label[%d] = %v, want %v", v, l, want[v])
		}
	}
}

func TestTriangleCountKnown(t *testing.T) {
	// Directed 3-cycle 0→1→2→0 plus a chord that makes no extra cycle.
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1}, {From: 0, To: 2, Weight: 1},
	})
	tc := NewTriangleCounter(g)
	if tc.Triangles() != 1 {
		t.Fatalf("triangles = %d, want 1", tc.Triangles())
	}
	if tc.Count() != CountGraph(g) {
		t.Fatalf("counter %d vs CountGraph %d", tc.Count(), CountGraph(g))
	}
}

func TestTriangleCountIncrementalMatchesRecount(t *testing.T) {
	edges := gen.RMAT(41, 128, 1500, gen.WeightUnit)
	g := graph.MustBuild(128, edges)
	tc := NewTriangleCounter(g)
	if tc.Count() != CountGraph(g) {
		t.Fatalf("initial: %d vs %d", tc.Count(), CountGraph(g))
	}
	r := gen.NewRNG(99)
	for round := 0; round < 5; round++ {
		var b graph.Batch
		for i := 0; i < 30; i++ {
			b.Add = append(b.Add, graph.Edge{
				From: graph.VertexID(r.Intn(140)), To: graph.VertexID(r.Intn(140)), Weight: 1,
			})
		}
		all := g.Edges(nil)
		for i := 0; i < 20 && len(all) > 0; i++ {
			e := all[r.Intn(len(all))]
			b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
		}
		tc.Apply(b)
		g, _ = g.Apply(b)
		if got, want := tc.Count(), CountGraph(g); got != want {
			t.Fatalf("round %d: incremental %d vs recount %d", round, got, want)
		}
	}
}

func TestTriangleCountSelfLoopsIgnored(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{
		{From: 0, To: 0, Weight: 1}, {From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1}, {From: 1, To: 1, Weight: 1},
	})
	tc := NewTriangleCounter(g)
	if tc.Triangles() != 1 {
		t.Fatalf("triangles with self-loops = %d, want 1", tc.Triangles())
	}
	// Deleting and re-adding a self-loop must not change the count.
	tc.Apply(graph.Batch{Del: []graph.Edge{{From: 0, To: 0}}})
	tc.Apply(graph.Batch{Add: []graph.Edge{{From: 0, To: 0, Weight: 1}}})
	if tc.Triangles() != 1 {
		t.Fatalf("triangles after self-loop churn = %d", tc.Triangles())
	}
}

func TestTriangleCountMissingDelete(t *testing.T) {
	g := graph.MustBuild(2, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	tc := NewTriangleCounter(g)
	if missing := tc.Apply(graph.Batch{Del: []graph.Edge{{From: 1, To: 0}}}); missing != 1 {
		t.Fatalf("missing = %d, want 1", missing)
	}
}

func TestTriangleTopVertices(t *testing.T) {
	g := graph.MustBuild(5, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1},
	})
	tc := NewTriangleCounter(g)
	top := tc.TopTriangleVertices(2)
	if len(top) != 2 || top[0].Closures != 1 {
		t.Fatalf("top = %v", top)
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		u := hashUnit(i)
		if u < 0 || u >= 1 {
			t.Fatalf("hashUnit(%d) = %v", i, u)
		}
	}
}

func TestPersonalizedPageRankBiasesTowardSources(t *testing.T) {
	// Chain 0→1→2→3 plus 3→0 back edge; personalize on 0.
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
		{From: 2, To: 3, Weight: 1}, {From: 3, To: 0, Weight: 1},
	})
	ppr := NewPersonalizedPageRank([]core.VertexID{0})
	e, err := core.NewEngine[float64, float64](g, ppr, core.Options{MaxIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	vals := e.Values()
	// Mass decays along the chain away from the source.
	if !(vals[0] > vals[1] && vals[1] > vals[2] && vals[2] > vals[3]) {
		t.Fatalf("PPR not decaying from source: %v", vals)
	}
}

func TestPersonalizedPageRankRefinementMatchesScratch(t *testing.T) {
	edges := gen.RMAT(45, 120, 900, gen.WeightUnit)
	g := graph.MustBuild(120, edges)
	ppr := NewPersonalizedPageRank([]core.VertexID{3, 9})
	opts := core.Options{MaxIterations: 10, Horizon: 5}
	inc, _ := core.NewEngine[float64, float64](g, ppr, opts)
	inc.Run()
	r := gen.NewRNG(5)
	var b graph.Batch
	for i := 0; i < 20; i++ {
		b.Add = append(b.Add, graph.Edge{From: graph.VertexID(r.Intn(120)), To: graph.VertexID(r.Intn(120)), Weight: 1})
	}
	all := g.Edges(nil)
	for i := 0; i < 10; i++ {
		e := all[r.Intn(len(all))]
		b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
	}
	inc.ApplyBatch(b)
	fresh, _ := core.NewEngine[float64, float64](inc.Graph(), ppr, core.Options{Mode: core.ModeReset, MaxIterations: 10})
	fresh.Run()
	for v := range inc.Values() {
		d := inc.Values()[v] - fresh.Values()[v]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("vertex %d: %v vs %v", v, inc.Values()[v], fresh.Values()[v])
		}
	}
}

func TestKatzCentralityChain(t *testing.T) {
	// Chain 0→1→2: katz(2) > katz(1) > katz(0) (receiving more paths).
	g := graph.MustBuild(3, []graph.Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}})
	e, err := core.NewEngine[float64, float64](g, NewKatz(), core.Options{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	v := e.Values()
	if !(v[2] > v[1] && v[1] > v[0]) {
		t.Fatalf("katz not ordered by reachability: %v", v)
	}
	// Exact fixed point: k0 = 1; k1 = 1 + .01·k0; k2 = 1 + .01·k1.
	if math.Abs(v[1]-1.01) > 1e-12 || math.Abs(v[2]-1.0101) > 1e-12 {
		t.Fatalf("katz values %v", v)
	}
}

func TestKatzRefinementMatchesScratch(t *testing.T) {
	edges := gen.RMAT(46, 120, 800, gen.WeightUnit)
	g := graph.MustBuild(120, edges)
	opts := core.Options{MaxIterations: 12, Horizon: 6}
	inc, _ := core.NewEngine[float64, float64](g, NewKatz(), opts)
	inc.Run()
	r := gen.NewRNG(6)
	var b graph.Batch
	for i := 0; i < 25; i++ {
		b.Add = append(b.Add, graph.Edge{From: graph.VertexID(r.Intn(120)), To: graph.VertexID(r.Intn(120)), Weight: 1})
	}
	all := g.Edges(nil)
	for i := 0; i < 15; i++ {
		e := all[r.Intn(len(all))]
		b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
	}
	inc.ApplyBatch(b)
	fresh, _ := core.NewEngine[float64, float64](inc.Graph(), NewKatz(), core.Options{Mode: core.ModeReset, MaxIterations: 12})
	fresh.Run()
	for v := range inc.Values() {
		d := inc.Values()[v] - fresh.Values()[v]
		if d > 1e-10 || d < -1e-10 {
			t.Fatalf("vertex %d: %v vs %v", v, inc.Values()[v], fresh.Values()[v])
		}
	}
}
