package algorithms

import (
	"math"

	"repro/internal/core"
)

// SSSP computes single-source shortest paths under BSP semantics
// (Bellman–Ford layers):
//
//	д_i(v) = min_{(u,v)∈E} ( c_{i-1}(u) + weight(u,v) )
//	c_i(v) = min( init(v), д_i(v) )
//
// min is non-decomposable (§3.3): removing a contribution cannot be
// undone from the final value alone, so the program is marked Pull and
// the engine re-evaluates affected aggregates over the full updated
// in-neighborhood — the re-evaluation strategy compared against
// KickStarter in §5.4(B).
type SSSP struct {
	// Source is the origin vertex (distance 0).
	Source core.VertexID
}

// NewSSSP returns an SSSP program rooted at source.
func NewSSSP(source core.VertexID) *SSSP { return &SSSP{Source: source} }

// NonDecomposable marks the min aggregation (core.PullProgram).
func (p *SSSP) NonDecomposable() {}

// InitValue implements core.Program.
func (p *SSSP) InitValue(v core.VertexID) float64 {
	if v == p.Source {
		return 0
	}
	return math.Inf(1)
}

// IdentityAgg implements core.Program.
func (p *SSSP) IdentityAgg() float64 { return math.Inf(1) }

// Propagate lowers the running min.
func (p *SSSP) Propagate(agg *float64, src float64, _, _ core.VertexID, w float64, _ int) {
	if d := src + w; d < *agg {
		*agg = d
	}
}

// Retract must never be called: min cannot be incrementally retracted.
func (p *SSSP) Retract(*float64, float64, core.VertexID, core.VertexID, float64, int) {
	panic("algorithms: Retract on non-decomposable min aggregation")
}

// Compute implements ∮: a vertex keeps its own initial distance as a
// candidate (the source stays 0).
func (p *SSSP) Compute(v core.VertexID, agg float64) float64 {
	if init := p.InitValue(v); init < agg {
		return init
	}
	return agg
}

// Changed implements core.Program.
func (p *SSSP) Changed(oldV, newV float64) bool { return oldV != newV }

// CloneAgg implements core.Program.
func (p *SSSP) CloneAgg(a float64) float64 { return a }

// AggBytes implements core.Program.
func (p *SSSP) AggBytes(float64) int { return 8 }

var (
	_ core.Program[float64, float64] = (*SSSP)(nil)
	_ core.PullProgram               = (*SSSP)(nil)
)

// BFS computes hop distance from a source — SSSP over unit weights; the
// edge weight is ignored so weighted graphs still give hop counts.
type BFS struct {
	Source core.VertexID
}

// NewBFS returns a BFS program rooted at source.
func NewBFS(source core.VertexID) *BFS { return &BFS{Source: source} }

// NonDecomposable marks the min aggregation (core.PullProgram).
func (p *BFS) NonDecomposable() {}

// InitValue implements core.Program.
func (p *BFS) InitValue(v core.VertexID) float64 {
	if v == p.Source {
		return 0
	}
	return math.Inf(1)
}

// IdentityAgg implements core.Program.
func (p *BFS) IdentityAgg() float64 { return math.Inf(1) }

// Propagate lowers the running min of hop counts.
func (p *BFS) Propagate(agg *float64, src float64, _, _ core.VertexID, _ float64, _ int) {
	if d := src + 1; d < *agg {
		*agg = d
	}
}

// Retract must never be called (non-decomposable).
func (p *BFS) Retract(*float64, float64, core.VertexID, core.VertexID, float64, int) {
	panic("algorithms: Retract on non-decomposable min aggregation")
}

// Compute implements ∮.
func (p *BFS) Compute(v core.VertexID, agg float64) float64 {
	if init := p.InitValue(v); init < agg {
		return init
	}
	return agg
}

// Changed implements core.Program.
func (p *BFS) Changed(oldV, newV float64) bool { return oldV != newV }

// CloneAgg implements core.Program.
func (p *BFS) CloneAgg(a float64) float64 { return a }

// AggBytes implements core.Program.
func (p *BFS) AggBytes(float64) int { return 8 }

var (
	_ core.Program[float64, float64] = (*BFS)(nil)
	_ core.PullProgram               = (*BFS)(nil)
)

// ConnectedComponents labels vertices with the minimum reachable vertex
// id, converging to weakly connected components on symmetric graphs
// (run it over graphs built with both edge directions). Like SSSP it is
// a non-decomposable min aggregation.
type ConnectedComponents struct{}

// NewConnectedComponents returns a CC program.
func NewConnectedComponents() *ConnectedComponents { return &ConnectedComponents{} }

// NonDecomposable marks the min aggregation (core.PullProgram).
func (p *ConnectedComponents) NonDecomposable() {}

// InitValue labels each vertex with itself.
func (p *ConnectedComponents) InitValue(v core.VertexID) float64 { return float64(v) }

// IdentityAgg implements core.Program.
func (p *ConnectedComponents) IdentityAgg() float64 { return math.Inf(1) }

// Propagate lowers the label min.
func (p *ConnectedComponents) Propagate(agg *float64, src float64, _, _ core.VertexID, _ float64, _ int) {
	if src < *agg {
		*agg = src
	}
}

// Retract must never be called (non-decomposable).
func (p *ConnectedComponents) Retract(*float64, float64, core.VertexID, core.VertexID, float64, int) {
	panic("algorithms: Retract on non-decomposable min aggregation")
}

// Compute keeps the vertex's own id as a candidate label.
func (p *ConnectedComponents) Compute(v core.VertexID, agg float64) float64 {
	if own := float64(v); own < agg {
		return own
	}
	return agg
}

// Changed implements core.Program.
func (p *ConnectedComponents) Changed(oldV, newV float64) bool { return oldV != newV }

// CloneAgg implements core.Program.
func (p *ConnectedComponents) CloneAgg(a float64) float64 { return a }

// AggBytes implements core.Program.
func (p *ConnectedComponents) AggBytes(float64) int { return 8 }

var (
	_ core.Program[float64, float64] = (*ConnectedComponents)(nil)
	_ core.PullProgram               = (*ConnectedComponents)(nil)
)
