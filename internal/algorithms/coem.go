package algorithms

import (
	"math"

	"repro/internal/core"
)

// CoEMAgg is CoEM's decomposed aggregate: the weighted sum of neighbor
// scores and the total in-weight that normalizes it. Keeping the
// normalizer inside the aggregate (instead of re-reading the graph in ∮)
// is exactly the paper's static decomposition into simple
// sub-aggregations — both components update incrementally.
type CoEMAgg struct {
	Sum float64 // Σ c(u)·weight(u,v)
	W   float64 // Σ weight(u,v)
}

// CoEM implements Co-Training Expectation Maximization for named-entity
// recognition (Nigam & Ghani), the paper's semi-supervised learning
// benchmark:
//
//	д_i(v) = Σ_{(u,v)∈E} c_{i-1}(u)·weight(u,v) / Σ_{(w,v)∈E} weight(w,v)
//
// Scores live in [0,1]; positive/negative seed vertices are clamped.
type CoEM struct {
	// PositiveSeeds are clamped to score 1, NegativeSeeds to 0.
	PositiveSeeds map[core.VertexID]struct{}
	NegativeSeeds map[core.VertexID]struct{}
	// Tolerance gates selective scheduling.
	Tolerance float64
}

// NewCoEM builds a CoEM instance with positive and negative seed sets.
func NewCoEM(pos, neg []core.VertexID) *CoEM {
	c := &CoEM{
		PositiveSeeds: make(map[core.VertexID]struct{}, len(pos)),
		NegativeSeeds: make(map[core.VertexID]struct{}, len(neg)),
	}
	for _, v := range pos {
		c.PositiveSeeds[v] = struct{}{}
	}
	for _, v := range neg {
		c.NegativeSeeds[v] = struct{}{}
	}
	return c
}

// InitValue clamps seeds; everything else starts neutral at 0.5.
func (p *CoEM) InitValue(v core.VertexID) float64 {
	if _, ok := p.PositiveSeeds[v]; ok {
		return 1
	}
	if _, ok := p.NegativeSeeds[v]; ok {
		return 0
	}
	return 0.5
}

// IdentityAgg implements core.Program.
func (p *CoEM) IdentityAgg() CoEMAgg { return CoEMAgg{} }

// Propagate implements ⊎ on both sub-aggregations.
func (p *CoEM) Propagate(agg *CoEMAgg, src float64, _, _ core.VertexID, w float64, _ int) {
	agg.Sum += src * w
	agg.W += w
}

// Retract implements ⋃- on both sub-aggregations.
func (p *CoEM) Retract(agg *CoEMAgg, src float64, _, _ core.VertexID, w float64, _ int) {
	agg.Sum -= src * w
	agg.W -= w
}

// PropagateDelta implements ⋃△: only the score sum changes for a value
// update; the normalizer changes only structurally (⊎/⋃-).
func (p *CoEM) PropagateDelta(agg *CoEMAgg, oldSrc, newSrc float64, _, _ core.VertexID, w float64, _, _ int) {
	agg.Sum += (newSrc - oldSrc) * w
}

// Compute normalizes; seeds stay clamped; isolated vertices stay neutral.
func (p *CoEM) Compute(v core.VertexID, agg CoEMAgg) float64 {
	if _, ok := p.PositiveSeeds[v]; ok {
		return 1
	}
	if _, ok := p.NegativeSeeds[v]; ok {
		return 0
	}
	// Retraction leaves float dust where the true weight sum is zero;
	// normalizing by it would amplify the dust (see labelprop.go's
	// massEpsilon), so near-zero normalizers behave like empty ones.
	if agg.W <= massEpsilon {
		return 0.5
	}
	return agg.Sum / agg.W
}

// Changed implements selective scheduling.
func (p *CoEM) Changed(oldV, newV float64) bool {
	if p.Tolerance <= 0 {
		return oldV != newV
	}
	return math.Abs(oldV-newV) > p.Tolerance
}

// CloneAgg implements core.Program.
func (p *CoEM) CloneAgg(a CoEMAgg) CoEMAgg { return a }

// AggBytes implements core.Program.
func (p *CoEM) AggBytes(CoEMAgg) int { return 16 }

var (
	_ core.Program[float64, CoEMAgg]      = (*CoEM)(nil)
	_ core.DeltaProgram[float64, CoEMAgg] = (*CoEM)(nil)
)
