package algorithms

import (
	"math"

	"repro/internal/core"
)

// CFAgg is the statically decomposed pair of sub-aggregations for
// Alternating Least Squares collaborative filtering (§3.3):
//
//	⟨ Σ_{(u,v)∈E} c(u)·c(u)ᵀ ,  Σ_{(u,v)∈E} c(u)·weight(u,v) ⟩
//
// M is the k×k Gram matrix flattened row-major; B is the k-vector.
type CFAgg struct {
	M []float64
	B []float64
}

// CollabFilter implements ALS-style collaborative filtering (Zhou et
// al.), the paper's CF benchmark. Vertex values are k-dimensional latent
// factors; ∮ solves the regularized normal equations
//
//	c_i(v) = (Σ c(u)c(u)ᵀ + λ·I_k)⁻¹ · Σ c(u)·weight(u,v).
//
// The first sub-aggregation transforms source values before summation,
// so its incremental update evaluates the discrete contributions
// c(u)c(u)ᵀ on the fly and sums their difference — the paper's worked
// example of a complex aggregation made incremental.
type CollabFilter struct {
	// Rank is k, the latent dimension.
	Rank int
	// Lambda is the ridge regularizer λ (must be > 0 so the solve is
	// well-posed).
	Lambda float64
	// Tolerance gates selective scheduling on L∞ distance.
	Tolerance float64
}

// NewCollabFilter returns CF with rank k and λ = 0.1.
func NewCollabFilter(k int) *CollabFilter { return &CollabFilter{Rank: k, Lambda: 0.1} }

// InitValue seeds each latent factor deterministically in [0.1, 1.1).
func (p *CollabFilter) InitValue(v core.VertexID) []float64 {
	x := make([]float64, p.Rank)
	for i := range x {
		x[i] = 0.1 + hashUnit(uint64(v)*2654435761+uint64(i)*40503)
	}
	return x
}

// IdentityAgg implements core.Program.
func (p *CollabFilter) IdentityAgg() CFAgg {
	return CFAgg{M: make([]float64, p.Rank*p.Rank), B: make([]float64, p.Rank)}
}

// Propagate implements ⊎: M += u·uᵀ, B += u·w.
func (p *CollabFilter) Propagate(agg *CFAgg, src []float64, _, _ core.VertexID, w float64, _ int) {
	k := p.Rank
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			agg.M[i*k+j] += src[i] * src[j]
		}
		agg.B[i] += src[i] * w
	}
}

// Retract implements ⋃-: the old discrete contribution u·uᵀ is
// recomputed from the old source value and subtracted.
func (p *CollabFilter) Retract(agg *CFAgg, src []float64, _, _ core.VertexID, w float64, _ int) {
	k := p.Rank
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			agg.M[i*k+j] -= src[i] * src[j]
		}
		agg.B[i] -= src[i] * w
	}
}

// PropagateDelta implements ⋃△ exactly as derived in §3.3:
// ⟨Σ (new·newᵀ − old·oldᵀ), Σ (new − old)·w⟩.
func (p *CollabFilter) PropagateDelta(agg *CFAgg, oldSrc, newSrc []float64, _, _ core.VertexID, w float64, _, _ int) {
	k := p.Rank
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			agg.M[i*k+j] += newSrc[i]*newSrc[j] - oldSrc[i]*oldSrc[j]
		}
		agg.B[i] += (newSrc[i] - oldSrc[i]) * w
	}
}

// Compute solves (M + λI)x = B by Gaussian elimination with partial
// pivoting. Vertices with no ratings keep their initial factors.
func (p *CollabFilter) Compute(v core.VertexID, agg CFAgg) []float64 {
	k := p.Rank
	// Incremental retraction leaves ~1e-15 dust where the true aggregate
	// is empty; solving against dust would amplify it (cf. labelprop.go's
	// massEpsilon), so a near-zero system means "no ratings" exactly like
	// a zero one.
	allZero := true
	for _, b := range agg.B {
		if b > massEpsilon || b < -massEpsilon {
			allZero = false
			break
		}
	}
	if allZero {
		return p.InitValue(v)
	}
	// Build the augmented system [M+λI | B].
	a := make([]float64, k*(k+1))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			a[i*(k+1)+j] = agg.M[i*k+j]
		}
		a[i*(k+1)+i] += p.Lambda
		a[i*(k+1)+k] = agg.B[i]
	}
	x, ok := solveDense(a, k)
	if !ok {
		return p.InitValue(v)
	}
	return x
}

// solveDense solves the k×k augmented system in place; returns ok=false
// on a (numerically) singular matrix.
func solveDense(a []float64, k int) ([]float64, bool) {
	w := k + 1
	for col := 0; col < k; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col*w+col])
		for r := col + 1; r < k; r++ {
			if abs := math.Abs(a[r*w+col]); abs > best {
				best, pivot = abs, r
			}
		}
		if best < 1e-12 {
			return nil, false
		}
		if pivot != col {
			for c := col; c <= k; c++ {
				a[col*w+c], a[pivot*w+c] = a[pivot*w+c], a[col*w+c]
			}
		}
		inv := 1 / a[col*w+col]
		for r := col + 1; r < k; r++ {
			f := a[r*w+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= k; c++ {
				a[r*w+c] -= f * a[col*w+c]
			}
		}
	}
	x := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		sum := a[r*w+k]
		for c := r + 1; c < k; c++ {
			sum -= a[r*w+c] * x[c]
		}
		x[r] = sum / a[r*w+r]
	}
	return x, true
}

// Changed implements selective scheduling on L∞ distance.
func (p *CollabFilter) Changed(oldV, newV []float64) bool {
	for i := range oldV {
		d := math.Abs(oldV[i] - newV[i])
		if p.Tolerance <= 0 {
			if d != 0 {
				return true
			}
		} else if d > p.Tolerance {
			return true
		}
	}
	return false
}

// CloneAgg implements core.Program.
func (p *CollabFilter) CloneAgg(a CFAgg) CFAgg {
	return CFAgg{M: append([]float64(nil), a.M...), B: append([]float64(nil), a.B...)}
}

// AggBytes implements core.Program.
func (p *CollabFilter) AggBytes(a CFAgg) int { return 48 + 8*(len(a.M)+len(a.B)) }

var (
	_ core.Program[[]float64, CFAgg]      = (*CollabFilter)(nil)
	_ core.DeltaProgram[[]float64, CFAgg] = (*CollabFilter)(nil)
)
