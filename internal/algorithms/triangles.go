package algorithms

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// TriangleCounter maintains the paper's Triangle Counting result
// incrementally. TC computes in a single iteration (Table 4):
//
//	T = Σ_{(u,v)∈E} |in_neighbors(u) ∩ out_neighbors(v)|
//
// Each w ∈ in(u) ∩ out(v) closes the directed 3-cycle {(u,v),(v,w),(w,u)},
// so T counts every directed 3-cycle exactly three times (once per
// participating edge). Self-loops and degenerate closures (w equal to an
// endpoint) are excluded — triangles have three distinct vertices.
//
// The impact of an edge mutation is purely local (§5.2): inserting or
// deleting (a,b) changes only the cycles through (a,b), so the count is
// adjusted by ±3·S(a,b) per mutation, where S(a,b) = |out(b) ∩ in(a)|
// (with multiplicity), instead of resetting and recomputing the two-hop
// neighborhood. To make those adjustments cheap the counter keeps its
// own dynamic adjacency (multiset maps) — the extra structure behind
// TC's ~2× memory entry in Table 9.
type TriangleCounter struct {
	out   []map[graph.VertexID]int32 // multiset out-adjacency
	in    []map[graph.VertexID]int32 // multiset in-adjacency
	total int64

	// EdgeComputations counts membership probes, the TC analogue of the
	// engine's edge-computation metric.
	EdgeComputations int64
}

// NewTriangleCounter builds the counter and computes the initial total
// with a full parallel count.
func NewTriangleCounter(g *graph.Graph) *TriangleCounter {
	n := g.NumVertices()
	tc := &TriangleCounter{
		out: make([]map[graph.VertexID]int32, n),
		in:  make([]map[graph.VertexID]int32, n),
	}
	for v := 0; v < n; v++ {
		ts, _ := g.OutNeighbors(graph.VertexID(v))
		m := make(map[graph.VertexID]int32, len(ts))
		for _, t := range ts {
			m[t]++
		}
		tc.out[v] = m
		us, _ := g.InNeighbors(graph.VertexID(v))
		mi := make(map[graph.VertexID]int32, len(us))
		for _, u := range us {
			mi[u]++
		}
		tc.in[v] = mi
	}
	tc.total = tc.recount()
	return tc
}

// Count returns T, 3× the number of directed 3-cycles.
func (tc *TriangleCounter) Count() int64 { return tc.total }

// Triangles returns the number of distinct directed 3-cycles (counting
// parallel-edge variants separately).
func (tc *TriangleCounter) Triangles() int64 { return tc.total / 3 }

// recount recomputes T from scratch (what the Ligra/GB-Reset baselines
// pay on every mutation batch, since TC runs in a single iteration).
func (tc *TriangleCounter) recount() int64 {
	c := parallel.NewCounter()
	probes := parallel.NewCounter()
	parallel.ForWorker(len(tc.out), 32, func(worker, start, end int) {
		var sum, pr int64
		for u := start; u < end; u++ {
			for v, cnt := range tc.out[u] {
				if v == graph.VertexID(u) {
					continue // self-loop edge
				}
				common, p := tc.cyclesThrough(graph.VertexID(u), v)
				sum += int64(cnt) * common
				pr += p
			}
		}
		c.Add(worker, sum)
		probes.Add(worker, pr)
	})
	tc.EdgeComputations += probes.Sum()
	return c.Sum()
}

// cyclesThrough returns S(a,b) = Σ_{w∉{a,b}} out(b)[w]·in(a)[w] — the
// multiset count of cycle closures through an edge (a,b) — and the probe
// count.
func (tc *TriangleCounter) cyclesThrough(a, b graph.VertexID) (int64, int64) {
	ob, ia := tc.out[b], tc.in[a]
	var sum int64
	if len(ob) <= len(ia) {
		for w, c1 := range ob {
			if w == a || w == b {
				continue
			}
			if c2, ok := ia[w]; ok {
				sum += int64(c1) * int64(c2)
			}
		}
		return sum, int64(len(ob))
	}
	for w, c2 := range ia {
		if w == a || w == b {
			continue
		}
		if c1, ok := ob[w]; ok {
			sum += int64(c1) * int64(c2)
		}
	}
	return sum, int64(len(ia))
}

// grow extends the adjacency maps to cover vertex ids < n.
func (tc *TriangleCounter) grow(n int) {
	for len(tc.out) < n {
		tc.out = append(tc.out, map[graph.VertexID]int32{})
		tc.in = append(tc.in, map[graph.VertexID]int32{})
	}
}

// Apply incrementally adjusts the count for a mutation batch, processing
// deletions then insertions one edge at a time against the evolving
// adjacency (matching graph.Batch semantics: deletions refer to the
// pre-batch graph). Deletions of absent edges are ignored and reported.
func (tc *TriangleCounter) Apply(batch graph.Batch) (missingDeletes int) {
	maxID := 0
	for _, e := range batch.Add {
		if int(e.From) > maxID {
			maxID = int(e.From)
		}
		if int(e.To) > maxID {
			maxID = int(e.To)
		}
	}
	tc.grow(maxID + 1)

	for _, e := range batch.Del {
		if int(e.From) >= len(tc.out) || tc.out[e.From][e.To] == 0 {
			missingDeletes++
			continue
		}
		if e.From != e.To {
			// Count closures while the instance is still present;
			// cyclesThrough never inspects edge (a,b) itself.
			common, probes := tc.cyclesThrough(e.From, e.To)
			tc.EdgeComputations += probes
			tc.total -= 3 * common
		}
		decr(tc.out[e.From], e.To)
		decr(tc.in[e.To], e.From)
	}
	for _, e := range batch.Add {
		tc.out[e.From][e.To]++
		tc.in[e.To][e.From]++
		if e.From != e.To {
			common, probes := tc.cyclesThrough(e.From, e.To)
			tc.EdgeComputations += probes
			tc.total += 3 * common
		}
	}
	return missingDeletes
}

func decr(m map[graph.VertexID]int32, k graph.VertexID) {
	if m[k] <= 1 {
		delete(m, k)
	} else {
		m[k]--
	}
}

// CountGraph computes T for a snapshot from scratch without building a
// counter — the restart baseline used in benchmarks.
func CountGraph(g *graph.Graph) int64 {
	c := parallel.NewCounter()
	n := g.NumVertices()
	parallel.ForWorker(n, 32, func(worker, start, end int) {
		var sum int64
		for x := start; x < end; x++ {
			u := graph.VertexID(x)
			vs, _ := g.OutNeighbors(u)
			ins, _ := g.InNeighbors(u)
			for _, v := range vs {
				if v == u {
					continue
				}
				outs, _ := g.OutNeighbors(v)
				sum += sortedIntersection(ins, outs, u, v)
			}
		}
		c.Add(worker, sum)
	})
	return c.Sum()
}

// sortedIntersection counts multiset matches between two ascending lists,
// skipping the banned endpoints.
func sortedIntersection(a, b []graph.VertexID, ban1, ban2 graph.VertexID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			w := a[i]
			ri := i
			for ri < len(a) && a[ri] == w {
				ri++
			}
			rj := j
			for rj < len(b) && b[rj] == w {
				rj++
			}
			if w != ban1 && w != ban2 {
				count += int64(ri-i) * int64(rj-j)
			}
			i, j = ri, rj
		}
	}
	return count
}

// VertexTriangles pairs a vertex with the cycle closures through its
// out-edges.
type VertexTriangles struct {
	Vertex   graph.VertexID
	Closures int64
}

// TopTriangleVertices returns the k vertices whose out-edges close the
// most cycles, a convenience for the examples.
func (tc *TriangleCounter) TopTriangleVertices(k int) []VertexTriangles {
	all := make([]VertexTriangles, 0, len(tc.out))
	for u := range tc.out {
		var sum int64
		for v, cnt := range tc.out[u] {
			if v == graph.VertexID(u) {
				continue
			}
			common, _ := tc.cyclesThrough(graph.VertexID(u), v)
			sum += int64(cnt) * common
		}
		if sum > 0 {
			all = append(all, VertexTriangles{Vertex: graph.VertexID(u), Closures: sum})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Closures != all[j].Closures {
			return all[i].Closures > all[j].Closures
		}
		return all[i].Vertex < all[j].Vertex
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
