package graph

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestBuildRejectsMalformedEdges(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"from out of range", 3, []Edge{{From: 3, To: 0, Weight: 1}}},
		{"to out of range", 3, []Edge{{From: 0, To: 7, Weight: 1}}},
		{"huge id", 3, []Edge{{From: 0, To: math.MaxUint32, Weight: 1}}},
		{"nan weight", 3, []Edge{{From: 0, To: 1, Weight: math.NaN()}}},
		{"+inf weight", 3, []Edge{{From: 0, To: 1, Weight: math.Inf(1)}}},
		{"-inf weight", 3, []Edge{{From: 0, To: 1, Weight: math.Inf(-1)}}},
		{"negative vertex count", -1, nil},
		{"bad edge after good ones", 2, []Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 0, Weight: math.NaN()}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Build(tc.n, tc.edges); err == nil {
				t.Fatalf("Build(%d, %v) succeeded, want error", tc.n, tc.edges)
			}
		})
	}
	// And the errors it must NOT produce: valid inputs.
	if _, err := Build(0, nil); err != nil {
		t.Fatalf("Build(0, nil): %v", err)
	}
	if _, err := Build(2, []Edge{{From: 0, To: 1, Weight: -2.5}, {From: 1, To: 1, Weight: 0}}); err != nil {
		t.Fatalf("Build with negative weight and self loop should be valid: %v", err)
	}
}

func TestBatchValidate(t *testing.T) {
	cases := []struct {
		name string
		b    Batch
		ok   bool
	}{
		{"zero batch", Batch{}, true},
		{"valid add and del", Batch{
			Add: []Edge{{From: 0, To: 1, Weight: 2}},
			Del: []Edge{{From: 5, To: 9}},
		}, true},
		{"del beyond current graph is fine", Batch{Del: []Edge{{From: 1 << 20, To: 7}}}, true},
		{"nan add weight", Batch{Add: []Edge{{From: 0, To: 1, Weight: math.NaN()}}}, false},
		{"inf add weight", Batch{Add: []Edge{{From: 0, To: 1, Weight: math.Inf(1)}}}, false},
		{"add id above cap", Batch{Add: []Edge{{From: MaxVertexID + 1, To: 0, Weight: 1}}}, false},
		{"del id above cap", Batch{Del: []Edge{{From: 0, To: MaxVertexID + 1}}}, false},
		{"del weight ignored even if NaN", Batch{Del: []Edge{{From: 0, To: 1, Weight: math.NaN()}}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.b.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, ErrInvalidEdge) {
					t.Fatalf("Validate() = %v, want errors.Is(..., ErrInvalidEdge)", err)
				}
				if !errors.Is(err, ErrInvalidBatch) {
					t.Fatalf("Validate() = %v, want errors.Is(..., ErrInvalidBatch)", err)
				}
			}
		})
	}
}

// TestBatchValidateNamesOffender pins the error text contract: serve
// layers surface these errors on tickets and quarantine records, so the
// message must identify which mutation was rejected and why.
func TestBatchValidateNamesOffender(t *testing.T) {
	b := Batch{Add: []Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 7, To: 9, Weight: math.NaN()},
	}}
	err := b.Validate()
	if err == nil {
		t.Fatal("Validate() = nil, want error")
	}
	for _, want := range []string{"add[1]", "(7->9)", "NaN"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Validate() = %q, missing %q", err, want)
		}
	}
	b = Batch{Del: []Edge{{From: MaxVertexID + 1, To: 3}}}
	err = b.Validate()
	if err == nil {
		t.Fatal("Validate() = nil, want error")
	}
	for _, want := range []string{"del[0]", "MaxVertexID"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Validate() = %q, missing %q", err, want)
		}
	}
	// ErrInvalidBatch is reserved for batch validation: single-edge
	// validation does not carry it.
	if err := ValidateEdge(Edge{From: 0, To: 1, Weight: math.Inf(1)}); errors.Is(err, ErrInvalidBatch) {
		t.Fatalf("ValidateEdge() = %v wraps ErrInvalidBatch, want only ErrInvalidEdge", err)
	}
}
