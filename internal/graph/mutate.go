package graph

import (
	"repro/internal/parallel"
)

// Batch is a set of structural mutations applied atomically between BSP
// iterations. Deletions are matched by (From,To); the weight field of a
// delete request is ignored and the actual deleted weight is reported in
// ApplyResult (refinement retracts old contributions using old weights).
type Batch struct {
	Add []Edge
	Del []Edge
}

// ApplyResult reports what a Batch actually did to the graph.
type ApplyResult struct {
	// Added are the edges inserted (equal to Batch.Add).
	Added []Edge
	// Deleted are the edges removed, carrying their original weights.
	Deleted []Edge
	// MissingDeletes counts delete requests that matched no edge.
	MissingDeletes int
}

// Apply produces a new snapshot reflecting the batch, per §4.1: a
// sequential pass over the vertex array computes offset adjustments, then
// a vertex-parallel pass shifts surviving edges and inserts additions.
// Vertex ids referenced beyond the current range grow the vertex set.
//
// If a delete request matches multiple parallel edges, one instance is
// removed per request. The receiver is left untouched.
func (g *Graph) Apply(batch Batch) (*Graph, ApplyResult) {
	n := g.n
	for _, e := range batch.Add {
		if int(e.From) >= n {
			n = int(e.From) + 1
		}
		if int(e.To) >= n {
			n = int(e.To) + 1
		}
	}

	ng := &Graph{n: n}
	var res ApplyResult
	res.Added = append(res.Added, batch.Add...)

	// The out direction determines which delete requests match; it
	// reports the removed instances (with weights), which then drive the
	// in direction so both stay consistent.
	var deleted []Edge
	ng.out, deleted, res.MissingDeletes = mutateAdjacency(&g.out, g.n, n, batch.Add, batch.Del, false)
	res.Deleted = deleted
	ng.in, _, _ = mutateAdjacency(&g.in, g.n, n, batch.Add, deleted, true)

	ng.m = g.m + int64(len(batch.Add)) - int64(len(deleted))
	return ng, res
}

// bucket holds one vertex's pending mutations in a direction, targets
// sorted ascending.
type bucket struct {
	targets []VertexID
	weights []float64 // only populated for additions
}

// mutateAdjacency rewrites one direction. oldN is the receiver's vertex
// count, n the new one; transpose keys by destination.
func mutateAdjacency(a *adjacency, oldN, n int, add, del []Edge, transpose bool) (adjacency, []Edge, int) {
	adds := bucketEdges(add, transpose)
	dels := bucketEdges(del, transpose)

	// Pass 1 (sequential over vertices): exact new degrees. Matching
	// deletes are counted with the same merge pass 2 performs, so the
	// offsets are final. This is the "offset adjustment" pass of §4.1.
	newDeg := make([]int64, n+1)
	for v := 0; v < n; v++ {
		oldDeg := 0
		var ts []VertexID
		if v < oldN {
			ts, _ = a.neighbors(VertexID(v))
			oldDeg = len(ts)
		}
		m := 0
		if d, ok := dels[VertexID(v)]; ok {
			m = countMatches(ts, d.targets)
		}
		nAdd := 0
		if ab, ok := adds[VertexID(v)]; ok {
			nAdd = len(ab.targets)
		}
		newDeg[v+1] = int64(oldDeg + nAdd - m)
	}
	for i := 0; i < n; i++ {
		newDeg[i+1] += newDeg[i]
	}

	na := adjacency{
		offsets: newDeg,
		targets: make([]VertexID, newDeg[n]),
		weights: make([]float64, newDeg[n]),
	}

	// Pass 2 (vertex-parallel): merge surviving old edges with sorted
	// additions into the new chunks.
	deletedOut := make([][]Edge, n)
	missing := parallel.NewCounter()
	parallel.ForWorker(n, 64, func(worker, start, end int) {
		for v := start; v < end; v++ {
			vid := VertexID(v)
			var ts []VertexID
			var ws []float64
			if v < oldN {
				ts, ws = a.neighbors(vid)
			}
			db := dels[vid]
			ab := adds[vid]
			pos := na.offsets[v]
			var removed []Edge

			di, ai := 0, 0
			for i, t := range ts {
				// Insert additions in (target, weight) order so the merged
				// list keeps the canonical ordering buildAdjacency
				// establishes; a graph round-tripped through Edges+Build
				// (checkpointing) must match this one instance-for-instance,
				// or later deletions of parallel edges pick different copies.
				for ai < len(ab.targets) && (ab.targets[ai] < t ||
					(ab.targets[ai] == t && ab.weights[ai] < ws[i])) {
					na.targets[pos] = ab.targets[ai]
					na.weights[pos] = ab.weights[ai]
					pos++
					ai++
				}
				// Skip delete requests whose target has been passed.
				for di < len(db.targets) && db.targets[di] < t {
					di++
					missing.Add(worker, 1)
				}
				if di < len(db.targets) && db.targets[di] == t {
					di++
					if transpose {
						removed = append(removed, Edge{From: t, To: vid, Weight: ws[i]})
					} else {
						removed = append(removed, Edge{From: vid, To: t, Weight: ws[i]})
					}
					continue
				}
				na.targets[pos] = t
				na.weights[pos] = ws[i]
				pos++
			}
			for ai < len(ab.targets) {
				na.targets[pos] = ab.targets[ai]
				na.weights[pos] = ab.weights[ai]
				pos++
				ai++
			}
			if left := len(db.targets) - di; left > 0 {
				missing.Add(worker, int64(left))
			}
			if pos != na.offsets[v+1] {
				panic("graph: offset pass and shift pass disagree")
			}
			deletedOut[v] = removed
		}
	})

	var allDeleted []Edge
	for _, d := range deletedOut {
		allDeleted = append(allDeleted, d...)
	}
	return na, allDeleted, int(missing.Sum())
}

// bucketEdges groups edges by direction-dependent source, sorted by
// (target, weight) — the same order the adjacency lists use, so deletion
// removes the same parallel-edge instances in both directions.
func bucketEdges(edges []Edge, transpose bool) map[VertexID]bucket {
	if len(edges) == 0 {
		return nil
	}
	m := make(map[VertexID]bucket)
	for _, e := range edges {
		s, t := e.From, e.To
		if transpose {
			s, t = t, s
		}
		b := m[s]
		b.targets = append(b.targets, t)
		b.weights = append(b.weights, e.Weight)
		m[s] = b
	}
	for s, b := range m {
		sortNeighborRange(b.targets, b.weights)
		m[s] = b
	}
	return m
}

// countMatches merges a sorted neighbor list against sorted delete
// targets, consuming one neighbor instance per delete request.
func countMatches(ts []VertexID, want []VertexID) int {
	i, j, matches := 0, 0, 0
	for i < len(ts) && j < len(want) {
		switch {
		case ts[i] < want[j]:
			i++
		case ts[i] > want[j]:
			j++
		default:
			matches++
			i++
			j++
		}
	}
	return matches
}
