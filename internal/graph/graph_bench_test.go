package graph

import (
	"testing"
)

func benchEdges(n, m int) []Edge {
	edges := make([]Edge, m)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545F4914F6CDD1D
	}
	for i := range edges {
		edges[i] = Edge{
			From:   VertexID(next() % uint64(n)),
			To:     VertexID(next() % uint64(n)),
			Weight: float64(next()%100) / 10,
		}
	}
	return edges
}

func BenchmarkBuild(b *testing.B) {
	edges := benchEdges(10000, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustBuild(10000, edges)
	}
}

func BenchmarkApplyBatch1K(b *testing.B) {
	edges := benchEdges(10000, 100000)
	g := MustBuild(10000, edges)
	extra := benchEdges(10000, 1000)
	var batch Batch
	batch.Add = extra[:750]
	for _, e := range edges[:250] {
		batch.Del = append(batch.Del, Edge{From: e.From, To: e.To})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Apply(batch)
	}
}

func BenchmarkNeighborScan(b *testing.B) {
	g := MustBuild(10000, benchEdges(10000, 100000))
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.NumVertices(); v++ {
			_, ws := g.OutNeighbors(VertexID(v))
			for _, w := range ws {
				sink += w
			}
		}
	}
	_ = sink
}

func BenchmarkHasEdge(b *testing.B) {
	g := MustBuild(10000, benchEdges(10000, 100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(VertexID(i%10000), VertexID((i*7)%10000))
	}
}
