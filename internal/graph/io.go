package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as "from to weight" lines preceded by a
// "# vertices N edges M" header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		ts, ws := g.OutNeighbors(VertexID(v))
		for i, t := range ts {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", v, t, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' are comments; the vertex count is the maximum endpoint + 1
// unless a "# vertices N" header raises it. The weight column is optional
// and defaults to 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	declared := -1
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			for i := 0; i+1 < len(fields); i++ {
				if fields[i] == "vertices" {
					if n, err := strconv.Atoi(fields[i+1]); err == nil {
						declared = n
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'from to [weight]', got %q", lineNo, line)
		}
		from, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %v", lineNo, err)
		}
		to, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target: %v", lineNo, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
		}
		if int(from) > maxID {
			maxID = int(from)
		}
		if int(to) > maxID {
			maxID = int(to)
		}
		edges = append(edges, Edge{From: VertexID(from), To: VertexID(to), Weight: w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := maxID + 1
	if declared > n {
		n = declared
	}
	if n < 0 {
		n = 0
	}
	return Build(n, edges)
}
