package graph

import (
	"errors"
	"fmt"
	"math"
)

// MaxVertexID caps the vertex ids accepted from untrusted input (stream
// files, WAL replay, RPC). Ids are dense and additions grow the vertex
// set to max(id)+1, so an absurd id would allocate gigabytes of CSR
// state before any algorithm runs; 2^31-1 is far beyond any workload
// this engine targets while still fitting comfortably in int on 64-bit
// and 32-bit builds alike.
const MaxVertexID VertexID = 1<<31 - 1

// ErrInvalidEdge tags every validation failure produced by ValidateEdge,
// Batch.Validate and Build, so callers can branch with errors.Is.
var ErrInvalidEdge = errors.New("graph: invalid edge")

// ErrInvalidBatch tags every Batch.Validate failure. It classifies the
// failure domain: an error wrapping ErrInvalidBatch condemns the batch
// itself (malformed input a retry cannot fix — quarantine it), as
// opposed to infrastructure errors (journal, disk) where the batch is
// fine and the operation can be retried once the fault clears. Every
// ErrInvalidBatch error also wraps ErrInvalidEdge and names the
// offending mutation's index and endpoints.
var ErrInvalidBatch = errors.New("graph: invalid batch")

// ValidateEdge checks a single edge for use as an addition: endpoints
// within [0, MaxVertexID] and a finite weight. NaN and ±Inf weights are
// rejected because they poison every aggregate they touch (NaN never
// compares equal, so convergence checks livelock; Inf swallows
// retractions, breaking the refinement guarantee).
func ValidateEdge(e Edge) error {
	if e.From > MaxVertexID || e.To > MaxVertexID {
		return fmt.Errorf("%w: (%d,%d) endpoint exceeds MaxVertexID %d", ErrInvalidEdge, e.From, e.To, MaxVertexID)
	}
	if math.IsNaN(e.Weight) {
		return fmt.Errorf("%w: (%d,%d) has NaN weight", ErrInvalidEdge, e.From, e.To)
	}
	if math.IsInf(e.Weight, 0) {
		return fmt.Errorf("%w: (%d,%d) has infinite weight", ErrInvalidEdge, e.From, e.To)
	}
	return nil
}

// Validate checks every mutation in the batch: additions must be valid
// edges (ValidateEdge); deletion requests need only in-range endpoints —
// their weights are ignored, and deletes that match no edge are already
// reported as MissingDeletes by Apply rather than treated as errors.
// A zero batch is valid (an explicit no-op tick). Failures wrap both
// ErrInvalidBatch (the failure-domain classifier) and ErrInvalidEdge,
// and name the offending mutation's index and endpoints.
func (b Batch) Validate() error {
	for i, e := range b.Add {
		if err := ValidateEdge(e); err != nil {
			return fmt.Errorf("%w: add[%d] (%d->%d): %w", ErrInvalidBatch, i, e.From, e.To, err)
		}
	}
	for i, e := range b.Del {
		if e.From > MaxVertexID || e.To > MaxVertexID {
			return fmt.Errorf("%w: del[%d] (%d->%d): %w: endpoint exceeds MaxVertexID %d",
				ErrInvalidBatch, i, e.From, e.To, ErrInvalidEdge, MaxVertexID)
		}
	}
	return nil
}
