package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func edgesOf(g *Graph) []Edge { return g.Edges(nil) }

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Weight < b.Weight
	})
}

func TestBuildBasics(t *testing.T) {
	g := MustBuild(5, []Edge{
		{0, 1, 1}, {1, 2, 2}, {2, 0, 3}, {2, 1, 4}, {3, 4, 5}, {1, 2, 6},
	})
	if g.NumVertices() != 5 || g.NumEdges() != 6 {
		t.Fatalf("V=%d E=%d, want 5/6", g.NumVertices(), g.NumEdges())
	}
	if g.OutDegree(1) != 2 || g.InDegree(2) != 2 {
		t.Fatalf("deg out(1)=%d in(2)=%d, want 2/2", g.OutDegree(1), g.InDegree(2))
	}
	if !g.HasEdge(2, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if w, ok := g.EdgeWeight(3, 4); !ok || w != 5 {
		t.Fatalf("EdgeWeight(3,4) = %v,%v", w, ok)
	}
	ts, ws := g.OutNeighbors(1)
	if !reflect.DeepEqual(ts, []VertexID{2, 2}) || ws[0] != 2 || ws[1] != 6 {
		t.Fatalf("out(1) = %v %v", ts, ws)
	}
	// In-neighbors sorted by source, weight tiebreak.
	ts, ws = g.InNeighbors(2)
	if !reflect.DeepEqual(ts, []VertexID{1, 1}) || ws[0] != 2 || ws[1] != 6 {
		t.Fatalf("in(2) = %v %v", ts, ws)
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 2, 1}}); err == nil {
		t.Fatal("Build accepted out-of-range endpoint")
	}
}

func TestBuildEmpty(t *testing.T) {
	g := MustBuild(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	g = MustBuild(3, nil)
	if g.OutDegree(2) != 0 {
		t.Fatal("vertex in edgeless graph has degree")
	}
}

func TestApplyAdditions(t *testing.T) {
	g := MustBuild(3, []Edge{{0, 1, 1}})
	ng, res := g.Apply(Batch{Add: []Edge{{1, 2, 2}, {0, 2, 3}}})
	if ng.NumEdges() != 3 || len(res.Added) != 2 || len(res.Deleted) != 0 {
		t.Fatalf("apply result: E=%d added=%d deleted=%d", ng.NumEdges(), len(res.Added), len(res.Deleted))
	}
	if !ng.HasEdge(1, 2) || !ng.HasEdge(0, 2) || !ng.HasEdge(0, 1) {
		t.Fatal("missing edges after add")
	}
	// Old snapshot untouched.
	if g.NumEdges() != 1 || g.HasEdge(1, 2) {
		t.Fatal("Apply mutated receiver")
	}
}

func TestApplyDeletionsReportWeights(t *testing.T) {
	g := MustBuild(3, []Edge{{0, 1, 7}, {1, 2, 9}})
	ng, res := g.Apply(Batch{Del: []Edge{{From: 0, To: 1}}})
	if ng.NumEdges() != 1 || ng.HasEdge(0, 1) {
		t.Fatal("edge not deleted")
	}
	if len(res.Deleted) != 1 || res.Deleted[0].Weight != 7 {
		t.Fatalf("Deleted = %v, want weight 7", res.Deleted)
	}
	// CSC consistent.
	if ng.InDegree(1) != 0 || ng.InDegree(2) != 1 {
		t.Fatalf("in-degrees wrong: %d %d", ng.InDegree(1), ng.InDegree(2))
	}
}

func TestApplyMissingDelete(t *testing.T) {
	g := MustBuild(3, []Edge{{0, 1, 1}})
	ng, res := g.Apply(Batch{Del: []Edge{{From: 1, To: 0}, {From: 0, To: 1}}})
	if res.MissingDeletes != 1 {
		t.Fatalf("MissingDeletes = %d, want 1", res.MissingDeletes)
	}
	if ng.NumEdges() != 0 {
		t.Fatalf("E = %d, want 0", ng.NumEdges())
	}
}

func TestApplyParallelEdgeDeleteConsistency(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 1, 0.3}, {0, 1, 0.7}})
	ng, res := g.Apply(Batch{Del: []Edge{{From: 0, To: 1}}})
	if len(res.Deleted) != 1 {
		t.Fatalf("deleted %d edges", len(res.Deleted))
	}
	// Whichever instance was removed, CSR and CSC must agree on the
	// survivor's weight.
	_, outW := ng.OutNeighbors(0)
	_, inW := ng.InNeighbors(1)
	if len(outW) != 1 || len(inW) != 1 || outW[0] != inW[0] {
		t.Fatalf("CSR/CSC disagree: out=%v in=%v", outW, inW)
	}
	if res.Deleted[0].Weight+outW[0] != 1.0 {
		t.Fatalf("deleted %v survivor %v: not the original pair", res.Deleted[0].Weight, outW[0])
	}
}

func TestApplyGrowsVertexSet(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 1, 1}})
	ng, _ := g.Apply(Batch{Add: []Edge{{5, 1, 1}}})
	if ng.NumVertices() != 6 {
		t.Fatalf("V = %d, want 6", ng.NumVertices())
	}
	if ng.OutDegree(5) != 1 || ng.InDegree(1) != 2 {
		t.Fatal("degrees wrong after growth")
	}
}

func TestApplyAddAndDeleteSameBatch(t *testing.T) {
	// Deletes refer to the pre-batch graph: deleting an edge added in the
	// same batch must not match.
	g := MustBuild(2, []Edge{})
	ng, res := g.Apply(Batch{Add: []Edge{{0, 1, 1}}, Del: []Edge{{From: 0, To: 1}}})
	if res.MissingDeletes != 1 {
		t.Fatalf("MissingDeletes = %d, want 1 (delete of same-batch add)", res.MissingDeletes)
	}
	if !ng.HasEdge(0, 1) {
		t.Fatal("added edge was deleted by same-batch delete")
	}
}

func TestApplySelfLoop(t *testing.T) {
	g := MustBuild(2, nil)
	ng, _ := g.Apply(Batch{Add: []Edge{{1, 1, 4}}})
	if !ng.HasEdge(1, 1) || ng.InDegree(1) != 1 || ng.OutDegree(1) != 1 {
		t.Fatal("self loop mishandled")
	}
	ng2, res := ng.Apply(Batch{Del: []Edge{{From: 1, To: 1}}})
	if ng2.NumEdges() != 0 || len(res.Deleted) != 1 || res.Deleted[0].Weight != 4 {
		t.Fatal("self loop delete mishandled")
	}
}

// referenceApply recomputes the mutated edge multiset naively.
func referenceApply(n int, edges []Edge, batch Batch) (int, []Edge) {
	remaining := append([]Edge(nil), edges...)
	for _, d := range batch.Del {
		// The graph removes the smallest-weight instance among parallel
		// edges (deterministic (target, weight) ordering).
		best := -1
		for i, e := range remaining {
			if e.From == d.From && e.To == d.To {
				if best == -1 || e.Weight < remaining[best].Weight {
					best = i
				}
			}
		}
		if best >= 0 {
			remaining = append(remaining[:best], remaining[best+1:]...)
		}
	}
	remaining = append(remaining, batch.Add...)
	for _, e := range batch.Add {
		if int(e.From) >= n {
			n = int(e.From) + 1
		}
		if int(e.To) >= n {
			n = int(e.To) + 1
		}
	}
	return n, remaining
}

// Property: Apply equals rebuilding from the mutated edge multiset.
func TestQuickApplyMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		ne := rng.Intn(120)
		edges := make([]Edge, ne)
		for i := range edges {
			edges[i] = Edge{
				From:   VertexID(rng.Intn(n)),
				To:     VertexID(rng.Intn(n)),
				Weight: float64(rng.Intn(50)) / 4,
			}
		}
		g := MustBuild(n, edges)

		var batch Batch
		for i := 0; i < rng.Intn(20); i++ {
			batch.Add = append(batch.Add, Edge{
				From:   VertexID(rng.Intn(n + 3)),
				To:     VertexID(rng.Intn(n + 3)),
				Weight: float64(rng.Intn(50)) / 4,
			})
		}
		for i := 0; i < rng.Intn(20); i++ {
			if len(edges) > 0 && rng.Intn(2) == 0 {
				e := edges[rng.Intn(len(edges))]
				batch.Del = append(batch.Del, Edge{From: e.From, To: e.To})
			} else {
				batch.Del = append(batch.Del, Edge{From: VertexID(rng.Intn(n)), To: VertexID(rng.Intn(n))})
			}
		}

		ng, _ := g.Apply(batch)
		wantN, wantEdges := referenceApply(n, edges, batch)
		if ng.NumVertices() != wantN {
			return false
		}
		got := edgesOf(ng)
		sortEdges(got)
		sortEdges(wantEdges)
		if len(got) != len(wantEdges) {
			return false
		}
		for i := range got {
			if got[i] != wantEdges[i] {
				return false
			}
		}
		// CSC must be the exact transpose of CSR.
		var inEdges []Edge
		for v := 0; v < ng.NumVertices(); v++ {
			ts, ws := ng.InNeighbors(VertexID(v))
			for i, u := range ts {
				inEdges = append(inEdges, Edge{From: u, To: VertexID(v), Weight: ws[i]})
			}
		}
		sortEdges(inEdges)
		for i := range got {
			if got[i] != inEdges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustBuild(4, []Edge{{0, 1, 0.5}, {1, 2, 1.5}, {3, 0, 2}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := edgesOf(g), edgesOf(g2)
	sortEdges(a)
	sortEdges(b)
	if !reflect.DeepEqual(a, b) || g2.NumVertices() != 4 {
		t.Fatalf("round trip mismatch: %v vs %v (V=%d)", a, b, g2.NumVertices())
	}
}

func TestReadEdgeListDefaultsAndErrors(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 1 {
		t.Fatal("default weight not 1")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("0\n")); err == nil {
		t.Fatal("accepted malformed line")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("a b\n")); err == nil {
		t.Fatal("accepted non-numeric ids")
	}
}
