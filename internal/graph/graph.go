// Package graph provides the streaming-graph substrate underneath the
// GraphBolt engine: an immutable CSR+CSC snapshot with weighted directed
// edges, and the two-pass structural mutation described in §4.1 of the
// paper (one sequential pass over the vertex array computing offset
// adjustments, one vertex-parallel pass shifting and inserting edges).
//
// Adjacency lists are kept sorted by neighbor id, which makes deletion a
// merge, lookup a binary search, and triangle counting a sorted-set
// intersection.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// VertexID identifies a vertex. Dense ids in [0, NumVertices).
type VertexID = uint32

// Edge is a directed weighted edge.
type Edge struct {
	From, To VertexID
	Weight   float64
}

// adjacency is one direction of the graph in compressed sparse form:
// neighbors of v are targets[offsets[v]:offsets[v+1]], sorted ascending,
// with parallel weights.
type adjacency struct {
	offsets []int64
	targets []VertexID
	weights []float64
}

func (a *adjacency) degree(v VertexID) int {
	return int(a.offsets[v+1] - a.offsets[v])
}

func (a *adjacency) neighbors(v VertexID) ([]VertexID, []float64) {
	lo, hi := a.offsets[v], a.offsets[v+1]
	return a.targets[lo:hi], a.weights[lo:hi]
}

// Graph is an immutable snapshot of a directed weighted graph. Apply
// produces a new snapshot; the old one remains valid, which the
// refinement path relies on (old weights feed retraction).
type Graph struct {
	out adjacency // CSR indexed by source
	in  adjacency // CSC indexed by destination
	n   int
	m   int64
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E| (directed edge count, parallel edges included).
func (g *Graph) NumEdges() int64 { return g.m }

// OutDegree returns the number of out-edges of v.
func (g *Graph) OutDegree(v VertexID) int { return g.out.degree(v) }

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v VertexID) int { return g.in.degree(v) }

// OutNeighbors returns v's out-neighbor ids and edge weights, sorted by
// neighbor id. The returned slices alias the graph; do not modify.
func (g *Graph) OutNeighbors(v VertexID) ([]VertexID, []float64) {
	return g.out.neighbors(v)
}

// InNeighbors returns v's in-neighbor ids and edge weights, sorted by
// neighbor id. The returned slices alias the graph; do not modify.
func (g *Graph) InNeighbors(v VertexID) ([]VertexID, []float64) {
	return g.in.neighbors(v)
}

// HasEdge reports whether at least one edge (u,v) exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	ts, _ := g.out.neighbors(u)
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= v })
	return i < len(ts) && ts[i] == v
}

// EdgeWeight returns the weight of one edge (u,v) and whether it exists.
// With parallel edges it returns the first instance's weight.
func (g *Graph) EdgeWeight(u, v VertexID) (float64, bool) {
	ts, ws := g.out.neighbors(u)
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= v })
	if i < len(ts) && ts[i] == v {
		return ws[i], true
	}
	return 0, false
}

// Edges appends every edge to dst (in source-major sorted order) and
// returns it.
func (g *Graph) Edges(dst []Edge) []Edge {
	for v := 0; v < g.n; v++ {
		ts, ws := g.out.neighbors(VertexID(v))
		for i, t := range ts {
			dst = append(dst, Edge{From: VertexID(v), To: t, Weight: ws[i]})
		}
	}
	return dst
}

// Build constructs a snapshot from an edge list. n is the number of
// vertices; every endpoint must be < n and every weight finite (NaN and
// ±Inf are rejected, see ValidateEdge). Parallel edges and self loops
// are preserved.
func Build(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for i, e := range edges {
		if int64(e.From) >= int64(n) || int64(e.To) >= int64(n) {
			return nil, fmt.Errorf("graph: edge %d (%d,%d) outside vertex range [0,%d)", i, e.From, e.To, n)
		}
		if err := ValidateEdge(e); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	g := &Graph{n: n, m: int64(len(edges))}
	g.out = buildAdjacency(n, edges, false)
	g.in = buildAdjacency(n, edges, true)
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are valid by construction.
func MustBuild(n int, edges []Edge) *Graph {
	g, err := Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func buildAdjacency(n int, edges []Edge, transpose bool) adjacency {
	key := func(e Edge) (VertexID, VertexID) {
		if transpose {
			return e.To, e.From
		}
		return e.From, e.To
	}
	deg := make([]int64, n+1)
	for _, e := range edges {
		s, _ := key(e)
		deg[s+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	a := adjacency{
		offsets: deg,
		targets: make([]VertexID, len(edges)),
		weights: make([]float64, len(edges)),
	}
	cursor := make([]int64, n)
	for _, e := range edges {
		s, t := key(e)
		p := a.offsets[s] + cursor[s]
		cursor[s]++
		a.targets[p] = t
		a.weights[p] = e.Weight
	}
	// Sort each vertex's list by neighbor id (stable on weights is not
	// required; any order among parallel edges is fine).
	parallel.For(n, func(v int) {
		lo, hi := a.offsets[v], a.offsets[v+1]
		sortNeighborRange(a.targets[lo:hi], a.weights[lo:hi])
	})
	return a
}

func sortNeighborRange(ts []VertexID, ws []float64) {
	sort.Sort(&neighborSorter{ts, ws})
}

type neighborSorter struct {
	ts []VertexID
	ws []float64
}

func (s *neighborSorter) Len() int { return len(s.ts) }

// Less orders by neighbor id with weight as tie-break so parallel edges
// appear in a deterministic order in both CSR and CSC; deletion then
// removes the same instance from both directions.
func (s *neighborSorter) Less(i, j int) bool {
	if s.ts[i] != s.ts[j] {
		return s.ts[i] < s.ts[j]
	}
	return s.ws[i] < s.ws[j]
}
func (s *neighborSorter) Swap(i, j int) {
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}
