// Package kickstarter implements a KickStarter-style streaming engine
// for monotonic path-based algorithms (Vora et al., ASPLOS'17), the
// comparison system of §5.4(B). Unlike GraphBolt it tracks only a
// light-weight dependence tree — for each vertex, the single in-edge
// that currently justifies its value — and on edge deletion trims the
// dependent subtree to safe approximations before recomputing
// asynchronously. It does not guarantee BSP semantics, which is exactly
// why it is faster than GraphBolt on SSSP and inapplicable to the
// general algorithms GraphBolt targets.
package kickstarter

import (
	"math"

	"repro/internal/graph"
)

// noParent marks a vertex whose value does not depend on any edge (the
// source, or unreachable vertices).
const noParent = ^graph.VertexID(0)

// SSSP is an incremental single-source shortest-paths engine with
// dependence-tree trimming.
type SSSP struct {
	g      *graph.Graph
	source graph.VertexID
	dist   []float64
	parent []graph.VertexID // in-neighbor justifying dist

	// EdgeComputations counts edge relaxations/inspections, comparable
	// to the GraphBolt engine's metric (Fig. 9 discussion: KickStarter
	// performs ~14× fewer edge computations than GraphBolt's min
	// re-evaluation).
	EdgeComputations int64
}

// NewSSSP builds the engine and computes initial distances.
func NewSSSP(g *graph.Graph, source graph.VertexID) *SSSP {
	k := &SSSP{g: g, source: source}
	k.reset()
	k.relaxFrom([]graph.VertexID{source})
	return k
}

func (k *SSSP) reset() {
	n := k.g.NumVertices()
	k.dist = make([]float64, n)
	k.parent = make([]graph.VertexID, n)
	for v := range k.dist {
		k.dist[v] = math.Inf(1)
		k.parent[v] = noParent
	}
	if int(k.source) < n {
		k.dist[k.source] = 0
	}
}

// Distances returns the current distance array (read-only view).
func (k *SSSP) Distances() []float64 { return k.dist }

// Graph returns the current snapshot.
func (k *SSSP) Graph() *graph.Graph { return k.g }

// relaxFrom runs asynchronous worklist relaxation seeded with the given
// vertices (assumed to have trusted distances).
func (k *SSSP) relaxFrom(seed []graph.VertexID) {
	work := append([]graph.VertexID(nil), seed...)
	inWork := make(map[graph.VertexID]bool, len(work))
	for _, v := range work {
		inWork[v] = true
	}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[u] = false
		du := k.dist[u]
		if math.IsInf(du, 1) {
			continue
		}
		ts, ws := k.g.OutNeighbors(u)
		k.EdgeComputations += int64(len(ts))
		for i, v := range ts {
			if nd := du + ws[i]; nd < k.dist[v] {
				k.dist[v] = nd
				k.parent[v] = u
				if !inWork[v] {
					inWork[v] = true
					work = append(work, v)
				}
			}
		}
	}
}

// ApplyBatch mutates the graph and incrementally repairs distances.
func (k *SSSP) ApplyBatch(b graph.Batch) {
	newG, res := k.g.Apply(b)
	k.g = newG

	// Grow state for new vertices.
	for v := len(k.dist); v < newG.NumVertices(); v++ {
		k.dist = append(k.dist, math.Inf(1))
		k.parent = append(k.parent, noParent)
	}

	// Deletions: trim the dependence subtree hanging off each deleted
	// tree edge — those values are no longer trusted.
	var untrusted []graph.VertexID
	untrustedSet := make(map[graph.VertexID]bool)
	markUntrusted := func(v graph.VertexID) {
		if !untrustedSet[v] && v != k.source {
			untrustedSet[v] = true
			untrusted = append(untrusted, v)
		}
	}
	for _, ed := range res.Deleted {
		if k.parent[ed.To] == ed.From {
			markUntrusted(ed.To)
		}
	}
	// Transitively: any vertex whose parent became untrusted.
	for i := 0; i < len(untrusted); i++ {
		u := untrusted[i]
		ts, _ := k.g.OutNeighbors(u)
		k.EdgeComputations += int64(len(ts))
		for _, v := range ts {
			if k.parent[v] == u {
				markUntrusted(v)
			}
		}
	}

	// Trim: recompute each untrusted vertex from trusted in-neighbors
	// only (the safe approximation; may be ∞).
	for _, v := range untrusted {
		k.dist[v] = math.Inf(1)
		k.parent[v] = noParent
	}
	seed := make([]graph.VertexID, 0, len(untrusted)+len(res.Added))
	for _, v := range untrusted {
		us, ws := k.g.InNeighbors(v)
		k.EdgeComputations += int64(len(us))
		for i, u := range us {
			if untrustedSet[u] {
				continue
			}
			if nd := k.dist[u] + ws[i]; nd < k.dist[v] {
				k.dist[v] = nd
				k.parent[v] = u
			}
		}
		if !math.IsInf(k.dist[v], 1) {
			seed = append(seed, v)
		}
	}

	// Additions: direct relaxation.
	for _, ed := range res.Added {
		k.EdgeComputations++
		if nd := k.dist[ed.From] + ed.Weight; nd < k.dist[ed.To] {
			k.dist[ed.To] = nd
			k.parent[ed.To] = ed.From
			seed = append(seed, ed.To)
		}
	}

	// Untrusted vertices that regained a finite value, and targets of
	// new edges, propagate forward. Trusted in-neighbors of still-∞
	// vertices were already consulted above, but a vertex revived
	// during propagation revisits its out-edges via the worklist.
	k.relaxFrom(seed)

	// A second pass for vertices that are still unreachable but might be
	// reachable through other revived untrusted vertices: pull once more
	// from all in-neighbors, then propagate.
	var second []graph.VertexID
	for _, v := range untrusted {
		if !math.IsInf(k.dist[v], 1) {
			continue
		}
		us, ws := k.g.InNeighbors(v)
		k.EdgeComputations += int64(len(us))
		for i, u := range us {
			if nd := k.dist[u] + ws[i]; nd < k.dist[v] {
				k.dist[v] = nd
				k.parent[v] = u
			}
		}
		if !math.IsInf(k.dist[v], 1) {
			second = append(second, v)
		}
	}
	k.relaxFrom(second)
}
