package kickstarter

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// dijkstraRef computes reference distances with Bellman-Ford.
func dijkstraRef(g *graph.Graph, src graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	if int(src) < n {
		dist[src] = 0
	}
	for round := 0; round < n; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			ts, ws := g.OutNeighbors(graph.VertexID(u))
			for i, v := range ts {
				if nd := dist[u] + ws[i]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func distsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsInf(a[i], 1) && math.IsInf(b[i], 1)) {
			return false
		}
	}
	return true
}

func TestInitialDistances(t *testing.T) {
	g := graph.MustBuild(5, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 2}, {From: 0, To: 2, Weight: 5}, {From: 2, To: 3, Weight: 1},
	})
	k := NewSSSP(g, 0)
	want := []float64{0, 1, 3, 4, math.Inf(1)}
	if !distsEqual(k.Distances(), want) {
		t.Fatalf("dist = %v, want %v", k.Distances(), want)
	}
}

func TestAdditionShortensPath(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{From: 0, To: 1, Weight: 10}, {From: 1, To: 2, Weight: 10}})
	k := NewSSSP(g, 0)
	k.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 0, To: 2, Weight: 3}}})
	if k.Distances()[2] != 3 {
		t.Fatalf("dist[2] = %v, want 3", k.Distances()[2])
	}
}

func TestDeletionTrimsAndRecovers(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 0, To: 2, Weight: 10}, {From: 2, To: 3, Weight: 1},
	})
	k := NewSSSP(g, 0)
	k.ApplyBatch(graph.Batch{Del: []graph.Edge{{From: 1, To: 2}}})
	if k.Distances()[2] != 10 || k.Distances()[3] != 11 {
		t.Fatalf("dist = %v", k.Distances())
	}
	k.ApplyBatch(graph.Batch{Del: []graph.Edge{{From: 0, To: 2}}})
	if !math.IsInf(k.Distances()[2], 1) || !math.IsInf(k.Distances()[3], 1) {
		t.Fatalf("dist after disconnect = %v", k.Distances())
	}
}

func TestVertexGrowth(t *testing.T) {
	g := graph.MustBuild(2, []graph.Edge{{From: 0, To: 1, Weight: 2}})
	k := NewSSSP(g, 0)
	k.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 1, To: 5, Weight: 3}}})
	if k.Distances()[5] != 5 {
		t.Fatalf("dist[5] = %v, want 5", k.Distances()[5])
	}
}

// Property: after any random batch sequence, distances equal a reference
// recomputation on the final snapshot.
func TestQuickIncrementalMatchesReference(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		n := 5 + r.Intn(40)
		m := r.Intn(5 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{
				From:   graph.VertexID(r.Intn(n)),
				To:     graph.VertexID(r.Intn(n)),
				Weight: float64(r.Intn(9) + 1),
			}
		}
		g := graph.MustBuild(n, edges)
		src := graph.VertexID(r.Intn(n))
		k := NewSSSP(g, src)
		for b := 0; b < 1+r.Intn(4); b++ {
			var batch graph.Batch
			for i := 0; i < r.Intn(8); i++ {
				batch.Add = append(batch.Add, graph.Edge{
					From:   graph.VertexID(r.Intn(n)),
					To:     graph.VertexID(r.Intn(n)),
					Weight: float64(r.Intn(9) + 1),
				})
			}
			all := k.Graph().Edges(nil)
			for i := 0; i < r.Intn(8) && len(all) > 0; i++ {
				e := all[r.Intn(len(all))]
				batch.Del = append(batch.Del, graph.Edge{From: e.From, To: e.To})
			}
			k.ApplyBatch(batch)
			if !distsEqual(k.Distances(), dijkstraRef(k.Graph(), src)) {
				t.Logf("seed %d batch %d: %v vs %v", seed, b, k.Distances(), dijkstraRef(k.Graph(), src))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
