package faultio

import (
	"bytes"
	"errors"
	"testing"
)

func TestPassThrough(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello" || w.Written() != 5 {
		t.Fatalf("got %q, written %d", buf.String(), w.Written())
	}
}

func TestFailAfterShortWrite(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf).FailAfter(7, nil)
	n, err := w.Write([]byte("0123"))
	if n != 4 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// This write crosses the budget: 3 bytes land, then the error.
	n, err = w.Write([]byte("456789"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	if buf.String() != "0123456" {
		t.Fatalf("underlying holds %q, want torn prefix %q", buf.String(), "0123456")
	}
	// Everything after the budget fails outright.
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write: n=%d err=%v", n, err)
	}
}

func TestFailAfterCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	w := NewWriter(&bytes.Buffer{}).FailAfter(0, sentinel)
	if _, err := w.Write([]byte("a")); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestFlipBit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf).FlipBit(6, 3)
	if _, err := w.Write([]byte("0123")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("4567")); err != nil {
		t.Fatal(err)
	}
	want := []byte{'0', '1', '2', '3', '4', '5', '6' ^ 0x08, '7'}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("got %v, want %v", buf.Bytes(), want)
	}
}

func TestFlipBitDoesNotMutateInput(t *testing.T) {
	src := []byte{0xAA, 0xBB}
	w := NewWriter(&bytes.Buffer{}).FlipBit(1, 0)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if src[1] != 0xBB {
		t.Fatalf("input slice mutated: %v", src)
	}
}
