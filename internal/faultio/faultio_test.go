package faultio

import (
	"bytes"
	"errors"
	"testing"
)

func TestPassThrough(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello" || w.Written() != 5 {
		t.Fatalf("got %q, written %d", buf.String(), w.Written())
	}
}

func TestFailAfterShortWrite(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf).FailAfter(7, nil)
	n, err := w.Write([]byte("0123"))
	if n != 4 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// This write crosses the budget: 3 bytes land, then the error.
	n, err = w.Write([]byte("456789"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	if buf.String() != "0123456" {
		t.Fatalf("underlying holds %q, want torn prefix %q", buf.String(), "0123456")
	}
	// Everything after the budget fails outright.
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write: n=%d err=%v", n, err)
	}
}

func TestFailAfterCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	w := NewWriter(&bytes.Buffer{}).FailAfter(0, sentinel)
	if _, err := w.Write([]byte("a")); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestFlipBit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf).FlipBit(6, 3)
	if _, err := w.Write([]byte("0123")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("4567")); err != nil {
		t.Fatal(err)
	}
	want := []byte{'0', '1', '2', '3', '4', '5', '6' ^ 0x08, '7'}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("got %v, want %v", buf.Bytes(), want)
	}
}

// TestFailNWritesTransientOutage pins the self-healing shape the chaos
// harness leans on: exactly n calls fail with nothing accepted, then
// the writer passes through again with byte accounting intact.
func TestFailNWritesTransientOutage(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf).FailNWrites(2, nil)
	for i := 0; i < 2; i++ {
		if n, err := w.Write([]byte("xx")); n != 0 || !errors.Is(err, ErrInjected) {
			t.Fatalf("outage write %d: n=%d err=%v", i, n, err)
		}
	}
	if n, err := w.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("post-outage write: n=%d err=%v", n, err)
	}
	if buf.String() != "ok" || w.Written() != 2 {
		t.Fatalf("underlying holds %q, written=%d; want %q, 2", buf.String(), w.Written(), "ok")
	}
	// Disarm with n <= 0.
	w.FailNWrites(0, nil)
	if _, err := w.Write([]byte("y")); err != nil {
		t.Fatalf("disarmed write: %v", err)
	}
}

// TestShortNextTornWrite pins the single torn write: the next call
// keeps only the configured prefix and errors, later calls are whole.
func TestShortNextTornWrite(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf).ShortNext(3, nil)
	n, err := w.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("gh")); n != 2 || err != nil {
		t.Fatalf("write after tear: n=%d err=%v", n, err)
	}
	if buf.String() != "abcgh" {
		t.Fatalf("underlying holds %q, want %q", buf.String(), "abcgh")
	}
}

// TestFsyncFailEveryKth pins the periodic fsync injector: exactly every
// k-th Check fails, the rest pass, and the counters account for both —
// periodic (not latched), so a repair loop that retries always
// converges.
func TestFsyncFailEveryKth(t *testing.T) {
	s := NewFsync().FailEveryKth(3, nil)
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, s.Check() != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Check pattern %v, want %v", got, want)
		}
	}
	if s.Calls() != 9 || s.Failures() != 3 {
		t.Fatalf("Calls=%d Failures=%d, want 9, 3", s.Calls(), s.Failures())
	}
	if err := s.Check(); err == nil {
		// 10th call: not a multiple of 3.
	} else {
		t.Fatalf("Check 10 = %v, want nil", err)
	}
	s.FailEveryKth(0, nil) // disarm
	for i := 0; i < 5; i++ {
		if err := s.Check(); err != nil {
			t.Fatalf("disarmed Check failed: %v", err)
		}
	}
}

func TestFsyncZeroValueNeverFails(t *testing.T) {
	var s Fsync
	for i := 0; i < 4; i++ {
		if err := s.Check(); err != nil {
			t.Fatalf("zero-value Check failed: %v", err)
		}
	}
}

func TestFsyncCustomError(t *testing.T) {
	sentinel := errors.New("flush rejected")
	s := NewFsync().FailEveryKth(1, sentinel)
	if err := s.Check(); !errors.Is(err, sentinel) {
		t.Fatalf("Check = %v, want sentinel", err)
	}
}

func TestFlipBitDoesNotMutateInput(t *testing.T) {
	src := []byte{0xAA, 0xBB}
	w := NewWriter(&bytes.Buffer{}).FlipBit(1, 0)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if src[1] != 0xBB {
		t.Fatalf("input slice mutated: %v", src)
	}
}
