// Package faultio provides io.Writer wrappers that inject storage
// faults — hard failures after a byte budget, short writes, and bit
// flips — so crash-safety code (WAL framing, checkpoint protocols) can
// be exercised against torn and corrupted writes deterministically,
// without killing processes or yanking disks.
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the default error returned once a Writer's byte budget
// is exhausted. Tests distinguish injected failures from real ones with
// errors.Is.
var ErrInjected = errors.New("faultio: injected write failure")

// Writer wraps an io.Writer and injects configured faults. The zero
// value (or NewWriter) passes writes through unchanged; arm faults with
// FailAfter and FlipBit. Faults compose: a write can both carry a bit
// flip and be cut short.
type Writer struct {
	w io.Writer

	failAfter int64 // bytes accepted before failing; -1 = disabled
	failErr   error

	flipAt  int64 // byte offset (across all writes) whose bit flips; -1 = disabled
	flipBit uint  // bit index 0..7

	written int64
}

// NewWriter returns a pass-through Writer over w with no faults armed.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, failAfter: -1, flipAt: -1}
}

// FailAfter arms a hard failure once n total bytes have been accepted:
// the write that crosses the budget is truncated to the remaining
// budget (a short write — the torn-tail crash model) and returns err
// (ErrInjected if nil), as do all subsequent writes. Returns the
// receiver for chaining.
func (f *Writer) FailAfter(n int64, err error) *Writer {
	if err == nil {
		err = ErrInjected
	}
	f.failAfter, f.failErr = n, err
	return f
}

// FlipBit arms a single bit flip at absolute byte offset off (counting
// every byte ever written through f), bit index bit (0..7) — the silent
// corruption model. Returns the receiver for chaining.
func (f *Writer) FlipBit(off int64, bit uint) *Writer {
	f.flipAt, f.flipBit = off, bit%8
	return f
}

// Written reports the total bytes accepted so far (i.e. passed to the
// underlying writer).
func (f *Writer) Written() int64 { return f.written }

// Write applies armed faults, forwards the (possibly mangled or
// truncated) data, and accounts accepted bytes.
func (f *Writer) Write(p []byte) (int, error) {
	n := len(p)
	var failing bool
	if f.failAfter >= 0 {
		remaining := f.failAfter - f.written
		if remaining <= 0 {
			return 0, f.failErr
		}
		if int64(n) > remaining {
			n = int(remaining)
			failing = true
		}
	}
	buf := p[:n]
	if f.flipAt >= 0 && f.flipAt >= f.written && f.flipAt < f.written+int64(n) {
		mangled := append([]byte(nil), buf...)
		mangled[f.flipAt-f.written] ^= 1 << f.flipBit
		buf = mangled
	}
	wrote, err := f.w.Write(buf)
	f.written += int64(wrote)
	if err != nil {
		return wrote, err
	}
	if failing {
		return wrote, f.failErr
	}
	return wrote, nil
}
