// Package faultio provides io.Writer wrappers that inject storage
// faults — hard failures after a byte budget, transient per-call
// failures, short writes, bit flips — and an fsync-failure injector,
// so crash-safety code (WAL framing, checkpoint protocols, degraded
// serving) can be exercised against torn writes and flaky disks
// deterministically, without killing processes or yanking hardware.
//
// All injectors are safe for concurrent use: a chaos harness arms and
// disarms faults from its own goroutine while the writer under test
// keeps appending from the apply loop.
package faultio

import (
	"errors"
	"io"
	"sync"
)

// ErrInjected is the default error returned by armed faults. Tests
// distinguish injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultio: injected write failure")

// Writer wraps an io.Writer and injects configured faults. The zero
// value (or NewWriter) passes writes through unchanged; arm faults with
// FailAfter, FailNWrites, ShortNext and FlipBit. Faults compose: a
// write can both carry a bit flip and be cut short.
type Writer struct {
	w io.Writer

	mu sync.Mutex

	failAfter int64 // bytes accepted before failing; -1 = disabled
	failErr   error

	failN    int // number of upcoming writes rejected outright; 0 = disabled
	failNErr error

	shortKeep int // -1 = disabled; else next write truncated to this many bytes
	shortErr  error

	flipAt  int64 // byte offset (across all writes) whose bit flips; -1 = disabled
	flipBit uint  // bit index 0..7

	written int64
}

// NewWriter returns a pass-through Writer over w with no faults armed.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, failAfter: -1, shortKeep: -1, flipAt: -1}
}

// FailAfter arms a hard failure once n total bytes have been accepted:
// the write that crosses the budget is truncated to the remaining
// budget (a short write — the torn-tail crash model) and returns err
// (ErrInjected if nil), as do all subsequent writes. A negative n
// disarms. Returns the receiver for chaining.
func (f *Writer) FailAfter(n int64, err error) *Writer {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter, f.failErr = n, err
	return f
}

// FailNWrites arms a transient outage: the next n Write calls fail
// outright (no bytes accepted) with err (ErrInjected if nil), after
// which writes pass through again — the flaky-disk model, self-healing
// so recovery supervisors can be soaked without a disarm call. n <= 0
// disarms. Returns the receiver for chaining.
func (f *Writer) FailNWrites(n int, err error) *Writer {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failN, f.failNErr = n, err
	return f
}

// ShortNext arms a single short write: the next Write call accepts only
// keep bytes and returns err (ErrInjected if nil); subsequent writes
// pass through. Returns the receiver for chaining.
func (f *Writer) ShortNext(keep int, err error) *Writer {
	if err == nil {
		err = ErrInjected
	}
	if keep < 0 {
		keep = 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortKeep, f.shortErr = keep, err
	return f
}

// FlipBit arms a single bit flip at absolute byte offset off (counting
// every byte ever written through f), bit index bit (0..7) — the silent
// corruption model. Returns the receiver for chaining.
func (f *Writer) FlipBit(off int64, bit uint) *Writer {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flipAt, f.flipBit = off, bit%8
	return f
}

// Written reports the total bytes accepted so far (i.e. passed to the
// underlying writer).
func (f *Writer) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Write applies armed faults, forwards the (possibly mangled or
// truncated) data, and accounts accepted bytes.
func (f *Writer) Write(p []byte) (int, error) {
	f.mu.Lock()
	if f.failN > 0 {
		f.failN--
		err := f.failNErr
		f.mu.Unlock()
		return 0, err
	}
	n := len(p)
	var failErr error
	if f.shortKeep >= 0 {
		if n > f.shortKeep {
			n = f.shortKeep
		}
		failErr = f.shortErr
		f.shortKeep = -1
	}
	if f.failAfter >= 0 {
		remaining := f.failAfter - f.written
		if remaining <= 0 {
			err := f.failErr
			f.mu.Unlock()
			return 0, err
		}
		if int64(n) > remaining {
			n = int(remaining)
			failErr = f.failErr
		}
	}
	buf := p[:n]
	if f.flipAt >= 0 && f.flipAt >= f.written && f.flipAt < f.written+int64(n) {
		mangled := append([]byte(nil), buf...)
		mangled[f.flipAt-f.written] ^= 1 << f.flipBit
		buf = mangled
	}
	underlying := f.w
	f.mu.Unlock()
	wrote, err := underlying.Write(buf)
	f.mu.Lock()
	f.written += int64(wrote)
	f.mu.Unlock()
	if err != nil {
		return wrote, err
	}
	return wrote, failErr
}

// Fsync injects fsync failures. Wire its Check method in front of a
// component's fsync calls (wal.Hooks.BeforeSync); the zero value (or
// NewFsync) never fails.
type Fsync struct {
	mu    sync.Mutex
	every int // every k-th check fails; 0 = disabled
	err   error
	calls int64
	fails int64
}

// NewFsync returns an injector with no faults armed.
func NewFsync() *Fsync { return &Fsync{} }

// FailEveryKth arms a periodic failure: every k-th Check call (the
// k-th, 2k-th, ...) returns err (ErrInjected if nil). The fault is
// periodic rather than latched, so retry loops converge — the model
// for a disk that intermittently refuses to flush. k <= 0 disarms.
// Returns the receiver for chaining.
func (s *Fsync) FailEveryKth(k int, err error) *Fsync {
	if err == nil {
		err = ErrInjected
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.every, s.err = k, err
	return s
}

// Check is called before each fsync; a non-nil result means the fsync
// must fail with that error.
func (s *Fsync) Check() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.every > 0 && s.calls%int64(s.every) == 0 {
		s.fails++
		return s.err
	}
	return nil
}

// Calls reports how many fsyncs were checked; Failures how many were
// failed.
func (s *Fsync) Calls() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Failures reports how many Check calls returned an error.
func (s *Fsync) Failures() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fails
}
