package deps

import (
	"testing"
	"testing/quick"
)

func newFloatStore(n, horizon int) *Store[float64] {
	return New[float64](n, horizon,
		func(a float64) float64 { return a },
		func(float64) int { return 8 },
		func() float64 { return 0 },
	)
}

func TestEmptyLookup(t *testing.T) {
	s := newFloatStore(4, 10)
	if _, ok := s.Lookup(2, 1); ok {
		t.Fatal("empty history reported ok")
	}
	if s.Last(2) != 0 {
		t.Fatal("Last of empty history not 0")
	}
}

func TestAppendAndLookup(t *testing.T) {
	s := newFloatStore(2, 10)
	s.Append(0, 1, 1.5)
	s.Append(0, 2, 2.5)
	if a, ok := s.Lookup(0, 1); !ok || a != 1.5 {
		t.Fatalf("level1 = %v,%v", a, ok)
	}
	if a, _ := s.Lookup(0, 2); a != 2.5 {
		t.Fatalf("level2 = %v", a)
	}
	// Past-last lookup returns stabilized value.
	if a, _ := s.Lookup(0, 7); a != 2.5 {
		t.Fatalf("level7 = %v, want stabilized 2.5", a)
	}
	if s.Last(0) != 2 {
		t.Fatalf("Last = %d", s.Last(0))
	}
}

func TestNoHolesGapFill(t *testing.T) {
	s := newFloatStore(1, 10)
	s.Append(0, 1, 1.0)
	s.Append(0, 4, 4.0) // skipped 2,3: filled with copies of level 1
	if s.Last(0) != 4 {
		t.Fatalf("Last = %d, want 4", s.Last(0))
	}
	for _, lv := range []int{2, 3} {
		if a, _ := s.Lookup(0, lv); a != 1.0 {
			t.Fatalf("gap level %d = %v, want 1.0", lv, a)
		}
	}
}

func TestGapFillFromEmptyUsesIdentity(t *testing.T) {
	s := newFloatStore(1, 10)
	s.Append(0, 3, 9.0)
	if a, _ := s.Lookup(0, 1); a != 0 {
		t.Fatalf("level1 = %v, want identity 0", a)
	}
	if a, _ := s.Lookup(0, 3); a != 9.0 {
		t.Fatalf("level3 = %v", a)
	}
}

func TestOverwrite(t *testing.T) {
	s := newFloatStore(1, 10)
	s.Append(0, 1, 1.0)
	s.Append(0, 2, 2.0)
	s.Append(0, 1, 10.0) // refinement overwrite
	if a, _ := s.Lookup(0, 1); a != 10.0 {
		t.Fatalf("overwritten level1 = %v", a)
	}
	if a, _ := s.Lookup(0, 2); a != 2.0 {
		t.Fatalf("level2 disturbed: %v", a)
	}
}

func TestHorizontalPruning(t *testing.T) {
	s := newFloatStore(1, 2)
	s.Append(0, 1, 1.0)
	s.Append(0, 2, 2.0)
	s.Append(0, 3, 3.0) // beyond horizon: dropped
	if s.Last(0) != 2 {
		t.Fatalf("Last = %d, want 2 (horizon)", s.Last(0))
	}
	if a, _ := s.Lookup(0, 3); a != 2.0 {
		t.Fatalf("lookup past horizon = %v, want 2.0", a)
	}
}

func TestFillTo(t *testing.T) {
	s := newFloatStore(1, 10)
	s.FillTo(0, 5) // no history: no-op
	if s.Last(0) != 0 {
		t.Fatal("FillTo on empty history created entries")
	}
	s.Append(0, 1, 1.0)
	s.FillTo(0, 3)
	if s.Last(0) != 3 {
		t.Fatalf("Last = %d, want 3", s.Last(0))
	}
	if a, _ := s.Lookup(0, 3); a != 1.0 {
		t.Fatalf("filled level = %v", a)
	}
}

func TestGrowAndReset(t *testing.T) {
	s := newFloatStore(2, 5)
	s.Append(0, 1, 1.0)
	s.Grow(5)
	if s.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d", s.NumVertices())
	}
	if _, ok := s.Lookup(4, 1); ok {
		t.Fatal("grown vertex has history")
	}
	s.Reset()
	if _, ok := s.Lookup(0, 1); ok {
		t.Fatal("Reset left history")
	}
}

func TestChangedAt(t *testing.T) {
	s := newFloatStore(1, 10)
	s.Append(0, 1, 1.0)
	s.Append(0, 3, 3.0)
	if !s.ChangedAt(0, 3) || s.ChangedAt(0, 2) || s.ChangedAt(0, 4) {
		t.Fatal("ChangedAt wrong")
	}
}

func TestHeapBytesAccounting(t *testing.T) {
	s := newFloatStore(3, 10)
	base := s.HeapBytes()
	s.Append(0, 1, 1.0)
	s.Append(0, 2, 2.0)
	if got := s.HeapBytes() - base; got != 16 {
		t.Fatalf("bytes delta = %d, want 16", got)
	}
	s.Append(0, 1, 5.0) // overwrite: same size
	if got := s.HeapBytes() - base; got != 16 {
		t.Fatalf("bytes after overwrite = %d, want 16", got)
	}
}

func TestSliceAggregatesAreCloned(t *testing.T) {
	s := New[[]float64](1, 10,
		func(a []float64) []float64 { return append([]float64(nil), a...) },
		func(a []float64) int { return 8 * len(a) },
		func() []float64 { return []float64{0, 0} },
	)
	buf := []float64{1, 2}
	s.Append(0, 1, buf)
	buf[0] = 99 // mutate caller's buffer
	if a, _ := s.Lookup(0, 1); a[0] != 1 {
		t.Fatalf("store aliased caller buffer: %v", a)
	}
}

// Property: for any append sequence at increasing levels, lookups always
// return the value of the greatest appended level ≤ query level.
func TestQuickLookupSemantics(t *testing.T) {
	f := func(levelsRaw []uint8) bool {
		s := newFloatStore(1, 64)
		type entry struct {
			level int
			val   float64
		}
		var entries []entry
		last := 0
		for i, raw := range levelsRaw {
			lv := last + 1 + int(raw)%3
			if lv > 64 {
				break
			}
			val := float64(i + 1)
			s.Append(0, lv, val)
			entries = append(entries, entry{lv, val})
			last = lv
		}
		for q := 1; q <= 64; q++ {
			want := 0.0 // identity until first entry's fill base
			found := false
			for _, e := range entries {
				if e.level <= q {
					want = e.val
					found = true
				}
			}
			got, ok := s.Lookup(0, q)
			if len(entries) == 0 {
				if ok {
					return false
				}
				continue
			}
			if !ok {
				return false
			}
			if !found {
				// Query below the first appended level: gap-filled with
				// the previous value, which is identity (0) only when the
				// first entry had a gap below it.
				if entries[0].level == 1 {
					// impossible: q >= 1 and entries[0].level == 1 means found
					return false
				}
				want = 0
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := newFloatStore(3, 5)
	s.Append(0, 1, 1.0)
	s.Append(0, 2, 2.0)
	s.Append(2, 3, 9.0)
	exported := s.Export()

	s2 := newFloatStore(0, 5)
	s2.Import(exported)
	if s2.NumVertices() != 3 {
		t.Fatalf("vertices = %d", s2.NumVertices())
	}
	if a, _ := s2.Lookup(0, 2); a != 2.0 {
		t.Fatalf("lookup(0,2) = %v", a)
	}
	if a, _ := s2.Lookup(2, 3); a != 9.0 {
		t.Fatalf("lookup(2,3) = %v", a)
	}
	if _, ok := s2.Lookup(1, 1); ok {
		t.Fatal("vertex 1 should be empty")
	}
	if s2.HeapBytes() == 0 {
		t.Fatal("imported store reports zero bytes")
	}
	// Export must not alias store internals.
	exported[0][0] = 99
	if a, _ := s.Lookup(0, 1); a != 1.0 {
		t.Fatal("export aliased store")
	}
}

func TestImportTruncatesBeyondHorizon(t *testing.T) {
	s := newFloatStore(1, 2)
	s.Import([][]float64{{1, 2, 3, 4}})
	if s.Last(0) != 2 {
		t.Fatalf("Last = %d, want horizon 2", s.Last(0))
	}
}
