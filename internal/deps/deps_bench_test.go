package deps

import "testing"

func BenchmarkAppendScalar(b *testing.B) {
	s := newFloatStore(1024, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint32(i % 1024)
		level := i/1024%10 + 1
		s.Append(v, level, float64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	s := newFloatStore(1024, 10)
	for v := uint32(0); v < 1024; v++ {
		for lvl := 1; lvl <= 10; lvl++ {
			s.Append(v, lvl, float64(lvl))
		}
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		a, _ := s.Lookup(uint32(i%1024), i%12+1)
		sink += a
	}
	_ = sink
}

func BenchmarkAppendVector(b *testing.B) {
	s := New[[]float64](1024, 10,
		func(a []float64) []float64 { return append([]float64(nil), a...) },
		func(a []float64) int { return 8 * len(a) },
		func() []float64 { return make([]float64, 3) },
	)
	vec := []float64{1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(uint32(i%1024), i/1024%10+1, vec)
	}
}
