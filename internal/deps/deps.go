// Package deps implements the aggregation-value dependency store A_G of
// §3.2: per-vertex histories of aggregation values д_i(v), one entry per
// iteration in which the aggregate changed, with the paper's no-holes
// invariant (if д_i(v) is stored, д_k(v) is stored for every k < i).
//
// Horizontal pruning caps the tracked iteration range at a horizon;
// vertical pruning stops per-vertex tracking once the aggregate
// stabilizes (callers simply stop appending). Lookups past a vertex's
// last entry return the last entry — exactly the stabilized value — and
// lookups on an empty history report "identity", meaning the vertex
// never received a contribution.
package deps

import "sync/atomic"

// Store holds per-vertex aggregation histories for levels 1..Horizon.
// Level 0 is implicit (vertex initial values are recomputable, §3.3).
// The zero Store is not usable; construct with New.
type Store[A any] struct {
	horizon  int
	hist     [][]A
	clone    func(A) A
	bytes    func(A) int
	identity func() A

	heapBytes atomic.Int64
	entries   atomic.Int64
}

// New creates a store for n vertices with the given horizon (the
// horizontal-pruning cut-off: levels > horizon are never stored).
// clone deep-copies an aggregate; bytes reports its heap footprint for
// the Table 9 accounting; identity produces the aggregate a vertex holds
// before receiving any contribution (used to fill no-holes gaps).
func New[A any](n, horizon int, clone func(A) A, bytes func(A) int, identity func() A) *Store[A] {
	if horizon < 0 {
		horizon = 0
	}
	return &Store[A]{
		horizon:  horizon,
		hist:     make([][]A, n),
		clone:    clone,
		bytes:    bytes,
		identity: identity,
	}
}

// Horizon returns the horizontal-pruning cut-off.
func (s *Store[A]) Horizon() int { return s.horizon }

// NumVertices returns the vertex capacity.
func (s *Store[A]) NumVertices() int { return len(s.hist) }

// Grow extends the store to n vertices (new histories empty). No-op if
// already large enough.
func (s *Store[A]) Grow(n int) {
	for len(s.hist) < n {
		s.hist = append(s.hist, nil)
	}
}

// Last returns the highest level stored for v (0 if none).
func (s *Store[A]) Last(v uint32) int { return len(s.hist[v]) }

// Lookup returns д_level(v). ok is false when the vertex has no history
// at all, meaning its aggregate is still the identity. Lookups beyond the
// last entry return the last (stabilized) value; level must be ≥ 1.
func (s *Store[A]) Lookup(v uint32, level int) (agg A, ok bool) {
	h := s.hist[v]
	if len(h) == 0 {
		var zero A
		return zero, false
	}
	if level > len(h) {
		level = len(h)
	}
	return h[level-1], true
}

// Append records д_level(v) at the end of iteration `level` of the
// initial (or refined) run. The aggregate is cloned. If level exceeds
// last+1, the gap is filled with copies of the previous entry to keep
// the no-holes invariant; if level is already stored it is overwritten
// (the refinement path). Levels beyond the horizon are ignored
// (horizontal pruning).
func (s *Store[A]) Append(v uint32, level int, agg A) {
	if level < 1 || level > s.horizon {
		return
	}
	h := s.hist[v]
	if level <= len(h) {
		// Overwrite (refinement): account the delta in footprint.
		s.heapBytes.Add(int64(s.bytes(agg)) - int64(s.bytes(h[level-1])))
		h[level-1] = s.clone(agg)
		return
	}
	for len(h) < level-1 {
		var cp A
		if len(h) == 0 {
			cp = s.identity()
		} else {
			cp = s.clone(h[len(h)-1])
		}
		s.heapBytes.Add(int64(s.bytes(cp)))
		s.entries.Add(1)
		h = append(h, cp)
	}
	cp := s.clone(agg)
	s.heapBytes.Add(int64(s.bytes(cp)))
	s.entries.Add(1)
	h = append(h, cp)
	s.hist[v] = h
}

// FillTo extends v's history with copies of its last entry up to level
// (no-op when there is no history or it already reaches level). Used by
// the refinement path before overwriting a level that vertical pruning
// skipped.
func (s *Store[A]) FillTo(v uint32, level int) {
	if level > s.horizon {
		level = s.horizon
	}
	h := s.hist[v]
	if len(h) == 0 {
		return
	}
	for len(h) < level {
		cp := s.clone(h[len(h)-1])
		s.heapBytes.Add(int64(s.bytes(cp)))
		s.entries.Add(1)
		h = append(h, cp)
	}
	s.hist[v] = h
}

// HeapBytes reports the approximate heap footprint of all stored
// aggregates (Table 9's memory-overhead metric).
func (s *Store[A]) HeapBytes() int64 {
	return s.heapBytes.Load() + int64(len(s.hist))*24 // slice headers
}

// Entries reports the number of aggregation values currently stored
// across all vertex histories — the direct measure of how much the
// horizontal/vertical pruning of §3.2 is saving versus |V|·iterations.
func (s *Store[A]) Entries() int64 {
	return s.entries.Load()
}

// Reset drops all histories (used when an engine restarts from scratch).
func (s *Store[A]) Reset() {
	for i := range s.hist {
		s.hist[i] = nil
	}
	s.heapBytes.Store(0)
	s.entries.Store(0)
}

// ChangedAt reports whether v's aggregate changed at exactly the given
// level — i.e. whether the stored history's frontier reached that level.
// It over-approximates "value changed at level" (Compute may collapse
// distinct aggregates), which is safe for seeding hybrid execution.
func (s *Store[A]) ChangedAt(v uint32, level int) bool {
	return len(s.hist[v]) == level
}

// Export copies every vertex history out of the store, for engine
// checkpointing. Aggregates are cloned.
func (s *Store[A]) Export() [][]A {
	out := make([][]A, len(s.hist))
	for v, h := range s.hist {
		if len(h) == 0 {
			continue
		}
		cp := make([]A, len(h))
		for i, a := range h {
			cp[i] = s.clone(a)
		}
		out[v] = cp
	}
	return out
}

// Import replaces the store contents with previously exported histories,
// recomputing the footprint accounting. Histories longer than the
// horizon are truncated.
func (s *Store[A]) Import(hist [][]A) {
	s.hist = make([][]A, len(hist))
	var total, entries int64
	for v, h := range hist {
		if len(h) > s.horizon {
			h = h[:s.horizon]
		}
		if len(h) == 0 {
			continue
		}
		cp := make([]A, len(h))
		for i, a := range h {
			cp[i] = s.clone(a)
			total += int64(s.bytes(cp[i]))
		}
		entries += int64(len(cp))
		s.hist[v] = cp
	}
	s.heapBytes.Store(total)
	s.entries.Store(entries)
}
