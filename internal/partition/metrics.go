package partition

import "repro/internal/obs"

// routerMetrics holds the router's metric handles; the zero value (nil
// handles) is the instrumentation-off state, as everywhere else.
//
// The registry is name-keyed (no labels), so per-shard series are
// aggregated by the router rather than emitted per shard: queue depth
// is the sum of all shard queues (authoritatively maintained from the
// router's FIFO mirrors — the per-loop graphbolt_serve_queue_depth
// gauge is shared by all shard loops and reflects whichever shard
// updated it last).
type routerMetrics struct {
	shardCount    *obs.Gauge
	queueDepth    *obs.Gauge
	mergedGen     *obs.Gauge
	crossBatches  *obs.Counter
	singleBatches *obs.Counter
	barrierWait   *obs.Histogram
}

func newRouterMetrics(r *obs.Registry) routerMetrics {
	if r == nil {
		return routerMetrics{}
	}
	return routerMetrics{
		shardCount: r.Gauge("graphbolt_shard_count",
			"Partition shards the router is serving."),
		queueDepth: r.Gauge("graphbolt_shard_queue_depth",
			"Sub-batches currently queued or in flight across all shard loops."),
		mergedGen: r.Gauge("graphbolt_shard_merged_generation",
			"Generation of the latest merged multi-shard snapshot."),
		crossBatches: r.Counter("graphbolt_shard_cross_batches_total",
			"Submitted batches spanning multiple shards (barrier required)."),
		singleBatches: r.Counter("graphbolt_shard_single_batches_total",
			"Submitted batches owned entirely by one shard (no barrier)."),
		barrierWait: r.Histogram("graphbolt_shard_barrier_wait_seconds",
			"Cross-shard barrier wait: first owning shard's apply to the last's.",
			obs.DefTimeBuckets),
	}
}

// RegisterMetrics pre-creates the partition metric set in r so the
// exposition endpoint shows every series before the first router is
// constructed. Idempotent.
func RegisterMetrics(r *obs.Registry) {
	newRouterMetrics(r)
}
