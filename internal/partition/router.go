package partition

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/graph"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/serve"
)

// TraceTagShift is the bit position of the shard tag in a trace ID:
// shard s's loop mints IDs with (s+1)<<TraceTagShift OR'd in, so traces
// from different shards never collide and any ID names its shard.
const TraceTagShift = 48

// TraceShard decodes the owning shard from a tagged trace ID, reporting
// false for untagged (single-loop) IDs.
func TraceShard(id uint64) (int, bool) {
	s := id >> TraceTagShift
	if s == 0 {
		return 0, false
	}
	return int(s - 1), true
}

// Options configures a Router.
type Options struct {
	// Loop is the template for every shard's serve.Loop: queue depth,
	// coalescing, admission config (each shard gets its own controller
	// with this shared config/SLO), backoff, watchdog, flight recorder,
	// logger. The router overrides per-shard fields: Health (per-shard
	// trackers), TraceTag, OnApply/OnDrop, ExternalAdmission,
	// QueueWhileDegraded, and forces the Block policy (Reject is
	// emulated at the router so a composite batch is all-or-nothing).
	Loop serve.Options

	// Retain is the merged view's history depth (generations SnapshotAt
	// can serve). Values <= 1 keep only the newest.
	Retain int

	// Health, when non-nil, receives the aggregate state: the worst
	// state across shards (Failed > Degraded > Overloaded > Healthy),
	// with the cause naming the worst shard.
	Health *health.Tracker

	// Metrics receives the graphbolt_shard_* series; nil disables them.
	Metrics *obs.Registry

	// OnPublish, when non-nil, is called from the publisher goroutine
	// after every merged snapshot publication with its generation.
	OnPublish func(gen uint64)

	// OnApplied, when non-nil, is called from the publisher goroutine
	// once per composite batch, after its ticket resolves.
	OnApplied func(serve.Applied)

	// Logger receives router warnings; nil uses slog.Default().
	Logger *slog.Logger
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// batchState tracks one submitted composite batch across its owning
// shards: the cross-shard generation barrier in data form. The ticket
// resolves only after every owning shard has applied its sub-batch
// (remainingApply hits 0) and the publisher has folded every sub-apply
// into a merged snapshot (remainingMerge hits 0) — or the composite
// failed on some shard.
type batchState struct {
	owners   []int
	traces   []uint64 // parallel to owners; traces[0] is the head
	t        *serve.Ticket
	enqueued time.Time

	remainingApply int
	remainingMerge int
	firstApplyAt   time.Time
	stats          core.Stats
	maxWait        time.Duration
	failed         bool // some shard failed/quarantined/dropped it
	done           bool // ticket resolved, outstanding released
}

// subBatch is one shard's slice of a composite batch, mirrored in the
// shard's FIFO in submission order. The loop's OnApply/OnDrop callbacks
// pop descriptors in exactly that order (the loop is FIFO and the
// router is its sole producer), which is how apply results are matched
// back to composites without any ID lookup.
type subBatch struct {
	bs    *batchState
	b     graph.Batch
	trace uint64
}

// shardEvent is one completed shard apply awaiting merge: the
// descriptors it covered (possibly several, when the shard loop
// coalesced adjacent sub-batches) and the shard snapshot it produced.
type shardEvent[V any] struct {
	descs []*subBatch
	snap  *core.ResultSnapshot[V]
	stats core.Stats
	wait  time.Duration
}

// shardState is the router's per-shard bookkeeping.
type shardState[V any] struct {
	fifo   []*subBatch
	events []shardEvent[V]
	last   *core.ResultSnapshot[V] // newest applied shard snapshot (loop goroutine)
	cur    *core.ResultSnapshot[V] // newest merged shard snapshot (publisher)
}

// captureApplier wraps a shard's applier to capture the engine snapshot
// each apply produced, pairing it with the OnApply callback that
// follows on the same goroutine. Recoverer calls pass through.
type captureApplier[V, A any] struct {
	inner serve.Applier
	eng   *core.Engine[V, A]
	slot  *shardState[V]
}

func (c *captureApplier[V, A]) ApplyBatch(b graph.Batch) (core.Stats, error) {
	st, err := c.inner.ApplyBatch(b)
	if err == nil {
		c.slot.last = c.eng.Snapshot()
	}
	return st, err
}

func (c *captureApplier[V, A]) Ailment() error {
	if r, ok := c.inner.(serve.Recoverer); ok {
		return r.Ailment()
	}
	return nil
}

func (c *captureApplier[V, A]) Recover() error {
	if r, ok := c.inner.(serve.Recoverer); ok {
		return r.Recover()
	}
	return fmt.Errorf("partition: applier is not recoverable")
}

// Router fans a mutation stream out over N partition-local serve.Loops
// and merges their published snapshots back into one consistent view.
//
// Submit splits each batch by edge ownership and submits the sub-
// batches to their shards concurrently with one composite ticket. A
// single-shard batch proceeds independently — no barrier, no cross-
// shard coordination. A multi-shard batch resolves only after all
// owning shards applied (the cross-shard generation barrier), and the
// merged view never exposes a partially applied batch: a shard's apply
// is held back from publication until every composite it covers has
// fully applied on all its shards, so every merged snapshot sits at a
// barrier-consistent generation vector.
//
// Failure domains stay per shard: a poison batch is routed whole to one
// shard and quarantined there; a degraded shard queues its sub-batches
// (bounded backpressure) while recovery retries, and the other shards
// keep applying and publishing; a terminal shard failure latches the
// router (Err) with the first failing shard named.
type Router[V, A any] struct {
	pt      *Partitioner
	engines []*core.Engine[V, A]
	loops   []*serve.Loop
	view    *core.MultiView[V, A]
	met     routerMetrics
	rec     *flight.Recorder
	opts    Options
	policy  serve.Policy
	qdepth  int // effective per-shard queue depth (Reject emulation)
	gen0    uint64

	shardHealth []*health.Tracker
	healthMu    sync.Mutex

	mu          sync.Mutex
	cond        *sync.Cond
	shards      []shardState[V]
	fifoTotal   int
	outstanding int
	failure     error
	closed      bool

	union *graph.Graph // publisher-owned after construction

	pubCh    chan struct{}
	stopCh   chan struct{}
	pubDone  chan struct{}
	stopOnce sync.Once
}

// NewRouter builds and starts a router over per-shard engines.
// engines[s] must be built over shard s's edge subset with the full
// vertex numbering (SplitGraph); union is their merged graph. appliers
// supplies the per-shard mutation targets (durable wrappers); nil means
// the engines themselves. Engines that have not run yet get their
// initial computation here, in parallel.
func NewRouter[V, A any](engines []*core.Engine[V, A], appliers []serve.Applier, pt *Partitioner, union *graph.Graph, opts Options) (*Router[V, A], error) {
	n := pt.Shards()
	if len(engines) != n {
		return nil, fmt.Errorf("partition: %d engines for %d shards", len(engines), n)
	}
	if appliers == nil {
		appliers = make([]serve.Applier, n)
		for s, e := range engines {
			appliers[s] = e
		}
	}
	if len(appliers) != n {
		return nil, fmt.Errorf("partition: %d appliers for %d shards", len(appliers), n)
	}
	if union == nil {
		return nil, fmt.Errorf("partition: nil union graph")
	}

	var wg sync.WaitGroup
	for _, e := range engines {
		if e.Snapshot() == nil {
			wg.Add(1)
			go func(e *core.Engine[V, A]) {
				defer wg.Done()
				e.Run()
			}(e)
		}
	}
	wg.Wait()

	view, err := core.NewMultiView(engines, pt.Owner, opts.Retain)
	if err != nil {
		return nil, err
	}

	qdepth := opts.Loop.QueueDepth
	if qdepth <= 0 {
		qdepth = serve.DefaultQueueDepth
	}
	r := &Router[V, A]{
		pt:      pt,
		engines: engines,
		view:    view,
		met:     newRouterMetrics(opts.Metrics),
		rec:     opts.Loop.Flight,
		opts:    opts,
		policy:  opts.Loop.Policy,
		qdepth:  qdepth,
		shards:  make([]shardState[V], n),
		union:   union,
		pubCh:   make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
		pubDone: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)

	// Initial merged publication: every shard's post-Run snapshot at
	// once. gen0 anchors Applied.Seq to generations, like a loop over a
	// quiescent engine.
	snaps := make([]*core.ResultSnapshot[V], n)
	for s, e := range engines {
		snaps[s] = e.Snapshot()
		r.shards[s].last = snaps[s]
		r.shards[s].cur = snaps[s]
	}
	r.gen0 = view.PublishMerged(union, snaps).Generation
	r.met.shardCount.Set(float64(n))
	r.met.mergedGen.Set(float64(r.gen0))

	r.shardHealth = make([]*health.Tracker, n)
	r.loops = make([]*serve.Loop, n)
	for s := 0; s < n; s++ {
		s := s
		tr := health.NewTracker(nil) // per-shard, unregistered; aggregate owns the gauge
		r.shardHealth[s] = tr
		tr.OnTransition(func(health.State, health.State, error) { r.recomputeHealth() })

		lo := opts.Loop
		lo.Health = tr
		lo.TraceTag = uint64(s+1) << TraceTagShift
		lo.Policy = serve.Block
		lo.QueueWhileDegraded = true
		lo.ExternalAdmission = lo.Admission != nil
		lo.Logger = opts.logger().With("shard", s)
		lo.OnApply = func(ap serve.Applied) { r.onShardApply(s, ap) }
		lo.OnDrop = func(b graph.Batch, trace uint64, err error) { r.onShardDrop(s, trace, err) }
		r.loops[s] = serve.NewLoop(&captureApplier[V, A]{
			inner: appliers[s], eng: engines[s], slot: &r.shards[s],
		}, lo)
	}

	go r.publisher()
	return r, nil
}

// View returns the merged multi-shard read view.
func (r *Router[V, A]) View() *core.MultiView[V, A] { return r.view }

// Shards returns the shard count.
func (r *Router[V, A]) Shards() int { return r.pt.Shards() }

// Partitioner returns the router's vertex partitioner.
func (r *Router[V, A]) Partitioner() *Partitioner { return r.pt }

// Gen0 returns the merged generation at construction (before any
// submitted batch).
func (r *Router[V, A]) Gen0() uint64 { return r.gen0 }

// Flight returns the shared flight recorder (nil when recording off).
func (r *Router[V, A]) Flight() *flight.Recorder { return r.rec }

// Loop returns shard s's apply loop, for introspection (Seq, Depth,
// Health). Submitting to it directly breaks the router's bookkeeping.
func (r *Router[V, A]) Loop(s int) *serve.Loop { return r.loops[s] }

// ShardHealth returns shard s's health tracker.
func (r *Router[V, A]) ShardHealth(s int) *health.Tracker { return r.shardHealth[s] }

// Admission returns shard s's admission controller (nil when admission
// is off; the nil controller is inert).
func (r *Router[V, A]) Admission(s int) *admission.Controller { return r.loops[s].Admission() }

// Admissions returns every shard's admission controller, indexed by
// shard (all nil when admission is off).
func (r *Router[V, A]) Admissions() []*admission.Controller {
	out := make([]*admission.Controller, len(r.loops))
	for s, l := range r.loops {
		out[s] = l.Admission()
	}
	return out
}

// Depth returns the total number of sub-batches queued or in flight
// across all shards.
func (r *Router[V, A]) Depth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fifoTotal
}

// MaxBatchEdges returns the largest effective coalescing cap across
// shards (caps can diverge when per-shard governors float them).
func (r *Router[V, A]) MaxBatchEdges() int {
	max := 0
	for _, l := range r.loops {
		if c := l.MaxBatchEdges(); c > max {
			max = c
		}
	}
	return max
}

// SetMaxBatchEdges adjusts every shard's coalescing cap.
func (r *Router[V, A]) SetMaxBatchEdges(n int) {
	for _, l := range r.loops {
		l.SetMaxBatchEdges(n)
	}
}

// Quarantined returns every shard's retained poison batches merged into
// one list, ordered by quarantine time.
func (r *Router[V, A]) Quarantined() []serve.PoisonBatch {
	var out []serve.PoisonBatch
	for _, l := range r.loops {
		out = append(out, l.Quarantined()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// QuarantinedTotal returns the total poison batches ever quarantined
// across shards.
func (r *Router[V, A]) QuarantinedTotal() uint64 {
	var n uint64
	for _, l := range r.loops {
		n += l.QuarantinedTotal()
	}
	return n
}

// Err returns the router's first terminal shard failure, or nil. The
// first failure observed is latched — once non-nil the value never
// changes — and it keeps precedence over ErrClosed after Close, per
// shard, exactly like a single loop's Err.
func (r *Router[V, A]) Err() error {
	r.mu.Lock()
	if f := r.failure; f != nil {
		r.mu.Unlock()
		return f
	}
	r.mu.Unlock()
	for s, l := range r.loops {
		if err := l.Err(); err != nil {
			return r.latchFailure(s, err)
		}
	}
	return nil
}

// latchFailure records the first terminal shard failure, returning the
// latched (possibly earlier) value.
func (r *Router[V, A]) latchFailure(shard int, err error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failure == nil {
		r.failure = fmt.Errorf("partition: shard %d: %w", shard, err)
	}
	return r.failure
}

// submitErrLocked mirrors the loop's refusal precedence at router
// scope: terminal shard failure first, then closed.
func (r *Router[V, A]) submitErrLocked() error {
	if r.failure != nil {
		return r.failure
	}
	if r.closed {
		return serve.ErrClosed
	}
	return nil
}

// Submit splits b by edge ownership and submits each sub-batch to its
// owning shard, returning one composite ticket that resolves after all
// owning shards applied and the merged snapshot covering the batch
// published. A batch owned by a single shard skips the barrier
// entirely. A malformed batch is routed whole to the shard owning its
// first invalid edge, which quarantines it — so poison stays confined
// to one partition and the ticket fails exactly like a single loop's.
//
// With admission control on, the composite is admitted up front on
// every owning shard (all-or-nothing): one refusal cancels the others
// and returns the ErrOverloaded refusal with the largest RetryAfter.
func (r *Router[V, A]) Submit(ctx context.Context, b graph.Batch) (*serve.Ticket, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	r.mu.Lock()
	if err := r.submitErrLocked(); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Unlock()

	// Route: per-shard sub-batches, or the whole batch to one shard if
	// it is poison (all-or-nothing quarantine).
	var owners []int
	var subs []graph.Batch
	if verr := b.Validate(); verr != nil {
		owners = []int{r.pt.PoisonOwner(b)}
		subs = []graph.Batch{{
			Add: append([]graph.Edge(nil), b.Add...),
			Del: append([]graph.Edge(nil), b.Del...),
		}}
	} else {
		split := r.pt.Split(b)
		for s, sb := range split {
			if len(sb.Add)+len(sb.Del) > 0 {
				owners = append(owners, s)
				subs = append(subs, sb)
			}
		}
		if len(owners) == 0 {
			// An empty batch still advances the generation, like a
			// single loop applying it; route it to shard 0.
			owners = []int{0}
			subs = []graph.Batch{{}}
		}
	}

	// Reject emulation: the shard loops run Block so a composite is
	// never half-rejected; under the Reject policy the router fails
	// fast up front when any owning shard's queue is full.
	if r.policy == serve.Reject {
		for _, s := range owners {
			if r.loops[s].Depth() >= r.qdepth {
				return nil, &serve.RetryableError{Sentinel: serve.ErrQueueFull, After: serve.DefaultRetryAfter}
			}
		}
	}

	// Pre-flight admission across all owning shards, all-or-nothing.
	// Once a sub-batch enqueues, its shard's loop owns the weight
	// release (apply complete, quarantine, drain); the router cancels
	// only charges whose enqueue never happened.
	weights := make([]int, len(owners))
	for i, sb := range subs {
		if w := len(sb.Add) + len(sb.Del); w > 0 {
			weights[i] = w
		} else {
			weights[i] = 1
		}
	}
	if r.loops[owners[0]].Admission() != nil {
		var deadline time.Time
		if ctx != nil {
			deadline, _ = ctx.Deadline()
		}
		var worst admission.Decision
		refused := -1
		for i, s := range owners {
			dec := r.loops[s].Admission().Admit(weights[i], deadline)
			if !dec.Admitted {
				refused = i
				worst = dec
				break
			}
		}
		if refused >= 0 {
			for i := 0; i < refused; i++ {
				r.loops[owners[i]].Admission().Cancel(weights[i])
			}
			return nil, &serve.RetryableError{
				Sentinel: serve.ErrOverloaded,
				After:    worst.RetryAfter,
				Detail: fmt.Sprintf("shard %d: estimated wait %v",
					owners[refused], worst.EstimatedWait.Round(time.Millisecond)),
			}
		}
	}

	// Mint per-shard traces and register the composite's descriptors in
	// the shard FIFOs before any loop can see the sub-batches, so the
	// OnApply/OnDrop pops always find them.
	traces := make([]uint64, len(owners))
	for i, s := range owners {
		traces[i] = r.loops[s].MintTrace()
	}
	bs := &batchState{
		owners:         owners,
		traces:         traces,
		t:              serve.NewTicket(traces[0]),
		enqueued:       time.Now(),
		remainingApply: len(owners),
		remainingMerge: len(owners),
	}
	descs := make([]*subBatch, len(owners))
	r.mu.Lock()
	if err := r.submitErrLocked(); err != nil {
		r.mu.Unlock()
		r.cancelAdmission(owners, weights, 0)
		return nil, err
	}
	for i, s := range owners {
		d := &subBatch{bs: bs, b: subs[i], trace: traces[i]}
		descs[i] = d
		r.shards[s].fifo = append(r.shards[s].fifo, d)
	}
	r.fifoTotal += len(owners)
	r.outstanding++
	r.met.queueDepth.Set(float64(r.fifoTotal))
	r.mu.Unlock()
	if len(owners) > 1 {
		r.met.crossBatches.Inc()
	} else {
		r.met.singleBatches.Inc()
	}

	for i, s := range owners {
		if _, err := r.loops[s].SubmitTraced(ctx, subs[i], traces[i]); err != nil {
			// This shard never saw the sub-batch: unregister it and any
			// not-yet-submitted siblings, release their admission
			// charges, and fail the composite. Sub-batches already
			// submitted will still apply on their shards (their events
			// merge under the failed flag), but the composite's ticket
			// reports the submission failure.
			r.mu.Lock()
			for j := i; j < len(owners); j++ {
				r.removeDescLocked(owners[j], descs[j])
			}
			r.failBatchLocked(bs, s, err)
			r.mu.Unlock()
			r.cancelAdmission(owners[i:], weights[i:], 0)
			r.signalPublisher()
			return nil, fmt.Errorf("partition: shard %d: %w", s, err)
		}
	}
	return bs.t, nil
}

// cancelAdmission releases the admission charges for owners[from:].
func (r *Router[V, A]) cancelAdmission(owners, weights []int, from int) {
	for i := from; i < len(owners); i++ {
		r.loops[owners[i]].Admission().Cancel(weights[i])
	}
}

// removeDescLocked unregisters a descriptor that never reached its
// shard's loop. r.mu must be held.
func (r *Router[V, A]) removeDescLocked(shard int, d *subBatch) {
	fifo := r.shards[shard].fifo
	for i := len(fifo) - 1; i >= 0; i-- {
		if fifo[i] == d {
			r.shards[shard].fifo = append(fifo[:i], fifo[i+1:]...)
			r.fifoTotal--
			r.met.queueDepth.Set(float64(r.fifoTotal))
			return
		}
	}
}

// failBatchLocked marks a composite failed and resolves its ticket once
// (failures from later shards keep the first error). The failed flag
// releases the publication barrier so sibling shards' applies still
// merge. r.mu must be held.
func (r *Router[V, A]) failBatchLocked(bs *batchState, shard int, err error) {
	bs.failed = true
	if bs.done {
		return
	}
	bs.done = true
	r.outstanding--
	wrapped := err
	if !errorNamesShard(err) {
		wrapped = fmt.Errorf("partition: shard %d: %w", shard, err)
	}
	bt := flight.BatchTrace{
		ID: bs.traces[0], Traces: bs.traces, Batches: 1,
		EnqueuedAt: bs.enqueued, CompletedAt: time.Now(), Err: wrapped.Error(),
	}
	r.rec.CompleteTrace(bt)
	bs.t.Resolve(serve.Applied{Batches: 1, Err: wrapped, Trace: bt})
	if cb := r.opts.OnApplied; cb != nil {
		go cb(serve.Applied{Batches: 1, Err: wrapped, Trace: bt})
	}
	r.cond.Broadcast()
}

// errorNamesShard reports whether err already carries the router's
// shard prefix (avoids double-wrapping the latched failure).
func errorNamesShard(err error) bool {
	return err != nil && len(err.Error()) > 10 && err.Error()[:10] == "partition:"
}

// onShardApply is shard s's OnApply hook: pop the descriptors this
// apply covered (the loop coalesces only adjacent sub-batches, so the
// FIFO prefix is exactly the covered set), advance their composites'
// barriers, and queue a merge event for the publisher.
func (r *Router[V, A]) onShardApply(s int, ap serve.Applied) {
	r.mu.Lock()
	sh := &r.shards[s]
	k := ap.Batches
	if k > len(sh.fifo) {
		k = len(sh.fifo)
	}
	descs := append([]*subBatch(nil), sh.fifo[:k]...)
	sh.fifo = sh.fifo[k:]
	r.fifoTotal -= len(descs)
	r.met.queueDepth.Set(float64(r.fifoTotal))

	if ap.Err != nil {
		terminal := r.loops[s].Err() != nil
		for _, d := range descs {
			r.failBatchLocked(d.bs, s, ap.Err)
		}
		r.mu.Unlock()
		if terminal {
			r.latchFailure(s, r.loops[s].Err())
		}
		r.signalPublisher()
		return
	}

	now := time.Now()
	for _, d := range descs {
		bs := d.bs
		bs.remainingApply--
		if len(bs.owners) > 1 {
			if bs.firstApplyAt.IsZero() {
				bs.firstApplyAt = now
			}
			if bs.remainingApply == 0 {
				r.met.barrierWait.Observe(now.Sub(bs.firstApplyAt).Seconds())
			}
		}
	}
	sh.events = append(sh.events, shardEvent[V]{
		descs: descs, snap: sh.last, stats: ap.Stats, wait: ap.QueueWait,
	})
	r.mu.Unlock()
	r.signalPublisher()
}

// onShardDrop is shard s's OnDrop hook: a sub-batch resolved without an
// apply (quarantine, shutdown/terminal drain). Runs on the loop
// goroutine in queue order, so the FIFO head is the dropped batch.
func (r *Router[V, A]) onShardDrop(s int, trace uint64, err error) {
	r.mu.Lock()
	sh := &r.shards[s]
	if len(sh.fifo) == 0 {
		r.mu.Unlock()
		return
	}
	d := sh.fifo[0]
	if d.trace != trace {
		// Defensive: should be impossible while the router is the sole
		// producer. Find it so bookkeeping cannot wedge.
		idx := -1
		for i, c := range sh.fifo {
			if c.trace == trace {
				idx = i
				break
			}
		}
		if idx < 0 {
			r.mu.Unlock()
			return
		}
		d = sh.fifo[idx]
		sh.fifo = append(sh.fifo[:idx], sh.fifo[idx+1:]...)
	} else {
		sh.fifo = sh.fifo[1:]
	}
	r.fifoTotal--
	r.met.queueDepth.Set(float64(r.fifoTotal))
	r.failBatchLocked(d.bs, s, err)
	r.mu.Unlock()
	r.signalPublisher()
}

// signalPublisher nudges the publisher goroutine (coalescing nudges).
func (r *Router[V, A]) signalPublisher() {
	select {
	case r.pubCh <- struct{}{}:
	default:
	}
}

// publisher is the single goroutine that merges completed shard applies
// into composite snapshot publications.
func (r *Router[V, A]) publisher() {
	defer close(r.pubDone)
	for {
		select {
		case <-r.pubCh:
			r.publishPass()
		case <-r.stopCh:
			r.publishPass() // final flush
			return
		}
	}
}

// mergeableLocked reports whether a shard event may be folded into the
// next merged snapshot: every composite it covers must have fully
// applied on all its owning shards (or failed — a failed composite
// blocks nothing). This is the publication half of the cross-shard
// barrier: a multi-shard batch is either absent from the merged view or
// fully present, never partial.
func (r *Router[V, A]) mergeableLocked(ev shardEvent[V]) bool {
	for _, d := range ev.descs {
		if d.bs.remainingApply > 0 && !d.bs.failed {
			return false
		}
	}
	return true
}

// publishPass drains every mergeable shard event, publishes one merged
// snapshot covering them, and resolves the composites whose last event
// just merged. Shard event queues advance strictly in order: a blocked
// head (waiting on a sibling shard) holds that shard's frontier while
// other shards keep publishing.
func (r *Router[V, A]) publishPass() {
	r.mu.Lock()
	var merged []shardEvent[V]
	for progress := true; progress; {
		progress = false
		for s := range r.shards {
			sh := &r.shards[s]
			for len(sh.events) > 0 && r.mergeableLocked(sh.events[0]) {
				ev := sh.events[0]
				sh.events[0] = shardEvent[V]{}
				sh.events = sh.events[1:]
				sh.cur = ev.snap
				merged = append(merged, ev)
				progress = true
			}
		}
	}
	if len(merged) == 0 {
		r.mu.Unlock()
		return
	}
	parts := make([]*core.ResultSnapshot[V], len(r.shards))
	for s := range r.shards {
		parts[s] = r.shards[s].cur
	}
	var toResolve []*batchState
	for _, ev := range merged {
		for _, d := range ev.descs {
			bs := d.bs
			bs.stats.Add(ev.stats)
			if ev.wait > bs.maxWait {
				bs.maxWait = ev.wait
			}
			bs.remainingMerge--
			if bs.remainingMerge == 0 && !bs.done {
				bs.done = true
				toResolve = append(toResolve, bs)
			}
		}
	}
	r.mu.Unlock()

	// Maintain the union graph: apply the merged sub-batches in merge
	// order, folding adjacent compatible ones into a single structural
	// apply (same del-after-add guard as loop coalescing) so the
	// publisher does not become the serial bottleneck.
	r.applyToUnion(merged)
	snap := r.view.PublishMerged(r.union, parts)
	r.met.mergedGen.Set(float64(snap.Generation))

	completedAt := time.Now()
	for _, bs := range toResolve {
		bt := flight.BatchTrace{
			ID: bs.traces[0], Traces: bs.traces, Batches: 1, Seq: snap.Generation - r.gen0,
			EnqueuedAt: bs.enqueued, CompletedAt: completedAt,
			Phases: flight.Phases{QueueWait: bs.maxWait},
		}
		r.rec.CompleteTrace(bt)
		ap := serve.Applied{
			Seq: snap.Generation - r.gen0, Batches: 1, Stats: bs.stats,
			QueueWait: bs.maxWait, Trace: bt,
		}
		bs.t.Resolve(ap)
		if cb := r.opts.OnApplied; cb != nil {
			cb(ap)
		}
	}
	if cb := r.opts.OnPublish; cb != nil {
		cb(snap.Generation)
	}

	r.mu.Lock()
	r.outstanding -= len(toResolve)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// applyToUnion folds the merged events' sub-batches into the union
// graph. Edges are partition-disjoint across shards, so any interleaved
// order consistent with per-shard order yields the same union; merge
// order is per-shard order by construction.
func (r *Router[V, A]) applyToUnion(merged []shardEvent[V]) {
	var acc graph.Batch
	var accAdds map[[2]graph.VertexID]struct{}
	flush := func() {
		if len(acc.Add)+len(acc.Del) == 0 {
			return
		}
		r.union, _ = r.union.Apply(acc)
		acc = graph.Batch{}
		accAdds = nil
	}
	for _, ev := range merged {
		for _, d := range ev.descs {
			if len(d.b.Add)+len(d.b.Del) == 0 {
				continue
			}
			hit := false
			for _, e := range d.b.Del {
				if _, ok := accAdds[[2]graph.VertexID{e.From, e.To}]; ok {
					hit = true
					break
				}
			}
			if hit {
				flush()
			}
			if accAdds == nil {
				accAdds = make(map[[2]graph.VertexID]struct{})
			}
			acc.Add = append(acc.Add, d.b.Add...)
			acc.Del = append(acc.Del, d.b.Del...)
			for _, e := range d.b.Add {
				accAdds[[2]graph.VertexID{e.From, e.To}] = struct{}{}
			}
		}
	}
	flush()
}

// recomputeHealth folds the per-shard states into the aggregate
// tracker: the worst state wins (Failed > Degraded > Overloaded >
// Healthy), with the cause naming the worst shard.
func (r *Router[V, A]) recomputeHealth() {
	agg := r.opts.Health
	if agg == nil {
		return
	}
	rank := func(s health.State) int {
		switch s {
		case health.Failed:
			return 3
		case health.Degraded:
			return 2
		case health.Overloaded:
			return 1
		}
		return 0
	}
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	worst, worstShard := health.Healthy, -1
	var worstCause error
	for s, tr := range r.shardHealth {
		info := tr.Info()
		if worstShard < 0 || rank(info.State) > rank(worst) {
			worst, worstShard, worstCause = info.State, s, info.Cause
		}
	}
	var cause error
	if worst != health.Healthy && worstCause != nil {
		cause = fmt.Errorf("shard %d: %w", worstShard, worstCause)
	} else if worst != health.Healthy {
		cause = fmt.Errorf("shard %d: %s", worstShard, worst)
	}
	agg.Set(worst, cause)
}

// Sync blocks until every batch submitted before the call has applied
// on all its shards and the merged snapshot covering it has published
// (or ctx is done). Returns the router's terminal failure, if any.
func (r *Router[V, A]) Sync(ctx context.Context) error {
	for s, l := range r.loops {
		if err := l.Sync(ctx); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			return r.latchFailure(s, err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.awaitLocked(ctx, func() bool {
		return r.failure != nil || (r.outstanding == 0 && r.eventsEmptyLocked())
	})
	if err != nil {
		return err
	}
	return r.failure
}

func (r *Router[V, A]) eventsEmptyLocked() bool {
	for s := range r.shards {
		if len(r.shards[s].events) > 0 {
			return false
		}
	}
	return true
}

// awaitLocked waits on the router condition until pred holds or ctx is
// done. r.mu must be held.
func (r *Router[V, A]) awaitLocked(ctx context.Context, pred func() bool) error {
	if pred() {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	for !pred() {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.cond.Wait()
	}
	return nil
}

// Done returns a channel closed once the publisher has flushed and
// exited (after Close completed).
func (r *Router[V, A]) Done() <-chan struct{} { return r.pubDone }

// Close stops accepting submissions, closes every shard loop (draining
// their queues, bounded by ctx), then stops the publisher after a final
// merge flush. The first terminal shard failure — latched before or
// during the drain — takes precedence over ErrClosed-class outcomes,
// deterministically: once latched it is what Err and Close return.
// Close is idempotent; if ctx expires mid-drain the loops keep
// draining and a later Close can finish the job.
func (r *Router[V, A]) Close(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	var firstErr error
	for s, l := range r.loops {
		if err := l.Close(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("partition: shard %d: %w", s, err)
		}
	}
	for _, l := range r.loops {
		select {
		case <-l.Done():
		default:
			// ctx expired while a shard was still draining; leave the
			// publisher running so its applies still merge.
			if f := r.Err(); f != nil {
				return f
			}
			return firstErr
		}
	}
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.pubDone
	if f := r.Err(); f != nil {
		return f
	}
	return firstErr
}
