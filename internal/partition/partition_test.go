package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func mustNew(t testing.TB, n int, assign map[graph.VertexID]int) *Partitioner {
	t.Helper()
	p, err := New(n, assign)
	if err != nil {
		t.Fatalf("New(%d): %v", n, err)
	}
	return p
}

func randomEdges(rng *rand.Rand, n, count int) []graph.Edge {
	edges := make([]graph.Edge, count)
	for i := range edges {
		edges[i] = graph.Edge{
			From:   graph.VertexID(rng.Intn(n)),
			To:     graph.VertexID(rng.Intn(n)),
			Weight: float64(rng.Intn(9) + 1),
		}
	}
	return edges
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("New(0) accepted")
	}
	if _, err := New(-3, nil); err == nil {
		t.Fatal("New(-3) accepted")
	}
	if _, err := New(2, map[graph.VertexID]int{4: 2}); err == nil {
		t.Fatal("out-of-range explicit assignment accepted")
	}
	if _, err := New(2, map[graph.VertexID]int{4: -1}); err == nil {
		t.Fatal("negative explicit assignment accepted")
	}
}

// Ownership is a pure function: stable across calls, across instances,
// and always in range. Explicit assignments override the hash and are
// copied (mutating the caller's map afterwards changes nothing).
func TestOwnerDeterministic(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8, 13} {
		a := mustNew(t, shards, nil)
		b := mustNew(t, shards, nil)
		for v := 0; v < 2000; v++ {
			s := a.Owner(graph.VertexID(v))
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: Owner(%d) = %d out of range", shards, v, s)
			}
			if s2 := a.Owner(graph.VertexID(v)); s2 != s {
				t.Fatalf("shards=%d: Owner(%d) unstable: %d then %d", shards, v, s, s2)
			}
			if s2 := b.Owner(graph.VertexID(v)); s2 != s {
				t.Fatalf("shards=%d: Owner(%d) differs across instances: %d vs %d", shards, v, s, s2)
			}
		}
	}

	assign := map[graph.VertexID]int{7: 3, 8: 0}
	p := mustNew(t, 4, assign)
	if got := p.Owner(7); got != 3 {
		t.Fatalf("explicit Owner(7) = %d, want 3", got)
	}
	if got := p.Owner(8); got != 0 {
		t.Fatalf("explicit Owner(8) = %d, want 0", got)
	}
	assign[7] = 1 // the partitioner copied the map
	if got := p.Owner(7); got != 3 {
		t.Fatalf("Owner(7) = %d after caller mutated assign map, want 3", got)
	}
}

// The hash spreads vertices over shards: no shard owns everything (or
// nothing) on a reasonably sized ID range.
func TestOwnerSpread(t *testing.T) {
	const n = 4096
	for _, shards := range []int{2, 4, 8} {
		p := mustNew(t, shards, nil)
		counts := make([]int, shards)
		for v := 0; v < n; v++ {
			counts[p.Owner(graph.VertexID(v))]++
		}
		want := n / shards
		for s, c := range counts {
			if c < want/2 || c > want*2 {
				t.Errorf("shards=%d: shard %d owns %d of %d vertices (expected near %d)", shards, s, c, n, want)
			}
		}
	}
}

// checkSplit asserts the three splitter properties for one batch:
// every edge lands on exactly one shard (its EdgeOwner), per-shard
// relative order is preserved, and recombining the sub-batches yields
// exactly the input edges.
func checkSplit(t testing.TB, p *Partitioner, b graph.Batch) {
	t.Helper()
	subs := p.Split(b)
	if len(subs) != p.Shards() {
		t.Fatalf("Split returned %d sub-batches for %d shards", len(subs), p.Shards())
	}
	check := func(kind string, in []graph.Edge, side func(graph.Batch) []graph.Edge) {
		total := 0
		for s, sub := range subs {
			for _, e := range side(sub) {
				if own := p.EdgeOwner(e); own != s {
					t.Fatalf("%s edge %v landed on shard %d, owner is %d", kind, e, s, own)
				}
			}
			total += len(side(sub))
		}
		if total != len(in) {
			t.Fatalf("%s: %d edges in, %d across sub-batches", kind, len(in), total)
		}
		// Replaying the input and popping each edge from its owner's
		// sub-batch front checks order preservation and multiset
		// equality at once.
		next := make([]int, len(subs))
		for i, e := range in {
			s := p.EdgeOwner(e)
			es := side(subs[s])
			if next[s] >= len(es) {
				t.Fatalf("%s: shard %d exhausted at input edge %d", kind, s, i)
			}
			if es[next[s]] != e {
				t.Fatalf("%s: shard %d position %d = %v, want %v (order not preserved)",
					kind, s, next[s], es[next[s]], e)
			}
			next[s]++
		}
	}
	check("add", b.Add, func(s graph.Batch) []graph.Edge { return s.Add })
	check("del", b.Del, func(s graph.Batch) []graph.Edge { return s.Del })
}

func TestSplitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		shards := 1 + rng.Intn(8)
		var assign map[graph.VertexID]int
		if rng.Intn(2) == 0 {
			assign = map[graph.VertexID]int{graph.VertexID(rng.Intn(64)): rng.Intn(shards)}
		}
		p := mustNew(t, shards, assign)
		b := graph.Batch{
			Add: randomEdges(rng, 64, rng.Intn(40)),
			Del: randomEdges(rng, 64, rng.Intn(20)),
		}
		checkSplit(t, p, b)
	}
}

// Split must not alias the input: mutating a sub-batch cannot corrupt
// the caller's slices.
func TestSplitCopies(t *testing.T) {
	p := mustNew(t, 1, nil)
	b := graph.Batch{Add: []graph.Edge{{From: 0, To: 1, Weight: 1}}}
	subs := p.Split(b)
	subs[0].Add[0].Weight = 99
	if b.Add[0].Weight != 1 {
		t.Fatal("Split aliased the input batch")
	}
}

func FuzzSplit(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(10), uint8(5))
	f.Add(int64(7), uint8(1), uint8(0), uint8(0))
	f.Add(int64(99), uint8(8), uint8(63), uint8(63))
	f.Fuzz(func(t *testing.T, seed int64, shards, adds, dels uint8) {
		n := int(shards)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		p := mustNew(t, n, nil)
		b := graph.Batch{
			Add: randomEdges(rng, 128, int(adds)),
			Del: randomEdges(rng, 128, int(dels)),
		}
		checkSplit(t, p, b)
	})
}

// SplitGraph partitions the edge multiset exactly; UnionGraph inverts
// it.
func TestSplitGraphUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := graph.Build(64, randomEdges(rng, 64, 300))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		p := mustNew(t, shards, nil)
		parts, err := p.SplitGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for s, sg := range parts {
			if sg.NumVertices() != g.NumVertices() {
				t.Fatalf("shard %d graph has %d vertices, want %d", s, sg.NumVertices(), g.NumVertices())
			}
			for _, e := range sg.Edges(nil) {
				if p.EdgeOwner(e) != s {
					t.Fatalf("shard %d graph holds foreign edge %v", s, e)
				}
			}
			total += sg.NumEdges()
		}
		if total != g.NumEdges() {
			t.Fatalf("shards=%d: %d edges across shard graphs, want %d", shards, total, g.NumEdges())
		}
		u, err := UnionGraph(parts)
		if err != nil {
			t.Fatal(err)
		}
		if u.NumVertices() != g.NumVertices() || u.NumEdges() != g.NumEdges() {
			t.Fatalf("union %dv/%de, want %dv/%de", u.NumVertices(), u.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		// Same per-vertex out-edge multisets (Build sorts adjacency, so
		// the edge lists compare directly).
		ge, ue := g.Edges(nil), u.Edges(nil)
		for i := range ge {
			if ge[i] != ue[i] {
				t.Fatalf("shards=%d: union edge %d = %v, want %v", shards, i, ue[i], ge[i])
			}
		}
	}
}

func TestClosed(t *testing.T) {
	p := mustNew(t, 4, map[graph.VertexID]int{0: 1, 1: 1, 2: 3})
	if e, ok := p.Closed([]graph.Edge{{From: 0, To: 1}}); !ok {
		t.Fatalf("same-owner edge reported open: %v", e)
	}
	if e, ok := p.Closed([]graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}); ok {
		t.Fatal("cross-owner edge reported closed")
	} else if e.From != 1 || e.To != 2 {
		t.Fatalf("wrong violating edge %v", e)
	}
}

func TestPoisonOwner(t *testing.T) {
	p := mustNew(t, 4, map[graph.VertexID]int{5: 2})
	bad := graph.Batch{Add: []graph.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 0, To: 5, Weight: math.NaN()},
	}}
	if s := p.PoisonOwner(bad); s != 2 {
		t.Fatalf("PoisonOwner = %d, want owner of first invalid edge's To (2)", s)
	}
	badDel := graph.Batch{Del: []graph.Edge{{From: 0, To: 5, Weight: math.Inf(1)}}}
	if s := p.PoisonOwner(badDel); s != 2 {
		t.Fatalf("PoisonOwner(del) = %d, want 2", s)
	}
	if s := p.PoisonOwner(graph.Batch{}); s != 0 {
		t.Fatalf("PoisonOwner(valid) = %d, want fallback 0", s)
	}
}

func TestOwnedVertices(t *testing.T) {
	p := mustNew(t, 3, nil)
	pools := p.OwnedVertices(300)
	seen := 0
	for s, vs := range pools {
		for i, v := range vs {
			if p.Owner(v) != s {
				t.Fatalf("vertex %d listed under shard %d, owner %d", v, s, p.Owner(v))
			}
			if i > 0 && vs[i-1] >= v {
				t.Fatalf("shard %d pool not ascending at %d", s, i)
			}
		}
		seen += len(vs)
	}
	if seen != 300 {
		t.Fatalf("pools cover %d vertices, want 300", seen)
	}
}
