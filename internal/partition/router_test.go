package partition

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
)

// twoShardFixture builds a 16-vertex graph explicitly partitioned so
// vertices 0..7 belong to shard 0 and 8..15 to shard 1, with a few
// in-shard base edges on each side.
func twoShardFixture(t *testing.T) (*Partitioner, []*core.Engine[float64, float64], *graph.Graph) {
	t.Helper()
	assign := make(map[graph.VertexID]int)
	for v := 0; v < 16; v++ {
		if v < 8 {
			assign[graph.VertexID(v)] = 0
		} else {
			assign[graph.VertexID(v)] = 1
		}
	}
	pt := mustNew(t, 2, assign)
	base := []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1},
		{From: 8, To: 9, Weight: 1}, {From: 9, To: 10, Weight: 1}, {From: 10, To: 8, Weight: 1},
	}
	g, err := graph.Build(16, base)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := pt.SplitGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine[float64, float64], 2)
	for s, sg := range parts {
		engines[s], err = core.NewEngine[float64, float64](sg, algorithms.NewPageRank(), core.Options{MaxIterations: 5})
		if err != nil {
			t.Fatal(err)
		}
	}
	return pt, engines, g
}

// gateApplier blocks every apply until gate closes, signalling entry.
type gateApplier struct {
	inner   serve.Applier
	entered chan struct{}
	gate    chan struct{}
}

func newGateApplier(inner serve.Applier) *gateApplier {
	return &gateApplier{inner: inner, entered: make(chan struct{}, 16), gate: make(chan struct{})}
}

func (g *gateApplier) ApplyBatch(b graph.Batch) (core.Stats, error) {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.inner.ApplyBatch(b)
}

// failApplier fails every apply terminally.
type failApplier struct{ err error }

func (f *failApplier) ApplyBatch(graph.Batch) (core.Stats, error) { return core.Stats{}, f.err }

func addOn(from, to graph.VertexID) graph.Batch {
	return graph.Batch{Add: []graph.Edge{{From: from, To: to, Weight: 1}}}
}

// A multi-shard batch must not surface in the merged view (and its
// ticket must not resolve) until every owning shard has applied its
// sub-batch.
func TestCrossShardBarrierHoldsPublication(t *testing.T) {
	pt, engines, union := twoShardFixture(t)
	gated := newGateApplier(engines[0])
	r, err := NewRouter(engines, []serve.Applier{gated, engines[1]}, pt, union, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := r.Gen0()

	// Edge 3→4 is owned by shard 0 (gated), 11→12 by shard 1.
	tk, err := r.Submit(nil, graph.Batch{Add: []graph.Edge{
		{From: 3, To: 4, Weight: 1}, {From: 11, To: 12, Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 is stuck inside its apply; give shard 1 ample time to
	// apply its half, then confirm nothing published and the ticket is
	// still pending.
	select {
	case <-gated.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("shard 0 never entered apply")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	if _, err := tk.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		cancel()
		t.Fatalf("ticket resolved while one shard had not applied (err=%v)", err)
	}
	cancel()
	if g := r.View().Snapshot().Generation; g != gen0 {
		t.Fatalf("merged generation advanced to %d behind the barrier (gen0=%d)", g, gen0)
	}

	close(gated.gate)
	ap, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap := r.View().Snapshot()
	if snap.Generation != gen0+ap.Seq {
		t.Fatalf("generation %d, ticket seq %d over gen0 %d", snap.Generation, ap.Seq, gen0)
	}
	if want := union.NumEdges() + 2; snap.Graph.NumEdges() != want {
		t.Fatalf("merged graph has %d edges, want %d", snap.Graph.NumEdges(), want)
	}
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}
}

// A batch owned entirely by one shard publishes without waiting for an
// unrelated shard that is blocked mid-apply.
func TestSingleShardBatchSkipsBarrier(t *testing.T) {
	pt, engines, union := twoShardFixture(t)
	gated := newGateApplier(engines[0])
	r, err := NewRouter(engines, []serve.Applier{gated, engines[1]}, pt, union, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := r.Gen0()

	// Occupy shard 0.
	slow, err := r.Submit(nil, addOn(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gated.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("shard 0 never entered apply")
	}

	// Shard 1 proceeds independently.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tk, err := r.Submit(ctx, addOn(11, 12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(ctx); err != nil {
		t.Fatalf("single-shard batch blocked behind a foreign shard: %v", err)
	}
	if g := r.View().Snapshot().Generation; g <= gen0 {
		t.Fatalf("no merged publication for the independent shard (gen %d)", g)
	}

	close(gated.gate)
	if _, err := slow.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}
}

// A poison batch is quarantined on exactly the shard owning its first
// invalid edge; siblings keep serving.
func TestPoisonConfinedToOwningShard(t *testing.T) {
	pt, engines, union := twoShardFixture(t)
	r, err := NewRouter(engines, nil, pt, union, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := graph.Batch{Add: []graph.Edge{{From: 11, To: 12, Weight: math.NaN()}}}
	tk, err := r.Submit(nil, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, graph.ErrInvalidBatch) {
		t.Fatalf("poison ticket error = %v, want ErrInvalidBatch", err)
	}
	if got := r.Loop(1).QuarantinedTotal(); got != 1 {
		t.Fatalf("owning shard quarantined %d, want 1", got)
	}
	if got := r.Loop(0).QuarantinedTotal(); got != 0 {
		t.Fatalf("innocent shard quarantined %d, want 0", got)
	}
	if got := r.QuarantinedTotal(); got != 1 {
		t.Fatalf("router quarantine total %d, want 1", got)
	}
	// Both shards still serve.
	for _, b := range []graph.Batch{addOn(3, 4), addOn(11, 12)} {
		tk, err := r.Submit(nil, b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}
}

// The first terminal shard failure is latched: Err names the shard,
// keeps its value across calls, takes precedence over ErrClosed after
// Close, and is what Submit and Close report.
func TestErrLatchesFailureOverClosed(t *testing.T) {
	pt, engines, union := twoShardFixture(t)
	boom := errors.New("disk on fire")
	r, err := NewRouter(engines, []serve.Applier{engines[0], &failApplier{err: boom}}, pt, union, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.Submit(nil, addOn(11, 12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("ticket error = %v, want the injected failure", err)
	}
	first := r.Err()
	if first == nil || !errors.Is(first, boom) {
		t.Fatalf("Err() = %v, want the injected failure", first)
	}
	if got := first.Error(); !contains(got, "shard 1") {
		t.Fatalf("Err() = %q does not name the failing shard", got)
	}
	cerr := r.Close(nil)
	if !errors.Is(cerr, boom) {
		t.Fatalf("Close() = %v, want the latched failure over ErrClosed", cerr)
	}
	if again := r.Err(); again.Error() != first.Error() {
		t.Fatalf("Err() changed after Close: %q then %q", first, again)
	}
	if _, err := r.Submit(nil, addOn(3, 4)); !errors.Is(err, boom) || errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Submit after failure+close = %v, want latched failure, not ErrClosed", err)
	}
	// The healthy shard is unaffected below the router: its loop closed
	// cleanly with no terminal error.
	if err := r.Loop(0).Err(); err != nil {
		t.Fatalf("healthy shard reports %v", err)
	}
}

// Clean close: ErrClosed only, and only after Close.
func TestCloseWithoutFailure(t *testing.T) {
	pt, engines, union := twoShardFixture(t)
	r, err := NewRouter(engines, nil, pt, union, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.Submit(nil, graph.Batch{Add: []graph.Edge{
		{From: 3, To: 4, Weight: 1}, {From: 11, To: 12, Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(nil); err != nil {
		t.Fatalf("clean Close = %v", err)
	}
	// Close drained the queue: the in-flight ticket resolved.
	ap, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("ticket after drain: %v", err)
	}
	if ap.Seq == 0 {
		t.Fatal("drained batch never got a merged publication")
	}
	if _, err := r.Submit(nil, addOn(3, 4)); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Submit after clean close = %v, want ErrClosed", err)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err after clean close = %v, want nil", err)
	}
}

// Trace IDs carry their shard in the top bits.
func TestTraceIDsCarryShard(t *testing.T) {
	pt, engines, union := twoShardFixture(t)
	r, err := NewRouter(engines, nil, pt, union, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(nil)
	tk0, err := r.Submit(nil, addOn(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	tk1, err := r.Submit(nil, addOn(11, 12))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := TraceShard(tk0.Trace()); !ok || s != 0 {
		t.Fatalf("TraceShard(%#x) = %d,%v want 0,true", tk0.Trace(), s, ok)
	}
	if s, ok := TraceShard(tk1.Trace()); !ok || s != 1 {
		t.Fatalf("TraceShard(%#x) = %d,%v want 1,true", tk1.Trace(), s, ok)
	}
	if _, ok := TraceShard(42); ok {
		t.Fatal("untagged ID decoded to a shard")
	}
	if _, err := tk0.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := tk1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
