// Package partition implements sharded serving: a deterministic vertex
// partitioner, a batch splitter that routes each edge to its owning
// shard, and a Router running one serve.Loop per shard behind a
// cross-shard generation barrier with merged snapshot publication.
//
// Ownership is by destination vertex: edge u→v belongs to Owner(v), so
// all of a vertex's in-edges — the inputs to its pull-style aggregation
// — land in one shard, and that shard's engine computes the vertex's
// value. A stream is partition-closed when every edge's endpoints share
// an owner (components never straddle shards); over such streams the
// merged view is exactly equal to a single engine applying the same
// stream (each shard sees the full vertex numbering and every edge of
// every component it owns). Streams with cross-partition edges still
// serve and converge per shard, but refinement is partition-local —
// the trade-off the Layph line of work accepts for skewed graphs.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Partitioner deterministically maps vertices (and thus edges) to
// shards: an explicit assignment table consulted first, then a
// splitmix64 hash of the vertex ID. The mapping is pure — same inputs,
// same owner, on every process and every call — which is what makes
// sharded WAL recovery and the differential equivalence harness
// possible.
type Partitioner struct {
	shards int
	assign map[graph.VertexID]int
}

// New builds a partitioner over n shards (n >= 1) with an optional
// explicit assignment map (vertex → shard). Explicit entries override
// the hash; their shard indices must be in [0, n).
func New(n int, assign map[graph.VertexID]int) (*Partitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("partition: need at least 1 shard, got %d", n)
	}
	p := &Partitioner{shards: n}
	if len(assign) > 0 {
		p.assign = make(map[graph.VertexID]int, len(assign))
		for v, s := range assign {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("partition: vertex %d assigned to shard %d, want [0,%d)", v, s, n)
			}
			p.assign[v] = s
		}
	}
	return p, nil
}

// Shards returns the shard count.
func (p *Partitioner) Shards() int { return p.shards }

// Owner returns the shard owning vertex v: the explicit assignment if
// present, else a splitmix64 hash of the ID mod the shard count.
func (p *Partitioner) Owner(v graph.VertexID) int {
	if s, ok := p.assign[v]; ok {
		return s
	}
	if p.shards == 1 {
		return 0
	}
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(p.shards))
}

// EdgeOwner returns the shard owning edge e — the owner of its
// destination, so all in-edges of a vertex live in one shard.
func (p *Partitioner) EdgeOwner(e graph.Edge) int { return p.Owner(e.To) }

// Split routes each edge of b to its owning shard, preserving the
// per-shard relative order of both Add and Del. The returned slice has
// exactly Shards() entries; shards b touches no edge of get zero-value
// batches. Recombining the sub-batches in owner order reconstructs a
// permutation of b that is order-preserving within every shard — the
// property the sharded apply relies on for del-matching determinism.
// The sub-batch slices are freshly allocated; b is not retained.
func (p *Partitioner) Split(b graph.Batch) []graph.Batch {
	out := make([]graph.Batch, p.shards)
	if p.shards == 1 {
		out[0] = graph.Batch{
			Add: append([]graph.Edge(nil), b.Add...),
			Del: append([]graph.Edge(nil), b.Del...),
		}
		return out
	}
	for _, e := range b.Add {
		s := p.EdgeOwner(e)
		out[s].Add = append(out[s].Add, e)
	}
	for _, e := range b.Del {
		s := p.EdgeOwner(e)
		out[s].Del = append(out[s].Del, e)
	}
	return out
}

// SplitGraph splits g into per-shard graphs over the same vertex set:
// shard s's graph holds exactly the edges it owns, so the union of the
// shard graphs is g. Every shard graph has g.NumVertices() vertices —
// per-shard engines index the full numbering and the merged view reads
// each vertex from its owner.
func (p *Partitioner) SplitGraph(g *graph.Graph) ([]*graph.Graph, error) {
	edges := g.Edges(nil)
	parts := make([][]graph.Edge, p.shards)
	for _, e := range edges {
		s := p.EdgeOwner(e)
		parts[s] = append(parts[s], e)
	}
	out := make([]*graph.Graph, p.shards)
	for s, es := range parts {
		sg, err := graph.Build(g.NumVertices(), es)
		if err != nil {
			return nil, fmt.Errorf("partition: shard %d graph: %w", s, err)
		}
		out[s] = sg
	}
	return out, nil
}

// UnionGraph rebuilds the merged graph from per-shard graphs (inverse
// of SplitGraph, used by sharded durable recovery): the vertex count is
// the maximum across shards and the edge multiset is the concatenation.
func UnionGraph(gs []*graph.Graph) (*graph.Graph, error) {
	if len(gs) == 0 {
		return nil, fmt.Errorf("partition: union of zero graphs")
	}
	n, total := 0, int64(0)
	for _, g := range gs {
		if g.NumVertices() > n {
			n = g.NumVertices()
		}
		total += g.NumEdges()
	}
	edges := make([]graph.Edge, 0, total)
	for _, g := range gs {
		edges = g.Edges(edges)
	}
	return graph.Build(n, edges)
}

// Closed reports whether every edge in the list is partition-closed
// (both endpoints share an owner) — the condition under which sharded
// refinement is exactly equal to single-engine refinement. The first
// violating edge is returned for diagnostics.
func (p *Partitioner) Closed(edges []graph.Edge) (graph.Edge, bool) {
	for _, e := range edges {
		if p.Owner(e.From) != p.Owner(e.To) {
			return e, false
		}
	}
	return graph.Edge{}, true
}

// PoisonOwner returns the shard a malformed batch is routed to whole:
// the owner of the first invalid edge's destination. Routing the batch
// intact to one shard lets that shard's quarantine reject it exactly as
// a single loop would, confining the poison to one partition.
func (p *Partitioner) PoisonOwner(b graph.Batch) int {
	for _, e := range b.Add {
		if graph.ValidateEdge(e) != nil {
			return p.Owner(e.To)
		}
	}
	for _, e := range b.Del {
		if graph.ValidateEdge(e) != nil {
			return p.Owner(e.To)
		}
	}
	return 0
}

// OwnedVertices enumerates the vertices in [0, n) owned by each shard,
// ascending — handy for building partition-closed test streams.
func (p *Partitioner) OwnedVertices(n int) [][]graph.VertexID {
	out := make([][]graph.VertexID, p.shards)
	for v := 0; v < n; v++ {
		s := p.Owner(graph.VertexID(v))
		out[s] = append(out[s], graph.VertexID(v))
	}
	for _, vs := range out {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	return out
}
