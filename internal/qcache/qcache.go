// Package qcache memoizes derived reads — top-k rankings, per-vertex
// lookups, value and degree histograms — over immutable result
// snapshots, keyed on the snapshot generation.
//
// The design leans entirely on the engine's BSP publication contract: a
// ResultSnapshot never changes after it is published, so a derived
// result computed against generation g is valid forever. The cache
// therefore has zero invalidation logic — entries are only ever dropped
// for capacity (least-recently-used within a byte budget) or because
// their generation fell out of the engine's history ring (DropBelow,
// wired to retention by the serving facade). A hit and a recompute are
// observably identical by construction.
//
// One cache serves one engine's snapshots: keys are (generation, query,
// argument), so mixing snapshots from different engines in one cache
// would alias. All methods are safe for concurrent use.
package qcache

import (
	"cmp"
	"container/list"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Key identifies one memoized derived read.
type Key struct {
	// Gen is the snapshot generation the result was derived from.
	Gen uint64
	// Kind names the derived query ("topk", "value", "valuehist", ...).
	Kind string
	// Arg is the query's scalar argument (k, vertex id, bin count).
	Arg uint64
}

// entry is one cached result with its approximate heap cost.
type entry struct {
	key   Key
	value any
	bytes int64
}

// Cache is a budgeted, generation-keyed memo table. Construct with New;
// a nil *Cache is valid and simply computes every query uncached.
type Cache struct {
	budget int64
	met    metrics

	mu      sync.Mutex
	bytes   int64
	lru     *list.List // front = most recently used; values are *entry
	entries map[Key]*list.Element
}

// metrics holds the cache's handles; zero value = instrumentation off.
type metrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
	bytes     *obs.Gauge
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		hits: r.Counter("graphbolt_qcache_hits_total",
			"Derived-query reads served from the per-generation cache."),
		misses: r.Counter("graphbolt_qcache_misses_total",
			"Derived-query reads that had to compute their result."),
		evictions: r.Counter("graphbolt_qcache_evictions_total",
			"Cached results dropped for capacity or generation retirement."),
		entries: r.Gauge("graphbolt_qcache_entries",
			"Derived results currently cached."),
		bytes: r.Gauge("graphbolt_qcache_bytes",
			"Approximate heap bytes held by cached derived results."),
	}
}

// RegisterMetrics pre-creates the cache metric set in r so the
// exposition endpoint shows every series (at zero) before the first
// cache is constructed. Idempotent.
func RegisterMetrics(r *obs.Registry) {
	newMetrics(r)
}

// New creates a cache bounded to roughly budgetBytes of derived
// results. Metrics, when reg is non-nil, are registered there. A
// non-positive budget returns nil — the uncached-but-valid Cache.
func New(budgetBytes int64, reg *obs.Registry) *Cache {
	if budgetBytes <= 0 {
		return nil
	}
	return &Cache{
		budget:  budgetBytes,
		met:     newMetrics(reg),
		lru:     list.New(),
		entries: make(map[Key]*list.Element),
	}
}

// Do returns the memoized result for key, calling compute on a miss.
// compute returns the result and its approximate heap cost in bytes.
// Results larger than the whole budget are returned but not cached. On
// a nil cache Do just computes. Concurrent misses on the same key may
// compute twice; the first insert wins, keeping reads of one key
// referentially consistent.
func (c *Cache) Do(key Key, compute func() (any, int64)) any {
	if c == nil {
		v, _ := compute()
		return v
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.met.hits.Inc()
		return el.Value.(*entry).value
	}
	c.mu.Unlock()
	c.met.misses.Inc()

	v, cost := compute()
	if cost > c.budget {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Lost the race: return the first insert so every reader of this
		// key sees the same result value.
		c.lru.MoveToFront(el)
		return el.Value.(*entry).value
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, value: v, bytes: cost})
	c.bytes += cost
	for c.bytes > c.budget {
		c.evictLocked(c.lru.Back())
	}
	c.publishLocked()
	return v
}

// evictLocked removes one entry. c.mu must be held.
func (c *Cache) evictLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.met.evictions.Inc()
}

// publishLocked refreshes the size gauges. c.mu must be held.
func (c *Cache) publishLocked() {
	c.met.entries.Set(float64(len(c.entries)))
	c.met.bytes.Set(float64(c.bytes))
}

// DropBelow evicts every entry derived from a generation older than
// gen. The serving facade calls this as the history ring advances, so
// cache lifetime tracks snapshot retention exactly.
func (c *Cache) DropBelow(gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*entry).key.Gen < gen {
			c.evictLocked(el)
		}
	}
	c.publishLocked()
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the approximate heap bytes held.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// VertexValue pairs a vertex with its value in some snapshot.
type VertexValue[V any] struct {
	Vertex graph.VertexID
	Value  V
}

// TopK returns the k highest-valued vertices of the snapshot, ties
// broken by ascending vertex id, memoized in c (which may be nil).
func TopK[V cmp.Ordered](c *Cache, s *core.ResultSnapshot[V], k int) []VertexValue[V] {
	if s == nil || k <= 0 {
		return nil
	}
	return c.Do(Key{Gen: s.Generation, Kind: "topk", Arg: uint64(k)}, func() (any, int64) {
		pairs := make([]VertexValue[V], len(s.Values))
		for v, x := range s.Values {
			pairs[v] = VertexValue[V]{Vertex: graph.VertexID(v), Value: x}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Value != pairs[j].Value {
				return pairs[i].Value > pairs[j].Value
			}
			return pairs[i].Vertex < pairs[j].Vertex
		})
		if k < len(pairs) {
			pairs = append([]VertexValue[V](nil), pairs[:k]...)
		}
		return pairs, int64(len(pairs))*24 + 48
	}).([]VertexValue[V])
}

// Value returns one vertex's value in the snapshot (false when the
// vertex is outside the snapshot's range), memoized in c.
func Value[V any](c *Cache, s *core.ResultSnapshot[V], v graph.VertexID) (V, bool) {
	var zero V
	if s == nil || int(v) >= len(s.Values) {
		return zero, false
	}
	return c.Do(Key{Gen: s.Generation, Kind: "value", Arg: uint64(v)}, func() (any, int64) {
		return s.Values[v], 64
	}).(V), true
}

// Histogram is a fixed-bin distribution of a snapshot-derived quantity.
type Histogram struct {
	// Min and Max bound the binned range; bin i covers
	// [Min + i*w, Min + (i+1)*w) with w = (Max-Min)/len(Counts).
	Min, Max float64
	// Counts holds the per-bin tallies.
	Counts []int64
	// NonFinite counts values excluded from binning (NaN, ±Inf — e.g.
	// unreachable SSSP vertices).
	NonFinite int64
}

// ValueHistogram bins the snapshot's scalar values into the given
// number of equal-width bins between the observed finite min and max,
// memoized in c.
func ValueHistogram(c *Cache, s *core.ResultSnapshot[float64], bins int) *Histogram {
	if s == nil || bins <= 0 {
		return nil
	}
	return c.Do(Key{Gen: s.Generation, Kind: "valuehist", Arg: uint64(bins)}, func() (any, int64) {
		h := &Histogram{Min: math.Inf(1), Max: math.Inf(-1), Counts: make([]int64, bins)}
		for _, x := range s.Values {
			if !isFinite(x) {
				continue
			}
			h.Min = math.Min(h.Min, x)
			h.Max = math.Max(h.Max, x)
		}
		if h.Min > h.Max { // no finite values at all
			h.Min, h.Max = 0, 0
		}
		width := (h.Max - h.Min) / float64(bins)
		for _, x := range s.Values {
			if !isFinite(x) {
				h.NonFinite++
				continue
			}
			i := 0
			if width > 0 {
				i = int((x - h.Min) / width)
				if i >= bins {
					i = bins - 1 // x == Max lands in the last bin
				}
			}
			h.Counts[i]++
		}
		return h, int64(bins)*8 + 64
	}).(*Histogram)
}

// DegreeHistogram bins the snapshot graph's out-degrees into log2
// buckets: Counts[0] counts degree-0 vertices and Counts[i] degrees in
// [2^(i-1), 2^i). Min/Max report the observed degree extremes. Memoized
// in c under the snapshot's generation.
func DegreeHistogram[V any](c *Cache, s *core.ResultSnapshot[V]) *Histogram {
	if s == nil {
		return nil
	}
	return c.Do(Key{Gen: s.Generation, Kind: "deghist"}, func() (any, int64) {
		h := &Histogram{Min: math.Inf(1), Max: math.Inf(-1)}
		g := s.Graph
		for v := 0; v < g.NumVertices(); v++ {
			d := g.OutDegree(graph.VertexID(v))
			h.Min = math.Min(h.Min, float64(d))
			h.Max = math.Max(h.Max, float64(d))
			bin := 0
			for 1<<bin < d+1 {
				bin++
			}
			for len(h.Counts) <= bin {
				h.Counts = append(h.Counts, 0)
			}
			h.Counts[bin]++
		}
		if h.Min > h.Max {
			h.Min, h.Max = 0, 0
		}
		return h, int64(len(h.Counts))*8 + 64
	}).(*Histogram)
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
