package qcache_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/qcache"
)

// buildSnapshots runs PageRank over a few random batches with retention
// on and returns every retained snapshot, oldest first.
func buildSnapshots(t *testing.T, seed uint64, batches int) []*core.ResultSnapshot[float64] {
	t.Helper()
	r := gen.NewRNG(seed)
	n := 8 + r.Intn(24)
	edges := make([]graph.Edge, 3*n)
	for i := range edges {
		edges[i] = graph.Edge{
			From:   graph.VertexID(r.Intn(n)),
			To:     graph.VertexID(r.Intn(n)),
			Weight: 1,
		}
	}
	eng, err := core.NewEngine[float64, float64](graph.MustBuild(n, edges),
		algorithms.NewPageRank(), core.Options{Retain: batches + 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < batches; i++ {
		b := graph.Batch{Add: []graph.Edge{{
			From:   graph.VertexID(r.Intn(n)),
			To:     graph.VertexID(r.Intn(n)),
			Weight: 1,
		}}}
		if _, err := eng.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	oldest, newest := eng.RetainedGenerations()
	var snaps []*core.ResultSnapshot[float64]
	for g := oldest; g <= newest; g++ {
		s, err := eng.SnapshotAt(g)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	return snaps
}

// TestQuickCachedEqualsUncached is the hit-path correctness property:
// for every derived query, the cached answer — first read (fills) and
// second read (hits) — must deep-equal the uncached computation.
func TestQuickCachedEqualsUncached(t *testing.T) {
	check := func(seed uint64, k8 uint8, v8 uint8, bins8 uint8) bool {
		snaps := buildSnapshots(t, seed, 3)
		c := qcache.New(1<<20, nil)
		k := 1 + int(k8)%16
		bins := 1 + int(bins8)%12
		for _, s := range snaps {
			vid := graph.VertexID(int(v8) % len(s.Values))
			for pass := 0; pass < 2; pass++ { // pass 0 fills, pass 1 hits
				if got, want := qcache.TopK(c, s, k), qcache.TopK(nil, s, k); !reflect.DeepEqual(got, want) {
					t.Logf("seed %d gen %d pass %d: TopK(%d) cached %v uncached %v", seed, s.Generation, pass, k, got, want)
					return false
				}
				gotV, gotOK := qcache.Value(c, s, vid)
				wantV, wantOK := qcache.Value(nil, s, vid)
				if gotV != wantV || gotOK != wantOK {
					t.Logf("seed %d gen %d pass %d: Value(%d) cached %v uncached %v", seed, s.Generation, pass, vid, gotV, wantV)
					return false
				}
				if got, want := qcache.ValueHistogram(c, s, bins), qcache.ValueHistogram(nil, s, bins); !reflect.DeepEqual(got, want) {
					t.Logf("seed %d gen %d pass %d: ValueHistogram(%d) cached %+v uncached %+v", seed, s.Generation, pass, bins, got, want)
					return false
				}
				if got, want := qcache.DegreeHistogram(c, s), qcache.DegreeHistogram(nil, s); !reflect.DeepEqual(got, want) {
					t.Logf("seed %d gen %d pass %d: DegreeHistogram cached %+v uncached %+v", seed, s.Generation, pass, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHitMissMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	snaps := buildSnapshots(t, 7, 2)
	c := qcache.New(1<<20, reg)
	s := snaps[len(snaps)-1]
	qcache.TopK(c, s, 5) // miss + fill
	qcache.TopK(c, s, 5) // hit
	qcache.TopK(c, s, 6) // different arg: miss
	m := reg.Snapshot()
	if got := m.Counters["graphbolt_qcache_hits_total"]; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := m.Counters["graphbolt_qcache_misses_total"]; got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
	if got := m.Gauges["graphbolt_qcache_entries"]; got != 2 {
		t.Fatalf("entries gauge = %v, want 2", got)
	}
	if m.Gauges["graphbolt_qcache_bytes"] <= 0 {
		t.Fatalf("bytes gauge = %v, want > 0", m.Gauges["graphbolt_qcache_bytes"])
	}
}

func TestBudgetEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := qcache.New(100, reg)
	for i := 0; i < 10; i++ {
		c.Do(qcache.Key{Gen: 1, Kind: "t", Arg: uint64(i)}, func() (any, int64) { return i, 40 })
	}
	if got := c.Bytes(); got > 100 {
		t.Fatalf("cache holds %d bytes, budget 100", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2 (2×40 ≤ 100 < 3×40)", got)
	}
	if got := reg.Snapshot().Counters["graphbolt_qcache_evictions_total"]; got != 8 {
		t.Fatalf("evictions = %d, want 8", got)
	}
	// A result larger than the whole budget is returned but not cached.
	v := c.Do(qcache.Key{Gen: 1, Kind: "big"}, func() (any, int64) { return "x", 1000 })
	if v != "x" {
		t.Fatalf("oversized compute returned %v", v)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("oversized result was cached (len %d)", got)
	}
}

func TestLRUKeepsRecentlyUsed(t *testing.T) {
	c := qcache.New(100, nil)
	c.Do(qcache.Key{Gen: 1, Kind: "t", Arg: 0}, func() (any, int64) { return 0, 40 })
	c.Do(qcache.Key{Gen: 1, Kind: "t", Arg: 1}, func() (any, int64) { return 1, 40 })
	// Touch Arg 0 so Arg 1 is the LRU victim.
	c.Do(qcache.Key{Gen: 1, Kind: "t", Arg: 0}, func() (any, int64) {
		t.Fatal("expected a hit")
		return nil, 0
	})
	c.Do(qcache.Key{Gen: 1, Kind: "t", Arg: 2}, func() (any, int64) { return 2, 40 })
	recomputed := false
	c.Do(qcache.Key{Gen: 1, Kind: "t", Arg: 0}, func() (any, int64) { recomputed = true; return 0, 40 })
	if recomputed {
		t.Fatal("recently used entry was evicted before the LRU one")
	}
	c.Do(qcache.Key{Gen: 1, Kind: "t", Arg: 1}, func() (any, int64) { recomputed = true; return 1, 40 })
	if !recomputed {
		t.Fatal("LRU entry survived past the budget")
	}
}

func TestDropBelow(t *testing.T) {
	c := qcache.New(1<<20, nil)
	for g := uint64(1); g <= 5; g++ {
		c.Do(qcache.Key{Gen: g, Kind: "t"}, func() (any, int64) { return g, 16 })
	}
	c.DropBelow(4)
	if got := c.Len(); got != 2 {
		t.Fatalf("after DropBelow(4): %d entries, want 2 (gens 4, 5)", got)
	}
	for g := uint64(1); g <= 5; g++ {
		recomputed := false
		c.Do(qcache.Key{Gen: g, Kind: "t"}, func() (any, int64) { recomputed = true; return g, 16 })
		if kept := !recomputed; kept != (g >= 4) {
			t.Fatalf("gen %d cached = %v after DropBelow(4)", g, kept)
		}
	}
}

func TestNilCacheComputes(t *testing.T) {
	var c *qcache.Cache
	v := c.Do(qcache.Key{Gen: 1, Kind: "t"}, func() (any, int64) { return 42, 8 })
	if v != 42 {
		t.Fatalf("nil cache Do = %v, want 42", v)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache reports non-zero size")
	}
	c.DropBelow(7) // must not panic
	if got := qcache.New(0, nil); got != nil {
		t.Fatal("New(0) should return the nil (uncached) cache")
	}
}

// TestConcurrentReaders hammers one cache from many goroutines mixing
// hits, fills and DropBelow; run under -race this checks the locking,
// and every read must still equal the uncached computation.
func TestConcurrentReaders(t *testing.T) {
	snaps := buildSnapshots(t, 42, 6)
	c := qcache.New(1<<16, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := snaps[(w+i)%len(snaps)]
				k := 1 + (w+i)%7
				if got, want := qcache.TopK(c, s, k), qcache.TopK(nil, s, k); !reflect.DeepEqual(got, want) {
					select {
					case errs <- fmt.Errorf("gen %d TopK(%d): cached %v uncached %v", s.Generation, k, got, want):
					default:
					}
					return
				}
				if i%50 == 0 {
					c.DropBelow(snaps[0].Generation + uint64(i%len(snaps)))
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
