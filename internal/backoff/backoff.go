// Package backoff computes retry delays for self-healing supervisors:
// capped exponential growth with multiplicative jitter. The serve
// layer's degraded-mode recovery uses it to pace journal repair
// attempts — quick first retries for transient hiccups (a single failed
// fsync), widening toward the cap while a fault persists, with jitter
// so a fleet of recovering instances does not hammer shared storage in
// lockstep.
package backoff

import (
	"math/rand"
	"time"
)

// Defaults used for zero-valued Policy fields. The base is small
// because the common fault is transient (one failed fsync, a full page
// cache); the cap keeps a persistent fault from pushing retries so far
// apart that recovery looks like an outage.
const (
	DefaultBase   = 20 * time.Millisecond
	DefaultMax    = 5 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.2
)

// Policy computes capped exponential backoff delays. The zero value is
// usable and applies the package defaults.
type Policy struct {
	// Base is the delay for attempt 0. Default DefaultBase.
	Base time.Duration
	// Max caps the grown (pre-jitter) delay. Default DefaultMax.
	Max time.Duration
	// Factor is the per-attempt growth multiplier. Default DefaultFactor.
	Factor float64
	// Jitter is the fraction of the delay randomized: the result is
	// drawn uniformly from [d·(1-Jitter), d·(1+Jitter)], clamped to Max.
	// 0 applies DefaultJitter; negative disables jitter entirely.
	Jitter float64
	// Source yields uniform values in [0,1) for jitter. Nil uses the
	// shared math/rand source; tests inject a deterministic one.
	Source func() float64
}

// Sleep blocks for d or until done is closed, whichever comes first,
// reporting whether the full delay elapsed (false means interrupted).
// It is the supervisor-side companion to Delay: recovery loops sleep
// through it so a Close can interrupt an arbitrarily long backoff
// promptly instead of waiting the delay out. A non-positive d returns
// true immediately without consulting done.
func Sleep(d time.Duration, done <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// Delay returns the delay before retry number attempt (0-based).
// Negative attempts are treated as 0.
func (p Policy) Delay(attempt int) time.Duration {
	base, max, factor := p.Base, p.Max, p.Factor
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	if factor < 1 {
		factor = DefaultFactor
	}
	d := float64(base)
	for i := 0; i < attempt && d < float64(max); i++ {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = DefaultJitter
	}
	if jitter > 0 {
		src := p.Source
		if src == nil {
			src = rand.Float64
		}
		d *= 1 + jitter*(2*src()-1)
	}
	if d > float64(max) {
		d = float64(max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
