package backoff

import (
	"testing"
	"time"
)

// fixed returns a Source pinned at u, making jitter deterministic:
// u=0.5 is exactly no jitter, u=0 the low edge, u→1 the high edge.
func fixed(u float64) func() float64 { return func() float64 { return u } }

func TestDelayGrowsExponentiallyToCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Source: fixed(0.5)}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Delay(i); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	lo := Policy{Base: p.Base, Max: p.Max, Jitter: p.Jitter, Source: fixed(0)}
	hi := Policy{Base: p.Base, Max: p.Max, Jitter: p.Jitter, Source: fixed(0.999999)}
	if got := lo.Delay(0); got != 50*time.Millisecond {
		t.Fatalf("low-edge Delay(0) = %v, want 50ms", got)
	}
	if got := hi.Delay(0); got < 149*time.Millisecond || got > 150*time.Millisecond {
		t.Fatalf("high-edge Delay(0) = %v, want ~150ms", got)
	}
	// Random-source delays stay inside [d·(1-J), d·(1+J)].
	for i := 0; i < 200; i++ {
		got := p.Delay(0)
		if got < 50*time.Millisecond || got > 150*time.Millisecond {
			t.Fatalf("jittered Delay(0) = %v outside [50ms, 150ms]", got)
		}
	}
}

func TestDelayJitterNeverExceedsMax(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Second, Jitter: 0.5, Source: fixed(0.999999)}
	if got := p.Delay(10); got > time.Second {
		t.Fatalf("Delay(10) = %v exceeds Max", got)
	}
}

func TestZeroValuePolicyUsesDefaults(t *testing.T) {
	var p Policy
	d0 := Policy{Source: fixed(0.5)}.Delay(0)
	if d0 != DefaultBase {
		t.Fatalf("zero-policy Delay(0) = %v, want DefaultBase %v", d0, DefaultBase)
	}
	if got := (Policy{Source: fixed(0.5)}).Delay(1000); got != DefaultMax {
		t.Fatalf("zero-policy Delay(1000) = %v, want DefaultMax %v", got, DefaultMax)
	}
	// The shared-source path must not panic and must stay in bounds.
	if got := p.Delay(3); got <= 0 || got > DefaultMax {
		t.Fatalf("Delay(3) = %v out of (0, DefaultMax]", got)
	}
}

func TestNegativeJitterDisables(t *testing.T) {
	p := Policy{Base: 30 * time.Millisecond, Jitter: -1, Source: fixed(0.999)}
	if got := p.Delay(0); got != 30*time.Millisecond {
		t.Fatalf("Delay(0) with Jitter=-1 = %v, want exactly 30ms", got)
	}
}

func TestNegativeAttemptTreatedAsZero(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Jitter: -1}
	if got := p.Delay(-5); got != 10*time.Millisecond {
		t.Fatalf("Delay(-5) = %v, want Base", got)
	}
}
