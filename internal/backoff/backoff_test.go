package backoff

import (
	"math/rand"
	"testing"
	"time"
)

// fixed returns a Source pinned at u, making jitter deterministic:
// u=0.5 is exactly no jitter, u=0 the low edge, u→1 the high edge.
func fixed(u float64) func() float64 { return func() float64 { return u } }

func TestDelayGrowsExponentiallyToCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Source: fixed(0.5)}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Delay(i); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	lo := Policy{Base: p.Base, Max: p.Max, Jitter: p.Jitter, Source: fixed(0)}
	hi := Policy{Base: p.Base, Max: p.Max, Jitter: p.Jitter, Source: fixed(0.999999)}
	if got := lo.Delay(0); got != 50*time.Millisecond {
		t.Fatalf("low-edge Delay(0) = %v, want 50ms", got)
	}
	if got := hi.Delay(0); got < 149*time.Millisecond || got > 150*time.Millisecond {
		t.Fatalf("high-edge Delay(0) = %v, want ~150ms", got)
	}
	// Random-source delays stay inside [d·(1-J), d·(1+J)].
	for i := 0; i < 200; i++ {
		got := p.Delay(0)
		if got < 50*time.Millisecond || got > 150*time.Millisecond {
			t.Fatalf("jittered Delay(0) = %v outside [50ms, 150ms]", got)
		}
	}
}

func TestDelayJitterNeverExceedsMax(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Second, Jitter: 0.5, Source: fixed(0.999999)}
	if got := p.Delay(10); got > time.Second {
		t.Fatalf("Delay(10) = %v exceeds Max", got)
	}
}

func TestZeroValuePolicyUsesDefaults(t *testing.T) {
	var p Policy
	d0 := Policy{Source: fixed(0.5)}.Delay(0)
	if d0 != DefaultBase {
		t.Fatalf("zero-policy Delay(0) = %v, want DefaultBase %v", d0, DefaultBase)
	}
	if got := (Policy{Source: fixed(0.5)}).Delay(1000); got != DefaultMax {
		t.Fatalf("zero-policy Delay(1000) = %v, want DefaultMax %v", got, DefaultMax)
	}
	// The shared-source path must not panic and must stay in bounds.
	if got := p.Delay(3); got <= 0 || got > DefaultMax {
		t.Fatalf("Delay(3) = %v out of (0, DefaultMax]", got)
	}
}

func TestNegativeJitterDisables(t *testing.T) {
	p := Policy{Base: 30 * time.Millisecond, Jitter: -1, Source: fixed(0.999)}
	if got := p.Delay(0); got != 30*time.Millisecond {
		t.Fatalf("Delay(0) with Jitter=-1 = %v, want exactly 30ms", got)
	}
}

func TestNegativeAttemptTreatedAsZero(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Jitter: -1}
	if got := p.Delay(-5); got != 10*time.Millisecond {
		t.Fatalf("Delay(-5) = %v, want Base", got)
	}
}

// TestDelayProperties drives randomized policies through the invariants
// the serve layer's heal path leans on:
//
//   - jitter never pushes a delay past the cap (Max is a hard bound);
//   - delays are monotonically bounded: with jitter disabled, Delay is
//     non-decreasing in the attempt number and saturates at Max;
//   - delays are never negative.
func TestDelayProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		p := Policy{
			Base:   time.Duration(1 + rng.Int63n(int64(time.Second))),
			Max:    time.Duration(1 + rng.Int63n(int64(10*time.Second))),
			Factor: 1 + 3*rng.Float64(),
			Jitter: rng.Float64(),
			Source: rng.Float64,
		}
		for attempt := 0; attempt < 40; attempt++ {
			d := p.Delay(attempt)
			if d < 0 {
				t.Fatalf("trial %d: Delay(%d) = %v < 0 (policy %+v)", trial, attempt, d, p)
			}
			// The cap binds even when it is below Base: the grown delay
			// clamps down to it, jitter included.
			if d > p.Max {
				t.Fatalf("trial %d: Delay(%d) = %v exceeds Max %v (policy %+v)", trial, attempt, d, p.Max, p)
			}
		}

		// Monotonicity is a property of the pre-jitter growth curve.
		flat := p
		flat.Jitter = -1
		prev := time.Duration(-1)
		for attempt := 0; attempt < 40; attempt++ {
			d := flat.Delay(attempt)
			if d < prev {
				t.Fatalf("trial %d: Delay(%d) = %v < Delay(%d) = %v (policy %+v)",
					trial, attempt, d, attempt-1, prev, flat)
			}
			prev = d
		}
	}
}

// TestSleepElapses: an uninterrupted Sleep waits the full delay out.
func TestSleepElapses(t *testing.T) {
	done := make(chan struct{})
	start := time.Now()
	if !Sleep(10*time.Millisecond, done) {
		t.Fatal("Sleep reported interruption with done never closed")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 10ms", elapsed)
	}
}

// TestSleepInterruptsPromptly: closing done mid-sleep wakes Sleep far
// before the delay elapses — the property the serve loop's Close relies
// on to interrupt an hour-long recovery backoff.
func TestSleepInterruptsPromptly(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(done)
	}()
	start := time.Now()
	if Sleep(time.Hour, done) {
		t.Fatal("interrupted Sleep reported a full elapse")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Sleep took %v to notice the close, want prompt wakeup", elapsed)
	}
}

// TestSleepClosedDone: an already-closed done interrupts immediately,
// and a non-positive delay elapses without consulting done.
func TestSleepClosedDone(t *testing.T) {
	done := make(chan struct{})
	close(done)
	if Sleep(time.Hour, done) {
		t.Fatal("Sleep with closed done reported a full elapse")
	}
	if !Sleep(0, done) || !Sleep(-time.Second, done) {
		t.Fatal("non-positive Sleep must elapse immediately even with done closed")
	}
}
