package flight

import (
	"sync"
	"time"
)

// Phases is the per-phase latency breakdown of one applied batch — the
// per-batch processing-time decomposition of the paper's §6 evaluation,
// measured from our own pipeline. Journal and Apply are disjoint: Apply
// is the engine refinement time with the WAL append subtracted out.
type Phases struct {
	// QueueWait is Submit-enqueue to dequeue for the head batch.
	QueueWait time.Duration `json:"queue_wait"`
	// Coalesce is the time spent folding sibling batches into the head.
	Coalesce time.Duration `json:"coalesce"`
	// Validate is edge validation time at dequeue.
	Validate time.Duration `json:"validate"`
	// Journal is WAL append time (including fsync) charged during the
	// apply call.
	Journal time.Duration `json:"journal"`
	// Apply is engine refinement time, excluding Journal.
	Apply time.Duration `json:"apply"`
	// Publish is from apply return to snapshot publication and ticket
	// resolution.
	Publish time.Duration `json:"publish"`
}

// Total sums the phases; for a completed trace it is within scheduling
// noise of CompletedAt.Sub(EnqueuedAt).
func (p Phases) Total() time.Duration {
	return p.QueueWait + p.Coalesce + p.Validate + p.Journal + p.Apply + p.Publish
}

// BatchTrace is the completed lifecycle record of one apply: the head
// batch's trace plus every sibling trace coalesced into it.
type BatchTrace struct {
	// ID is the head batch's trace ID (assigned at Submit).
	ID uint64 `json:"id"`
	// Traces lists every trace ID covered by this apply, head first; a
	// lone batch has exactly [ID].
	Traces []uint64 `json:"traces"`
	// Seq is the apply sequence number (generation), 0 when the batch
	// never applied (quarantine, terminal failure).
	Seq uint64 `json:"seq,omitempty"`
	// Batches is the number of submitted batches folded into the apply.
	Batches int `json:"batches"`
	// EnqueuedAt is when the head batch entered the queue.
	EnqueuedAt time.Time `json:"enqueued_at"`
	// CompletedAt is when the result was published (or the batch was
	// rejected terminally).
	CompletedAt time.Time `json:"completed_at"`
	// Err is the terminal error string, empty on success.
	Err string `json:"err,omitempty"`
	// Phases is the per-phase latency breakdown.
	Phases Phases `json:"phases"`
}

// E2E is the observed end-to-end latency, enqueue to publication.
func (bt BatchTrace) E2E() time.Duration {
	return bt.CompletedAt.Sub(bt.EnqueuedAt)
}

// Covers reports whether id is the head trace or one of the coalesced
// siblings.
func (bt BatchTrace) Covers(id uint64) bool {
	for _, t := range bt.Traces {
		if t == id {
			return true
		}
	}
	return false
}

// traceLog retains the last N completed BatchTraces, indexed by every
// trace ID they cover, so Server.Trace(id) answers for coalesced
// siblings too.
type traceLog struct {
	mu   sync.Mutex
	ring []BatchTrace
	next int
	full bool
	byID map[uint64]int // trace ID -> ring index
}

func (tl *traceLog) init(depth int) {
	tl.ring = make([]BatchTrace, depth)
	tl.byID = make(map[uint64]int, depth)
}

func (tl *traceLog) add(bt BatchTrace) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	idx := tl.next
	if tl.full {
		// Evict the overwritten entry's ID index.
		for _, id := range tl.ring[idx].Traces {
			if tl.byID[id] == idx {
				delete(tl.byID, id)
			}
		}
	}
	tl.ring[idx] = bt
	for _, id := range bt.Traces {
		tl.byID[id] = idx
	}
	tl.next++
	if tl.next == len(tl.ring) {
		tl.next = 0
		tl.full = true
	}
}

func (tl *traceLog) get(id uint64) (BatchTrace, bool) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	idx, ok := tl.byID[id]
	if !ok {
		return BatchTrace{}, false
	}
	return tl.ring[idx], true
}

// CompleteTrace records a finished batch lifecycle, making it available
// through Trace under the head ID and every coalesced sibling ID.
func (r *Recorder) CompleteTrace(bt BatchTrace) {
	if r == nil {
		return
	}
	if len(bt.Traces) == 0 {
		bt.Traces = []uint64{bt.ID}
	}
	r.traces.add(bt)
}

// Trace returns the completed lifecycle covering trace ID id (as head
// or coalesced sibling), and whether one is retained.
func (r *Recorder) Trace(id uint64) (BatchTrace, bool) {
	if r == nil {
		return BatchTrace{}, false
	}
	return r.traces.get(id)
}
