package flight

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Record(KindAdmitted, 1, 2, 3)
	r.Phase("x", time.Now(), time.Millisecond)
	r.BeginApply(1)
	if d := r.EndApply(); d != 0 {
		t.Fatalf("nil EndApply = %v", d)
	}
	r.Journal(1, time.Millisecond, false)
	r.Fsync(time.Millisecond, true)
	r.CompleteTrace(BatchTrace{ID: 1})
	if _, ok := r.Trace(1); ok {
		t.Fatal("nil Trace found something")
	}
	if r.Snapshot() != nil || r.Dump("x", 0) != nil || r.TryDump("x", 0) != nil {
		t.Fatal("nil recorder produced data")
	}
	if r.SlowBatch(1, time.Second, time.Millisecond) != nil {
		t.Fatal("nil SlowBatch produced a dump")
	}
	if r.Events() != 0 || r.Dropped() != 0 || r.Dumps() != 0 || r.SlowBatches() != 0 || r.Depth() != 0 {
		t.Fatal("nil counters nonzero")
	}
	if r.ActiveTrace() != 0 {
		t.Fatal("nil active trace nonzero")
	}
	if r.LastDump() != nil {
		t.Fatal("nil LastDump nonzero")
	}
}

func TestRecordAndSnapshotOrdered(t *testing.T) {
	r := New(Options{Depth: 64, Logger: discard()})
	for i := 1; i <= 10; i++ {
		r.Record(KindEnqueued, uint64(i), int64(i), 0)
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot has %d events, want 10", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Trace != uint64(i+1) || e.Kind != KindEnqueued || e.A != int64(i+1) {
			t.Fatalf("event %d corrupted: %+v", i, e)
		}
		if e.At == 0 {
			t.Fatalf("event %d missing timestamp", i)
		}
	}
	if r.Events() != 10 || r.Dropped() != 0 {
		t.Fatalf("events=%d dropped=%d", r.Events(), r.Dropped())
	}
}

func TestDepthRoundsToPowerOfTwo(t *testing.T) {
	for in, want := range map[int]int{1: 1, 2: 2, 3: 4, 100: 128, 4096: 4096, 0: DefaultDepth} {
		r := New(Options{Depth: in, Logger: discard()})
		if r.Depth() != want {
			t.Fatalf("Depth(%d) = %d, want %d", in, r.Depth(), want)
		}
	}
}

// TestRingOverwriteAccounting drives the ring far past capacity from
// many goroutines and checks: dropped counts exactly the overwritten
// entries, no event in the final snapshot is torn (every field encodes
// the same writer), and the snapshot holds exactly the newest window.
func TestRingOverwriteAccounting(t *testing.T) {
	const depth = 64
	const writers = 8
	const perWriter = 1000
	reg := obs.NewRegistry()
	r := New(Options{Depth: depth, Logger: discard(), Metrics: reg})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Encode the writer+iteration into every payload field so a
				// torn slot (fields from different writers) is detectable.
				tag := int64(w*perWriter + i)
				r.Record(KindEnqueued, uint64(tag), tag, tag)
			}
		}(w)
	}
	wg.Wait()

	total := uint64(writers * perWriter)
	if r.Events() != total {
		t.Fatalf("events = %d, want %d", r.Events(), total)
	}
	if want := total - depth; r.Dropped() != want {
		t.Fatalf("dropped = %d, want %d (total %d - depth %d)", r.Dropped(), want, total, depth)
	}
	if got := reg.Counter(MetricDropped, "").Value(); got != int64(total-depth) {
		t.Fatalf("dropped counter = %d, want %d", got, total-depth)
	}

	evs := r.Snapshot()
	if len(evs) != depth {
		t.Fatalf("final snapshot has %d events, want %d (all writers joined)", len(evs), depth)
	}
	seen := map[uint64]bool{}
	for _, e := range evs {
		if int64(e.Trace) != e.A || e.A != e.B {
			t.Fatalf("torn event: trace=%d a=%d b=%d", e.Trace, e.A, e.B)
		}
		if e.Seq < total-depth || e.Seq >= total {
			t.Fatalf("event seq %d outside newest window [%d,%d)", e.Seq, total-depth, total)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestSnapshotConsistentMidWrite dumps continuously while writers
// hammer the ring: every returned event must be internally consistent
// (never a mix of two writers' fields).
func TestSnapshotConsistentMidWrite(t *testing.T) {
	r := New(Options{Depth: 32, Logger: discard()})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var i int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				tag := int64(w)<<32 | i
				r.Record(Kind(1+i%16), uint64(tag), tag, tag)
				i++
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, e := range r.Snapshot() {
			if int64(e.Trace) != e.A || e.A != e.B {
				t.Fatalf("torn event in mid-write snapshot: trace=%d a=%d b=%d", e.Trace, e.A, e.B)
			}
			if e.Kind < KindAdmitted || e.Kind > KindPhase {
				t.Fatalf("invalid kind %d in snapshot", e.Kind)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestDumpThrottlingAndLastDump(t *testing.T) {
	r := New(Options{Depth: 16, MinDumpGap: time.Hour, Logger: discard()})
	r.Record(KindApplied, 7, 1, 2)

	d1 := r.TryDump("first", 7)
	if d1 == nil {
		t.Fatal("first TryDump throttled")
	}
	if d2 := r.TryDump("second", 0); d2 != nil {
		t.Fatal("second TryDump not throttled")
	}
	// Forced dumps ignore the gap.
	d3 := r.Dump("forced", 7)
	if d3 == nil {
		t.Fatal("forced Dump throttled")
	}
	if got := r.LastDump(); got != d3 {
		t.Fatalf("LastDump = %p, want %p", got, d3)
	}
	if r.Dumps() != 2 {
		t.Fatalf("dumps = %d, want 2", r.Dumps())
	}
	if d1.Focus != 7 || len(d1.Events) != 1 || d1.Events[0].Kind != KindApplied {
		t.Fatalf("dump content: %+v", d1)
	}
}

func TestDumpLogsFocusTimeline(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	r := New(Options{Depth: 16, Logger: logger})
	r.Record(KindEnqueued, 42, 1, 0)
	r.Record(KindApplied, 42, int64(3*time.Millisecond), 10)
	r.Dump("test reason", 42)
	out := buf.String()
	if !strings.Contains(out, "flight dump") || !strings.Contains(out, "trace=42") {
		t.Fatalf("dump log: %q", out)
	}
	if !strings.Contains(out, "enqueued") || !strings.Contains(out, "applied") {
		t.Fatalf("dump log missing timeline events: %q", out)
	}
}

func TestSlowBatchCountsAndThrottles(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Options{Depth: 16, MinDumpGap: time.Hour, Logger: discard(), Metrics: reg})
	if d := r.SlowBatch(1, 2*time.Second, time.Second); d == nil {
		t.Fatal("first slow batch did not dump")
	}
	if d := r.SlowBatch(2, 2*time.Second, time.Second); d != nil {
		t.Fatal("second slow-batch dump not throttled")
	}
	if r.SlowBatches() != 2 {
		t.Fatalf("slow batches = %d, want 2 (counter is not throttled)", r.SlowBatches())
	}
	if got := reg.Counter(MetricSlowBatches, "").Value(); got != 2 {
		t.Fatalf("slow counter = %d, want 2", got)
	}
	if r.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1", r.Dumps())
	}
}

func TestActiveTraceCorrelation(t *testing.T) {
	r := New(Options{Depth: 32, Logger: discard()})
	r.BeginApply(99)
	if r.ActiveTrace() != 99 {
		t.Fatalf("active = %d", r.ActiveTrace())
	}
	r.Journal(5, 2*time.Millisecond, false)
	r.Fsync(time.Millisecond, false)
	r.Journal(6, 3*time.Millisecond, true) // failed: not charged to the phase
	if got := r.EndApply(); got != 2*time.Millisecond {
		t.Fatalf("journal phase = %v, want 2ms (failed appends not charged)", got)
	}
	if r.ActiveTrace() != 0 {
		t.Fatal("active trace not cleared")
	}
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("%d events, want 3", len(evs))
	}
	for _, e := range evs {
		if e.Trace != 99 {
			t.Fatalf("event %v not stamped with active trace: %d", e.Kind, e.Trace)
		}
	}
	if evs[0].Kind != KindJournaled || evs[0].B != 5 {
		t.Fatalf("journal event: %+v", evs[0])
	}
	if evs[1].Kind != KindFsync {
		t.Fatalf("fsync event: %+v", evs[1])
	}
	if evs[2].Kind != KindJournalFailed || evs[2].B != 6 {
		t.Fatalf("journal-failed event: %+v", evs[2])
	}
}

func TestPhaseSinkInterning(t *testing.T) {
	r := New(Options{Depth: 32, Logger: discard()})
	r.BeginApply(5)
	start := time.Now().Add(-time.Second)
	r.Phase("refine", start, 10*time.Millisecond)
	r.Phase("refine", start, 20*time.Millisecond)
	r.EndApply()
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].B != evs[1].B {
		t.Fatalf("same phase name interned to different ids: %d vs %d", evs[0].B, evs[1].B)
	}
	e := evs[0]
	if e.Kind != KindPhase || e.Trace != 5 || e.A != int64(10*time.Millisecond) {
		t.Fatalf("phase event: %+v", e)
	}
	if e.At != start.UnixNano() {
		t.Fatalf("phase event At = %d, want span start %d", e.At, start.UnixNano())
	}
	if !strings.Contains(e.Note(), "name=refine") {
		t.Fatalf("phase note: %q", e.Note())
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindAdmitted; k <= KindPhase; k++ {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := ParseKind(name)
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseKind("nope"); ok {
		t.Fatal("ParseKind accepted garbage")
	}
	if Kind(0).String() == "" || Kind(200).String() == "" {
		t.Fatal("out-of-range kinds must still render")
	}
}

func TestEventCounterMetric(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Options{Depth: 8, Logger: discard(), Metrics: reg})
	r.Record(KindAdmitted, 1, 0, 0)
	r.Record(KindShed, 2, 0, 0)
	if got := reg.Counter(MetricEvents, "").Value(); got != 2 {
		t.Fatalf("events counter = %d", got)
	}
	// RegisterMetrics pre-creates all four series.
	reg2 := obs.NewRegistry()
	RegisterMetrics(reg2)
	snap := reg2.Snapshot()
	for _, name := range []string{MetricEvents, MetricDropped, MetricDumps, MetricSlowBatches} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("metric %s not pre-registered", name)
		}
	}
}
