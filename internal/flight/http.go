package flight

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// eventJSON is the wire shape of one event on /debug/flight.
type eventJSON struct {
	Seq   uint64 `json:"seq"`
	Trace uint64 `json:"trace,omitempty"`
	Kind  string `json:"kind"`
	At    string `json:"at"`
	AtNS  int64  `json:"at_ns"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	Note  string `json:"note,omitempty"`
}

func toJSON(evs []Event) []eventJSON {
	out := make([]eventJSON, len(evs))
	for i, e := range evs {
		out[i] = eventJSON{
			Seq:   e.Seq,
			Trace: e.Trace,
			Kind:  e.Kind.String(),
			At:    e.Time().UTC().Format(time.RFC3339Nano),
			AtNS:  e.At,
			A:     e.A,
			B:     e.B,
			Note:  e.Note(),
		}
	}
	return out
}

// Handler serves the flight ring as JSON, intended for mounting at
// /debug/flight. Query parameters:
//
//	?trace=ID    only events stamped with that trace ID
//	?kind=NAME   only events of that kind (see Kind.String)
//	?dump=last   serve the last captured dump instead of the live ring
//
// Filters compose; unknown kind names are a 400. A nil *Recorder serves
// 404 so the route can be mounted unconditionally.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		q := req.URL.Query()

		var traceID uint64
		filterTrace := false
		if v := q.Get("trace"); v != "" {
			id, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id: "+v, http.StatusBadRequest)
				return
			}
			traceID, filterTrace = id, true
		}
		var kind Kind
		filterKind := false
		if v := q.Get("kind"); v != "" {
			k, ok := ParseKind(v)
			if !ok {
				http.Error(w, "unknown kind: "+v, http.StatusBadRequest)
				return
			}
			kind, filterKind = k, true
		}

		resp := struct {
			Depth       int    `json:"depth"`
			Events      uint64 `json:"events_total"`
			Dropped     uint64 `json:"dropped_total"`
			Dumps       uint64 `json:"dumps_total"`
			SlowBatches uint64 `json:"slow_batches_total"`
			Dump        *struct {
				Reason string    `json:"reason"`
				Focus  uint64    `json:"focus,omitempty"`
				At     time.Time `json:"at"`
			} `json:"dump,omitempty"`
			Items []eventJSON `json:"events"`
		}{
			Depth:       r.Depth(),
			Events:      r.Events(),
			Dropped:     r.Dropped(),
			Dumps:       r.Dumps(),
			SlowBatches: r.SlowBatches(),
		}

		var evs []Event
		if q.Get("dump") == "last" {
			d := r.LastDump()
			if d == nil {
				http.Error(w, "no dump captured yet", http.StatusNotFound)
				return
			}
			evs = d.Events
			resp.Dump = &struct {
				Reason string    `json:"reason"`
				Focus  uint64    `json:"focus,omitempty"`
				At     time.Time `json:"at"`
			}{Reason: d.Reason, Focus: d.Focus, At: d.At}
		} else {
			evs = r.Snapshot()
		}

		if filterTrace || filterKind {
			kept := evs[:0:0]
			for _, e := range evs {
				if filterTrace && e.Trace != traceID {
					continue
				}
				if filterKind && e.Kind != kind {
					continue
				}
				kept = append(kept, e)
			}
			evs = kept
		}
		resp.Items = toJSON(evs)

		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
