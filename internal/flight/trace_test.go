package flight

import (
	"log/slog"
	"testing"
	"time"
)

func TestPhasesTotal(t *testing.T) {
	p := Phases{
		QueueWait: 1 * time.Millisecond,
		Coalesce:  2 * time.Millisecond,
		Validate:  3 * time.Millisecond,
		Journal:   4 * time.Millisecond,
		Apply:     5 * time.Millisecond,
		Publish:   6 * time.Millisecond,
	}
	if got := p.Total(); got != 21*time.Millisecond {
		t.Fatalf("Total = %v", got)
	}
}

func TestBatchTraceCoversAndE2E(t *testing.T) {
	start := time.Now()
	bt := BatchTrace{
		ID:          3,
		Traces:      []uint64{3, 4, 5},
		EnqueuedAt:  start,
		CompletedAt: start.Add(7 * time.Millisecond),
	}
	for _, id := range []uint64{3, 4, 5} {
		if !bt.Covers(id) {
			t.Fatalf("Covers(%d) = false", id)
		}
	}
	if bt.Covers(6) {
		t.Fatal("Covers(6) = true")
	}
	if bt.E2E() != 7*time.Millisecond {
		t.Fatalf("E2E = %v", bt.E2E())
	}
}

func TestCompleteTraceDefaultsTraces(t *testing.T) {
	r := New(Options{Depth: 8, TraceDepth: 4, Logger: slog.New(slog.DiscardHandler)})
	r.CompleteTrace(BatchTrace{ID: 11, Seq: 1})
	bt, ok := r.Trace(11)
	if !ok {
		t.Fatal("trace 11 not retained")
	}
	if len(bt.Traces) != 1 || bt.Traces[0] != 11 {
		t.Fatalf("Traces defaulted to %v, want [11]", bt.Traces)
	}
}

func TestTraceLookupCoversSiblings(t *testing.T) {
	r := New(Options{Depth: 8, TraceDepth: 4, Logger: slog.New(slog.DiscardHandler)})
	r.CompleteTrace(BatchTrace{ID: 1, Traces: []uint64{1, 2, 3}, Seq: 9})
	for _, id := range []uint64{1, 2, 3} {
		bt, ok := r.Trace(id)
		if !ok || bt.ID != 1 || bt.Seq != 9 {
			t.Fatalf("Trace(%d) = %+v, %v", id, bt, ok)
		}
	}
	if _, ok := r.Trace(4); ok {
		t.Fatal("Trace(4) resolved")
	}
}

func TestTraceLogEviction(t *testing.T) {
	r := New(Options{Depth: 8, TraceDepth: 2, Logger: slog.New(slog.DiscardHandler)})
	r.CompleteTrace(BatchTrace{ID: 1, Traces: []uint64{1, 10}})
	r.CompleteTrace(BatchTrace{ID: 2})
	r.CompleteTrace(BatchTrace{ID: 3}) // evicts trace 1 (and sibling 10)

	if _, ok := r.Trace(1); ok {
		t.Fatal("evicted head trace 1 still resolvable")
	}
	if _, ok := r.Trace(10); ok {
		t.Fatal("evicted sibling trace 10 still resolvable")
	}
	for _, id := range []uint64{2, 3} {
		if _, ok := r.Trace(id); !ok {
			t.Fatalf("retained trace %d not resolvable", id)
		}
	}
}

// TestTraceLogEvictionKeepsReassignedIDs exercises the guard that an
// eviction only deletes index entries still pointing at the evicted
// slot: if a trace ID was re-reported by a newer entry, the newer
// mapping must survive the older entry's eviction.
func TestTraceLogEvictionKeepsReassignedIDs(t *testing.T) {
	r := New(Options{Depth: 8, TraceDepth: 2, Logger: slog.New(slog.DiscardHandler)})
	r.CompleteTrace(BatchTrace{ID: 1, Seq: 1})
	r.CompleteTrace(BatchTrace{ID: 1, Seq: 2}) // same ID, newer entry in slot 1
	r.CompleteTrace(BatchTrace{ID: 3, Seq: 3}) // evicts slot 0 (the Seq:1 entry)

	bt, ok := r.Trace(1)
	if !ok {
		t.Fatal("re-reported trace 1 lost on eviction of its older entry")
	}
	if bt.Seq != 2 {
		t.Fatalf("Trace(1).Seq = %d, want the newer entry (2)", bt.Seq)
	}
}
