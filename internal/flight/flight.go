// Package flight is the engine's black box: an always-on, fixed-capacity
// ring of structured lifecycle events that costs O(1) per event — one
// atomic cursor increment plus a handful of atomic field stores, zero
// allocation — and is safe to write from any goroutine concurrently with
// dumps.
//
// Every mutation batch is assigned a monotonically increasing trace ID
// at Submit; the serve loop, the durable journal and the WAL stamp their
// events with it, so a single batch's path — admitted, enqueued,
// coalesced, validated, journaled (with fsync latency), applied,
// published — can be reconstructed after the fact. Events that do not
// belong to a batch (health transitions, repair attempts) carry trace 0,
// and engine phase spans flow in through the obs.Sink interface the
// Recorder implements, so one event stream time-correlates all of it.
//
// The ring overwrites its oldest entries when full: the recorder is a
// flight recorder, not a log — it preserves the most recent window
// (sized by Options.Depth) so that when something goes wrong the lead-up
// is still there. Dump snapshots that window and emits it to slog; the
// serve layer triggers dumps on Degraded/Failed/Overloaded health
// transitions and on slow batches (end-to-end latency above the
// admission SLO), and Handler serves the live ring and the last dump
// over HTTP (/debug/flight), filterable by trace ID and event kind.
//
// Concurrency design: the write cursor is a single atomic counter; each
// writer claims a position, maps it onto a slot (position mod capacity),
// and publishes through a per-slot seqlock — `start` is stamped before
// the fields, `commit` after, both with the claimed position. A reader
// accepts a slot only when commit matches the position before the field
// reads and start still matches after them; with Go's sequentially
// consistent atomics this rejects every torn read, so a dump taken in
// the middle of a write storm is internally consistent (it simply omits
// the slots in flux). All Recorder methods are nil-safe: a nil *Recorder
// records nothing and costs one nil check, mirroring the obs
// conventions.
package flight

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Kind identifies what happened. The zero Kind is invalid, so an
// uninitialized slot can never masquerade as an event.
type Kind uint8

const (
	// KindAdmitted: a batch passed admission (or admission is off) and is
	// headed for the queue. A = edge weight.
	KindAdmitted Kind = iota + 1
	// KindShed: admission control refused the batch before the queue.
	// A = edge weight, B = suggested RetryAfter in nanoseconds.
	KindShed
	// KindRejected: a post-admission Submit refusal — full queue under
	// the Reject policy, closed/degraded/failed loop, or a cancelled
	// context while blocked. A = edge weight.
	KindRejected
	// KindEnqueued: the batch entered the mutation queue. A = queue depth
	// after the enqueue.
	KindEnqueued
	// KindCoalesced: this trace's batch was folded into an earlier
	// batch's apply call. A = the absorbing (head) trace ID.
	KindCoalesced
	// KindValidated: the head batch passed validation at dequeue.
	// A = validation nanoseconds, B = total edge count.
	KindValidated
	// KindQuarantined: the batch failed validation and entered the poison
	// ring. A = submission sequence number.
	KindQuarantined
	// KindJournaled: the batch was appended to the write-ahead log.
	// A = journal nanoseconds (including fsync), B = WAL sequence number.
	KindJournaled
	// KindJournalFailed: the journal append failed (the trigger for
	// degraded mode). A = nanoseconds spent, B = WAL sequence number.
	KindJournalFailed
	// KindFsync: a WAL fsync completed. A = fsync nanoseconds.
	KindFsync
	// KindFsyncFailed: a WAL fsync failed. A = nanoseconds spent.
	KindFsyncFailed
	// KindApplied: the engine finished applying the (possibly coalesced)
	// batch. A = apply nanoseconds, B = edge computations performed.
	KindApplied
	// KindPublished: the apply's result snapshot is published and its
	// tickets resolved. A = apply sequence number, B = end-to-end
	// nanoseconds since the head batch enqueued.
	KindPublished
	// KindHealth: a health state transition. A = from state, B = to state
	// (health.State numeric values).
	KindHealth
	// KindRepair: a degraded-mode Recover attempt. A = attempt number,
	// B = 1 on success, 0 on failure.
	KindRepair
	// KindPhase: an engine phase span delivered through the obs.Sink
	// interface. At is the span's start; A = duration nanoseconds,
	// B = interned phase-name ID (see Event.Note).
	KindPhase
	// KindReseed: a follower installed a leader checkpoint after log
	// compaction. A = applied sequence before, B = checkpoint sequence
	// after.
	KindReseed
	// KindStall: a follower's stream-stall watchdog dropped a silent
	// connection. A = observed silence in nanoseconds.
	KindStall
)

var kindNames = [...]string{
	KindAdmitted:      "admitted",
	KindShed:          "shed",
	KindRejected:      "rejected",
	KindEnqueued:      "enqueued",
	KindCoalesced:     "coalesced",
	KindValidated:     "validated",
	KindQuarantined:   "quarantined",
	KindJournaled:     "journaled",
	KindJournalFailed: "journal_failed",
	KindFsync:         "fsync",
	KindFsyncFailed:   "fsync_failed",
	KindApplied:       "applied",
	KindPublished:     "published",
	KindHealth:        "health",
	KindRepair:        "repair",
	KindPhase:         "phase",
	KindReseed:        "reseed",
	KindStall:         "stall",
}

// String returns the lowercase kind name used in dumps and the
// /debug/flight kind filter.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind maps a kind name back to its Kind, reporting whether the
// name is known.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one recorded lifecycle event. A and B are kind-specific
// payloads (see the Kind constants); At is a Unix nanosecond timestamp.
type Event struct {
	// Seq is the event's global sequence number (the ring position it was
	// written at); strictly increasing across the recorder's lifetime.
	Seq uint64
	// Trace is the batch trace ID the event belongs to, 0 for events
	// without one (health transitions, out-of-band repairs).
	Trace uint64
	// Kind says what happened.
	Kind Kind
	// At is the event time in Unix nanoseconds (for KindPhase, the span's
	// start).
	At int64
	// A and B are the kind-specific payloads.
	A, B int64
}

// Time returns the event timestamp.
func (e Event) Time() time.Time { return time.Unix(0, e.At) }

// Note renders the kind-specific payload human-readably; used by dumps
// and the HTTP endpoint, never on the hot path.
func (e Event) Note() string {
	switch e.Kind {
	case KindAdmitted:
		return fmt.Sprintf("weight=%d", e.A)
	case KindShed:
		return fmt.Sprintf("weight=%d retry_after=%v", e.A, time.Duration(e.B))
	case KindRejected:
		return fmt.Sprintf("weight=%d", e.A)
	case KindEnqueued:
		return fmt.Sprintf("queue_depth=%d", e.A)
	case KindCoalesced:
		return fmt.Sprintf("into_trace=%d", e.A)
	case KindValidated:
		return fmt.Sprintf("took=%v edges=%d", time.Duration(e.A), e.B)
	case KindQuarantined:
		return fmt.Sprintf("submission=%d", e.A)
	case KindJournaled, KindJournalFailed:
		return fmt.Sprintf("took=%v wal_seq=%d", time.Duration(e.A), e.B)
	case KindFsync, KindFsyncFailed:
		return fmt.Sprintf("took=%v", time.Duration(e.A))
	case KindApplied:
		return fmt.Sprintf("took=%v edge_computations=%d", time.Duration(e.A), e.B)
	case KindPublished:
		return fmt.Sprintf("apply_seq=%d e2e=%v", e.A, time.Duration(e.B))
	case KindHealth:
		return fmt.Sprintf("from=%d to=%d", e.A, e.B)
	case KindRepair:
		if e.B != 0 {
			return fmt.Sprintf("attempt=%d ok", e.A)
		}
		return fmt.Sprintf("attempt=%d failed", e.A)
	case KindPhase:
		return fmt.Sprintf("name=%s took=%v", phaseName(e.B), time.Duration(e.A))
	case KindReseed:
		return fmt.Sprintf("from_seq=%d to_seq=%d", e.A, e.B)
	case KindStall:
		return fmt.Sprintf("silent=%v", time.Duration(e.A))
	}
	return ""
}

// Defaults for zero-valued Options fields.
const (
	// DefaultDepth is the default ring capacity in events.
	DefaultDepth = 4096
	// DefaultTraceDepth is the default number of completed batch traces
	// retained for Trace lookups.
	DefaultTraceDepth = 256
	// DefaultMinDumpGap throttles automatic (TryDump) captures so a storm
	// of slow batches does not flood the log.
	DefaultMinDumpGap = time.Second
)

// Options configures a Recorder. Every zero field takes the package
// default.
type Options struct {
	// Depth is the ring capacity in events, rounded up to a power of two.
	// Default DefaultDepth.
	Depth int
	// TraceDepth bounds the ring of completed batch traces kept for
	// Trace lookups. Default DefaultTraceDepth.
	TraceDepth int
	// MinDumpGap is the minimum interval between automatic (TryDump)
	// captures; explicit Dump calls are never throttled. Default
	// DefaultMinDumpGap.
	MinDumpGap time.Duration
	// Logger receives dump summaries; nil uses slog.Default().
	Logger *slog.Logger
	// Metrics, when non-nil, receives the graphbolt_flight_* counters.
	Metrics *obs.Registry
}

// slot is one ring entry, published through a per-slot seqlock: start is
// stamped (position+1) before the fields, commit after. Readers accept
// the fields only when commit matched before and start still matches
// after reading them.
type slot struct {
	start  atomic.Uint64
	commit atomic.Uint64
	trace  atomic.Uint64
	kind   atomic.Uint64
	at     atomic.Int64
	a      atomic.Int64
	b      atomic.Int64
}

// Metric names exported by this package.
const (
	MetricEvents      = "graphbolt_flight_events_total"
	MetricDropped     = "graphbolt_flight_dropped_total"
	MetricDumps       = "graphbolt_flight_dumps_total"
	MetricSlowBatches = "graphbolt_flight_slow_batches_total"
)

type metrics struct {
	events      *obs.Counter
	dropped     *obs.Counter
	dumps       *obs.Counter
	slowBatches *obs.Counter
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		events: r.Counter(MetricEvents,
			"Lifecycle events recorded into the flight ring."),
		dropped: r.Counter(MetricDropped,
			"Ring entries overwritten before they could appear in a dump."),
		dumps: r.Counter(MetricDumps,
			"Flight dumps emitted (health transitions, slow batches, explicit)."),
		slowBatches: r.Counter(MetricSlowBatches,
			"Batches whose end-to-end latency exceeded the slow-batch threshold."),
	}
}

// RegisterMetrics pre-creates the flight metric set in r so the
// exposition endpoint shows every series (at zero) before a recorder is
// constructed. Idempotent, nil-safe.
func RegisterMetrics(r *obs.Registry) {
	newMetrics(r)
}

// Recorder is the flight recorder. Construct with New; all methods are
// safe for concurrent use and nil-safe.
type Recorder struct {
	slots  []slot
	mask   uint64
	cursor atomic.Uint64

	// active is the trace ID of the batch currently on the apply path
	// (single-writer); the durable and WAL layers stamp their events
	// with it. scratchJournal accumulates journal time during the
	// current apply so the serve loop can report it as a phase.
	active         atomic.Uint64
	scratchJournal atomic.Int64

	dropped atomic.Uint64
	slow    atomic.Uint64
	ndumps  atomic.Uint64

	traces traceLog

	dumpMu     sync.Mutex
	lastDump   *Dump
	lastDumpAt time.Time
	minDumpGap time.Duration

	logger *slog.Logger
	met    metrics
}

// New builds a Recorder. A nil return never happens; to disable flight
// recording pass a nil *Recorder around instead.
func New(opts Options) *Recorder {
	depth := opts.Depth
	if depth <= 0 {
		depth = DefaultDepth
	}
	// Round up to a power of two so position→slot is a mask.
	n := 1
	for n < depth {
		n <<= 1
	}
	traceDepth := opts.TraceDepth
	if traceDepth <= 0 {
		traceDepth = DefaultTraceDepth
	}
	gap := opts.MinDumpGap
	if gap <= 0 {
		gap = DefaultMinDumpGap
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	r := &Recorder{
		slots:      make([]slot, n),
		mask:       uint64(n - 1),
		minDumpGap: gap,
		logger:     logger,
		met:        newMetrics(opts.Metrics),
	}
	r.traces.init(traceDepth)
	return r
}

// Depth returns the ring capacity in events (0 on nil).
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Events returns the total number of events ever recorded.
func (r *Recorder) Events() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// Dropped returns the number of ring entries overwritten so far.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Dumps returns the number of dumps emitted so far.
func (r *Recorder) Dumps() uint64 {
	if r == nil {
		return 0
	}
	return r.ndumps.Load()
}

// SlowBatches returns the number of slow-batch captures so far.
func (r *Recorder) SlowBatches() uint64 {
	if r == nil {
		return 0
	}
	return r.slow.Load()
}

// Record appends one event to the ring: O(1), allocation-free, safe
// from any goroutine.
func (r *Recorder) Record(k Kind, trace uint64, a, b int64) {
	r.recordAt(k, trace, time.Now().UnixNano(), a, b)
}

func (r *Recorder) recordAt(k Kind, trace uint64, at, a, b int64) {
	if r == nil {
		return
	}
	pos := r.cursor.Add(1) - 1
	s := &r.slots[pos&r.mask]
	s.start.Store(pos + 1)
	s.trace.Store(trace)
	s.kind.Store(uint64(k))
	s.at.Store(at)
	s.a.Store(a)
	s.b.Store(b)
	s.commit.Store(pos + 1)
	r.met.events.Inc()
	if pos >= uint64(len(r.slots)) {
		r.dropped.Add(1)
		r.met.dropped.Inc()
	}
}

// Phase implements obs.Sink: engine phase spans ("run", "refine",
// "checkpoint", ...) are recorded as KindPhase events stamped with the
// active trace, so per-batch timelines and engine phases land in one
// time-correlated stream. The phase name is interned; the common case
// (a name seen before) stays allocation-free.
func (r *Recorder) Phase(name string, start time.Time, duration time.Duration) {
	if r == nil {
		return
	}
	r.recordAt(KindPhase, r.active.Load(), start.UnixNano(), int64(duration), internPhase(name))
}

// BeginApply marks trace as the batch on the apply path and clears the
// per-apply journal scratch. Called by the serve loop immediately before
// the apply call; single-writer by construction.
func (r *Recorder) BeginApply(trace uint64) {
	if r == nil {
		return
	}
	r.active.Store(trace)
	r.scratchJournal.Store(0)
}

// EndApply clears the active trace and returns the journal time the
// durable layer accumulated during the apply.
func (r *Recorder) EndApply() time.Duration {
	if r == nil {
		return 0
	}
	r.active.Store(0)
	return time.Duration(r.scratchJournal.Swap(0))
}

// ActiveTrace returns the trace ID currently on the apply path, 0 when
// none.
func (r *Recorder) ActiveTrace() uint64 {
	if r == nil {
		return 0
	}
	return r.active.Load()
}

// Journal records one WAL append made on behalf of the active trace and
// charges its duration to the current apply's journal phase.
func (r *Recorder) Journal(walSeq uint64, d time.Duration, failed bool) {
	if r == nil {
		return
	}
	k := KindJournaled
	if failed {
		k = KindJournalFailed
	} else {
		r.scratchJournal.Add(int64(d))
	}
	r.Record(k, r.active.Load(), int64(d), int64(walSeq))
}

// Fsync records one WAL fsync made on behalf of the active trace.
func (r *Recorder) Fsync(d time.Duration, failed bool) {
	if r == nil {
		return
	}
	k := KindFsync
	if failed {
		k = KindFsyncFailed
	}
	r.Record(k, r.active.Load(), int64(d), 0)
}

// Snapshot returns the committed events currently in the ring, oldest
// first. It is safe concurrently with writers; slots being overwritten
// at that instant are omitted rather than returned torn.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	cur := r.cursor.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if cur > n {
		lo = cur - n
	}
	evs := make([]Event, 0, cur-lo)
	for pos := lo; pos < cur; pos++ {
		s := &r.slots[pos&r.mask]
		if s.commit.Load() != pos+1 {
			continue // not yet committed, or already overwritten
		}
		ev := Event{
			Seq:   pos,
			Trace: s.trace.Load(),
			Kind:  Kind(s.kind.Load()),
			At:    s.at.Load(),
			A:     s.a.Load(),
			B:     s.b.Load(),
		}
		if s.start.Load() != pos+1 {
			continue // a newer writer claimed the slot mid-read
		}
		evs = append(evs, ev)
	}
	return evs
}

// Dump is one captured ring snapshot.
type Dump struct {
	// Reason says what triggered the capture.
	Reason string `json:"reason"`
	// Focus is the trace ID the dump centers on (the failing or slow
	// batch), 0 when none.
	Focus uint64 `json:"focus,omitempty"`
	// At is when the capture was taken.
	At time.Time `json:"at"`
	// Dropped is the recorder's overwritten-entry count at capture time:
	// events older than Events[0] are gone.
	Dropped uint64 `json:"dropped"`
	// Events is the ring content, oldest first.
	Events []Event `json:"events"`
}

// Dump captures the ring unconditionally, retains it as the last dump,
// logs a summary (plus the focus trace's timeline, when focus is
// nonzero), and returns it.
func (r *Recorder) Dump(reason string, focus uint64) *Dump {
	return r.dump(reason, focus, true)
}

// TryDump is Dump throttled by Options.MinDumpGap: it returns nil
// (capturing nothing) when a dump was taken too recently. Automatic
// triggers (slow batches, overload flapping) use it so dump storms
// cannot flood the log.
func (r *Recorder) TryDump(reason string, focus uint64) *Dump {
	return r.dump(reason, focus, false)
}

func (r *Recorder) dump(reason string, focus uint64, force bool) *Dump {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.dumpMu.Lock()
	if !force && now.Sub(r.lastDumpAt) < r.minDumpGap {
		r.dumpMu.Unlock()
		return nil
	}
	d := &Dump{
		Reason:  reason,
		Focus:   focus,
		At:      now,
		Dropped: r.dropped.Load(),
		Events:  r.Snapshot(),
	}
	r.lastDump = d
	r.lastDumpAt = now
	r.dumpMu.Unlock()
	r.ndumps.Add(1)
	r.met.dumps.Inc()

	attrs := []any{
		"reason", reason,
		"events", len(d.Events),
		"dropped", d.Dropped,
	}
	if len(d.Events) > 0 {
		attrs = append(attrs,
			"window_start", time.Unix(0, d.Events[0].At),
			"window_end", time.Unix(0, d.Events[len(d.Events)-1].At))
	}
	if focus != 0 {
		attrs = append(attrs, "trace", focus, "timeline", renderTimeline(d.Events, focus))
	}
	r.logger.Warn("graphbolt: flight dump", attrs...)
	return d
}

// LastDump returns the most recent dump, nil when none has been taken.
func (r *Recorder) LastDump() *Dump {
	if r == nil {
		return nil
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	return r.lastDump
}

// SlowBatch records one slow-batch capture: the counter always
// increments; the dump itself is throttled (TryDump) so a sustained
// slow spell yields periodic captures, not a flood.
func (r *Recorder) SlowBatch(trace uint64, e2e, threshold time.Duration) *Dump {
	if r == nil {
		return nil
	}
	r.slow.Add(1)
	r.met.slowBatches.Inc()
	return r.TryDump(fmt.Sprintf("slow batch: end-to-end %v exceeds %v",
		e2e.Round(time.Microsecond), threshold), trace)
}

// renderTimeline formats the events belonging to trace as one compact
// string for the dump's log line. Cold path only.
func renderTimeline(events []Event, trace uint64) string {
	var sb strings.Builder
	var t0 int64
	for _, e := range events {
		if e.Trace != trace {
			continue
		}
		if t0 == 0 {
			t0 = e.At
		}
		if sb.Len() > 0 {
			sb.WriteString(" → ")
		}
		fmt.Fprintf(&sb, "%s@%v", e.Kind, time.Duration(e.At-t0).Round(time.Microsecond))
		if note := e.Note(); note != "" {
			fmt.Fprintf(&sb, "(%s)", note)
		}
	}
	if sb.Len() == 0 {
		return "(no events retained for trace)"
	}
	return sb.String()
}

// Phase-name interning: KindPhase events must not allocate on the hot
// path, so names map to small IDs through a process-wide table (phase
// names come from a small fixed vocabulary).
var phaseIntern sync.Map // string -> int64
var phaseTable struct {
	mu    sync.Mutex
	names []string
}

func internPhase(name string) int64 {
	if id, ok := phaseIntern.Load(name); ok {
		return id.(int64)
	}
	phaseTable.mu.Lock()
	defer phaseTable.mu.Unlock()
	if id, ok := phaseIntern.Load(name); ok {
		return id.(int64)
	}
	phaseTable.names = append(phaseTable.names, name)
	id := int64(len(phaseTable.names)) // 1-based; 0 = unknown
	phaseIntern.Store(name, id)
	return id
}

func phaseName(id int64) string {
	phaseTable.mu.Lock()
	defer phaseTable.mu.Unlock()
	if id >= 1 && int(id) <= len(phaseTable.names) {
		return phaseTable.names[id-1]
	}
	return "?"
}
