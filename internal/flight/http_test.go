package flight

import (
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"
)

type flightResponse struct {
	Depth       int    `json:"depth"`
	Events      uint64 `json:"events_total"`
	Dropped     uint64 `json:"dropped_total"`
	Dumps       uint64 `json:"dumps_total"`
	SlowBatches uint64 `json:"slow_batches_total"`
	Dump        *struct {
		Reason string    `json:"reason"`
		Focus  uint64    `json:"focus"`
		At     time.Time `json:"at"`
	} `json:"dump"`
	Items []struct {
		Seq   uint64 `json:"seq"`
		Trace uint64 `json:"trace"`
		Kind  string `json:"kind"`
		At    string `json:"at"`
		AtNS  int64  `json:"at_ns"`
		A     int64  `json:"a"`
		B     int64  `json:"b"`
		Note  string `json:"note"`
	} `json:"events"`
}

func serveFlight(t *testing.T, r *Recorder, target string) (int, flightResponse) {
	t.Helper()
	req := httptest.NewRequest("GET", target, nil)
	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, req)
	var resp flightResponse
	if rw.Code == 200 {
		if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", target, err, rw.Body.String())
		}
	}
	return rw.Code, resp
}

func TestHandlerNilRecorder(t *testing.T) {
	var r *Recorder
	if code, _ := serveFlight(t, r, "/debug/flight"); code != 404 {
		t.Fatalf("nil recorder served %d, want 404", code)
	}
}

func TestHandlerLiveRing(t *testing.T) {
	r := New(Options{Depth: 16, Logger: slog.New(slog.DiscardHandler)})
	r.Record(KindAdmitted, 1, 100, 0)
	r.Record(KindEnqueued, 1, 1, 0)
	r.Record(KindAdmitted, 2, 200, 0)

	code, resp := serveFlight(t, r, "/debug/flight")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Depth != 16 || resp.Events != 3 || resp.Dropped != 0 {
		t.Fatalf("header fields: %+v", resp)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("%d events, want 3", len(resp.Items))
	}
	e := resp.Items[0]
	if e.Kind != "admitted" || e.Trace != 1 || e.A != 100 || e.Note != "weight=100" {
		t.Fatalf("event 0: %+v", e)
	}
	if _, err := time.Parse(time.RFC3339Nano, e.At); err != nil {
		t.Fatalf("event timestamp %q not RFC3339Nano: %v", e.At, err)
	}
}

func TestHandlerFilters(t *testing.T) {
	r := New(Options{Depth: 16, Logger: slog.New(slog.DiscardHandler)})
	r.Record(KindAdmitted, 1, 0, 0)
	r.Record(KindEnqueued, 1, 1, 0)
	r.Record(KindAdmitted, 2, 0, 0)
	r.Record(KindEnqueued, 2, 2, 0)

	_, resp := serveFlight(t, r, "/debug/flight?trace=2")
	if len(resp.Items) != 2 {
		t.Fatalf("trace filter kept %d events, want 2", len(resp.Items))
	}
	for _, e := range resp.Items {
		if e.Trace != 2 {
			t.Fatalf("trace filter leaked trace %d", e.Trace)
		}
	}

	_, resp = serveFlight(t, r, "/debug/flight?kind=enqueued")
	if len(resp.Items) != 2 {
		t.Fatalf("kind filter kept %d events, want 2", len(resp.Items))
	}

	// Filters compose.
	_, resp = serveFlight(t, r, "/debug/flight?trace=1&kind=enqueued")
	if len(resp.Items) != 1 || resp.Items[0].Trace != 1 || resp.Items[0].Kind != "enqueued" {
		t.Fatalf("composed filter: %+v", resp.Items)
	}

	if code, _ := serveFlight(t, r, "/debug/flight?trace=zzz"); code != 400 {
		t.Fatalf("bad trace id served %d, want 400", code)
	}
	if code, _ := serveFlight(t, r, "/debug/flight?kind=nope"); code != 400 {
		t.Fatalf("unknown kind served %d, want 400", code)
	}
}

func TestHandlerDumpLast(t *testing.T) {
	r := New(Options{Depth: 16, Logger: slog.New(slog.DiscardHandler)})
	if code, _ := serveFlight(t, r, "/debug/flight?dump=last"); code != 404 {
		t.Fatalf("no-dump served %d, want 404", code)
	}

	r.Record(KindApplied, 7, 1, 2)
	r.Dump("unit test", 7)
	r.Record(KindAdmitted, 8, 0, 0) // after the dump: must not appear

	code, resp := serveFlight(t, r, "/debug/flight?dump=last")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Dump == nil || resp.Dump.Reason != "unit test" || resp.Dump.Focus != 7 {
		t.Fatalf("dump header: %+v", resp.Dump)
	}
	if len(resp.Items) != 1 || resp.Items[0].Kind != "applied" {
		t.Fatalf("dump events: %+v", resp.Items)
	}

	// Filters apply to the dump view too.
	_, resp = serveFlight(t, r, "/debug/flight?dump=last&trace=999")
	if len(resp.Items) != 0 {
		t.Fatalf("filtered dump kept %d events, want 0", len(resp.Items))
	}
}
