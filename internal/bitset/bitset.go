// Package bitset implements a fixed-capacity bitset with atomic set
// operations, used by the engine for dense frontiers, changed-vertex sets,
// and the horizon bit-vector that seeds hybrid execution (§4.2 of the
// paper).
package bitset

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/parallel"
)

// Bitset is a fixed-capacity set of uint32 keys. Set/Get are safe for
// concurrent use; Clear/ClearAll are not (call them between parallel
// phases, as the engine does).
type Bitset struct {
	words []uint64
	n     int
}

// New returns a bitset able to hold keys in [0, n).
func New(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity n the set was created with.
func (b *Bitset) Len() int { return b.n }

// Set atomically sets bit i and reports whether it was previously clear.
func (b *Bitset) Set(i uint32) bool {
	w := &b.words[i>>6]
	mask := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// Get atomically reports whether bit i is set.
func (b *Bitset) Get(i uint32) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(uint64(1)<<(i&63)) != 0
}

// Clear clears bit i. Not safe concurrently with Set on the same word.
func (b *Bitset) Clear(i uint32) {
	b.words[i>>6] &^= uint64(1) << (i & 63)
}

// ClearAll zeroes the whole set.
func (b *Bitset) ClearAll() {
	clear(b.words)
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// CountParallel is Count using the parallel runtime; worthwhile for
// multi-million-vertex sets swept every iteration.
func (b *Bitset) CountParallel() int {
	c := parallel.NewCounter()
	parallel.ForWorker(len(b.words), 1024, func(worker, start, end int) {
		var n int64
		for i := start; i < end; i++ {
			n += int64(bits.OnesCount64(b.words[i]))
		}
		c.Add(worker, n)
	})
	return int(c.Sum())
}

// Members appends all set keys to dst in ascending order and returns it.
func (b *Bitset) Members(dst []uint32) []uint32 {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, uint32(wi*64+tz))
			w &^= 1 << tz
		}
	}
	return dst
}

// Range calls fn for every set key in ascending order.
func (b *Bitset) Range(fn func(i uint32)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(uint32(wi*64 + tz))
			w &^= 1 << tz
		}
	}
}

// Or merges other into b (b |= other). Capacities must match. Not safe
// concurrently with writers.
func (b *Bitset) Or(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Bytes reports the heap footprint of the word array, used by the
// memory-overhead accounting for Table 9.
func (b *Bitset) Bytes() int64 { return int64(len(b.words)) * 8 }
