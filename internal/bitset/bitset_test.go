package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

func TestSetGetClear(t *testing.T) {
	b := New(200)
	if b.Get(5) {
		t.Fatal("fresh bitset has bit set")
	}
	if !b.Set(5) {
		t.Fatal("Set of clear bit returned false")
	}
	if b.Set(5) {
		t.Fatal("Set of set bit returned true")
	}
	if !b.Get(5) {
		t.Fatal("bit not visible after Set")
	}
	b.Clear(5)
	if b.Get(5) {
		t.Fatal("bit visible after Clear")
	}
}

func TestCountAndMembers(t *testing.T) {
	b := New(1000)
	keys := []uint32{0, 1, 63, 64, 65, 127, 128, 999}
	for _, k := range keys {
		b.Set(k)
	}
	if got := b.Count(); got != len(keys) {
		t.Fatalf("Count = %d, want %d", got, len(keys))
	}
	if got := b.CountParallel(); got != len(keys) {
		t.Fatalf("CountParallel = %d, want %d", got, len(keys))
	}
	members := b.Members(nil)
	if len(members) != len(keys) {
		t.Fatalf("Members len = %d, want %d", len(members), len(keys))
	}
	for i := range keys {
		if members[i] != keys[i] {
			t.Fatalf("Members[%d] = %d, want %d", i, members[i], keys[i])
		}
	}
}

func TestRangeOrder(t *testing.T) {
	b := New(500)
	for _, k := range []uint32{300, 3, 77} {
		b.Set(k)
	}
	var got []uint32
	b.Range(func(i uint32) { got = append(got, i) })
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Range not ascending: %v", got)
	}
}

func TestConcurrentSetExactlyOneWinner(t *testing.T) {
	b := New(64)
	wins := parallel.NewCounter()
	parallel.ForWorker(10_000, 16, func(worker, start, end int) {
		for i := start; i < end; i++ {
			if b.Set(uint32(i % 64)) {
				wins.Add(worker, 1)
			}
		}
	})
	if got := wins.Sum(); got != 64 {
		t.Fatalf("winners = %d, want 64", got)
	}
	if b.Count() != 64 {
		t.Fatalf("Count = %d, want 64", b.Count())
	}
}

func TestOrClone(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(1)
	b.Set(127)
	c := a.Clone()
	c.Or(b)
	if !c.Get(1) || !c.Get(127) {
		t.Fatal("Or result missing bits")
	}
	if a.Get(127) {
		t.Fatal("Or mutated source clone's origin")
	}
}

func TestClearAll(t *testing.T) {
	b := New(256)
	for i := 0; i < 256; i += 3 {
		b.Set(uint32(i))
	}
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatalf("Count after ClearAll = %d", b.Count())
	}
}

func TestBytes(t *testing.T) {
	if got := New(64).Bytes(); got != 8 {
		t.Fatalf("Bytes(64) = %d, want 8", got)
	}
	if got := New(65).Bytes(); got != 16 {
		t.Fatalf("Bytes(65) = %d, want 16", got)
	}
}

// Property: a bitset behaves like a map[uint32]bool under random
// operations.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 300
		b := New(n)
		ref := map[uint32]bool{}
		ops := int(opsRaw)%500 + 1
		for i := 0; i < ops; i++ {
			k := uint32(rng.Intn(n))
			if rng.Intn(3) == 0 {
				b.Clear(k)
				delete(ref, k)
			} else {
				b.Set(k)
				ref[k] = true
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for k := range ref {
			if !b.Get(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
