package frontier

import (
	"testing"

	"repro/internal/parallel"
)

func TestEmpty(t *testing.T) {
	f := New(100)
	if !f.IsEmpty() || f.Len() != 0 || f.Has(3) {
		t.Fatal("fresh frontier not empty")
	}
}

func TestAddSparseThenDense(t *testing.T) {
	f := New(100)
	if !f.Add(7) || f.Add(7) {
		t.Fatal("Add dedup wrong")
	}
	if f.Dense() {
		t.Fatal("dense too early")
	}
	for v := uint32(0); v < 50; v++ {
		f.Add(v)
	}
	if !f.Dense() {
		t.Fatal("should have flipped dense at 50% occupancy")
	}
	if f.Len() != 50 {
		t.Fatalf("Len = %d, want 50", f.Len())
	}
}

func TestAll(t *testing.T) {
	f := All(64)
	if f.Len() != 64 || !f.Has(0) || !f.Has(63) {
		t.Fatal("All incomplete")
	}
}

func TestFromVertices(t *testing.T) {
	f := FromVertices(10, []uint32{3, 1, 3, 9})
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	vs := f.Vertices()
	want := []uint32{1, 3, 9}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Vertices = %v", vs)
		}
	}
}

func TestVerticesSortedSparse(t *testing.T) {
	f := New(1000)
	for _, v := range []uint32{900, 5, 300} {
		f.Add(v)
	}
	vs := f.Vertices()
	if len(vs) != 3 || vs[0] != 5 || vs[1] != 300 || vs[2] != 900 {
		t.Fatalf("Vertices = %v", vs)
	}
}

func TestAddAtomicConcurrent(t *testing.T) {
	f := New(512)
	news := parallel.NewCounter()
	parallel.ForWorker(50_000, 64, func(worker, start, end int) {
		for i := start; i < end; i++ {
			if f.AddAtomic(uint32(i % 512)) {
				news.Add(worker, 1)
			}
		}
	})
	if news.Sum() != 512 || f.Len() != 512 {
		t.Fatalf("news=%d len=%d, want 512/512", news.Sum(), f.Len())
	}
}

func TestReset(t *testing.T) {
	f := New(64)
	f.Add(1)
	f.AddAtomic(2)
	f.Reset()
	if !f.IsEmpty() || f.Has(1) || f.Has(2) || f.Dense() {
		t.Fatal("Reset incomplete")
	}
	f.Add(3)
	if f.Len() != 1 {
		t.Fatal("frontier unusable after Reset")
	}
}
