// Package frontier implements the Ligra-style VertexSubset used to drive
// selective scheduling: the set of vertices whose values changed in the
// previous iteration, held sparsely (vertex list) or densely (bitset)
// with automatic representation switching.
package frontier

import (
	"sort"
	"sync/atomic"

	"repro/internal/bitset"
)

// denseFraction is the occupancy above which a frontier flips to the
// dense representation (Ligra uses |frontier| + outdegree > |E|/20; we
// use a simpler vertex-count threshold, adequate at our scales).
const denseFraction = 20

// Frontier is a subset of [0, n). Build one with New, populate with Add
// (single-threaded) or AddAtomic (parallel), then iterate. A frontier is
// reusable via Reset.
type Frontier struct {
	n      int
	dense  atomic.Bool
	sparse []uint32
	bits   *bitset.Bitset
}

// New returns an empty frontier over [0, n).
func New(n int) *Frontier {
	return &Frontier{n: n, bits: bitset.New(n)}
}

// All returns a frontier containing every vertex.
func All(n int) *Frontier {
	f := New(n)
	f.dense.Store(true)
	for v := 0; v < n; v++ {
		f.bits.Set(uint32(v))
	}
	return f
}

// FromVertices returns a frontier holding exactly vs (duplicates ignored).
func FromVertices(n int, vs []uint32) *Frontier {
	f := New(n)
	for _, v := range vs {
		f.AddAtomic(v)
	}
	return f
}

// Len returns the number of vertices in the subset.
func (f *Frontier) Len() int {
	if f.dense.Load() {
		return f.bits.Count()
	}
	return len(f.sparse)
}

// Universe returns n.
func (f *Frontier) Universe() int { return f.n }

// IsEmpty reports whether the subset is empty.
func (f *Frontier) IsEmpty() bool { return f.Len() == 0 }

// Has reports membership.
func (f *Frontier) Has(v uint32) bool { return f.bits.Get(v) }

// AddAtomic inserts v; safe for concurrent use. Returns true if v was new.
func (f *Frontier) AddAtomic(v uint32) bool {
	if !f.bits.Set(v) {
		return false
	}
	// Sparse list appends under no lock would race; dense mode is the
	// concurrent-friendly representation. The CAS elects a single flipper
	// to drop the sparse list; membership stays exact via the bitset and
	// Vertices() recovers the ordered list.
	if f.dense.CompareAndSwap(false, true) {
		f.sparse = nil
	}
	return true
}

// Add inserts v from a single goroutine, keeping the sparse list when
// below the density threshold.
func (f *Frontier) Add(v uint32) bool {
	if !f.bits.Set(v) {
		return false
	}
	if f.dense.Load() {
		return true
	}
	f.sparse = append(f.sparse, v)
	if len(f.sparse)*denseFraction > f.n {
		f.dense.Store(true)
		f.sparse = nil
	}
	return true
}

// Dense reports whether the frontier is in dense mode.
func (f *Frontier) Dense() bool { return f.dense.Load() }

// Vertices returns the members in ascending order. In sparse mode it
// sorts in place; in dense mode it materializes from the bitset.
func (f *Frontier) Vertices() []uint32 {
	if f.dense.Load() {
		return f.bits.Members(nil)
	}
	sort.Slice(f.sparse, func(i, j int) bool { return f.sparse[i] < f.sparse[j] })
	return f.sparse
}

// Bits exposes the membership bitset (valid in both modes).
func (f *Frontier) Bits() *bitset.Bitset { return f.bits }

// Reset empties the frontier for reuse.
func (f *Frontier) Reset() {
	f.bits.ClearAll()
	f.sparse = f.sparse[:0]
	f.dense.Store(false)
}
