package admission

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// learn feeds the controller enough identical apply samples that the
// EWMA converges on the given rate (weight edges per apply, each taking
// weight/rate seconds). The samples charge and release their own
// backlog so the controller ends where it started.
func learn(c *Controller, rate float64, weight, n int) {
	took := time.Duration(float64(weight) / rate * float64(time.Second))
	for i := 0; i < n; i++ {
		c.Admit(weight, time.Time{})
		c.ApplyComplete(weight, took)
	}
}

func TestAdmitWithinBudget(t *testing.T) {
	c := New(Config{SLO: 100 * time.Millisecond, InitialRate: 10_000})
	// 100 edges at 10k edges/s ≈ 10ms — well inside an 80ms budget.
	dec := c.Admit(100, time.Time{})
	if !dec.Admitted {
		t.Fatalf("Admit(100) refused: %+v", dec)
	}
	if c.Backlog() != 100 {
		t.Fatalf("backlog = %d after admit, want 100", c.Backlog())
	}
	c.Cancel(100)
	if c.Backlog() != 0 {
		t.Fatalf("backlog = %d after cancel, want 0", c.Backlog())
	}
}

func TestShedWhenBacklogExceedsSLO(t *testing.T) {
	c := New(Config{SLO: 100 * time.Millisecond, InitialRate: 10_000, Headroom: 1})
	// Budget fits a 1000-edge backlog ahead of a submission. The first
	// admission sees an empty queue — always admissible — and pushes the
	// backlog past the budget, so the next one sheds.
	if dec := c.Admit(1_400, time.Time{}); !dec.Admitted {
		t.Fatalf("first admit refused: %+v", dec)
	}
	dec := c.Admit(500, time.Time{})
	if dec.Admitted {
		t.Fatalf("overflow admit accepted: %+v", dec)
	}
	if dec.RetryAfter <= 0 {
		t.Fatalf("shed RetryAfter = %v, want > 0", dec.RetryAfter)
	}
	// The refused weight was not charged.
	if c.Backlog() != 1_400 {
		t.Fatalf("backlog = %d after shed, want 1400", c.Backlog())
	}
	if c.Shed() != 1 || c.Decisions() != 2 {
		t.Fatalf("Shed/Decisions = %d/%d, want 1/2", c.Shed(), c.Decisions())
	}
	// RetryAfter ≈ excess/rate = 400 edges / 10k eps = 40ms.
	if dec.RetryAfter < 20*time.Millisecond || dec.RetryAfter > 80*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ≈40ms", dec.RetryAfter)
	}
}

func TestDeadlineTightensBudget(t *testing.T) {
	c := New(Config{SLO: time.Second, InitialRate: 10_000, Headroom: 1})
	// 500 edges ≈ 50ms estimated wait: fine for the SLO, impossible for
	// a deadline 10ms out.
	if dec := c.Admit(500, time.Time{}); !dec.Admitted {
		t.Fatalf("SLO-budget admit refused: %+v", dec)
	}
	dec := c.Admit(500, time.Now().Add(10*time.Millisecond))
	if dec.Admitted {
		t.Fatalf("doomed-deadline admit accepted: %+v", dec)
	}
	if dec.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", dec.RetryAfter)
	}
}

func TestExpiredDeadlineShedsImmediately(t *testing.T) {
	c := New(Config{SLO: time.Second, InitialRate: 10_000})
	dec := c.Admit(1, time.Now().Add(-time.Second))
	if dec.Admitted {
		t.Fatal("admit with expired deadline accepted")
	}
	if dec.RetryAfter < DefaultMinRetryAfter {
		t.Fatalf("RetryAfter = %v, want >= MinRetryAfter", dec.RetryAfter)
	}
}

func TestThroughputEWMAConverges(t *testing.T) {
	c := New(Config{SLO: 100 * time.Millisecond, InitialRate: 1_000_000})
	learn(c, 2_000, 100, 50)
	if r := c.Rate(); r < 1_500 || r > 2_500 {
		t.Fatalf("rate after 50 samples at 2k eps = %v, want ≈2000", r)
	}
	// The learned (much lower) rate now sheds behind a backlog the
	// optimistic initial rate would have called instant: 2k edges of
	// backlog ≈ 1s of queue wait >> the 80ms budget.
	if dec := c.Admit(2_000, time.Time{}); !dec.Admitted {
		t.Fatalf("empty-queue admit refused: %+v", dec)
	}
	if dec := c.Admit(1, time.Time{}); dec.Admitted {
		t.Fatal("admit behind a 1s backlog accepted against an 80ms budget")
	}
}

func TestGovernorWidensAndNarrows(t *testing.T) {
	c := New(Config{
		SLO:         100 * time.Millisecond,
		FloorEdges:  100,
		CeilEdges:   1600,
		InitialRate: 10_000,
		Headroom:    1,
	})
	if got := c.Cap(); got != 100 {
		t.Fatalf("initial cap = %d, want floor 100", got)
	}
	// Deep backlog: admit most of the budget, then complete a tiny
	// apply — est wait stays above widenFrac·SLO, so the cap doubles.
	if dec := c.Admit(900, time.Time{}); !dec.Admitted {
		t.Fatalf("backlog admit refused: %+v", dec)
	}
	took := time.Duration(float64(10) / 10_000 * float64(time.Second))
	caps := []int{200, 400, 800, 1600, 1600}
	for i, want := range caps {
		c.Admit(10, time.Time{})
		c.ApplyComplete(10, took)
		if got := c.Cap(); got != want {
			t.Fatalf("cap after widen step %d = %d, want %d", i, got, want)
		}
	}
	// Drain the backlog: est wait drops under narrowFrac·SLO and the
	// cap halves back to the floor.
	c.Cancel(900)
	for i := 0; i < 10; i++ {
		c.Admit(10, time.Time{})
		c.ApplyComplete(10, took)
	}
	if got := c.Cap(); got != 100 {
		t.Fatalf("cap after drain = %d, want floor 100", got)
	}
}

func TestSetCapClamps(t *testing.T) {
	c := New(Config{FloorEdges: 100, CeilEdges: 1000})
	c.SetCap(5)
	if got := c.Cap(); got != 100 {
		t.Fatalf("SetCap(5) → %d, want floor 100", got)
	}
	c.SetCap(1 << 20)
	if got := c.Cap(); got != 1000 {
		t.Fatalf("SetCap(1M) → %d, want ceil 1000", got)
	}
	c.SetCap(500)
	if got := c.Cap(); got != 500 {
		t.Fatalf("SetCap(500) → %d", got)
	}
}

func TestOverloadHysteresis(t *testing.T) {
	var mu sync.Mutex
	var transitions []bool
	var causes []error
	c := New(Config{
		SLO:         100 * time.Millisecond,
		InitialRate: 10_000,
		Headroom:    1,
		OnStateChange: func(over bool, cause error) {
			mu.Lock()
			transitions = append(transitions, over)
			causes = append(causes, cause)
			mu.Unlock()
		},
	})
	if c.Overloaded() {
		t.Fatal("fresh controller overloaded")
	}
	c.Admit(1_100, time.Time{})
	c.Admit(500, time.Time{}) // shed: enters overloaded
	c.Admit(500, time.Time{}) // shed again: no second transition
	if !c.Overloaded() {
		t.Fatal("not overloaded after shed")
	}
	// Drain: est wait falls under exitFrac·SLO → leaves overloaded.
	took := time.Duration(float64(300) / 10_000 * float64(time.Second))
	c.ApplyComplete(300, took)
	c.ApplyComplete(300, took)
	c.ApplyComplete(300, took)
	if c.Overloaded() {
		t.Fatalf("still overloaded with backlog %d", c.Backlog())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Fatalf("transitions = %v, want [true false]", transitions)
	}
	if causes[0] == nil || !strings.Contains(causes[0].Error(), "admission shedding") {
		t.Fatalf("enter cause = %v, want shedding cause", causes[0])
	}
	if causes[1] != nil {
		t.Fatalf("exit cause = %v, want nil", causes[1])
	}
}

func TestNilControllerIsInert(t *testing.T) {
	var c *Controller
	if dec := c.Admit(100, time.Time{}); !dec.Admitted {
		t.Fatal("nil controller refused a submission")
	}
	c.Cancel(100)
	c.ApplyComplete(100, time.Millisecond)
	c.SetCap(10)
	if c.Cap() != 0 || c.Backlog() != 0 || c.Overloaded() || c.Shed() != 0 ||
		c.Decisions() != 0 || c.Rate() != 0 || c.EstimatedWait() != 0 || c.SLO() != 0 {
		t.Fatal("nil controller reported non-zero state")
	}
}

func TestMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{SLO: 100 * time.Millisecond, InitialRate: 10_000, Headroom: 1, Metrics: reg})
	c.Admit(1_100, time.Time{})
	c.Admit(500, time.Time{}) // shed
	c.ApplyComplete(900, 90*time.Millisecond)

	snap := reg.Snapshot()
	if got := snap.Counters[MetricDecisions]; got != 2 {
		t.Fatalf("%s = %d, want 2", MetricDecisions, got)
	}
	if got := snap.Counters[MetricShed]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricShed, got)
	}
	if got := snap.Gauges[MetricBatchCap]; got != float64(DefaultFloorEdges) {
		t.Fatalf("%s = %v, want %d", MetricBatchCap, got, DefaultFloorEdges)
	}
	if got := snap.Gauges[MetricThroughput]; got <= 0 {
		t.Fatalf("%s = %v, want > 0", MetricThroughput, got)
	}
}

func TestConcurrentAdmitRace(t *testing.T) {
	c := New(Config{SLO: 50 * time.Millisecond, InitialRate: 100_000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if dec := c.Admit(10, time.Time{}); dec.Admitted {
					if i%2 == 0 {
						c.ApplyComplete(10, 100*time.Microsecond)
					} else {
						c.Cancel(10)
					}
				}
				c.Cap()
				c.EstimatedWait()
			}
		}()
	}
	wg.Wait()
	if bl := c.Backlog(); bl != 0 {
		t.Fatalf("backlog = %d after balanced admit/release, want 0", bl)
	}
}

// The errors.Is plumbing for shed submissions is covered in the serve
// package, where the sentinels live; here we only pin that a refusal
// never reports a zero RetryAfter.
func TestRefusalAlwaysCarriesRetryAfter(t *testing.T) {
	c := New(Config{SLO: time.Millisecond, InitialRate: 1, Headroom: 1})
	// Seed a backlog that takes ~1000s to drain at 1 edge/s; everything
	// behind it is hopeless against the 1ms SLO.
	if dec := c.Admit(1000, time.Time{}); !dec.Admitted {
		t.Fatalf("empty-queue admit refused: %+v", dec)
	}
	for i := 0; i < 5; i++ {
		dec := c.Admit(1000, time.Time{})
		if dec.Admitted {
			t.Fatal("hopeless submission admitted")
		}
		if dec.RetryAfter <= 0 {
			t.Fatalf("RetryAfter = %v on refusal %d", dec.RetryAfter, i)
		}
	}
}
