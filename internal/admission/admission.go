// Package admission turns the serve layer's telemetry into a control
// loop: instead of letting a sustained burst pile work into the
// mutation queue until producers block into a doomed wait, a Controller
// continuously estimates the apply loop's throughput (edges/second,
// from recent apply durations) and the backlog ahead of a new
// submission, and sheds load *before* the queue whenever the estimated
// time-to-apply cannot fit the configured SLO or the caller's context
// deadline. Shed submissions fail fast with an actionable hint — a
// RetryAfter duration derived from the drain rate — so clients back off
// instead of stacking up.
//
// The same signals drive an adaptive coalescing governor: the merged
// batch edge cap floats between a floor and a ceiling, widening while
// the backlog is deep (bursts amortize into fewer refine passes) and
// narrowing once the queue drains (small batches keep per-apply latency
// minimal). This replaces the static MaxBatchEdges knob the paper's §6
// batching discussion leaves fixed.
//
// A Controller also tracks a coarse overloaded bit with hysteresis —
// entered on the first shed, left once the estimated wait falls back
// under a quarter of the SLO — which the serve layer maps onto the
// health tracker's Overloaded state: reads and writes both still serve,
// but admission is throttled.
//
// All methods are safe for concurrent use and nil-safe: a nil
// *Controller admits everything and adjusts nothing, mirroring the obs
// conventions so call sites stay unconditional.
package admission

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Defaults for zero-valued Config fields.
const (
	// DefaultSLO bounds the estimated queue wait a submission may face.
	DefaultSLO = 500 * time.Millisecond
	// DefaultFloorEdges is the governor's minimum coalescing cap.
	DefaultFloorEdges = 256
	// DefaultCeilEdges is the governor's maximum coalescing cap.
	DefaultCeilEdges = 1 << 16
	// DefaultInitialRate is the assumed apply throughput (edges/second)
	// before the first sample. Deliberately conservative: an optimistic
	// guess over-admits into a queue whose real drain rate is unknown,
	// while a pessimistic one sheds a few early requests with a short
	// RetryAfter and then learns.
	DefaultInitialRate = 50_000
	// DefaultHeadroom is the fraction of the SLO budget the controller
	// fills before shedding, absorbing estimation error (EWMA lag, GC
	// pauses) so admitted batches still land inside the SLO.
	DefaultHeadroom = 0.8
	// DefaultAlpha is the EWMA smoothing factor for throughput samples.
	DefaultAlpha = 0.3
	// DefaultMinRetryAfter floors the hint on shed submissions so a
	// client never busy-loops on a zero backoff.
	DefaultMinRetryAfter = time.Millisecond
)

// Governor thresholds, as fractions of the SLO: the cap widens while
// the estimated wait is above widenFrac·SLO, narrows below
// narrowFrac·SLO, and the overloaded bit clears below exitFrac·SLO.
// The gap between widen and narrow is the hysteresis band that keeps
// the cap from oscillating on a steady stream.
const (
	widenFrac  = 0.5
	narrowFrac = 0.125
	exitFrac   = 0.25
)

// Config parameterizes a Controller. The zero value of every field is
// replaced by the package default.
type Config struct {
	// SLO is the target bound on a submission's estimated queue wait:
	// admission refuses work it cannot start applying within this
	// budget (scaled by Headroom). Default DefaultSLO.
	SLO time.Duration

	// FloorEdges and CeilEdges bound the adaptive coalescing cap.
	// Defaults DefaultFloorEdges and DefaultCeilEdges.
	FloorEdges int
	CeilEdges  int

	// InitialCap seeds the adaptive cap, clamped into [floor, ceil].
	// 0 means the floor; the serve layer passes its static
	// MaxBatchEdges so enabling admission starts from familiar ground.
	InitialCap int

	// InitialRate is the assumed throughput (edges/second) before the
	// first apply sample. Default DefaultInitialRate.
	InitialRate float64

	// Headroom is the fraction of the wait budget admission will fill
	// (0 < Headroom <= 1). Default DefaultHeadroom.
	Headroom float64

	// Alpha is the EWMA smoothing factor for throughput samples in
	// (0, 1]: higher tracks faster, lower smooths harder. Default
	// DefaultAlpha.
	Alpha float64

	// MinRetryAfter floors the RetryAfter hint on shed submissions.
	// Default DefaultMinRetryAfter.
	MinRetryAfter time.Duration

	// OnStateChange, when non-nil, is called after the controller
	// enters (true) or leaves (false) the overloaded state, outside the
	// controller's lock. The cause names the shed decision that tripped
	// it. The serve layer uses this to drive the health tracker.
	OnStateChange func(overloaded bool, cause error)

	// Metrics, when non-nil, receives the graphbolt_admission_* series.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.SLO <= 0 {
		c.SLO = DefaultSLO
	}
	if c.FloorEdges <= 0 {
		c.FloorEdges = DefaultFloorEdges
	}
	if c.CeilEdges <= 0 {
		c.CeilEdges = DefaultCeilEdges
	}
	if c.CeilEdges < c.FloorEdges {
		c.CeilEdges = c.FloorEdges
	}
	if c.InitialCap <= 0 {
		c.InitialCap = c.FloorEdges
	}
	if c.InitialRate <= 0 {
		c.InitialRate = DefaultInitialRate
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = DefaultHeadroom
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.MinRetryAfter <= 0 {
		c.MinRetryAfter = DefaultMinRetryAfter
	}
	return c
}

// Decision reports one Admit evaluation.
type Decision struct {
	// Admitted is whether the submission may enqueue. When true the
	// controller has already charged the submission's weight to the
	// backlog; a caller that then fails to enqueue must Cancel it.
	Admitted bool
	// EstimatedWait is the controller's estimate of how long the
	// submission would wait before its apply call starts, given the
	// current backlog and throughput.
	EstimatedWait time.Duration
	// RetryAfter, on a refusal, is the suggested client backoff: the
	// estimated time for enough backlog to drain that an equally sized
	// submission would fit the budget. Always positive on a refusal.
	RetryAfter time.Duration
}

// Controller is the admission control loop's state: a throughput
// estimate, the edge-weight backlog ahead of new submissions, the
// adaptive coalescing cap, and the overloaded bit. Construct with New.
type Controller struct {
	cfg Config

	cap       atomic.Int64 // current coalescing cap, read lock-free per pop
	shed      atomic.Int64
	decisions atomic.Int64

	mu         sync.Mutex
	rate       float64 // EWMA apply throughput, edges/second
	backlog    int64   // edge weight admitted but not yet applied
	overloaded bool

	met metrics
}

type metrics struct {
	decisions  *obs.Counter
	shed       *obs.Counter
	estWait    *obs.Gauge
	capGauge   *obs.Gauge
	throughput *obs.Gauge
	backlog    *obs.Gauge
}

// Metric names exported by this package.
const (
	MetricDecisions  = "graphbolt_admission_decisions_total"
	MetricShed       = "graphbolt_admission_shed_total"
	MetricEstWait    = "graphbolt_admission_estimated_wait_seconds"
	MetricBatchCap   = "graphbolt_admission_batch_cap_edges"
	MetricThroughput = "graphbolt_admission_throughput_edges_per_second"
	MetricBacklog    = "graphbolt_admission_backlog_edges"
)

// RegisterMetrics pre-creates the admission metric set in r so the
// exposition endpoint shows every series (at zero) before the first
// controller is constructed. Idempotent, nil-safe.
func RegisterMetrics(r *obs.Registry) {
	newMetrics(r)
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		decisions: r.Counter(MetricDecisions,
			"Admission decisions evaluated (admitted + shed)."),
		shed: r.Counter(MetricShed,
			"Submissions refused with ErrOverloaded before the queue."),
		estWait: r.Gauge(MetricEstWait,
			"Estimated queue wait for the next submission, from backlog and throughput."),
		capGauge: r.Gauge(MetricBatchCap,
			"Current adaptive coalescing cap (edges per merged batch)."),
		throughput: r.Gauge(MetricThroughput,
			"EWMA apply throughput the controller is working from."),
		backlog: r.Gauge(MetricBacklog,
			"Edge weight admitted but not yet applied."),
	}
}

// New builds a Controller from cfg, applying package defaults to every
// zero field.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, rate: cfg.InitialRate, met: newMetrics(cfg.Metrics)}
	c.cap.Store(int64(clamp(cfg.InitialCap, cfg.FloorEdges, cfg.CeilEdges)))
	c.met.capGauge.Set(float64(c.cap.Load()))
	c.met.throughput.Set(cfg.InitialRate)
	return c
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SLO returns the configured wait budget.
func (c *Controller) SLO() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.SLO
}

// Cap returns the current adaptive coalescing cap. Lock-free; the serve
// loop reads it at every dequeue.
func (c *Controller) Cap() int {
	if c == nil {
		return 0
	}
	return int(c.cap.Load())
}

// SetCap resets the adaptive cap to n, clamped into [floor, ceil]. The
// governor keeps floating it from there.
func (c *Controller) SetCap(n int) {
	if c == nil {
		return
	}
	n = clamp(n, c.cfg.FloorEdges, c.cfg.CeilEdges)
	c.cap.Store(int64(n))
	c.met.capGauge.Set(float64(n))
}

// Admit decides whether a submission of the given edge weight may
// enqueue. deadline, when nonzero, is the caller's context deadline;
// the wait budget is the smaller of the headroom-scaled SLO and the
// time remaining until it. On admission the weight is charged to the
// backlog immediately — call Cancel if the enqueue subsequently fails,
// or rely on ApplyComplete/Cancel from the apply path otherwise.
func (c *Controller) Admit(weight int, deadline time.Time) Decision {
	if c == nil {
		return Decision{Admitted: true}
	}
	if weight < 1 {
		weight = 1
	}
	now := time.Now()
	budget := time.Duration(float64(c.cfg.SLO) * c.cfg.Headroom)
	if !deadline.IsZero() {
		if rem := deadline.Sub(now); rem < budget {
			budget = rem
		}
	}

	c.mu.Lock()
	// The SLO budget gates on queue wait alone (see estWaitLocked); the
	// caller's explicit deadline additionally gates on completion — a
	// submission whose backlog-plus-own apply time overruns the time the
	// caller has left is doomed, so fail it fast.
	est := c.estWaitLocked(0)
	refused := est > budget
	if !deadline.IsZero() {
		if total := c.estWaitLocked(int64(weight)); total > deadline.Sub(now) {
			refused = true
			if total > est {
				est = total
			}
		}
	}
	var dec Decision
	if refused {
		dec = Decision{EstimatedWait: est, RetryAfter: c.retryAfterLocked(budget)}
	} else {
		c.backlog += int64(weight)
		dec = Decision{Admitted: true, EstimatedWait: est}
	}
	shedCause := c.noteDecisionLocked(dec, est)
	c.mu.Unlock()

	c.decisions.Add(1)
	c.met.decisions.Inc()
	c.met.estWait.Set(est.Seconds())
	if !dec.Admitted {
		c.shed.Add(1)
		c.met.shed.Inc()
	} else {
		c.met.backlog.Set(float64(c.Backlog()))
	}
	if shedCause != nil && c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(true, shedCause)
	}
	return dec
}

// estWaitLocked estimates the queue wait a submission would face:
// extra weight (0 from Admit) plus the backlog already admitted ahead
// of it, over the drain rate. The submission's OWN weight is
// deliberately excluded — admission gates on the wait shedding can
// actually change; a batch whose own apply time exceeds the budget
// would otherwise shed forever on an empty queue (waiting never
// shrinks the batch), freezing the rate EWMA and livelocking a
// retrying producer.
func (c *Controller) estWaitLocked(weight int64) time.Duration {
	return time.Duration(float64(c.backlog+weight) / c.rate * float64(time.Second))
}

// retryAfterLocked estimates when a retry would fit the budget: the
// time to drain the excess backlog, floored at MinRetryAfter and
// capped at 8×SLO so a huge transient backlog still yields a usable
// hint.
func (c *Controller) retryAfterLocked(budget time.Duration) time.Duration {
	fits := int64(budget.Seconds() * c.rate) // backlog that would fit the budget
	excess := c.backlog - fits
	after := time.Duration(float64(excess) / c.rate * float64(time.Second))
	if after < c.cfg.MinRetryAfter {
		after = c.cfg.MinRetryAfter
	}
	if max := 8 * c.cfg.SLO; after > max {
		after = max
	}
	return after
}

// noteDecisionLocked updates the overloaded bit on a shed; it returns
// the cause to report when this decision entered the overloaded state.
func (c *Controller) noteDecisionLocked(dec Decision, est time.Duration) error {
	if dec.Admitted || c.overloaded {
		return nil
	}
	c.overloaded = true
	return fmt.Errorf("admission shedding: estimated wait %v exceeds budget (SLO %v)",
		est.Round(time.Millisecond), c.cfg.SLO)
}

// Cancel returns admitted-but-never-applied weight to the pool: a
// failed enqueue, a quarantined batch, or a batch failed at shutdown.
func (c *Controller) Cancel(weight int) {
	if c == nil {
		return
	}
	if weight < 1 {
		weight = 1
	}
	c.mu.Lock()
	c.backlog -= int64(weight)
	if c.backlog < 0 {
		c.backlog = 0
	}
	bl := c.backlog
	c.mu.Unlock()
	c.met.backlog.Set(float64(bl))
}

// ApplyComplete reports one finished apply call: the merged batch's
// edge weight and how long the apply took. It feeds the throughput
// EWMA, releases the weight from the backlog, runs the coalescing
// governor, and clears the overloaded bit once the estimated wait has
// fallen back under exitFrac·SLO.
func (c *Controller) ApplyComplete(weight int, took time.Duration) {
	if c == nil {
		return
	}
	if weight < 1 {
		weight = 1
	}
	if took <= 0 {
		took = time.Microsecond
	}
	sample := float64(weight) / took.Seconds()

	c.mu.Lock()
	c.rate = c.cfg.Alpha*sample + (1-c.cfg.Alpha)*c.rate
	c.backlog -= int64(weight)
	if c.backlog < 0 {
		c.backlog = 0
	}
	est := c.estWaitLocked(0)

	// Governor: widen under pressure, narrow once drained; the band
	// between the thresholds holds the cap steady.
	cap := int(c.cap.Load())
	switch {
	case est > time.Duration(widenFrac*float64(c.cfg.SLO)):
		cap = clamp(cap*2, c.cfg.FloorEdges, c.cfg.CeilEdges)
	case est < time.Duration(narrowFrac*float64(c.cfg.SLO)):
		cap = clamp(cap/2, c.cfg.FloorEdges, c.cfg.CeilEdges)
	}
	c.cap.Store(int64(cap))

	left := false
	if c.overloaded && est <= time.Duration(exitFrac*float64(c.cfg.SLO)) {
		c.overloaded = false
		left = true
	}
	rate, bl := c.rate, c.backlog
	c.mu.Unlock()

	c.met.throughput.Set(rate)
	c.met.backlog.Set(float64(bl))
	c.met.estWait.Set(est.Seconds())
	c.met.capGauge.Set(float64(cap))
	if left && c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(false, nil)
	}
}

// EstimatedWait returns the current estimate of the wait a minimal
// submission would face.
func (c *Controller) EstimatedWait() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.estWaitLocked(0)
}

// Rate returns the current throughput estimate (edges/second).
func (c *Controller) Rate() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rate
}

// Backlog returns the edge weight admitted but not yet applied.
func (c *Controller) Backlog() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backlog
}

// Overloaded reports whether the controller is currently shedding with
// hysteresis engaged.
func (c *Controller) Overloaded() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overloaded
}

// Shed returns the number of submissions refused so far.
func (c *Controller) Shed() int64 {
	if c == nil {
		return 0
	}
	return c.shed.Load()
}

// Decisions returns the number of Admit evaluations so far.
func (c *Controller) Decisions() int64 {
	if c == nil {
		return 0
	}
	return c.decisions.Load()
}
