package replica

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/wal"
)

func rec(seq uint64) wal.Record {
	return wal.Record{Seq: seq, Batch: graph.Batch{
		Add: []graph.Edge{{From: graph.VertexID(seq), To: graph.VertexID(seq + 1), Weight: 1}},
	}}
}

// TestLogAppendSemantics: in-order appends accumulate; duplicates and
// gaps are dropped; retention trimming advances the floor.
func TestLogAppendSemantics(t *testing.T) {
	l := NewLog(LogOptions{Retain: 3})
	for seq := uint64(1); seq <= 5; seq++ {
		l.Append(rec(seq))
	}
	l.Append(rec(4)) // duplicate: ignored
	l.Append(rec(9)) // gap: dropped, not stored
	if got := l.Last(); got != 5 {
		t.Fatalf("Last = %d, want 5", got)
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3 (retention)", got)
	}
	if got := l.Floor(); got != 2 {
		t.Fatalf("Floor = %d, want 2 (seqs 1-2 trimmed)", got)
	}
}

// TestLogSetFloor: a checkpoint-covered prefix declared via SetFloor is
// unavailable, and appends continue above it.
func TestLogSetFloor(t *testing.T) {
	l := NewLog(LogOptions{})
	l.SetFloor(10)
	l.Append(rec(11))
	l.Append(rec(12))
	if got := l.Floor(); got != 10 {
		t.Fatalf("Floor = %d, want 10", got)
	}
	if got, want := l.Last(), uint64(12); got != want {
		t.Fatalf("Last = %d, want %d", got, want)
	}
	if got := l.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// drainStream reads messages from an open stream response until n
// records arrive or the context expires.
func drainStream(t *testing.T, body io.Reader, n int) []wal.Record {
	t.Helper()
	wr := newWireReader(body)
	if _, err := wr.hello(); err != nil {
		t.Fatalf("hello: %v", err)
	}
	var recs []wal.Record
	for len(recs) < n {
		msg, err := wr.next()
		if err != nil {
			t.Fatalf("next after %d records: %v", len(recs), err)
		}
		if msg.kind == kindRecord {
			recs = append(recs, msg.rec)
		}
	}
	return recs
}

// TestLogHandlerStreamsAndResumes: a client sees the backlog, then
// live appends; a second client resuming from seq N sees only N+1
// onward.
func TestLogHandlerStreamsAndResumes(t *testing.T) {
	l := NewLog(LogOptions{Heartbeat: 5 * time.Millisecond})
	defer l.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		l.Append(rec(seq))
	}
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		l.Append(rec(4))
		l.Append(rec(5))
	}()
	recs := drainStream(t, resp.Body, 5)
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
	}

	resp2, err := ts.Client().Get(ts.URL + "?from=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	recs2 := drainStream(t, resp2.Body, 2)
	if recs2[0].Seq != 4 || recs2[1].Seq != 5 {
		t.Fatalf("resume records = %d,%d, want 4,5", recs2[0].Seq, recs2[1].Seq)
	}
}

// TestLogHandlerHeartbeats: an idle stream carries heartbeats with the
// leader position instead of going silent.
func TestLogHandlerHeartbeats(t *testing.T) {
	l := NewLog(LogOptions{Heartbeat: 2 * time.Millisecond})
	defer l.Close()
	l.Append(rec(1))
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "?from=1") // caught up: nothing to send
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	wr := newWireReader(resp.Body)
	if _, err := wr.hello(); err != nil {
		t.Fatal(err)
	}
	msg, err := wr.next()
	if err != nil {
		t.Fatal(err)
	}
	if msg.kind != kindHeartbeat || msg.leaderSeq != 1 {
		t.Fatalf("got kind %q leaderSeq %d, want heartbeat at 1", msg.kind, msg.leaderSeq)
	}
}

// TestLogHandlerStatusCodes: resume below the floor is 410 with the
// compaction detail, malformed from is 400, non-GET is 405.
func TestLogHandlerStatusCodes(t *testing.T) {
	l := NewLog(LogOptions{})
	defer l.Close()
	l.SetFloor(10)
	l.Append(rec(11))
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		method, url string
		want        int
	}{
		{http.MethodGet, "?from=3", http.StatusGone},
		{http.MethodGet, "?from=notanumber", http.StatusBadRequest},
		{http.MethodPost, "", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.url, nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %q: status %d, want %d", tc.method, tc.url, resp.StatusCode, tc.want)
		}
	}
}

// TestFollowerTerminalOnCompaction: a follower whose resume position
// fell below the leader's floor — on a leader that serves no
// checkpoint to re-seed from — stops with ErrLogCompacted instead of
// retrying forever.
func TestFollowerTerminalOnCompaction(t *testing.T) {
	l := NewLog(LogOptions{})
	defer l.Close()
	l.SetFloor(10)
	mux := http.NewServeMux()
	mux.Handle("GET /v1/wal", l.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	eng := newTestEngine(t, 4)
	f, err := NewFollower(eng, nil, ts.URL, FollowerOptions{Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = f.Run(ctx)
	if ctx.Err() != nil {
		t.Fatal("Run did not return before the deadline")
	}
	if !errors.Is(err, ErrLogCompacted) {
		t.Fatalf("Run = %v, want ErrLogCompacted", err)
	}
}
