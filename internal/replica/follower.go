package replica

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/serve"
	"repro/internal/wal"
)

// RecordApplier is the follower's replay sink: ApplyRecord replays one
// leader journal record, Seq reports the last applied sequence number
// (the resume position). durable.Engine implements it directly — a
// durable follower re-journals every record locally, so a restart
// resumes from disk at the exact sequence it stopped at. An in-memory
// follower uses the applier returned by NewEngineApplier and restarts
// from zero.
//
// The Follower guarantees ApplyRecord is called with strictly
// consecutive sequence numbers from a single goroutine.
type RecordApplier interface {
	ApplyRecord(rec wal.Record) error
	Seq() uint64
}

// engineApplier adapts a bare core.Engine as a RecordApplier for
// in-memory (non-durable) followers.
type engineApplier[V, A any] struct {
	eng *core.Engine[V, A]
	seq uint64
}

// NewEngineApplier wraps a core engine as a RecordApplier starting at
// sequence 0 (a fresh follower that needs the full stream).
func NewEngineApplier[V, A any](eng *core.Engine[V, A]) RecordApplier {
	return &engineApplier[V, A]{eng: eng}
}

func (a *engineApplier[V, A]) ApplyRecord(rec wal.Record) error {
	if rec.Seq != a.seq+1 {
		return fmt.Errorf("%w: record seq %d, next expected %d", durable.ErrOutOfOrder, rec.Seq, a.seq+1)
	}
	if _, err := a.eng.ApplyBatch(rec.Batch); err != nil {
		return err
	}
	a.seq = rec.Seq
	return nil
}

func (a *engineApplier[V, A]) Seq() uint64 { return a.seq }

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Client performs the stream requests; nil uses http.DefaultClient.
	// The client's Timeout must be zero — the stream is long-lived.
	Client *http.Client
	// Backoff paces reconnect attempts. The zero value applies the
	// backoff package defaults (20ms base, 5s cap).
	Backoff backoff.Policy
	// Metrics, when non-nil, receives the graphbolt_replica_* series.
	Metrics *obs.Registry
	// QueryCacheBytes bounds the follower's per-generation query cache,
	// exactly like ServerOptions.QueryCacheBytes. 0 disables caching.
	QueryCacheBytes int64
	// Logger receives reconnect and stream-fault warnings; nil uses
	// slog.Default().
	Logger *slog.Logger
	// OnApply, when non-nil, is called from the replay goroutine after
	// every applied record. Keep it fast.
	OnApply func(rec wal.Record)
}

// Follower tails a leader's replication stream and replays it into a
// local engine, exposing the same read surface a Server does: the BSP
// guarantee means its SnapshotAt(g) is the leader's SnapshotAt(g) for
// every generation it has acked (g = applied seq + 1; see DESIGN.md).
//
// The replay goroutine (Run) is the only writer; every read method is
// safe from any goroutine, riding the engine's lock-free snapshot path.
type Follower[V, A any] struct {
	eng    *core.Engine[V, A]
	ap     RecordApplier
	base   *url.URL
	opts   FollowerOptions
	cache  *qcache.Cache
	met    metrics
	logger *slog.Logger

	applied   atomic.Uint64 // last applied sequence number
	leaderSeq atomic.Uint64 // newest sequence the leader has announced
	records   atomic.Uint64 // records applied from the stream
	resumes   atomic.Uint64 // reconnects after the first connection

	mu        sync.Mutex
	lastErr   error     // latest transient stream fault (cleared on connect)
	caughtUp  time.Time // last instant lag was 0
	connected bool      // a connection has succeeded at least once

	runDone chan struct{} // closed when Run returns (set by Start)
	cancel  context.CancelFunc
}

// NewFollower builds a follower over a fresh or recovered engine. ap is
// the replay sink; pass the durable engine itself for a durable
// follower, or NewEngineApplier(eng) (or nil, which does that) for an
// in-memory one. leaderURL is the base URL of the leader's HTTP
// surface; the stream is fetched from leaderURL + "/v1/wal".
func NewFollower[V, A any](eng *core.Engine[V, A], ap RecordApplier, leaderURL string, opts FollowerOptions) (*Follower[V, A], error) {
	if eng == nil {
		return nil, fmt.Errorf("replica: nil engine")
	}
	u, err := url.Parse(leaderURL)
	if err != nil {
		return nil, fmt.Errorf("replica: leader url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("replica: leader url %q: scheme must be http or https", leaderURL)
	}
	if ap == nil {
		ap = NewEngineApplier(eng)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	f := &Follower[V, A]{
		eng:    eng,
		ap:     ap,
		base:   u,
		opts:   opts,
		cache:  qcache.New(opts.QueryCacheBytes, opts.Metrics),
		met:    newMetrics(opts.Metrics),
		logger: logger,
	}
	f.mu.Lock()
	f.caughtUp = time.Now()
	f.mu.Unlock()
	return f, nil
}

// NewDurableFollower builds a follower whose applier is a durable
// engine: every streamed record is re-journaled locally before it
// mutates state, so a killed follower reopens its directory and resumes
// from the exact sequence number it last acked — the seq-exact restart
// the chaos tests assert.
func NewDurableFollower[V, A any](d *durable.Engine[V, A], leaderURL string, opts FollowerOptions) (*Follower[V, A], error) {
	if d == nil {
		return nil, fmt.Errorf("replica: nil durable engine")
	}
	return NewFollower(d.Core(), d, leaderURL, opts)
}

// Run tails the leader until ctx is cancelled, reconnecting with
// backoff across stream faults and leader outages. It returns ctx.Err()
// on cancellation, or a terminal error: the leader compacted past our
// resume position (ErrLogCompacted) or the local applier rejected a
// record. It runs the engine's initial computation first if the engine
// has never published (generation parity with the leader requires both
// sides to start from the same base graph).
func (f *Follower[V, A]) Run(ctx context.Context) error {
	if f.eng.Snapshot() == nil {
		f.eng.Run()
	}
	f.applied.Store(f.ap.Seq())
	f.updateLag()
	attempt := 0
	for {
		err := f.stream(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		switch {
		case err == nil:
			// Leader closed the stream cleanly (shutdown); keep retrying
			// at the backoff cadence — it may come back.
			attempt++
		case isTerminal(err):
			f.setErr(err)
			return err
		default:
			f.setErr(err)
			f.logger.Warn("replica: stream interrupted; will resume",
				"applied", f.applied.Load(), "err", err)
			attempt++
		}
		delay := f.opts.Backoff.Delay(attempt - 1)
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Start launches Run in a goroutine. Use Close to stop it.
func (f *Follower[V, A]) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	f.mu.Lock()
	f.cancel, f.runDone = cancel, done
	f.mu.Unlock()
	go func() {
		defer close(done)
		if err := f.Run(ctx); err != nil && ctx.Err() == nil {
			f.logger.Error("replica: follower stopped", "err", err)
		}
	}()
}

// Close stops a Start-ed follower and waits for the replay goroutine to
// exit (bounded by ctx). It does not close the engine.
func (f *Follower[V, A]) Close(ctx context.Context) error {
	f.mu.Lock()
	cancel, done := f.cancel, f.runDone
	f.mu.Unlock()
	if cancel == nil {
		return nil
	}
	cancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isTerminal reports faults no amount of reconnecting can fix.
func isTerminal(err error) bool {
	return errors.Is(err, ErrLogCompacted) || errors.Is(err, durable.ErrOutOfOrder) ||
		errors.Is(err, graph.ErrInvalidBatch)
}

// stream runs one connection lifecycle: connect, resume from the last
// applied sequence, apply messages until the connection breaks.
func (f *Follower[V, A]) stream(ctx context.Context) error {
	u := *f.base
	u.Path, _ = url.JoinPath(u.Path, "/v1/wal")
	q := u.Query()
	q.Set("from", strconv.FormatUint(f.applied.Load(), 10))
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	client := f.opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: connect: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return fmt.Errorf("%w (leader floor is past seq %d)", ErrLogCompacted, f.applied.Load())
	default:
		return fmt.Errorf("replica: leader returned %s", resp.Status)
	}
	wr := newWireReader(resp.Body)
	leaderSeq, err := wr.hello()
	if err != nil {
		return err
	}
	f.noteLeader(leaderSeq)
	f.markConnected()
	for {
		msg, err := wr.next()
		if err != nil {
			return err
		}
		switch msg.kind {
		case kindHeartbeat:
			f.noteLeader(msg.leaderSeq)
		case kindRecord:
			if err := f.apply(msg.rec); err != nil {
				return err
			}
		}
	}
}

// apply replays one record, enforcing the never-skip, never-double
// invariant: records at or below the applied position are duplicates
// from a resume overlap and are dropped; a gap is a protocol fault that
// drops the connection (the leader will replay from our position).
func (f *Follower[V, A]) apply(rec wal.Record) error {
	cur := f.applied.Load()
	if rec.Seq <= cur {
		return nil // duplicate from resume overlap
	}
	if rec.Seq != cur+1 {
		return fmt.Errorf("%w: record seq %d after %d", ErrStreamCorrupt, rec.Seq, cur)
	}
	if err := f.ap.ApplyRecord(rec); err != nil {
		return fmt.Errorf("replica: apply seq %d: %w", rec.Seq, err)
	}
	f.applied.Store(rec.Seq)
	f.records.Add(1)
	f.met.records.Inc()
	f.noteLeader(rec.Seq)
	if f.opts.OnApply != nil {
		f.opts.OnApply(rec)
	}
	return nil
}

// noteLeader folds a leader progress signal into the lag gauges.
func (f *Follower[V, A]) noteLeader(seq uint64) {
	for {
		cur := f.leaderSeq.Load()
		if seq <= cur {
			break
		}
		if f.leaderSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	f.updateLag()
}

func (f *Follower[V, A]) updateLag() {
	lag := f.Lag()
	f.met.lagGenerations.Set(float64(lag))
	f.mu.Lock()
	if lag == 0 {
		f.caughtUp = time.Now()
	}
	since := time.Since(f.caughtUp)
	f.mu.Unlock()
	if lag == 0 {
		f.met.lagSeconds.Set(0)
	} else {
		f.met.lagSeconds.Set(since.Seconds())
	}
}

func (f *Follower[V, A]) markConnected() {
	f.mu.Lock()
	first := !f.connected
	f.connected = true
	f.lastErr = nil
	f.mu.Unlock()
	if !first {
		f.resumes.Add(1)
		f.met.resumes.Inc()
	}
}

func (f *Follower[V, A]) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// Err returns the most recent stream fault, nil while the stream is
// healthy. Terminal faults stay set after Run returns.
func (f *Follower[V, A]) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// AppliedSeq returns the last applied sequence number — the resume
// position.
func (f *Follower[V, A]) AppliedSeq() uint64 { return f.applied.Load() }

// LeaderSeq returns the newest sequence number the leader has
// announced (via hello, heartbeats, or shipped records).
func (f *Follower[V, A]) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Lag returns LeaderSeq − AppliedSeq: the number of generations the
// follower trails the leader's journal, 0 when caught up.
func (f *Follower[V, A]) Lag() uint64 {
	l, a := f.leaderSeq.Load(), f.applied.Load()
	if l <= a {
		return 0
	}
	return l - a
}

// Records returns the number of records applied from the stream.
func (f *Follower[V, A]) Records() uint64 { return f.records.Load() }

// Resumes returns the number of reconnects after the first connection.
func (f *Follower[V, A]) Resumes() uint64 { return f.resumes.Load() }

// Snapshot returns the follower's newest published snapshot (nil before
// the initial computation finishes).
func (f *Follower[V, A]) Snapshot() *core.ResultSnapshot[V] { return f.eng.Snapshot() }

// SnapshotAt returns the retained snapshot for generation gen, exactly
// as the leader's SnapshotAt does (errors wrap
// core.ErrGenerationNotRetained).
func (f *Follower[V, A]) SnapshotAt(gen uint64) (*core.ResultSnapshot[V], error) {
	return f.eng.SnapshotAt(gen)
}

// Diff compares two retained generations.
func (f *Follower[V, A]) Diff(from, to uint64) (*core.SnapshotDiff[V], error) {
	return f.eng.DiffSnapshots(from, to)
}

// RetainedGenerations reports the retained generation window.
func (f *Follower[V, A]) RetainedGenerations() (oldest, newest uint64) {
	return f.eng.RetainedGenerations()
}

// Cache returns the follower's query cache (nil when caching is off) —
// the same contract as Server.Cache, so the query API serves either.
func (f *Follower[V, A]) Cache() *qcache.Cache { return f.cache }

// Submit refuses: followers are read-only. The error wraps ErrFollower
// in the serve layer's retryable shape so generic clients back off and
// redirect to the leader.
func (f *Follower[V, A]) Submit(context.Context, graph.Batch) (*serve.Ticket, error) {
	return nil, &serve.RetryableError{
		Sentinel: ErrFollower,
		After:    serve.DefaultRetryAfter,
		Detail:   fmt.Sprintf("this process follows %s; submit writes there", f.base),
	}
}
