package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/flight"
	"repro/internal/graph"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/serve"
	"repro/internal/wal"
)

// DefaultStallTimeout is the default stream-stall watchdog limit: the
// maximum silence (no record, no heartbeat) before the follower drops
// the connection and reconnects. Thirty heartbeat intervals — wide
// enough that a loaded leader never trips it, tight enough that a
// half-dead connection (SYN-acked socket, wedged proxy, partitioned
// peer) is abandoned in seconds rather than at the kernel's multi-
// minute TCP timeout.
const DefaultStallTimeout = 30 * DefaultHeartbeat

// RecordApplier is the follower's replay sink: ApplyRecord replays one
// leader journal record, Seq reports the last applied sequence number
// (the resume position). durable.Engine implements it directly — a
// durable follower re-journals every record locally, so a restart
// resumes from disk at the exact sequence it stopped at. An in-memory
// follower uses the applier returned by NewEngineApplier and restarts
// from zero.
//
// The Follower guarantees ApplyRecord is called with strictly
// consecutive sequence numbers from a single goroutine.
type RecordApplier interface {
	ApplyRecord(rec wal.Record) error
	Seq() uint64
}

// CheckpointInstaller is the optional re-seed extension of
// RecordApplier: InstallCheckpoint replaces the applier's state with a
// complete framed checkpoint streamed from the leader (wal checkpoint
// header + core snapshot, both CRC-verified before anything is
// mutated) and returns the sequence number it covers. durable.Engine
// implements it with full crash safety (the checkpoint lands on disk
// before the local journal is truncated); the in-memory engine applier
// implements it by swapping state behind the published snapshot. A
// follower whose applier lacks the interface treats log compaction as
// terminal, as before.
type CheckpointInstaller interface {
	InstallCheckpoint(r io.Reader) (uint64, error)
}

// engineApplier adapts a bare core.Engine as a RecordApplier for
// in-memory (non-durable) followers.
type engineApplier[V, A any] struct {
	eng *core.Engine[V, A]
	seq uint64
}

// NewEngineApplier wraps a core engine as a RecordApplier starting at
// sequence 0 (a fresh follower that needs the full stream).
func NewEngineApplier[V, A any](eng *core.Engine[V, A]) RecordApplier {
	return &engineApplier[V, A]{eng: eng}
}

func (a *engineApplier[V, A]) ApplyRecord(rec wal.Record) error {
	if rec.Seq != a.seq+1 {
		return fmt.Errorf("%w: record seq %d, next expected %d", durable.ErrOutOfOrder, rec.Seq, a.seq+1)
	}
	if _, err := a.eng.ApplyBatch(rec.Batch); err != nil {
		return err
	}
	a.seq = rec.Seq
	return nil
}

func (a *engineApplier[V, A]) Seq() uint64 { return a.seq }

// InstallCheckpoint re-seeds the in-memory applier from a shipped
// checkpoint. core.ReadSnapshot validates the whole frame before
// mutating the engine, so a torn or corrupt body leaves the applier
// exactly as it was; the published-snapshot swap at the end is what
// makes the new state visible to readers atomically.
func (a *engineApplier[V, A]) InstallCheckpoint(r io.Reader) (uint64, error) {
	seq, err := wal.ReadCheckpointHeader(r)
	if err != nil {
		return 0, err
	}
	if seq <= a.seq {
		return 0, fmt.Errorf("%w: checkpoint seq %d, applier at %d", durable.ErrCheckpointStale, seq, a.seq)
	}
	if err := a.eng.ReadSnapshot(r); err != nil {
		return 0, err
	}
	a.seq = seq
	return seq, nil
}

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Client performs the stream requests; nil uses http.DefaultClient.
	// The client's Timeout must be zero — the stream is long-lived.
	Client *http.Client
	// Backoff paces reconnect attempts. The zero value applies the
	// backoff package defaults (20ms base, 5s cap).
	Backoff backoff.Policy
	// Metrics, when non-nil, receives the graphbolt_replica_* series.
	Metrics *obs.Registry
	// QueryCacheBytes bounds the follower's per-generation query cache,
	// exactly like ServerOptions.QueryCacheBytes. 0 disables caching.
	QueryCacheBytes int64
	// Logger receives reconnect and stream-fault warnings; nil uses
	// slog.Default().
	Logger *slog.Logger
	// OnApply, when non-nil, is called from the replay goroutine after
	// every applied record. Keep it fast.
	OnApply func(rec wal.Record)
	// StallTimeout is the stream-stall watchdog limit: a connection that
	// carries neither records nor heartbeats for this long is dropped
	// and re-dialed (counted in graphbolt_replica_stalls_total).
	// Heartbeats count as progress, so an idle-but-alive leader never
	// trips it. 0 applies DefaultStallTimeout; negative disables the
	// watchdog.
	StallTimeout time.Duration
	// Health, when non-nil, tracks the follower's serving state: Healthy
	// while streaming, Degraded across transient faults (reconnects,
	// stalls, re-seeds in progress), Failed on a terminal error. Nil is
	// fine — all Tracker methods are nil-safe.
	Health *health.Tracker
	// Flight, when non-nil, receives reseed/stall lifecycle events so a
	// post-hoc dump shows when and why the follower jumped sequence
	// numbers or dropped a connection.
	Flight *flight.Recorder
}

// Follower tails a leader's replication stream and replays it into a
// local engine, exposing the same read surface a Server does: the BSP
// guarantee means its SnapshotAt(g) is the leader's SnapshotAt(g) for
// every generation it has acked (g = applied seq + 1; see DESIGN.md).
//
// The replay goroutine (Run) is the only writer; every read method is
// safe from any goroutine, riding the engine's lock-free snapshot path.
type Follower[V, A any] struct {
	eng    *core.Engine[V, A]
	ap     RecordApplier
	base   *url.URL
	opts   FollowerOptions
	cache  *qcache.Cache
	met    metrics
	logger *slog.Logger

	applied   atomic.Uint64 // last applied sequence number
	leaderSeq atomic.Uint64 // newest sequence the leader has announced
	records   atomic.Uint64 // records applied from the stream
	resumes   atomic.Uint64 // reconnects after the first connection
	reseeds   atomic.Uint64 // checkpoint installs after log compaction
	stalls    atomic.Uint64 // connections dropped by the stall watchdog

	mu        sync.Mutex
	lastErr   error     // latest transient stream fault (cleared on connect)
	caughtUp  time.Time // last instant lag was 0
	connected bool      // a connection has succeeded at least once

	runDone chan struct{} // closed when Run returns (set by Start)
	cancel  context.CancelFunc
}

// NewFollower builds a follower over a fresh or recovered engine. ap is
// the replay sink; pass the durable engine itself for a durable
// follower, or NewEngineApplier(eng) (or nil, which does that) for an
// in-memory one. leaderURL is the base URL of the leader's HTTP
// surface; the stream is fetched from leaderURL + "/v1/wal".
func NewFollower[V, A any](eng *core.Engine[V, A], ap RecordApplier, leaderURL string, opts FollowerOptions) (*Follower[V, A], error) {
	if eng == nil {
		return nil, fmt.Errorf("replica: nil engine")
	}
	u, err := url.Parse(leaderURL)
	if err != nil {
		return nil, fmt.Errorf("replica: leader url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("replica: leader url %q: scheme must be http or https", leaderURL)
	}
	if ap == nil {
		ap = NewEngineApplier(eng)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	f := &Follower[V, A]{
		eng:    eng,
		ap:     ap,
		base:   u,
		opts:   opts,
		cache:  qcache.New(opts.QueryCacheBytes, opts.Metrics),
		met:    newMetrics(opts.Metrics),
		logger: logger,
	}
	f.mu.Lock()
	f.caughtUp = time.Now()
	f.mu.Unlock()
	return f, nil
}

// NewDurableFollower builds a follower whose applier is a durable
// engine: every streamed record is re-journaled locally before it
// mutates state, so a killed follower reopens its directory and resumes
// from the exact sequence number it last acked — the seq-exact restart
// the chaos tests assert.
func NewDurableFollower[V, A any](d *durable.Engine[V, A], leaderURL string, opts FollowerOptions) (*Follower[V, A], error) {
	if d == nil {
		return nil, fmt.Errorf("replica: nil durable engine")
	}
	return NewFollower(d.Core(), d, leaderURL, opts)
}

// Run tails the leader until ctx is cancelled, reconnecting with
// backoff across stream faults, stalls and leader outages, and
// re-seeding itself from the leader's checkpoint when the log has been
// compacted past its position. It returns ctx.Err() on cancellation,
// or a terminal error: the local applier rejected a record, or the
// leader compacted the log and serves no checkpoint (or the applier
// cannot install one) to bridge the gap. It runs the engine's initial
// computation first if the engine has never published (generation
// parity with the leader requires both sides to start from the same
// base graph).
//
// The backoff attempt counter resets whenever a connection makes real
// progress — at least one record applied, or a successful re-seed — so
// a follower that streamed healthily for an hour and then lost the
// connection retries at the base delay, not wherever a morning's worth
// of transient faults left the counter.
func (f *Follower[V, A]) Run(ctx context.Context) error {
	if f.eng.Snapshot() == nil {
		f.eng.Run()
	}
	f.applied.Store(f.ap.Seq())
	f.updateLag()
	attempt := 0
	for {
		applied, err := f.stream(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if applied > 0 {
			attempt = 0
		}
		switch {
		case err == nil:
			// Leader closed the stream cleanly (shutdown); keep retrying
			// at the backoff cadence — it may come back.
			attempt++
		case errors.Is(err, ErrLogCompacted):
			f.setErr(err)
			f.opts.Health.Set(health.Degraded, err)
			rerr, terminal := f.reseed(ctx)
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if rerr == nil {
				attempt = 0
				continue // reconnect immediately from the new position
			}
			f.setErr(rerr)
			if terminal {
				f.opts.Health.Set(health.Failed, rerr)
				return rerr
			}
			f.logger.Warn("replica: checkpoint re-seed failed; will retry",
				"applied", f.applied.Load(), "err", rerr)
			attempt++
		case isTerminal(err):
			f.setErr(err)
			f.opts.Health.Set(health.Failed, err)
			return err
		default:
			f.setErr(err)
			f.opts.Health.Set(health.Degraded, err)
			f.logger.Warn("replica: stream interrupted; will resume",
				"applied", f.applied.Load(), "err", err)
			attempt++
		}
		delay := f.opts.Backoff.Delay(attempt - 1)
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Start launches Run in a goroutine. Use Close to stop it.
func (f *Follower[V, A]) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	f.mu.Lock()
	f.cancel, f.runDone = cancel, done
	f.mu.Unlock()
	go func() {
		defer close(done)
		if err := f.Run(ctx); err != nil && ctx.Err() == nil {
			f.logger.Error("replica: follower stopped", "err", err)
		}
	}()
}

// Close stops a Start-ed follower and waits for the replay goroutine to
// exit (bounded by ctx). It does not close the engine.
func (f *Follower[V, A]) Close(ctx context.Context) error {
	f.mu.Lock()
	cancel, done := f.cancel, f.runDone
	f.mu.Unlock()
	if cancel == nil {
		return nil
	}
	cancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isTerminal reports faults no amount of reconnecting can fix. Log
// compaction is deliberately not here anymore: Run intercepts it first
// and attempts a checkpoint re-seed; it only becomes terminal when no
// checkpoint can bridge the gap.
func isTerminal(err error) bool {
	return errors.Is(err, durable.ErrOutOfOrder) || errors.Is(err, graph.ErrInvalidBatch)
}

func (f *Follower[V, A]) client() *http.Client {
	if f.opts.Client != nil {
		return f.opts.Client
	}
	return http.DefaultClient
}

func (f *Follower[V, A]) stallTimeout() time.Duration {
	switch {
	case f.opts.StallTimeout < 0:
		return 0 // disabled
	case f.opts.StallTimeout == 0:
		return DefaultStallTimeout
	}
	return f.opts.StallTimeout
}

// stream runs one connection lifecycle: connect, resume from the last
// applied sequence, apply messages until the connection breaks. It
// returns the number of records applied on this connection — Run's
// progress signal for resetting backoff.
//
// A watchdog goroutine guards the whole lifecycle: if no message
// (record or heartbeat) arrives within the stall timeout it cancels
// the connection's context, tearing down both a wedged read and a hung
// connect. The error is then reported as ErrStreamStalled rather than
// the context error the cancellation produced.
func (f *Follower[V, A]) stream(ctx context.Context) (applied int, err error) {
	timeout := f.stallTimeout()
	var lastMsg atomic.Int64 // Unix nanos of the newest message
	var stalled atomic.Bool
	if timeout > 0 {
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ctx = sctx
		lastMsg.Store(time.Now().UnixNano())
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			tick := time.NewTicker(max(timeout/4, time.Millisecond))
			defer tick.Stop()
			for {
				select {
				case <-sctx.Done():
					return
				case <-watchDone:
					return
				case <-tick.C:
					if time.Since(time.Unix(0, lastMsg.Load())) > timeout {
						stalled.Store(true)
						cancel()
						return
					}
				}
			}
		}()
		defer func() {
			if err != nil && stalled.Load() {
				silence := time.Since(time.Unix(0, lastMsg.Load()))
				err = fmt.Errorf("%w: no message for %v (limit %v)",
					ErrStreamStalled, silence.Round(time.Millisecond), timeout)
				f.stalls.Add(1)
				f.met.stalls.Inc()
				f.opts.Flight.Record(flight.KindStall, 0, int64(silence), 0)
			}
		}()
	}

	u := *f.base
	u.Path, _ = url.JoinPath(u.Path, "/v1/wal")
	q := u.Query()
	q.Set("from", strconv.FormatUint(f.applied.Load(), 10))
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return 0, fmt.Errorf("replica: %w", err)
	}
	resp, err := f.client().Do(req)
	if err != nil {
		return 0, fmt.Errorf("replica: connect: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return 0, fmt.Errorf("%w (leader floor is past seq %d)", ErrLogCompacted, f.applied.Load())
	default:
		return 0, fmt.Errorf("replica: leader returned %s", resp.Status)
	}
	wr := newWireReader(resp.Body)
	leaderSeq, err := wr.hello()
	if err != nil {
		return 0, err
	}
	lastMsg.Store(time.Now().UnixNano())
	f.noteLeader(leaderSeq)
	f.markConnected()
	for {
		msg, err := wr.next()
		if err != nil {
			return applied, err
		}
		lastMsg.Store(time.Now().UnixNano())
		switch msg.kind {
		case kindHeartbeat:
			f.noteLeader(msg.leaderSeq)
		case kindRecord:
			if err := f.apply(msg.rec); err != nil {
				return applied, err
			}
			applied++
		}
	}
}

// reseed bridges a compaction gap: fetch the leader's checkpoint,
// install it through the applier's CheckpointInstaller path, and move
// the resume position to its sequence. The never-skip/never-double
// invariant holds across the jump because the checkpoint's state IS
// the leader's state after applying every record ≤ its sequence — the
// skipped records are not lost, they are inside the install. The
// second return value reports whether the failure is terminal (no way
// to re-seed, ever) versus transient (retry after backoff: connection
// trouble, a checkpoint that has not yet advanced past our position,
// a torn transfer).
func (f *Follower[V, A]) reseed(ctx context.Context) (error, bool) {
	inst, ok := f.ap.(CheckpointInstaller)
	if !ok {
		return fmt.Errorf("%w: applier %T cannot install checkpoints", ErrLogCompacted, f.ap), true
	}
	u := *f.base
	u.Path, _ = url.JoinPath(u.Path, "/v1/checkpoint")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err), true
	}
	start := time.Now()
	resp, err := f.client().Do(req)
	if err != nil {
		return fmt.Errorf("replica: checkpoint fetch: %w", err), false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		// The leader has never checkpointed yet its log floor is past us;
		// nothing can bridge the gap, now or later (any future checkpoint
		// would cover even more).
		return fmt.Errorf("%w: %w at %s", ErrLogCompacted, durable.ErrNoCheckpoint, u.Redacted()), true
	default:
		return fmt.Errorf("replica: checkpoint fetch: leader returned %s", resp.Status), false
	}
	prev := f.applied.Load()
	seq, err := inst.InstallCheckpoint(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: install checkpoint: %w", err), false
	}
	f.met.checkpointFetch.Observe(time.Since(start).Seconds())
	f.applied.Store(seq)
	f.reseeds.Add(1)
	f.met.reseeds.Inc()
	f.opts.Flight.Record(flight.KindReseed, 0, int64(prev), int64(seq))
	f.noteLeader(seq)
	f.logger.Info("replica: re-seeded from leader checkpoint",
		"from_seq", prev, "to_seq", seq, "took", time.Since(start).Round(time.Millisecond))
	return nil, false
}

// apply replays one record, enforcing the never-skip, never-double
// invariant: records at or below the applied position are duplicates
// from a resume overlap and are dropped; a gap is a protocol fault that
// drops the connection (the leader will replay from our position).
func (f *Follower[V, A]) apply(rec wal.Record) error {
	cur := f.applied.Load()
	if rec.Seq <= cur {
		return nil // duplicate from resume overlap
	}
	if rec.Seq != cur+1 {
		return fmt.Errorf("%w: record seq %d after %d", ErrStreamCorrupt, rec.Seq, cur)
	}
	if err := f.ap.ApplyRecord(rec); err != nil {
		return fmt.Errorf("replica: apply seq %d: %w", rec.Seq, err)
	}
	f.applied.Store(rec.Seq)
	f.records.Add(1)
	f.met.records.Inc()
	f.noteLeader(rec.Seq)
	if f.opts.OnApply != nil {
		f.opts.OnApply(rec)
	}
	return nil
}

// noteLeader folds a leader progress signal into the lag gauges.
func (f *Follower[V, A]) noteLeader(seq uint64) {
	for {
		cur := f.leaderSeq.Load()
		if seq <= cur {
			break
		}
		if f.leaderSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	f.updateLag()
}

func (f *Follower[V, A]) updateLag() {
	lag := f.Lag()
	f.met.lagGenerations.Set(float64(lag))
	f.mu.Lock()
	if lag == 0 {
		f.caughtUp = time.Now()
	}
	since := time.Since(f.caughtUp)
	f.mu.Unlock()
	if lag == 0 {
		f.met.lagSeconds.Set(0)
	} else {
		f.met.lagSeconds.Set(since.Seconds())
	}
}

func (f *Follower[V, A]) markConnected() {
	f.mu.Lock()
	first := !f.connected
	f.connected = true
	f.lastErr = nil
	f.mu.Unlock()
	if !first {
		f.resumes.Add(1)
		f.met.resumes.Inc()
	}
	f.opts.Health.Set(health.Healthy, nil)
}

func (f *Follower[V, A]) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// Err returns the most recent stream fault, nil while the stream is
// healthy. Terminal faults stay set after Run returns.
func (f *Follower[V, A]) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// AppliedSeq returns the last applied sequence number — the resume
// position.
func (f *Follower[V, A]) AppliedSeq() uint64 { return f.applied.Load() }

// LeaderSeq returns the newest sequence number the leader has
// announced (via hello, heartbeats, or shipped records).
func (f *Follower[V, A]) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Lag returns LeaderSeq − AppliedSeq: the number of generations the
// follower trails the leader's journal, 0 when caught up.
func (f *Follower[V, A]) Lag() uint64 {
	l, a := f.leaderSeq.Load(), f.applied.Load()
	if l <= a {
		return 0
	}
	return l - a
}

// Records returns the number of records applied from the stream.
func (f *Follower[V, A]) Records() uint64 { return f.records.Load() }

// Resumes returns the number of reconnects after the first connection.
func (f *Follower[V, A]) Resumes() uint64 { return f.resumes.Load() }

// Reseeds returns the number of checkpoint re-seeds performed after
// the leader compacted past the follower's position.
func (f *Follower[V, A]) Reseeds() uint64 { return f.reseeds.Load() }

// Stalls returns the number of connections the stall watchdog dropped.
func (f *Follower[V, A]) Stalls() uint64 { return f.stalls.Load() }

// Snapshot returns the follower's newest published snapshot (nil before
// the initial computation finishes).
func (f *Follower[V, A]) Snapshot() *core.ResultSnapshot[V] { return f.eng.Snapshot() }

// SnapshotAt returns the retained snapshot for generation gen, exactly
// as the leader's SnapshotAt does (errors wrap
// core.ErrGenerationNotRetained).
func (f *Follower[V, A]) SnapshotAt(gen uint64) (*core.ResultSnapshot[V], error) {
	return f.eng.SnapshotAt(gen)
}

// Diff compares two retained generations.
func (f *Follower[V, A]) Diff(from, to uint64) (*core.SnapshotDiff[V], error) {
	return f.eng.DiffSnapshots(from, to)
}

// RetainedGenerations reports the retained generation window.
func (f *Follower[V, A]) RetainedGenerations() (oldest, newest uint64) {
	return f.eng.RetainedGenerations()
}

// Cache returns the follower's query cache (nil when caching is off) —
// the same contract as Server.Cache, so the query API serves either.
func (f *Follower[V, A]) Cache() *qcache.Cache { return f.cache }

// Submit refuses: followers are read-only. The error wraps ErrFollower
// in the serve layer's retryable shape so generic clients back off and
// redirect to the leader.
func (f *Follower[V, A]) Submit(context.Context, graph.Batch) (*serve.Ticket, error) {
	return nil, &serve.RetryableError{
		Sentinel: ErrFollower,
		After:    serve.DefaultRetryAfter,
		Detail:   fmt.Sprintf("this process follows %s; submit writes there", f.base),
	}
}
