package replica

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/durable"
	"repro/internal/graph"
	"repro/internal/health"
	"repro/internal/wal"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// chainBatch builds the i-th batch of the test stream, valid against
// the 8-vertex chain graph newTestEngine builds.
func chainBatch(i int) graph.Batch {
	return graph.Batch{Add: []graph.Edge{{From: 0, To: graph.VertexID(i%6 + 1), Weight: float64(i + 1)}}}
}

// leaderHarness wires a durable leader engine to a replication log and
// a mux serving /v1/wal and /v1/checkpoint — the full leader surface a
// self-healing follower talks to.
type leaderHarness struct {
	d   *durable.Engine[float64, float64]
	log *Log
	mux *http.ServeMux
}

func newLeaderHarness(t *testing.T, logOpts LogOptions) *leaderHarness {
	t.Helper()
	logOpts.Logger = discardLogger()
	h := &leaderHarness{log: NewLog(logOpts)}
	d, err := durable.Open(newTestEngine(t, 8), t.TempDir(), durable.Options{
		OnRecord: h.log.Append,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	t.Cleanup(h.log.Close)
	h.d = d
	h.log.SetFloor(d.Recovery().SnapshotSeq)
	if h.log.ckptSeq == nil {
		h.log.ckptSeq = d.CheckpointSeq
	}
	h.mux = http.NewServeMux()
	h.mux.Handle("GET /v1/wal", h.log.Handler())
	h.mux.Handle("GET /v1/checkpoint", CheckpointHandler(d))
	return h
}

func (h *leaderHarness) apply(t *testing.T, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if _, err := h.d.ApplyBatch(chainBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFollowerReseedsAfterCompaction: a fresh follower connecting to a
// leader whose log floor is past seq 0 must fetch the checkpoint,
// install it, resume the stream from its sequence, and converge — with
// exact value and generation parity.
func TestFollowerReseedsAfterCompaction(t *testing.T) {
	// Retain 5: tight enough that a fresh follower (seq 0) is below the
	// floor and must re-seed, loose enough that the floor stays behind
	// the checkpoint (seq 6) while the post-reseed records stream — a
	// leader whose floor outruns its newest checkpoint strands followers
	// by design (that liveness pairing is CheckpointEvery's job, and the
	// failover e2e exercises it).
	h := newLeaderHarness(t, LogOptions{Retain: 5, Heartbeat: 5 * time.Millisecond})
	h.apply(t, 0, 6)
	if err := h.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if floor := h.log.Floor(); floor == 0 {
		t.Fatal("retention never trimmed; test needs a compacted log")
	}
	ts := httptest.NewServer(h.mux)
	defer ts.Close()

	eng := newTestEngine(t, 8)
	tr := health.NewTracker(nil)
	f, err := NewFollower(eng, nil, ts.URL, FollowerOptions{
		Client:  ts.Client(),
		Backoff: backoff.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond},
		Logger:  discardLogger(),
		Health:  tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.Start(ctx)
	defer f.Close(context.Background())

	waitFor(t, "re-seed", func() bool { return f.Reseeds() >= 1 })
	h.apply(t, 6, 9) // stream past the checkpoint
	waitFor(t, "catch-up", func() bool { return f.AppliedSeq() == h.d.Seq() })

	if f.AppliedSeq() != 9 {
		t.Fatalf("applied %d, want 9", f.AppliedSeq())
	}
	if lag := f.Lag(); lag != 0 {
		t.Fatalf("lag %d after catch-up", lag)
	}
	lead, foll := h.d.Snapshot(), f.Snapshot()
	if foll.Generation != lead.Generation {
		t.Fatalf("generation %d, leader at %d — re-seed must preserve parity", foll.Generation, lead.Generation)
	}
	for v, want := range lead.Values {
		if foll.Values[v] != want {
			t.Fatalf("vertex %d: %v, leader has %v", v, foll.Values[v], want)
		}
	}
	waitFor(t, "healthy", func() bool { return tr.State() == health.Healthy })
}

// TestFollowerStallWatchdog: a connection that goes silent after the
// hello — no records, no heartbeats — must be dropped within the stall
// timeout and retried, and a later healthy connection must catch the
// follower up.
func TestFollowerStallWatchdog(t *testing.T) {
	h := newLeaderHarness(t, LogOptions{Heartbeat: 2 * time.Millisecond})
	h.apply(t, 0, 4)

	var conns atomic.Int64
	mux := http.NewServeMux()
	mux.Handle("GET /v1/wal", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if conns.Add(1) <= 2 {
			// Write a valid hello, then starve the stream: no heartbeats,
			// no records, connection held open.
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			w.Write(appendHello(nil, 4))
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			<-r.Context().Done()
			return
		}
		h.log.Handler().ServeHTTP(w, r)
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	f, err := NewFollower(newTestEngine(t, 8), nil, ts.URL, FollowerOptions{
		Client:       ts.Client(),
		Backoff:      backoff.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Logger:       discardLogger(),
		StallTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.Start(ctx)
	defer f.Close(context.Background())

	waitFor(t, "stall detections", func() bool { return f.Stalls() >= 2 })
	waitFor(t, "catch-up after stalls", func() bool { return f.AppliedSeq() == 4 })
	if f.Resumes() < 1 {
		t.Fatalf("resumes = %d after stalled connections", f.Resumes())
	}
}

// TestFollowerStallErrorShape: the watchdog's fault wraps
// ErrStreamStalled (not the context error the cancellation produced).
func TestFollowerStallErrorShape(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write(appendHello(nil, 1))
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		<-r.Context().Done()
	}))
	defer srv.Close()

	f, err := NewFollower(newTestEngine(t, 8), nil, srv.URL, FollowerOptions{
		Client:       srv.Client(),
		Logger:       discardLogger(),
		StallTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	_, serr := f.stream(context.Background())
	if !errors.Is(serr, ErrStreamStalled) {
		t.Fatalf("stream = %v, want ErrStreamStalled", serr)
	}
	if f.Stalls() != 1 {
		t.Fatalf("stalls = %d, want 1", f.Stalls())
	}
}

// TestFollowerBackoffResetsAfterProgress: the reconnect backoff must
// restart from the base delay once a connection ships records. The
// server closes the stream after every record, so a follower whose
// attempt counter kept growing would pay the (deliberately huge) later
// delays and miss the deadline by orders of magnitude.
func TestFollowerBackoffResetsAfterProgress(t *testing.T) {
	const records = 8
	frames := make([][]byte, records)
	for i := range frames {
		frames[i] = wal.EncodeFrame(uint64(i+1), chainBatch(i))
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/wal", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from := r.URL.Query().Get("from")
		var next int
		for i := 0; i < records; i++ {
			if from == "" || from == itoa(i) {
				next = i
				break
			}
		}
		w.WriteHeader(http.StatusOK)
		out := appendHello(nil, records)
		if next < records {
			out = appendRecord(out, frames[next])
		}
		w.Write(out)
		// Return: the connection closes after at most one record, forcing
		// a reconnect per record.
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Base 1ms but a punitive growth curve: attempt 1 is already 1s.
	// Only a follower that resets to attempt 0 after each shipped record
	// can apply 8 records in a few hundred milliseconds.
	f, err := NewFollower(newTestEngine(t, 8), nil, ts.URL, FollowerOptions{
		Client:  ts.Client(),
		Backoff: backoff.Policy{Base: time.Millisecond, Factor: 1000, Max: 5 * time.Second, Jitter: 0},
		Logger:  discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.Start(ctx)
	defer f.Close(context.Background())

	deadline := time.Now().Add(3 * time.Second)
	for f.AppliedSeq() < records {
		if time.Now().After(deadline) {
			t.Fatalf("applied %d/%d records in 3s — backoff did not reset on progress", f.AppliedSeq(), records)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

// TestLogFloorAppendRace hammers the log's floor/append/trim paths from
// concurrent goroutines — the shapes the leader actually runs (apply
// loop appending, recovery SetFloor, HTTP streamers snapshotting) —
// and checks the invariants survive. Run under -race.
func TestLogFloorAppendRace(t *testing.T) {
	l := NewLog(LogOptions{Retain: 8, Logger: discardLogger()})
	defer l.Close()
	const total = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint64(1); seq <= total; seq++ {
			l.Append(rec(seq))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			l.SetFloor(uint64(i * 2))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			floor, last := l.Floor(), l.Last()
			if floor > last {
				panic("floor above last")
			}
			if n := l.Len(); n > 8 {
				panic("retention exceeded")
			}
			l.snapshotFrom(last)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			from := l.Floor()
			frames, _, _, _ := l.snapshotFrom(from)
			// Frames visible above the floor must be contiguous from it.
			for i := range frames {
				r, err := wal.NewFrameReader(bytes.NewReader(frames[i])).Next()
				if err != nil {
					panic(err)
				}
				if r.Seq != from+uint64(i)+1 {
					panic("gap in snapshotFrom window")
				}
			}
		}
	}()
	// Wait for the writers, then stop the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitFor(t, "writers", func() bool {
		return l.Last() >= total
	})
	close(stop)
	<-done

	if floor, last := l.Floor(), l.Last(); floor > last {
		t.Fatalf("floor %d above last %d", floor, last)
	}
	if n := l.Len(); n > 8 {
		t.Fatalf("Len = %d, retention is 8", n)
	}
}
