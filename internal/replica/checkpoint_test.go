package replica

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/durable"
	"repro/internal/graph"
)

// leaderDurable opens a durable PageRank engine over the chain graph in
// a temp dir and applies n batches.
func leaderDurable(t *testing.T, n int) *durable.Engine[float64, float64] {
	t.Helper()
	d, err := durable.Open(newTestEngine(t, 8), t.TempDir(), durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	for i := 0; i < n; i++ {
		b := graph.Batch{Add: []graph.Edge{{From: 0, To: graph.VertexID(i%6 + 1), Weight: float64(i + 1)}}}
		if _, err := d.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestCheckpointHandler: 404 before any checkpoint, then a streamable
// framed checkpoint with seq header and ETag; If-None-Match
// short-circuits; non-GET is refused.
func TestCheckpointHandler(t *testing.T) {
	d := leaderDurable(t, 3)
	ts := httptest.NewServer(CheckpointHandler(d))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("before checkpoint: status %d, want 404", resp.StatusCode)
	}

	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(SeqHeader); got != "3" {
		t.Fatalf("%s = %q, want 3", SeqHeader, got)
	}
	if got := resp.Header.Get("ETag"); got != `"3"` {
		t.Fatalf("ETag = %q, want %q", got, `"3"`)
	}
	if got, want := int64(len(body)), resp.ContentLength; got != want {
		t.Fatalf("body %d bytes, Content-Length says %d", got, want)
	}

	// The body must be installable: feed it to a fresh in-memory applier.
	eng := newTestEngine(t, 8)
	eng.Run()
	ap := NewEngineApplier(eng).(*engineApplier[float64, float64])
	seq, err := ap.InstallCheckpoint(readerOf(body))
	if err != nil {
		t.Fatalf("install shipped body: %v", err)
	}
	if seq != 3 || ap.Seq() != 3 {
		t.Fatalf("installed seq %d (applier at %d), want 3", seq, ap.Seq())
	}
	lead, foll := d.Snapshot(), eng.Snapshot()
	if foll.Generation != lead.Generation {
		t.Fatalf("generation %d after install, leader at %d", foll.Generation, lead.Generation)
	}
	for v, want := range lead.Values {
		if foll.Values[v] != want {
			t.Fatalf("vertex %d: %v after install, leader has %v", v, foll.Values[v], want)
		}
	}

	// Conditional re-fetch with the current ETag short-circuits.
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set("If-None-Match", `"3"`)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match: status %d, want 304", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", resp.StatusCode)
	}
}

func readerOf(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// TestCompactedResponseContract pins the 410 body shape: a compacted
// resume must name both the log floor and whether a checkpoint can
// bridge the gap (and through which sequence).
func TestCompactedResponseContract(t *testing.T) {
	get410 := func(t *testing.T, l *Log) CompactedResponse {
		t.Helper()
		ts := httptest.NewServer(l.Handler())
		defer ts.Close()
		resp, err := ts.Client().Get(ts.URL + "?from=3")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("status %d, want 410", resp.StatusCode)
		}
		var body CompactedResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode 410 body: %v", err)
		}
		return body
	}

	t.Run("with checkpoint", func(t *testing.T) {
		l := NewLog(LogOptions{CheckpointSeq: func() (uint64, bool) { return 42, true }})
		defer l.Close()
		l.SetFloor(10)
		body := get410(t, l)
		if body.Error != ErrLogCompacted.Error() {
			t.Errorf("error = %q", body.Error)
		}
		if body.Floor != 10 {
			t.Errorf("floor = %d, want 10", body.Floor)
		}
		if !body.CheckpointAvailable || body.CheckpointSeq != 42 {
			t.Errorf("checkpoint hint = (%v, %d), want (true, 42)", body.CheckpointAvailable, body.CheckpointSeq)
		}
	})
	t.Run("without checkpoint", func(t *testing.T) {
		l := NewLog(LogOptions{})
		defer l.Close()
		l.SetFloor(10)
		body := get410(t, l)
		if body.Floor != 10 {
			t.Errorf("floor = %d, want 10", body.Floor)
		}
		if body.CheckpointAvailable {
			t.Error("checkpoint_available = true with no checkpoint source")
		}
	})
}
