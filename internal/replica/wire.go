// The replication wire format. One HTTP response body carries:
//
//	hello   = magic "GBREP001" | u64 leader seq
//	message = 'R' wal-frame          (one journal record, CRC32C framed
//	                                  exactly as on disk — see wal.EncodeFrame)
//	        | 'H' u64 leader seq     (heartbeat: keepalive + lag signal)
//
// Integers are little-endian, matching the WAL. The stream has no
// terminator: the leader holds the connection open and keeps sending as
// records arrive, so a clean EOF only happens when either side closes.
// The follower's resume position is implicit — it reconnects with
// ?from=<last applied seq> and the leader replays from there, making
// every disconnect recoverable without acknowledgements.
package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/wal"
)

var streamMagic = [8]byte{'G', 'B', 'R', 'E', 'P', '0', '0', '1'}

const (
	kindRecord    = 'R'
	kindHeartbeat = 'H'
)

// appendHello builds the stream preamble.
func appendHello(buf []byte, leaderSeq uint64) []byte {
	buf = append(buf, streamMagic[:]...)
	return binary.LittleEndian.AppendUint64(buf, leaderSeq)
}

// appendHeartbeat builds an 'H' message.
func appendHeartbeat(buf []byte, leaderSeq uint64) []byte {
	buf = append(buf, kindHeartbeat)
	return binary.LittleEndian.AppendUint64(buf, leaderSeq)
}

// appendRecord builds an 'R' message around an already-encoded frame.
func appendRecord(buf, frame []byte) []byte {
	buf = append(buf, kindRecord)
	return append(buf, frame...)
}

// message is one decoded stream element: kind is kindRecord (rec valid)
// or kindHeartbeat (leaderSeq valid).
type message struct {
	kind      byte
	leaderSeq uint64
	rec       wal.Record
}

// wireReader decodes a replication stream. It buffers reads but decodes
// strictly message-by-message, so a torn tail is detected exactly at
// the message where the connection died.
type wireReader struct {
	br *bufio.Reader
	fr *wal.FrameReader
}

func newWireReader(r io.Reader) *wireReader {
	br := bufio.NewReader(r)
	return &wireReader{br: br, fr: wal.NewFrameReader(br)}
}

// hello consumes and validates the stream preamble, returning the
// leader's sequence number at connect time.
func (w *wireReader) hello() (leaderSeq uint64, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(w.br, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short hello: %v", ErrStreamCorrupt, err)
	}
	if [8]byte(hdr[:8]) != streamMagic {
		return 0, fmt.Errorf("%w: bad hello magic %q", ErrStreamCorrupt, hdr[:8])
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}

// next returns the next message. io.EOF means the sender closed the
// stream at a message boundary (normal shutdown); anything else wraps
// ErrStreamCorrupt or wal.ErrFrameCorrupt and the caller should drop
// the connection and resume by sequence number.
func (w *wireReader) next() (message, error) {
	kind, err := w.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return message{}, io.EOF
		}
		return message{}, fmt.Errorf("%w: %v", ErrStreamCorrupt, err)
	}
	switch kind {
	case kindHeartbeat:
		var buf [8]byte
		if _, err := io.ReadFull(w.br, buf[:]); err != nil {
			return message{}, fmt.Errorf("%w: torn heartbeat: %v", ErrStreamCorrupt, err)
		}
		return message{kind: kindHeartbeat, leaderSeq: binary.LittleEndian.Uint64(buf[:])}, nil
	case kindRecord:
		rec, err := w.fr.Next()
		if err != nil {
			if errors.Is(err, wal.ErrFrameCorrupt) {
				return message{}, err
			}
			return message{}, fmt.Errorf("%w: torn record frame: %v", ErrStreamCorrupt, err)
		}
		return message{kind: kindRecord, rec: rec}, nil
	default:
		return message{}, fmt.Errorf("%w: unknown message tag 0x%02x", ErrStreamCorrupt, kind)
	}
}
