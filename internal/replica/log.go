package replica

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/wal"
)

// DefaultHeartbeat is the idle-stream heartbeat interval: frequent
// enough that a follower's lag_seconds gauge stays honest and dead
// connections are discovered quickly, rare enough to be free.
const DefaultHeartbeat = 500 * time.Millisecond

// LogOptions configures a replication Log.
type LogOptions struct {
	// Retain bounds the number of records kept in memory; older records
	// fall below the floor and followers that need them get 410 (see
	// ErrLogCompacted). 0 keeps everything — the right default while a
	// record is ~32 bytes plus its edges and followers are expected to
	// stay close.
	Retain int
	// Heartbeat is the idle-stream heartbeat interval. Default
	// DefaultHeartbeat.
	Heartbeat time.Duration
	// Logger receives stream lifecycle warnings; nil uses slog.Default().
	Logger *slog.Logger
	// CheckpointSeq, when non-nil, reports the sequence covered by the
	// leader's latest on-disk checkpoint (false when none exists yet).
	// Compaction refusals (410) include it so a follower — or the human
	// debugging one — can see whether a checkpoint re-seed can bridge
	// the gap. durable.Engine.CheckpointSeq and
	// durable.CheckpointDir.CheckpointSeq both fit.
	CheckpointSeq func() (uint64, bool)
}

// Log is the leader-side replication source: an append-only, sequence-
// indexed store of encoded WAL frames with an HTTP streaming handler.
// It deliberately does not read the WAL file — checkpoints truncate
// that file, while replication needs the record sequence to survive
// compaction for as long as a follower might ask for it. Instead the
// durable engine feeds it through Options.OnRecord (which also replays
// the on-disk suffix at startup), so the log's floor is exactly the
// leader's checkpoint at open time.
//
// Append is called from the single-writer apply loop; everything else
// may run concurrently.
type Log struct {
	hb      time.Duration
	retain  int
	logger  *slog.Logger
	ckptSeq func() (uint64, bool)

	mu     sync.Mutex
	frames [][]byte // frames[i] holds seq first+i
	first  uint64   // seq of frames[0]; meaningful when len(frames) > 0
	floor  uint64   // records ≤ floor are unavailable
	last   uint64   // seq of the newest record (0 before any)
	notify chan struct{}
	closed bool
}

// NewLog returns an empty Log.
func NewLog(opts LogOptions) *Log {
	hb := opts.Heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Log{hb: hb, retain: opts.Retain, logger: logger,
		ckptSeq: opts.CheckpointSeq, notify: make(chan struct{})}
}

// SetFloor declares every record ≤ seq unavailable — the leader's
// checkpoint covers them. Call once after durable.Open, with
// Recovery().SnapshotSeq, when the engine recovered from a checkpoint;
// records replayed from the WAL suffix arrive through Append as usual.
func (l *Log) SetFloor(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.floor {
		l.floor = seq
	}
	if l.last < seq {
		l.last = seq
	}
}

// Append stores one journaled record. Its signature matches
// durable.Options.OnRecord. Records must arrive in sequence order;
// duplicates (possible when a recovery replay and a live append race at
// startup) are ignored, and a gap is logged and dropped rather than
// stored — a hole would make every downstream follower diverge, while
// dropping just freezes the stream at the last contiguous record.
func (l *Log) Append(rec wal.Record) {
	frame := wal.EncodeFrame(rec.Seq, rec.Batch)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return
	case l.last == 0 && len(l.frames) == 0 && l.floor == 0:
		l.first = rec.Seq
		l.floor = rec.Seq - 1
	case rec.Seq <= l.last:
		return // duplicate
	case rec.Seq != l.last+1:
		l.logger.Warn("replica: sequence gap in log feed; record dropped",
			"got", rec.Seq, "want", l.last+1)
		return
	case len(l.frames) == 0:
		l.first = rec.Seq
	}
	l.frames = append(l.frames, frame)
	l.last = rec.Seq
	if l.retain > 0 && len(l.frames) > l.retain {
		drop := len(l.frames) - l.retain
		l.frames = append([][]byte(nil), l.frames[drop:]...)
		l.first += uint64(drop)
		l.floor = l.first - 1
	}
	close(l.notify)
	l.notify = make(chan struct{})
}

// Floor returns the highest unavailable sequence number (0 when the log
// reaches back to the stream's beginning).
func (l *Log) Floor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// Last returns the newest stored sequence number (0 before any).
func (l *Log) Last() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// Len returns the number of records currently retained.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.frames)
}

// Close wakes and terminates every open stream. Appends after Close are
// dropped.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.notify)
	l.notify = make(chan struct{})
}

// snapshotFrom returns the frames in (from, last], plus the current
// last/closed state and the channel that signals the next append.
func (l *Log) snapshotFrom(from uint64) (frames [][]byte, last uint64, closed bool, notify chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if next := from + 1; next >= l.first && len(l.frames) > 0 && next <= l.last {
		frames = l.frames[next-l.first:]
	}
	return frames, l.last, l.closed, l.notify
}

// Handler returns the streaming endpoint, conventionally mounted at
// GET /v1/wal. The from query parameter is the client's last applied
// sequence number (0 for a fresh follower); the response streams every
// record after it, then stays open, interleaving new records with
// heartbeats, until the client disconnects or the log closes.
// A from below the log floor gets 410 Gone with a JSON body naming the
// floor.
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(l.serveHTTP)
}

func (l *Log) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method not allowed", "")
		return
	}
	from := uint64(0)
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "malformed from parameter", err.Error())
			return
		}
		from = v
	}
	l.mu.Lock()
	floor, last := l.floor, l.last
	l.mu.Unlock()
	if from < floor {
		resp := CompactedResponse{
			Error: ErrLogCompacted.Error(),
			Detail: fmt.Sprintf("requested resume after seq %d, log floor is %d; re-seed from a checkpoint",
				from, floor),
			Floor: floor,
		}
		if l.ckptSeq != nil {
			resp.CheckpointSeq, resp.CheckpointAvailable = l.ckptSeq()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(resp)
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Graphbolt-Leader-Seq", strconv.FormatUint(last, 10))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(appendHello(nil, last)); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}

	hb := time.NewTicker(l.hb)
	defer hb.Stop()
	next := from
	for {
		frames, last, closed, notify := l.snapshotFrom(next)
		for _, frame := range frames {
			if _, err := w.Write(appendRecord(nil, frame)); err != nil {
				return
			}
			next++
		}
		if len(frames) > 0 {
			if flusher != nil {
				flusher.Flush()
			}
			continue // re-check: more may have arrived while writing
		}
		if closed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-notify:
		case <-hb.C:
			if _, err := w.Write(appendHeartbeat(nil, last)); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// CompactedResponse is the 410 body a compacted stream request gets:
// the standard error/detail pair extended with the log floor and
// whether (and through which sequence) a checkpoint is available for
// re-seeding. Followers act on the status code alone; the structured
// fields are the operator-facing diagnosis of why the stream cannot
// resume and what will bridge the gap.
type CompactedResponse struct {
	Error  string `json:"error"`
	Detail string `json:"detail,omitempty"`
	// Floor is the highest unavailable sequence number: the stream can
	// only resume from a position > Floor.
	Floor uint64 `json:"floor"`
	// CheckpointAvailable reports whether the leader has a checkpoint to
	// re-seed from (served at /v1/checkpoint); CheckpointSeq is the
	// sequence it covers when so.
	CheckpointAvailable bool   `json:"checkpoint_available"`
	CheckpointSeq       uint64 `json:"checkpoint_seq,omitempty"`
}

// httpError writes a JSON error body, the shape shared by every
// endpoint in this package: {"error": ..., "detail": ...}.
func httpError(w http.ResponseWriter, code int, msg, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error  string `json:"error"`
		Detail string `json:"detail,omitempty"`
	}{Error: msg, Detail: detail})
}
