// Package replicatest is the differential harness for WAL-shipping
// replication: a leader (durable engine + replication log behind a real
// HTTP server) streams randomized mutation batches while a follower
// tails it over the wire, and after every leader batch the harness
// waits for the follower to ack and asserts that the follower's
// SnapshotAt(g) is structure- and value-identical to the leader's for
// every generation the follower has acked.
//
// This is the replication restatement of the difftest invariant: the
// paper's BSP semantics promise that generation g is a pure function of
// the base graph and batches 1..g-1, so a follower that replayed the
// same journal prefix must hold the same snapshots — not approximately,
// not eventually-converging: identical per generation, throughout the
// stream, while a concurrent reader hammers the follower's ring under
// -race.
package replicatest

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/replica"
)

// Config shapes one replication run.
type Config struct {
	// Seed drives every random choice; runs are deterministic per seed.
	Seed uint64
	// Batches is the number of mutation batches streamed. Default 100.
	Batches int
	// MaxIterations bounds both engines. Default 10.
	MaxIterations int
	// CheckEvery is the batch interval between full equivalence sweeps
	// (every acked generation compared). The final sweep always runs.
	// Default 10.
	CheckEvery int
	// DurableFollower re-journals streamed records into a follower-side
	// WAL (the restartable configuration) instead of the in-memory
	// applier.
	DurableFollower bool
	// CheckpointEvery sets the leader's checkpoint cadence (0 = never),
	// proving the replication log's independence from WAL truncation.
	CheckpointEvery int
}

func (c Config) withDefaults() Config {
	if c.Batches <= 0 {
		c.Batches = 100
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 10
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 10
	}
	return c
}

// state mirrors the graph's evolution so leader and follower can be
// seeded with independently built but identical base graphs.
type state struct {
	n     int
	edges []graph.Edge
}

func randomState(r *gen.RNG) state {
	n := 5 + r.Intn(40)
	edges := make([]graph.Edge, r.Intn(5*n))
	for i := range edges {
		edges[i] = graph.Edge{
			From:   graph.VertexID(r.Intn(n)),
			To:     graph.VertexID(r.Intn(n)),
			Weight: float64(r.Intn(6) + 1),
		}
	}
	return state{n: n, edges: edges}
}

func (s state) build(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.Build(s.n, append([]graph.Edge(nil), s.edges...))
	if err != nil {
		t.Fatalf("replicatest: base graph build: %v", err)
	}
	return g
}

// randomBatch mutates around the current vertex horizon, including
// vertex-growing additions and deletions of real edges.
func randomBatch(r *gen.RNG, s *state) graph.Batch {
	var b graph.Batch
	for i := 0; i < r.Intn(10); i++ {
		e := graph.Edge{
			From:   graph.VertexID(r.Intn(s.n + 2)),
			To:     graph.VertexID(r.Intn(s.n + 2)),
			Weight: float64(r.Intn(6) + 1),
		}
		b.Add = append(b.Add, e)
		if int(e.From)+1 > s.n {
			s.n = int(e.From) + 1
		}
		if int(e.To)+1 > s.n {
			s.n = int(e.To) + 1
		}
	}
	for i := 0; i < r.Intn(6) && len(s.edges) > 0; i++ {
		e := s.edges[r.Intn(len(s.edges))]
		b.Del = append(b.Del, graph.Edge{From: e.From, To: e.To})
	}
	// Track additions only; exact deletion bookkeeping lives in
	// difftest — here the mirror only needs a plausible edge pool.
	s.edges = append(s.edges, b.Add...)
	return b
}

// Run streams cfg.Batches randomized batches through a leader and
// asserts leader/follower snapshot equivalence for every acked
// generation at every sweep. equal compares vertex values (use the
// difftest comparators' tolerances for float programs).
func Run[V, A any](t testing.TB, newProg func() core.Program[V, A], equal func(got, want V) bool, cfg Config) {
	t.Helper()
	cfg = cfg.withDefaults()
	r := gen.NewRNG(cfg.Seed)
	st := randomState(r)
	engOpts := core.Options{
		MaxIterations: cfg.MaxIterations,
		Retain:        cfg.Batches + 1,
	}

	// Leader: durable engine feeding a replication log, served over a
	// real HTTP stack so the wire path (chunked responses, flushes,
	// reconnects) is the one production uses.
	leaderEng, err := core.NewEngine[V, A](st.build(t), newProg(), engOpts)
	if err != nil {
		t.Fatalf("replicatest: leader engine: %v", err)
	}
	rlog := replica.NewLog(replica.LogOptions{Heartbeat: 5 * time.Millisecond})
	leader, err := durable.Open(leaderEng, t.TempDir(), durable.Options{
		OnRecord:        rlog.Append,
		CheckpointEvery: cfg.CheckpointEvery,
	})
	if err != nil {
		t.Fatalf("replicatest: leader open: %v", err)
	}
	defer leader.Close()
	defer rlog.Close()
	ts := httptest.NewServer(rlog.Handler())
	defer ts.Close()

	// Follower: identical base graph, tailing the stream.
	followerEng, err := core.NewEngine[V, A](st.build(t), newProg(), engOpts)
	if err != nil {
		t.Fatalf("replicatest: follower engine: %v", err)
	}
	fopts := replica.FollowerOptions{Client: ts.Client()}
	var f *replica.Follower[V, A]
	if cfg.DurableFollower {
		fd, err := durable.Open(followerEng, t.TempDir(), durable.Options{})
		if err != nil {
			t.Fatalf("replicatest: follower open: %v", err)
		}
		defer fd.Close()
		f, err = replica.NewDurableFollower(fd, ts.URL, fopts)
		if err != nil {
			t.Fatalf("replicatest: follower: %v", err)
		}
	} else {
		f, err = replica.NewFollower(followerEng, nil, ts.URL, fopts)
		if err != nil {
			t.Fatalf("replicatest: follower: %v", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.Start(ctx)
	defer f.Close(context.Background())

	// A concurrent reader hammers the follower's snapshot ring while
	// the replay goroutine writes — under -race this proves the read
	// path of a replica is as lock-free-safe as the leader's.
	stop := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		rr := gen.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, newest := f.RetainedGenerations()
			if newest == 0 {
				continue
			}
			g := 1 + rr.Uint64()%newest
			snap, err := f.SnapshotAt(g)
			if err != nil {
				readErr <- fmt.Errorf("SnapshotAt(%d): %w", g, err)
				return
			}
			if snap.Generation != g {
				readErr <- fmt.Errorf("SnapshotAt(%d) returned generation %d", g, snap.Generation)
				return
			}
		}
	}()

	for i := 0; i < cfg.Batches; i++ {
		b := randomBatch(r, &st)
		if _, err := leader.ApplyBatch(b); err != nil {
			t.Fatalf("replicatest: leader batch %d: %v", i+1, err)
		}
		if (i+1)%cfg.CheckEvery == 0 || i == cfg.Batches-1 {
			waitCaughtUp(t, f, leader.Seq())
			compareAcked(t, leaderEng, f, equal)
		}
	}
	close(stop)
	if err := <-readErr; err != nil {
		t.Fatalf("replicatest: concurrent reader: %v", err)
	}

	// Drained: the follower acked everything, so lag is zero and the
	// stream counters add up.
	if got, want := f.AppliedSeq(), leader.Seq(); got != want {
		t.Fatalf("replicatest: follower applied %d, leader at %d", got, want)
	}
	if lag := f.Lag(); lag != 0 {
		t.Fatalf("replicatest: lag %d after drain, want 0", lag)
	}
	if got := f.Records(); got != uint64(cfg.Batches) {
		t.Fatalf("replicatest: %d records streamed, want %d (no skips, no double-applies)", got, cfg.Batches)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("replicatest: follower error after drain: %v", err)
	}
}

// waitCaughtUp blocks until the follower acks seq — the harness's
// "leader Sync" barrier.
func waitCaughtUp[V, A any](t testing.TB, f *replica.Follower[V, A], seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for f.AppliedSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("replicatest: follower stuck at seq %d waiting for %d (err: %v)",
				f.AppliedSeq(), seq, f.Err())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// compareAcked asserts leader/follower equivalence for every
// generation the follower has acked: identical graph structure (edge
// multisets), identical vertex counts, values equal per the comparator.
func compareAcked[V, A any](t testing.TB, leader *core.Engine[V, A], f *replica.Follower[V, A], equal func(got, want V) bool) {
	t.Helper()
	oldest, newest := f.RetainedGenerations()
	for g := oldest; g <= newest; g++ {
		ls, err := leader.SnapshotAt(g)
		if err != nil {
			t.Fatalf("replicatest: leader SnapshotAt(%d): %v", g, err)
		}
		fs, err := f.SnapshotAt(g)
		if err != nil {
			t.Fatalf("replicatest: follower SnapshotAt(%d): %v", g, err)
		}
		if ls.Generation != g || fs.Generation != g {
			t.Fatalf("replicatest: gen %d: snapshots report generations %d / %d", g, ls.Generation, fs.Generation)
		}
		compareStructure(t, g, ls.Graph, fs.Graph)
		if len(ls.Values) != len(fs.Values) {
			t.Fatalf("replicatest: gen %d: %d leader values, %d follower values", g, len(ls.Values), len(fs.Values))
		}
		for v := range ls.Values {
			if !equal(fs.Values[v], ls.Values[v]) {
				t.Fatalf("replicatest: gen %d vertex %d: follower %v, leader %v", g, v, fs.Values[v], ls.Values[v])
			}
		}
	}
}

// compareStructure compares two graph snapshots as sorted edge
// multisets — graph.Apply is deterministic, so any divergence means a
// record was lost, duplicated or reordered in transit.
func compareStructure(t testing.TB, gen uint64, lg, fg *graph.Graph) {
	t.Helper()
	if lg.NumVertices() != fg.NumVertices() {
		t.Fatalf("replicatest: gen %d: leader has %d vertices, follower %d", gen, lg.NumVertices(), fg.NumVertices())
	}
	if lg.NumEdges() != fg.NumEdges() {
		t.Fatalf("replicatest: gen %d: leader has %d edges, follower %d", gen, lg.NumEdges(), fg.NumEdges())
	}
	le, fe := lg.Edges(nil), fg.Edges(nil)
	sortEdges(le)
	sortEdges(fe)
	for i := range le {
		if le[i] != fe[i] {
			t.Fatalf("replicatest: gen %d edge %d: leader %+v, follower %+v", gen, i, le[i], fe[i])
		}
	}
}

func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		if es[i].To != es[j].To {
			return es[i].To < es[j].To
		}
		return es[i].Weight < es[j].Weight
	})
}
