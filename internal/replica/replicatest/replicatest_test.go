package replicatest

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
)

// scalarEqual mirrors difftest.ScalarEqual: absolute tolerance, +Inf
// equal to +Inf (unreachable SSSP vertices).
func scalarEqual(tol float64) func(got, want float64) bool {
	return func(got, want float64) bool {
		if got == want || (math.IsInf(got, 1) && math.IsInf(want, 1)) {
			return true
		}
		return math.Abs(got-want) <= tol
	}
}

func batches(t *testing.T) int {
	if testing.Short() {
		return 30
	}
	return 100
}

// TestReplicationEquivalencePageRank: ~100 randomized batches through a
// leader while an in-memory follower tails; every acked generation's
// snapshot must match the leader's.
func TestReplicationEquivalencePageRank(t *testing.T) {
	Run[float64, float64](t,
		func() core.Program[float64, float64] { return algorithms.NewPageRank() },
		scalarEqual(1e-7),
		Config{Seed: 1, Batches: batches(t)})
}

// TestReplicationEquivalenceSSSPDurable: exact-value equivalence for
// SSSP with a durable follower (re-journaling every record) and leader
// checkpoints firing mid-stream — proving the replication log survives
// WAL truncation.
func TestReplicationEquivalenceSSSPDurable(t *testing.T) {
	Run[float64, float64](t,
		func() core.Program[float64, float64] { return algorithms.NewSSSP(0) },
		scalarEqual(0),
		Config{Seed: 2, Batches: batches(t), MaxIterations: 512, DurableFollower: true, CheckpointEvery: 7})
}

// TestReplicationEquivalenceConnectedComponents: a third program shape
// (min-label propagation) over a different seed.
func TestReplicationEquivalenceConnectedComponents(t *testing.T) {
	Run[float64, float64](t,
		func() core.Program[float64, float64] { return algorithms.NewConnectedComponents() },
		scalarEqual(0),
		Config{Seed: 3, Batches: batches(t), MaxIterations: 256})
}
