// Package replica turns the single-process engine into a multi-process
// read-scaling system: a leader ships its write-ahead log over HTTP and
// any number of followers replay it into their own engines, each
// serving the same generation-g snapshots the leader published, at a
// bounded, observable lag.
//
// The design leans entirely on the engine's BSP semantics: every
// journal record is one synchronous batch step, so a follower that has
// applied records 1..s holds exactly the leader's generation s+1
// snapshot (the initial computation is generation 1, each batch
// increments it). Replication therefore needs no value shipping, no
// merkle trees, no anti-entropy — sequence numbers are the whole
// protocol, and the CRC32C frames the journal already writes are the
// whole wire format.
//
// Three pieces:
//
//   - Log: the leader-side in-memory frame store, fed by
//     durable.Options.OnRecord, serving GET /v1/wal?from=SEQ as a
//     chunked long-poll stream (see wire.go for the format).
//   - Follower: tails the stream, replays records in strict sequence
//     order into a local applier (an in-memory engine or a durable one,
//     which re-journals under the leader's sequence numbers), and
//     refuses direct writes with ErrFollower.
//   - API: the HTTP/JSON query surface (/v1/snapshot, /v1/topk, ...)
//     served identically by leaders and followers, so a load balancer
//     can spread reads without caring which process is which.
package replica

import (
	"errors"

	"repro/internal/obs"
)

// ErrFollower reports a write submitted to a follower. Followers are
// strictly read-only — their state is defined as a replay prefix of the
// leader's journal, and a local write would fork it. The error is
// wrapped in a *serve.RetryableError so clients built around the
// Submit contract treat it like any other refusal: back off and retry
// against the leader.
var ErrFollower = errors.New("replica: follower is read-only (submit writes to the leader)")

// ErrLogCompacted reports a resume position below the leader's
// replication log floor: the records were absorbed into a checkpoint
// before the log attached, so the follower cannot be caught up by
// streaming alone. Surfaced as HTTP 410 by the Log handler. A follower
// whose applier can install checkpoints (durable engines and the
// engine applier both can) recovers on its own by fetching the
// leader's checkpoint from /v1/checkpoint and resuming the stream
// from its sequence; the error is terminal only when the leader serves
// no checkpoint to bridge the gap.
var ErrLogCompacted = errors.New("replica: replication log compacted before requested sequence")

// ErrStreamStalled reports a connection the stall watchdog killed: the
// stream carried neither records nor heartbeats for longer than the
// configured stall timeout. Always transient — the follower drops the
// connection and re-enters backoff-reconnect.
var ErrStreamStalled = errors.New("replica: replication stream stalled")

// ErrStreamCorrupt reports a malformed replication stream: bad hello
// magic, an unknown message tag, or a frame that failed CRC or decode.
// The follower treats it like a dropped connection — resume from the
// last applied sequence number.
var ErrStreamCorrupt = errors.New("replica: corrupt replication stream")

// metrics holds the follower's metric handles; the zero value (nil
// handles) is the instrumentation-off state, matching the other
// subsystems' nil-safe pattern.
type metrics struct {
	lagGenerations  *obs.Gauge
	lagSeconds      *obs.Gauge
	records         *obs.Counter
	resumes         *obs.Counter
	reseeds         *obs.Counter
	stalls          *obs.Counter
	checkpointFetch *obs.Histogram
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		lagGenerations: r.Gauge("graphbolt_replica_lag_generations",
			"Generations the follower trails the leader (0 when caught up)."),
		lagSeconds: r.Gauge("graphbolt_replica_lag_seconds",
			"Seconds since the follower was last caught up with the leader."),
		records: r.Counter("graphbolt_replica_records_streamed_total",
			"WAL records received and applied from the replication stream."),
		resumes: r.Counter("graphbolt_replica_resumes_total",
			"Stream reconnects after the initial connection (resume-by-seq events)."),
		reseeds: r.Counter("graphbolt_replica_reseeds_total",
			"Checkpoint re-seeds after the leader compacted past the resume position."),
		stalls: r.Counter("graphbolt_replica_stalls_total",
			"Connections dropped by the stream-stall watchdog (no records or heartbeats)."),
		checkpointFetch: r.Histogram("graphbolt_replica_checkpoint_fetch_seconds",
			"Checkpoint fetch-and-install duration during a re-seed.",
			obs.DefTimeBuckets),
	}
}

// RegisterMetrics pre-creates the replica metric set in r so the
// exposition endpoint shows every series (at zero) before a follower
// connects. Idempotent.
func RegisterMetrics(r *obs.Registry) {
	newMetrics(r)
}
