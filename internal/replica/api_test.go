package replica

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/qcache"
	"repro/internal/serve"
)

// newTestEngine builds a small PageRank engine over a chain graph with
// history retention. The engine has not run yet.
func newTestEngine(t testing.TB, n int) *core.Engine[float64, float64] {
	t.Helper()
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{From: graph.VertexID(i), To: graph.VertexID(i + 1), Weight: 1})
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine[float64, float64](g, algorithms.NewPageRank(), core.Options{
		MaxIterations: 10,
		Retain:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// engineSource adapts a bare engine as a Source for API tests.
type engineSource struct {
	eng *core.Engine[float64, float64]
}

func (s engineSource) Snapshot() *core.ResultSnapshot[float64] { return s.eng.Snapshot() }
func (s engineSource) SnapshotAt(gen uint64) (*core.ResultSnapshot[float64], error) {
	return s.eng.SnapshotAt(gen)
}
func (s engineSource) Diff(from, to uint64) (*core.SnapshotDiff[float64], error) {
	return s.eng.DiffSnapshots(from, to)
}
func (s engineSource) RetainedGenerations() (oldest, newest uint64) {
	return s.eng.RetainedGenerations()
}
func (s engineSource) Cache() *qcache.Cache { return nil }

// apiServer publishes 4 generations with Retain 2 (window [3,4]) and
// serves the query API over them.
func apiServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := newTestEngine(t, 6)
	eng.Run()
	for i := 0; i < 3; i++ {
		b := graph.Batch{Add: []graph.Edge{{From: 0, To: graph.VertexID(i + 2), Weight: 1}}}
		if _, err := eng.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(API[float64](engineSource{eng}))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	dec := json.NewDecoder(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := dec.Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return resp.StatusCode, ""
	}
	var e struct {
		Error  string `json:"error"`
		Detail string `json:"detail"`
	}
	if err := dec.Decode(&e); err == nil {
		buf.WriteString(e.Error)
		if e.Detail != "" {
			buf.WriteString(": " + e.Detail)
		}
	}
	return resp.StatusCode, buf.String()
}

// TestAPISnapshotEndpoints: current and per-generation metadata carry
// the generation, sizes and retention window.
func TestAPISnapshotEndpoints(t *testing.T) {
	ts := apiServer(t)
	var meta SnapshotMeta
	if code, _ := getJSON(t, ts, "/v1/snapshot", &meta); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if meta.Generation != 4 || meta.Vertices != 6 || meta.RetainedOldest != 3 || meta.RetainedNewest != 4 {
		t.Fatalf("meta = %+v", meta)
	}
	var at SnapshotMeta
	if code, _ := getJSON(t, ts, "/v1/snapshot/3", &at); code != http.StatusOK || at.Generation != 3 {
		t.Fatalf("snapshot/3: code %d meta %+v", code, at)
	}
}

// TestAPIEvictedGenerationIs410: a generation outside the retention
// window returns 410 Gone with the ErrGenerationNotRetained detail —
// the contract pinned by the ISSUE: clients must be told the snapshot
// is permanently gone, not that they erred.
func TestAPIEvictedGenerationIs410(t *testing.T) {
	ts := apiServer(t)
	for _, path := range []string{"/v1/snapshot/1", "/v1/topk?gen=1", "/v1/value/0?gen=1", "/v1/diff?from=1&to=4"} {
		code, body := getJSON(t, ts, path, nil)
		if code != http.StatusGone {
			t.Errorf("%s: status %d, want 410", path, code)
		}
		if !strings.Contains(body, core.ErrGenerationNotRetained.Error()) {
			t.Errorf("%s: body %q lacks ErrGenerationNotRetained detail", path, body)
		}
	}
}

// TestAPIMalformedRequestsAre400: malformed parameters are client
// errors, never 500s.
func TestAPIMalformedRequestsAre400(t *testing.T) {
	ts := apiServer(t)
	for _, path := range []string{
		"/v1/snapshot/notanumber",
		"/v1/snapshot/-1",
		"/v1/topk?k=notanumber",
		"/v1/topk?k=0",
		"/v1/topk?k=-3",
		"/v1/topk?gen=xyz",
		"/v1/value/notanumber",
		"/v1/value/0?gen=xyz",
		"/v1/diff?from=1",
		"/v1/diff?to=2",
		"/v1/diff?from=a&to=b",
		"/v1/diff",
	} {
		if code, _ := getJSON(t, ts, path, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
	}
}

// TestAPITopKAndValue: top-k is ordered and value lookups round-trip;
// an out-of-range vertex is 404.
func TestAPITopKAndValue(t *testing.T) {
	ts := apiServer(t)
	var topk TopKResponse[float64]
	if code, _ := getJSON(t, ts, "/v1/topk?k=3", &topk); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if topk.K != 3 || len(topk.Top) != 3 {
		t.Fatalf("topk = %+v", topk)
	}
	for i := 1; i < len(topk.Top); i++ {
		if topk.Top[i].Value > topk.Top[i-1].Value {
			t.Fatalf("topk not descending: %+v", topk.Top)
		}
	}
	var val ValueResponse[float64]
	if code, _ := getJSON(t, ts, "/v1/value/"+strconv.FormatUint(uint64(topk.Top[0].Vertex), 10), &val); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if val.Value != topk.Top[0].Value {
		t.Fatalf("value %v != topk head %v", val.Value, topk.Top[0].Value)
	}
	if code, _ := getJSON(t, ts, "/v1/value/99999", nil); code != http.StatusNotFound {
		t.Fatalf("out-of-range vertex: status %d, want 404", code)
	}
}

// TestAPIDiff: diff between the retained window's ends reports the
// changed vertices with parallel before/after arrays.
func TestAPIDiff(t *testing.T) {
	ts := apiServer(t)
	var d DiffResponse[float64]
	if code, _ := getJSON(t, ts, "/v1/diff?from=3&to=4", &d); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if d.From != 3 || d.To != 4 {
		t.Fatalf("diff = %+v", d)
	}
	if len(d.Changed) != len(d.Before) || len(d.Changed) != len(d.After) {
		t.Fatalf("parallel arrays diverge: %d/%d/%d", len(d.Changed), len(d.Before), len(d.After))
	}
}

// TestAPIMethodNotAllowed: writes to read endpoints are 405, and the
// API carries no write route at all.
func TestAPIMethodNotAllowed(t *testing.T) {
	ts := apiServer(t)
	resp, err := ts.Client().Post(ts.URL+"/v1/snapshot", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/snapshot: status %d, want 405", resp.StatusCode)
	}
}

// TestAPINothingPublished: before the first Run, reads are 503 (come
// back soon), not 500.
func TestAPINothingPublished(t *testing.T) {
	eng := newTestEngine(t, 4)
	ts := httptest.NewServer(API[float64](engineSource{eng}))
	defer ts.Close()
	for _, path := range []string{"/v1/snapshot", "/v1/topk", "/v1/value/0"} {
		if code, _ := getJSON(t, ts, path, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d, want 503", path, code)
		}
	}
}

// TestFollowerSubmitRefuses: the write path on a follower fails with
// ErrFollower in the retryable shape — errors.Is sees the sentinel,
// errors.As finds the RetryableError, and the backoff hint is positive.
func TestFollowerSubmitRefuses(t *testing.T) {
	l := NewLog(LogOptions{})
	defer l.Close()
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()
	f, err := NewFollower(newTestEngine(t, 4), nil, ts.URL, FollowerOptions{Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Submit(nil, graph.Batch{Add: []graph.Edge{{From: 0, To: 1, Weight: 1}}})
	if !errors.Is(err, ErrFollower) {
		t.Fatalf("Submit = %v, want ErrFollower", err)
	}
	var re *serve.RetryableError
	if !errors.As(err, &re) {
		t.Fatalf("Submit error %T is not a *serve.RetryableError", err)
	}
	if re.After <= 0 {
		t.Fatalf("RetryAfter hint %v, want positive", re.After)
	}
	if after, ok := serve.RetryAfter(err); !ok || after <= 0 {
		t.Fatalf("serve.RetryAfter = %v, %v", after, ok)
	}
}
