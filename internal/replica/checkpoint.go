package replica

import (
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/durable"
)

// SeqHeader carries the sequence number a checkpoint response covers,
// alongside the body. Followers prefer the in-band framed header (it is
// CRC-protected); the HTTP header exists for curl-level diagnosis and
// conditional fetches.
const SeqHeader = "X-Graphbolt-Checkpoint-Seq"

// CheckpointSource yields the leader's latest on-disk checkpoint.
// durable.Engine and durable.CheckpointDir both implement it.
type CheckpointSource interface {
	OpenCheckpoint() (*durable.CheckpointFile, error)
}

// CheckpointHandler returns the checkpoint-shipping endpoint,
// conventionally mounted at GET /v1/checkpoint. It streams the
// complete framed checkpoint file — the wal checkpoint header followed
// by the core snapshot, both CRC-protected — exactly as
// durable.InstallCheckpoint expects it. 404 until the leader has
// written a checkpoint. The covered sequence doubles as the ETag, so a
// follower re-fetching after a failed install can short-circuit with
// If-None-Match when the checkpoint has not advanced.
func CheckpointHandler(src CheckpointSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			httpError(w, http.StatusMethodNotAllowed, "method not allowed", "")
			return
		}
		cf, err := src.OpenCheckpoint()
		if errors.Is(err, durable.ErrNoCheckpoint) {
			httpError(w, http.StatusNotFound, "no checkpoint yet",
				"the leader has not completed a checkpoint; retry after one is written")
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "checkpoint unreadable", err.Error())
			return
		}
		defer cf.Close()
		etag := `"` + strconv.FormatUint(cf.Seq(), 10) + `"`
		w.Header().Set("ETag", etag)
		w.Header().Set(SeqHeader, strconv.FormatUint(cf.Seq(), 10))
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(cf.Size(), 10))
		w.WriteHeader(http.StatusOK)
		io.Copy(w, cf)
	})
}
