package replica

import (
	"cmp"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/qcache"
)

// Source is the read surface the query API serves — satisfied by both
// the root package's Server (the leader) and a Follower, which is the
// point: one API handler, mounted on either side of the replication
// stream, so readers cannot tell (and need not care) which process
// answers them.
type Source[V any] interface {
	Snapshot() *core.ResultSnapshot[V]
	SnapshotAt(gen uint64) (*core.ResultSnapshot[V], error)
	Diff(from, to uint64) (*core.SnapshotDiff[V], error)
	RetainedGenerations() (oldest, newest uint64)
	Cache() *qcache.Cache
}

// SnapshotMeta is the JSON shape of /v1/snapshot and /v1/snapshot/{gen}.
type SnapshotMeta struct {
	Generation     uint64    `json:"generation"`
	Vertices       int       `json:"vertices"`
	Edges          int64     `json:"edges"`
	Level          uint64    `json:"level"`
	PublishedAt    time.Time `json:"published_at"`
	RetainedOldest uint64    `json:"retained_oldest"`
	RetainedNewest uint64    `json:"retained_newest"`
}

// TopKResponse is the JSON shape of /v1/topk.
type TopKResponse[V any] struct {
	Generation uint64        `json:"generation"`
	K          int           `json:"k"`
	Top        []TopEntry[V] `json:"top"`
}

// TopEntry is one /v1/topk element.
type TopEntry[V any] struct {
	Vertex graph.VertexID `json:"vertex"`
	Value  V              `json:"value"`
}

// ValueResponse is the JSON shape of /v1/value/{vertex}.
type ValueResponse[V any] struct {
	Generation uint64         `json:"generation"`
	Vertex     graph.VertexID `json:"vertex"`
	Value      V              `json:"value"`
}

// DiffResponse is the JSON shape of /v1/diff.
type DiffResponse[V any] struct {
	From        uint64           `json:"from"`
	To          uint64           `json:"to"`
	Changed     []graph.VertexID `json:"changed"`
	Before      []V              `json:"before"`
	After       []V              `json:"after"`
	VertexDelta int              `json:"vertex_delta"`
	EdgeDelta   int64            `json:"edge_delta"`
}

// API returns the HTTP/JSON query surface over src:
//
//	GET /v1/snapshot            newest snapshot metadata
//	GET /v1/snapshot/{gen}      metadata for a retained generation
//	GET /v1/topk?k=N[&gen=G]    top-N vertices by value (qcache-memoized)
//	GET /v1/value/{vertex}[?gen=G]  one vertex's value
//	GET /v1/diff?from=F&to=T    changed vertices between two generations
//
// Errors are JSON ({"error", "detail"}): 400 for malformed parameters,
// 404 for a vertex outside the snapshot, 410 (Gone) for a generation
// outside the retention window — the condition is permanent, the
// snapshot is never coming back — and 503 before anything is published.
// Non-GET methods get 405 from the mux.
func API[V cmp.Ordered](src Source[V]) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s := src.Snapshot()
		if s == nil {
			httpError(w, http.StatusServiceUnavailable, "nothing published yet", "")
			return
		}
		writeSnapshotMeta(w, src, s)
	})
	mux.HandleFunc("GET /v1/snapshot/{gen}", func(w http.ResponseWriter, r *http.Request) {
		gen, err := strconv.ParseUint(r.PathValue("gen"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "malformed generation", err.Error())
			return
		}
		s, err := src.SnapshotAt(gen)
		if err != nil {
			snapshotError(w, err)
			return
		}
		writeSnapshotMeta(w, src, s)
	})
	mux.HandleFunc("GET /v1/topk", func(w http.ResponseWriter, r *http.Request) {
		k := 10
		if s := r.URL.Query().Get("k"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				httpError(w, http.StatusBadRequest, "malformed k parameter", "k must be a positive integer")
				return
			}
			k = v
		}
		s, ok := resolveSnapshot(w, src, r.URL.Query().Get("gen"))
		if !ok {
			return
		}
		top := qcache.TopK(src.Cache(), s, k)
		resp := TopKResponse[V]{Generation: s.Generation, K: k, Top: make([]TopEntry[V], len(top))}
		for i, t := range top {
			resp.Top[i] = TopEntry[V]{Vertex: t.Vertex, Value: t.Value}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /v1/value/{vertex}", func(w http.ResponseWriter, r *http.Request) {
		v, err := strconv.ParseUint(r.PathValue("vertex"), 10, 64)
		if err != nil || graph.VertexID(v) > graph.MaxVertexID {
			httpError(w, http.StatusBadRequest, "malformed vertex id", "vertex must be a non-negative integer")
			return
		}
		s, ok := resolveSnapshot(w, src, r.URL.Query().Get("gen"))
		if !ok {
			return
		}
		val, ok := qcache.Value(src.Cache(), s, graph.VertexID(v))
		if !ok {
			httpError(w, http.StatusNotFound, "vertex not in snapshot",
				"vertex "+strconv.FormatUint(v, 10)+" is outside generation "+strconv.FormatUint(s.Generation, 10))
			return
		}
		writeJSON(w, ValueResponse[V]{Generation: s.Generation, Vertex: graph.VertexID(v), Value: val})
	})
	mux.HandleFunc("GET /v1/diff", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		from, err1 := strconv.ParseUint(q.Get("from"), 10, 64)
		to, err2 := strconv.ParseUint(q.Get("to"), 10, 64)
		if q.Get("from") == "" || q.Get("to") == "" || err1 != nil || err2 != nil {
			httpError(w, http.StatusBadRequest, "malformed diff parameters",
				"both from and to must be generation numbers")
			return
		}
		d, err := src.Diff(from, to)
		if err != nil {
			snapshotError(w, err)
			return
		}
		resp := DiffResponse[V]{
			From: d.From, To: d.To,
			Changed: d.Changed, Before: d.Before, After: d.After,
			VertexDelta: d.VertexDelta, EdgeDelta: d.EdgeDelta,
		}
		if resp.Changed == nil {
			resp.Changed = []graph.VertexID{}
		}
		writeJSON(w, resp)
	})
	return mux
}

// resolveSnapshot picks the snapshot a query runs against: the newest
// when genParam is empty, SnapshotAt otherwise. On failure it writes
// the error response and reports !ok.
func resolveSnapshot[V any](w http.ResponseWriter, src Source[V], genParam string) (*core.ResultSnapshot[V], bool) {
	if genParam == "" {
		s := src.Snapshot()
		if s == nil {
			httpError(w, http.StatusServiceUnavailable, "nothing published yet", "")
			return nil, false
		}
		return s, true
	}
	gen, err := strconv.ParseUint(genParam, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "malformed gen parameter", err.Error())
		return nil, false
	}
	s, err := src.SnapshotAt(gen)
	if err != nil {
		snapshotError(w, err)
		return nil, false
	}
	return s, true
}

// snapshotError maps SnapshotAt/Diff failures onto status codes: a
// generation outside the retention window is 410 Gone — evicted
// snapshots never return, so clients should stop asking — with the
// engine's ErrGenerationNotRetained detail preserved in the body.
func snapshotError(w http.ResponseWriter, err error) {
	if errors.Is(err, core.ErrGenerationNotRetained) {
		httpError(w, http.StatusGone, core.ErrGenerationNotRetained.Error(), err.Error())
		return
	}
	httpError(w, http.StatusInternalServerError, "snapshot lookup failed", err.Error())
}

func writeSnapshotMeta[V any](w http.ResponseWriter, src Source[V], s *core.ResultSnapshot[V]) {
	oldest, newest := src.RetainedGenerations()
	writeJSON(w, SnapshotMeta{
		Generation:     s.Generation,
		Vertices:       s.Graph.NumVertices(),
		Edges:          s.Graph.NumEdges(),
		Level:          uint64(s.Level),
		PublishedAt:    s.PublishedAt,
		RetainedOldest: oldest,
		RetainedNewest: newest,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
