package replica

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/wal"
)

// validStream builds hello + the given messages, the way Handler does.
func validStream(leaderSeq uint64, msgs ...[]byte) []byte {
	buf := appendHello(nil, leaderSeq)
	for _, m := range msgs {
		buf = append(buf, m...)
	}
	return buf
}

func recordMsg(seq uint64, b graph.Batch) []byte {
	return appendRecord(nil, wal.EncodeFrame(seq, b))
}

// FuzzWireDecode feeds arbitrary byte streams to the replication wire
// decoder. The decoder must never panic, must classify every failure as
// ErrStreamCorrupt or wal.ErrFrameCorrupt (a follower drops the
// connection and resumes by seq on either — a misclassified error would
// instead kill the follower), and every message it does accept must
// survive re-encoding with the leader's append helpers and decoding
// again unchanged. Byte-exact prefix equality is deliberately NOT
// asserted: binary.Uvarint tolerates non-minimal count encodings, so a
// fuzzed frame can be semantically valid without being the canonical
// bytes the leader would emit.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(validStream(0))
	f.Add(validStream(3,
		recordMsg(1, graph.Batch{Add: []graph.Edge{{From: 0, To: 1, Weight: 2.5}}}),
		appendHeartbeat(nil, 1),
		recordMsg(2, graph.Batch{Del: []graph.Edge{{From: 3, To: 4, Weight: math.Inf(1)}}}),
		recordMsg(3, graph.Batch{}),
		appendHeartbeat(nil, 3),
	))
	torn := validStream(2, recordMsg(1, graph.Batch{Add: []graph.Edge{{From: 9, To: 9, Weight: 1}}}))
	f.Add(torn[:len(torn)-5]) // record cut mid-frame
	f.Add(torn[:12])          // hello cut short
	corrupt := append([]byte{}, torn...)
	corrupt[len(corrupt)-2] ^= 0xff // flip a frame body bit: CRC must catch it
	f.Add(corrupt)
	f.Add(validStream(1, []byte{'X', 1, 2, 3})) // unknown message tag
	f.Add([]byte("GBREP999aaaaaaaa"))           // wrong magic

	f.Fuzz(func(t *testing.T, data []byte) {
		wr := newWireReader(bytes.NewReader(data))
		if _, err := wr.hello(); err != nil {
			if !errors.Is(err, ErrStreamCorrupt) {
				t.Fatalf("hello error %v is not ErrStreamCorrupt", err)
			}
			return
		}
		for {
			msg, err := wr.next()
			if err == io.EOF {
				return // clean message boundary
			}
			if err != nil {
				if !errors.Is(err, ErrStreamCorrupt) && !errors.Is(err, wal.ErrFrameCorrupt) {
					t.Fatalf("next error %v is neither ErrStreamCorrupt nor ErrFrameCorrupt", err)
				}
				return
			}
			var re []byte
			switch msg.kind {
			case kindHeartbeat:
				re = appendHeartbeat(nil, msg.leaderSeq)
			case kindRecord:
				re = recordMsg(msg.rec.Seq, msg.rec.Batch)
			default:
				t.Fatalf("decoder returned unknown kind 0x%02x without error", msg.kind)
			}
			again, err := newWireReaderAfterHello(re).next()
			if err != nil {
				t.Fatalf("re-decoding a re-encoded message failed: %v", err)
			}
			if !messageEqual(again, msg) {
				t.Fatalf("round trip changed the message: %+v vs %+v", again, msg)
			}
		}
	})
}

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint install
// path a follower runs on a /v1/checkpoint response body. The installer
// must never panic, and any rejected body — truncated transfer, corrupt
// CRC, sequence regression — must leave the applier exactly as it was:
// same sequence, same published snapshot. A body it does accept must
// move the sequence strictly forward and publish a nonzero generation.
// This is the follower's protection against a torn or hostile transfer
// poisoning its state mid-re-seed.
func FuzzCheckpointDecode(f *testing.F) {
	shipped := func(seq uint64) []byte {
		eng := newTestEngine(f, 8)
		eng.Run()
		if _, err := eng.ApplyBatch(graph.Batch{Add: []graph.Edge{{From: 0, To: 2, Weight: 2}}}); err != nil {
			f.Fatal(err)
		}
		hdr := wal.EncodeCheckpointHeader(seq)
		var buf bytes.Buffer
		buf.Write(hdr[:])
		if err := eng.WriteSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := shipped(7)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:wal.CheckpointHeaderSize]) // header only, body gone
	f.Add(valid[:len(valid)-3])             // torn snapshot trailer
	f.Add(shipped(0))                       // sequence regression (0 ≤ applier's 0)
	hdrFlip := append([]byte{}, valid...)
	hdrFlip[10] ^= 0x01 // covered-seq bit: header CRC must catch it
	f.Add(hdrFlip)
	bodyFlip := append([]byte{}, valid...)
	bodyFlip[wal.CheckpointHeaderSize+25] ^= 0x80 // snapshot payload bit
	f.Add(bodyFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := newTestEngine(t, 8)
		eng.Run()
		ap := NewEngineApplier(eng).(*engineApplier[float64, float64])
		before, beforeSeq := eng.Snapshot(), ap.Seq()
		seq, err := ap.InstallCheckpoint(bytes.NewReader(data))
		if err != nil {
			if eng.Snapshot() != before || ap.Seq() != beforeSeq {
				t.Fatalf("rejected checkpoint still mutated the applier (seq %d -> %d)", beforeSeq, ap.Seq())
			}
			return
		}
		if seq <= beforeSeq || ap.Seq() != seq {
			t.Fatalf("accepted checkpoint did not advance: returned %d, applier at %d (was %d)",
				seq, ap.Seq(), beforeSeq)
		}
		after := eng.Snapshot()
		if after == before || after.Generation == 0 {
			t.Fatal("accepted checkpoint did not publish a fresh snapshot")
		}
	})
}

// newWireReaderAfterHello wraps raw message bytes (no hello preamble) in
// a decoder, for round-trip checks.
func newWireReaderAfterHello(p []byte) *wireReader {
	return newWireReader(bytes.NewReader(p))
}

func messageEqual(a, b message) bool {
	if a.kind != b.kind || a.leaderSeq != b.leaderSeq || a.rec.Seq != b.rec.Seq {
		return false
	}
	return edgesEqual(a.rec.Batch.Add, b.rec.Batch.Add) && edgesEqual(a.rec.Batch.Del, b.rec.Batch.Del)
}

// edgesEqual compares edge lists with NaN-safe weight comparison.
func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To ||
			math.Float64bits(a[i].Weight) != math.Float64bits(b[i].Weight) {
			return false
		}
	}
	return true
}
