package serve_test

import (
	"context"
	"errors"
	"log/slog"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/graph"
	"repro/internal/health"
	"repro/internal/serve"
)

// slowAdmission is a config whose assumed throughput (1000 edges/s) and
// SLO (10ms, headroom 0.8 → 8ms budget → 8 edges of backlog ahead of a
// submission) make shed thresholds exact and deterministic while the
// stub applier's gate is closed: no apply completes, so no throughput
// sample perturbs the rate.
func slowAdmission() *admission.Config {
	return &admission.Config{SLO: 10 * time.Millisecond, InitialRate: 1000}
}

func eventually(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedsOverloaded drives a loop into overload: with the
// apply gate closed, admitted weight accumulates until the estimated
// wait blows the SLO budget, at which point Submit sheds with a
// *RetryableError wrapping ErrOverloaded, the health tracker flips to
// Overloaded, and — once the gate opens and the backlog drains — the
// loop returns to Healthy on its own.
func TestAdmissionShedsOverloaded(t *testing.T) {
	s := newStubApplier()
	tr := health.NewTracker(nil)
	l := serve.NewLoop(s, serve.Options{
		Admission: slowAdmission(),
		Health:    tr,
		Logger:    slog.New(slog.DiscardHandler),
	})
	gateOpen := false
	defer func() {
		if !gateOpen {
			close(s.gate) // an early Fatal must not deadlock Close behind the gate
		}
		l.Close(nil)
	}()

	// 5 edges in flight: the first submission sees an empty queue and is
	// always admissible; its weight stays charged while the gate is shut.
	queueFirstBatch(t, l, s, addBatch(edge(0, 1), edge(0, 2), edge(0, 3), edge(0, 4), edge(0, 5)))
	// 4 more queued behind 5ms of estimated wait: inside the 8ms budget.
	tk2, err := l.Submit(nil, addBatch(edge(1, 2), edge(1, 3), edge(1, 4), edge(1, 5)))
	if err != nil {
		t.Fatalf("second submit refused: %v", err)
	}
	// 9 edges of backlog ahead mean a 9ms queue wait: shed.
	_, err = l.Submit(nil, addBatch(edge(2, 3), edge(2, 4), edge(2, 5), edge(2, 6)))
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("third submit err = %v, want ErrOverloaded", err)
	}
	var re *serve.RetryableError
	if !errors.As(err, &re) || re.After <= 0 || re.Detail == "" {
		t.Fatalf("shed error lacks retry shape: %#v", err)
	}
	if after, ok := serve.RetryAfter(err); !ok || after != re.After {
		t.Fatalf("RetryAfter(err) = %v, %v; want %v, true", after, ok, re.After)
	}
	if got := l.Admission().Shed(); got != 1 {
		t.Fatalf("Shed() = %d, want 1", got)
	}
	if tr.State() != health.Overloaded {
		t.Fatalf("health = %v, want Overloaded", tr.State())
	}

	// Drain: the instant applies push the throughput EWMA up, the
	// estimated wait collapses, and the controller exits overload.
	gateOpen = true
	close(s.gate)
	a, err := tk2.Wait(nil)
	if err != nil {
		t.Fatalf("queued batch failed: %v", err)
	}
	if a.QueueWait <= 0 {
		t.Fatalf("Applied.QueueWait = %v, want > 0 for a batch that waited", a.QueueWait)
	}
	eventually(t, "health to return to Healthy", func() bool { return tr.State() == health.Healthy })
	if l.Admission().Overloaded() {
		t.Fatal("controller still overloaded after drain")
	}

	// Shedding is over: an equally sized submission is admitted again.
	tk, err := l.Submit(nil, addBatch(edge(3, 4), edge(3, 5), edge(3, 6), edge(3, 7)))
	if err != nil {
		t.Fatalf("submit after drain refused: %v", err)
	}
	if _, err := tk.Wait(nil); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionDeadlineTightensBudget: a context deadline tighter than
// the SLO budget sheds work the SLO alone would admit.
func TestAdmissionDeadlineTightensBudget(t *testing.T) {
	s := newStubApplier()
	close(s.gate)
	l := serve.NewLoop(s, serve.Options{
		Admission: slowAdmission(),
		Logger:    slog.New(slog.DiscardHandler),
	})
	defer l.Close(nil)

	// 6 edges on an empty queue: zero queue wait, trivially inside the
	// SLO budget — but completion (own apply ≈ 6ms) overruns a ~2ms
	// deadline, and the deadline gate charges the batch's own weight.
	// Use an absolute deadline far enough out that ctx.Err() is still
	// nil when Submit checks it.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(2*time.Millisecond))
	defer cancel()
	_, err := l.Submit(ctx, addBatch(edge(0, 1), edge(0, 2), edge(0, 3), edge(0, 4), edge(0, 5), edge(0, 6)))
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("deadline submit err = %v, want ErrOverloaded", err)
	}

	// The same batch with no deadline is admitted.
	tk, err := l.Submit(nil, addBatch(edge(0, 1), edge(0, 2), edge(0, 3), edge(0, 4), edge(0, 5), edge(0, 6)))
	if err != nil {
		t.Fatalf("no-deadline submit refused: %v", err)
	}
	if _, err := tk.Wait(nil); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionPrecedence: a closed loop refuses with ErrClosed, never
// ErrOverloaded — terminal refusals outrank shedding.
func TestAdmissionPrecedence(t *testing.T) {
	s := newStubApplier()
	close(s.gate)
	l := serve.NewLoop(s, serve.Options{
		Admission: slowAdmission(),
		Logger:    slog.New(slog.DiscardHandler),
	})
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	_, err := l.Submit(nil, addBatch(edge(0, 1)))
	if !errors.Is(err, serve.ErrClosed) || errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("submit after close err = %v, want ErrClosed", err)
	}
}

// TestQueueFullIsRetryable: the Reject policy's queue-full refusal
// carries the same retryable shape as an admission shed.
func TestQueueFullIsRetryable(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 1, Policy: serve.Reject})
	defer func() { close(s.gate); l.Close(nil) }()

	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	if _, err := l.Submit(nil, addBatch(edge(0, 2))); err != nil {
		t.Fatalf("submit into free slot refused: %v", err)
	}
	_, err := l.Submit(nil, addBatch(edge(0, 3)))
	if !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	after, ok := serve.RetryAfter(err)
	if !ok || after <= 0 {
		t.Fatalf("RetryAfter = %v, %v; want positive hint", after, ok)
	}
}

// TestQuarantineReleasesAdmittedWeight: a quarantined batch's weight
// must leave the backlog, or the controller would count phantom work
// forever and keep shedding.
func TestQuarantineReleasesAdmittedWeight(t *testing.T) {
	s := newStubApplier()
	close(s.gate)
	l := serve.NewLoop(s, serve.Options{
		Admission: slowAdmission(),
		Logger:    slog.New(slog.DiscardHandler),
	})
	defer l.Close(nil)

	bad := graph.Batch{Add: []graph.Edge{{From: 0, To: graph.MaxVertexID + 1, Weight: 1}}}
	tk, err := l.Submit(nil, bad)
	if err != nil {
		t.Fatalf("poison submit rejected eagerly: %v", err)
	}
	if _, err := tk.Wait(nil); !errors.Is(err, graph.ErrInvalidBatch) {
		t.Fatalf("ticket err = %v, want ErrInvalidBatch", err)
	}
	eventually(t, "backlog to drop to zero", func() bool { return l.Admission().Backlog() == 0 })
}

// TestLoopCapFollowsController: MaxBatchEdges reads the governor's cap
// when admission is on, and SetMaxBatchEdges round-trips with clamping.
func TestLoopCapFollowsController(t *testing.T) {
	s := newStubApplier()
	close(s.gate)
	l := serve.NewLoop(s, serve.Options{
		MaxBatchEdges: 1000,
		Admission:     &admission.Config{FloorEdges: 100, CeilEdges: 2000},
		Logger:        slog.New(slog.DiscardHandler),
	})
	defer l.Close(nil)

	if got := l.MaxBatchEdges(); got != 1000 {
		t.Fatalf("initial cap = %d, want the seeded MaxBatchEdges 1000", got)
	}
	l.SetMaxBatchEdges(50) // below the floor: clamps up
	if got := l.MaxBatchEdges(); got != 100 {
		t.Fatalf("cap after SetMaxBatchEdges(50) = %d, want floor 100", got)
	}
	l.SetMaxBatchEdges(5000) // above the ceiling: clamps down
	if got := l.MaxBatchEdges(); got != 2000 {
		t.Fatalf("cap after SetMaxBatchEdges(5000) = %d, want ceiling 2000", got)
	}
}
