// Package serve provides the ingest half of the read/write-separated
// serving architecture: a single-writer apply loop fed by a bounded
// mutation queue.
//
// The engine's BSP guarantee makes the split safe: every completed
// ApplyBatch publishes an immutable result snapshot (core.ResultSnapshot)
// that readers access lock-free, so the only synchronization problem
// left is ordering writers — which this package solves by funneling all
// mutations through one goroutine. Producers call Submit from any
// goroutine; the loop dequeues batches, optionally coalesces compatible
// neighbors up to a size cap, and applies them one at a time to the
// wrapped engine. Wrapping a durable.Engine preserves its
// journal-before-mutate ordering, because the journaling happens inside
// the same single-threaded apply call.
//
// Coalescing merges a contiguous run of queued batches into one
// ApplyBatch call, amortizing refinement cost under bursty ingest. Two
// batches are compatible unless the later one deletes an edge key the
// accumulated batch adds: within one graph.Batch, deletions match only
// pre-batch edges, so folding such a pair into one batch would change
// which edge instance dies. Incompatible batches simply end the run and
// are applied in a later call; batches are never split or reordered.
//
// # Failure domains
//
// The loop classifies apply failures into three domains rather than
// latching on the first error:
//
//   - Poison batches (graph.ErrInvalidBatch): the batch itself is
//     malformed. It is rejected on its ticket, recorded in a bounded
//     quarantine ring (Quarantined), and the loop moves on — one bad
//     producer cannot take down ingest. Validation runs at dequeue, so
//     a poison batch never reaches the engine.
//
//   - Infrastructure faults (the applier implements Recoverer and
//     reports an Ailment): the engine's in-memory state is intact but
//     its storage is refusing writes. The loop enters degraded mode —
//     Submit fails fast with ErrDegraded while reads keep serving —
//     holds the in-flight batch, and retries Recover under capped
//     exponential backoff until the fault clears, then replays the held
//     batch and the queue and returns to healthy.
//
//   - Everything else — a mid-apply panic (parallel.PanicError) leaves
//     the engine state undefined — is terminal: the loop latches the
//     failure (Err), fails all queued tickets, and refuses further
//     submissions. A durable engine can be reopened from its checkpoint
//     and journal.
//
// Health transitions are published through an optional health.Tracker,
// and an optional watchdog flags apply calls that exceed a deadline.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/graph"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Applier is the single-writer mutation target: core.Engine and
// durable.Engine both satisfy it.
type Applier interface {
	ApplyBatch(graph.Batch) (core.Stats, error)
}

// Recoverer is the optional self-healing contract an Applier may
// implement (durable.Engine does). Ailment reports the storage fault
// currently blocking writes (nil when healthy); Recover attempts to
// clear it. Both are called only from the apply goroutine, preserving
// the single-writer invariant.
type Recoverer interface {
	Ailment() error
	Recover() error
}

// Policy selects what Submit does when the queue is full.
type Policy int

const (
	// Block makes Submit wait for queue space (or context cancellation).
	// The default: backpressure propagates to producers.
	Block Policy = iota
	// Reject makes Submit fail fast with ErrQueueFull.
	Reject
)

// Default sizing. DefaultQueueDepth bounds memory under producer bursts;
// DefaultMaxBatchEdges caps how large a coalesced batch may grow (larger
// merges amortize refinement better but raise per-apply latency);
// DefaultQuarantineDepth bounds the poison-batch ring.
const (
	DefaultQueueDepth      = 64
	DefaultMaxBatchEdges   = 4096
	DefaultQuarantineDepth = 32
)

// Typed failure sentinels, for errors.Is.
var (
	// ErrQueueFull reports a Submit rejected under the Reject policy.
	// The error actually returned wraps this sentinel in a
	// *RetryableError carrying a RetryAfter hint: match with
	// errors.Is(err, ErrQueueFull), extract the hint with RetryAfter.
	ErrQueueFull = errors.New("serve: mutation queue full")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("serve: apply loop closed")
	// ErrDegraded reports a write refused while the engine's storage is
	// being repaired. Reads stay available; the submission can be
	// retried once recovery completes.
	ErrDegraded = errors.New("serve: engine degraded, writes disabled")
	// ErrOverloaded reports a Submit shed by admission control: the
	// estimated time-to-apply for the current backlog cannot meet the
	// configured SLO or the caller's context deadline, so the request
	// fails fast instead of blocking into a doomed wait. Like
	// ErrQueueFull it is returned wrapped in a *RetryableError whose
	// RetryAfter says when an equally sized submission is expected to
	// fit; match with errors.Is(err, ErrOverloaded).
	ErrOverloaded = errors.New("serve: overloaded, admission refused")
)

// DefaultRetryAfter is the backoff hint attached to retryable refusals
// when no admission controller is present to estimate a better one.
const DefaultRetryAfter = 25 * time.Millisecond

// RetryableError is the shared shape of load-induced refusals
// (ErrQueueFull, ErrOverloaded): a sentinel for errors.Is plus a
// client backoff hint. Both conditions are transient by construction —
// the queue drains, the backlog shrinks — so clients handle them
// uniformly: back off RetryAfter, then resubmit.
type RetryableError struct {
	// Sentinel is ErrQueueFull or ErrOverloaded.
	Sentinel error
	// After is the suggested backoff before resubmitting. Always
	// positive.
	After time.Duration
	// Detail optionally elaborates the refusal (estimated wait, SLO).
	Detail string
}

// Error formats the sentinel with the hint and detail.
func (e *RetryableError) Error() string {
	msg := fmt.Sprintf("%v (retry after %v)", e.Sentinel, e.After)
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Unwrap exposes the sentinel to errors.Is.
func (e *RetryableError) Unwrap() error { return e.Sentinel }

// RetryAfter returns the suggested client backoff.
func (e *RetryableError) RetryAfter() time.Duration { return e.After }

// RetryAfter extracts the backoff hint from a Submit error, reporting
// whether err (or anything it wraps) is a retryable refusal. Callers
// back off uniformly:
//
//	if after, ok := serve.RetryAfter(err); ok {
//	    time.Sleep(after)
//	    // resubmit
//	}
func RetryAfter(err error) (time.Duration, bool) {
	var re *RetryableError
	if errors.As(err, &re) {
		return re.After, true
	}
	return 0, false
}

// Options configures a Loop.
type Options struct {
	// QueueDepth bounds the number of queued (unapplied) batches.
	// Default DefaultQueueDepth.
	QueueDepth int

	// MaxBatchEdges caps the total edge count (Add+Del) of a coalesced
	// batch; merging stops at the cap. A single submitted batch larger
	// than the cap is still applied whole — batches are never split.
	// Default DefaultMaxBatchEdges. With Admission set this is only the
	// starting point: the governor floats the effective cap between the
	// configured floor and ceiling. SetMaxBatchEdges adjusts it at
	// runtime either way.
	MaxBatchEdges int

	// Admission, when non-nil, enables deadline-aware admission control
	// and the adaptive coalescing governor: Submit estimates the
	// time-to-apply for the current backlog and sheds with ErrOverloaded
	// (wrapped in a *RetryableError) when the configured SLO or the
	// caller's context deadline cannot be met, and the coalescing cap
	// floats with observed load. The config's zero fields take the
	// admission package defaults; its Metrics and InitialCap fall back
	// to this Options' Metrics and MaxBatchEdges. Overload episodes are
	// published to Health as the Overloaded state, without ever
	// overriding Degraded or Failed.
	Admission *admission.Config

	// DisableCoalescing applies every submitted batch individually.
	DisableCoalescing bool

	// Policy selects Block (default) or Reject behavior on a full queue.
	Policy Policy

	// QuarantineDepth bounds the ring of retained poison batches; the
	// oldest record is evicted when it overflows. Default
	// DefaultQuarantineDepth.
	QuarantineDepth int

	// Backoff paces Recover retries in degraded mode. The zero value
	// applies the backoff package defaults.
	Backoff backoff.Policy

	// ApplyDeadline, when positive, arms a watchdog on every apply call:
	// exceeding it raises the stuck-applies gauge, logs a warning, and
	// invokes OnStuck. The apply is not interrupted — the engine has no
	// cancellation points — so this is a flag, not a kill switch.
	ApplyDeadline time.Duration

	// OnStuck, when non-nil, is called (from a timer goroutine) when an
	// apply exceeds ApplyDeadline, with the attempt's sequence number
	// and the elapsed time at that moment. It may fire shortly after a
	// slow apply completes.
	OnStuck func(seq uint64, elapsed time.Duration)

	// Health, when non-nil, receives Healthy/Degraded/Failed transitions
	// as the loop changes modes.
	Health *health.Tracker

	// Logger receives degraded-mode and watchdog warnings; nil uses
	// slog.Default().
	Logger *slog.Logger

	// Metrics, when non-nil, receives queue instrumentation (depth,
	// submitted/applied/rejected/coalesced counters, queue-wait
	// histogram). Nil means instrumentation is off.
	Metrics *obs.Registry

	// OnApply, when non-nil, is called from the apply goroutine after
	// every ApplyBatch returns (success or failure). Keep it fast; it
	// runs on the write path.
	OnApply func(Applied)

	// Flight, when non-nil, records every batch's lifecycle — admitted,
	// shed, enqueued, coalesced, validated, quarantined, applied,
	// published — into the flight ring, completes a BatchTrace with a
	// per-phase latency breakdown at publication, and dumps the ring on
	// transitions to Degraded/Failed (forced) or Overloaded (throttled)
	// when Health is also set. Trace IDs are assigned at Submit whether
	// or not a recorder is present; without one they are still returned
	// on tickets but nothing is recorded.
	Flight *flight.Recorder

	// SlowBatch is the end-to-end latency (head-batch enqueue to
	// publication) above which a successful apply is captured as a slow
	// batch: the recorder takes a throttled dump focused on the batch's
	// trace and a warning naming the trace ID is logged. Zero defaults
	// to the admission SLO when Admission is set (the latency the
	// controller is already promising), otherwise slow-batch capture is
	// off; negative disables it explicitly. Ignored without Flight.
	SlowBatch time.Duration

	// TraceTag is OR'd into every trace ID the loop mints, letting a
	// multi-loop composition (the partition router) namespace the IDs so
	// traces from different shards never collide. The tag must occupy
	// only high bits the loop's monotonically increasing counter will
	// not reach (the router uses bits 48+). Zero means untagged.
	TraceTag uint64

	// ExternalAdmission marks the admission controller as charged by the
	// caller: Submit skips its own Admit call (the router has already
	// admitted the composite batch across all owning shards), while
	// every release path — apply completion, quarantine, drain, failed
	// enqueue — still feeds the controller so backlog accounting stays
	// balanced. Ignored unless Admission is set.
	ExternalAdmission bool

	// QueueWhileDegraded lets Submit enqueue (with normal backpressure)
	// while the loop is degraded instead of failing fast with
	// ErrDegraded. The queued batches replay after recovery. The router
	// sets this so a multi-shard batch is never partially submitted just
	// because one shard is mid-repair.
	QueueWhileDegraded bool

	// OnDrop, when non-nil, is called from the apply goroutine whenever
	// a queued batch is resolved without an apply call covering it: a
	// quarantined poison batch, or the shutdown/terminal drain failing
	// the queue. Together with OnApply it accounts for every accepted
	// submission exactly once, in queue order — the property the
	// partition router's per-shard FIFO mirrors rely on. Keep it fast.
	OnDrop func(b graph.Batch, trace uint64, err error)
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.MaxBatchEdges <= 0 {
		o.MaxBatchEdges = DefaultMaxBatchEdges
	}
	if o.QuarantineDepth <= 0 {
		o.QuarantineDepth = DefaultQuarantineDepth
	}
	if o.Metrics == nil {
		o.Metrics = defaultMetrics.Load()
	}
	return o
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// Applied reports one completed apply call.
type Applied struct {
	// Seq is the 1-based count of successful apply calls; with a
	// quiescent start it equals the snapshot generation delta since the
	// loop began. A failed or quarantined batch reports the attempt
	// number (last successful Seq + 1) without consuming it.
	Seq uint64
	// Batches is the number of submitted batches merged into this apply
	// (1 when no coalescing happened).
	Batches int
	// Stats is the engine work the apply reported.
	Stats core.Stats
	// QueueWait is the longest time any batch merged into this apply
	// spent queued before the apply call started.
	QueueWait time.Duration
	// Err is the failure delivered to this ticket, if any: a quarantined
	// batch's validation error, ErrDegraded when the loop shut down
	// before recovery completed, or the loop's terminal failure.
	Err error
	// Trace is the completed lifecycle record for this apply: the head
	// batch's trace ID, every coalesced sibling's ID, and the per-phase
	// latency breakdown. Populated whether or not a flight recorder is
	// configured (trace IDs are loop-owned); Trace.ID is never 0.
	Trace flight.BatchTrace
}

// PoisonBatch is one quarantined batch: rejected at dequeue, never
// applied, retained for diagnosis.
type PoisonBatch struct {
	// Seq is the batch's 1-based submission number.
	Seq uint64
	// Batch is the rejected batch, as submitted.
	Batch graph.Batch
	// Err is why it was rejected (wraps graph.ErrInvalidBatch).
	Err error
	// At is when it was quarantined.
	At time.Time
}

// Ticket tracks one submitted batch through the loop.
type Ticket struct {
	done  chan Applied
	trace uint64
}

// NewTicket constructs an unresolved ticket carrying the given trace
// ID, for callers that compose their own apply pipelines over multiple
// loops (the partition router resolves one composite ticket after all
// owning shards apply). Resolve completes it.
func NewTicket(trace uint64) *Ticket {
	return &Ticket{done: make(chan Applied, 1), trace: trace}
}

// Resolve completes a ticket built with NewTicket. Call exactly once.
func (t *Ticket) Resolve(a Applied) { t.done <- a }

// Trace returns the batch's trace ID, assigned at Submit. Look the
// completed lifecycle up with Recorder.Trace (or Server.Trace) after
// the ticket resolves; the resolved Applied carries it too.
func (t *Ticket) Trace() uint64 { return t.trace }

// Done returns a channel that receives exactly one Applied once the
// batch's apply call completes (possibly covering coalesced neighbors).
func (t *Ticket) Done() <-chan Applied { return t.done }

// Wait blocks until the batch is applied or ctx is done.
func (t *Ticket) Wait(ctx context.Context) (Applied, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case a := <-t.done:
		return a, a.Err
	case <-ctx.Done():
		return Applied{}, ctx.Err()
	}
}

// pending is one queued batch.
type pending struct {
	b        graph.Batch
	t        *Ticket
	seq      uint64 // 1-based submission number
	trace    uint64 // flight trace ID, assigned at Submit
	enqueued time.Time
}

// Loop is the single-writer apply loop. Construct with NewLoop; Submit
// is safe from any goroutine. All mutations of the wrapped Applier must
// go through the loop — mutating it directly breaks the single-writer
// invariant.
type Loop struct {
	applier Applier
	opts    Options
	met     loopMetrics
	ctl     *admission.Controller // nil unless Options.Admission is set
	capEdge atomic.Int64          // effective coalescing cap without a controller

	rec        *flight.Recorder // nil-safe; nil records nothing
	traceSeq   atomic.Uint64    // trace IDs are loop-owned, 1-based
	slowThresh time.Duration    // e2e latency above which a batch is slow; 0 = off

	mu         sync.Mutex
	cond       *sync.Cond
	q          []pending
	closed     bool
	failure    error
	degraded   error // ErrDegraded-wrapped cause while in degraded mode
	inflight   bool
	seq        uint64 // successful applies
	submits    uint64 // accepted submissions (keys quarantine records)
	quarantine []PoisonBatch
	nQuar      uint64 // total ever quarantined (ring evicts)

	closeOnce sync.Once
	closeCh   chan struct{} // closed by Close; interrupts recovery backoff
	done      chan struct{}
}

// NewLoop starts the apply goroutine over a. The loop owns all writes
// to a until Close.
func NewLoop(a Applier, opts Options) *Loop {
	opts = opts.withDefaults()
	l := &Loop{
		applier: a,
		opts:    opts,
		met:     newLoopMetrics(opts.Metrics),
		rec:     opts.Flight,
		closeCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	l.capEdge.Store(int64(opts.MaxBatchEdges))
	if opts.Admission != nil {
		cfg := *opts.Admission
		if cfg.Metrics == nil {
			cfg.Metrics = opts.Metrics
		}
		if cfg.InitialCap <= 0 {
			cfg.InitialCap = opts.MaxBatchEdges
		}
		// Overload episodes surface through the health tracker, guarded
		// so they never override a Degraded or Failed state owned by the
		// recovery supervisor; the user's hook still sees every flip.
		userHook := cfg.OnStateChange
		tracker, logger := opts.Health, opts.logger()
		cfg.OnStateChange = func(overloaded bool, cause error) {
			if overloaded {
				if tracker.Transition(health.Healthy, health.Overloaded, cause) {
					logger.Warn("graphbolt: entering overloaded state", "cause", cause)
				}
			} else if tracker.Transition(health.Overloaded, health.Healthy, nil) {
				logger.Info("graphbolt: backlog drained, leaving overloaded state")
			}
			if userHook != nil {
				userHook(overloaded, cause)
			}
		}
		l.ctl = admission.New(cfg)
	}
	switch {
	case opts.SlowBatch > 0:
		l.slowThresh = opts.SlowBatch
	case opts.SlowBatch == 0 && l.ctl != nil:
		// The admission SLO is the latency the controller already
		// promises; exceeding it end-to-end is by definition slow.
		l.slowThresh = l.ctl.SLO()
	}
	if l.rec != nil && opts.Health != nil {
		// The recorder is the black box: every health transition lands in
		// the event stream, and the degraded/failed ones — the moments a
		// postmortem needs the lead-up for — force a dump. Overload flips
		// can flap under bursty load, so those dumps are throttled.
		rec := l.rec
		opts.Health.OnTransition(func(from, to health.State, cause error) {
			rec.Record(flight.KindHealth, rec.ActiveTrace(), int64(from), int64(to))
			switch to {
			case health.Degraded, health.Failed:
				rec.Dump("health transition "+from.String()+"→"+to.String(), rec.ActiveTrace())
			case health.Overloaded:
				rec.TryDump("health transition "+from.String()+"→overloaded", 0)
			}
		})
	}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

// Flight returns the loop's flight recorder, nil when recording is off.
func (l *Loop) Flight() *flight.Recorder { return l.rec }

// SlowBatchThreshold returns the effective end-to-end latency above
// which a batch triggers slow-batch capture (0 when disabled).
func (l *Loop) SlowBatchThreshold() time.Duration { return l.slowThresh }

// Admission returns the loop's admission controller, nil when admission
// control is off. The nil controller is inert and safe to call.
func (l *Loop) Admission() *admission.Controller { return l.ctl }

// MaxBatchEdges returns the current effective coalescing cap: the
// governor's floating cap when admission is enabled, the static cap
// otherwise.
func (l *Loop) MaxBatchEdges() int {
	if l.ctl != nil {
		return l.ctl.Cap()
	}
	return int(l.capEdge.Load())
}

// SetMaxBatchEdges adjusts the coalescing cap at runtime. With
// admission enabled it resets the governor's cap (clamped into its
// floor/ceiling band), from where the governor keeps floating it; a
// non-positive n is ignored. Batches already merged are unaffected.
func (l *Loop) SetMaxBatchEdges(n int) {
	if n <= 0 {
		return
	}
	if l.ctl != nil {
		l.ctl.SetCap(n)
		return
	}
	l.capEdge.Store(int64(n))
}

// batchWeight is the admission-control weight of a batch: its total
// edge count, floored at 1 so empty batches still cost a queue slot's
// worth of accounting.
func batchWeight(b graph.Batch) int {
	if n := len(b.Add) + len(b.Del); n > 0 {
		return n
	}
	return 1
}

// Submit enqueues a batch. Under the Block policy it waits for queue
// space (bounded by ctx); under Reject it fails fast with ErrQueueFull
// (wrapped in a *RetryableError carrying a backoff hint). The returned
// Ticket resolves when the batch's apply call completes; fire-and-forget
// callers may discard it. Batch validation happens at dequeue, on the
// apply goroutine: a malformed batch resolves its ticket with the
// validation error and is quarantined rather than failing the loop.
//
// With admission control enabled (Options.Admission), Submit first
// estimates the time-to-apply for the current backlog and sheds with a
// *RetryableError wrapping ErrOverloaded — before touching the queue —
// when the SLO or ctx's deadline cannot be met.
//
// A nil ctx means no deadline; an already-cancelled ctx returns its
// error without enqueuing under either policy. Submitting after Close
// returns ErrClosed; in degraded mode, ErrDegraded; after a terminal
// failure, that failure.
func (l *Loop) Submit(ctx context.Context, b graph.Batch) (*Ticket, error) {
	return l.submit(ctx, b, l.MintTrace())
}

// MintTrace assigns the next trace ID (tagged with Options.TraceTag).
// Submit mints internally; SubmitTraced lets a composing caller mint
// first, register the ID in its own bookkeeping, and submit after.
func (l *Loop) MintTrace() uint64 {
	return l.traceSeq.Add(1) | l.opts.TraceTag
}

// SubmitTraced is Submit with a caller-minted trace ID (from
// MintTrace). The partition router uses it to register a sub-batch's
// descriptor under the ID before the loop can possibly apply it, so
// OnApply/OnDrop callbacks always find the descriptor in place. A zero
// trace mints a fresh one.
func (l *Loop) SubmitTraced(ctx context.Context, b graph.Batch, trace uint64) (*Ticket, error) {
	if trace == 0 {
		trace = l.MintTrace()
	}
	return l.submit(ctx, b, trace)
}

func (l *Loop) submit(ctx context.Context, b graph.Batch, tr uint64) (*Ticket, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	w := batchWeight(b)
	admitted := false
	if l.ctl != nil && !l.opts.ExternalAdmission {
		// Refusals that outrank overload — closed, degraded, terminal —
		// are checked first so shedding never masks them.
		l.mu.Lock()
		err := l.submitErrLocked()
		l.mu.Unlock()
		if err != nil {
			l.rec.Record(flight.KindRejected, tr, int64(w), 0)
			return nil, err
		}
		var deadline time.Time
		if ctx != nil {
			deadline, _ = ctx.Deadline()
		}
		dec := l.ctl.Admit(w, deadline)
		if !dec.Admitted {
			l.rec.Record(flight.KindShed, tr, int64(w), int64(dec.RetryAfter))
			return nil, &RetryableError{
				Sentinel: ErrOverloaded,
				After:    dec.RetryAfter,
				Detail: fmt.Sprintf("trace %d: estimated wait %v against SLO %v",
					tr, dec.EstimatedWait.Round(time.Millisecond), l.ctl.SLO()),
			}
		}
		admitted = true
	}
	l.rec.Record(flight.KindAdmitted, tr, int64(w), 0)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Policy == Reject {
		if err := l.submitErrLocked(); err != nil {
			l.cancelAdmit(admitted, w)
			l.rec.Record(flight.KindRejected, tr, int64(w), 0)
			return nil, err
		}
		if len(l.q) >= l.opts.QueueDepth {
			l.met.rejected.Inc()
			l.cancelAdmit(admitted, w)
			l.rec.Record(flight.KindRejected, tr, int64(w), 0)
			return nil, l.queueFullErr()
		}
	} else {
		if err := l.awaitLocked(ctx, func() bool {
			return l.submitErrLocked() != nil || len(l.q) < l.opts.QueueDepth
		}); err != nil {
			l.cancelAdmit(admitted, w)
			l.rec.Record(flight.KindRejected, tr, int64(w), 0)
			return nil, err
		}
		if err := l.submitErrLocked(); err != nil {
			l.cancelAdmit(admitted, w)
			l.rec.Record(flight.KindRejected, tr, int64(w), 0)
			return nil, err
		}
	}
	t := &Ticket{done: make(chan Applied, 1), trace: tr}
	l.submits++
	l.q = append(l.q, pending{b: b, t: t, seq: l.submits, trace: tr, enqueued: time.Now()})
	l.met.submitted.Inc()
	l.met.depth.Set(float64(len(l.q)))
	l.rec.Record(flight.KindEnqueued, tr, int64(len(l.q)), 0)
	l.cond.Broadcast()
	return t, nil
}

// cancelAdmit returns weight charged by a successful Admit whose
// enqueue then failed. The controller's lock is a leaf, so calling it
// under l.mu is safe.
func (l *Loop) cancelAdmit(admitted bool, w int) {
	if admitted {
		l.ctl.Cancel(w)
	}
}

// queueFullErr builds the wrapped ErrQueueFull refusal. The backoff
// hint is the admission controller's backlog drain estimate scaled to
// one queue slot when available, DefaultRetryAfter otherwise.
func (l *Loop) queueFullErr() error {
	after := DefaultRetryAfter
	if l.ctl != nil && l.opts.QueueDepth > 0 {
		if per := l.ctl.EstimatedWait() / time.Duration(l.opts.QueueDepth); per > 0 {
			after = per
		}
	}
	return &RetryableError{Sentinel: ErrQueueFull, After: after}
}

// submitErrLocked returns why new submissions are refused, or nil.
// Precedence: terminal failure > degraded > closed. With
// QueueWhileDegraded, degraded mode does not refuse — submissions
// queue behind the held batch and replay after recovery.
func (l *Loop) submitErrLocked() error {
	if l.failure != nil {
		return l.failure
	}
	if l.degraded != nil && !l.opts.QueueWhileDegraded {
		return l.degraded
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// awaitLocked waits on the loop's condition until pred holds or ctx is
// done. l.mu must be held; it is held again on return.
func (l *Loop) awaitLocked(ctx context.Context, pred func() bool) error {
	if pred() {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	for !pred() {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	return nil
}

// Sync blocks until the queue is fully drained and no apply is in
// flight (or ctx is done). It returns the loop's terminal failure, if
// any. Batches submitted concurrently with Sync extend the wait.
func (l *Loop) Sync(ctx context.Context) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.awaitLocked(ctx, func() bool {
		return l.failure != nil || (len(l.q) == 0 && !l.inflight)
	}); err != nil {
		return err
	}
	return l.failure
}

// Close stops accepting submissions, drains the queue, and waits for
// the apply goroutine to exit (bounded by ctx; nil means wait
// indefinitely). Closing in degraded mode interrupts the recovery
// backoff; the held batch and any queued batches fail with ErrDegraded.
// It returns the loop's terminal failure, if any. Close is idempotent.
func (l *Loop) Close(ctx context.Context) error {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.closeOnce.Do(func() { close(l.closeCh) })
	if ctx == nil {
		<-l.done
	} else {
		select {
		case <-l.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failure
}

// Done returns a channel closed when the apply goroutine has exited
// (after Close drained the queue, or after a terminal failure).
func (l *Loop) Done() <-chan struct{} { return l.done }

// Seq returns the number of successful apply calls completed so far.
func (l *Loop) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Depth returns the current queue length.
func (l *Loop) Depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.q)
}

// Err returns the loop's terminal failure, or nil. A failed loop no
// longer accepts submissions: the wrapped engine's in-memory state is
// undefined after a mid-apply panic, so it must be discarded — a
// durable engine can be reopened from its checkpoint and journal.
// Quarantined batches and degraded episodes are not terminal and never
// appear here.
func (l *Loop) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failure
}

// Quarantined returns the retained poison batches, oldest first (the
// ring keeps the most recent Options.QuarantineDepth records).
func (l *Loop) Quarantined() []PoisonBatch {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]PoisonBatch(nil), l.quarantine...)
}

// QuarantinedTotal returns the number of batches ever quarantined,
// including records the ring has evicted.
func (l *Loop) QuarantinedTotal() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nQuar
}

// Health returns the loop's health tracker (nil if none was
// configured; a nil tracker is inert and reads as Healthy).
func (l *Loop) Health() *health.Tracker { return l.opts.Health }

// quarantineLocked records a poison batch in the bounded ring.
// l.mu must be held.
func (l *Loop) quarantineLocked(pb PoisonBatch) {
	if len(l.quarantine) >= l.opts.QuarantineDepth {
		copy(l.quarantine, l.quarantine[1:])
		l.quarantine = l.quarantine[:len(l.quarantine)-1]
	}
	l.quarantine = append(l.quarantine, pb)
	l.nQuar++
	l.met.quarantined.Inc()
	l.met.quarantineSize.Set(float64(len(l.quarantine)))
}

// run is the single-writer apply goroutine.
func (l *Loop) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed && l.failure == nil {
			l.cond.Wait()
		}
		if len(l.q) == 0 || l.failure != nil {
			// Closed and drained, or terminally failed: fail whatever is
			// still queued so no Ticket waits forever.
			failQ := l.q
			l.q = nil
			failure := l.failure
			l.met.depth.Set(0)
			l.cond.Broadcast()
			l.mu.Unlock()
			for _, p := range failQ {
				l.ctl.Cancel(batchWeight(p.b))
				bt := flight.BatchTrace{
					ID: p.trace, Traces: []uint64{p.trace}, Batches: 1,
					EnqueuedAt: p.enqueued, CompletedAt: time.Now(),
				}
				if failure != nil {
					bt.Err = failure.Error()
				}
				l.rec.CompleteTrace(bt)
				p.t.done <- Applied{Err: failure, Trace: bt}
				if l.opts.OnDrop != nil {
					dropErr := failure
					if dropErr == nil {
						dropErr = ErrClosed
					}
					l.opts.OnDrop(p.b, p.trace, dropErr)
				}
			}
			return
		}
		// Authoritative validation happens here, at the head of the
		// queue: a poison batch is quarantined and its ticket rejected
		// without ever reaching the engine — or latching the loop.
		dequeueAt := time.Now()
		verr := l.q[0].b.Validate()
		vDur := time.Since(dequeueAt)
		if verr != nil {
			p := l.q[0]
			l.q[0] = pending{}
			l.q = l.q[1:]
			rejErr := fmt.Errorf("serve: batch quarantined: %w", verr)
			l.quarantineLocked(PoisonBatch{Seq: p.seq, Batch: p.b, Err: rejErr, At: time.Now()})
			attempt := l.seq + 1
			l.met.depth.Set(float64(len(l.q)))
			l.cond.Broadcast()
			l.mu.Unlock()
			l.opts.logger().Warn("graphbolt: batch quarantined",
				"submission", p.seq, "trace", p.trace, "error", verr)
			l.ctl.Cancel(batchWeight(p.b))
			l.rec.Record(flight.KindQuarantined, p.trace, int64(p.seq), 0)
			bt := flight.BatchTrace{
				ID: p.trace, Traces: []uint64{p.trace}, Batches: 1,
				EnqueuedAt: p.enqueued, CompletedAt: time.Now(), Err: rejErr.Error(),
				Phases: flight.Phases{QueueWait: dequeueAt.Sub(p.enqueued), Validate: vDur},
			}
			l.rec.CompleteTrace(bt)
			p.t.done <- Applied{Seq: attempt, Batches: 1, Err: rejErr, Trace: bt}
			if l.opts.OnDrop != nil {
				l.opts.OnDrop(p.b, p.trace, rejErr)
			}
			continue
		}
		headTrace, headEnqueued := l.q[0].trace, l.q[0].enqueued
		l.rec.Record(flight.KindValidated, headTrace, int64(vDur),
			int64(len(l.q[0].b.Add)+len(l.q[0].b.Del)))
		coalesceStart := time.Now()
		batch, tickets, traces, waits, weight := l.popLocked()
		coalesceDur := time.Since(coalesceStart)
		l.inflight = true
		l.met.depth.Set(float64(len(l.q)))
		attempt := l.seq + 1
		l.mu.Unlock()

		var maxWait time.Duration
		for _, w := range waits {
			l.met.queueWait.Observe(w.Seconds())
			if w > maxWait {
				maxWait = w
			}
		}
		l.rec.BeginApply(headTrace)
		start := time.Now()
		st, err := l.applyWithRecovery(batch, attempt)
		applyEnd := time.Now()
		took := applyEnd.Sub(start)
		journal := l.rec.EndApply()

		l.mu.Lock()
		res := Applied{Seq: attempt, Batches: len(tickets), Stats: st, QueueWait: maxWait, Err: err}
		l.inflight = false
		switch {
		case err == nil:
			l.seq++
			l.met.applied.Inc()
			if n := len(tickets) - 1; n > 0 {
				l.met.coalesced.Add(int64(n))
			}
		case errors.Is(err, ErrDegraded):
			// Shutdown interrupted recovery: the batch was never applied
			// and the engine state is intact — not terminal. Remaining
			// queued batches drain through the same path.
			l.met.applyErrors.Inc()
		default:
			// Mid-apply panic or unrecoverable fault: terminal.
			l.failure = fmt.Errorf("serve: apply: %w", err)
			res.Err = l.failure
			l.met.applyErrors.Inc()
			l.opts.Health.Set(health.Failed, l.failure)
		}
		cb := l.opts.OnApply
		l.cond.Broadcast()
		l.mu.Unlock()

		// Feed the controller outside l.mu: its state-change callback runs
		// health hooks that may call back into the loop. A successful
		// apply both releases the backlog weight and contributes a
		// throughput sample; failures just release the weight.
		if err == nil {
			l.ctl.ApplyComplete(weight, took)
		} else {
			l.ctl.Cancel(weight)
		}

		// Complete the batch's lifecycle record: the phase breakdown plus
		// the merged trace set, published under the head ID and every
		// coalesced sibling's ID. Apply excludes the journal time the
		// durable layer charged during the call, so the phases stay
		// disjoint and their sum tracks the observed end-to-end latency.
		if err == nil {
			l.rec.Record(flight.KindApplied, headTrace, int64(took), int64(st.EdgeComputations))
		}
		completedAt := time.Now()
		applyPhase := took - journal
		if applyPhase < 0 {
			applyPhase = 0
		}
		bt := flight.BatchTrace{
			ID: headTrace, Traces: traces, Batches: len(tickets),
			EnqueuedAt: headEnqueued, CompletedAt: completedAt,
			Phases: flight.Phases{
				QueueWait: dequeueAt.Sub(headEnqueued),
				Validate:  vDur,
				Coalesce:  coalesceDur,
				Journal:   journal,
				Apply:     applyPhase,
				Publish:   completedAt.Sub(applyEnd),
			},
		}
		if res.Err != nil {
			bt.Err = res.Err.Error()
		} else {
			bt.Seq = attempt
			l.rec.Record(flight.KindPublished, headTrace, int64(attempt),
				int64(completedAt.Sub(headEnqueued)))
		}
		l.rec.CompleteTrace(bt)
		res.Trace = bt
		if err == nil && l.slowThresh > 0 && l.rec != nil {
			if e2e := completedAt.Sub(headEnqueued); e2e > l.slowThresh {
				l.rec.SlowBatch(headTrace, e2e, l.slowThresh)
				l.opts.logger().Warn("graphbolt: slow batch",
					"trace", headTrace, "seq", attempt, "e2e", e2e,
					"threshold", l.slowThresh, "batches", len(tickets),
					"queue_wait", bt.Phases.QueueWait, "journal", journal,
					"apply", applyPhase)
			}
		}

		for _, t := range tickets {
			t.done <- res
		}
		if cb != nil {
			cb(res)
		}
		if err == nil {
			// A successful apply can still leave an out-of-band ailment —
			// a checkpoint that failed after the batch landed. The batch's
			// tickets already resolved (retrying would apply it twice);
			// heal the fault before dequeuing the next batch.
			if rec, ok := l.applier.(Recoverer); ok && rec.Ailment() != nil {
				l.supervise(rec, rec.Ailment())
			}
		}
	}
}

// applyWithRecovery runs one apply attempt, supervising degraded-mode
// recovery: while the applier reports a recoverable ailment, the batch
// is held and retried after each successful Recover. Returns the
// terminal outcome for this batch — success, a wrapped ErrDegraded if
// the loop closed mid-recovery, or an unrecoverable error.
func (l *Loop) applyWithRecovery(batch graph.Batch, attempt uint64) (core.Stats, error) {
	for {
		st, err := l.applyOnce(batch, attempt)
		if err == nil {
			return st, nil
		}
		rec, recoverable := l.applier.(Recoverer)
		var pe *parallel.PanicError
		if errors.As(err, &pe) || errors.Is(err, graph.ErrInvalidBatch) {
			return st, err
		}
		if !recoverable || rec.Ailment() == nil {
			return st, err
		}
		if !l.supervise(rec, err) {
			return st, fmt.Errorf("%w (closed during recovery): %v", ErrDegraded, err)
		}
		// Recovered: replay the held batch.
	}
}

// applyOnce calls the engine, arming the stuck-apply watchdog when
// configured.
func (l *Loop) applyOnce(batch graph.Batch, attempt uint64) (core.Stats, error) {
	if l.opts.ApplyDeadline <= 0 {
		return l.applier.ApplyBatch(batch)
	}
	start := time.Now()
	var fired atomic.Bool
	timer := time.AfterFunc(l.opts.ApplyDeadline, func() {
		l.met.stuckApplies.Set(1)
		l.met.watchdogStalls.Inc()
		fired.Store(true)
		elapsed := time.Since(start)
		l.opts.logger().Warn("graphbolt: apply exceeded deadline",
			"seq", attempt, "deadline", l.opts.ApplyDeadline, "elapsed", elapsed)
		if l.opts.OnStuck != nil {
			l.opts.OnStuck(attempt, elapsed)
		}
	})
	st, err := l.applier.ApplyBatch(batch)
	timer.Stop()
	if fired.Load() {
		l.met.stuckApplies.Set(0)
	}
	return st, err
}

// supervise runs the degraded-mode recovery loop: writes fail fast
// with ErrDegraded while Recover is retried under the configured
// backoff. Returns true once recovery succeeds, false if the loop was
// closed first. Runs on the apply goroutine.
func (l *Loop) supervise(rec Recoverer, cause error) bool {
	wrapped := fmt.Errorf("%w: %v", ErrDegraded, cause)
	l.mu.Lock()
	l.degraded = wrapped
	l.cond.Broadcast() // blocked submitters fail fast now
	l.mu.Unlock()
	l.opts.Health.Set(health.Degraded, cause)
	l.opts.logger().Warn("graphbolt: entering degraded mode", "cause", cause)

	healed := false
	for attempt := 0; ; attempt++ {
		delay := l.opts.Backoff.Delay(attempt)
		l.met.recoveryBackoff.Observe(delay.Seconds())
		if !backoff.Sleep(delay, l.closeCh) {
			break // Close interrupted the backoff
		}
		l.met.recoveryAttempts.Inc()
		if err := rec.Recover(); err != nil {
			l.rec.Record(flight.KindRepair, l.rec.ActiveTrace(), int64(attempt+1), 0)
			l.opts.Health.Set(health.Degraded, err) // refresh the cause
			l.mu.Lock()
			l.degraded = fmt.Errorf("%w: %v", ErrDegraded, err)
			l.mu.Unlock()
			continue
		}
		l.rec.Record(flight.KindRepair, l.rec.ActiveTrace(), int64(attempt+1), 1)
		healed = true
		break
	}
	if !healed {
		return false
	}
	l.met.recoveries.Inc()
	l.mu.Lock()
	l.degraded = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	l.opts.Health.Set(health.Healthy, nil)
	l.opts.logger().Info("graphbolt: recovered, leaving degraded mode")
	return true
}

// edgeKey identifies an edge by endpoints, the granularity deletions
// match at.
type edgeKey struct{ from, to graph.VertexID }

// popLocked dequeues the next batch and, unless coalescing is disabled,
// merges compatible successors up to the size cap — read through
// MaxBatchEdges, so the governor's floating cap takes effect on the
// very next merge run. It returns the batch to apply, the tickets it
// covers, the covered trace IDs (head first), each batch's time in
// queue, and the total admission weight of the merged batches. Every
// folded sibling gets a coalesced event naming the absorbing head
// trace. The head batch has been validated by the caller; a candidate
// that fails validation ends the merge run so it reaches the head of
// the queue — and the quarantine — on its own. l.mu must be held.
func (l *Loop) popLocked() (graph.Batch, []*Ticket, []uint64, []time.Duration, int) {
	now := time.Now()
	first := l.q[0]
	l.q[0] = pending{}
	l.q = l.q[1:]
	acc := first.b
	tickets := []*Ticket{first.t}
	traces := []uint64{first.trace}
	waits := []time.Duration{now.Sub(first.enqueued)}
	weight := batchWeight(acc)
	if l.opts.DisableCoalescing {
		return acc, tickets, traces, waits, weight
	}

	capEdges := l.MaxBatchEdges()
	size := len(acc.Add) + len(acc.Del)
	var addKeys map[edgeKey]struct{}
	merged := false
	for len(l.q) > 0 {
		nb := l.q[0].b
		if size+len(nb.Add)+len(nb.Del) > capEdges {
			break
		}
		if nb.Validate() != nil {
			break // poison: keep it un-merged for its own quarantine
		}
		if addKeys == nil {
			addKeys = make(map[edgeKey]struct{}, len(acc.Add))
			for _, e := range acc.Add {
				addKeys[edgeKey{e.From, e.To}] = struct{}{}
			}
		}
		if delHitsPendingAdd(nb.Del, addKeys) {
			break
		}
		if !merged {
			// Copy before extending: the submitted slices belong to the
			// producers.
			acc = graph.Batch{
				Add: append([]graph.Edge(nil), acc.Add...),
				Del: append([]graph.Edge(nil), acc.Del...),
			}
			merged = true
		}
		acc.Add = append(acc.Add, nb.Add...)
		acc.Del = append(acc.Del, nb.Del...)
		for _, e := range nb.Add {
			addKeys[edgeKey{e.From, e.To}] = struct{}{}
		}
		size += len(nb.Add) + len(nb.Del)
		weight += batchWeight(nb)
		tickets = append(tickets, l.q[0].t)
		traces = append(traces, l.q[0].trace)
		waits = append(waits, now.Sub(l.q[0].enqueued))
		l.rec.Record(flight.KindCoalesced, l.q[0].trace, int64(first.trace), 0)
		l.q[0] = pending{}
		l.q = l.q[1:]
	}
	return acc, tickets, traces, waits, weight
}

// delHitsPendingAdd reports whether any deletion targets an edge key the
// accumulated batch would add. Such a pair must stay in separate
// batches: within one batch, deletions match only pre-batch edge
// instances, so merging would spare the pending addition and delete a
// pre-existing parallel edge instead — diverging from sequential
// application.
func delHitsPendingAdd(del []graph.Edge, addKeys map[edgeKey]struct{}) bool {
	for _, e := range del {
		if _, ok := addKeys[edgeKey{e.From, e.To}]; ok {
			return true
		}
	}
	return false
}
