// Package serve provides the ingest half of the read/write-separated
// serving architecture: a single-writer apply loop fed by a bounded
// mutation queue.
//
// The engine's BSP guarantee makes the split safe: every completed
// ApplyBatch publishes an immutable result snapshot (core.ResultSnapshot)
// that readers access lock-free, so the only synchronization problem
// left is ordering writers — which this package solves by funneling all
// mutations through one goroutine. Producers call Submit from any
// goroutine; the loop dequeues batches, optionally coalesces compatible
// neighbors up to a size cap, and applies them one at a time to the
// wrapped engine. Wrapping a durable.Engine preserves its
// journal-before-mutate ordering, because the journaling happens inside
// the same single-threaded apply call.
//
// Coalescing merges a contiguous run of queued batches into one
// ApplyBatch call, amortizing refinement cost under bursty ingest. Two
// batches are compatible unless the later one deletes an edge key the
// accumulated batch adds: within one graph.Batch, deletions match only
// pre-batch edges, so folding such a pair into one batch would change
// which edge instance dies. Incompatible batches simply end the run and
// are applied in a later call; batches are never split or reordered.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Applier is the single-writer mutation target: core.Engine and
// durable.Engine both satisfy it.
type Applier interface {
	ApplyBatch(graph.Batch) (core.Stats, error)
}

// Policy selects what Submit does when the queue is full.
type Policy int

const (
	// Block makes Submit wait for queue space (or context cancellation).
	// The default: backpressure propagates to producers.
	Block Policy = iota
	// Reject makes Submit fail fast with ErrQueueFull.
	Reject
)

// Default sizing. DefaultQueueDepth bounds memory under producer bursts;
// DefaultMaxBatchEdges caps how large a coalesced batch may grow (larger
// merges amortize refinement better but raise per-apply latency).
const (
	DefaultQueueDepth    = 64
	DefaultMaxBatchEdges = 4096
)

// Typed failure sentinels, for errors.Is.
var (
	// ErrQueueFull reports a Submit rejected under the Reject policy.
	ErrQueueFull = errors.New("serve: mutation queue full")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("serve: apply loop closed")
)

// Options configures a Loop.
type Options struct {
	// QueueDepth bounds the number of queued (unapplied) batches.
	// Default DefaultQueueDepth.
	QueueDepth int

	// MaxBatchEdges caps the total edge count (Add+Del) of a coalesced
	// batch; merging stops at the cap. A single submitted batch larger
	// than the cap is still applied whole — batches are never split.
	// Default DefaultMaxBatchEdges.
	MaxBatchEdges int

	// DisableCoalescing applies every submitted batch individually.
	DisableCoalescing bool

	// Policy selects Block (default) or Reject behavior on a full queue.
	Policy Policy

	// Metrics, when non-nil, receives queue instrumentation (depth,
	// submitted/applied/rejected/coalesced counters, queue-wait
	// histogram). Nil means instrumentation is off.
	Metrics *obs.Registry

	// OnApply, when non-nil, is called from the apply goroutine after
	// every ApplyBatch returns (success or failure). Keep it fast; it
	// runs on the write path.
	OnApply func(Applied)
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.MaxBatchEdges <= 0 {
		o.MaxBatchEdges = DefaultMaxBatchEdges
	}
	if o.Metrics == nil {
		o.Metrics = defaultMetrics.Load()
	}
	return o
}

// Applied reports one completed apply call.
type Applied struct {
	// Seq is the 1-based count of apply calls the loop has made; with a
	// quiescent start it equals the snapshot generation delta since the
	// loop began.
	Seq uint64
	// Batches is the number of submitted batches merged into this apply
	// (1 when no coalescing happened).
	Batches int
	// Stats is the engine work the apply reported.
	Stats core.Stats
	// Err is the apply failure, if any. An apply error is terminal for
	// the loop (see Loop.Err).
	Err error
}

// Ticket tracks one submitted batch through the loop.
type Ticket struct {
	done chan Applied
}

// Done returns a channel that receives exactly one Applied once the
// batch's apply call completes (possibly covering coalesced neighbors).
func (t *Ticket) Done() <-chan Applied { return t.done }

// Wait blocks until the batch is applied or ctx is done.
func (t *Ticket) Wait(ctx context.Context) (Applied, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case a := <-t.done:
		return a, a.Err
	case <-ctx.Done():
		return Applied{}, ctx.Err()
	}
}

// pending is one queued batch.
type pending struct {
	b        graph.Batch
	t        *Ticket
	enqueued time.Time
}

// Loop is the single-writer apply loop. Construct with NewLoop; Submit
// is safe from any goroutine. All mutations of the wrapped Applier must
// go through the loop — mutating it directly breaks the single-writer
// invariant.
type Loop struct {
	applier Applier
	opts    Options
	met     loopMetrics

	mu       sync.Mutex
	cond     *sync.Cond
	q        []pending
	closed   bool
	failure  error
	inflight bool
	seq      uint64
	done     chan struct{}
}

// NewLoop starts the apply goroutine over a. The loop owns all writes
// to a until Close.
func NewLoop(a Applier, opts Options) *Loop {
	opts = opts.withDefaults()
	l := &Loop{
		applier: a,
		opts:    opts,
		met:     newLoopMetrics(opts.Metrics),
		done:    make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

// Submit validates and enqueues a batch. Under the Block policy it
// waits for queue space (bounded by ctx); under Reject it fails fast
// with ErrQueueFull. The returned Ticket resolves when the batch's
// apply call completes; fire-and-forget callers may discard it.
//
// A nil ctx means no deadline. Submitting after Close returns
// ErrClosed; after a terminal apply failure it returns that failure.
func (l *Loop) Submit(ctx context.Context, b graph.Batch) (*Ticket, error) {
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Policy == Reject {
		if err := l.submitErrLocked(); err != nil {
			return nil, err
		}
		if len(l.q) >= l.opts.QueueDepth {
			l.met.rejected.Inc()
			return nil, ErrQueueFull
		}
	} else {
		if err := l.awaitLocked(ctx, func() bool {
			return l.submitErrLocked() != nil || len(l.q) < l.opts.QueueDepth
		}); err != nil {
			return nil, err
		}
		if err := l.submitErrLocked(); err != nil {
			return nil, err
		}
	}
	t := &Ticket{done: make(chan Applied, 1)}
	l.q = append(l.q, pending{b: b, t: t, enqueued: time.Now()})
	l.met.submitted.Inc()
	l.met.depth.Set(float64(len(l.q)))
	l.cond.Broadcast()
	return t, nil
}

// submitErrLocked returns why new submissions are refused, or nil.
func (l *Loop) submitErrLocked() error {
	if l.failure != nil {
		return l.failure
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// awaitLocked waits on the loop's condition until pred holds or ctx is
// done. l.mu must be held; it is held again on return.
func (l *Loop) awaitLocked(ctx context.Context, pred func() bool) error {
	if pred() {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	for !pred() {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	return nil
}

// Sync blocks until the queue is fully drained and no apply is in
// flight (or ctx is done). It returns the loop's terminal failure, if
// any. Batches submitted concurrently with Sync extend the wait.
func (l *Loop) Sync(ctx context.Context) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.awaitLocked(ctx, func() bool {
		return l.failure != nil || (len(l.q) == 0 && !l.inflight)
	}); err != nil {
		return err
	}
	return l.failure
}

// Close stops accepting submissions, drains the queue, and waits for
// the apply goroutine to exit (bounded by ctx; nil means wait
// indefinitely). It returns the loop's terminal failure, if any.
// Close is idempotent.
func (l *Loop) Close(ctx context.Context) error {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	if ctx == nil {
		<-l.done
	} else {
		select {
		case <-l.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failure
}

// Done returns a channel closed when the apply goroutine has exited
// (after Close drained the queue, or after a terminal failure).
func (l *Loop) Done() <-chan struct{} { return l.done }

// Seq returns the number of apply calls completed so far.
func (l *Loop) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Depth returns the current queue length.
func (l *Loop) Depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.q)
}

// Err returns the loop's terminal failure (an apply error), or nil. A
// failed loop no longer accepts submissions: the wrapped engine's
// in-memory state is undefined after a mid-apply panic, so it must be
// discarded — a durable engine can be reopened from its checkpoint and
// journal.
func (l *Loop) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failure
}

// run is the single-writer apply goroutine.
func (l *Loop) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed && l.failure == nil {
			l.cond.Wait()
		}
		if len(l.q) == 0 || l.failure != nil {
			// Closed and drained, or terminally failed: fail whatever is
			// still queued so no Ticket waits forever.
			failQ := l.q
			l.q = nil
			failure := l.failure
			l.met.depth.Set(0)
			l.cond.Broadcast()
			l.mu.Unlock()
			for _, p := range failQ {
				p.t.done <- Applied{Err: failure}
			}
			return
		}
		batch, tickets, waits := l.popLocked()
		l.inflight = true
		l.met.depth.Set(float64(len(l.q)))
		l.mu.Unlock()

		for _, w := range waits {
			l.met.queueWait.Observe(w.Seconds())
		}
		st, err := l.applier.ApplyBatch(batch)

		l.mu.Lock()
		l.seq++
		res := Applied{Seq: l.seq, Batches: len(tickets), Stats: st, Err: err}
		l.inflight = false
		if err != nil {
			// All pre-validated input reaches the engine, so an apply
			// error means a mid-apply panic (undefined engine state) or a
			// journaling failure — both terminal for this writer.
			l.failure = fmt.Errorf("serve: apply: %w", err)
			l.met.applyErrors.Inc()
		} else {
			l.met.applied.Inc()
			if n := len(tickets) - 1; n > 0 {
				l.met.coalesced.Add(int64(n))
			}
		}
		cb := l.opts.OnApply
		l.cond.Broadcast()
		l.mu.Unlock()

		for _, t := range tickets {
			t.done <- res
		}
		if cb != nil {
			cb(res)
		}
	}
}

// edgeKey identifies an edge by endpoints, the granularity deletions
// match at.
type edgeKey struct{ from, to graph.VertexID }

// popLocked dequeues the next batch and, unless coalescing is disabled,
// merges compatible successors up to the size cap. It returns the batch
// to apply, the tickets it covers, and each batch's time in queue.
// l.mu must be held.
func (l *Loop) popLocked() (graph.Batch, []*Ticket, []time.Duration) {
	now := time.Now()
	first := l.q[0]
	l.q[0] = pending{}
	l.q = l.q[1:]
	acc := first.b
	tickets := []*Ticket{first.t}
	waits := []time.Duration{now.Sub(first.enqueued)}
	if l.opts.DisableCoalescing {
		return acc, tickets, waits
	}

	size := len(acc.Add) + len(acc.Del)
	var addKeys map[edgeKey]struct{}
	merged := false
	for len(l.q) > 0 {
		nb := l.q[0].b
		if size+len(nb.Add)+len(nb.Del) > l.opts.MaxBatchEdges {
			break
		}
		if addKeys == nil {
			addKeys = make(map[edgeKey]struct{}, len(acc.Add))
			for _, e := range acc.Add {
				addKeys[edgeKey{e.From, e.To}] = struct{}{}
			}
		}
		if delHitsPendingAdd(nb.Del, addKeys) {
			break
		}
		if !merged {
			// Copy before extending: the submitted slices belong to the
			// producers.
			acc = graph.Batch{
				Add: append([]graph.Edge(nil), acc.Add...),
				Del: append([]graph.Edge(nil), acc.Del...),
			}
			merged = true
		}
		acc.Add = append(acc.Add, nb.Add...)
		acc.Del = append(acc.Del, nb.Del...)
		for _, e := range nb.Add {
			addKeys[edgeKey{e.From, e.To}] = struct{}{}
		}
		size += len(nb.Add) + len(nb.Del)
		tickets = append(tickets, l.q[0].t)
		waits = append(waits, now.Sub(l.q[0].enqueued))
		l.q[0] = pending{}
		l.q = l.q[1:]
	}
	return acc, tickets, waits
}

// delHitsPendingAdd reports whether any deletion targets an edge key the
// accumulated batch would add. Such a pair must stay in separate
// batches: within one batch, deletions match only pre-batch edge
// instances, so merging would spare the pending addition and delete a
// pre-existing parallel edge instead — diverging from sequential
// application.
func delHitsPendingAdd(del []graph.Edge, addKeys map[edgeKey]struct{}) bool {
	for _, e := range del {
		if _, ok := addKeys[edgeKey{e.From, e.To}]; ok {
			return true
		}
	}
	return false
}
