package serve_test

import (
	"context"
	"errors"
	"log/slog"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/graph"
	"repro/internal/health"
	"repro/internal/serve"
)

// permitApplier blocks applies on a permit while gated (free == false)
// and runs them instantly otherwise, so a test can gate and release the
// loop repeatedly (the stubApplier's one-shot gate cannot re-close).
type permitApplier struct {
	entered chan struct{}
	permits chan struct{}
	free    atomic.Bool

	mu      sync.Mutex
	applied []graph.Batch
}

func newPermitApplier() *permitApplier {
	return &permitApplier{entered: make(chan struct{}, 64), permits: make(chan struct{}, 1)}
}

func (p *permitApplier) ApplyBatch(b graph.Batch) (core.Stats, error) {
	select {
	case p.entered <- struct{}{}:
	default:
	}
	if !p.free.Load() {
		<-p.permits
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applied = append(p.applied, b)
	return core.Stats{}, nil
}

// release switches to free-running mode and unblocks the apply (if any)
// currently waiting on a permit.
func (p *permitApplier) release() {
	p.free.Store(true)
	select {
	case p.permits <- struct{}{}:
	default:
	}
}

func (p *permitApplier) gate() { p.free.Store(false) }

func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// TestTraceMergeProperty checks the trace-coverage invariant end to end:
// every accepted submission's trace ID appears in exactly one resolved
// apply's merged-trace set — no omissions, no duplicates — while the
// governor cap changes mid-stream, admission sheds part of the offered
// load, and a poison batch detours through quarantine. Shed submissions
// must appear in no applied set at all.
func TestTraceMergeProperty(t *testing.T) {
	p := newPermitApplier()
	rec := flight.New(flight.Options{
		Depth: 1 << 14, TraceDepth: 4096,
		MinDumpGap: time.Hour, Logger: discardLogger(),
	})
	l := serve.NewLoop(p, serve.Options{
		QueueDepth: 64,
		// Deterministic shed thresholds while gated: assumed throughput
		// 1000 edges/s, 10ms SLO, 0.8 headroom → an 8-edge budget.
		Admission: &admission.Config{
			SLO: 10 * time.Millisecond, InitialRate: 1000,
			FloorEdges: 1, CeilEdges: 1 << 16,
		},
		Flight:    rec,
		SlowBatch: -1, // slow-batch capture has its own tests; keep this one quiet
		Logger:    discardLogger(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var tickets []*serve.Ticket
	seen := map[uint64]bool{}
	accept := func(tk *serve.Ticket, err error) bool {
		t.Helper()
		if err != nil {
			if !errors.Is(err, serve.ErrOverloaded) {
				t.Fatalf("submit refused with non-shed error: %v", err)
			}
			return false
		}
		if seen[tk.Trace()] {
			t.Fatalf("trace ID %d assigned twice", tk.Trace())
		}
		seen[tk.Trace()] = true
		tickets = append(tickets, tk)
		return true
	}

	// Wave 1: gate the applier, let the queue build behind the head while
	// the governor cap cycles, until admission sheds part of the load.
	caps := []int{1, 3, 1 << 10}
	tk, err := l.Submit(nil, addBatch(edge(0, 1)))
	if !accept(tk, err) {
		t.Fatal("first submission shed on an empty queue")
	}
	select {
	case <-p.entered:
	case <-ctx.Done():
		t.Fatal("apply loop never picked up the head batch")
	}
	shed := 0
	for i := 0; i < 50 && shed < 2; i++ {
		l.SetMaxBatchEdges(caps[i%len(caps)])
		tk, err := l.Submit(nil, addBatch(edge(1, graph.VertexID(2+i))))
		if !accept(tk, err) {
			shed++
		}
	}
	if shed < 2 {
		t.Fatalf("only %d sheds in 50 gated submissions; admission never tripped", shed)
	}

	// Drain wave 1 and let the controller recover.
	p.release()
	if err := l.Sync(ctx); err != nil {
		t.Fatalf("drain after wave 1: %v", err)
	}

	// Quarantine: with the queue empty the poison batch is the head at
	// dequeue, so it is validated and quarantined deterministically.
	poison := graph.Batch{Add: []graph.Edge{{From: 0, To: graph.MaxVertexID + 1, Weight: 1}}}
	ptk, err := l.Submit(nil, poison)
	if !accept(ptk, err) {
		t.Fatal("poison submission shed")
	}
	// A ticket delivers exactly one Applied; remember it for the collect
	// loop below instead of waiting twice.
	resolved := map[*serve.Ticket]serve.Applied{}
	pa, werr := ptk.Wait(ctx)
	if !errors.Is(werr, graph.ErrInvalidBatch) {
		t.Fatalf("poison ticket err = %v, want ErrInvalidBatch", werr)
	}
	resolved[ptk] = pa

	// Wave 2: re-gate and coalesce a second burst under a different cap.
	p.gate()
	tk, err = l.Submit(nil, addBatch(edge(7, 8)))
	if !accept(tk, err) {
		t.Fatal("wave-2 head shed on a drained queue")
	}
	select {
	case <-p.entered:
	case <-ctx.Done():
		t.Fatal("apply loop never picked up the wave-2 head")
	}
	l.SetMaxBatchEdges(2)
	for i := 0; i < 5; i++ {
		tk, err := l.Submit(nil, addBatch(edge(8, graph.VertexID(10+i))))
		accept(tk, err)
	}
	p.release()
	if err := l.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Collect: resolve every ticket, dedupe applies by head trace ID.
	byHead := map[uint64]flight.BatchTrace{}
	for _, tk := range tickets {
		a, ok := resolved[tk]
		if !ok {
			a, _ = tk.Wait(ctx)
		}
		if a.Trace.ID == 0 {
			t.Fatalf("ticket %d resolved without a trace", tk.Trace())
		}
		if !a.Trace.Covers(tk.Trace()) {
			t.Fatalf("applied trace set %v does not cover its own ticket %d", a.Trace.Traces, tk.Trace())
		}
		if prev, ok := byHead[a.Trace.ID]; ok {
			if !slices.Equal(prev.Traces, a.Trace.Traces) {
				t.Fatalf("apply %d reported different trace sets to its tickets: %v vs %v",
					a.Trace.ID, prev.Traces, a.Trace.Traces)
			}
		} else {
			byHead[a.Trace.ID] = a.Trace
		}
		// The recorder's retained lifecycle agrees with the ticket's view.
		bt, ok := rec.Trace(tk.Trace())
		if !ok {
			t.Fatalf("recorder retained no lifecycle for trace %d", tk.Trace())
		}
		if bt.ID != a.Trace.ID {
			t.Fatalf("recorder maps trace %d to apply %d, ticket says %d", tk.Trace(), bt.ID, a.Trace.ID)
		}
	}

	// The property: accepted trace IDs ↔ union of applied trace sets,
	// 1:1. Any duplicate, omission, or phantom ID fails.
	count := map[uint64]int{}
	total := 0
	for _, bt := range byHead {
		for _, id := range bt.Traces {
			count[id]++
			total++
		}
	}
	for _, tk := range tickets {
		if c := count[tk.Trace()]; c != 1 {
			t.Errorf("trace %d appears %d times across applied sets, want exactly 1", tk.Trace(), c)
		}
	}
	if total != len(tickets) {
		t.Errorf("applied sets cover %d trace IDs, want exactly the %d accepted submissions", total, len(tickets))
	}

	// Cross-check against the flight ring: every accepted trace has an
	// enqueue event, shed traces have none and appear in no applied set,
	// and each coalesced sibling points at the apply that absorbed it.
	enq := map[uint64]bool{}
	shedIDs := map[uint64]bool{}
	coalescedInto := map[uint64]uint64{}
	for _, e := range rec.Snapshot() {
		switch e.Kind {
		case flight.KindEnqueued:
			enq[e.Trace] = true
		case flight.KindShed:
			shedIDs[e.Trace] = true
		case flight.KindCoalesced:
			if head, dup := coalescedInto[e.Trace]; dup {
				t.Errorf("trace %d coalesced twice (into %d and %d)", e.Trace, head, e.A)
			}
			coalescedInto[e.Trace] = uint64(e.A)
		}
	}
	if len(enq) != len(tickets) {
		t.Errorf("%d enqueue events for %d accepted submissions", len(enq), len(tickets))
	}
	for _, tk := range tickets {
		if !enq[tk.Trace()] {
			t.Errorf("accepted trace %d has no enqueue event", tk.Trace())
		}
	}
	if len(shedIDs) != shed {
		t.Errorf("%d shed events for %d observed sheds", len(shedIDs), shed)
	}
	for id := range shedIDs {
		if count[id] != 0 {
			t.Errorf("shed trace %d appears in an applied trace set", id)
		}
		if enq[id] {
			t.Errorf("shed trace %d was also enqueued", id)
		}
	}
	for sib, head := range coalescedInto {
		bt, ok := byHead[head]
		if !ok || !bt.Covers(sib) {
			t.Errorf("coalesce event says %d merged into %d, but that apply's set is %v", sib, head, bt.Traces)
		}
	}

	// The quarantined trace resolved alone, with the validation error.
	qt, ok := rec.Trace(ptk.Trace())
	if !ok || len(qt.Traces) != 1 || qt.Err == "" || qt.Seq != 0 {
		t.Errorf("quarantined lifecycle = %+v, want a lone unapplied trace with an error", qt)
	}
	if qt.Phases.QueueWait < 0 || qt.Phases.Validate <= 0 {
		t.Errorf("quarantined phases = %+v, want a measured validate time", qt.Phases)
	}
}

// TestTraceDrainOnTerminalFailure: batches stranded behind a terminal
// apply failure drain with their own single-trace lifecycles (exactly
// once each), and the Failed health transition forces a flight dump.
func TestTraceDrainOnTerminalFailure(t *testing.T) {
	s := newStubApplier()
	s.failOn = 1
	rec := flight.New(flight.Options{
		Depth: 1 << 10, MinDumpGap: time.Hour, Logger: discardLogger(),
	})
	l := serve.NewLoop(s, serve.Options{
		QueueDepth: 16, DisableCoalescing: true,
		Flight: rec,
		Health: health.NewTracker(nil),
		Logger: discardLogger(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	t1 := queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	t2, err := l.Submit(nil, addBatch(edge(0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	t3, err := l.Submit(nil, addBatch(edge(0, 3)))
	if err != nil {
		t.Fatal(err)
	}
	close(s.gate)

	seen := map[uint64]int{}
	for _, tk := range []*serve.Ticket{t1, t2, t3} {
		a, werr := tk.Wait(ctx)
		if werr == nil {
			t.Fatalf("ticket %d resolved cleanly behind a terminal failure", tk.Trace())
		}
		if a.Trace.ID != tk.Trace() || len(a.Trace.Traces) != 1 || a.Trace.Err == "" {
			t.Fatalf("drained trace = %+v, want lone errored trace %d", a.Trace, tk.Trace())
		}
		for _, id := range a.Trace.Traces {
			seen[id]++
		}
		if bt, ok := rec.Trace(tk.Trace()); !ok || bt.Err == "" {
			t.Fatalf("recorder lifecycle for drained trace %d = %+v, %v", tk.Trace(), bt, ok)
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("trace %d covered %d times", id, n)
		}
	}
	l.Close(nil)

	if rec.Dumps() == 0 {
		t.Fatal("terminal failure produced no flight dump")
	}
	d := rec.LastDump()
	if d == nil || !strings.Contains(d.Reason, "failed") {
		t.Fatalf("dump = %+v, want a reason naming the transition to failed", d)
	}
}
