package serve_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/stream"
)

func valuesMatch(t *testing.T, got, want []float64, eps float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for v := range got {
		// a == b first: covers the +Inf distances of unreachable SSSP vertices.
		if got[v] != want[v] && math.Abs(got[v]-want[v]) > eps {
			t.Fatalf("%s: vertex %d: got %v want %v", label, v, got[v], want[v])
		}
	}
}

// gatedEngine wraps a real engine, blocking the first apply until gate
// is closed so the test can pile the whole stream into the queue and
// force maximal coalescing.
type gatedEngine struct {
	inner   serve.Applier
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedEngine) ApplyBatch(b graph.Batch) (core.Stats, error) {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.inner.ApplyBatch(b)
}

// checkCoalescingEquivalence is the serving counterpart of the durable
// package's recovery-equivalence harness: streaming the batches through
// the apply loop — whatever subset of them the loop decides to coalesce
// — must end with the same values as applying every batch individually.
// It returns the number of apply calls the loop made.
func checkCoalescingEquivalence(t *testing.T, batches []graph.Batch, newEngine func() *core.Engine[float64, float64], eps float64) uint64 {
	t.Helper()
	want := newEngine()
	want.Run()
	for _, b := range batches {
		if _, err := want.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	got := newEngine()
	got.Run()
	ga := &gatedEngine{inner: got, entered: make(chan struct{}, 1), gate: make(chan struct{})}
	l := serve.NewLoop(ga, serve.Options{
		QueueDepth:    len(batches) + 1,
		MaxBatchEdges: 1 << 20,
	})
	if _, err := l.Submit(nil, batches[0]); err != nil {
		t.Fatal(err)
	}
	<-ga.entered // loop is inside apply #1; the rest will queue up
	for _, b := range batches[1:] {
		if _, err := l.Submit(nil, b); err != nil {
			t.Fatal(err)
		}
	}
	close(ga.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	valuesMatch(t, got.Values(), want.Values(), eps, "coalescing equivalence")
	if g, w := got.Graph().NumEdges(), want.Graph().NumEdges(); g != w {
		t.Fatalf("coalesced graph has %d edges, sequential has %d", g, w)
	}
	return l.Seq()
}

func TestCoalescingEquivalencePageRank(t *testing.T) {
	// DeleteFraction 0.3: deletions regularly target edges added by
	// still-queued batches, so the compatibility guard must split merge
	// runs for the final values to come out right.
	edges := gen.RMAT(41, 120, 900, gen.WeightUniform)
	s, err := stream.FromEdges(120, edges, stream.Config{BatchSize: 40, DeleteFraction: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *core.Engine[float64, float64] {
		e, err := core.NewEngine[float64, float64](s.Base, algorithms.NewPageRank(), core.Options{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	seq := checkCoalescingEquivalence(t, s.Batches, newEngine, 1e-6)
	if seq >= uint64(len(s.Batches)) {
		t.Fatalf("loop made %d applies for %d batches: nothing coalesced", seq, len(s.Batches))
	}
}

func TestCoalescingEquivalenceSSSP(t *testing.T) {
	edges := gen.RMAT(43, 120, 900, gen.WeightSmallInt)
	s, err := stream.FromEdges(120, edges, stream.Config{BatchSize: 40, DeleteFraction: 0.3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *core.Engine[float64, float64] {
		e, err := core.NewEngine[float64, float64](s.Base, algorithms.NewSSSP(0), core.Options{MaxIterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	checkCoalescingEquivalence(t, s.Batches, newEngine, 1e-9)
}

// capCycler wraps an engine and resets the loop's coalescing cap to the
// next value in a fixed cycle after every apply call, so consecutive
// merge runs are cut at different sizes — including a cap of 1, smaller
// than any batch, which disables merging for that run entirely. It runs
// only on the apply goroutine; the loop reference is set before the
// first Submit.
type capCycler struct {
	inner serve.Applier
	loop  *serve.Loop
	caps  []int
	i     int
}

func (c *capCycler) ApplyBatch(b graph.Batch) (core.Stats, error) {
	st, err := c.inner.ApplyBatch(b)
	c.loop.SetMaxBatchEdges(c.caps[c.i%len(c.caps)])
	c.i++
	return st, err
}

// TestCoalescingEquivalenceChangingCap: the BSP-equivalence guarantee
// must be insensitive to WHERE the cap slices the queue into merge
// runs. The cap cycles through extremes between applies — exactly what
// the adaptive governor does under load — and the final values must
// still match sequential application. Runs once against the static-cap
// path (SetMaxBatchEdges on the atomic) and once with an admission
// controller, where the cap lives in the governor and keeps floating
// between the cycler's resets.
func TestCoalescingEquivalenceChangingCap(t *testing.T) {
	edges := gen.RMAT(53, 120, 900, gen.WeightUniform)
	s, err := stream.FromEdges(120, edges, stream.Config{BatchSize: 40, DeleteFraction: 0.3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *core.Engine[float64, float64] {
		e, err := core.NewEngine[float64, float64](s.Base, algorithms.NewPageRank(), core.Options{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	want := newEngine()
	want.Run()
	for _, b := range s.Batches {
		if _, err := want.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		adm  *admission.Config
	}{
		{"static-cap", nil},
		// SLO and rate chosen so admission never sheds: this case is
		// about the governor owning the cap, not about load shedding.
		{"governor-cap", &admission.Config{FloorEdges: 1, CeilEdges: 1 << 20, SLO: time.Hour, InitialRate: 1e12}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := newEngine()
			got.Run()
			ga := &gatedEngine{inner: got, entered: make(chan struct{}, 1), gate: make(chan struct{})}
			cc := &capCycler{inner: ga, caps: []int{1, 80, 1 << 20, 160}}
			l := serve.NewLoop(cc, serve.Options{
				QueueDepth:    len(s.Batches) + 1,
				MaxBatchEdges: 1 << 20,
				Admission:     tc.adm,
			})
			cc.loop = l
			if _, err := l.Submit(nil, s.Batches[0]); err != nil {
				t.Fatal(err)
			}
			<-ga.entered // loop is inside apply #1; the rest will queue up
			for _, b := range s.Batches[1:] {
				if _, err := l.Submit(nil, b); err != nil {
					t.Fatal(err)
				}
			}
			close(ga.gate)
			if err := l.Close(nil); err != nil {
				t.Fatal(err)
			}
			valuesMatch(t, got.Values(), want.Values(), 1e-6, "changing-cap equivalence")
			if g, w := got.Graph().NumEdges(), want.Graph().NumEdges(); g != w {
				t.Fatalf("changing-cap graph has %d edges, sequential has %d", g, w)
			}
			if seq := l.Seq(); seq >= uint64(len(s.Batches)) || seq < 2 {
				t.Fatalf("loop made %d applies for %d batches: cap cycle produced no variation",
					seq, len(s.Batches))
			}
		})
	}
}

// TestCoalescingEquivalenceAddOnly: with no deletions every queued
// batch is compatible, so the entire queued suffix collapses into one
// apply call — and the result still matches sequential application.
func TestCoalescingEquivalenceAddOnly(t *testing.T) {
	edges := gen.RMAT(47, 100, 800, gen.WeightUniform)
	s, err := stream.FromEdges(100, edges, stream.Config{BatchSize: 50, DeleteFraction: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *core.Engine[float64, float64] {
		e, err := core.NewEngine[float64, float64](s.Base, algorithms.NewPageRank(), core.Options{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if seq := checkCoalescingEquivalence(t, s.Batches, newEngine, 1e-6); seq != 2 {
		t.Fatalf("loop made %d applies, want 2 (first batch alone, all-compatible rest merged)", seq)
	}
}
