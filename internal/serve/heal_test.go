package serve_test

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/health"
	"repro/internal/serve"
	"repro/internal/stream"
)

// quiet discards the loop's degraded-mode/watchdog log lines.
func quiet() *slog.Logger { return slog.New(slog.DiscardHandler) }

// fastBackoff keeps degraded-mode tests quick and deterministic.
func fastBackoff() backoff.Policy {
	return backoff.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond, Jitter: -1}
}

// healingApplier fails applies with a recoverable ailment: the serve
// loop's model of a durable engine with a flaky disk.
type healingApplier struct {
	mu           sync.Mutex
	applied      []graph.Batch
	failNext     int // upcoming applies that fault (setting the ailment)
	recoverAfter int // Recover calls that fail before one succeeds
	recoverCalls int
	ailment      error
}

func (h *healingApplier) ApplyBatch(b graph.Batch) (core.Stats, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ailment != nil {
		return core.Stats{}, fmt.Errorf("journal degraded: %w", h.ailment)
	}
	if h.failNext > 0 {
		h.failNext--
		h.ailment = errors.New("injected journal fault")
		return core.Stats{}, h.ailment
	}
	h.applied = append(h.applied, b)
	return core.Stats{}, nil
}

func (h *healingApplier) Ailment() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ailment
}

func (h *healingApplier) Recover() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recoverCalls++
	if h.recoverAfter > 0 {
		h.recoverAfter--
		return errors.New("fault persists")
	}
	h.ailment = nil
	return nil
}

func (h *healingApplier) batches() []graph.Batch {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]graph.Batch(nil), h.applied...)
}

// TestDegradedModeRecovery drives a full degraded episode: the fault
// holds the in-flight batch, Submit fails fast with ErrDegraded, the
// backoff supervisor retries Recover until it succeeds, and the held
// batch plus the queue replay in order.
func TestDegradedModeRecovery(t *testing.T) {
	h := &healingApplier{failNext: 1, recoverAfter: 2}
	tracker := health.NewTracker(nil)
	degraded := make(chan struct{})
	var once sync.Once
	tracker.OnTransition(func(from, to health.State, cause error) {
		if to == health.Degraded {
			once.Do(func() { close(degraded) })
		}
	})
	l := serve.NewLoop(h, serve.Options{
		Backoff: fastBackoff(),
		Health:  tracker,
		Logger:  quiet(),
	})

	t1, err := l.Submit(nil, addBatch(edge(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-degraded:
	case <-time.After(5 * time.Second):
		t.Fatal("loop never entered degraded mode")
	}

	// Writes fail fast while degraded — even under the Block policy.
	if _, err := l.Submit(nil, addBatch(edge(1, 2))); !errors.Is(err, serve.ErrDegraded) {
		t.Fatalf("Submit while degraded = %v, want ErrDegraded", err)
	}

	// The held batch resolves successfully once recovery lands.
	a, err := t1.Wait(nil)
	if err != nil {
		t.Fatalf("held batch failed: %v (applied=%+v)", err, a)
	}
	if a.Seq != 1 {
		t.Fatalf("held batch Seq = %d, want 1", a.Seq)
	}
	if got := tracker.State(); got != health.Healthy {
		t.Fatalf("health after recovery = %v, want Healthy", got)
	}
	if h.recoverCalls != 3 {
		t.Fatalf("Recover called %d times, want 3 (2 failures + success)", h.recoverCalls)
	}

	// Normal service resumed.
	t2, err := l.Submit(nil, addBatch(edge(1, 2)))
	if err != nil {
		t.Fatalf("Submit after recovery: %v", err)
	}
	if _, err := t2.Wait(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(nil); err != nil {
		t.Fatalf("Close after recovered episode = %v, want nil", err)
	}
	if n := len(h.batches()); n != 2 {
		t.Fatalf("%d batches applied, want 2", n)
	}
}

// TestCloseInterruptsDegradedBackoff: closing mid-episode wakes the
// supervisor, fails the held batch and the queue with ErrDegraded, and
// is NOT a terminal failure — the engine state is intact.
func TestCloseInterruptsDegradedBackoff(t *testing.T) {
	h := &healingApplier{failNext: 1, recoverAfter: 1 << 30} // never recovers
	tracker := health.NewTracker(nil)
	degraded := make(chan struct{})
	var once sync.Once
	tracker.OnTransition(func(from, to health.State, cause error) {
		if to == health.Degraded {
			once.Do(func() { close(degraded) })
		}
	})
	l := serve.NewLoop(h, serve.Options{
		Backoff: backoff.Policy{Base: time.Hour, Jitter: -1}, // only Close can end the wait
		Health:  tracker,
		Logger:  quiet(),
	})
	tk, err := l.Submit(nil, addBatch(edge(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-degraded:
	case <-time.After(5 * time.Second):
		t.Fatal("loop never entered degraded mode")
	}

	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := l.Close(closeCtx); err != nil {
		t.Fatalf("Close during degraded episode = %v, want nil (not terminal)", err)
	}
	if _, err := tk.Wait(nil); !errors.Is(err, serve.ErrDegraded) {
		t.Fatalf("held ticket err = %v, want ErrDegraded", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("Err() = %v after degraded shutdown, want nil", err)
	}
}

// TestOutOfBandAilmentHealsBetweenBatches models a checkpoint that
// fails after its batch applied: the apply reports success, the
// ticket resolves, and the loop heals the ailment before the next
// batch.
func TestOutOfBandAilmentHealsBetweenBatches(t *testing.T) {
	h := &healingApplier{}
	tracker := health.NewTracker(nil)
	states := make(chan health.State, 8)
	tracker.OnTransition(func(from, to health.State, cause error) { states <- to })
	l := serve.NewLoop(h, serve.Options{
		Backoff: fastBackoff(),
		Health:  tracker,
		Logger:  quiet(),
	})

	// First batch succeeds but leaves an ailment behind (out of band).
	h.mu.Lock()
	h.applied = nil
	h.mu.Unlock()
	tk, err := l.Submit(nil, addBatch(edge(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// Inject the ailment while the batch is in flight is racy; instead
	// set it right after the apply by wrapping: simulate by setting the
	// ailment once the ticket resolves successfully.
	if _, err := tk.Wait(nil); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	h.ailment = errors.New("checkpoint failed after apply")
	h.mu.Unlock()

	// The next batch trips the in-band path (ApplyBatch fails fast on
	// the ailment), degrades, recovers, and replays.
	t2, err := l.Submit(nil, addBatch(edge(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Wait(nil); err != nil {
		t.Fatalf("batch after ailment: %v", err)
	}
	if got := tracker.State(); got != health.Healthy {
		t.Fatalf("health = %v, want Healthy", got)
	}
	if n := len(h.batches()); n != 2 {
		t.Fatalf("%d batches applied, want 2", n)
	}
	// The episode went Degraded then back to Healthy.
	want := []health.State{health.Degraded, health.Healthy}
	for i, w := range want {
		select {
		case got := <-states:
			if got != w {
				t.Fatalf("transition %d = %v, want %v", i, got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing transition %d (%v)", i, w)
		}
	}
}

// TestSubmitCancelledContext: an already-cancelled context returns
// ctx.Err() without enqueuing, under both policies.
func TestSubmitCancelledContext(t *testing.T) {
	for _, policy := range []serve.Policy{serve.Block, serve.Reject} {
		s := newStubApplier()
		close(s.gate)
		l := serve.NewLoop(s, serve.Options{Policy: policy, Logger: quiet()})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := l.Submit(ctx, addBatch(edge(0, 1))); !errors.Is(err, context.Canceled) {
			t.Fatalf("policy %v: Submit with cancelled ctx = %v, want context.Canceled", policy, err)
		}
		if err := l.Close(nil); err != nil {
			t.Fatal(err)
		}
		if len(s.batches()) != 0 {
			t.Fatalf("policy %v: cancelled Submit enqueued a batch", policy)
		}
	}
}

// TestQuarantineRingBounded: the ring keeps only the newest
// QuarantineDepth records while the total keeps counting.
func TestQuarantineRingBounded(t *testing.T) {
	s := newStubApplier()
	close(s.gate)
	l := serve.NewLoop(s, serve.Options{QuarantineDepth: 2, Logger: quiet()})
	for i := 0; i < 3; i++ {
		tk, err := l.Submit(nil, graph.Batch{Add: []graph.Edge{{From: graph.VertexID(i), To: graph.MaxVertexID + 1, Weight: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(nil); err == nil {
			t.Fatal("poison batch applied")
		}
	}
	q := l.Quarantined()
	if len(q) != 2 || l.QuarantinedTotal() != 3 {
		t.Fatalf("ring holds %d, total %d; want 2, 3", len(q), l.QuarantinedTotal())
	}
	// Oldest evicted: submissions 2 and 3 remain.
	if q[0].Seq != 2 || q[1].Seq != 3 {
		t.Fatalf("ring seqs = %d, %d; want 2, 3", q[0].Seq, q[1].Seq)
	}
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
}

// TestWatchdogFlagsStuckApply: an apply that exceeds ApplyDeadline
// trips OnStuck with the attempt seq; the apply itself completes
// normally afterwards.
func TestWatchdogFlagsStuckApply(t *testing.T) {
	s := newStubApplier() // gate stays shut: the apply hangs
	stuck := make(chan uint64, 1)
	l := serve.NewLoop(s, serve.Options{
		ApplyDeadline: 5 * time.Millisecond,
		OnStuck: func(seq uint64, elapsed time.Duration) {
			select {
			case stuck <- seq:
			default:
			}
		},
		Logger: quiet(),
	})
	tk, err := l.Submit(nil, addBatch(edge(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case seq := <-stuck:
		if seq != 1 {
			t.Fatalf("OnStuck seq = %d, want 1", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired")
	}
	close(s.gate) // un-stick
	if _, err := tk.Wait(nil); err != nil {
		t.Fatalf("slow apply failed: %v", err)
	}
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineEquivalence is the BSP-equivalence property the
// quarantine exists for: an engine that ingested a stream with poison
// batches interleaved must end bit-for-bit where an engine that never
// saw them ends, because rejected batches never touch engine state.
func TestQuarantineEquivalence(t *testing.T) {
	edges := gen.RMAT(11, 80, 500, gen.WeightUniform)
	st, err := stream.FromEdges(80, edges, stream.Config{BatchSize: 40, DeleteFraction: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *core.Engine[float64, float64] {
		e, err := core.NewEngine[float64, float64](st.Base, algorithms.NewPageRank(), core.Options{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	poison := func(i int) graph.Batch {
		return graph.Batch{Add: []graph.Edge{{From: graph.VertexID(i), To: 1, Weight: float64(i)}, {From: 0, To: graph.MaxVertexID + 1, Weight: 1}}}
	}

	// Serve path: valid batches with poison interleaved before, between,
	// and after. Coalescing is disabled so the baseline below sees the
	// identical sequence of apply calls and values can be compared
	// exactly.
	eng := newEngine()
	eng.Run()
	l := serve.NewLoop(eng, serve.Options{DisableCoalescing: true, Logger: quiet()})
	nPoison := 0
	for i, b := range st.Batches {
		if i%2 == 0 {
			if _, err := l.Submit(nil, poison(i)); err != nil {
				t.Fatal(err)
			}
			nPoison++
		}
		if _, err := l.Submit(nil, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Submit(nil, poison(999)); err != nil {
		t.Fatal(err)
	}
	nPoison++
	if err := l.Sync(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	if got := l.QuarantinedTotal(); got != uint64(nPoison) {
		t.Fatalf("quarantined %d batches, want %d", got, nPoison)
	}

	// Baseline: the same engine fed only the valid batches, directly.
	want := newEngine()
	want.Run()
	for _, b := range st.Batches {
		if _, err := want.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	got, wantV := eng.Values(), want.Values()
	if len(got) != len(wantV) {
		t.Fatalf("value lengths differ: %d vs %d", len(got), len(wantV))
	}
	// Tolerance covers parallel reduction reordering only; a leaked
	// poison batch shifts values by far more.
	for v := range got {
		if diff := got[v] - wantV[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("vertex %d: %v vs %v — poison batch leaked into engine state", v, got[v], wantV[v])
		}
	}
}
