package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// defaultMetrics is the process-wide registry used by loops and servers
// whose Options.Metrics is nil. Off (nil) by default.
var defaultMetrics atomic.Pointer[obs.Registry]

// SetDefaultMetrics installs a registry that every subsequently
// constructed loop or server instruments into when its own
// Options.Metrics is nil. Pass nil to turn default instrumentation back
// off. Loops resolve the registry once, at construction.
func SetDefaultMetrics(r *obs.Registry) {
	defaultMetrics.Store(r)
}

// DefaultMetrics returns the registry installed by SetDefaultMetrics
// (nil when default instrumentation is off).
func DefaultMetrics() *obs.Registry {
	return defaultMetrics.Load()
}

// loopMetrics holds the apply loop's metric handles. The zero value
// (nil handles) is the instrumentation-off state: every handle method
// no-ops on nil, so call sites stay unconditional.
type loopMetrics struct {
	depth            *obs.Gauge
	submitted        *obs.Counter
	applied          *obs.Counter
	rejected         *obs.Counter
	coalesced        *obs.Counter
	applyErrors      *obs.Counter
	queueWait        *obs.Histogram
	quarantined      *obs.Counter
	quarantineSize   *obs.Gauge
	recoveryAttempts *obs.Counter
	recoveries       *obs.Counter
	recoveryBackoff  *obs.Histogram
	stuckApplies     *obs.Gauge
	watchdogStalls   *obs.Counter
}

// newLoopMetrics registers (or re-resolves) the ingest metric set in r;
// a nil registry yields inert zero-value metrics.
func newLoopMetrics(r *obs.Registry) loopMetrics {
	if r == nil {
		return loopMetrics{}
	}
	return loopMetrics{
		depth: r.Gauge("graphbolt_serve_queue_depth",
			"Mutation batches currently queued for the apply loop."),
		submitted: r.Counter("graphbolt_serve_submitted_batches_total",
			"Mutation batches accepted by Submit."),
		applied: r.Counter("graphbolt_serve_applied_batches_total",
			"Apply calls completed (coalesced batches count once)."),
		rejected: r.Counter("graphbolt_serve_rejected_batches_total",
			"Submits refused with ErrQueueFull under the Reject policy."),
		coalesced: r.Counter("graphbolt_serve_coalesced_batches_total",
			"Submitted batches merged into an earlier apply call."),
		applyErrors: r.Counter("graphbolt_serve_apply_errors_total",
			"Apply calls that failed (terminal for the loop)."),
		queueWait: r.Histogram("graphbolt_serve_queue_wait_seconds",
			"Time batches spent queued before their apply call started.", obs.DefTimeBuckets),
		quarantined: r.Counter("graphbolt_serve_quarantined_batches_total",
			"Poison batches rejected at dequeue and quarantined."),
		quarantineSize: r.Gauge("graphbolt_serve_quarantine_size",
			"Poison batches currently retained in the quarantine ring."),
		recoveryAttempts: r.Counter("graphbolt_serve_recovery_attempts_total",
			"Recover calls made while in degraded mode."),
		recoveries: r.Counter("graphbolt_serve_recoveries_total",
			"Degraded episodes that ended in successful recovery."),
		recoveryBackoff: r.Histogram("graphbolt_serve_recovery_backoff_seconds",
			"Backoff delays slept between recovery attempts.", obs.DefTimeBuckets),
		stuckApplies: r.Gauge("graphbolt_serve_stuck_applies",
			"1 while an apply call has exceeded its watchdog deadline."),
		watchdogStalls: r.Counter("graphbolt_serve_watchdog_stalls_total",
			"Apply calls that exceeded the watchdog deadline."),
	}
}

// ReadMetrics instruments the query side of a server: how many reads
// were served and how stale the snapshot they observed was.
type ReadMetrics struct {
	queries   *obs.Counter
	staleness *obs.Histogram
}

// NewReadMetrics registers the read-path metric set in r; a nil
// registry yields inert metrics.
func NewReadMetrics(r *obs.Registry) ReadMetrics {
	if r == nil {
		return ReadMetrics{}
	}
	return ReadMetrics{
		queries: r.Counter("graphbolt_serve_queries_total",
			"Snapshot reads served."),
		staleness: r.Histogram("graphbolt_serve_read_staleness_seconds",
			"Age of the published snapshot at read time.", obs.DefTimeBuckets),
	}
}

// Observe records one read against a snapshot published at the given
// time.
func (m ReadMetrics) Observe(publishedAt time.Time) {
	m.queries.Inc()
	if m.staleness != nil && !publishedAt.IsZero() {
		m.staleness.Observe(time.Since(publishedAt).Seconds())
	}
}

// RegisterMetrics pre-creates the full serve metric set in r so the
// exposition endpoint shows every series (at zero) before the first
// loop or server is constructed. Idempotent.
func RegisterMetrics(r *obs.Registry) {
	newLoopMetrics(r)
	NewReadMetrics(r)
}
